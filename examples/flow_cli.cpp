/// \file flow_cli.cpp
/// \brief Command-line front end for the whole library: read (or generate)
/// a design, run a flow, evaluate PPA, and write interchange/visualization
/// artifacts. This is the example to start from when integrating the
/// library with external netlists.
///
/// Usage:
///   flow_cli [--design NAME | --verilog FILE] [--tool openroad|innovus]
///            [--flow default|ours|blob|leiden|mfc|bc|overlay]
///            [--sharded] [--shards N] [--place-only] [--list-designs]
///            [--shapes uniform|random|vpr] [--clock PS] [--opt] [--detailed]
///            [--write-verilog FILE] [--write-def FILE] [--write-svg FILE]
///            [--write-congestion FILE] [--report-paths N]
///            [--cells N] [--report FILE] [--trace FILE] [--check LEVEL]
///            [--threads N] [--fault-plan SPEC]
///            [--observe[=FILE]] [--qor[=FILE]]
///
/// --list-designs prints every generatable design (the six Table-1 stand-ins
/// plus the scaled 1M-5M tier from src/gen/scale.hpp) with its instance
/// count, Rent exponent, and generator seed, then exits.
/// --sharded runs the region-sharded seeded placement (flow::run_sharded_flow)
/// instead of the monolithic incremental pass; --shards sets the region
/// count (default 8). --place-only skips the post-route PPA evaluation —
/// the right mode for million-instance scale runs where routing dominates.
///
/// --report writes the telemetry run report (flow config, phase timings,
/// metric snapshot, PPA outcome, errors/degradations) as JSON; --trace
/// writes a Chrome trace_event file loadable in chrome://tracing or
/// https://ui.perfetto.dev. With a -DPPACD_TELEMETRY=OFF build both flags
/// print a warning and write nothing (exit status unaffected).
/// --observe enables the flight recorder (src/observe) and writes the
/// event stream (convergence samples, heatmaps, histograms; schema
/// ppacd-observe-v1) to FILE (default observe_events.json) — feed it to
/// tools/flow_dashboard.py for a static HTML dashboard. --qor writes the
/// QoR ledger (schema ppacd-qor-v1; final PPA metrics + convergence
/// summaries) to FILE (default bench_results/<design>.qor.json) — compare
/// ledgers with tools/qor_diff.py.
/// --check off|cheap|full runs the src/check invariant validators between
/// flow phases; any violation is logged, reported, and makes the process
/// exit with status 2 (so CI can gate on it).
/// --fault-plan installs a deterministic fault-injection plan (see
/// src/fault/fault.hpp for the grammar, e.g.
/// "seed=7;vpr.shape_eval=error%0.5;sta.arrival=poison"); the PPACD_FAULTS
/// environment variable is used when the flag is absent. The flow degrades
/// gracefully per FlowOptions::degrade; an unabsorbed structured error
/// prints its code and exits with status 3.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "check/check.hpp"
#include "exec/exec.hpp"
#include "fault/fault.hpp"
#include "flow/flow.hpp"
#include "flow/report.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "gen/scale.hpp"
#include "flow/qor.hpp"
#include "netlist/io.hpp"
#include "netlist/stats.hpp"
#include "observe/observe.hpp"
#include "route/global_router.hpp"
#include "sta/report.hpp"
#include "telemetry/telemetry.hpp"
#include "viz/viz.hpp"

namespace {

struct Args {
  std::string design = "aes";
  std::string verilog_in;
  std::string tool = "openroad";
  std::string flow = "ours";
  std::string shapes = "vpr";
  double clock_ps = 0.0;  // 0 = design default
  std::string write_verilog;
  std::string write_def;
  std::string write_svg;
  std::string write_congestion;
  int report_paths = 0;
  int cells = 0;  // 0 = design default
  std::string report_json;
  std::string trace_json;
  bool timing_opt = false;
  bool detailed = false;
  bool sharded = false;
  int shards = 0;  // 0 = ShardedOptions default
  bool place_only = false;
  bool list_designs = false;
  int threads = 0;  // 0 = PPACD_THREADS env / hardware default
  ppacd::check::CheckLevel check_level = ppacd::check::CheckLevel::kOff;
  std::string fault_plan;  // empty = PPACD_FAULTS env (if set)
  bool observe = false;
  std::string observe_path = "observe_events.json";
  bool qor = false;
  std::string qor_path;  // empty = bench_results/<design>.qor.json
};

bool parse_args(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--design") args->design = value();
    else if (arg == "--verilog") args->verilog_in = value();
    else if (arg == "--tool") args->tool = value();
    else if (arg == "--flow") args->flow = value();
    else if (arg == "--shapes") args->shapes = value();
    else if (arg == "--clock") args->clock_ps = std::atof(value());
    else if (arg == "--write-verilog") args->write_verilog = value();
    else if (arg == "--write-def") args->write_def = value();
    else if (arg == "--write-svg") args->write_svg = value();
    else if (arg == "--write-congestion") args->write_congestion = value();
    else if (arg == "--report-paths") args->report_paths = std::atoi(value());
    else if (arg == "--cells") args->cells = std::atoi(value());
    else if (arg == "--report") args->report_json = value();
    else if (arg == "--trace") args->trace_json = value();
    else if (arg == "--opt") args->timing_opt = true;
    else if (arg == "--detailed") args->detailed = true;
    else if (arg == "--sharded") args->sharded = true;
    else if (arg == "--shards") args->shards = std::atoi(value());
    else if (arg == "--place-only") args->place_only = true;
    else if (arg == "--list-designs") args->list_designs = true;
    else if (arg == "--observe") args->observe = true;
    else if (arg.rfind("--observe=", 0) == 0) {
      args->observe = true;
      args->observe_path = arg.substr(std::strlen("--observe="));
    }
    else if (arg == "--qor") args->qor = true;
    else if (arg.rfind("--qor=", 0) == 0) {
      args->qor = true;
      args->qor_path = arg.substr(std::strlen("--qor="));
    }
    else if (arg == "--threads") args->threads = std::atoi(value());
    else if (arg == "--fault-plan") args->fault_plan = value();
    else if (arg == "--check") {
      const char* level = value();
      if (!ppacd::check::parse_check_level(level, &args->check_level)) {
        std::fprintf(stderr, "--check expects off|cheap|full, got \"%s\"\n",
                     level);
        return false;
      }
    }
    else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppacd;
  Args args;
  if (!parse_args(argc, argv, &args)) return 1;
  if (args.list_designs) {
    std::printf("%-18s %-9s %10s %6s %12s\n", "name", "family", "instances",
                "rent", "seed");
    for (const gen::DesignSpec& spec : gen::all_design_specs()) {
      std::printf("%-18s %-9s %10d %6s %#12llx\n", spec.name.c_str(), "paper",
                  spec.target_cells, "-",
                  static_cast<unsigned long long>(spec.seed));
    }
    for (const gen::ScaledDesignInfo& info : gen::scaled_design_tier()) {
      std::printf("%-18s %-9s %10d %6.2f %#12llx\n", info.name.c_str(),
                  info.family.c_str(), info.target_cells, info.rent_exponent,
                  static_cast<unsigned long long>(info.seed));
    }
    return 0;
  }
  if (args.threads > 0) exec::set_thread_count(args.threads);

  // --- Flight recorder ---------------------------------------------------------
  if (args.observe) {
    if (observe::kCompiledIn) {
      observe::recorder().set_enabled(true);
    } else {
      std::fprintf(stderr,
                   "warning: built with -DPPACD_OBSERVE=OFF; --observe "
                   "records nothing\n");
      args.observe = false;
    }
  }

  // --- Fault plan (CLI flag wins over the PPACD_FAULTS environment) -----------
  if (!args.fault_plan.empty()) {
    auto plan = fault::parse_plan(args.fault_plan);
    if (!plan.has_value()) {
      std::fprintf(stderr, "--fault-plan: %s (%s)\n",
                   plan.error().message.c_str(), plan.error().code.c_str());
      return 1;
    }
    fault::set_plan(plan.value());
  } else {
    auto env_plan = fault::install_env_plan();
    if (!env_plan.has_value()) {
      std::fprintf(stderr, "PPACD_FAULTS: %s (%s)\n",
                   env_plan.error().message.c_str(),
                   env_plan.error().code.c_str());
      return 1;
    }
  }

  const liberty::Library lib = liberty::Library::nangate45_like();

  // --- Obtain the design -----------------------------------------------------
  std::optional<netlist::Netlist> design;
  double default_clock = 1000.0;
  if (!args.verilog_in.empty()) {
    auto loaded = netlist::try_load_verilog(args.verilog_in, lib);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "%s: %s (%s)\n", args.verilog_in.c_str(),
                   loaded.error().message.c_str(), loaded.error().code.c_str());
      return 3;
    }
    design = std::move(loaded).value();
  } else {
    gen::DesignSpec spec = gen::design_spec(args.design);
    if (args.cells > 0) spec.target_cells = args.cells;
    design = gen::generate(lib, spec);
    default_clock = spec.clock_period_ps;
  }
  std::printf("design: %s\n",
              netlist::to_string(netlist::compute_stats(*design)).c_str());

  // --- Configure the flow -----------------------------------------------------
  flow::FlowOptions options;
  options.clock_period_ps = args.clock_ps > 0.0 ? args.clock_ps : default_clock;
  options.tool = args.tool == "innovus" ? flow::Tool::kInnovusLike
                                        : flow::Tool::kOpenRoadLike;
  options.vpr.min_cluster_instances = 30;
  if (args.shapes == "uniform") options.shape_mode = flow::ShapeMode::kUniform;
  else if (args.shapes == "random") options.shape_mode = flow::ShapeMode::kRandom;
  else options.shape_mode = flow::ShapeMode::kVpr;
  if (args.flow == "blob") options.cluster_method = flow::ClusterMethod::kLouvainBlob;
  else if (args.flow == "leiden") options.cluster_method = flow::ClusterMethod::kLeiden;
  else if (args.flow == "mfc") options.cluster_method = flow::ClusterMethod::kMfc;
  else if (args.flow == "bc") options.cluster_method = flow::ClusterMethod::kBestChoice;
  else if (args.flow == "overlay") options.cluster_method = flow::ClusterMethod::kCutOverlay;
  options.timing_optimization = args.timing_opt;
  options.detailed_placement = args.detailed;
  options.check_level = args.check_level;
  if (args.shards > 0) options.sharding.shards = args.shards;

  // --- Run ---------------------------------------------------------------------
  auto fail_flow = [&](const fault::FlowError& error) {
    fault::record_error(error);
    std::fprintf(stderr, "flow error: %s at %s: %s\n", error.code.c_str(),
                 error.site.c_str(), error.message.c_str());
#if !defined(PPACD_TELEMETRY_DISABLED)
    if (!args.report_json.empty()) {
      flow::RunReportInputs report;
      report.design =
          design->name().empty() ? args.design : std::string(design->name());
      report.flow = args.flow;
      report.options = &options;
      flow::write_run_report(args.report_json, report);
    }
#endif
    return 3;
  };
  auto result_or = args.sharded ? flow::try_run_sharded_flow(*design, options)
                   : args.flow == "default"
                       ? flow::try_run_default_flow(*design, options)
                       : flow::try_run_clustered_flow(*design, options);
  if (!result_or.has_value()) return fail_flow(result_or.error());
  flow::FlowResult result = std::move(result_or).value();
  flow::PpaOutcome ppa;
  if (!args.place_only) {
    auto ppa_or = flow::try_evaluate_ppa(*design, result.place.positions, options);
    if (!ppa_or.has_value()) return fail_flow(ppa_or.error());
    ppa = std::move(ppa_or).value();
    result.ppa = ppa;
  }
  for (const auto& d : fault::degradation_log()) {
    std::printf("degraded: %s (%s) -> %s\n", d.site.c_str(),
                d.error_code.c_str(), d.fallback.c_str());
  }
  if (args.sharded) {
    std::printf("placement: HPWL %.0f um in %.2fs (%d clusters, %d shards, "
                "%d fallbacks)\n",
                result.place.hpwl_um,
                result.place.clustering_seconds + result.place.placement_seconds,
                result.place.cluster_count, result.place.shard_count,
                result.place.shard_fallbacks);
  } else {
    std::printf("placement: HPWL %.0f um in %.2fs (%d clusters)\n",
                result.place.hpwl_um,
                result.place.clustering_seconds + result.place.placement_seconds,
                result.place.cluster_count);
  }
  if (!args.place_only) {
    std::printf(
        "post-route: rWL %.0f um, WNS %.0f ps, TNS %.2f ns, power %.4f W\n",
        ppa.rwl_um, ppa.wns_ps, ppa.tns_ns, ppa.power_w);
  }

  int exit_code = 0;
  if (args.check_level != check::CheckLevel::kOff) {
    const std::size_t violations = check::logged_violations();
    std::printf("check violations: %zu (%s level)\n", violations,
                check::to_string(args.check_level));
    if (violations > 0) exit_code = 2;
  }

  const std::string design_name =
      design->name().empty() ? args.design : std::string(design->name());
#if defined(PPACD_TELEMETRY_DISABLED)
  // Graceful degrade: with telemetry compiled out there are no spans or
  // metrics to serialize, so warn and skip instead of writing a file whose
  // interesting sections would all be empty.
  if (!args.report_json.empty() || !args.trace_json.empty()) {
    std::fprintf(stderr,
                 "warning: built with -DPPACD_TELEMETRY=OFF; --report/--trace "
                 "write nothing\n");
  }
#else
  if (!args.report_json.empty()) {
    flow::RunReportInputs report;
    report.design = design_name;
    report.flow = args.flow;
    report.options = &options;
    report.place = &result.place;
    report.ppa = &ppa;
    if (flow::write_run_report(args.report_json, report)) {
      std::printf("wrote %s\n", args.report_json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", args.report_json.c_str());
      return 1;
    }
  }
  if (!args.trace_json.empty()) {
    if (telemetry::write_chrome_trace(args.trace_json)) {
      std::printf("wrote %s\n", args.trace_json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", args.trace_json.c_str());
      return 1;
    }
  }
#endif
  if (args.observe) {
    if (observe::write_events(args.observe_path, design_name)) {
      std::printf("wrote %s\n", args.observe_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", args.observe_path.c_str());
      return 1;
    }
  }
  if (args.qor) {
    std::string qor_path = args.qor_path;
    if (qor_path.empty()) {
      std::error_code ec;
      std::filesystem::create_directories("bench_results", ec);
      qor_path = "bench_results/" + design_name + ".qor.json";
    }
    const std::string flow_label =
        args.sharded ? args.flow + "+sharded" : args.flow;
    if (flow::write_qor(qor_path, design_name, flow_label, result)) {
      std::printf("wrote %s\n", qor_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", qor_path.c_str());
      return 1;
    }
  }

  // --- Artifacts ------------------------------------------------------------------
  geom::BBox box;
  for (const auto& p : result.place.positions) box.expand(p);
  for (std::size_t po = 0; po < design->port_count(); ++po) {
    box.expand(design->port(static_cast<netlist::PortId>(po)).position);
  }
  if (!args.write_verilog.empty()) {
    std::ofstream out(args.write_verilog);
    netlist::write_verilog(*design, out);
    std::printf("wrote %s\n", args.write_verilog.c_str());
  }
  if (!args.write_def.empty()) {
    std::ofstream out(args.write_def);
    netlist::write_placement_def(*design, result.place.positions, box.rect(), out);
    std::printf("wrote %s\n", args.write_def.c_str());
  }
  if (!args.write_svg.empty()) {
    viz::SvgOptions svg;
    if (viz::write_placement_svg_file(*design, result.place.positions, box.rect(),
                                      svg, args.write_svg)) {
      std::printf("wrote %s\n", args.write_svg.c_str());
    }
  }
  if (!args.write_congestion.empty()) {
    route::GlobalRouter router(*design, result.place.positions, box.rect(),
                               options.router);
    auto routed = router.try_run(options.degrade);
    if (routed.has_value() &&
        viz::write_congestion_ppm_file(routed.value(), args.write_congestion)) {
      std::printf("wrote %s\n", args.write_congestion.c_str());
    }
  }
  if (args.report_paths > 0) {
    sta::StaOptions sta_options;
    sta_options.clock_period_ps = options.clock_period_ps;
    sta_options.cell_positions = &result.place.positions;
    sta::Sta sta(*design, sta_options);
    sta.run();
    std::printf("\n%s\n%s",
                sta::report_summary(*design, sta).c_str(),
                sta::report_checks(*design, sta,
                                   static_cast<std::size_t>(args.report_paths))
                    .c_str());
  }
  return exit_code;
}
