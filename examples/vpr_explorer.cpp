/// \file vpr_explorer.cpp
/// \brief Virtualized P&R walkthrough (Figure 3): pick one cluster of a
/// design, induce its sub-netlist, and print the full 20-candidate shape
/// sweep with Cost_HPWL (Eq. 4), Cost_Congestion (Eq. 5) and TotalCost.
///
///   ./vpr_explorer [design-name]   (default: ariane)
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/clustered_netlist.hpp"
#include "cluster/fc_multilevel.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "netlist/subnetlist.hpp"
#include "vpr/vpr.hpp"

int main(int argc, char** argv) {
  using namespace ppacd;
  const liberty::Library lib = liberty::Library::nangate45_like();
  const std::string name = argc > 1 ? argv[1] : "ariane";
  const gen::DesignSpec spec = gen::design_spec(name);
  const netlist::Netlist design = gen::generate(lib, spec);

  // Cluster the netlist and pick the largest cluster.
  cluster::FcOptions fc;
  fc.target_cluster_count =
      std::max(8, static_cast<int>(design.cell_count()) / 100);
  const cluster::FcResult fc_result =
      cluster::fc_multilevel_cluster(design, cluster::FcPpaInputs{}, fc);
  const cluster::ClusteredNetlist clustered = cluster::build_clustered_netlist(
      design, fc_result.cluster_of_cell, fc_result.cluster_count);
  cluster::ClusterId biggest(0);
  for (const cluster::ClusterId ci : clustered.cluster_ids()) {
    if (clustered.clusters[ci].cells.size() >
        clustered.clusters[biggest].cells.size()) {
      biggest = ci;
    }
  }
  const cluster::Cluster& target = clustered.clusters[biggest];
  const netlist::SubNetlist sub =
      netlist::extract_subnetlist(design, target.cells);
  std::printf("design %s: %d clusters; exploring the largest (%zu cells, "
              "%zu boundary nets -> %zu IO ports in the sub-netlist)\n\n",
              name.c_str(), fc_result.cluster_count, target.cells.size(),
              sub.boundary_net_count, sub.netlist.port_count());

  const vpr::VprOptions options;
  const vpr::VprResult result = vpr::run_vpr(sub.netlist, options);
  std::printf("%-6s %-6s %-12s %-12s %-10s\n", "AR", "util", "Cost_HPWL",
              "Cost_Cong", "TotalCost");
  for (std::size_t i = 0; i < result.candidates.size(); ++i) {
    const vpr::ShapeCandidate& c = result.candidates[i];
    std::printf("%-6.2f %-6.2f %-12.4f %-12.4f %-10.4f%s\n",
                c.shape.aspect_ratio, c.shape.utilization, c.hpwl_cost,
                c.congestion_cost, c.total_cost,
                i == result.best_index ? "  <== best" : "");
  }
  std::printf("\nThe winning (AR, utilization) defines this cluster's .lef\n"
              "footprint in the seed placement (Alg. 1 line 13). The GNN of\n"
              "Section 3.2 predicts the TotalCost column ~%zux faster than\n"
              "running the %zu virtual P&Rs.\n",
              result.candidates.size(), result.candidates.size());
  return 0;
}
