/// \file hierarchy_clustering.cpp
/// \brief Walkthrough of Algorithm 2 (Figure 2): dendrogram construction
/// from the logical hierarchy, leaf levelization, and the Rent-exponent
/// level selection, printed level by level.
///
///   ./hierarchy_clustering [design-name]   (default: BlackParrot)
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "hier/dendrogram.hpp"
#include "hier/rent.hpp"

int main(int argc, char** argv) {
  using namespace ppacd;
  const liberty::Library lib = liberty::Library::nangate45_like();
  const std::string name = argc > 1 ? argv[1] : "BlackParrot";
  gen::DesignSpec spec = gen::design_spec(name);
  spec.target_cells = std::min(spec.target_cells, 6000);  // keep output snappy
  const netlist::Netlist design = gen::generate(lib, spec);

  const hier::Dendrogram dendro(design);
  std::printf("design %s: %zu modules -> dendrogram of %zu nodes, "
              "level_max %d, %zu leaf replicas created by levelization\n",
              name.c_str(), design.module_count(), dendro.nodes().size(),
              dendro.level_max(), dendro.replicated_count());

  // Evaluate every candidate level like Alg. 2 lines 14-22 does.
  std::printf("\n%-6s %-10s %-12s %s\n", "level", "#clusters", "R_avg (Eq.1)",
              "cluster sizes (first 8)");
  for (int k = 1; k <= std::max(1, dendro.level_max() - 1); ++k) {
    std::int32_t count = 0;
    const auto assignment = dendro.clustering_at(k, &count);
    if (count < 2) continue;
    const double rent = hier::average_rent(design, assignment, count);
    std::vector<int> sizes(static_cast<std::size_t>(count), 0);
    for (const std::int32_t c : assignment) ++sizes[static_cast<std::size_t>(c)];
    std::string size_list;
    for (std::size_t i = 0; i < sizes.size() && i < 8; ++i) {
      size_list += std::to_string(sizes[i]) + " ";
    }
    if (sizes.size() > 8) size_list += "...";
    std::printf("%-6d %-10d %-12.4f %s\n", k, count, rent, size_list.c_str());
  }

  const hier::HierClusteringResult best = hier::hierarchy_clustering(design);
  std::printf("\nAlgorithm 2 picks level %d with %d clusters (lowest weighted-"
              "average Rent exponent).\nThese clusters become the grouping "
              "constraints of the enhanced FC coarsening.\n",
              best.chosen_level, best.cluster_count);
  return 0;
}
