/// \file ppa_compare.cpp
/// \brief The paper's headline scenario: compare the default flat flow with
/// the clustering-driven flow on one design, end to end -- placement runtime,
/// HPWL, and post-route rWL/WNS/TNS/power -- for both tool personalities.
///
///   ./ppa_compare [design-name]   (default: jpeg)
#include <cstdio>
#include <string>

#include "flow/flow.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"

namespace {

using namespace ppacd;

void run_tool(const gen::DesignSpec& spec, flow::Tool tool, const char* label) {
  const liberty::Library lib = liberty::Library::nangate45_like();

  flow::FlowOptions options;
  options.tool = tool;
  options.clock_period_ps = spec.clock_period_ps;
  options.shape_mode = flow::ShapeMode::kVpr;
  options.vpr.min_cluster_instances = 30;

  netlist::Netlist nl_default = gen::generate(lib, spec);
  const flow::FlowResult def = flow::run_default_flow(nl_default, options);
  const flow::PpaOutcome def_ppa =
      flow::evaluate_ppa(nl_default, def.place.positions, options);

  netlist::Netlist nl_ours = gen::generate(lib, spec);
  const flow::FlowResult ours = flow::run_clustered_flow(nl_ours, options);
  const flow::PpaOutcome ours_ppa =
      flow::evaluate_ppa(nl_ours, ours.place.positions, options);

  std::printf("\n--- %s flow ---\n", label);
  std::printf("%-10s %10s %10s %10s %10s %10s %10s\n", "flow", "place(s)",
              "HPWL(um)", "rWL(um)", "WNS(ps)", "TNS(ns)", "power(W)");
  std::printf("%-10s %10.2f %10.0f %10.0f %10.0f %10.2f %10.4f\n", "default",
              def.place.placement_seconds, def.place.hpwl_um, def_ppa.rwl_um,
              def_ppa.wns_ps, def_ppa.tns_ns, def_ppa.power_w);
  std::printf("%-10s %10.2f %10.0f %10.0f %10.0f %10.2f %10.4f\n", "ours",
              ours.place.clustering_seconds + ours.place.placement_seconds,
              ours.place.hpwl_um, ours_ppa.rwl_um, ours_ppa.wns_ps,
              ours_ppa.tns_ns, ours_ppa.power_w);
  const double tns_gain =
      def_ppa.tns_ns != 0.0
          ? 100.0 * (def_ppa.tns_ns - ours_ppa.tns_ns) / def_ppa.tns_ns
          : 0.0;
  std::printf("TNS improvement: %.0f%% (%d clusters, %d V-P&R shaped)\n",
              tns_gain, ours.place.cluster_count, ours.place.shaped_clusters);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "jpeg";
  const gen::DesignSpec spec = gen::design_spec(name);
  std::printf("design: %s (%d target cells, TCP %.2f ns)\n", name.c_str(),
              spec.target_cells, spec.clock_period_ps / 1000.0);
  run_tool(spec, flow::Tool::kOpenRoadLike, "OpenROAD-like");
  run_tool(spec, flow::Tool::kInnovusLike, "Innovus-like (region constraints)");
  return 0;
}
