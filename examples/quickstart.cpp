/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the public API: generate a design, run
/// the PPA-aware clustering-driven placement flow, and print the placement
/// and post-route metrics.
///
///   ./quickstart [design-name]   (default: aes)
#include <cstdio>
#include <string>

#include "flow/flow.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "netlist/stats.hpp"

int main(int argc, char** argv) {
  using namespace ppacd;

  // 1. A standard-cell library and a design. Real users would build the
  //    netlist from their own data via netlist::Netlist's construction API;
  //    here we use the built-in synthetic benchmark generator.
  const liberty::Library lib = liberty::Library::nangate45_like();
  const std::string name = argc > 1 ? argv[1] : "aes";
  const gen::DesignSpec spec = gen::design_spec(name);
  netlist::Netlist design = gen::generate(lib, spec);
  std::printf("design %s: %s\n", name.c_str(),
              netlist::to_string(netlist::compute_stats(design)).c_str());

  // 2. Configure the flow: the tool personality, the clock, and the knobs of
  //    the PPA-aware clustering (Eq. 2/3) and V-P&R (Sec. 3.2).
  flow::FlowOptions options;
  options.tool = flow::Tool::kOpenRoadLike;
  options.clock_period_ps = spec.clock_period_ps;
  options.shape_mode = flow::ShapeMode::kVpr;  // exact virtualized P&R
  options.vpr.min_cluster_instances = 30;

  // 3. Run the clustering-driven placement (Algorithm 1)...
  const flow::FlowResult result = flow::run_clustered_flow(design, options);
  std::printf("placed: HPWL %.0f um, %d clusters (%d V-P&R-shaped), "
              "clustering %.2fs + placement %.2fs\n",
              result.place.hpwl_um, result.place.cluster_count,
              result.place.shaped_clusters, result.place.clustering_seconds,
              result.place.placement_seconds);

  // 4. ...and evaluate post-route PPA (global route + CTS + STA + power).
  const flow::PpaOutcome ppa =
      flow::evaluate_ppa(design, result.place.positions, options);
  std::printf("post-route: rWL %.0f um, WNS %.0f ps, TNS %.2f ns, "
              "power %.4f W, clock skew %.1f ps\n",
              ppa.rwl_um, ppa.wns_ps, ppa.tns_ns, ppa.power_w, ppa.clock_skew_ps);
  return 0;
}
