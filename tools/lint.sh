#!/usr/bin/env bash
# Local mirror of the CI gates (.github/workflows/ci.yml):
#   1. repo lints: lint_determinism.py + lint_contracts.py   (always; fast)
#   2. -Werror build + full ctest                            (always)
#   3. ASan+UBSan build + full ctest                         (skipped by --fast)
#   4. clang-tidy over src/                                  (skipped if missing)
#
# Usage: tools/lint.sh [--fast]
#   --fast   skip the sanitizer stage (stages 1, 2, 4 only)
#
# Exit codes follow the tools/bench_diff.py contract: 0 clean, 1 findings or
# test failures, 2 usage/internal error. Lint JSON reports land in
# build/lint-reports/ (uploaded as artifacts by the CI `lint` job).
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== stage 1: repo lints (determinism + contracts) =="
mkdir -p build/lint-reports
python3 tools/lint_determinism.py --self-test
python3 tools/lint_contracts.py --self-test
python3 tools/lint_determinism.py --json build/lint-reports/determinism.json src
python3 tools/lint_contracts.py --json build/lint-reports/contracts.json src

echo "== stage 2: -Werror build + ctest =="
cmake --preset werror >/dev/null
cmake --build --preset werror -j "$jobs"
ctest --test-dir build-werror --output-on-failure

if [[ "$fast" == 0 ]]; then
  echo "== stage 3: ASan+UBSan build + ctest =="
  cmake --preset asan-ubsan >/dev/null
  cmake --build --preset asan-ubsan -j "$jobs"
  ctest --preset asan-ubsan
else
  echo "== stage 3: skipped (--fast) =="
fi

echo "== stage 4: clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  # The default preset exports compile_commands.json; configure it if absent.
  [[ -f build/compile_commands.json ]] || cmake --preset default >/dev/null
  mapfile -t sources < <(find src -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build -quiet -j "$jobs" "${sources[@]}"
  else
    clang-tidy -p build --quiet "${sources[@]}"
  fi
else
  echo "clang-tidy not installed; skipping (CI runs it)"
fi

echo "lint OK"
