// Fixture: inside an "exec" directory the raw-thread rule is off — this is
// where the parallelism layer legitimately lives. Expects zero findings.
#include <atomic>
#include <thread>
#include <vector>

namespace fixture {

void pool() {
  std::atomic<int> next{0};
  std::vector<std::thread> workers;
  workers.emplace_back([&] { next.fetch_add(1); });
  for (std::thread& t : workers) t.join();
}

}  // namespace fixture
