// Fixture: simd-float-accum — unordered float reductions inside
// PPACD_SIMD_SSE2 regions. Lint-only; never compiled.
#include <emmintrin.h>
#include <numeric>

double ok_outside_region(const double* a, std::size_t n) {
  // Outside any PPACD_SIMD_SSE2 region: ordered left fold, no finding.
  return std::accumulate(a, a + n, 0.0);
}

#if defined(PPACD_SIMD_SSE2)

double bad_hardware_hadd(__m128d acc) {
  // Hardware horizontal add: the lane-combine order is implicit, not the
  // documented (l0 + l1) + (l2 + l3) fold.
  const __m128d s = _mm_hadd_pd(acc, acc);  // LINT-EXPECT: simd-float-accum
  return _mm_cvtsd_f64(s);
}

double bad_stdlib_reduce(const double* a, std::size_t n) {
  return std::reduce(a, a + n, 0.0);  // LINT-EXPECT: simd-float-accum
}

double ok_fixed_lane_combine(__m128d acc01, __m128d acc23) {
  // The blessed pattern: explicit per-lane-pair sums combined in the same
  // order the scalar reference uses.
  const __m128d s01 = _mm_add_sd(acc01, _mm_unpackhi_pd(acc01, acc01));
  const __m128d s23 = _mm_add_sd(acc23, _mm_unpackhi_pd(acc23, acc23));
  return _mm_cvtsd_f64(_mm_add_sd(s01, s23));
}

double ok_suppressed(const double* a, std::size_t n) {
  // lint:allow(simd-float-accum): fixture exercising the suppression path
  return std::accumulate(a, a + n, 0.0);
}

#else

double ok_scalar_branch(const double* a, std::size_t n) {
  // The #else branch of the guard is the scalar path: no finding.
  return std::accumulate(a, a + n, 0.0);
}

#endif
