// Fixture: every determinism anti-pattern the lint must catch, plus the
// suppression forms it must honour. Never compiled; consumed by
// tools/lint_determinism.py --self-test via the LINT-EXPECT markers.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Widget {};

void iterate_unordered() {
  std::unordered_map<std::string, double> weights;
  double total = 0.0;
  for (const auto& [name, w] : weights) {  // LINT-EXPECT: unordered-iter
    total += w;
  }
  std::unordered_set<int> seen;
  for (const int v : seen) {  // LINT-EXPECT: unordered-iter
    (void)v;
  }
  // Sorted copy first: the deterministic idiom, must NOT be flagged.
  std::vector<int> ordered(seen.begin(), seen.end());
  for (const int v : ordered) {
    (void)v;
  }
  // lint:allow(unordered-iter): commutative integer count, order-free
  for (const auto& [name, w] : weights) {
    (void)name;
  }
}

void pointer_keys() {
  std::unordered_map<Widget*, int> by_ptr;  // LINT-EXPECT: pointer-key
  std::unordered_set<const Widget*> ptrs;   // LINT-EXPECT: pointer-key
  std::unordered_map<std::string, Widget*> ptr_values;  // values are fine
  (void)by_ptr;
  (void)ptrs;
  (void)ptr_values;
}

void threads_outside_exec() {
  // std::atomic outside src/exec is flagged even in a fixture dir.
  static int plain_counter = 0;  // plain int: fine
  ++plain_counter;
}

}  // namespace fixture
