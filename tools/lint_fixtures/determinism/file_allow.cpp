// Fixture: a file-level suppression silences a rule everywhere in the file.
// lint:allow-file(unordered-iter): fixture exercising whole-file suppression
#include <string>
#include <unordered_map>

namespace fixture {

void all_suppressed() {
  std::unordered_map<std::string, int> tally;
  for (const auto& [k, v] : tally) {
    (void)k;
    (void)v;
  }
  for (const auto& [k, v] : tally) {
    (void)k;
    (void)v;
  }
}

}  // namespace fixture
