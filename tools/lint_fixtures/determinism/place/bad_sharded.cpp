// Fixture: the shard-unordered rule — hash containers are banned outright in
// shard-boundary code (file name contains "shard"), iterated or not. Never
// compiled; consumed by tools/lint_determinism.py --self-test.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

void extract_shard_members() {
  // Even a lookup-only table is flagged here: the extraction must stay
  // reproducible from (model, seed, shard count), and a hash table invites
  // order-dependent refactors later.
  std::unordered_map<std::int32_t, std::int32_t> local_index;  // LINT-EXPECT: shard-unordered
  local_index[7] = 0;

  std::unordered_set<std::int64_t> boundary;  // LINT-EXPECT: shard-unordered
  boundary.insert(3);
  // Iterating it additionally trips the generic unordered-iter rule.
  for (const std::int64_t b : boundary) {  // LINT-EXPECT: unordered-iter
    (void)b;
  }

  // The deterministic idiom: dense scratch + explicit order. Not flagged.
  std::vector<std::int32_t> dense_index(64, -1);
  dense_index[7] = 0;

  // Suppression still works for a justified exception.
  // lint:allow(shard-unordered): fixture exercising the suppression form
  std::unordered_map<int, int> allowed;
  (void)allowed;
}

}  // namespace fixture
