// Fixture: solver-directory rules (path contains "place", so the
// nondeterministic-source rule is active) plus raw-thread and the
// parallel float-accumulation pattern.
#include <atomic>
#include <cstdlib>
#include <random>
#include <thread>
#include <vector>

namespace fixture {

template <typename Body>
void parallel_for(int n, Body body);

void entropy_sources(unsigned seed) {
  std::random_device rd;               // LINT-EXPECT: nondeterministic-source
  const int r = std::rand();           // LINT-EXPECT: nondeterministic-source
  std::srand(seed);                    // LINT-EXPECT: nondeterministic-source
  (void)rd;
  (void)r;
  // A deterministic engine with an explicit seed is fine:
  std::mt19937_64 rng(seed);
  (void)rng;
}

void raw_threads() {
  std::thread worker([] {});           // LINT-EXPECT: raw-thread
  std::atomic<int> counter{0};         // LINT-EXPECT: raw-thread
  worker.join();
  // lint:allow(raw-thread): fixture demonstrating a justified escape hatch
  std::atomic<bool> flag{false};
  (void)counter;
  (void)flag;
}

void float_accumulation(std::vector<double>& cost) {
  double total = 0.0;
  parallel_for(8, [&](int i) {
    total += 1.0;                      // LINT-EXPECT: parallel-float-accum
    cost[0] += 2.0;                    // LINT-EXPECT: parallel-float-accum
    (void)i;
  });
  (void)total;
}

void serial_accumulation(std::vector<double>& cost) {
  // No parallel_for in scope: += on floats is fine serially.
  double total = 0.0;
  total += 1.0;
  cost[0] += 2.0;
  (void)total;
}

}  // namespace fixture
