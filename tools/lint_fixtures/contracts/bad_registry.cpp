// Fixture: an unsorted, duplicated fault-site registry. The registry-order
// rule anchors on the `kSites` initializer, mirroring src/fault/fault.cpp.
#include <string>
#include <vector>

namespace fixture {

const std::vector<std::string> kSites = {  // LINT-EXPECT: registry-order LINT-EXPECT: registry-order
    "route.maze",
    "io.read",
    "io.read",
};

}  // namespace fixture
