// Fixture: every contract anti-pattern the lint must catch, plus the
// consuming idioms it must accept. Never compiled; consumed by
// tools/lint_contracts.py --self-test via the LINT-EXPECT markers.
#include <utility>

namespace fixture {

template <typename T>
struct Expected {
  bool has_value() const;
  explicit operator bool() const;
  T value() const;
};

struct Flow {
  Expected<int> try_run() const;
};

Expected<int> try_load(int which);

void drops_results(const Flow& flow) {
  try_load(3);                   // LINT-EXPECT: dropped-expected
  flow.try_run();                // LINT-EXPECT: dropped-expected
  (void)try_load(4);             // LINT-EXPECT: dropped-expected
  // lint:allow(dropped-expected): fixture demonstrating a justified drop
  try_load(5);
}

int consumes_results(const Flow& flow) {
  const auto a = try_load(1);
  if (!a) return -1;
  if (auto b = flow.try_run(); b.has_value()) return b.value();
  return a.value();
}

int naked_value(Expected<int> e) {
  return e.value();              // LINT-EXPECT: naked-value
}

int checked_value(Expected<int> e) {
  if (!e.has_value()) return 0;
  return e.value();
}

int checked_by_bang(Expected<int> e) {
  if (!e) return 0;
  return e.value();
}

struct Emitter {
  void add(const char* code, const char* message);
  const char* code;
};

void emits_codes(Emitter& out) {
  out.add("dangling-pin", "fine");
  out.add("BadCode", "x");       // LINT-EXPECT: code-style
  out.add("snake_case", "x");    // LINT-EXPECT: code-style
  out.code = "route-maze-failed";
}

}  // namespace fixture
