#!/usr/bin/env python3
"""Compare two ppacd-bench-perf-v1 JSON reports and flag regressions.

Usage:
    tools/bench_diff.py BASELINE.json CURRENT.json [--threshold 10]
                        [--fail-on-regression]

Both inputs are BENCH_perf.json files written by `bench_microkernels --json`
or `bench_table2 --json`. Kernels are matched by name; for each match the
tool prints the ns/op and allocs/op deltas, and flags kernels whose ns/op
grew by more than the threshold (percent, default 10).

Exit status:
    0  compared fine (or regressions found without --fail-on-regression)
    1  --fail-on-regression and at least one kernel regressed
    2  usage error (bad flags/arguments)
    3  an input file is missing or unreadable
    4  an input is not a ppacd-bench-perf-v1 report (bad JSON, wrong or
       missing schema field, malformed kernels array)

Missing/extra kernels — and stats present in only one of the two files
(e.g. a baseline written before allocs/op existed) — are reported as
added/removed but never fatal, so a CI job can run this as a non-blocking
advisory step. Stdlib only.
"""

import argparse
import json
import sys

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2
EXIT_MISSING_FILE = 3
EXIT_BAD_SCHEMA = 4


class SchemaError(Exception):
    """The file parsed as JSON but is not a ppacd-bench-perf-v1 report."""


def load_kernels(path):
    with open(path, "r", encoding="utf-8") as fh:
        try:
            report = json.load(fh)
        except json.JSONDecodeError as err:
            raise SchemaError(f"{path}: not valid JSON ({err})") from err
    if not isinstance(report, dict):
        raise SchemaError(
            f"{path}: expected a JSON object at top level, "
            f"got {type(report).__name__}")
    schema = report.get("schema")
    if schema != "ppacd-bench-perf-v1":
        raise SchemaError(f"{path}: unexpected schema {schema!r} "
                          "(want 'ppacd-bench-perf-v1')")
    entries = report.get("kernels", [])
    if not isinstance(entries, list):
        raise SchemaError(f"{path}: 'kernels' must be an array, "
                          f"got {type(entries).__name__}")
    kernels = {}
    for entry in entries:
        if not isinstance(entry, dict):
            raise SchemaError(f"{path}: kernel entries must be objects, "
                              f"got {type(entry).__name__}")
        name = entry.get("name")
        if not name:
            continue
        # Keep only the stats the entry actually carries; a stat missing
        # (or null) in one file is reported as added/removed downstream
        # instead of being coerced to 0 and "compared".
        stats = {}
        for key in ("ns_per_op", "allocs_per_op", "bytes_per_op"):
            value = entry.get(key)
            if value is None:
                continue
            try:
                stats[key] = float(value)
            except (TypeError, ValueError) as err:
                raise SchemaError(
                    f"{path}: kernel {name!r} has non-numeric {key} ({err})"
                ) from err
        kernels[name] = stats
    return kernels


def fmt_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_perf.json")
    parser.add_argument("current", help="current BENCH_perf.json")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="ns/op regression threshold in percent "
                             "(default: %(default)s)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 if any kernel regresses past the "
                             "threshold (default: advisory only)")
    args = parser.parse_args()

    try:
        baseline = load_kernels(args.baseline)
        current = load_kernels(args.current)
    except OSError as err:
        print(f"bench_diff: cannot read report: {err}", file=sys.stderr)
        return EXIT_MISSING_FILE
    except SchemaError as err:
        print(f"bench_diff: {err}", file=sys.stderr)
        return EXIT_BAD_SCHEMA

    common = [name for name in baseline if name in current]
    missing = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))

    regressions = []
    width = max((len(n) for n in common), default=4)
    print(f"{'kernel':<{width}}  {'base':>10}  {'now':>10}  {'ns/op':>8}  "
          f"{'allocs/op':>18}")
    stat_asymmetries = []
    for name in common:
        base = baseline[name]
        cur = current[name]
        for key in sorted(set(base) - set(cur)):
            stat_asymmetries.append(f"{name}.{key}: only in baseline")
        for key in sorted(set(cur) - set(base)):
            stat_asymmetries.append(f"{name}.{key}: only in current")
        if "ns_per_op" in base and "ns_per_op" in cur:
            base_ns = fmt_ns(base["ns_per_op"])
            cur_ns = fmt_ns(cur["ns_per_op"])
            if base["ns_per_op"] > 0.0:
                delta = (cur["ns_per_op"] / base["ns_per_op"] - 1.0) * 100.0
            else:
                delta = 0.0
            regressed = delta > args.threshold
            delta_text = f"{delta:>+7.1f}%"
        else:
            base_ns = fmt_ns(base["ns_per_op"]) if "ns_per_op" in base else "-"
            cur_ns = fmt_ns(cur["ns_per_op"]) if "ns_per_op" in cur else "-"
            delta = 0.0
            regressed = False
            delta_text = f"{'n/a':>8}"
        if regressed:
            regressions.append((name, delta))
        mark = "  << REGRESSED" if regressed else ""
        if "allocs_per_op" in base and "allocs_per_op" in cur:
            allocs = f"{base['allocs_per_op']:.0f} -> {cur['allocs_per_op']:.0f}"
        else:
            allocs = "n/a"
        print(f"{name:<{width}}  {base_ns:>10}  {cur_ns:>10}  {delta_text}  "
              f"{allocs:>18}{mark}")

    for name in missing:
        print(f"{name}: only in baseline")
    for name in added:
        print(f"{name}: only in current")
    for line in stat_asymmetries:
        print(line)
    if missing or added or stat_asymmetries:
        print(f"({len(missing)} kernel(s) removed, {len(added)} added, "
              f"{len(stat_asymmetries)} stat asymmetries)")

    if regressions:
        print(f"\n{len(regressions)} kernel(s) regressed more than "
              f"{args.threshold:.0f}% on ns/op:")
        for name, delta in regressions:
            print(f"  {name}: +{delta:.1f}%")
        if args.fail_on_regression:
            return EXIT_REGRESSION
    else:
        print(f"\nno ns/op regressions above {args.threshold:.0f}% "
              f"({len(common)} kernels compared)")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
