#!/usr/bin/env python3
"""Compare two ppacd-bench-perf-v1 JSON reports and flag regressions.

Usage:
    tools/bench_diff.py BASELINE.json CURRENT.json [--threshold 10]
                        [--fail-on-regression]
    tools/bench_diff.py --self-test

Both inputs are BENCH_perf.json files written by `bench_microkernels --json`
or `bench_table2 --json`. Kernels are matched by name; for each match the
tool prints the ns/op and allocs/op deltas, and flags kernels whose ns/op
grew by more than the threshold (percent, default 10).

Exit status:
    0  compared fine (or regressions found without --fail-on-regression)
    1  --fail-on-regression and at least one kernel regressed
    2  usage error (bad flags/arguments)
    3  an input file is missing or unreadable
    4  an input is not a ppacd-bench-perf-v1 report (bad JSON, wrong or
       missing schema field, malformed kernels array)

Kernels present in only one of the two files — and stats present in only
one (e.g. a baseline written before allocs/op existed) — are reported as
`new` / `gone` but never fatal (in particular never a KeyError), so a CI
job can run this as a non-blocking advisory step even while benchmarks are
being added or retired. `--self-test` exercises that contract against
inline fixtures (registered with ctest as bench_diff_selftest). Stdlib
only.
"""

import argparse
import contextlib
import io
import json
import os
import sys
import tempfile

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2
EXIT_MISSING_FILE = 3
EXIT_BAD_SCHEMA = 4


class SchemaError(Exception):
    """The file parsed as JSON but is not a ppacd-bench-perf-v1 report."""


def load_kernels(path):
    with open(path, "r", encoding="utf-8") as fh:
        try:
            report = json.load(fh)
        except json.JSONDecodeError as err:
            raise SchemaError(f"{path}: not valid JSON ({err})") from err
    if not isinstance(report, dict):
        raise SchemaError(
            f"{path}: expected a JSON object at top level, "
            f"got {type(report).__name__}")
    schema = report.get("schema")
    if schema != "ppacd-bench-perf-v1":
        raise SchemaError(f"{path}: unexpected schema {schema!r} "
                          "(want 'ppacd-bench-perf-v1')")
    entries = report.get("kernels", [])
    if not isinstance(entries, list):
        raise SchemaError(f"{path}: 'kernels' must be an array, "
                          f"got {type(entries).__name__}")
    kernels = {}
    for entry in entries:
        if not isinstance(entry, dict):
            raise SchemaError(f"{path}: kernel entries must be objects, "
                              f"got {type(entry).__name__}")
        name = entry.get("name")
        if not name:
            continue
        # Keep only the stats the entry actually carries; a stat missing
        # (or null) in one file is reported as added/removed downstream
        # instead of being coerced to 0 and "compared".
        stats = {}
        for key in ("ns_per_op", "allocs_per_op", "bytes_per_op"):
            value = entry.get(key)
            if value is None:
                continue
            try:
                stats[key] = float(value)
            except (TypeError, ValueError) as err:
                raise SchemaError(
                    f"{path}: kernel {name!r} has non-numeric {key} ({err})"
                ) from err
        kernels[name] = stats
    return kernels


def fmt_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def compare(baseline_path, current_path, threshold, fail_on_regression):
    try:
        baseline = load_kernels(baseline_path)
        current = load_kernels(current_path)
    except OSError as err:
        print(f"bench_diff: cannot read report: {err}", file=sys.stderr)
        return EXIT_MISSING_FILE
    except SchemaError as err:
        print(f"bench_diff: {err}", file=sys.stderr)
        return EXIT_BAD_SCHEMA

    common = [name for name in baseline if name in current]
    gone = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))

    regressions = []
    width = max((len(n) for n in common), default=4)
    print(f"{'kernel':<{width}}  {'base':>10}  {'now':>10}  {'ns/op':>8}  "
          f"{'allocs/op':>18}")
    stat_asymmetries = []
    for name in common:
        base = baseline[name]
        cur = current[name]
        for key in sorted(set(base) - set(cur)):
            stat_asymmetries.append(f"{name}.{key}: only in baseline")
        for key in sorted(set(cur) - set(base)):
            stat_asymmetries.append(f"{name}.{key}: only in current")
        if "ns_per_op" in base and "ns_per_op" in cur:
            base_ns = fmt_ns(base["ns_per_op"])
            cur_ns = fmt_ns(cur["ns_per_op"])
            if base["ns_per_op"] > 0.0:
                delta = (cur["ns_per_op"] / base["ns_per_op"] - 1.0) * 100.0
            else:
                delta = 0.0
            regressed = delta > threshold
            delta_text = f"{delta:>+7.1f}%"
        else:
            base_ns = fmt_ns(base["ns_per_op"]) if "ns_per_op" in base else "-"
            cur_ns = fmt_ns(cur["ns_per_op"]) if "ns_per_op" in cur else "-"
            delta = 0.0
            regressed = False
            delta_text = f"{'n/a':>8}"
        if regressed:
            regressions.append((name, delta))
        mark = "  << REGRESSED" if regressed else ""
        if "allocs_per_op" in base and "allocs_per_op" in cur:
            allocs = f"{base['allocs_per_op']:.0f} -> {cur['allocs_per_op']:.0f}"
        else:
            allocs = "n/a"
        print(f"{name:<{width}}  {base_ns:>10}  {cur_ns:>10}  {delta_text}  "
              f"{allocs:>18}{mark}")

    for name in gone:
        print(f"{name}: gone (only in baseline)")
    for name in added:
        print(f"{name}: new (only in current)")
    for line in stat_asymmetries:
        print(line)
    if gone or added or stat_asymmetries:
        print(f"({len(gone)} kernel(s) gone, {len(added)} new, "
              f"{len(stat_asymmetries)} stat asymmetries)")

    if regressions:
        print(f"\n{len(regressions)} kernel(s) regressed more than "
              f"{threshold:.0f}% on ns/op:")
        for name, delta in regressions:
            print(f"  {name}: +{delta:.1f}%")
        if fail_on_regression:
            return EXIT_REGRESSION
    else:
        print(f"\nno ns/op regressions above {threshold:.0f}% "
              f"({len(common)} kernels compared)")
    return EXIT_OK


# ---------------------------------------------------------------------------
# Self-test (fixture corpus, same idea as the lint_*.py --self-test modes)
# ---------------------------------------------------------------------------

def _report(kernels):
    return {"schema": "ppacd-bench-perf-v1", "binary": "selftest",
            "kernels": kernels}


def self_test():
    """Runs compare() against inline fixtures; returns 0 iff all cases pass."""
    cases = [
        # (name, baseline kernels, current kernels, flags,
        #  expected exit, substrings that must appear in stdout)
        ("identical",
         [{"name": "BM_A", "ns_per_op": 100.0, "allocs_per_op": 3}],
         [{"name": "BM_A", "ns_per_op": 100.0, "allocs_per_op": 3}],
         {}, EXIT_OK, ["no ns/op regressions"]),
        ("regression gates",
         [{"name": "BM_A", "ns_per_op": 100.0}],
         [{"name": "BM_A", "ns_per_op": 150.0}],
         {"fail_on_regression": True}, EXIT_REGRESSION,
         ["REGRESSED", "BM_A: +50.0%"]),
        # The contract under test: disjoint kernel sets must produce
        # new/gone lines, never a KeyError / non-zero crash.
        ("kernel only in baseline",
         [{"name": "BM_Old", "ns_per_op": 10.0},
          {"name": "BM_A", "ns_per_op": 100.0}],
         [{"name": "BM_A", "ns_per_op": 100.0}],
         {}, EXIT_OK, ["BM_Old: gone (only in baseline)", "1 kernel(s) gone"]),
        ("kernel only in current",
         [{"name": "BM_A", "ns_per_op": 100.0}],
         [{"name": "BM_A", "ns_per_op": 100.0},
          {"name": "BM_New", "ns_per_op": 10.0}],
         {}, EXIT_OK, ["BM_New: new (only in current)", "1 new"]),
        ("fully disjoint, zero common",
         [{"name": "BM_Old", "ns_per_op": 10.0}],
         [{"name": "BM_New", "ns_per_op": 20.0}],
         {"fail_on_regression": True}, EXIT_OK,
         ["BM_Old: gone (only in baseline)", "BM_New: new (only in current)",
          "0 kernels compared"]),
        ("stat only on one side",
         [{"name": "BM_A", "ns_per_op": 100.0}],
         [{"name": "BM_A", "ns_per_op": 100.0, "allocs_per_op": 7}],
         {}, EXIT_OK, ["BM_A.allocs_per_op: only in current"]),
    ]
    failures = 0
    with tempfile.TemporaryDirectory(prefix="bench_diff_selftest.") as tmp:
        for name, base, cur, flags, want_exit, want_out in cases:
            base_path = os.path.join(tmp, "base.json")
            cur_path = os.path.join(tmp, "cur.json")
            with open(base_path, "w", encoding="utf-8") as fh:
                json.dump(_report(base), fh)
            with open(cur_path, "w", encoding="utf-8") as fh:
                json.dump(_report(cur), fh)
            out = io.StringIO()
            try:
                with contextlib.redirect_stdout(out):
                    got_exit = compare(base_path, cur_path, threshold=10.0,
                                       fail_on_regression=flags.get(
                                           "fail_on_regression", False))
            except Exception as err:  # the KeyError class of bug
                print(f"FAIL [{name}]: raised {type(err).__name__}: {err}")
                failures += 1
                continue
            if got_exit != want_exit:
                print(f"FAIL [{name}]: exit {got_exit}, want {want_exit}")
                failures += 1
                continue
            text = out.getvalue()
            missing_out = [s for s in want_out if s not in text]
            if missing_out:
                print(f"FAIL [{name}]: output missing {missing_out!r}; got:\n"
                      f"{text}")
                failures += 1
    print(f"bench_diff self-test: {len(cases)} case(s), {failures} failure(s)")
    return EXIT_OK if failures == 0 else EXIT_REGRESSION


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="baseline BENCH_perf.json")
    parser.add_argument("current", nargs="?", help="current BENCH_perf.json")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="ns/op regression threshold in percent "
                             "(default: %(default)s)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 if any kernel regresses past the "
                             "threshold (default: advisory only)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the inline fixture corpus instead of "
                             "comparing two reports")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        parser.print_usage(sys.stderr)
        print("bench_diff: baseline and current reports are required "
              "unless --self-test is given", file=sys.stderr)
        return EXIT_USAGE
    return compare(args.baseline, args.current, args.threshold,
                   args.fail_on_regression)


if __name__ == "__main__":
    sys.exit(main())
