#!/usr/bin/env python3
"""Render a self-contained HTML dashboard from a flight-recorder stream.

Usage:
    tools/flow_dashboard.py observe_events.json [-o dashboard.html]
                            [--title TITLE]

The input is the ppacd-observe-v1 event stream written by
`flow_cli --observe` (or the "observe" section of a run report). The
output is a single static HTML file with inline SVG — no JavaScript, no
external assets — showing:

  * placement convergence: HPWL, density overflow, and mean spreading
    displacement per placer iteration (one curve per placer run),
  * CG solver residuals per outer iteration (log scale),
  * router convergence: overflowed edges / victims per rip-up round and
    per-batch overflow growth during initial routing,
  * the final congestion heatmap (binned grid, green->red),
  * the endpoint slack histogram and STA level widths,
  * cluster coarsening progress and the final cluster-size distribution.

Sections whose stream recorded nothing are skipped. Stdlib only.
"""

import argparse
import html
import json
import math
import sys

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_MISSING_FILE = 3
EXIT_BAD_SCHEMA = 4

PLOT_W, PLOT_H = 460, 220
MARGIN_L, MARGIN_B, MARGIN_T, MARGIN_R = 58, 30, 14, 12

CSS = """
body { font-family: sans-serif; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.05em; margin: 0 0 .3em 0; }
.grid { display: flex; flex-wrap: wrap; gap: 1.2em; }
.card { background: #fff; border: 1px solid #ddd; border-radius: 6px;
        padding: .8em 1em; }
.note { color: #777; font-size: .8em; margin-top: .3em; }
svg text { font-size: 10px; fill: #444; }
"""

SERIES_COLORS = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
                 "#17becf", "#8c564b"]


def fmt(v):
    if v == 0:
        return "0"
    if abs(v) >= 1e5 or abs(v) < 1e-3:
        return f"{v:.1e}"
    return f"{v:.4g}"


def line_plot(title, series, ylabel, logy=False, note=""):
    """series: list of (label, [(x, y), ...])."""
    points = [(x, y) for _, pts in series for x, y in pts
              if not logy or y > 0.0]
    if not points:
        return ""
    xs = [p[0] for p in points]
    ys = [math.log10(p[1]) if logy else p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 <= x0:
        x1 = x0 + 1
    if y1 <= y0:
        y1 = y0 + 1

    def sx(x):
        return MARGIN_L + (x - x0) / (x1 - x0) * (PLOT_W - MARGIN_L - MARGIN_R)

    def sy(y):
        return PLOT_H - MARGIN_B - (y - y0) / (y1 - y0) * (
            PLOT_H - MARGIN_B - MARGIN_T)

    parts = [f'<svg width="{PLOT_W}" height="{PLOT_H}" '
             f'viewBox="0 0 {PLOT_W} {PLOT_H}">']
    # Axes + min/max labels.
    parts.append(
        f'<rect x="{MARGIN_L}" y="{MARGIN_T}" '
        f'width="{PLOT_W - MARGIN_L - MARGIN_R}" '
        f'height="{PLOT_H - MARGIN_T - MARGIN_B}" fill="none" '
        f'stroke="#bbb"/>')
    lo_text = f"1e{y0:.1f}" if logy else fmt(y0)
    hi_text = f"1e{y1:.1f}" if logy else fmt(y1)
    parts.append(f'<text x="4" y="{MARGIN_T + 8}">{hi_text}</text>')
    parts.append(f'<text x="4" y="{PLOT_H - MARGIN_B}">{lo_text}</text>')
    parts.append(f'<text x="{MARGIN_L}" y="{PLOT_H - 8}">{fmt(x0)}</text>')
    parts.append(f'<text x="{PLOT_W - 40}" y="{PLOT_H - 8}">{fmt(x1)}</text>')
    for si, (label, pts) in enumerate(series):
        pts = [(x, y) for x, y in pts if not logy or y > 0.0]
        if not pts:
            continue
        color = SERIES_COLORS[si % len(SERIES_COLORS)]
        coords = " ".join(
            f"{sx(x):.1f},{sy(math.log10(y) if logy else y):.1f}"
            for x, y in sorted(pts))
        parts.append(f'<polyline points="{coords}" fill="none" '
                     f'stroke="{color}" stroke-width="1.5"/>')
        parts.append(f'<text x="{MARGIN_L + 6}" y="{MARGIN_T + 12 + 11 * si}" '
                     f'fill="{color}">{html.escape(label)}</text>')
    parts.append("</svg>")
    note_html = f'<div class="note">{html.escape(note)}</div>' if note else ""
    return (f'<div class="card"><h2>{html.escape(title)}</h2>'
            f'{"".join(parts)}<div class="note">{html.escape(ylabel)}'
            f'{" (log scale)" if logy else ""}</div>{note_html}</div>')


def heat_color(v):
    """0 -> green, 0.5 -> yellow, >= 1 -> red (overflow)."""
    v = max(0.0, min(1.5, v)) / 1.5
    r = int(60 + 195 * min(1.0, 2 * v))
    g = int(200 - 170 * max(0.0, 2 * v - 1))
    return f"rgb({r},{g},60)"


def heatmap(title, frame, note=""):
    nx, ny = frame["nx"], frame["ny"]
    values = frame["values"]
    if nx <= 0 or ny <= 0 or len(values) < nx * ny:
        return ""
    cell = max(4, min(12, 480 // max(nx, ny)))
    w, h = nx * cell, ny * cell
    parts = [f'<svg width="{w}" height="{h}" viewBox="0 0 {w} {h}">']
    for gy in range(ny):
        for gx in range(nx):
            v = values[gy * nx + gx]
            # SVG y grows downward; flip so row 0 is the bottom of the die.
            parts.append(
                f'<rect x="{gx * cell}" y="{(ny - 1 - gy) * cell}" '
                f'width="{cell}" height="{cell}" fill="{heat_color(v)}"/>')
    parts.append("</svg>")
    legend = ('<div class="note">green = free, yellow = near capacity, '
              'red = overflow</div>')
    note_html = f'<div class="note">{html.escape(note)}</div>' if note else ""
    return (f'<div class="card"><h2>{html.escape(title)}</h2>'
            f'{"".join(parts)}{legend}{note_html}</div>')


def histogram(title, frame, xlabel):
    values = frame["values"]
    if len(values) < 3:
        return ""
    lo, hi, counts = values[0], values[1], values[2:]
    peak = max(counts) if counts else 0.0
    if peak <= 0.0:
        return ""
    w, h = PLOT_W, PLOT_H
    bar_w = (w - MARGIN_L - MARGIN_R) / len(counts)
    parts = [f'<svg width="{w}" height="{h}" viewBox="0 0 {w} {h}">']
    for i, c in enumerate(counts):
        bh = (h - MARGIN_T - MARGIN_B) * c / peak
        parts.append(
            f'<rect x="{MARGIN_L + i * bar_w:.1f}" '
            f'y="{h - MARGIN_B - bh:.1f}" width="{max(1.0, bar_w - 1):.1f}" '
            f'height="{bh:.1f}" fill="#1f77b4"/>')
    parts.append(f'<text x="{MARGIN_L}" y="{h - 8}">{fmt(lo)}</text>')
    parts.append(f'<text x="{w - 60}" y="{h - 8}">{fmt(hi)}</text>')
    parts.append(f'<text x="4" y="{MARGIN_T + 8}">{fmt(peak)}</text>')
    parts.append("</svg>")
    return (f'<div class="card"><h2>{html.escape(title)}</h2>'
            f'{"".join(parts)}<div class="note">{html.escape(xlabel)}</div>'
            f'</div>')


def by_stream(doc):
    samples = {}
    for s in doc.get("samples", []):
        samples.setdefault(s["stream"], []).append(s)
    frames = {}
    for f in doc.get("frames", []):
        frames.setdefault(f["stream"], []).append(f)
    return samples, frames


def series_of(samples, value_index, sub=0):
    """Groups stream samples into {series: [(index, value), ...]}."""
    out = {}
    for s in samples:
        if s.get("sub", 0) != sub:
            continue
        if value_index >= len(s.get("values", [])):
            continue
        out.setdefault(s["series"], []).append(
            (s["index"], s["values"][value_index]))
    return out


def labeled(groups, prefix):
    return [(f"{prefix} #{sid}", pts) for sid, pts in sorted(groups.items())]


def build(doc, title):
    samples, frames = by_stream(doc)
    cards = []

    place = samples.get("place.iter", [])
    if place:
        cards.append(line_plot("Placement HPWL",
                               labeled(series_of(place, 0), "placer"),
                               "HPWL (um) per iteration"))
        cards.append(line_plot("Placement density overflow",
                               labeled(series_of(place, 1), "placer"),
                               "overflow ratio per iteration"))
        cards.append(line_plot("Spreading displacement",
                               labeled(series_of(place, 3), "placer"),
                               "mean displacement (um) per iteration"))

    cg = samples.get("place.cg", [])
    if cg:
        # sub == -1 summaries: iterations-to-tolerance per outer iteration.
        cards.append(line_plot("CG iterations to tolerance",
                               labeled(series_of(cg, 0, sub=-1), "solve"),
                               "CG iterations per outer iteration"))
        # Residual trajectory of the last outer iteration of each series.
        resid = []
        for sid in sorted({s["series"] for s in cg}):
            rows = [s for s in cg if s["series"] == sid and s["sub"] >= 0]
            if not rows:
                continue
            last = max(r["index"] for r in rows)
            pts = [(r["sub"], r["values"][0]) for r in rows
                   if r["index"] == last]
            resid.append((f"solve #{sid} iter {last}", pts))
        cards.append(line_plot("CG residual (last outer iteration)", resid,
                               "relative residual per CG iteration",
                               logy=True))

    rounds = samples.get("route.round", [])
    if rounds:
        cards.append(line_plot(
            "Router rip-up rounds",
            [("overflowed edges", sorted(
                (s["index"], s["values"][0]) for s in rounds)),
             ("rerouted nets", sorted(
                 (s["index"], s["values"][1]) for s in rounds))],
            "count per round"))
    batches = samples.get("route.batch", [])
    if batches:
        cards.append(line_plot(
            "Initial routing overflow",
            [("overflowed edges", sorted(
                (s["values"][1], s["values"][2]) for s in batches))],
            "overflowed edges vs nets committed"))

    heat = frames.get("route.heatmap", [])
    if heat:
        cards.append(heatmap("Congestion heatmap (final)", heat[-1],
                             note=f"{len(heat)} snapshot(s) recorded"))

    slack = frames.get("sta.slack", [])
    if slack:
        cards.append(histogram("Endpoint slack distribution", slack[-1],
                               "slack (ps)"))
    levels = samples.get("sta.level", [])
    if levels:
        cards.append(line_plot(
            "STA level widths",
            labeled(series_of(levels, 0), "sweep"),
            "pins per topological level"))

    cl = samples.get("cluster.level", [])
    if cl:
        cards.append(line_plot("Cluster coarsening",
                               labeled(series_of(cl, 0), "clustering"),
                               "vertices per level"))
    sizes = frames.get("cluster.size", [])
    if sizes:
        cards.append(histogram("Cluster sizes", sizes[-1],
                               "cells per cluster"))
    vpr = samples.get("vpr.candidate", [])
    if vpr:
        best = [(s["index"], s["values"][0]) for s in vpr
                if len(s["values"]) >= 4 and s["values"][3] > 0.0]
        if best:
            cards.append(line_plot(
                "V-P&R winning shape cost",
                [("best total cost", sorted(best))],
                "cost vs eligible-cluster index"))

    cards = [c for c in cards if c]
    label = doc.get("label", "")
    head = (f"<h1>{html.escape(title or f'Flow dashboard: {label}')}</h1>"
            f'<div class="note">schema {html.escape(str(doc.get("schema")))}'
            f' · {len(doc.get("samples", []))} samples · '
            f'{len(doc.get("frames", []))} frames · '
            f'{doc.get("dropped", 0)} dropped</div>')
    if not cards:
        cards = ['<div class="card">No streams recorded — run with '
                 '<code>flow_cli --observe</code> on a PPACD_OBSERVE=ON '
                 'build.</div>']
    return (f"<!DOCTYPE html><html><head><meta charset='utf-8'>"
            f"<title>{html.escape(title or 'Flow dashboard')}</title>"
            f"<style>{CSS}</style></head><body>{head}"
            f'<div class="grid">{"".join(cards)}</div></body></html>')


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("events", help="ppacd-observe-v1 JSON event stream")
    parser.add_argument("-o", "--output", default="dashboard.html",
                        help="output HTML path (default: %(default)s)")
    parser.add_argument("--title", default="", help="dashboard title")
    args = parser.parse_args()

    try:
        with open(args.events, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as err:
        print(f"flow_dashboard: cannot read events: {err}", file=sys.stderr)
        return EXIT_MISSING_FILE
    except json.JSONDecodeError as err:
        print(f"flow_dashboard: {args.events}: not valid JSON ({err})",
              file=sys.stderr)
        return EXIT_BAD_SCHEMA
    if isinstance(doc, dict) and "observe" in doc and "samples" not in doc:
        doc = doc["observe"]  # accept a full run report too
    if not isinstance(doc, dict) or doc.get("schema") != "ppacd-observe-v1":
        print(f"flow_dashboard: {args.events}: unexpected schema "
              f"{doc.get('schema') if isinstance(doc, dict) else doc!r} "
              "(want 'ppacd-observe-v1')", file=sys.stderr)
        return EXIT_BAD_SCHEMA

    html_text = build(doc, args.title)
    with open(args.output, "w", encoding="utf-8") as fh:
        fh.write(html_text)
    print(f"wrote {args.output}")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
