#!/usr/bin/env python3
"""Determinism lint: flags C++ patterns that make solver output run-dependent.

The placement/clustering flow promises bit-identical results for a fixed seed
(ROADMAP: determinism is a tier-1 property; golden flow hashes depend on it).
This lint catches the usual ways that promise silently breaks:

  unordered-iter         range-for over a std::unordered_map/set variable.
                         Bucket order is implementation- and size-dependent,
                         so anything emitted, accumulated in floating point,
                         or tie-broken in that order varies between runs.
  pointer-key            associative container keyed by a pointer. Address
                         order changes with ASLR/allocator state.
  nondeterministic-source rand()/srand()/std::random_device/wall-clock reads
                         in solver code. All randomness must flow through
                         util::Rng with an explicit seed.
  raw-thread             std::thread/std::jthread/std::async/std::atomic
                         outside src/exec. Parallelism goes through the exec
                         layer so scheduling cannot reorder results.
  parallel-float-accum   `+=` into a float/double inside an exec::parallel_for
                         body. FP addition is not associative; per-thread
                         partials must be reduced in a fixed order instead.
  simd-float-accum       unordered float reduction inside a PPACD_SIMD_SSE2
                         region: hardware horizontal adds (_mm*_hadd_p*,
                         _mm512_reduce_add_p*) or std::accumulate/std::reduce.
                         SIMD reductions must follow the fixed-lane pattern of
                         util/simd.hpp (per-lane adds, explicit
                         (l0+l1)+(l2+l3) combine) or the SSE2 and scalar paths
                         stop being bit-identical.
  shard-unordered        any std::unordered_map/set in shard-boundary code
                         (files whose name contains "shard"). The sharded
                         placement contract (DESIGN.md §16) requires shard
                         membership, sub-netlist extraction, and the stitch
                         to be reproducible from (model, seed, shard count)
                         alone, so even *non-iterated* hash containers are
                         banned there: bucket layouts invite order-dependent
                         refactors later. Use util::Csr counting builds or
                         epoch-stamped dense scratch instead.

Suppressions (both forms require a trailing justification after a colon):
  // lint:allow(<rule>): <why>          on the offending or preceding line
  // lint:allow-file(<rule>): <why>     in the first 40 lines, whole file

Usage:
  tools/lint_determinism.py [paths...]     lint files/dirs (default: src)
  tools/lint_determinism.py --self-test    run against the fixture corpus

Exit codes (same contract as tools/bench_diff.py):
  0  clean
  1  findings
  2  usage or internal error

Stdlib only; no compiler, no clang dependency.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

RULES = (
    "unordered-iter",
    "pointer-key",
    "nondeterministic-source",
    "raw-thread",
    "parallel-float-accum",
    "simd-float-accum",
    "shard-unordered",
)

# Directories whose job is infrastructure, not solving. Wall-clock and the
# exec layer's own threading live here legitimately.
SOLVER_DIRS = (
    "cluster", "place", "route", "sta", "vpr", "flow", "hier",
    "opt", "ml", "gen", "cts", "features", "geom", "netlist", "liberty",
)

ALLOW_LINE = re.compile(r"//\s*lint:allow\(([a-z-]+)\):\s*\S")
ALLOW_FILE = re.compile(r"//\s*lint:allow-file\(([a-z-]+)\):\s*\S")

UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<.*?>\s+(\w+)\s*[;({=]")
RANGE_FOR = re.compile(r"\bfor\s*\(.*?:\s*([A-Za-z_]\w*(?:\.\w+|->\w+)*)\s*\)")
POINTER_KEY = re.compile(
    r"\bstd::(?:unordered_)?(?:map|set|multimap|multiset)\s*<\s*"
    r"(?:const\s+)?[\w:]+\s*\*")
NONDET_SOURCE = re.compile(
    r"\bstd::random_device\b|(?<!\w)(?:std::)?s?rand\s*\(|"
    r"\bsystem_clock::now\b|(?<![\w.:])time\s*\(\s*(?:nullptr|NULL|0)\s*\)")
RAW_THREAD = re.compile(r"\bstd::(?:jthread\b|thread\b|async\s*\(|atomic\b)")
PARALLEL_ENTRY = re.compile(r"\bparallel_for\s*\(")
# Preprocessor tracking for PPACD_SIMD_SSE2 regions (simd-float-accum).
PP_SIMD_IF = re.compile(r"^\s*#\s*(?:if\b.*\bPPACD_SIMD_SSE2\b|"
                        r"ifdef\s+PPACD_SIMD_SSE2\b)")
PP_IF = re.compile(r"^\s*#\s*if")
PP_ELSE = re.compile(r"^\s*#\s*(?:else\b|elif\b)")
PP_ENDIF = re.compile(r"^\s*#\s*endif")
SIMD_UNORDERED = re.compile(
    r"\b_mm(?:256|512)?_hadd_p[sd]\b|\b_mm512_reduce_add_p[sd]\b|"
    r"\bstd::(?:accumulate|reduce)\b")
SHARD_UNORDERED = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
FLOAT_DECL = re.compile(r"\b(?:double|float)\s+(\w+)\s*[;={]")
FLOAT_VEC_DECL = re.compile(
    r"\bstd::vector\s*<\s*(?:double|float)\s*>\s*&?\s*(\w+)")
ACCUM = re.compile(r"(?:^|[^+\-*/%&|^<>=!])\b([A-Za-z_]\w*)\s*(?:\[[^\]]*\]\s*)?\+=")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def as_dict(self) -> dict:
        return {"file": self.path, "line": self.line, "rule": self.rule,
                "message": self.message}

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_strings_and_comments(line: str) -> str:
    """Removes string/char literal bodies and // comments (keeps lint: tags)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is comment; allow-tags are parsed from the raw line
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            i += 1
            out.append(quote)
            continue
        out.append(c)
        i += 1
    return "".join(out)


def in_solver_dir(path: str) -> bool:
    parts = os.path.normpath(path).split(os.sep)
    return any(p in SOLVER_DIRS for p in parts)


def in_exec_dir(path: str) -> bool:
    parts = os.path.normpath(path).split(os.sep)
    return "exec" in parts


def is_shard_file(path: str) -> bool:
    return "shard" in os.path.basename(path)


def lint_file(path: str, text: str) -> list[Finding]:
    raw_lines = text.splitlines()
    lines = [strip_strings_and_comments(l) for l in raw_lines]

    file_allows = set()
    for raw in raw_lines[:40]:
        for m in ALLOW_FILE.finditer(raw):
            file_allows.add(m.group(1))

    def allowed(rule: str, idx: int) -> bool:
        if rule in file_allows:
            return True
        for j in (idx, idx - 1):
            if 0 <= j < len(raw_lines):
                for m in ALLOW_LINE.finditer(raw_lines[j]):
                    if m.group(1) == rule:
                        return True
        return False

    findings: list[Finding] = []

    def add(rule: str, idx: int, message: str) -> None:
        if not allowed(rule, idx):
            findings.append(Finding(path, idx + 1, rule, message))

    # Track names declared as unordered containers (locals and members alike;
    # one file-wide namespace is a deliberate over-approximation).
    unordered_names = set()
    float_names = set()
    for line in lines:
        for m in UNORDERED_DECL.finditer(line):
            unordered_names.add(m.group(1))
        for m in FLOAT_DECL.finditer(line):
            float_names.add(m.group(1))
        for m in FLOAT_VEC_DECL.finditer(line):
            float_names.add(m.group(1))

    # Brace-depth bookkeeping for parallel_for lambda bodies.
    parallel_until_depth: list[int] = []  # stack of depths to pop at
    depth = 0
    # Preprocessor-conditional stack: True for frames that currently select
    # the PPACD_SIMD_SSE2 branch (an #else flips the top frame off).
    pp_simd_stack: list[bool] = []

    for idx, line in enumerate(lines):
        if PP_IF.match(line):
            pp_simd_stack.append(bool(PP_SIMD_IF.match(line)))
        elif PP_ELSE.match(line):
            if pp_simd_stack:
                pp_simd_stack[-1] = False
        elif PP_ENDIF.match(line):
            if pp_simd_stack:
                pp_simd_stack.pop()

        if any(pp_simd_stack) and SIMD_UNORDERED.search(line):
            add("simd-float-accum", idx,
                "unordered float reduction inside a PPACD_SIMD_SSE2 region; "
                "use the fixed-lane pattern of util/simd.hpp (per-lane adds, "
                "explicit (l0+l1)+(l2+l3) combine) so SSE2 and scalar paths "
                "stay bit-identical")

        m = RANGE_FOR.search(line)
        if m:
            base = m.group(1).split(".")[0].split("->")[0]
            if base in unordered_names or m.group(1).split("->")[-1].split(".")[-1] in unordered_names:
                add("unordered-iter", idx,
                    f"range-for over unordered container '{m.group(1)}'; "
                    "iteration order is nondeterministic — sort the keys or "
                    "use a vector/map")

        if is_shard_file(path) and SHARD_UNORDERED.search(line):
            add("shard-unordered", idx,
                "hash container in shard-boundary code; shard membership and "
                "extraction must be reproducible from (model, seed, shard "
                "count) — use util::Csr counting builds or epoch-stamped "
                "dense scratch")

        if POINTER_KEY.search(line):
            add("pointer-key", idx,
                "associative container keyed by a pointer; address order "
                "varies run to run — key by a stable id instead")

        if in_solver_dir(path) and NONDET_SOURCE.search(line):
            add("nondeterministic-source", idx,
                "nondeterministic entropy/clock source in solver code; route "
                "randomness through util::Rng with an explicit seed")

        if not in_exec_dir(path) and RAW_THREAD.search(line):
            add("raw-thread", idx,
                "raw std::thread/std::atomic outside src/exec; use the exec "
                "layer so scheduling cannot reorder results")

        if PARALLEL_ENTRY.search(line):
            parallel_until_depth.append(depth)

        if parallel_until_depth:
            am = ACCUM.search(line)
            if am and am.group(1) in float_names:
                add("parallel-float-accum", idx,
                    f"'{am.group(1)} +=' on a float inside a parallel_for "
                    "body; FP addition is order-dependent — accumulate "
                    "per-thread partials and reduce in index order")

        depth += line.count("{") - line.count("}")
        while parallel_until_depth and depth <= parallel_until_depth[-1] and \
                (")" in line or "}" in line):
            parallel_until_depth.pop()

    return findings


def collect_sources(paths: list[str]) -> list[str]:
    out = []
    for p in paths:
        if os.path.isfile(p):
            out.append(p)
        else:
            for root, _dirs, files in os.walk(p):
                for f in sorted(files):
                    if f.endswith((".cpp", ".hpp", ".cc", ".h")):
                        out.append(os.path.join(root, f))
    return sorted(set(out))


def run_lint(paths: list[str], json_path: str | None) -> int:
    files = collect_sources(paths)
    if not files:
        print(f"lint_determinism: no C++ sources under {paths}", file=sys.stderr)
        return 2
    findings: list[Finding] = []
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                findings.extend(lint_file(path, fh.read()))
        except OSError as e:
            print(f"lint_determinism: {e}", file=sys.stderr)
            return 2
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump({"lint": "determinism",
                       "files_scanned": len(files),
                       "findings": [f.as_dict() for f in findings]}, fh,
                      indent=2)
            fh.write("\n")
    for f in findings:
        print(f)
    print(f"lint_determinism: {len(findings)} finding(s) in "
          f"{len(files)} file(s)")
    return 1 if findings else 0


# ---------------------------------------------------------------------------
# Self-test against the fixture corpus
# ---------------------------------------------------------------------------

EXPECT = re.compile(r"//\s*LINT-EXPECT:\s*([a-z-]+)")


def self_test() -> int:
    fixture_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "lint_fixtures", "determinism")
    files = collect_sources([fixture_dir])
    if not files:
        print(f"lint_determinism: no fixtures in {fixture_dir}", file=sys.stderr)
        return 2
    failures = 0
    for path in files:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        expected = set()
        for idx, raw in enumerate(text.splitlines()):
            for m in EXPECT.finditer(raw):
                expected.add((idx + 1, m.group(1)))
        got = {(f.line, f.rule) for f in lint_file(path, text)}
        for miss in sorted(expected - got):
            print(f"SELF-TEST FAIL {path}:{miss[0]}: expected {miss[1]}, "
                  "not reported")
            failures += 1
        for extra in sorted(got - expected):
            print(f"SELF-TEST FAIL {path}:{extra[0]}: unexpected {extra[1]}")
            failures += 1
    print(f"lint_determinism self-test: {len(files)} fixture(s), "
          f"{failures} failure(s)")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture corpus instead of linting")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write findings as JSON")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    return run_lint(args.paths or ["src"], args.json)


if __name__ == "__main__":
    sys.exit(main())
