#!/usr/bin/env python3
"""Contract lint: enforces the repo's error-handling conventions.

The flow's failure channel is `fault::Expected<T, FlowError>` returned by
`try_*` entry points, and `check::CheckResult` returned by validators. Both
carry stable kebab-case codes that tests and the fault-injection campaign key
on. This lint enforces the conventions the type system cannot:

  dropped-expected   a `try_*(...)` call used as a bare statement (including
                     `(void)` casts). Every caller must bind the Expected and
                     branch on it; [[nodiscard]] catches most of these at
                     compile time, this catches the cast-away-and-ignore case.
  naked-value        `.value()` on an object the lint can see is an
                     Expected/optional (declared as such, or bound from a
                     `try_*` call) with no visible check of the same object
                     earlier in the function (has_value(), ok(), `if (!x`,
                     PPACD_CHECK(x...)). Objects of other types — e.g. the
                     StrongId::value() payload accessor — are not policed.
                     Unchecked value() on an error is an assert at best.
  code-style         an emitted error/violation code that is not kebab-case
                     (`[a-z0-9]+(-[a-z0-9]+)*`). Codes are a public, grep-able
                     contract; one naming scheme.
  registry-order     the fault-site registry (`kSites` in src/fault/fault.cpp)
                     must be sorted and collision-free: parse_plan validation,
                     to_spec canonicalisation, and the fault campaign all
                     iterate it in order.

Suppressions (a trailing justification after the colon is required):
  // lint:allow(<rule>): <why>          on the offending or preceding line
  // lint:allow-file(<rule>): <why>     in the first 40 lines, whole file

Usage:
  tools/lint_contracts.py [paths...]      lint files/dirs (default: src)
  tools/lint_contracts.py --self-test     run against the fixture corpus

Exit codes (same contract as tools/bench_diff.py):
  0 clean, 1 findings, 2 usage or internal error.

Stdlib only; no compiler, no clang dependency.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

ALLOW_LINE = re.compile(r"//\s*lint:allow\(([a-z-]+)\):\s*\S")
ALLOW_FILE = re.compile(r"//\s*lint:allow-file\(([a-z-]+)\):\s*\S")

KEBAB = re.compile(r"^[a-z0-9]+(-[a-z0-9]+)*$")

# A statement that is nothing but a try_* call (optionally (void)-cast).
DROPPED_TRY = re.compile(
    r"^\s*(?:\(void\)\s*)?(?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*try_\w+\s*\(")
TRY_CONSUMED = re.compile(r"=|\breturn\b|\bco_return\b|\bif\b|\bwhile\b|\bfor\b")

VALUE_CALL = re.compile(r"\b([A-Za-z_]\w*)(?:\.|->)value\s*\(\s*\)")
FUNC_HEAD = re.compile(r"^[A-Za-z_][\w:<>,*&\s]*\([^;]*$|^[A-Za-z_].*\)\s*(?:const)?\s*{")

# Code-emission sites whose first string literal is a stable code.
CODE_EMIT = re.compile(
    r"""(?:\berr\s*\(|\.code\s*=\s*|\badd\s*\(|error_code\s*=\s*)\s*"([^"]+)"
    """, re.VERBOSE)

KSITES_BLOCK = re.compile(
    r"kSites\s*=\s*\{(.*?)\};", re.DOTALL)
STRING_LIT = re.compile(r'"([^"]*)"')


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def as_dict(self) -> dict:
        return {"file": self.path, "line": self.line, "rule": self.rule,
                "message": self.message}

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comment(line: str) -> str:
    cut = line.find("//")
    return line if cut < 0 else line[:cut]


def lint_file(path: str, text: str) -> list[Finding]:
    raw_lines = text.splitlines()
    code_lines = [strip_comment(l) for l in raw_lines]

    file_allows = set()
    for raw in raw_lines[:40]:
        for m in ALLOW_FILE.finditer(raw):
            file_allows.add(m.group(1))

    def allowed(rule: str, idx: int) -> bool:
        if rule in file_allows:
            return True
        for j in (idx, idx - 1):
            if 0 <= j < len(raw_lines):
                for m in ALLOW_LINE.finditer(raw_lines[j]):
                    if m.group(1) == rule:
                        return True
        return False

    findings: list[Finding] = []

    def add(rule: str, idx: int, message: str) -> None:
        if not allowed(rule, idx):
            findings.append(Finding(path, idx + 1, rule, message))

    # Function-start markers for the naked-value backward scan: a line at
    # column zero opening a brace approximates a function/namespace boundary.
    func_starts = [0]
    for idx, line in enumerate(code_lines):
        if line and not line[0].isspace() and line.rstrip().endswith("{"):
            func_starts.append(idx)

    def scope_start(idx: int) -> int:
        lo = 0
        for s in func_starts:
            if s <= idx:
                lo = s
            else:
                break
        return lo

    for idx, line in enumerate(code_lines):
        # dropped-expected: join continuation lines until the statement ends.
        # Only a statement *start* counts: the previous code line must have
        # closed with ; { or } — otherwise this is the continuation of a
        # declaration or expression (e.g. a return type on its own line).
        prev = ""
        for k in range(idx - 1, -1, -1):
            if code_lines[k].strip():
                prev = code_lines[k].rstrip()
                break
        at_statement_start = not prev or prev.endswith((";", "{", "}"))
        if at_statement_start and DROPPED_TRY.match(line):
            stmt = line
            j = idx
            while ";" not in stmt and j + 1 < len(code_lines) and j - idx < 8:
                j += 1
                stmt += " " + code_lines[j].strip()
            head = stmt.split("try_", 1)[0]
            if not TRY_CONSUMED.search(head):
                add("dropped-expected", idx,
                    "try_* result discarded; bind the Expected and branch on "
                    "it (or propagate the error)")

        for m in VALUE_CALL.finditer(line):
            var = m.group(1)
            # Declaration-site .value() (auto x = try_foo().value()) has no
            # variable to have checked; `var` is then the callee name.
            start = scope_start(idx)
            window = "\n".join(code_lines[start:idx + 1])
            # Only police objects that are visibly Expected/optional-like;
            # value() on anything else (StrongId, Counter, ...) is fine.
            expected_like = (
                re.search(rf"(?:Expected|optional)\s*<[^;]*?\b{re.escape(var)}\b",
                          window)
                or re.search(rf"\b{re.escape(var)}\s*=[^;]*\btry_\w+\s*\(",
                             window)
            )
            if not expected_like:
                continue
            checked = (
                re.search(rf"\b{re.escape(var)}\s*(?:\.|->)\s*has_value\s*\(", window)
                or re.search(rf"\b{re.escape(var)}\s*(?:\.|->)\s*ok\s*\(", window)
                or re.search(rf"(?:if|while)\s*\(\s*!?\s*{re.escape(var)}\b", window)
                or re.search(rf"PPACD_D?CHECK\s*\(\s*!?\s*{re.escape(var)}\b", window)
                or re.search(rf"\bASSERT_TRUE\s*\(\s*{re.escape(var)}\b", window)
                or re.search(rf"\breturn\s+!?\s*{re.escape(var)}\s*;", window)
            )
            if not checked:
                add("naked-value", idx,
                    f"'.value()' on '{var}' with no visible has_value()/ok()/"
                    "if-check earlier in this function")

        for m in CODE_EMIT.finditer(line):
            code = m.group(1)
            # Only police strings that plausibly are codes: single token, no
            # spaces. Messages (which contain spaces) pass through.
            if " " in code or not code:
                continue
            if not KEBAB.match(code):
                add("code-style", idx,
                    f"error code \"{code}\" is not kebab-case "
                    "([a-z0-9]+(-[a-z0-9]+)*)")

    # registry-order: only meaningful in the file that defines kSites.
    m = KSITES_BLOCK.search(text)
    if m:
        sites = STRING_LIT.findall(m.group(1))
        line_no = text[:m.start()].count("\n")
        if sites != sorted(sites):
            add("registry-order", line_no,
                f"fault site registry is not sorted: {sites}")
        if len(sites) != len(set(sites)):
            dupes = sorted({s for s in sites if sites.count(s) > 1})
            add("registry-order", line_no,
                f"fault site registry has duplicate entries: {dupes}")
        for s in sites:
            if not re.match(r"^[a-z0-9_.]+$", s):
                add("registry-order", line_no,
                    f"fault site \"{s}\" is not lower-case dotted form")

    return findings


def collect_sources(paths: list[str]) -> list[str]:
    out = []
    for p in paths:
        if os.path.isfile(p):
            out.append(p)
        else:
            for root, _dirs, files in os.walk(p):
                for f in sorted(files):
                    if f.endswith((".cpp", ".hpp", ".cc", ".h")):
                        out.append(os.path.join(root, f))
    return sorted(set(out))


def run_lint(paths: list[str], json_path: str | None) -> int:
    files = collect_sources(paths)
    if not files:
        print(f"lint_contracts: no C++ sources under {paths}", file=sys.stderr)
        return 2
    findings: list[Finding] = []
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                findings.extend(lint_file(path, fh.read()))
        except OSError as e:
            print(f"lint_contracts: {e}", file=sys.stderr)
            return 2
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump({"lint": "contracts",
                       "files_scanned": len(files),
                       "findings": [f.as_dict() for f in findings]}, fh,
                      indent=2)
            fh.write("\n")
    for f in findings:
        print(f)
    print(f"lint_contracts: {len(findings)} finding(s) in {len(files)} file(s)")
    return 1 if findings else 0


EXPECT = re.compile(r"//\s*LINT-EXPECT:\s*([a-z-]+)")


def self_test() -> int:
    fixture_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "lint_fixtures", "contracts")
    files = collect_sources([fixture_dir])
    if not files:
        print(f"lint_contracts: no fixtures in {fixture_dir}", file=sys.stderr)
        return 2
    failures = 0
    for path in files:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        expected = set()
        for idx, raw in enumerate(text.splitlines()):
            for m in EXPECT.finditer(raw):
                expected.add((idx + 1, m.group(1)))
        got = {(f.line, f.rule) for f in lint_file(path, text)}
        for miss in sorted(expected - got):
            print(f"SELF-TEST FAIL {path}:{miss[0]}: expected {miss[1]}, "
                  "not reported")
            failures += 1
        for extra in sorted(got - expected):
            print(f"SELF-TEST FAIL {path}:{extra[0]}: unexpected {extra[1]}")
            failures += 1
    print(f"lint_contracts self-test: {len(files)} fixture(s), "
          f"{failures} failure(s)")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture corpus instead of linting")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write findings as JSON")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    return run_lint(args.paths or ["src"], args.json)


if __name__ == "__main__":
    sys.exit(main())
