#!/usr/bin/env python3
"""Compare two ppacd-qor-v1 ledgers and flag quality regressions.

Usage:
    tools/qor_diff.py BASELINE.json CURRENT.json [--threshold 5]
                      [--fail-on-regression]

Both inputs are .qor.json ledgers written by `flow_cli --qor` (or a
baseline file holding a {"designs": {name: ledger, ...}} collection, in
which case designs are matched by name and every pair is compared).

Each metric has an improvement direction: HPWL, routed wirelength, power,
overflow, and clock skew are better when smaller; WNS and TNS are better
when larger (less negative). A metric regresses when it moves in the worse
direction by more than the threshold (percent of the baseline magnitude;
any worsening of an exactly-zero baseline counts). The "convergence"
section is advisory: deltas are printed but never gate.

Metrics present in only one ledger are reported as added/removed, never
fatal — a new convergence stat must not break the gate against an old
baseline.

Exit status (same contract as tools/bench_diff.py):
    0  compared fine (or regressions found without --fail-on-regression)
    1  --fail-on-regression and at least one metric regressed
    2  usage error (bad flags/arguments)
    3  an input file is missing or unreadable
    4  an input is not a ppacd-qor-v1 ledger (bad JSON, wrong or missing
       schema field, malformed metrics object)

Stdlib only.
"""

import argparse
import json
import sys

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2
EXIT_MISSING_FILE = 3
EXIT_BAD_SCHEMA = 4

# Improvement direction per gated metric: -1 = smaller is better,
# +1 = larger is better. Metrics not listed here never gate.
DIRECTIONS = {
    "hpwl_um": -1,
    "rwl_um": -1,
    "power_w": -1,
    "route_overflow_edges": -1,
    "clock_skew_ps": -1,
    "wns_ps": +1,
    "tns_ns": +1,
}


class SchemaError(Exception):
    """The file parsed as JSON but is not a ppacd-qor-v1 ledger."""


def check_ledger(path, ledger):
    if not isinstance(ledger, dict):
        raise SchemaError(f"{path}: expected a JSON object, "
                          f"got {type(ledger).__name__}")
    schema = ledger.get("schema")
    if schema != "ppacd-qor-v1":
        raise SchemaError(f"{path}: unexpected schema {schema!r} "
                          "(want 'ppacd-qor-v1')")
    for section in ("metrics", "convergence"):
        values = ledger.get(section, {})
        if not isinstance(values, dict):
            raise SchemaError(f"{path}: {section!r} must be an object, "
                              f"got {type(values).__name__}")
        for key, value in values.items():
            if value is None:
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SchemaError(
                    f"{path}: {section}.{key} is not numeric ({value!r})")


def load_ledgers(path):
    """Returns {design_name: ledger}. Accepts a single ledger or a
    {"designs": {...}} collection."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as err:
            raise SchemaError(f"{path}: not valid JSON ({err})") from err
    if isinstance(doc, dict) and "designs" in doc:
        designs = doc["designs"]
        if not isinstance(designs, dict):
            raise SchemaError(f"{path}: 'designs' must be an object, "
                              f"got {type(designs).__name__}")
        for name, ledger in designs.items():
            check_ledger(f"{path}[{name}]", ledger)
        return dict(designs)
    check_ledger(path, doc)
    name = doc.get("design") or "design"
    flow = doc.get("flow")
    key = f"{name}/{flow}" if flow else str(name)
    return {key: doc}


def section_values(ledger, section):
    return {k: v for k, v in ledger.get(section, {}).items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)}


def diff_design(name, base, cur, threshold, regressions):
    print(f"== {name}")
    for section, gated in (("metrics", True), ("convergence", False)):
        base_vals = section_values(base, section)
        cur_vals = section_values(cur, section)
        for key in sorted(set(base_vals) | set(cur_vals)):
            if key not in cur_vals:
                print(f"  {key}: only in baseline")
                continue
            if key not in base_vals:
                print(f"  {key}: only in current "
                      f"({cur_vals[key]:.6g})")
                continue
            b, c = base_vals[key], cur_vals[key]
            delta = c - b
            if b != 0.0:
                pct = delta / abs(b) * 100.0
                pct_text = f"{pct:+.2f}%"
            else:
                pct = float("inf") if delta != 0.0 else 0.0
                pct_text = "n/a" if delta != 0.0 else "+0.00%"
            direction = DIRECTIONS.get(key) if gated else None
            mark = ""
            if direction is not None:
                worse = delta * direction < 0.0
                magnitude = abs(pct) if b != 0.0 else float(
                    "inf") if delta != 0.0 else 0.0
                if worse and magnitude > threshold:
                    regressions.append((name, key, b, c))
                    mark = "  << REGRESSED"
            advisory = "" if gated else "  (advisory)"
            print(f"  {key}: {b:.6g} -> {c:.6g}  ({pct_text})"
                  f"{advisory}{mark}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline .qor.json ledger")
    parser.add_argument("current", help="current .qor.json ledger")
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="regression threshold in percent of the "
                             "baseline magnitude (default: %(default)s)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 if any gated metric regresses past "
                             "the threshold (default: advisory only)")
    args = parser.parse_args()

    try:
        baseline = load_ledgers(args.baseline)
        current = load_ledgers(args.current)
    except OSError as err:
        print(f"qor_diff: cannot read ledger: {err}", file=sys.stderr)
        return EXIT_MISSING_FILE
    except SchemaError as err:
        print(f"qor_diff: {err}", file=sys.stderr)
        return EXIT_BAD_SCHEMA

    common = [name for name in baseline if name in current]
    missing = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))
    regressions = []
    for name in common:
        diff_design(name, baseline[name], current[name], args.threshold,
                    regressions)
    for name in missing:
        print(f"{name}: only in baseline")
    for name in added:
        print(f"{name}: only in current")

    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed more than "
              f"{args.threshold:.1f}%:")
        for name, key, b, c in regressions:
            print(f"  {name} {key}: {b:.6g} -> {c:.6g}")
        if args.fail_on_regression:
            return EXIT_REGRESSION
    else:
        print(f"\nno QoR regressions above {args.threshold:.1f}% "
              f"({len(common)} design(s) compared)")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
