#include <gtest/gtest.h>

#include "liberty/library.hpp"

namespace ppacd::liberty {
namespace {

TEST(Library, Nangate45LikeHasCoreCells) {
  const Library lib = Library::nangate45_like();
  for (const char* name : {"INV_X1", "BUF_X1", "NAND2_X1", "NOR2_X1", "XOR2_X1",
                           "MUX2_X1", "DFF_X1", "CLKBUF_X2", "FA_X1"}) {
    EXPECT_TRUE(lib.find(name).has_value()) << name;
  }
  EXPECT_FALSE(lib.find("NO_SUCH_CELL").has_value());
}

TEST(Library, AllCellsShareRowHeight) {
  const Library lib = Library::nangate45_like();
  for (std::size_t i = 0; i < lib.cell_count(); ++i) {
    EXPECT_DOUBLE_EQ(lib.cell(static_cast<LibCellId>(i)).height_um,
                     lib.row_height_um());
  }
}

TEST(Library, DriveStrengthLadder) {
  const Library lib = Library::nangate45_like();
  const LibCell& x1 = lib.cell(*lib.find("INV_X1"));
  const LibCell& x2 = lib.cell(*lib.find("INV_X2"));
  const LibCell& x4 = lib.cell(*lib.find("INV_X4"));
  // Stronger drives have lower output resistance and larger area/input cap.
  EXPECT_GT(x1.drive_res_kohm, x2.drive_res_kohm);
  EXPECT_GT(x2.drive_res_kohm, x4.drive_res_kohm);
  EXPECT_LT(x1.area_um2(), x4.area_um2());
  EXPECT_LT(x1.pins[0].cap_ff, x4.pins[0].cap_ff);
}

TEST(Library, DffStructure) {
  const Library lib = Library::nangate45_like();
  const LibCell& dff = lib.cell(*lib.find("DFF_X1"));
  EXPECT_TRUE(is_sequential(dff.function));
  EXPECT_EQ(dff.data_input_count(), 1);
  EXPECT_GE(dff.clock_pin_index(), 0);
  EXPECT_TRUE(dff.pins[static_cast<std::size_t>(dff.clock_pin_index())].is_clock);
  EXPECT_GE(dff.output_pin_index(), 0);
  EXPECT_GT(dff.setup_ps, 0.0);
}

TEST(Library, CombinationalCellsAreNotSequential) {
  const Library lib = Library::nangate45_like();
  const LibCell& nand2 = lib.cell(*lib.find("NAND2_X1"));
  EXPECT_FALSE(is_sequential(nand2.function));
  EXPECT_EQ(nand2.data_input_count(), 2);
  EXPECT_EQ(nand2.clock_pin_index(), -1);
}

TEST(Library, OutputPinsHaveZeroCap) {
  const Library lib = Library::nangate45_like();
  for (std::size_t i = 0; i < lib.cell_count(); ++i) {
    const LibCell& cell = lib.cell(static_cast<LibCellId>(i));
    for (const LibPin& pin : cell.pins) {
      if (pin.dir == PinDir::kOutput) EXPECT_DOUBLE_EQ(pin.cap_ff, 0.0);
      else EXPECT_GT(pin.cap_ff, 0.0);
    }
  }
}

TEST(Library, AddCellAssignsSequentialIds) {
  Library lib;
  LibCell a;
  a.name = "A";
  LibCell b;
  b.name = "B";
  EXPECT_EQ(lib.add_cell(std::move(a)), LibCellId(0));
  EXPECT_EQ(lib.add_cell(std::move(b)), LibCellId(1));
  EXPECT_EQ(lib.cell(LibCellId(1)).name, "B");
}

}  // namespace
}  // namespace ppacd::liberty
