#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/fc_multilevel.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "netlist/subnetlist.hpp"
#include "vpr/vpr.hpp"

namespace ppacd::vpr {
namespace {

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

netlist::Netlist small_design(int cells = 500) {
  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = cells;
  return gen::generate(lib(), spec);
}

/// A ~80-cell sub-netlist extracted from one FC cluster.
netlist::SubNetlist sample_cluster(const netlist::Netlist& nl) {
  cluster::FcOptions fc;
  fc.target_cluster_count = 6;
  const cluster::FcResult result =
      cluster::fc_multilevel_cluster(nl, cluster::FcPpaInputs{}, fc);
  // Pick the largest cluster.
  std::vector<std::vector<netlist::CellId>> members(
      static_cast<std::size_t>(result.cluster_count));
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    members[static_cast<std::size_t>(result.cluster_of_cell[ci])].push_back(
        static_cast<netlist::CellId>(ci));
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < members.size(); ++i) {
    if (members[i].size() > members[best].size()) best = i;
  }
  return netlist::extract_subnetlist(nl, members[best]);
}

TEST(Vpr, TwentyCandidateShapes) {
  const auto shapes = candidate_shapes(VprOptions{});
  ASSERT_EQ(shapes.size(), 20u);
  // Paper sweep: AR in [0.75, 1.75] step 0.25; util in [0.75, 0.90] step 0.05.
  double min_ar = 10, max_ar = 0, min_u = 10, max_u = 0;
  for (const auto& s : shapes) {
    min_ar = std::min(min_ar, s.aspect_ratio);
    max_ar = std::max(max_ar, s.aspect_ratio);
    min_u = std::min(min_u, s.utilization);
    max_u = std::max(max_u, s.utilization);
  }
  EXPECT_DOUBLE_EQ(min_ar, 0.75);
  EXPECT_DOUBLE_EQ(max_ar, 1.75);
  EXPECT_DOUBLE_EQ(min_u, 0.75);
  EXPECT_DOUBLE_EQ(max_u, 0.90);
}

TEST(Vpr, EvaluateShapeProducesCosts) {
  const netlist::Netlist nl = small_design();
  const netlist::SubNetlist sub = sample_cluster(nl);
  cluster::ClusterShape shape;
  const ShapeCandidate candidate = evaluate_shape(sub.netlist, shape, VprOptions{});
  EXPECT_GT(candidate.hpwl_cost, 0.0);
  EXPECT_GE(candidate.congestion_cost, 0.0);
  EXPECT_NEAR(candidate.total_cost,
              candidate.hpwl_cost + 0.01 * candidate.congestion_cost, 1e-12);
}

TEST(Vpr, RunVprPicksArgmin) {
  const netlist::Netlist nl = small_design();
  const netlist::SubNetlist sub = sample_cluster(nl);
  const VprResult result = run_vpr(sub.netlist, VprOptions{});
  ASSERT_EQ(result.candidates.size(), 20u);
  double best = result.candidates[result.best_index].total_cost;
  for (const ShapeCandidate& c : result.candidates) {
    EXPECT_GE(c.total_cost + 1e-12, best);
  }
}

TEST(Vpr, ShapeMattersForCost) {
  // Costs must actually vary across candidates, otherwise the whole V-P&R
  // machinery (and the ML model) would be pointless.
  const netlist::Netlist nl = small_design();
  const netlist::SubNetlist sub = sample_cluster(nl);
  const VprResult result = run_vpr(sub.netlist, VprOptions{});
  double min_cost = result.candidates[0].total_cost;
  double max_cost = min_cost;
  for (const ShapeCandidate& c : result.candidates) {
    min_cost = std::min(min_cost, c.total_cost);
    max_cost = std::max(max_cost, c.total_cost);
  }
  EXPECT_GT(max_cost, min_cost * 1.01);
}

TEST(Vpr, SelectShapesHonoursThreshold) {
  const netlist::Netlist nl = small_design(800);
  cluster::FcOptions fc;
  fc.target_cluster_count = 8;
  const cluster::FcResult result =
      cluster::fc_multilevel_cluster(nl, cluster::FcPpaInputs{}, fc);
  cluster::ClusteredNetlist clustered = cluster::build_clustered_netlist(
      nl, result.cluster_of_cell, result.cluster_count);

  VprOptions options;
  options.min_cluster_instances = 1 << 20;  // nothing qualifies
  const ShapeSelectionStats none =
      select_cluster_shapes(nl, clustered, options, nullptr);
  EXPECT_EQ(none.clusters_shaped, 0);

  options.min_cluster_instances = 40;
  const ShapeSelectionStats some =
      select_cluster_shapes(nl, clustered, options, nullptr);
  EXPECT_GT(some.clusters_shaped, 0);
  EXPECT_DOUBLE_EQ(some.vpr_runs, some.clusters_shaped * 20.0);
}

TEST(Vpr, PredictorShortCircuitsVpr) {
  const netlist::Netlist nl = small_design(800);
  cluster::FcOptions fc;
  fc.target_cluster_count = 8;
  const cluster::FcResult result =
      cluster::fc_multilevel_cluster(nl, cluster::FcPpaInputs{}, fc);
  cluster::ClusteredNetlist clustered = cluster::build_clustered_netlist(
      nl, result.cluster_of_cell, result.cluster_count);

  // Predictor that always prefers the last candidate (AR 1.75, util 0.90).
  const ShapeCostPredictor predictor =
      [](const netlist::Netlist&, const std::vector<cluster::ClusterShape>& c) {
        std::vector<double> costs(c.size(), 1.0);
        costs.back() = 0.0;
        return costs;
      };
  VprOptions options;
  options.min_cluster_instances = 40;
  const ShapeSelectionStats stats =
      select_cluster_shapes(nl, clustered, options, &predictor);
  EXPECT_GT(stats.clusters_shaped, 0);
  EXPECT_DOUBLE_EQ(stats.vpr_runs, 0.0);
  for (const cluster::Cluster& c : clustered.clusters) {
    if (static_cast<int>(c.cells.size()) > options.min_cluster_instances) {
      EXPECT_DOUBLE_EQ(c.shape.aspect_ratio, 1.75);
      EXPECT_DOUBLE_EQ(c.shape.utilization, 0.90);
    }
  }
}

TEST(Vpr, LShapeEvaluationProducesComparableCosts) {
  const netlist::Netlist nl = small_design();
  const netlist::SubNetlist sub = sample_cluster(nl);
  cluster::ClusterShape shape;
  const ShapeCandidate rect = evaluate_shape(sub.netlist, shape, VprOptions{});
  const ShapeCandidate l25 =
      evaluate_l_shape(sub.netlist, shape, 0.25, VprOptions{});
  EXPECT_GT(l25.hpwl_cost, 0.0);
  EXPECT_GE(l25.congestion_cost, 0.0);
  // Same cost scale: within 3x of the rectangular result.
  EXPECT_LT(l25.total_cost, rect.total_cost * 3.0);
  EXPECT_GT(l25.total_cost, rect.total_cost / 3.0);
}

TEST(Vpr, DeeperNotchNeverHelpsIsolatedHpwl) {
  // More notch means a larger gross die at equal usable area, so the
  // normalized HPWL cost should not improve substantially.
  const netlist::Netlist nl = small_design();
  const netlist::SubNetlist sub = sample_cluster(nl);
  cluster::ClusterShape shape;
  const double c15 = evaluate_l_shape(sub.netlist, shape, 0.15, VprOptions{}).total_cost;
  const double c35 = evaluate_l_shape(sub.netlist, shape, 0.35, VprOptions{}).total_cost;
  EXPECT_GT(c35, c15 * 0.9);
}

}  // namespace
}  // namespace ppacd::vpr
