#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "flow/report.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"

namespace ppacd::telemetry {
namespace {

// Tests share the process-wide registry/span store; each test that inspects
// global state resets it first.

TEST(Metrics, CounterSemantics) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(5);
  EXPECT_EQ(c.value(), 6);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Metrics, GaugeKeepsLastValue) {
  Gauge g;
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, HistogramBucketsInclusiveCeilings) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0
  h.observe(1.0);    // bucket 0 (inclusive ceiling)
  h.observe(2.0);    // bucket 1
  h.observe(100.0);  // bucket 2
  h.observe(1e9);    // overflow
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 2.0 + 100.0 + 1e9);
  const std::vector<std::int64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[2], 1);
  EXPECT_EQ(buckets[3], 1);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(Metrics, PercentileEdgeCases) {
  // No samples: every quantile is 0.0 by contract.
  Histogram empty({1.0, 10.0});
  EXPECT_EQ(empty.percentile(0.0), 0.0);
  EXPECT_EQ(empty.percentile(0.5), 0.0);
  EXPECT_EQ(empty.percentile(1.0), 0.0);

  // One sample: rank 1 for every q, so every quantile is that sample's
  // bucket ceiling.
  Histogram one({1.0, 10.0, 100.0});
  one.observe(5.0);  // bucket 1: (1, 10]
  EXPECT_DOUBLE_EQ(one.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(one.percentile(1.0), 10.0);

  // The first bucket has no known lower edge; it is pinned to bounds[0].
  Histogram first({1.0, 10.0});
  first.observe(0.5);
  EXPECT_DOUBLE_EQ(first.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(first.percentile(1.0), 1.0);

  // Overflow bucket is pinned to the last bound, never extrapolated.
  Histogram over({1.0, 10.0});
  over.observe(1e9);
  EXPECT_DOUBLE_EQ(over.percentile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(over.percentile(1.0), 10.0);

  // q outside [0, 1] clamps instead of reading out of range.
  EXPECT_DOUBLE_EQ(one.percentile(-3.0), one.percentile(0.0));
  EXPECT_DOUBLE_EQ(one.percentile(7.0), one.percentile(1.0));
}

TEST(Metrics, PercentileFromBucketsHugeCountsAndDegenerates) {
  // Empty bounds: nothing to interpolate against.
  EXPECT_EQ(percentile_from_buckets({}, {}, 0.5), 0.0);
  EXPECT_EQ(percentile_from_buckets({}, {5}, 0.5), 0.0);

  // Huge counts: ranks are computed in doubles; 2^40 samples per bucket
  // must not overflow or lose the bucket walk.
  const std::int64_t big = std::int64_t{1} << 40;
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  const std::vector<std::int64_t> counts = {big, big, big, 0};
  EXPECT_DOUBLE_EQ(percentile_from_buckets(bounds, counts, 0.0), 1.0);
  // Median falls mid-way through the second bucket (1, 2].
  EXPECT_NEAR(percentile_from_buckets(bounds, counts, 0.5), 1.5, 1e-6);
  EXPECT_DOUBLE_EQ(percentile_from_buckets(bounds, counts, 1.0), 4.0);

  // Zero-count buckets are skipped, not divided by: the single sample in
  // bucket 2 answers every quantile with that bucket's ceiling.
  const std::vector<std::int64_t> sparse = {0, 0, 1, 0};
  EXPECT_DOUBLE_EQ(percentile_from_buckets(bounds, sparse, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile_from_buckets(bounds, sparse, 1.0), 4.0);
}

TEST(Metrics, RegistryReturnsStableHandles) {
  metrics().reset();
  Counter& a = metrics().counter("test.registry.counter");
  Counter& b = metrics().counter("test.registry.counter");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3);
  // reset() zeroes values but keeps handles valid.
  metrics().reset();
  EXPECT_EQ(a.value(), 0);
  a.add(1);
  EXPECT_EQ(metrics().counter("test.registry.counter").value(), 1);
}

TEST(Metrics, ConcurrentIncrementsAreLossless) {
  metrics().reset();
  Counter& counter = metrics().counter("test.concurrent.counter");
  Histogram& hist = metrics().histogram("test.concurrent.hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &hist] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add(1);
        hist.observe(1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(hist.sum(), static_cast<double>(kThreads * kPerThread));
}

TEST(Metrics, SnapshotJsonContainsAllKinds) {
  metrics().reset();
  metrics().counter("test.snap.counter").add(7);
  metrics().gauge("test.snap.gauge").set(2.5);
  metrics().histogram("test.snap.hist").observe(42.0);
  const Json snap = metrics().to_json();
  ASSERT_TRUE(snap.is_object());
  const Json* counters = snap.find("counters");
  ASSERT_NE(counters, nullptr);
  const Json* c = counters->find("test.snap.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->as_double(), 7.0);
  const Json* gauges = snap.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("test.snap.gauge")->as_double(), 2.5);
  const Json* hists = snap.find("histograms");
  ASSERT_NE(hists, nullptr);
  const Json* h = hists->find("test.snap.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->find("count")->as_double(), 1.0);
  EXPECT_DOUBLE_EQ(h->find("sum")->as_double(), 42.0);
}

TEST(Spans, NestingRecordsParentAndDepth) {
  reset_spans();
  {
    TraceSpan outer("test.outer");
    outer.attr("k", 1.0);
    {
      TraceSpan inner("test.inner");
      inner.attr("label", std::string_view("abc"));
    }
    TraceSpan sibling("test.sibling");
  }
  const std::vector<SpanRecord> spans = span_snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Records appear in creation order.
  EXPECT_EQ(spans[0].name, "test.outer");
  EXPECT_EQ(spans[1].name, "test.inner");
  EXPECT_EQ(spans[2].name, "test.sibling");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].depth, 1);
  EXPECT_EQ(spans[2].parent, 0);
  // All closed, with children contained in the parent interval.
  for (const SpanRecord& s : spans) EXPECT_GE(s.dur_us, 0.0);
  EXPECT_GE(spans[1].start_us, spans[0].start_us);
  EXPECT_LE(spans[1].start_us + spans[1].dur_us,
            spans[0].start_us + spans[0].dur_us + 1.0);
  // Attributes survive.
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].key, "k");
  EXPECT_TRUE(spans[0].attrs[0].is_number);
  ASSERT_EQ(spans[1].attrs.size(), 1u);
  EXPECT_FALSE(spans[1].attrs[0].is_number);
  EXPECT_EQ(spans[1].attrs[0].text, "abc");
}

TEST(Spans, AnchoredSpanParentsOffMainThreadSpans) {
  reset_spans();
  {
    TraceSpan phase("test.phase");
    phase.anchor();
    // A thread with an empty span stack parents under the anchored span
    // instead of becoming a root (what worker-side spans rely on).
    std::thread worker([] { TraceSpan child("test.worker_child"); });
    worker.join();
    {
      // On the anchoring thread the normal stack parenting still wins.
      TraceSpan inline_child("test.inline_child");
    }
  }
  {
    // The anchor dies with its span: a later off-stack span is a root again.
    std::thread worker([] { TraceSpan orphan("test.after_anchor"); });
    worker.join();
  }
  const std::vector<SpanRecord> spans = span_snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "test.phase");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].name, "test.worker_child");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "test.inline_child");
  EXPECT_EQ(spans[2].parent, 0);
  EXPECT_EQ(spans[3].name, "test.after_anchor");
  EXPECT_EQ(spans[3].parent, -1);
}

TEST(Spans, InactiveSpanRecordsNothing) {
  reset_spans();
  {
    TraceSpan off("test.off", false);
    off.attr("ignored", 1.0);
  }
  EXPECT_TRUE(span_snapshot().empty());
}

TEST(Spans, ChromeTraceHasOneEventPerSpan) {
  reset_spans();
  {
    TraceSpan outer("test.chrome.outer");
    TraceSpan inner("test.chrome.inner");
  }
  const Json trace = chrome_trace_json();
  const Json* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 2u);
  const Json& ev = events->at(0);
  EXPECT_EQ(ev.find("name")->as_string(), "test.chrome.outer");
  EXPECT_EQ(ev.find("ph")->as_string(), "X");
  EXPECT_TRUE(ev.contains("ts"));
  EXPECT_TRUE(ev.contains("dur"));
}

TEST(Json, RoundTripPreservesStructure) {
  Json obj = Json::object();
  obj.set("int", 42);
  obj.set("neg", -1.5);
  obj.set("big", 123456789012345.0);
  obj.set("str", "a \"quoted\"\nline\t\\");
  obj.set("flag", true);
  obj.set("nil", Json());
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  Json nested = Json::object();
  nested.set("k", 3.25);
  arr.push_back(std::move(nested));
  obj.set("arr", std::move(arr));

  for (const int indent : {-1, 2}) {
    const std::string text = obj.dump(indent);
    const std::optional<Json> parsed = Json::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_DOUBLE_EQ(parsed->find("int")->as_double(), 42.0);
    EXPECT_DOUBLE_EQ(parsed->find("neg")->as_double(), -1.5);
    EXPECT_DOUBLE_EQ(parsed->find("big")->as_double(), 123456789012345.0);
    EXPECT_EQ(parsed->find("str")->as_string(), "a \"quoted\"\nline\t\\");
    EXPECT_TRUE(parsed->find("flag")->as_bool());
    EXPECT_TRUE(parsed->find("nil")->is_null());
    const Json* arr2 = parsed->find("arr");
    ASSERT_NE(arr2, nullptr);
    ASSERT_EQ(arr2->size(), 3u);
    EXPECT_EQ(arr2->at(1).as_string(), "two");
    EXPECT_DOUBLE_EQ(arr2->at(2).find("k")->as_double(), 3.25);
  }
}

TEST(Json, EscapesControlCharactersAndPassesUtf8Through) {
  // Named escapes plus the \u00xx fallback for other control bytes.
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line1\nline2\r\tend"), "line1\\nline2\\r\\tend");
  EXPECT_EQ(json_escape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(json_escape(std::string_view("nul\0char", 8)), "nul\\u0000char");
  // Non-ASCII metric/design names are raw UTF-8, not escape sequences.
  EXPECT_EQ(json_escape("dise\xc3\xb1o_\xe6\xb8\xac\xe8\xa9\xa6"),
            "dise\xc3\xb1o_\xe6\xb8\xac\xe8\xa9\xa6");
}

TEST(Json, ControlCharacterNamesSurviveDumpAndReparse) {
  // A hostile design/metric name must produce valid JSON, not a broken
  // document. (Reports embed user-supplied design names as object keys.)
  Json obj = Json::object();
  obj.set("bad\nkey\x02", "bad\tvalue\x1f");
  obj.set("dise\xc3\xb1o", 1.0);
  const std::string text = obj.dump(-1);
  const std::optional<Json> parsed = Json::parse(text);
  ASSERT_TRUE(parsed.has_value()) << text;
  const Json* value = parsed->find("bad\nkey\x02");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->as_string(), "bad\tvalue\x1f");
  ASSERT_NE(parsed->find("dise\xc3\xb1o"), nullptr);
  EXPECT_DOUBLE_EQ(parsed->find("dise\xc3\xb1o")->as_double(), 1.0);
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(Json::parse("'single'").has_value());
  EXPECT_FALSE(Json::parse("nan").has_value());
}

TEST(RunReport, EmittedJsonRoundTrips) {
  reset_spans();
  metrics().reset();
  // Synthesize the telemetry a flow run would leave behind.
  {
    TraceSpan cluster("flow.cluster");
    cluster.attr("clusters", 12.0);
    { TraceSpan extract("flow.extract"); }
  }
  { TraceSpan place("flow.seed_place"); }
  metrics().counter("place.gp.iterations").add(24);
  metrics().gauge("place.gp.overflow").set(0.05);

  flow::FlowOptions options;
  flow::PlaceOutcome place;
  place.hpwl_um = 1234.5;
  place.cluster_count = 12;
  flow::PpaOutcome ppa;
  ppa.rwl_um = 2345.0;
  ppa.wns_ps = -10.0;

  flow::RunReportInputs inputs;
  inputs.design = "unit";
  inputs.flow = "ours";
  inputs.options = &options;
  inputs.place = &place;
  inputs.ppa = &ppa;

  const std::string path = "telemetry_test_report.json";
  ASSERT_TRUE(flow::write_run_report(path, inputs));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::remove(path.c_str());

  const std::optional<Json> parsed = Json::parse(buffer.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("design")->as_string(), "unit");
  EXPECT_EQ(parsed->find("flow")->as_string(), "ours");
  ASSERT_TRUE(parsed->contains("options"));
  ASSERT_TRUE(parsed->contains("metrics"));
  EXPECT_DOUBLE_EQ(parsed->find("place")->find("hpwl_um")->as_double(), 1234.5);
  EXPECT_DOUBLE_EQ(parsed->find("ppa")->find("wns_ps")->as_double(), -10.0);

  // Phase aggregation: every "flow.*" span shows up by name, nested or not.
  const Json* phases = parsed->find("phases");
  ASSERT_NE(phases, nullptr);
  std::vector<std::string> names;
  for (const Json& phase : phases->elements()) {
    names.push_back(phase.find("name")->as_string());
    EXPECT_GE(phase.find("seconds")->as_double(), 0.0);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "flow.cluster"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "flow.extract"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "flow.seed_place"),
            names.end());
  const Json* counters = parsed->find("metrics")->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->find("place.gp.iterations")->as_double(), 24.0);
}

#if !defined(PPACD_TELEMETRY_DISABLED)
TEST(Macros, RecordIntoGlobalRegistry) {
  reset_spans();
  metrics().reset();
  {
    PPACD_SPAN(outer, "test.macro.outer");
    PPACD_SPAN_ATTR(outer, "n", 2);
    PPACD_SPAN_IF(inner, "test.macro.inner", true);
    PPACD_SPAN_IF(skipped, "test.macro.skipped", false);
    PPACD_COUNT("test.macro.counter", 3);
    PPACD_GAUGE_SET("test.macro.gauge", 1.5);
    PPACD_HIST("test.macro.hist", 0.25);
  }
  const std::vector<SpanRecord> spans = span_snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "test.macro.outer");
  EXPECT_EQ(spans[1].name, "test.macro.inner");
  EXPECT_EQ(metrics().counter("test.macro.counter").value(), 3);
  EXPECT_DOUBLE_EQ(metrics().gauge("test.macro.gauge").value(), 1.5);
  EXPECT_EQ(metrics().histogram("test.macro.hist").count(), 1);
}
#endif  // !PPACD_TELEMETRY_DISABLED

}  // namespace
}  // namespace ppacd::telemetry
