#include <gtest/gtest.h>

#include <set>

#include "cluster/overlay.hpp"
#include "flow/flow.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"

namespace ppacd::cluster {
namespace {

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

netlist::Netlist sample(int cells = 400) {
  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = cells;
  return gen::generate(lib(), spec);
}

TEST(Overlay, IntersectionHandComputed) {
  // Partition A: {0,1}{2,3}; partition B: {0,2}{1,3} -> overlay: singletons.
  const std::vector<std::int32_t> a = {0, 0, 1, 1};
  const std::vector<std::int32_t> b = {0, 1, 0, 1};
  std::int32_t count = 0;
  const auto overlay = overlay_partitions({&a, &b}, &count);
  EXPECT_EQ(count, 4);
  std::set<std::int32_t> used(overlay.begin(), overlay.end());
  EXPECT_EQ(used.size(), 4u);
}

TEST(Overlay, AgreementPreserved) {
  // Both partitions agree on {0,1} together -> they stay together.
  const std::vector<std::int32_t> a = {0, 0, 1, 2};
  const std::vector<std::int32_t> b = {5, 5, 5, 6};
  std::int32_t count = 0;
  const auto overlay = overlay_partitions({&a, &b}, &count);
  EXPECT_EQ(overlay[0], overlay[1]);
  EXPECT_NE(overlay[0], overlay[2]);
  EXPECT_NE(overlay[2], overlay[3]);
  EXPECT_EQ(count, 3);
}

TEST(Overlay, IdenticalPartitionsAreFixedPoint) {
  const std::vector<std::int32_t> a = {0, 1, 0, 2, 1};
  std::int32_t count = 0;
  const auto overlay = overlay_partitions({&a, &a, &a}, &count);
  EXPECT_EQ(count, 3);
  // Same grouping structure (up to relabeling).
  EXPECT_EQ(overlay[0], overlay[2]);
  EXPECT_EQ(overlay[1], overlay[4]);
  EXPECT_NE(overlay[0], overlay[1]);
}

TEST(Overlay, RefinesEveryInput) {
  // Overlay is a refinement: cells together in the overlay must be together
  // in every input partition.
  const netlist::Netlist nl = sample();
  CutOverlayOptions options;
  options.min_fragment_size = 0;  // pure intersection
  const CutOverlayResult result = cut_overlay_cluster(nl, options);

  FcOptions fc;
  fc.seed = options.seed;  // first input solution reproduces with this seed
  const FcResult first = fc_multilevel_cluster(nl, FcPpaInputs{}, fc);
  for (std::size_t i = 0; i < nl.cell_count(); ++i) {
    for (std::size_t j = i + 1; j < nl.cell_count(); ++j) {
      if (result.cluster_of_cell[i] == result.cluster_of_cell[j]) {
        ASSERT_EQ(first.cluster_of_cell[i], first.cluster_of_cell[j])
            << "overlay joined " << i << "," << j << " across a cut";
      }
    }
  }
}

TEST(Overlay, MoreSolutionsNeverCoarser) {
  const netlist::Netlist nl = sample();
  CutOverlayOptions two;
  two.solutions = 2;
  two.min_fragment_size = 0;
  CutOverlayOptions four;
  four.solutions = 4;
  four.min_fragment_size = 0;
  const auto a = cut_overlay_cluster(nl, two);
  const auto b = cut_overlay_cluster(nl, four);
  EXPECT_GE(b.cluster_count, a.cluster_count);
}

TEST(Overlay, FragmentAbsorptionReducesCount) {
  const netlist::Netlist nl = sample();
  CutOverlayOptions options;
  options.min_fragment_size = 4;
  const CutOverlayResult result = cut_overlay_cluster(nl, options);
  EXPECT_LE(result.cluster_count, result.pre_absorb_count);
  EXPECT_GT(result.cluster_count, 0);
}

TEST(Overlay, FlowIntegration) {
  netlist::Netlist nl = sample();
  flow::FlowOptions options;
  options.clock_period_ps = 1100.0;
  options.cluster_method = flow::ClusterMethod::kCutOverlay;
  options.vpr.min_cluster_instances = 1 << 20;
  const flow::FlowResult result = flow::run_clustered_flow(nl, options);
  EXPECT_GT(result.place.cluster_count, 1);
  EXPECT_GT(result.place.hpwl_um, 0.0);
}

}  // namespace
}  // namespace ppacd::cluster
