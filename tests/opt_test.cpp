#include <gtest/gtest.h>

#include "flow/flow.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "opt/buffering.hpp"
#include "opt/sizing.hpp"
#include "sta/sta.hpp"

namespace ppacd::opt {
namespace {

using netlist::NetId;
using netlist::Netlist;

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

struct PlacedDesign {
  explicit PlacedDesign(const char* name = "aes", int cells = 600) {
    gen::DesignSpec spec = gen::design_spec(name);
    spec.target_cells = cells;
    clock_ps = spec.clock_period_ps;
    nl.emplace(gen::generate(lib(), spec));
    flow::FlowOptions options;
    options.clock_period_ps = clock_ps;
    options.vpr.min_cluster_instances = 1 << 20;
    const flow::FlowResult result = flow::run_default_flow(*nl, options);
    positions = result.place.positions;
  }
  std::optional<Netlist> nl;
  std::vector<geom::Point> positions;
  double clock_ps = 1000.0;
};

// --- Buffering -----------------------------------------------------------------

TEST(Buffering, SplitsHighFanoutNets) {
  PlacedDesign d;
  std::size_t worst_before = 0;
  for (std::size_t ni = 0; ni < d.nl->net_count(); ++ni) {
    const auto& net = d.nl->net(static_cast<NetId>(ni));
    if (!net.is_clock) worst_before = std::max(worst_before, net.pins.size());
  }
  BufferingOptions options;
  options.max_fanout = 8;
  options.sinks_per_buffer = 4;
  const BufferingResult result =
      buffer_high_fanout(*d.nl, d.positions, options);
  ASSERT_GT(result.buffered_nets, 0)
      << "worst non-clock fanout " << worst_before;
  EXPECT_GT(result.inserted_buffers, 0);
  EXPECT_TRUE(d.nl->validate().empty());
  EXPECT_EQ(d.positions.size(), d.nl->cell_count());

  // No non-clock net exceeds max(trunk = buffers-per-net, leaf group size)
  // beyond the pre-pass worst... concretely: every original high-fanout net
  // was reduced.
  std::size_t worst_after = 0;
  for (std::size_t ni = 0; ni < d.nl->net_count(); ++ni) {
    const auto& net = d.nl->net(static_cast<NetId>(ni));
    if (!net.is_clock) worst_after = std::max(worst_after, net.pins.size());
  }
  EXPECT_LT(worst_after, worst_before);
}

TEST(Buffering, ImprovesWorstSlackOnHubHeavyDesign) {
  PlacedDesign d("aes", 800);
  sta::StaOptions sta_options;
  sta_options.clock_period_ps = d.clock_ps;
  sta_options.cell_positions = &d.positions;
  sta::Sta before(*d.nl, sta_options);
  before.run();

  BufferingOptions options;
  options.max_fanout = 16;
  buffer_high_fanout(*d.nl, d.positions, options);
  sta::Sta after(*d.nl, sta_options);
  after.run();
  // Buffering trades a little insertion delay for far smaller loads on hub
  // drivers; TNS must not get dramatically worse and usually improves.
  EXPECT_GE(after.tns_ns(), before.tns_ns() * 1.2);  // at most 20% worse
}

TEST(Buffering, ClockNetUntouched) {
  PlacedDesign d;
  NetId clk = netlist::kInvalidId;
  for (std::size_t ni = 0; ni < d.nl->net_count(); ++ni) {
    if (d.nl->net(static_cast<NetId>(ni)).is_clock) clk = static_cast<NetId>(ni);
  }
  ASSERT_NE(clk, netlist::kInvalidId);
  const std::size_t degree_before = d.nl->net(clk).pins.size();
  BufferingOptions options;
  options.max_fanout = 4;  // would shred the clock if not excluded
  buffer_high_fanout(*d.nl, d.positions, options);
  EXPECT_EQ(d.nl->net(clk).pins.size(), degree_before);
}

TEST(Buffering, NoOpWhenThresholdHuge) {
  PlacedDesign d;
  BufferingOptions options;
  options.max_fanout = 1 << 20;
  const BufferingResult result =
      buffer_high_fanout(*d.nl, d.positions, options);
  EXPECT_EQ(result.buffered_nets, 0);
  EXPECT_EQ(result.inserted_buffers, 0);
}

// --- Sizing --------------------------------------------------------------------

TEST(Sizing, ImprovesTimingOnViolatingDesign) {
  PlacedDesign d("aes", 800);
  SizingOptions options;
  options.clock_period_ps = d.clock_ps;
  const SizingResult result =
      resize_critical_cells(*d.nl, d.positions, options);
  EXPECT_TRUE(d.nl->validate().empty());
  ASSERT_LT(result.wns_before_ps, 0.0) << "test design must violate";
  EXPECT_GT(result.upsized_cells, 0);
  EXPECT_GE(result.wns_after_ps, result.wns_before_ps);
  EXPECT_GE(result.tns_after_ns, result.tns_before_ns);
}

TEST(Sizing, RespectsRoundBudget) {
  PlacedDesign d("aes", 500);
  SizingOptions options;
  options.clock_period_ps = d.clock_ps;
  options.max_rounds = 1;
  const SizingResult result =
      resize_critical_cells(*d.nl, d.positions, options);
  EXPECT_LE(result.rounds, 1);
}

TEST(Sizing, NoOpWhenTimingClean) {
  PlacedDesign d("aes", 400);
  SizingOptions options;
  options.clock_period_ps = 1e7;  // everything meets timing
  const SizingResult result =
      resize_critical_cells(*d.nl, d.positions, options);
  EXPECT_EQ(result.upsized_cells, 0);
  EXPECT_DOUBLE_EQ(result.wns_after_ps, 0.0);
}

TEST(Sizing, SwapLibCellPreservesConnectivity) {
  Netlist nl(lib(), "t");
  const auto x1 = *lib().find("INV_X1");
  const auto x2 = *lib().find("INV_X2");
  const auto a = nl.add_cell("a", x1, nl.root_module());
  const auto in = nl.add_port("in", liberty::PinDir::kInput);
  const auto out = nl.add_port("out", liberty::PinDir::kOutput);
  const auto n0 = nl.add_net("n0");
  nl.connect(n0, nl.port(in).pin);
  nl.connect(n0, nl.cell_pin(a, 0));
  const auto n1 = nl.add_net("n1");
  nl.connect(n1, nl.cell_output_pin(a));
  nl.connect(n1, nl.port(out).pin);

  nl.swap_lib_cell(a, x2);
  EXPECT_TRUE(nl.validate().empty());
  EXPECT_EQ(nl.cell(a).lib_cell, x2);
  EXPECT_DOUBLE_EQ(nl.lib_cell_of(a).drive_res_kohm,
                   lib().cell(x2).drive_res_kohm);
}

TEST(Sizing, DisconnectDetachesSink) {
  Netlist nl(lib(), "t");
  const auto inv = *lib().find("INV_X1");
  const auto a = nl.add_cell("a", inv, nl.root_module());
  const auto b = nl.add_cell("b", inv, nl.root_module());
  const auto n = nl.add_net("n");
  nl.connect(n, nl.cell_output_pin(a));
  nl.connect(n, nl.cell_pin(b, 0));
  EXPECT_EQ(nl.net(n).pins.size(), 2u);
  nl.disconnect(nl.cell_pin(b, 0));
  EXPECT_EQ(nl.net(n).pins.size(), 1u);
  EXPECT_EQ(nl.pin(nl.cell_pin(b, 0)).net, netlist::kInvalidId);
}

// --- Combined pipeline -----------------------------------------------------------

TEST(TimingOpt, BufferThenSizePipeline) {
  PlacedDesign d("jpeg", 900);
  sta::StaOptions sta_options;
  sta_options.clock_period_ps = d.clock_ps;
  sta_options.cell_positions = &d.positions;
  sta::Sta before(*d.nl, sta_options);
  before.run();

  BufferingOptions buf;
  buf.max_fanout = 20;
  buffer_high_fanout(*d.nl, d.positions, buf);
  SizingOptions size;
  size.clock_period_ps = d.clock_ps;
  const SizingResult sized = resize_critical_cells(*d.nl, d.positions, size);

  EXPECT_TRUE(d.nl->validate().empty());
  // The pipeline should not be worse than the raw design.
  EXPECT_GE(sized.tns_after_ns, before.tns_ns());
}

}  // namespace
}  // namespace ppacd::opt
