#include <gtest/gtest.h>

#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "place/floorplan.hpp"
#include "place/global_placer.hpp"
#include "place/legalizer.hpp"
#include "place/model.hpp"
#include "route/global_router.hpp"
#include "route/steiner.hpp"

namespace ppacd::route {
namespace {

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

TEST(Steiner, TwoPinsOneSegment) {
  const auto segs = spanning_segments({{0, 0}, {3, 4}});
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_DOUBLE_EQ(total_length(segs), 7.0);
}

TEST(Steiner, FewerThanTwoPinsEmpty) {
  EXPECT_TRUE(spanning_segments({}).empty());
  EXPECT_TRUE(spanning_segments({{1, 1}}).empty());
}

TEST(Steiner, TreeSpansAllPins) {
  const std::vector<geom::Point> pins = {{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}};
  const auto segs = spanning_segments(pins);
  EXPECT_EQ(segs.size(), pins.size() - 1);
}

TEST(Steiner, MstNotWorseThanStar) {
  // MST length must be <= star from any pin.
  std::vector<geom::Point> pins;
  for (int i = 0; i < 20; ++i) {
    pins.push_back({static_cast<double>(i * 7 % 50), static_cast<double>(i * 13 % 40)});
  }
  const double mst = total_length(spanning_segments(pins));
  double star = 0.0;
  for (std::size_t i = 1; i < pins.size(); ++i) {
    star += geom::manhattan(pins[0], pins[i]);
  }
  EXPECT_LE(mst, star + 1e-9);
}

TEST(Steiner, CollinearPinsChainLength) {
  const auto segs = spanning_segments({{0, 0}, {5, 0}, {10, 0}, {2, 0}});
  EXPECT_DOUBLE_EQ(total_length(segs), 10.0);
}

struct RoutedDesign {
  explicit RoutedDesign(int cells = 500) : nl(make(cells)) {
    place::FloorplanOptions fpo;
    fpo.utilization = 0.6;
    fp = place::Floorplan::create(nl.total_cell_area(), lib().row_height_um(), fpo);
    place::place_ports_on_boundary(nl, fp);
    const place::PlaceModel model = place::make_place_model(nl, fp);
    const auto gp = place::GlobalPlacer(model, place::GlobalPlacerOptions{}).run();
    const auto lg = place::legalize(model, gp.placement);
    positions = place::cell_positions(nl, lg.placement);
  }
  static netlist::Netlist make(int cells) {
    gen::DesignSpec spec = gen::design_spec("aes");
    spec.target_cells = cells;
    return gen::generate(lib(), spec);
  }
  netlist::Netlist nl;
  place::Floorplan fp;
  std::vector<geom::Point> positions;
};

TEST(GlobalRouter, RoutedWirelengthAtLeastGridHpwl) {
  RoutedDesign d;
  GlobalRouter router(d.nl, d.positions, d.fp.core, RouteOptions{});
  const RouteResult result = router.run();
  EXPECT_GT(result.wirelength_um, 0.0);
  EXPECT_GT(result.grid_nx, 1);
  EXPECT_GT(result.grid_ny, 1);
  // Routed length can't be shorter than ~the sum of net HPWLs minus the
  // quantization of the GCell grid (allow generous slack for small nets that
  // collapse into one GCell).
  const double hpwl = place::netlist_hpwl(d.nl, d.positions);
  EXPECT_GT(result.wirelength_um, 0.3 * hpwl);
}

TEST(GlobalRouter, UtilizationsExposedForEquation5) {
  RoutedDesign d;
  GlobalRouter router(d.nl, d.positions, d.fp.core, RouteOptions{});
  const RouteResult result = router.run();
  ASSERT_FALSE(result.edge_utilization.empty());
  // Top-1% congestion >= top-50% congestion >= 0.
  const double top1 = result.top_congestion(1.0);
  const double top50 = result.top_congestion(50.0);
  EXPECT_GE(top1, top50);
  EXPECT_GE(top50, 0.0);
  EXPECT_GE(result.max_utilization, top1 - 1e-12);
}

TEST(GlobalRouter, RerouteReducesOverflow) {
  RoutedDesign d;
  // Tight but not hopeless: with globally over-subscribed capacity the total
  // overflow is conserved and negotiation can only redistribute it.
  RouteOptions tight;
  tight.h_capacity = 6;
  tight.v_capacity = 6;
  RouteOptions no_rrr = tight;
  no_rrr.rrr_rounds = 0;
  const RouteResult base = GlobalRouter(d.nl, d.positions, d.fp.core, no_rrr).run();
  const RouteResult improved =
      GlobalRouter(d.nl, d.positions, d.fp.core, tight).run();
  EXPECT_LT(improved.total_overflow, base.total_overflow);
}

TEST(GlobalRouter, ClockNetSkippedByDefault) {
  RoutedDesign d;
  RouteOptions with_clock;
  with_clock.route_clock_nets = true;
  const RouteResult without = GlobalRouter(d.nl, d.positions, d.fp.core, RouteOptions{}).run();
  const RouteResult with = GlobalRouter(d.nl, d.positions, d.fp.core, with_clock).run();
  EXPECT_GT(with.wirelength_um, without.wirelength_um);
}

TEST(GlobalRouter, SpreadPlacementRoutesLonger) {
  RoutedDesign d;
  // Same netlist, same grid, but a random placement should route longer
  // than the optimized one.
  util::Rng rng(3);
  std::vector<geom::Point> random(d.positions.size());
  for (auto& p : random) {
    p = {rng.uniform(d.fp.core.lx, d.fp.core.ux),
         rng.uniform(d.fp.core.ly, d.fp.core.uy)};
  }
  const RouteResult good = GlobalRouter(d.nl, d.positions, d.fp.core, RouteOptions{}).run();
  const RouteResult bad = GlobalRouter(d.nl, random, d.fp.core, RouteOptions{}).run();
  EXPECT_LT(good.wirelength_um, bad.wirelength_um);
}

}  // namespace
}  // namespace ppacd::route
