#include <gtest/gtest.h>

#include <sstream>

#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "netlist/io.hpp"
#include "netlist/stats.hpp"

namespace ppacd::netlist {
namespace {

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

Netlist sample(int cells = 300) {
  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = cells;
  return gen::generate(lib(), spec);
}

TEST(VerilogIo, WriterEmitsModuleStructure) {
  const Netlist nl = sample(100);
  std::ostringstream out;
  write_verilog(nl, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("module aes"), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
  EXPECT_NE(text.find("input clk;"), std::string::npos);
  EXPECT_NE(text.find("DFF_X1"), std::string::npos);
}

TEST(VerilogIo, RoundTripPreservesStructure) {
  const Netlist original = sample(250);
  std::ostringstream out;
  write_verilog(original, out);

  std::istringstream in(out.str());
  ParseError error;
  const auto restored = read_verilog(in, lib(), &error);
  ASSERT_TRUE(restored.has_value()) << "line " << error.line << ": "
                                    << error.message;
  EXPECT_TRUE(restored->validate().empty());

  const NetlistStats a = compute_stats(original);
  const NetlistStats b = compute_stats(*restored);
  EXPECT_EQ(a.cell_count, b.cell_count);
  EXPECT_EQ(a.net_count, b.net_count);
  EXPECT_EQ(a.port_count, b.port_count);
  EXPECT_EQ(a.register_count, b.register_count);
  EXPECT_EQ(a.pin_count, b.pin_count);
}

TEST(VerilogIo, RoundTripRestoresHierarchy) {
  const Netlist original = sample(250);
  std::ostringstream out;
  write_verilog(original, out);
  std::istringstream in(out.str());
  const auto restored = read_verilog(in, lib());
  ASSERT_TRUE(restored.has_value());
  // Same number of modules carrying cells (empty intermediate modules are
  // recreated implicitly by the path decomposition).
  const NetlistStats a = compute_stats(original);
  const NetlistStats b = compute_stats(*restored);
  EXPECT_EQ(a.max_hierarchy_depth, b.max_hierarchy_depth);
  EXPECT_TRUE(restored->has_hierarchy());
}

TEST(VerilogIo, RoundTripRestoresClockNets) {
  const Netlist original = sample(200);
  std::ostringstream out;
  write_verilog(original, out);
  std::istringstream in(out.str());
  const auto restored = read_verilog(in, lib());
  ASSERT_TRUE(restored.has_value());
  std::size_t clock_nets = 0;
  for (std::size_t ni = 0; ni < restored->net_count(); ++ni) {
    if (restored->net(static_cast<NetId>(ni)).is_clock) ++clock_nets;
  }
  EXPECT_EQ(clock_nets, 1u);
}

TEST(VerilogIo, ReaderRejectsGarbage) {
  std::istringstream in("this is not verilog");
  ParseError error;
  EXPECT_FALSE(read_verilog(in, lib(), &error).has_value());
  EXPECT_FALSE(error.message.empty());
}

TEST(VerilogIo, ReaderRejectsUnknownCell) {
  std::istringstream in(
      "module t (a);\n  input a;\n  BOGUS_X9 g0 (.A(a));\nendmodule\n");
  ParseError error;
  EXPECT_FALSE(read_verilog(in, lib(), &error).has_value());
  EXPECT_NE(error.message.find("unknown cell"), std::string::npos);
}

TEST(VerilogIo, ReaderRejectsUnknownPin) {
  std::istringstream in(
      "module t (a);\n  input a;\n  INV_X1 g0 (.NOPE(a));\nendmodule\n");
  ParseError error;
  EXPECT_FALSE(read_verilog(in, lib(), &error).has_value());
  EXPECT_NE(error.message.find("no pin"), std::string::npos);
}

TEST(PlacementDef, RoundTrip) {
  const Netlist nl = sample(150);
  std::vector<geom::Point> positions(nl.cell_count());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    positions[i] = {static_cast<double>(i) * 1.5 + 0.25,
                    static_cast<double>(i % 7) * 2.8};
  }
  const geom::Rect die = geom::Rect::make(0, 0, 500, 500);
  std::ostringstream out;
  write_placement_def(nl, positions, die, out);

  std::istringstream in(out.str());
  std::vector<geom::Point> restored;
  ParseError error;
  ASSERT_TRUE(read_placement_def(in, nl, &restored, &error))
      << error.message;
  ASSERT_EQ(restored.size(), positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    EXPECT_NEAR(restored[i].x, positions[i].x, 1e-3);  // DBU quantization
    EXPECT_NEAR(restored[i].y, positions[i].y, 1e-3);
  }
}

TEST(PlacementDef, HeaderContainsDieArea) {
  const Netlist nl = sample(50);
  const std::vector<geom::Point> positions(nl.cell_count());
  std::ostringstream out;
  write_placement_def(nl, positions, geom::Rect::make(0, 0, 100, 80), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("DIEAREA ( 0 0 ) ( 100000 80000 )"), std::string::npos);
  EXPECT_NE(text.find("COMPONENTS " + std::to_string(nl.cell_count())),
            std::string::npos);
}

TEST(PlacementDef, UnknownComponentFails) {
  const Netlist nl = sample(50);
  std::istringstream in("- no_such_cell INV_X1 + PLACED ( 10 10 ) N ;\n");
  std::vector<geom::Point> positions;
  ParseError error;
  EXPECT_FALSE(read_placement_def(in, nl, &positions, &error));
  EXPECT_NE(error.message.find("unknown component"), std::string::npos);
}

}  // namespace
}  // namespace ppacd::netlist
