#include <gtest/gtest.h>

#include "cts/cts.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "place/floorplan.hpp"
#include "place/global_placer.hpp"
#include "place/model.hpp"
#include "sta/sta.hpp"

namespace ppacd::cts {
namespace {

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

struct PlacedDesign {
  explicit PlacedDesign(int cells = 400) : nl(make(cells)) {
    fp = place::Floorplan::create(nl.total_cell_area(), lib().row_height_um(),
                                  place::FloorplanOptions{});
    place::place_ports_on_boundary(nl, fp);
    const place::PlaceModel model = place::make_place_model(nl, fp);
    const auto gp = place::GlobalPlacer(model, place::GlobalPlacerOptions{}).run();
    positions = place::cell_positions(nl, gp.placement);
  }
  static netlist::Netlist make(int cells) {
    gen::DesignSpec spec = gen::design_spec("jpeg");
    spec.target_cells = cells;
    return gen::generate(lib(), spec);
  }
  netlist::Netlist nl;
  place::Floorplan fp;
  std::vector<geom::Point> positions;
};

TEST(Cts, BuildsTreeOverAllRegisters) {
  PlacedDesign d;
  const ClockTreeResult tree = synthesize_clock_tree(d.nl, d.positions, CtsOptions{});
  EXPECT_GT(tree.buffer_count, 0);
  EXPECT_GT(tree.wirelength_um, 0.0);
  EXPECT_GT(tree.total_cap_ff, 0.0);
  std::size_t with_delay = 0;
  std::size_t regs = 0;
  for (std::size_t ci = 0; ci < d.nl.cell_count(); ++ci) {
    const bool seq = liberty::is_sequential(
        d.nl.lib_cell_of(static_cast<netlist::CellId>(ci)).function);
    if (seq) {
      ++regs;
      if (tree.insertion_delay_ps[ci] > 0.0) ++with_delay;
    } else {
      EXPECT_DOUBLE_EQ(tree.insertion_delay_ps[ci], 0.0);
    }
  }
  EXPECT_EQ(with_delay, regs);
}

TEST(Cts, SkewIsBounded) {
  PlacedDesign d;
  const ClockTreeResult tree = synthesize_clock_tree(d.nl, d.positions, CtsOptions{});
  EXPECT_GE(tree.max_skew_ps, 0.0);
  // Balanced geometric tree: skew well below the worst insertion delay.
  double max_delay = 0.0;
  for (const double v : tree.insertion_delay_ps) max_delay = std::max(max_delay, v);
  EXPECT_LT(tree.max_skew_ps, max_delay);
}

TEST(Cts, SmallerFanoutMeansMoreBuffers) {
  PlacedDesign d;
  CtsOptions wide;
  wide.max_sinks_per_buffer = 32;
  CtsOptions narrow;
  narrow.max_sinks_per_buffer = 4;
  const ClockTreeResult a = synthesize_clock_tree(d.nl, d.positions, wide);
  const ClockTreeResult b = synthesize_clock_tree(d.nl, d.positions, narrow);
  EXPECT_GT(b.buffer_count, a.buffer_count);
}

TEST(Cts, NoRegistersNoTree) {
  netlist::Netlist nl(lib(), "comb");
  const auto inv = *lib().find("INV_X1");
  const auto in = nl.add_port("in", liberty::PinDir::kInput);
  const auto out = nl.add_port("out", liberty::PinDir::kOutput);
  const auto a = nl.add_cell("a", inv, nl.root_module());
  const auto n0 = nl.add_net("n0");
  nl.connect(n0, nl.port(in).pin);
  nl.connect(n0, nl.cell_pin(a, 0));
  const auto n1 = nl.add_net("n1");
  nl.connect(n1, nl.cell_output_pin(a));
  nl.connect(n1, nl.port(out).pin);

  const std::vector<geom::Point> positions(1, geom::Point{0, 0});
  const ClockTreeResult tree = synthesize_clock_tree(nl, positions, CtsOptions{});
  EXPECT_EQ(tree.buffer_count, 0);
  EXPECT_DOUBLE_EQ(tree.wirelength_um, 0.0);
}

TEST(Cts, InsertionDelaysFeedSta) {
  PlacedDesign d;
  const ClockTreeResult tree = synthesize_clock_tree(d.nl, d.positions, CtsOptions{});

  sta::StaOptions base_options;
  base_options.clock_period_ps = 800.0;
  base_options.cell_positions = &d.positions;
  sta::Sta ideal(d.nl, base_options);
  ideal.run();

  sta::StaOptions cts_options = base_options;
  cts_options.clock_arrivals_ps = &tree.insertion_delay_ps;
  sta::Sta skewed(d.nl, cts_options);
  skewed.run();

  // Post-CTS timing differs from ideal-clock timing (skew shifts slacks),
  // and both produce finite results.
  EXPECT_TRUE(std::isfinite(skewed.wns_ps()));
  bool any_slack_changed = false;
  for (const netlist::PinId ep : ideal.endpoints()) {
    if (std::isinf(ideal.slack_ps(ep)) || std::isinf(skewed.slack_ps(ep))) continue;
    if (std::fabs(ideal.slack_ps(ep) - skewed.slack_ps(ep)) > 1e-9) {
      any_slack_changed = true;
      break;
    }
  }
  EXPECT_TRUE(any_slack_changed);
}

class CtsFanoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(CtsFanoutSweep, TreeInvariantsHoldAcrossFanouts) {
  PlacedDesign d;
  CtsOptions options;
  options.max_sinks_per_buffer = GetParam();
  const ClockTreeResult tree = synthesize_clock_tree(d.nl, d.positions, options);
  EXPECT_GT(tree.buffer_count, 0);
  EXPECT_GT(tree.wirelength_um, 0.0);
  EXPECT_GE(tree.max_skew_ps, 0.0);
  EXPECT_GT(tree.total_cap_ff, 0.0);
  // Every register has a strictly positive insertion delay.
  for (std::size_t ci = 0; ci < d.nl.cell_count(); ++ci) {
    const bool seq = liberty::is_sequential(
        d.nl.lib_cell_of(static_cast<netlist::CellId>(ci)).function);
    if (seq) {
      EXPECT_GT(tree.insertion_delay_ps[ci], 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, CtsFanoutSweep,
                         ::testing::Values(2, 4, 8, 16, 32, 64),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "fanout" + std::to_string(info.param);
                         });

TEST(Cts, DeterministicTree) {
  PlacedDesign d;
  const ClockTreeResult a = synthesize_clock_tree(d.nl, d.positions, CtsOptions{});
  const ClockTreeResult b = synthesize_clock_tree(d.nl, d.positions, CtsOptions{});
  EXPECT_EQ(a.buffer_count, b.buffer_count);
  EXPECT_DOUBLE_EQ(a.wirelength_um, b.wirelength_um);
  EXPECT_EQ(a.insertion_delay_ps, b.insertion_delay_ps);
}

TEST(Cts, TighterPlacementShorterTree) {
  // Shrinking all sink coordinates toward the centroid must not lengthen
  // the clock tree.
  PlacedDesign d;
  const ClockTreeResult spread = synthesize_clock_tree(d.nl, d.positions, CtsOptions{});
  geom::Point centroid;
  for (const auto& p : d.positions) {
    centroid.x += p.x;
    centroid.y += p.y;
  }
  centroid.x /= static_cast<double>(d.positions.size());
  centroid.y /= static_cast<double>(d.positions.size());
  std::vector<geom::Point> tight = d.positions;
  for (auto& p : tight) {
    p.x = centroid.x + 0.3 * (p.x - centroid.x);
    p.y = centroid.y + 0.3 * (p.y - centroid.y);
  }
  const ClockTreeResult compact = synthesize_clock_tree(d.nl, tight, CtsOptions{});
  EXPECT_LT(compact.wirelength_um, spread.wirelength_um);
}

}  // namespace
}  // namespace ppacd::cts
