/// Tests for Best-Choice clustering, Steiner refinement, the maze-routing
/// fallback, the STA report, model serialization and the visualization
/// exports.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cluster/best_choice.hpp"
#include "flow/flow.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "ml/dataset.hpp"
#include "ml/serialize.hpp"
#include "ml/trainer.hpp"
#include "route/global_router.hpp"
#include "route/steiner.hpp"
#include "sta/report.hpp"
#include "viz/viz.hpp"

namespace ppacd {
namespace {

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

netlist::Netlist sample(int cells = 400, const char* name = "aes") {
  gen::DesignSpec spec = gen::design_spec(name);
  spec.target_cells = cells;
  return gen::generate(lib(), spec);
}

// --- Best Choice ---------------------------------------------------------------

TEST(BestChoice, ReachesTarget) {
  const netlist::Netlist nl = sample(500);
  cluster::BestChoiceOptions options;
  options.target_cluster_count = 20;
  const cluster::BestChoiceResult result = cluster::best_choice_cluster(nl, options);
  ASSERT_EQ(result.cluster_of_cell.size(), nl.cell_count());
  EXPECT_GE(result.cluster_count, 20);
  EXPECT_LE(result.cluster_count, 120);  // isolated vertices may remain
  EXPECT_GT(result.merges, 0);
}

TEST(BestChoice, AreaCapRespected) {
  const netlist::Netlist nl = sample(500);
  cluster::BestChoiceOptions options;
  options.target_cluster_count = 10;
  options.max_cluster_area_factor = 1.5;
  const cluster::BestChoiceResult result = cluster::best_choice_cluster(nl, options);
  std::vector<double> area(static_cast<std::size_t>(result.cluster_count), 0.0);
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    area[static_cast<std::size_t>(result.cluster_of_cell[ci])] +=
        nl.lib_cell_of(static_cast<netlist::CellId>(ci)).area_um2();
  }
  const double cap = 1.5 * nl.total_cell_area() / 10.0;
  for (const double a : area) EXPECT_LE(a, cap + 1e-6);
}

TEST(BestChoice, MergesConnectedPairsFirst) {
  // Two strongly connected cells plus one loner: the pair must merge.
  netlist::Netlist nl(lib(), "t");
  const auto inv = *lib().find("INV_X1");
  const auto nand2 = *lib().find("NAND2_X1");
  const auto a = nl.add_cell("a", inv, nl.root_module());
  const auto b = nl.add_cell("b", nand2, nl.root_module());
  const auto c = nl.add_cell("c", inv, nl.root_module());
  const auto n1 = nl.add_net("n1");
  nl.connect(n1, nl.cell_output_pin(a));
  nl.connect(n1, nl.cell_pin(b, 0));
  const auto n2 = nl.add_net("n2");
  nl.connect(n2, nl.cell_output_pin(c));
  nl.connect(n2, nl.cell_pin(b, 1));

  cluster::BestChoiceOptions options;
  options.target_cluster_count = 2;
  const auto result = cluster::best_choice_cluster(nl, options);
  EXPECT_EQ(result.cluster_count, 2);
  // a-b weight == c-b weight; area decides: a(INV)+b vs c(INV)+b equal...
  // so just require SOME pair merged and the result is a valid 2-clustering.
  EXPECT_NE(result.cluster_of_cell[a.index()],
            result.cluster_of_cell[c.index()]);
}

TEST(BestChoice, FlowIntegration) {
  netlist::Netlist nl = sample(400);
  flow::FlowOptions options;
  options.clock_period_ps = 1100.0;
  options.cluster_method = flow::ClusterMethod::kBestChoice;
  options.vpr.min_cluster_instances = 1 << 20;
  const flow::FlowResult result = flow::run_clustered_flow(nl, options);
  EXPECT_GT(result.place.cluster_count, 1);
  EXPECT_GT(result.place.hpwl_um, 0.0);
}

// --- Steiner refinement ----------------------------------------------------------

TEST(Steiner, RefinementNeverLonger) {
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<geom::Point> pins;
    const int n = rng.uniform_int(3, 24);
    for (int i = 0; i < n; ++i) {
      pins.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
    }
    const double mst = route::total_length(route::spanning_segments(pins));
    const double steiner = route::total_length(route::steiner_segments(pins));
    EXPECT_LE(steiner, mst + 1e-9) << "trial " << trial;
  }
}

TEST(Steiner, ClassicTJunctionImproves) {
  // Three pins in a T: RMST length 3, RSMT length 2 + 1 = ... concretely:
  // (0,0), (2,0), (1,1): MST = 2 + 2 = 4 via manhattan; Steiner point at
  // (1,0) gives 1 + 1 + 1 = 3.
  const std::vector<geom::Point> pins = {{0, 0}, {2, 0}, {1, 1}};
  const double mst = route::total_length(route::spanning_segments(pins));
  const double steiner = route::total_length(route::steiner_segments(pins));
  EXPECT_DOUBLE_EQ(mst, 4.0);
  EXPECT_DOUBLE_EQ(steiner, 3.0);
}

TEST(Steiner, TwoPinsUnchanged) {
  const std::vector<geom::Point> pins = {{0, 0}, {5, 7}};
  EXPECT_DOUBLE_EQ(route::total_length(route::steiner_segments(pins)), 12.0);
}

// --- Maze fallback ---------------------------------------------------------------

TEST(Router, MazeFallbackNotWorse) {
  netlist::Netlist nl = sample(400);
  flow::FlowOptions fo;
  fo.clock_period_ps = 1100.0;
  fo.vpr.min_cluster_instances = 1 << 20;
  const flow::FlowResult placed = flow::run_default_flow(nl, fo);

  geom::BBox box;
  for (const auto& p : placed.place.positions) box.expand(p);
  route::RouteOptions tight;
  tight.h_capacity = 5;
  tight.v_capacity = 5;
  route::RouteOptions no_maze = tight;
  no_maze.maze_fallback = false;
  const auto with_maze =
      route::GlobalRouter(nl, placed.place.positions, box.rect(), tight).run();
  const auto without =
      route::GlobalRouter(nl, placed.place.positions, box.rect(), no_maze).run();
  // Greedy negotiation can tie or wobble slightly; the maze must stay in
  // the same ballpark or better and never blow up.
  EXPECT_LE(with_maze.total_overflow, without.total_overflow * 1.05 + 5.0);
  EXPECT_LE(with_maze.wirelength_um, without.wirelength_um * 1.10);
}

TEST(Router, SteinerTopologyShortens) {
  netlist::Netlist nl = sample(400);
  flow::FlowOptions fo;
  fo.clock_period_ps = 1100.0;
  fo.vpr.min_cluster_instances = 1 << 20;
  const flow::FlowResult placed = flow::run_default_flow(nl, fo);
  geom::BBox box;
  for (const auto& p : placed.place.positions) box.expand(p);
  route::RouteOptions steiner;
  route::RouteOptions mst;
  mst.use_steiner_topology = false;
  const auto a =
      route::GlobalRouter(nl, placed.place.positions, box.rect(), steiner).run();
  const auto b =
      route::GlobalRouter(nl, placed.place.positions, box.rect(), mst).run();
  EXPECT_LE(a.wirelength_um, b.wirelength_um * 1.01);
}

// --- STA report ------------------------------------------------------------------

TEST(StaReport, NamesAndStructure) {
  netlist::Netlist nl = sample(200);
  sta::StaOptions options;
  options.clock_period_ps = 100.0;  // far below any path: force violations
  sta::Sta sta(nl, options);
  sta.run();
  const std::string report = sta::report_checks(nl, sta, 2);
  EXPECT_NE(report.find("Startpoint:"), std::string::npos);
  EXPECT_NE(report.find("Endpoint:"), std::string::npos);
  EXPECT_NE(report.find("slack"), std::string::npos);
  EXPECT_NE(report.find("VIOLATED"), std::string::npos);

  const std::string summary = sta::report_summary(nl, sta);
  EXPECT_NE(summary.find("WNS"), std::string::npos);
  EXPECT_NE(summary.find("endpoints violating"), std::string::npos);
}

TEST(StaReport, PinNames) {
  netlist::Netlist nl(lib(), "t");
  const auto inv = *lib().find("INV_X1");
  const auto cell = nl.add_cell("u1", inv, nl.root_module());
  const auto port = nl.add_port("data_in", liberty::PinDir::kInput);
  EXPECT_EQ(sta::pin_name(nl, nl.cell_pin(cell, 0)), "u1/A");
  EXPECT_EQ(sta::pin_name(nl, nl.cell_output_pin(cell)), "u1/Y");
  EXPECT_EQ(sta::pin_name(nl, nl.port(port).pin), "data_in");
}

// --- Model serialization ------------------------------------------------------------

TEST(ModelSerialize, RoundTripPredictsIdentically) {
  // Tiny dataset -> train briefly -> save -> load -> identical predictions.
  netlist::Netlist nl = sample(400);
  ml::DatasetOptions dataset_options;
  dataset_options.min_cluster_size = 20;
  dataset_options.max_cluster_size = 120;
  dataset_options.max_clusters_per_design = 6;
  dataset_options.clustering_configs = 2;
  const ml::Dataset dataset =
      ml::build_dataset({&nl}, dataset_options, vpr::VprOptions{});
  ASSERT_GE(dataset.clusters.size(), 3u);
  ml::TrainOptions train_options;
  train_options.epochs = 2;
  const ml::TrainResult trained = ml::train_total_cost_model(dataset, train_options);

  std::stringstream buffer;
  ml::save_model(*trained.model, ml::GnnConfig{}, buffer);
  const auto loaded = ml::load_model(buffer);
  ASSERT_NE(loaded, nullptr);

  for (const auto& sample : dataset.clusters) {
    for (const auto& shape : dataset.shapes) {
      EXPECT_DOUBLE_EQ(trained.model->predict(sample.graph, shape),
                       loaded->predict(sample.graph, shape));
    }
  }
}

TEST(ModelSerialize, RejectsCorruptStream) {
  std::stringstream buffer("not a model");
  EXPECT_EQ(ml::load_model(buffer), nullptr);
}

TEST(ModelSerialize, FileRoundTrip) {
  netlist::Netlist nl = sample(300);
  ml::DatasetOptions dataset_options;
  dataset_options.min_cluster_size = 20;
  dataset_options.max_cluster_size = 120;
  dataset_options.max_clusters_per_design = 4;
  dataset_options.clustering_configs = 1;
  const ml::Dataset dataset =
      ml::build_dataset({&nl}, dataset_options, vpr::VprOptions{});
  ml::TrainOptions train_options;
  train_options.epochs = 1;
  const ml::TrainResult trained = ml::train_total_cost_model(dataset, train_options);

  const std::string path = "/tmp/ppacd_model_test.bin";
  ASSERT_TRUE(ml::save_model_file(*trained.model, ml::GnnConfig{}, path));
  const auto loaded = ml::load_model_file(path);
  ASSERT_NE(loaded, nullptr);
  std::remove(path.c_str());
}

// --- Visualization ------------------------------------------------------------------

TEST(Viz, PlacementSvgStructure) {
  netlist::Netlist nl = sample(100);
  flow::FlowOptions fo;
  fo.clock_period_ps = 1100.0;
  fo.vpr.min_cluster_instances = 1 << 20;
  const flow::FlowResult placed = flow::run_default_flow(nl, fo);
  geom::BBox box;
  for (const auto& p : placed.place.positions) box.expand(p);

  std::ostringstream out;
  viz::SvgOptions options;
  viz::write_placement_svg(nl, placed.place.positions, box.rect(), options, out);
  const std::string svg = out.str();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One rect per cell plus the background.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_EQ(rects, nl.cell_count() + 1);
}

TEST(Viz, CongestionPpmHeader) {
  netlist::Netlist nl = sample(200);
  flow::FlowOptions fo;
  fo.clock_period_ps = 1100.0;
  fo.vpr.min_cluster_instances = 1 << 20;
  const flow::FlowResult placed = flow::run_default_flow(nl, fo);
  geom::BBox box;
  for (const auto& p : placed.place.positions) box.expand(p);
  const auto routed = route::GlobalRouter(nl, placed.place.positions, box.rect(),
                                          route::RouteOptions{})
                          .run();
  std::ostringstream out;
  viz::write_congestion_ppm(routed, out);
  const std::string ppm = out.str();
  std::istringstream header(ppm);
  std::string magic;
  int w = 0;
  int h = 0;
  int maxval = 0;
  header >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, routed.grid_nx);
  EXPECT_EQ(h, routed.grid_ny);
  EXPECT_EQ(maxval, 255);
  // Payload: exactly 3 bytes per pixel after the header newline.
  const std::size_t header_len = ppm.find("255\n") + 4;
  EXPECT_EQ(ppm.size() - header_len, static_cast<std::size_t>(w) * h * 3);
}

}  // namespace
}  // namespace ppacd
