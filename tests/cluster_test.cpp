#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cluster/clustered_netlist.hpp"
#include "cluster/community.hpp"
#include "cluster/fc_multilevel.hpp"
#include "cluster/graph.hpp"
#include "cluster/ppa_costs.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "hier/dendrogram.hpp"

namespace ppacd::cluster {
namespace {

using netlist::CellId;
using netlist::NetId;
using netlist::Netlist;

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

Netlist small_design(const char* name = "aes", int cells = 600) {
  gen::DesignSpec spec = gen::design_spec(name);
  spec.target_cells = cells;
  return gen::generate(lib(), spec);
}

// --- Clique expansion --------------------------------------------------------

TEST(CliqueExpand, WeightsAreOneOverDegreeMinusOne) {
  Netlist nl(lib(), "t");
  const auto inv = *lib().find("INV_X1");
  const auto nand3 = *lib().find("NAND3_X1");
  const CellId a = nl.add_cell("a", inv, nl.root_module());
  const CellId b = nl.add_cell("b", inv, nl.root_module());
  const CellId g = nl.add_cell("g", nand3, nl.root_module());
  // Net over {a, b, g}: driver a.Y, sinks b.A and g.A.
  const NetId n = nl.add_net("n");
  nl.connect(n, nl.cell_output_pin(a));
  nl.connect(n, nl.cell_pin(b, 0));
  nl.connect(n, nl.cell_pin(g, 0));

  const Graph graph = clique_expand(nl);
  // k = 3 cells -> each pair weight 1/2.
  for (const auto& [u, w] : graph.neighbors(a.value())) {
    (void)u;
    EXPECT_DOUBLE_EQ(w, 0.5);
  }
  EXPECT_EQ(graph.neighbors(a.value()).size(), 2u);
  EXPECT_NEAR(graph.total_edge_weight, 3 * 0.5, 1e-12);
}

TEST(CliqueExpand, ParallelNetsMerge) {
  Netlist nl(lib(), "t");
  const auto inv = *lib().find("INV_X1");
  const auto nand2 = *lib().find("NAND2_X1");
  const CellId a = nl.add_cell("a", inv, nl.root_module());
  const CellId g = nl.add_cell("g", nand2, nl.root_module());
  const CellId h = nl.add_cell("h", inv, nl.root_module());
  // Two nets both connecting a -> g.
  const NetId n1 = nl.add_net("n1");
  nl.connect(n1, nl.cell_output_pin(a));
  nl.connect(n1, nl.cell_pin(g, 0));
  const NetId n2 = nl.add_net("n2");
  nl.connect(n2, nl.cell_output_pin(h));
  nl.connect(n2, nl.cell_pin(g, 1));

  const Graph graph = clique_expand(nl);
  EXPECT_EQ(graph.neighbors(g.value()).size(), 2u);
}

TEST(CliqueExpand, ClockAndHighFanoutSkipped) {
  const Netlist nl = small_design();
  const Graph g64 = clique_expand(nl, 64);
  const Graph g4 = clique_expand(nl, 4);
  EXPECT_LT(g4.total_edge_weight, g64.total_edge_weight);
}

// --- Community detection -----------------------------------------------------

/// Two 5-cliques joined by one edge: the canonical community structure.
Graph two_cliques() {
  GraphBuilder builder(10);
  for (int base : {0, 5}) {
    for (int i = 0; i < 5; ++i) {
      for (int j = i + 1; j < 5; ++j) builder.add_edge(base + i, base + j, 1.0);
    }
  }
  builder.add_edge(0, 5, 1.0);
  return builder.build();
}

TEST(Louvain, FindsTwoCliques) {
  const CommunityResult result = louvain(two_cliques(), CommunityOptions{});
  EXPECT_EQ(result.community_count, 2);
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(result.community[static_cast<std::size_t>(i)], result.community[0]);
    EXPECT_EQ(result.community[static_cast<std::size_t>(5 + i)], result.community[5]);
  }
  EXPECT_NE(result.community[0], result.community[5]);
  EXPECT_GT(result.modularity, 0.3);
}

TEST(Leiden, FindsTwoCliques) {
  const CommunityResult result = leiden(two_cliques(), CommunityOptions{});
  EXPECT_EQ(result.community_count, 2);
  EXPECT_GT(result.modularity, 0.3);
}

TEST(Community, ModularityOfSingleCommunityIsZeroish) {
  const Graph g = two_cliques();
  const std::vector<std::int32_t> one(10, 0);
  EXPECT_NEAR(modularity(g, one), 0.0, 1e-9);
}

TEST(Community, OnRealDesign) {
  const Netlist nl = small_design("ariane", 1000);
  const Graph graph = clique_expand(nl);
  const CommunityResult lv = louvain(graph, CommunityOptions{});
  const CommunityResult ld = leiden(graph, CommunityOptions{});
  EXPECT_GT(lv.community_count, 1);
  EXPECT_GT(ld.community_count, 1);
  EXPECT_GT(lv.modularity, 0.2);
  EXPECT_GT(ld.modularity, 0.2);
  EXPECT_EQ(lv.community.size(), nl.cell_count());
  EXPECT_EQ(ld.community.size(), nl.cell_count());
}

TEST(Community, MinSizeAbsorbsSmallBlobs) {
  const Netlist nl = small_design();
  const Graph graph = clique_expand(nl);
  CommunityOptions options;
  options.min_community_size = 10;
  const CommunityResult result = louvain(graph, options);
  std::vector<int> sizes(static_cast<std::size_t>(result.community_count), 0);
  for (const std::int32_t c : result.community) ++sizes[static_cast<std::size_t>(c)];
  for (const int s : sizes) EXPECT_GE(s, 2);  // tiny blobs merged away
}

// --- Eq. 2 switching costs ---------------------------------------------------

TEST(SwitchingCosts, MatchesEquation2) {
  const std::vector<double> theta = {1.0, 3.0};
  const auto s = switching_costs(theta, 2.0);
  EXPECT_NEAR(s[0], std::pow(1.0 + 0.25, 2.0), 1e-12);
  EXPECT_NEAR(s[1], std::pow(1.0 + 0.75, 2.0), 1e-12);
}

TEST(SwitchingCosts, ZeroActivityGivesUnitCost) {
  const auto s = switching_costs({0.0, 0.0}, 2.0);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 1.0);
}

TEST(SwitchingCosts, MuScalesContrast) {
  const std::vector<double> theta = {1.0, 9.0};
  const auto flat = switching_costs(theta, 1.0);
  const auto sharp = switching_costs(theta, 4.0);
  EXPECT_GT(sharp[1] / sharp[0], flat[1] / flat[0]);
}

// --- FC multilevel -----------------------------------------------------------

TEST(FcMultilevel, ReachesTargetClusterCount) {
  const Netlist nl = small_design("jpeg", 800);
  FcOptions options;
  options.target_cluster_count = 12;
  const FcResult result = fc_multilevel_cluster(nl, FcPpaInputs{}, options);
  ASSERT_EQ(result.cluster_of_cell.size(), nl.cell_count());
  EXPECT_GE(result.cluster_count, 12);
  EXPECT_LE(result.cluster_count, 12 + result.singleton_count + 24);
  EXPECT_GT(result.levels, 0);
}

TEST(FcMultilevel, DeterministicWithSeed) {
  const Netlist nl = small_design();
  FcOptions options;
  options.seed = 77;
  const FcResult a = fc_multilevel_cluster(nl, FcPpaInputs{}, options);
  const FcResult b = fc_multilevel_cluster(nl, FcPpaInputs{}, options);
  EXPECT_EQ(a.cluster_of_cell, b.cluster_of_cell);
}

TEST(FcMultilevel, MaxAreaRespected) {
  const Netlist nl = small_design();
  FcOptions options;
  options.target_cluster_count = 10;
  options.max_cluster_area_factor = 1.5;
  const FcResult result = fc_multilevel_cluster(nl, FcPpaInputs{}, options);
  std::vector<double> area(static_cast<std::size_t>(result.cluster_count), 0.0);
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    area[static_cast<std::size_t>(result.cluster_of_cell[ci])] +=
        nl.lib_cell_of(static_cast<CellId>(ci)).area_um2();
  }
  const double cap = 1.5 * nl.total_cell_area() / 10.0;
  for (const double a : area) EXPECT_LE(a, cap * 1.0 + 1e-6);
}

TEST(FcMultilevel, GroupingConstraintsKeepCommunitiesApart) {
  const Netlist nl = small_design("BlackParrot", 1200);
  const auto hier_result = hier::hierarchy_clustering(nl);
  ASSERT_GT(hier_result.cluster_count, 1);

  FcOptions options;
  options.target_cluster_count =
      std::max<std::int32_t>(hier_result.cluster_count * 2, 16);
  FcPpaInputs inputs;
  inputs.grouping = &hier_result.cluster_of_cell;
  const FcResult result = fc_multilevel_cluster(nl, inputs, options);

  if (!result.grouping_relaxed) {
    // Every FC cluster must stay inside one hierarchy community.
    std::vector<std::int32_t> community_of_cluster(
        static_cast<std::size_t>(result.cluster_count), -1);
    for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
      const std::int32_t cl = result.cluster_of_cell[ci];
      const std::int32_t cm = hier_result.cluster_of_cell[ci];
      if (community_of_cluster[static_cast<std::size_t>(cl)] < 0) {
        community_of_cluster[static_cast<std::size_t>(cl)] = cm;
      }
      EXPECT_EQ(community_of_cluster[static_cast<std::size_t>(cl)], cm);
    }
  }
}

TEST(FcMultilevel, TimingCostPullsCriticalPairsTogether) {
  // Hand-built: two separate 2-cell pairs bridged weakly; the pair whose net
  // carries a huge timing cost must merge first.
  Netlist nl(lib(), "t");
  const auto inv = *lib().find("INV_X1");
  const auto nand2 = *lib().find("NAND2_X1");
  const CellId a = nl.add_cell("a", inv, nl.root_module());
  const CellId b = nl.add_cell("b", nand2, nl.root_module());
  const CellId c = nl.add_cell("c", inv, nl.root_module());
  const CellId d = nl.add_cell("d", nand2, nl.root_module());
  const NetId n_ab = nl.add_net("n_ab");
  nl.connect(n_ab, nl.cell_output_pin(a));
  nl.connect(n_ab, nl.cell_pin(b, 0));
  const NetId n_cd = nl.add_net("n_cd");
  nl.connect(n_cd, nl.cell_output_pin(c));
  nl.connect(n_cd, nl.cell_pin(d, 0));
  const NetId n_bc = nl.add_net("n_bc");  // bridge b->c via second inputs
  nl.connect(n_bc, nl.cell_output_pin(b));
  nl.connect(n_bc, nl.cell_pin(d, 1));

  std::vector<double> timing_cost(nl.net_count(), 0.0);
  timing_cost[n_ab.index()] = 50.0;  // screaming critical

  FcOptions options;
  options.target_cluster_count = 3;
  options.beta = 1.0;
  FcPpaInputs inputs;
  inputs.net_timing_cost = &timing_cost;
  const FcResult result = fc_multilevel_cluster(nl, inputs, options);
  EXPECT_EQ(result.cluster_of_cell[a.index()],
            result.cluster_of_cell[b.index()]);
}

TEST(FcMultilevel, MergeSingletonsAblation) {
  const Netlist nl = small_design();
  FcOptions options;
  options.target_cluster_count = 8;
  const FcResult keep = fc_multilevel_cluster(nl, FcPpaInputs{}, options);
  options.merge_singletons = true;
  const FcResult merged = fc_multilevel_cluster(nl, FcPpaInputs{}, options);
  EXPECT_EQ(merged.singleton_count, 0);
  EXPECT_LE(merged.cluster_count, keep.cluster_count);
}

// --- Clustered netlist -------------------------------------------------------

TEST(ClusteredNetlist, AreasAndShapes) {
  const Netlist nl = small_design();
  FcOptions options;
  options.target_cluster_count = 10;
  const FcResult fc = fc_multilevel_cluster(nl, FcPpaInputs{}, options);
  const ClusteredNetlist cn =
      build_clustered_netlist(nl, fc.cluster_of_cell, fc.cluster_count);

  double total = 0.0;
  for (const Cluster& cluster : cn.clusters) {
    total += cluster.area_um2;
    // Footprint respects utilization: w*h == area / util.
    EXPECT_NEAR(cluster.width_um * cluster.height_um,
                cluster.area_um2 / cluster.shape.utilization,
                1e-6 * cluster.area_um2);
  }
  EXPECT_NEAR(total, nl.total_cell_area(), 1e-6);
}

TEST(ClusteredNetlist, ShapeUpdateChangesFootprint) {
  const Netlist nl = small_design();
  FcOptions options;
  options.target_cluster_count = 6;
  const FcResult fc = fc_multilevel_cluster(nl, FcPpaInputs{}, options);
  ClusteredNetlist cn =
      build_clustered_netlist(nl, fc.cluster_of_cell, fc.cluster_count);

  ClusterShape shape;
  shape.aspect_ratio = 1.75;
  shape.utilization = 0.75;
  set_cluster_shape(cn, ClusterId(0), shape);
  const Cluster& c0 = cn.clusters[ClusterId(0)];
  EXPECT_NEAR(c0.height_um / c0.width_um, 1.75, 1e-9);
  EXPECT_NEAR(c0.width_um * c0.height_um, c0.area_um2 / 0.75, 1e-6 * c0.area_um2);
}

TEST(ClusteredNetlist, ParallelNetsMergeWithWeight) {
  Netlist nl(lib(), "t");
  const auto inv = *lib().find("INV_X1");
  const auto nand2 = *lib().find("NAND2_X1");
  const CellId a = nl.add_cell("a", inv, nl.root_module());
  const CellId b = nl.add_cell("b", nand2, nl.root_module());
  const CellId c = nl.add_cell("c", inv, nl.root_module());
  // Two nets a->b and c->b; clusters {a,c} and {b} -> both nets connect the
  // same cluster pair and must merge with weight 2.
  const NetId n1 = nl.add_net("n1");
  nl.connect(n1, nl.cell_output_pin(a));
  nl.connect(n1, nl.cell_pin(b, 0));
  const NetId n2 = nl.add_net("n2");
  nl.connect(n2, nl.cell_output_pin(c));
  nl.connect(n2, nl.cell_pin(b, 1));

  const std::vector<std::int32_t> assignment = {0, 1, 0};
  const ClusteredNetlist cn = build_clustered_netlist(nl, assignment, 2);
  ASSERT_EQ(cn.nets.size(), 1u);
  EXPECT_DOUBLE_EQ(cn.nets[0].weight, 2.0);
  EXPECT_FALSE(cn.nets[0].io);
}

TEST(ClusteredNetlist, InternalNetsDropped) {
  Netlist nl(lib(), "t");
  const auto inv = *lib().find("INV_X1");
  const CellId a = nl.add_cell("a", inv, nl.root_module());
  const CellId b = nl.add_cell("b", inv, nl.root_module());
  const NetId n = nl.add_net("n");
  nl.connect(n, nl.cell_output_pin(a));
  nl.connect(n, nl.cell_pin(b, 0));
  const ClusteredNetlist cn = build_clustered_netlist(nl, {0, 0}, 1);
  EXPECT_TRUE(cn.nets.empty());
}

TEST(ClusteredNetlist, InducedPositionsAndRegions) {
  const Netlist nl = small_design();
  FcOptions options;
  options.target_cluster_count = 8;
  const FcResult fc = fc_multilevel_cluster(nl, FcPpaInputs{}, options);
  const ClusteredNetlist cn =
      build_clustered_netlist(nl, fc.cluster_of_cell, fc.cluster_count);

  place::Placement cluster_placement(cn.cluster_count() + nl.port_count());
  for (std::size_t i = 0; i < cn.cluster_count(); ++i) {
    cluster_placement[i] = {static_cast<double>(i) * 10.0, 5.0};
  }
  const auto positions = induce_cell_positions(
      cn, nl, cluster_placement, /*scatter_within_cluster=*/false);
  for (const CellId ci : nl.cell_ids()) {
    const ClusterId cl = cn.cluster_of_cell[ci];
    EXPECT_EQ(positions[ci.index()].x, cluster_placement[cl.index()].x);
  }
  const geom::Rect region = cluster_region(cn, ClusterId(2), cluster_placement);
  EXPECT_NEAR(region.center().x, 20.0, 1e-9);
  EXPECT_NEAR(region.width(), cn.clusters[ClusterId(2)].width_um, 1e-9);
}

TEST(ClusteredNetlist, IoNetsFlagged) {
  const Netlist nl = small_design();
  FcOptions options;
  options.target_cluster_count = 8;
  const FcResult fc = fc_multilevel_cluster(nl, FcPpaInputs{}, options);
  const ClusteredNetlist cn =
      build_clustered_netlist(nl, fc.cluster_of_cell, fc.cluster_count);
  bool any_io = false;
  for (const ClusterNet& net : cn.nets) {
    if (net.io) {
      any_io = true;
      EXPECT_FALSE(net.ports.empty());
    }
  }
  EXPECT_TRUE(any_io);
}

}  // namespace
}  // namespace ppacd::cluster
