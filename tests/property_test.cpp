/// Property-based tests: invariants checked across parameter sweeps
/// (designs x topologies x seeds x densities) rather than single examples.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <set>
#include <string>

#include "cluster/community.hpp"
#include "fault/fault.hpp"
#include "cluster/fc_multilevel.hpp"
#include "cluster/graph.hpp"
#include "cluster/ppa_costs.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "hier/dendrogram.hpp"
#include "hier/rent.hpp"
#include "place/floorplan.hpp"
#include "place/global_placer.hpp"
#include "place/legalizer.hpp"
#include "place/model.hpp"
#include "route/global_router.hpp"
#include "route/steiner.hpp"
#include "sta/activity.hpp"
#include "sta/sta.hpp"
#include "util/rng.hpp"

namespace ppacd {
namespace {

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

// =============================================================================
// Generator properties over (topology x seed)
// =============================================================================

struct GenParam {
  gen::Topology topology;
  std::uint64_t seed;
};

class GeneratorProperty : public ::testing::TestWithParam<GenParam> {};

TEST_P(GeneratorProperty, StructuralInvariants) {
  gen::DesignSpec spec;
  spec.name = "prop";
  spec.topology = GetParam().topology;
  spec.seed = GetParam().seed;
  spec.target_cells = 350;
  spec.hierarchy_depth = 3;
  spec.hierarchy_branching = 3;
  const netlist::Netlist nl = gen::generate(lib(), spec);

  // Valid, hierarchical, register-bearing.
  EXPECT_TRUE(nl.validate().empty());
  EXPECT_TRUE(nl.has_hierarchy());

  // Every net has exactly one driver and >= 1 pin; every cell pin's back
  // reference is consistent (validate covers it, but recheck driver dirs).
  std::size_t registers = 0;
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    if (liberty::is_sequential(nl.lib_cell_of(static_cast<netlist::CellId>(ci)).function)) {
      ++registers;
    }
  }
  EXPECT_GT(registers, 0u);
  // Register fraction within 2x of the requested value.
  const double frac = static_cast<double>(registers) / nl.cell_count();
  EXPECT_GT(frac, spec.register_fraction * 0.5);
  EXPECT_LT(frac, spec.register_fraction * 2.0);
}

TEST_P(GeneratorProperty, TimingGraphIsAcyclic) {
  gen::DesignSpec spec;
  spec.name = "prop";
  spec.topology = GetParam().topology;
  spec.seed = GetParam().seed;
  spec.target_cells = 300;
  const netlist::Netlist nl = gen::generate(lib(), spec);
  // Sta::build_graph asserts on cycles (Kahn must consume all pins).
  sta::StaOptions options;
  options.clock_period_ps = 1000.0;
  sta::Sta sta(nl, options);
  sta.run();
  EXPECT_TRUE(std::isfinite(sta.tns_ns()));
}

INSTANTIATE_TEST_SUITE_P(
    TopologiesAndSeeds, GeneratorProperty,
    ::testing::Values(GenParam{gen::Topology::kGeneric, 1},
                      GenParam{gen::Topology::kGeneric, 99},
                      GenParam{gen::Topology::kPipeline, 1},
                      GenParam{gen::Topology::kPipeline, 7},
                      GenParam{gen::Topology::kTiled, 3},
                      GenParam{gen::Topology::kTiled, 11},
                      GenParam{gen::Topology::kMulticore, 5},
                      GenParam{gen::Topology::kMulticore, 13}),
    [](const ::testing::TestParamInfo<GenParam>& info) {
      const char* name = "Generic";
      if (info.param.topology == gen::Topology::kPipeline) name = "Pipeline";
      if (info.param.topology == gen::Topology::kTiled) name = "Tiled";
      if (info.param.topology == gen::Topology::kMulticore) name = "Multicore";
      return std::string(name) + "_s" + std::to_string(info.param.seed);
    });

// =============================================================================
// STA invariants across designs
// =============================================================================

class StaProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(StaProperty, SlackArithmeticAndPathMonotonicity) {
  gen::DesignSpec spec = gen::design_spec(GetParam());
  spec.target_cells = std::min(spec.target_cells, 800);
  const netlist::Netlist nl = gen::generate(lib(), spec);
  sta::StaOptions options;
  options.clock_period_ps = spec.clock_period_ps;
  sta::Sta sta(nl, options);
  sta.run();

  // TNS aggregates at least the WNS endpoint.
  EXPECT_LE(sta.tns_ns() * 1000.0, sta.wns_ps() + 1e-9);
  // slack == required - arrival on every endpoint.
  for (const netlist::PinId ep : sta.endpoints()) {
    if (!std::isfinite(sta.slack_ps(ep))) continue;
    EXPECT_NEAR(sta.slack_ps(ep), sta.required_ps(ep) - sta.arrival_ps(ep), 1e-9);
  }
  // Arrival is non-decreasing along every reported path.
  for (const sta::TimingPath& path : sta.worst_paths(20)) {
    double previous = -1e18;
    for (const netlist::PinId pid : path.pins) {
      EXPECT_GE(sta.arrival_ps(pid) + 1e-9, previous);
      previous = sta.arrival_ps(pid);
    }
  }
}

TEST_P(StaProperty, ActivityBoundsHold) {
  gen::DesignSpec spec = gen::design_spec(GetParam());
  spec.target_cells = std::min(spec.target_cells, 800);
  const netlist::Netlist nl = gen::generate(lib(), spec);
  sta::ActivityOptions options;
  const auto act = sta::propagate_activity(nl, options);
  for (const auto& a : act) {
    EXPECT_GE(a.p_one, 0.0);
    EXPECT_LE(a.p_one, 1.0);
    EXPECT_GE(a.toggle, 0.0);
    EXPECT_LE(a.toggle, options.max_toggle);
  }
}

INSTANTIATE_TEST_SUITE_P(Designs, StaProperty,
                         ::testing::Values("aes", "jpeg", "ariane"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// =============================================================================
// Placement invariants across utilizations
// =============================================================================

class PlaceProperty : public ::testing::TestWithParam<double> {};

TEST_P(PlaceProperty, LegalizedPlacementIsLegalAndInCore) {
  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = 350;
  netlist::Netlist nl = gen::generate(lib(), spec);
  place::FloorplanOptions fpo;
  fpo.utilization = GetParam();
  const place::Floorplan fp =
      place::Floorplan::create(nl.total_cell_area(), lib().row_height_um(), fpo);
  place::place_ports_on_boundary(nl, fp);
  const place::PlaceModel model = place::make_place_model(nl, fp);
  const auto gp = place::GlobalPlacer(model, place::GlobalPlacerOptions{}).run();
  const auto legal = place::legalize(model, gp.placement);
  EXPECT_EQ(legal.failed_count, 0) << "utilization " << GetParam();

  // In-core footprints and per-row non-overlap.
  std::map<long, std::vector<std::size_t>> rows;
  for (std::size_t i = 0; i < nl.cell_count(); ++i) {
    const auto& obj = model.objects[i];
    const auto& p = legal.placement[i];
    EXPECT_GE(p.x - obj.width_um / 2, fp.core.lx - 1e-6);
    EXPECT_LE(p.x + obj.width_um / 2, fp.core.ux + 1e-6);
    rows[std::lround(p.y * 1e6)].push_back(i);
  }
  for (auto& [y, cells] : rows) {
    std::sort(cells.begin(), cells.end(), [&](std::size_t a, std::size_t b) {
      return legal.placement[a].x < legal.placement[b].x;
    });
    for (std::size_t k = 1; k < cells.size(); ++k) {
      EXPECT_LE(legal.placement[cells[k - 1]].x +
                    model.objects[cells[k - 1]].width_um / 2,
                legal.placement[cells[k]].x -
                    model.objects[cells[k]].width_um / 2 + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Utilizations, PlaceProperty,
                         ::testing::Values(0.4, 0.55, 0.7, 0.85),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "util" + std::to_string(static_cast<int>(
                                               info.param * 100));
                         });

TEST(PlaceProperty, HpwlTranslationInvariant) {
  place::PlaceModel model;
  model.core = geom::Rect::make(0, 0, 50, 50);
  model.objects.resize(4);
  place::PlaceNet net;
  net.objects = {0, 1, 2, 3};
  net.weight = 1.7;
  model.nets.push_back(net);
  util::Rng rng(4);
  place::Placement placement(4);
  for (auto& p : placement) p = {rng.uniform(0, 50), rng.uniform(0, 50)};
  const double base = place::total_hpwl(model, placement);
  for (auto& p : placement) {
    p.x += 13.5;
    p.y -= 7.25;
  }
  EXPECT_NEAR(place::total_hpwl(model, placement), base, 1e-9);
}

// =============================================================================
// Routing invariants
// =============================================================================

TEST(RouteProperty, TreeLengthAtLeastBoundingBoxSpan) {
  // Any connected tree over a pin set is at least as long as the larger
  // side of the bounding box.
  util::Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<geom::Point> pins;
    const int n = rng.uniform_int(2, 15);
    geom::BBox box;
    for (int i = 0; i < n; ++i) {
      pins.push_back({rng.uniform(0, 80), rng.uniform(0, 60)});
      box.expand(pins.back());
    }
    const double span =
        std::max(box.rect().width(), box.rect().height());
    EXPECT_GE(route::total_length(route::spanning_segments(pins)) + 1e-9, span);
    EXPECT_GE(route::total_length(route::steiner_segments(pins)) + 1e-9, span);
  }
}

TEST(RouteProperty, UtilizationsNonNegativeAndConsistent) {
  gen::DesignSpec spec = gen::design_spec("jpeg");
  spec.target_cells = 500;
  netlist::Netlist nl = gen::generate(lib(), spec);
  const place::Floorplan fp = place::Floorplan::create(
      nl.total_cell_area(), lib().row_height_um(), place::FloorplanOptions{});
  place::place_ports_on_boundary(nl, fp);
  const place::PlaceModel model = place::make_place_model(nl, fp);
  const auto gp = place::GlobalPlacer(model, place::GlobalPlacerOptions{}).run();
  const auto positions = place::cell_positions(nl, gp.placement);
  const auto result =
      route::GlobalRouter(nl, positions, fp.core, route::RouteOptions{}).run();
  double max_seen = 0.0;
  for (const double u : result.edge_utilization) {
    EXPECT_GE(u, 0.0);
    max_seen = std::max(max_seen, u);
  }
  EXPECT_DOUBLE_EQ(max_seen, result.max_utilization);
  EXPECT_EQ(result.edge_utilization.size(),
            static_cast<std::size_t>(result.grid_nx - 1) * result.grid_ny +
                static_cast<std::size_t>(result.grid_nx) * (result.grid_ny - 1));
}

// =============================================================================
// Clustering invariants across hyperparameters
// =============================================================================

struct FcParam {
  double alpha;
  double beta;
  double gamma;
  double mu;
  std::uint64_t seed;
};

class FcProperty : public ::testing::TestWithParam<FcParam> {};

TEST_P(FcProperty, AssignmentIsCompleteAndCompact) {
  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = 400;
  const netlist::Netlist nl = gen::generate(lib(), spec);

  sta::StaOptions sta_options;
  sta_options.clock_period_ps = spec.clock_period_ps;
  sta::Sta sta(nl, sta_options);
  sta.run();
  const auto timing = cluster::net_timing_costs(nl, sta, spec.clock_period_ps);
  const auto act = sta::propagate_activity(nl, sta::ActivityOptions{});
  const auto theta = cluster::net_switching_activity(nl, act);

  cluster::FcOptions options;
  options.alpha = GetParam().alpha;
  options.beta = GetParam().beta;
  options.gamma = GetParam().gamma;
  options.mu = GetParam().mu;
  options.seed = GetParam().seed;
  options.target_cluster_count = 20;
  cluster::FcPpaInputs inputs;
  inputs.net_timing_cost = &timing;
  inputs.net_switching = &theta;
  const cluster::FcResult result = cluster::fc_multilevel_cluster(nl, inputs, options);

  ASSERT_EQ(result.cluster_of_cell.size(), nl.cell_count());
  std::set<std::int32_t> used(result.cluster_of_cell.begin(),
                              result.cluster_of_cell.end());
  EXPECT_EQ(static_cast<std::int32_t>(used.size()), result.cluster_count);
  EXPECT_EQ(*used.begin(), 0);
  EXPECT_EQ(*used.rbegin(), result.cluster_count - 1);
  EXPECT_LE(result.cluster_count, static_cast<std::int32_t>(nl.cell_count()));
}

INSTANTIATE_TEST_SUITE_P(
    HyperparameterGrid, FcProperty,
    ::testing::Values(FcParam{1, 1, 1, 2, 1}, FcParam{4, 1, 1, 2, 2},
                      FcParam{1, 6, 1, 2, 3}, FcParam{1, 1, 6, 4, 4},
                      FcParam{0.5, 0.5, 0.5, 1, 5}, FcParam{2, 3, 2, 6, 6}),
    [](const ::testing::TestParamInfo<FcParam>& info) {
      return "cfg" + std::to_string(info.index);
    });

TEST(RentProperty, ExponentNeverExceedsOne) {
  // E(c) <= Ext(c) <= Int(c) + Ext(c), so ln(ratio) <= 0 and R <= 1; check
  // over random clusterings of a real design.
  gen::DesignSpec spec = gen::design_spec("jpeg");
  spec.target_cells = 400;
  const netlist::Netlist nl = gen::generate(lib(), spec);
  util::Rng rng(9);
  for (const int k : {2, 5, 17, 50}) {
    std::vector<std::int32_t> assignment(nl.cell_count());
    for (auto& c : assignment) c = static_cast<std::int32_t>(rng.index(k));
    for (const auto& term : hier::rent_terms(nl, assignment, k)) {
      EXPECT_LE(term.rent, 1.0 + 1e-12);
    }
  }
}

TEST(CommunityProperty, ModularityBoundedAndDeterministic) {
  gen::DesignSpec spec = gen::design_spec("ariane");
  spec.target_cells = 500;
  const netlist::Netlist nl = gen::generate(lib(), spec);
  const cluster::Graph graph = cluster::clique_expand(nl);
  for (const std::uint64_t seed : {1ull, 5ull, 9ull}) {
    cluster::CommunityOptions options;
    options.seed = seed;
    const auto a = cluster::louvain(graph, options);
    const auto b = cluster::louvain(graph, options);
    EXPECT_EQ(a.community, b.community) << "seed " << seed;
    EXPECT_GE(a.modularity, -1.0);
    EXPECT_LE(a.modularity, 1.0);
  }
}

TEST(CommunityProperty, LeidenCommunitiesAreValidPartitions) {
  gen::DesignSpec spec = gen::design_spec("jpeg");
  spec.target_cells = 500;
  const netlist::Netlist nl = gen::generate(lib(), spec);
  const cluster::Graph graph = cluster::clique_expand(nl);
  const auto result = cluster::leiden(graph, cluster::CommunityOptions{});
  std::set<std::int32_t> used(result.community.begin(), result.community.end());
  EXPECT_EQ(static_cast<std::int32_t>(used.size()), result.community_count);
  for (const std::int32_t c : result.community) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, result.community_count);
  }
}

// =============================================================================
// Dendrogram invariant: levelization puts every leaf at level_max
// =============================================================================

class DendrogramProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(DendrogramProperty, AllLeavesAtLevelMax) {
  gen::DesignSpec spec = gen::design_spec(GetParam());
  spec.target_cells = std::min(spec.target_cells, 900);
  const netlist::Netlist nl = gen::generate(lib(), spec);
  const hier::Dendrogram dendro(nl);
  for (const hier::DendroNode& node : dendro.nodes()) {
    if (node.children.empty()) {
      EXPECT_EQ(node.level, dendro.level_max()) << "node " << node.id;
    }
    if (node.parent >= 0) {
      EXPECT_EQ(node.level,
                dendro.nodes()[static_cast<std::size_t>(node.parent)].level + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Designs, DendrogramProperty,
                         ::testing::Values("aes", "jpeg", "ariane",
                                           "BlackParrot"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

// =============================================================================
// Expected<T, FlowError> monad properties
// =============================================================================

using fault::Expected;
using fault::FlowError;
using fault::Unexpected;

Expected<int, FlowError> parse_positive(int x) {
  if (x > 0) return x;
  return fault::err("not-positive", "prop.test", "x must be > 0");
}

TEST(ExpectedProperty, MapChainsOnValuesAndShortCircuitsOnErrors) {
  for (int x = -8; x <= 8; ++x) {
    const auto doubled =
        parse_positive(x).map([](int v) { return v * 2; }).map(
            [](int v) { return v + 1; });
    if (x > 0) {
      ASSERT_TRUE(doubled.has_value()) << x;
      EXPECT_EQ(doubled.value(), x * 2 + 1);
    } else {
      ASSERT_FALSE(doubled.has_value()) << x;
      // map must preserve the original error code untouched.
      EXPECT_EQ(doubled.error().code, "not-positive");
      EXPECT_EQ(doubled.error().site, "prop.test");
    }
  }
}

TEST(ExpectedProperty, AndThenAssociativity) {
  // (m >>= f) >>= g  ==  m >>= (\x -> f x >>= g), over a value sweep.
  const auto f = [](int v) { return parse_positive(v - 3); };
  const auto g = [](int v) { return parse_positive(v - 5); };
  for (int x = -2; x <= 12; ++x) {
    const auto lhs = parse_positive(x).and_then(f).and_then(g);
    const auto rhs = parse_positive(x).and_then(
        [&](int v) { return f(v).and_then(g); });
    ASSERT_EQ(lhs.has_value(), rhs.has_value()) << x;
    if (lhs.has_value()) {
      EXPECT_EQ(lhs.value(), rhs.value()) << x;
    } else {
      EXPECT_EQ(lhs.error().code, rhs.error().code) << x;
    }
  }
}

TEST(ExpectedProperty, ErrorCodePreservedThroughDeepChains) {
  Expected<int, FlowError> start =
      fault::err("route-maze-timeout", "route.maze", "injected");
  const auto end = start.map([](int v) { return v + 1; })
                       .and_then(parse_positive)
                       .map([](int v) { return v * 10; })
                       .or_else([](const FlowError& e)
                                    -> Expected<int, FlowError> {
                         // Recovery sees the original error verbatim.
                         EXPECT_EQ(e.code, "route-maze-timeout");
                         EXPECT_EQ(e.site, "route.maze");
                         return Unexpected<FlowError>(e);
                       });
  ASSERT_FALSE(end.has_value());
  EXPECT_EQ(end.error().code, "route-maze-timeout");
  EXPECT_EQ(end.value_or(-1), -1);
}

TEST(ExpectedProperty, VoidExpectedChains) {
  Expected<void, FlowError> ok;
  ASSERT_TRUE(ok.has_value());
  const auto chained = ok.map([] { return 7; }).and_then(parse_positive);
  ASSERT_TRUE(chained.has_value());
  EXPECT_EQ(chained.value(), 7);

  Expected<void, FlowError> bad =
      fault::err("sta-arrival-failed", "sta.arrival");
  bool ran = false;
  const auto after = bad.map([&] { ran = true; return 1; });
  EXPECT_FALSE(ran);
  ASSERT_FALSE(after.has_value());
  EXPECT_EQ(after.error().code, "sta-arrival-failed");
}

// =============================================================================
// Fault-plan spec round-trip: parse(to_spec(plan)) == plan
// =============================================================================

TEST(FaultPlanProperty, SpecRoundTripsOverSiteKindSelectorSweep) {
  const fault::FaultKind kinds[] = {
      fault::FaultKind::kError, fault::FaultKind::kTimeout,
      fault::FaultKind::kPoison, fault::FaultKind::kAlloc};
  const double probabilities[] = {1.0, 0.5, 0.125};
  const std::uint64_t nths[] = {0, 1, 17};
  std::uint64_t seed = 1;
  for (const std::string& site : fault::registered_sites()) {
    for (const fault::FaultKind kind : kinds) {
      for (const double probability : probabilities) {
        for (const std::uint64_t nth : nths) {
          fault::FaultPlan plan;
          plan.seed = seed++;
          plan.specs.push_back(fault::FaultSpec{site, kind, nth, probability});
          const std::string spec = fault::to_spec(plan);
          auto parsed = fault::parse_plan(spec);
          ASSERT_TRUE(parsed.has_value()) << spec;
          EXPECT_TRUE(parsed.value() == plan) << spec;
        }
      }
    }
  }
}

TEST(FaultPlanProperty, MultiSitePlanRoundTripsCanonically) {
  // A plan covering every site at once; parse/to_spec must be a fixpoint
  // (canonical form: sorted sites, one spec each).
  auto parsed = fault::parse_plan(
      "seed=42;route.maze=error%0.25;io.read=alloc;vpr.shape_eval=poison@3;"
      "sta.arrival=timeout;ml.predict=error@2%0.5;place.solve=error;"
      "route.maze=timeout");  // last entry per site wins
  ASSERT_TRUE(parsed.has_value());
  const std::string canonical = fault::to_spec(parsed.value());
  auto reparsed = fault::parse_plan(canonical);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(reparsed.value() == parsed.value()) << canonical;
  EXPECT_EQ(fault::to_spec(reparsed.value()), canonical);
  // "route.maze=timeout" replaced the earlier error%0.25 spec.
  for (const fault::FaultSpec& spec : reparsed.value().specs) {
    if (spec.site == "route.maze") {
      EXPECT_EQ(spec.kind, fault::FaultKind::kTimeout);
      EXPECT_EQ(spec.probability, 1.0);
    }
  }
}

}  // namespace
}  // namespace ppacd
