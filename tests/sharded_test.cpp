/// \file sharded_test.cpp
/// \brief Unit tests for the region partitioner and the sharded placement
/// pass (place/sharded.hpp): weight balance, determinism, clamping, the
/// fixed/unassigned-object contract, and shard-stat accounting — all below
/// the flow layer, on small synthetic models.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "place/sharded.hpp"

namespace ppacd::place {
namespace {

geom::Rect core() { return geom::Rect::make(0.0, 0.0, 100.0, 100.0); }

/// Groups on a grid: `nx * ny` unit-weight clusters with 10x10 footprints,
/// centers spaced 20 um apart starting at (10, 10).
std::vector<ShardGroup> grid_groups(int nx, int ny, std::int64_t weight = 1) {
  std::vector<ShardGroup> groups;
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      ShardGroup g;
      g.center = geom::Point{10.0 + 20.0 * x, 10.0 + 20.0 * y};
      g.rect = geom::Rect::make(g.center.x - 5.0, g.center.y - 5.0,
                                g.center.x + 5.0, g.center.y + 5.0);
      g.weight = weight;
      groups.push_back(g);
    }
  }
  return groups;
}

TEST(RegionPartitionTest, BalancesUniformWeightsAcrossShards) {
  const auto groups = grid_groups(4, 4);
  const RegionPartition p = partition_regions(groups, core(), 4);
  ASSERT_EQ(p.shard_count(), 4);
  ASSERT_EQ(p.shard_of_group.size(), groups.size());
  std::int64_t total = 0;
  for (const std::int64_t w : p.weights) {
    EXPECT_EQ(w, 4) << "16 unit groups over 4 shards must balance exactly";
    total += w;
  }
  EXPECT_EQ(total, 16);
  for (const std::int32_t s : p.shard_of_group) {
    ASSERT_GE(s, 0);
    ASSERT_LT(s, p.shard_count());
  }
}

TEST(RegionPartitionTest, SkewedWeightsStayWithinCapacityFactor) {
  // One heavy group cannot be split, but the remaining groups must not all
  // pile onto its shard: every other shard carries a fair share.
  auto groups = grid_groups(4, 4);
  groups[0].weight = 100;
  const RegionPartition p = partition_regions(groups, core(), 4);
  ASSERT_EQ(p.shard_count(), 4);
  int nonempty = 0;
  for (const std::int64_t w : p.weights) {
    EXPECT_GT(w, 0) << "bisection guarantees >= 1 group per shard";
    if (w > 0) ++nonempty;
  }
  EXPECT_EQ(nonempty, 4);
}

TEST(RegionPartitionTest, DeterministicAcrossRepeatedCalls) {
  const auto groups = grid_groups(5, 3, 7);
  const RegionPartition a = partition_regions(groups, core(), 6);
  const RegionPartition b = partition_regions(groups, core(), 6);
  ASSERT_EQ(a.shard_of_group, b.shard_of_group);
  ASSERT_EQ(a.weights, b.weights);
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (std::size_t i = 0; i < a.regions.size(); ++i) {
    EXPECT_EQ(a.regions[i].lx, b.regions[i].lx);
    EXPECT_EQ(a.regions[i].ly, b.regions[i].ly);
    EXPECT_EQ(a.regions[i].ux, b.regions[i].ux);
    EXPECT_EQ(a.regions[i].uy, b.regions[i].uy);
  }
}

TEST(RegionPartitionTest, RegionsCoverMembersAndStayInCore) {
  const auto groups = grid_groups(4, 4);
  const RegionPartition p = partition_regions(groups, core(), 8);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const geom::Rect& region = p.regions[p.shard_of_group[g]];
    EXPECT_TRUE(region.contains(groups[g].center)) << "group " << g;
  }
  const geom::Rect c = core();
  for (const geom::Rect& r : p.regions) {
    EXPECT_GE(r.lx, c.lx);
    EXPECT_GE(r.ly, c.ly);
    EXPECT_LE(r.ux, c.ux);
    EXPECT_LE(r.uy, c.uy);
    EXPECT_GT(r.area(), 0.0);
  }
}

TEST(RegionPartitionTest, ShardCountClampedToGroupCount) {
  const auto groups = grid_groups(2, 1);
  EXPECT_EQ(partition_regions(groups, core(), 16).shard_count(), 2);
  EXPECT_EQ(partition_regions(groups, core(), 0).shard_count(), 1);
  EXPECT_EQ(partition_regions(groups, core(), -3).shard_count(), 1);
}

TEST(RegionPartitionTest, EmptyGroupsYieldOneCoreRegion) {
  const RegionPartition p = partition_regions({}, core(), 8);
  ASSERT_EQ(p.shard_count(), 1);
  EXPECT_TRUE(p.shard_of_group.empty());
  const geom::Rect c = core();
  EXPECT_EQ(p.regions[0].lx, c.lx);
  EXPECT_EQ(p.regions[0].ux, c.ux);
}

TEST(RegionPartitionTest, CoincidentCentersStillPartition) {
  // Degenerate geometry: every center identical. Index tie-breaks must still
  // produce a full, deterministic partition.
  std::vector<ShardGroup> groups(6);
  for (auto& g : groups) {
    g.center = geom::Point{50.0, 50.0};
    g.rect = geom::Rect::make(45.0, 45.0, 55.0, 55.0);
    g.weight = 1;
  }
  const RegionPartition a = partition_regions(groups, core(), 3);
  const RegionPartition b = partition_regions(groups, core(), 3);
  ASSERT_EQ(a.shard_count(), 3);
  EXPECT_EQ(a.shard_of_group, b.shard_of_group);
  for (const std::int64_t w : a.weights) EXPECT_EQ(w, 2);
}

// ---------------------------------------------------------------------------
// try_place_sharded on a synthetic two-region model
// ---------------------------------------------------------------------------

struct ShardedFixture {
  PlaceModel model;
  Placement seed;
  std::vector<std::int32_t> shard_of_object;
  RegionPartition partition;
};

/// Two 8-cell clusters, one on the left half and one on the right, chained
/// internally plus one net crossing the cut. Object 16 is a fixed terminal.
ShardedFixture two_region_fixture() {
  ShardedFixture f;
  f.model.core = core();
  for (int i = 0; i < 16; ++i) {
    PlaceObject obj;
    obj.width_um = 1.0;
    obj.height_um = 1.0;
    f.model.objects.push_back(obj);
    const bool left = i < 8;
    const double bx = left ? 20.0 : 80.0;
    f.seed.push_back(geom::Point{bx + (i % 4) * 2.0, 40.0 + (i / 4 % 2) * 2.0});
  }
  PlaceObject terminal;
  terminal.fixed = true;
  terminal.fixed_position = geom::Point{50.0, 95.0};
  f.model.objects.push_back(terminal);
  f.seed.push_back(terminal.fixed_position);

  auto chain = [&](std::int32_t a, std::int32_t b) {
    PlaceNet net;
    net.objects = {a, b};
    f.model.nets.push_back(net);
  };
  for (std::int32_t i = 0; i + 1 < 8; ++i) chain(i, i + 1);
  for (std::int32_t i = 8; i + 1 < 16; ++i) chain(i, i + 1);
  chain(7, 8);    // crosses the cut -> boundary terminals in both shards
  chain(0, 16);   // net to the fixed terminal

  std::vector<ShardGroup> groups(2);
  groups[0].center = geom::Point{22.0, 41.0};
  groups[0].rect = geom::Rect::make(15.0, 35.0, 30.0, 48.0);
  groups[0].weight = 8;
  groups[1].center = geom::Point{82.0, 41.0};
  groups[1].rect = geom::Rect::make(75.0, 35.0, 90.0, 48.0);
  groups[1].weight = 8;
  f.partition = partition_regions(groups, f.model.core, 2);

  f.shard_of_object.assign(f.model.objects.size(), -1);
  for (int i = 0; i < 16; ++i) {
    f.shard_of_object[i] = f.partition.shard_of_group[i < 8 ? 0 : 1];
  }
  return f;
}

TEST(ShardedPlaceTest, SolvesTwoShardsWithFiniteResult) {
  ShardedFixture f = two_region_fixture();
  ShardedOptions sharded;
  sharded.shards = 2;
  const auto result =
      try_place_sharded(f.model, f.seed, f.shard_of_object, f.partition,
                        sharded, GlobalPlacerOptions{}, fault::DegradePolicy{});
  ASSERT_TRUE(result.has_value()) << result.error().code;
  const ShardedPlaceResult& out = result.value();
  ASSERT_EQ(out.placement.size(), f.model.objects.size());
  EXPECT_TRUE(std::isfinite(out.hpwl_um));
  EXPECT_GT(out.hpwl_um, 0.0);
  ASSERT_EQ(out.shards.size(), 2u);
  for (const ShardStat& s : out.shards) {
    EXPECT_EQ(s.movables, 8);
    EXPECT_FALSE(s.fell_back);
    EXPECT_GT(s.nets, 0);
    EXPECT_GT(s.terminals, 0) << "cross-cut net must pin a boundary terminal";
  }
  for (const geom::Point& p : out.placement) {
    EXPECT_TRUE(f.model.core.contains(p));
  }
}

TEST(ShardedPlaceTest, FixedObjectsKeepTheirPositions) {
  ShardedFixture f = two_region_fixture();
  ShardedOptions sharded;
  sharded.shards = 2;
  const auto result =
      try_place_sharded(f.model, f.seed, f.shard_of_object, f.partition,
                        sharded, GlobalPlacerOptions{}, fault::DegradePolicy{});
  ASSERT_TRUE(result.has_value());
  const geom::Point& p = result.value().placement.back();
  EXPECT_EQ(p.x, 50.0);
  EXPECT_EQ(p.y, 95.0);
}

TEST(ShardedPlaceTest, UnassignedMovablesKeepSeedWithoutStitch) {
  ShardedFixture f = two_region_fixture();
  f.shard_of_object[3] = -1;  // excluded from every shard
  ShardedOptions sharded;
  sharded.shards = 2;
  sharded.stitch_iterations = 0;  // merge only, so the contract is visible
  const auto result =
      try_place_sharded(f.model, f.seed, f.shard_of_object, f.partition,
                        sharded, GlobalPlacerOptions{}, fault::DegradePolicy{});
  ASSERT_TRUE(result.has_value());
  const geom::Point& p = result.value().placement[3];
  EXPECT_EQ(p.x, f.seed[3].x);
  EXPECT_EQ(p.y, f.seed[3].y);
  EXPECT_EQ(result.value().shards[f.shard_of_object[2]].movables, 7);
}

TEST(ShardedPlaceTest, RepeatedRunsBitIdentical) {
  ShardedFixture f = two_region_fixture();
  ShardedOptions sharded;
  sharded.shards = 2;
  const auto a =
      try_place_sharded(f.model, f.seed, f.shard_of_object, f.partition,
                        sharded, GlobalPlacerOptions{}, fault::DegradePolicy{});
  const auto b =
      try_place_sharded(f.model, f.seed, f.shard_of_object, f.partition,
                        sharded, GlobalPlacerOptions{}, fault::DegradePolicy{});
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(a.value().placement.size(), b.value().placement.size());
  for (std::size_t i = 0; i < a.value().placement.size(); ++i) {
    EXPECT_EQ(a.value().placement[i].x, b.value().placement[i].x) << i;
    EXPECT_EQ(a.value().placement[i].y, b.value().placement[i].y) << i;
  }
  EXPECT_EQ(a.value().hpwl_um, b.value().hpwl_um);
}

TEST(ShardedPlaceTest, ShardFaultFallsBackToSeed) {
  ShardedFixture f = two_region_fixture();
  auto plan = fault::parse_plan("seed=3;place.shard=error@1");
  ASSERT_TRUE(plan.has_value());
  fault::set_plan(plan.value());
  fault::reset_log();
  ShardedOptions sharded;
  sharded.shards = 2;
  sharded.stitch_iterations = 0;
  const auto result =
      try_place_sharded(f.model, f.seed, f.shard_of_object, f.partition,
                        sharded, GlobalPlacerOptions{}, fault::DegradePolicy{});
  fault::clear_plan();
  ASSERT_TRUE(result.has_value()) << result.error().code;
  const ShardedPlaceResult& out = result.value();
  // Shard 0 (fault key = shard index, @1 fires its first attempt) fell back:
  // its movables sit exactly at their seed positions.
  ASSERT_TRUE(out.shards[0].fell_back);
  EXPECT_EQ(out.shards[0].failure_code, "place-shard-failed");
  EXPECT_FALSE(out.shards[1].fell_back);
  for (int i = 0; i < 16; ++i) {
    if (f.shard_of_object[i] != 0) continue;
    EXPECT_EQ(out.placement[i].x, f.seed[i].x) << i;
    EXPECT_EQ(out.placement[i].y, f.seed[i].y) << i;
  }
  bool saw = false;
  for (const fault::Degradation& d : fault::degradation_log()) {
    if (d.site == "place.shard") {
      EXPECT_EQ(d.fallback, "vpr-seed");
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
  fault::reset_log();
}

TEST(ShardedPlaceTest, DisabledFallbackPolicyReturnsStructuredError) {
  ShardedFixture f = two_region_fixture();
  auto plan = fault::parse_plan("seed=3;place.shard=error");
  ASSERT_TRUE(plan.has_value());
  fault::set_plan(plan.value());
  fault::DegradePolicy policy;
  policy.shard_fallback_seed = false;
  ShardedOptions sharded;
  sharded.shards = 2;
  const auto result = try_place_sharded(f.model, f.seed, f.shard_of_object,
                                        f.partition, sharded,
                                        GlobalPlacerOptions{}, policy);
  fault::clear_plan();
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, "place-shard-failed");
  EXPECT_EQ(result.error().site, "place.shard");
  fault::reset_log();
}

}  // namespace
}  // namespace ppacd::place
