/// Edge cases and degenerate inputs across modules: empty/tiny designs,
/// combinational-only timing, single-object placement, degenerate routing.
#include <gtest/gtest.h>

#include <sstream>

#include "cts/cts.hpp"
#include "gen/generator.hpp"
#include "hier/dendrogram.hpp"
#include "netlist/io.hpp"
#include "netlist/subnetlist.hpp"
#include "place/floorplan.hpp"
#include "place/global_placer.hpp"
#include "place/legalizer.hpp"
#include "place/model.hpp"
#include "route/global_router.hpp"
#include "sta/activity.hpp"
#include "sta/power.hpp"
#include "sta/sta.hpp"
#include "cluster/fc_multilevel.hpp"
#include "cluster/graph.hpp"

namespace ppacd {
namespace {

using netlist::CellId;
using netlist::NetId;
using netlist::Netlist;

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

/// Purely combinational design: in -> INV -> out, no registers, no clock.
Netlist comb_only() {
  Netlist nl(lib(), "comb");
  const auto inv = *lib().find("INV_X1");
  const auto a = nl.add_cell("a", inv, nl.root_module());
  const auto in = nl.add_port("in", liberty::PinDir::kInput);
  const auto out = nl.add_port("out", liberty::PinDir::kOutput);
  const auto n0 = nl.add_net("n0");
  nl.connect(n0, nl.port(in).pin);
  nl.connect(n0, nl.cell_pin(a, 0));
  const auto n1 = nl.add_net("n1");
  nl.connect(n1, nl.cell_output_pin(a));
  nl.connect(n1, nl.port(out).pin);
  return nl;
}

TEST(Edge, CombinationalOnlySta) {
  const Netlist nl = comb_only();
  sta::StaOptions options;
  options.clock_period_ps = 1000.0;
  sta::Sta sta(nl, options);
  sta.run();
  // Endpoint = output port only; slack = period - inv delay.
  ASSERT_EQ(sta.endpoints().size(), 1u);
  EXPECT_GT(sta.slack_ps(sta.endpoints()[0]), 0.0);
  EXPECT_DOUBLE_EQ(sta.wns_ps(), 0.0);
  const auto paths = sta.worst_paths(5);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].pins.size(), 4u);  // in, a.A, a.Y, out
}

TEST(Edge, CombOnlyActivityAndPower) {
  const Netlist nl = comb_only();
  const auto act = sta::propagate_activity(nl, sta::ActivityOptions{});
  const auto report = sta::compute_power(nl, act, 1000.0, nullptr);
  EXPECT_GT(report.total_w, 0.0);
  EXPECT_DOUBLE_EQ(report.clock_w, 0.0);
}

TEST(Edge, CombOnlyCtsIsNoop) {
  const Netlist nl = comb_only();
  const std::vector<geom::Point> positions(nl.cell_count());
  const auto tree = cts::synthesize_clock_tree(nl, positions, cts::CtsOptions{});
  EXPECT_EQ(tree.buffer_count, 0);
  EXPECT_DOUBLE_EQ(tree.max_skew_ps, 0.0);
}

TEST(Edge, SingleCellPlacement) {
  Netlist nl = comb_only();
  place::FloorplanOptions fpo;
  const place::Floorplan fp =
      place::Floorplan::create(nl.total_cell_area(), lib().row_height_um(), fpo);
  place::place_ports_on_boundary(nl, fp);
  const place::PlaceModel model = place::make_place_model(nl, fp);
  const auto result = place::GlobalPlacer(model, place::GlobalPlacerOptions{}).run();
  EXPECT_TRUE(fp.core.contains(result.placement[0]));
  const auto legal = place::legalize(model, result.placement);
  EXPECT_EQ(legal.failed_count, 0);
}

TEST(Edge, RouterOnSingleNet) {
  Netlist nl = comb_only();
  place::FloorplanOptions fpo;
  const place::Floorplan fp =
      place::Floorplan::create(nl.total_cell_area(), lib().row_height_um(), fpo);
  place::place_ports_on_boundary(nl, fp);
  const std::vector<geom::Point> positions(nl.cell_count(), fp.core.center());
  const auto result =
      route::GlobalRouter(nl, positions, fp.core, route::RouteOptions{}).run();
  EXPECT_GE(result.wirelength_um, 0.0);
  EXPECT_EQ(result.overflow_edges, 0);
}

TEST(Edge, FcOnTinyNetlist) {
  const Netlist nl = comb_only();
  cluster::FcOptions options;
  options.target_cluster_count = 1;
  const auto result = cluster::fc_multilevel_cluster(nl, cluster::FcPpaInputs{}, options);
  EXPECT_EQ(result.cluster_of_cell.size(), 1u);
  EXPECT_EQ(result.cluster_count, 1);
}

TEST(Edge, CliqueExpandEmptyAndSingle) {
  Netlist nl(lib(), "lonely");
  const auto inv = *lib().find("INV_X1");
  nl.add_cell("a", inv, nl.root_module());
  const cluster::Graph graph = cluster::clique_expand(nl);
  EXPECT_EQ(graph.vertex_count, 1);
  EXPECT_DOUBLE_EQ(graph.total_edge_weight, 0.0);
}

TEST(Edge, DendrogramFlatDesign) {
  const Netlist nl = comb_only();
  const hier::Dendrogram dendro(nl);
  EXPECT_EQ(dendro.level_max(), 0);
  std::int32_t count = 0;
  const auto assignment = dendro.clustering_at(0, &count);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(assignment[0], 0);
}

TEST(Edge, SubnetlistOfWholeTinyDesign) {
  const Netlist nl = comb_only();
  const auto sub = netlist::extract_subnetlist(nl, {CellId(0)});
  EXPECT_EQ(sub.netlist.cell_count(), 1u);
  EXPECT_TRUE(sub.netlist.validate().empty());
}

TEST(Edge, VerilogRoundTripTinyDesign) {
  const Netlist nl = comb_only();
  std::ostringstream out;
  netlist::write_verilog(nl, out);
  std::istringstream in(out.str());
  const auto restored = netlist::read_verilog(in, lib());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->cell_count(), 1u);
  EXPECT_TRUE(restored->validate().empty());
}

TEST(Edge, FloorplanTinyArea) {
  const place::Floorplan fp =
      place::Floorplan::create(1.0, 1.4, place::FloorplanOptions{});
  EXPECT_GE(fp.row_count, 1);
  EXPECT_GT(fp.core.width(), 0.0);
}

TEST(Edge, StaWithZeroPeriod) {
  const Netlist nl = comb_only();
  sta::StaOptions options;
  options.clock_period_ps = 0.0;  // everything violates
  sta::Sta sta(nl, options);
  sta.run();
  EXPECT_LT(sta.wns_ps(), 0.0);
  EXPECT_LT(sta.tns_ns(), 0.0);
}

TEST(Edge, GeneratorMinimumSize) {
  gen::DesignSpec spec;
  spec.name = "min";
  spec.target_cells = 20;
  spec.hierarchy_depth = 1;
  spec.hierarchy_branching = 2;
  spec.io_ports = 4;
  const Netlist nl = gen::generate(lib(), spec);
  EXPECT_TRUE(nl.validate().empty());
  EXPECT_GE(nl.cell_count(), 8u);
}

TEST(Edge, LegalizerAtVeryHighDensity) {
  gen::DesignSpec spec;
  spec.name = "dense";
  spec.target_cells = 200;
  Netlist nl = gen::generate(lib(), spec);
  place::FloorplanOptions fpo;
  fpo.utilization = 0.95;
  const place::Floorplan fp =
      place::Floorplan::create(nl.total_cell_area(), lib().row_height_um(), fpo);
  place::place_ports_on_boundary(nl, fp);
  const place::PlaceModel model = place::make_place_model(nl, fp);
  const auto gp = place::GlobalPlacer(model, place::GlobalPlacerOptions{}).run();
  const auto legal = place::legalize(model, gp.placement);
  // Abacus must still find room (the core fits everything by construction).
  EXPECT_EQ(legal.failed_count, 0);
}

}  // namespace
}  // namespace ppacd
