#include <gtest/gtest.h>

#include <cmath>

#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "sta/activity.hpp"
#include "sta/power.hpp"
#include "sta/sta.hpp"

namespace ppacd::sta {
namespace {

using netlist::CellId;
using netlist::NetId;
using netlist::Netlist;
using netlist::PortId;

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

/// in -> INV(a) -> INV(b) -> DFF(d).D, clk -> DFF.CK, DFF.Q -> out.
struct Chain {
  explicit Chain(double period) : nl(lib(), "chain"), options() {
    const auto inv = *lib().find("INV_X1");
    const auto dff = *lib().find("DFF_X1");
    a = nl.add_cell("a", inv, nl.root_module());
    b = nl.add_cell("b", inv, nl.root_module());
    d = nl.add_cell("d", dff, nl.root_module());
    in = nl.add_port("in", liberty::PinDir::kInput);
    clk = nl.add_port("clk", liberty::PinDir::kInput);
    out = nl.add_port("out", liberty::PinDir::kOutput);

    const NetId n_in = nl.add_net("n_in");
    nl.connect(n_in, nl.port(in).pin);
    nl.connect(n_in, nl.cell_pin(a, 0));
    const NetId n_a = nl.add_net("n_a");
    nl.connect(n_a, nl.cell_output_pin(a));
    nl.connect(n_a, nl.cell_pin(b, 0));
    const NetId n_b = nl.add_net("n_b");
    nl.connect(n_b, nl.cell_output_pin(b));
    nl.connect(n_b, nl.cell_pin(d, 0));
    const NetId n_clk = nl.add_net("clk");
    nl.connect(n_clk, nl.port(clk).pin);
    nl.connect(n_clk, nl.cell_pin(d, 1));
    nl.mark_clock_net(n_clk);
    const NetId n_q = nl.add_net("n_q");
    nl.connect(n_q, nl.cell_output_pin(d));
    nl.connect(n_q, nl.port(out).pin);

    options.clock_period_ps = period;
  }

  /// Ideal-wire delay through one INV_X1 driving `load_ff`.
  static double inv_delay(double load_ff) {
    const auto& cell = lib().cell(*lib().find("INV_X1"));
    return cell.intrinsic_ps + cell.drive_res_kohm * load_ff;
  }

  Netlist nl;
  StaOptions options;
  CellId a, b, d;
  PortId in, clk, out;
};

TEST(Sta, ChainArrivalMatchesHandComputation) {
  Chain chain(1000.0);
  Sta sta(chain.nl, chain.options);
  sta.run();

  const double inv_cap = lib().cell(*lib().find("INV_X1")).pins[0].cap_ff;
  const double dff_d_cap = lib().cell(*lib().find("DFF_X1")).pins[0].cap_ff;
  const double d_a = Chain::inv_delay(inv_cap);    // a drives b
  const double d_b = Chain::inv_delay(dff_d_cap);  // b drives DFF.D

  const auto d_pin = chain.nl.cell_pin(chain.d, 0);
  EXPECT_NEAR(sta.arrival_ps(d_pin), d_a + d_b, 1e-9);
}

TEST(Sta, SlackAgainstSetup) {
  Chain chain(1000.0);
  Sta sta(chain.nl, chain.options);
  sta.run();
  const auto& dff = lib().cell(*lib().find("DFF_X1"));
  const auto d_pin = chain.nl.cell_pin(chain.d, 0);
  EXPECT_NEAR(sta.slack_ps(d_pin),
              1000.0 - dff.setup_ps - sta.arrival_ps(d_pin), 1e-9);
  EXPECT_DOUBLE_EQ(sta.wns_ps(), 0.0);  // generous period, no violation
  EXPECT_DOUBLE_EQ(sta.tns_ns(), 0.0);
}

TEST(Sta, TightClockCreatesNegativeSlack) {
  Chain chain(20.0);  // far below two INV delays + setup
  Sta sta(chain.nl, chain.options);
  sta.run();
  EXPECT_LT(sta.wns_ps(), 0.0);
  EXPECT_LT(sta.tns_ns(), 0.0);
  // TNS aggregates the two violating endpoints (D pin and output port).
  EXPECT_LE(sta.tns_ns() * 1000.0, sta.wns_ps());
}

TEST(Sta, WorstPathBacktracksThroughChain) {
  Chain chain(20.0);
  Sta sta(chain.nl, chain.options);
  sta.run();
  const auto paths = sta.worst_paths(10);
  ASSERT_FALSE(paths.empty());
  const TimingPath& worst = paths.front();
  // Path: in-port pin, a.A, a.Y, b.A, b.Y, d.D  (net arcs + cell arcs).
  ASSERT_EQ(worst.pins.size(), 6u);
  EXPECT_EQ(worst.pins.front(), chain.nl.port(chain.in).pin);
  EXPECT_EQ(worst.pins.back(), chain.nl.cell_pin(chain.d, 0));
  // Sorted by ascending slack.
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].slack_ps, paths[i].slack_ps);
  }
}

TEST(Sta, MaxPathsRespected) {
  Chain chain(20.0);
  Sta sta(chain.nl, chain.options);
  sta.run();
  EXPECT_LE(sta.worst_paths(1).size(), 1u);
}

TEST(Sta, PlacementAddsWireDelay) {
  Chain chain(1000.0);
  Sta ideal(chain.nl, chain.options);
  ideal.run();

  std::vector<geom::Point> positions(chain.nl.cell_count());
  positions[chain.a.index()] = {0.0, 0.0};
  positions[chain.b.index()] = {200.0, 0.0};  // long wire
  positions[chain.d.index()] = {200.0, 10.0};
  StaOptions placed_options = chain.options;
  placed_options.cell_positions = &positions;
  Sta placed(chain.nl, placed_options);
  placed.run();

  const auto d_pin = chain.nl.cell_pin(chain.d, 0);
  EXPECT_GT(placed.arrival_ps(d_pin), ideal.arrival_ps(d_pin));
  EXPECT_GT(placed.net_wirelength_um(netlist::NetId(1)), 0.0);
  EXPECT_DOUBLE_EQ(ideal.net_wirelength_um(netlist::NetId(1)), 0.0);
}

TEST(Sta, ClockArrivalShiftsLaunchAndCapture) {
  Chain chain(100.0);
  // Give the single flop a late clock: capture gets more time, so the D
  // endpoint's required time moves out by the arrival.
  std::vector<double> arrivals(chain.nl.cell_count(), 0.0);
  arrivals[chain.d.index()] = 40.0;
  StaOptions options = chain.options;
  options.clock_arrivals_ps = &arrivals;

  Sta base(chain.nl, chain.options);
  base.run();
  Sta skewed(chain.nl, options);
  skewed.run();

  const auto d_pin = chain.nl.cell_pin(chain.d, 0);
  EXPECT_NEAR(skewed.slack_ps(d_pin), base.slack_ps(d_pin) + 40.0, 1e-9);
  // The launch edge also moves: Q arrival shifts by +40.
  const auto q_pin = chain.nl.cell_output_pin(chain.d);
  EXPECT_NEAR(skewed.arrival_ps(q_pin), base.arrival_ps(q_pin) + 40.0, 1e-9);
}

TEST(Sta, NetSlackIsDriverSlack) {
  Chain chain(20.0);
  Sta sta(chain.nl, chain.options);
  sta.run();
  // Net n_a (id 1) is driven by a's output.
  EXPECT_NEAR(sta.net_slack_ps(netlist::NetId(1)), sta.slack_ps(chain.nl.cell_output_pin(chain.a)),
              1e-12);
  // Clock net slack is +inf.
  EXPECT_TRUE(std::isinf(sta.net_slack_ps(netlist::NetId(3))));
}

TEST(Sta, GeneratedDesignHasFiniteTiming) {
  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = 600;
  const Netlist nl = gen::generate(lib(), spec);
  StaOptions options;
  options.clock_period_ps = spec.clock_period_ps;
  Sta sta(nl, options);
  sta.run();
  EXPECT_FALSE(sta.endpoints().empty());
  EXPECT_TRUE(std::isfinite(sta.wns_ps()));
  EXPECT_TRUE(std::isfinite(sta.tns_ns()));
  const auto paths = sta.worst_paths(100);
  EXPECT_FALSE(paths.empty());
  for (const auto& path : paths) EXPECT_GE(path.pins.size(), 2u);
}

// --- Activity ---------------------------------------------------------------

TEST(Activity, InverterFlipsProbability) {
  Netlist nl(lib(), "t");
  const auto inv = *lib().find("INV_X1");
  const CellId a = nl.add_cell("a", inv, nl.root_module());
  const PortId in = nl.add_port("in", liberty::PinDir::kInput);
  const PortId out = nl.add_port("out", liberty::PinDir::kOutput);
  const NetId n_in = nl.add_net("n_in");
  nl.connect(n_in, nl.port(in).pin);
  nl.connect(n_in, nl.cell_pin(a, 0));
  const NetId n_out = nl.add_net("n_out");
  nl.connect(n_out, nl.cell_output_pin(a));
  nl.connect(n_out, nl.port(out).pin);

  ActivityOptions options;
  options.input_p = 0.3;
  const auto act = propagate_activity(nl, options);
  EXPECT_NEAR(act[n_out.index()].p_one, 0.7, 1e-12);
  // An inverter preserves transition density.
  EXPECT_NEAR(act[n_out.index()].toggle,
              act[n_in.index()].toggle, 1e-12);
}

TEST(Activity, AndGateProbabilityProduct) {
  Netlist nl(lib(), "t");
  const auto and2 = *lib().find("AND2_X1");
  const CellId g = nl.add_cell("g", and2, nl.root_module());
  const PortId i0 = nl.add_port("i0", liberty::PinDir::kInput);
  const PortId i1 = nl.add_port("i1", liberty::PinDir::kInput);
  const PortId out = nl.add_port("out", liberty::PinDir::kOutput);
  const NetId n0 = nl.add_net("n0");
  nl.connect(n0, nl.port(i0).pin);
  nl.connect(n0, nl.cell_pin(g, 0));
  const NetId n1 = nl.add_net("n1");
  nl.connect(n1, nl.port(i1).pin);
  nl.connect(n1, nl.cell_pin(g, 1));
  const NetId ny = nl.add_net("ny");
  nl.connect(ny, nl.cell_output_pin(g));
  nl.connect(ny, nl.port(out).pin);

  const auto act = propagate_activity(nl, ActivityOptions{});
  EXPECT_NEAR(act[ny.index()].p_one, 0.25, 1e-12);
  // Boolean-difference: D_y = p1*D0 + p0*D1 <= D0 + D1.
  EXPECT_LT(act[ny.index()].toggle,
            act[n0.index()].toggle +
                act[n1.index()].toggle + 1e-12);
}

TEST(Activity, ClockNetTogglesTwicePerCycle) {
  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = 300;
  const Netlist nl = gen::generate(lib(), spec);
  const auto act = propagate_activity(nl, ActivityOptions{});
  bool found_clock = false;
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    if (!nl.net(static_cast<NetId>(ni)).is_clock) continue;
    found_clock = true;
    EXPECT_DOUBLE_EQ(act[ni].toggle, 2.0);
  }
  EXPECT_TRUE(found_clock);
}

TEST(Activity, TogglesClampedAndProbabilitiesValid) {
  gen::DesignSpec spec = gen::design_spec("jpeg");
  spec.target_cells = 800;
  const Netlist nl = gen::generate(lib(), spec);
  ActivityOptions options;
  const auto act = propagate_activity(nl, options);
  for (const auto& a : act) {
    EXPECT_GE(a.p_one, 0.0);
    EXPECT_LE(a.p_one, 1.0);
    EXPECT_GE(a.toggle, 0.0);
    EXPECT_LE(a.toggle, options.max_toggle);
  }
}

TEST(Activity, XorChainsIncreaseActivity) {
  // XOR propagates the sum of input densities, so deep XOR trees run hot.
  Netlist nl(lib(), "t");
  const auto xg = *lib().find("XOR2_X1");
  const PortId i0 = nl.add_port("i0", liberty::PinDir::kInput);
  const PortId i1 = nl.add_port("i1", liberty::PinDir::kInput);
  const PortId i2 = nl.add_port("i2", liberty::PinDir::kInput);
  const CellId g0 = nl.add_cell("g0", xg, nl.root_module());
  const CellId g1 = nl.add_cell("g1", xg, nl.root_module());
  const PortId out = nl.add_port("out", liberty::PinDir::kOutput);
  NetId n0 = nl.add_net("n0");
  nl.connect(n0, nl.port(i0).pin);
  nl.connect(n0, nl.cell_pin(g0, 0));
  NetId n1 = nl.add_net("n1");
  nl.connect(n1, nl.port(i1).pin);
  nl.connect(n1, nl.cell_pin(g0, 1));
  NetId ny0 = nl.add_net("ny0");
  nl.connect(ny0, nl.cell_output_pin(g0));
  nl.connect(ny0, nl.cell_pin(g1, 0));
  NetId n2 = nl.add_net("n2");
  nl.connect(n2, nl.port(i2).pin);
  nl.connect(n2, nl.cell_pin(g1, 1));
  NetId ny1 = nl.add_net("ny1");
  nl.connect(ny1, nl.cell_output_pin(g1));
  nl.connect(ny1, nl.port(out).pin);

  const auto act = propagate_activity(nl, ActivityOptions{});
  EXPECT_GT(act[ny1.index()].toggle,
            act[n0.index()].toggle);
}

// --- Power -------------------------------------------------------------------

TEST(Power, LeakageMatchesLibrarySum) {
  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = 300;
  const Netlist nl = gen::generate(lib(), spec);
  const auto act = propagate_activity(nl, ActivityOptions{});
  const PowerReport report = compute_power(nl, act, 1000.0, nullptr);
  double leak = 0.0;
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    leak += nl.lib_cell_of(static_cast<CellId>(ci)).leakage_uw * 1e-6;
  }
  EXPECT_NEAR(report.leakage_w, leak, 1e-12);
  EXPECT_GT(report.switching_w, 0.0);
  EXPECT_NEAR(report.total_w, report.switching_w + report.leakage_w, 1e-15);
}

TEST(Power, FasterClockBurnsMore) {
  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = 300;
  const Netlist nl = gen::generate(lib(), spec);
  const auto act = propagate_activity(nl, ActivityOptions{});
  const PowerReport slow = compute_power(nl, act, 2000.0, nullptr);
  const PowerReport fast = compute_power(nl, act, 500.0, nullptr);
  EXPECT_GT(fast.switching_w, slow.switching_w);
  EXPECT_DOUBLE_EQ(fast.leakage_w, slow.leakage_w);
}

TEST(Power, WirelengthIncreasesSwitching) {
  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = 300;
  const Netlist nl = gen::generate(lib(), spec);
  const auto act = propagate_activity(nl, ActivityOptions{});
  const PowerReport ideal = compute_power(nl, act, 1000.0, nullptr);
  std::vector<geom::Point> spread(nl.cell_count());
  for (std::size_t i = 0; i < spread.size(); ++i) {
    spread[i] = {static_cast<double>(i % 100) * 10.0,
                 static_cast<double>(i / 100) * 10.0};
  }
  const PowerReport placed = compute_power(nl, act, 1000.0, &spread);
  EXPECT_GT(placed.switching_w, ideal.switching_w);
  EXPECT_GT(placed.clock_w, 0.0);
}

}  // namespace
}  // namespace ppacd::sta
