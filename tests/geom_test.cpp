#include <gtest/gtest.h>

#include "geom/geometry.hpp"

namespace ppacd::geom {
namespace {

TEST(Point, Distances) {
  const Point a{0.0, 0.0};
  const Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(manhattan(a, b), 7.0);
  EXPECT_DOUBLE_EQ(euclidean(a, b), 5.0);
}

TEST(Rect, Dimensions) {
  const Rect r = Rect::make(1.0, 2.0, 4.0, 8.0);
  EXPECT_DOUBLE_EQ(r.width(), 3.0);
  EXPECT_DOUBLE_EQ(r.height(), 6.0);
  EXPECT_DOUBLE_EQ(r.area(), 18.0);
  EXPECT_DOUBLE_EQ(r.half_perimeter(), 9.0);
  EXPECT_EQ(r.center(), (Point{2.5, 5.0}));
}

TEST(Rect, ContainsAndClamp) {
  const Rect r = Rect::make(0.0, 0.0, 10.0, 10.0);
  EXPECT_TRUE(r.contains({5.0, 5.0}));
  EXPECT_TRUE(r.contains({0.0, 10.0}));  // boundary counts
  EXPECT_FALSE(r.contains({10.1, 5.0}));
  EXPECT_EQ(r.clamp({-3.0, 15.0}), (Point{0.0, 10.0}));
}

TEST(Rect, Intersects) {
  const Rect a = Rect::make(0.0, 0.0, 5.0, 5.0);
  EXPECT_TRUE(a.intersects(Rect::make(4.0, 4.0, 8.0, 8.0)));
  EXPECT_TRUE(a.intersects(Rect::make(5.0, 0.0, 8.0, 5.0)));  // touching edge
  EXPECT_FALSE(a.intersects(Rect::make(6.0, 6.0, 8.0, 8.0)));
}

TEST(BBox, EmptyHasZeroHpwl) {
  BBox box;
  EXPECT_TRUE(box.empty());
  EXPECT_DOUBLE_EQ(box.half_perimeter(), 0.0);
}

TEST(BBox, ExpandAccumulates) {
  BBox box;
  box.expand({1.0, 1.0});
  EXPECT_FALSE(box.empty());
  EXPECT_DOUBLE_EQ(box.half_perimeter(), 0.0);  // single point
  box.expand({4.0, 5.0});
  EXPECT_DOUBLE_EQ(box.half_perimeter(), 3.0 + 4.0);
  const Rect r = box.rect();
  EXPECT_DOUBLE_EQ(r.lx, 1.0);
  EXPECT_DOUBLE_EQ(r.uy, 5.0);
}

}  // namespace
}  // namespace ppacd::geom
