#include <gtest/gtest.h>

#include <queue>
#include <unordered_map>

#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "gen/scale.hpp"
#include "hier/rent.hpp"
#include "netlist/stats.hpp"

namespace ppacd::gen {
namespace {

using netlist::CellId;
using netlist::NetId;
using netlist::Netlist;
using netlist::PinId;

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

DesignSpec tiny_spec() {
  DesignSpec spec;
  spec.name = "tiny";
  spec.seed = 123;
  spec.target_cells = 400;
  spec.hierarchy_depth = 2;
  spec.hierarchy_branching = 3;
  spec.io_ports = 16;
  return spec;
}

TEST(Generator, ProducesValidNetlist) {
  const Netlist nl = generate(lib(), tiny_spec());
  EXPECT_TRUE(nl.validate().empty());
  const auto stats = netlist::compute_stats(nl);
  EXPECT_NEAR(static_cast<double>(stats.cell_count), 400.0, 80.0);
  EXPECT_GT(stats.net_count, stats.cell_count / 2);
  EXPECT_GT(stats.register_count, 0u);
}

TEST(Generator, Deterministic) {
  const Netlist a = generate(lib(), tiny_spec());
  const Netlist b = generate(lib(), tiny_spec());
  ASSERT_EQ(a.cell_count(), b.cell_count());
  ASSERT_EQ(a.net_count(), b.net_count());
  for (std::size_t i = 0; i < a.net_count(); ++i) {
    EXPECT_EQ(a.net(static_cast<NetId>(i)).pins.size(),
              b.net(static_cast<NetId>(i)).pins.size());
  }
}

TEST(Generator, SeedChangesDesign) {
  DesignSpec spec = tiny_spec();
  const Netlist a = generate(lib(), spec);
  spec.seed = 999;
  const Netlist b = generate(lib(), spec);
  // Same budget but different wiring.
  bool differs = a.net_count() != b.net_count();
  for (std::size_t i = 0; !differs && i < std::min(a.net_count(), b.net_count());
       ++i) {
    differs = a.net(static_cast<NetId>(i)).pins.size() !=
              b.net(static_cast<NetId>(i)).pins.size();
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, SingleClockNetCoversAllRegisters) {
  const Netlist nl = generate(lib(), tiny_spec());
  NetId clk = netlist::kInvalidId;
  for (std::size_t i = 0; i < nl.net_count(); ++i) {
    if (nl.net(static_cast<NetId>(i)).is_clock) {
      EXPECT_EQ(clk, netlist::kInvalidId) << "multiple clock nets";
      clk = static_cast<NetId>(i);
    }
  }
  ASSERT_NE(clk, netlist::kInvalidId);
  std::size_t clocked = 0;
  for (PinId pid : nl.net(clk).pins) {
    if (nl.pin(pid).is_clock) ++clocked;
  }
  const auto stats = netlist::compute_stats(nl);
  EXPECT_EQ(clocked, stats.register_count);
}

/// The combinational portion of a generated design must be acyclic, or STA
/// would loop forever. Checked with Kahn's algorithm over cell->cell edges
/// that do not pass through a flip-flop D input or a clock pin.
bool combinational_dag(const Netlist& nl) {
  std::vector<int> indegree(nl.cell_count(), 0);
  std::vector<std::vector<CellId>> out_edges(nl.cell_count());
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const auto& net = nl.net(static_cast<NetId>(ni));
    if (net.driver == netlist::kInvalidId) continue;
    const auto& driver = nl.pin(net.driver);
    if (driver.kind != netlist::PinKind::kCellPin) continue;
    if (liberty::is_sequential(nl.lib_cell_of(driver.cell).function)) continue;
    for (PinId pid : net.pins) {
      const auto& pin = nl.pin(pid);
      if (pid == net.driver || pin.kind != netlist::PinKind::kCellPin) continue;
      if (pin.is_clock) continue;
      if (liberty::is_sequential(nl.lib_cell_of(pin.cell).function)) continue;
      out_edges[driver.cell.index()].push_back(pin.cell);
      ++indegree[pin.cell.index()];
    }
  }
  std::queue<CellId> ready;
  std::size_t done = 0;
  for (std::size_t i = 0; i < nl.cell_count(); ++i) {
    if (indegree[i] == 0) ready.push(static_cast<CellId>(i));
  }
  while (!ready.empty()) {
    const CellId c = ready.front();
    ready.pop();
    ++done;
    for (CellId next : out_edges[c.index()]) {
      if (--indegree[next.index()] == 0) ready.push(next);
    }
  }
  return done == nl.cell_count();
}

TEST(Generator, CombinationalLogicIsAcyclic) {
  EXPECT_TRUE(combinational_dag(generate(lib(), tiny_spec())));
}

class AllDesignsTest : public ::testing::TestWithParam<DesignSpec> {};

TEST_P(AllDesignsTest, GeneratesValidDesign) {
  const DesignSpec& spec = GetParam();
  const Netlist nl = generate(lib(), spec);
  EXPECT_TRUE(nl.validate().empty());
  const auto stats = netlist::compute_stats(nl);
  // Within 25% of the target instance count.
  EXPECT_NEAR(static_cast<double>(stats.cell_count),
              static_cast<double>(spec.target_cells),
              0.25 * spec.target_cells);
  EXPECT_TRUE(nl.has_hierarchy());
  EXPECT_TRUE(combinational_dag(nl));
}

INSTANTIATE_TEST_SUITE_P(
    PaperDesigns, AllDesignsTest,
    ::testing::ValuesIn(small_design_specs()),
    [](const ::testing::TestParamInfo<DesignSpec>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Designs, SizeLadderPreserved) {
  const auto specs = all_design_specs();
  ASSERT_EQ(specs.size(), 6u);
  for (std::size_t i = 1; i < specs.size(); ++i) {
    EXPECT_GT(specs[i].target_cells, specs[i - 1].target_cells)
        << specs[i].name << " should be larger than " << specs[i - 1].name;
  }
  // Paper span is ~175x (15.5k -> 2.73M); scaled span must stay >= 15x.
  EXPECT_GE(specs.back().target_cells / specs.front().target_cells, 15);
}

TEST(Designs, TopologiesDiffer) {
  EXPECT_EQ(design_spec("jpeg").topology, Topology::kPipeline);
  EXPECT_EQ(design_spec("BlackParrot").topology, Topology::kMulticore);
  EXPECT_EQ(design_spec("MemPool Group").topology, Topology::kTiled);
  EXPECT_EQ(design_spec("ariane").topology, Topology::kGeneric);
}

TEST(Designs, HierarchyShapeMatchesTopology) {
  const Netlist mp = generate(lib(), design_spec("jpeg"));
  // Pipeline: root children are stages.
  const auto& root = mp.module(mp.root_module());
  EXPECT_GE(root.children.size(), 2u);
  EXPECT_EQ(mp.module(root.children[0]).name, "stage0");
}

// ---------------------------------------------------------------------------
// Paper-scale tier (gen/scale.hpp)
// ---------------------------------------------------------------------------

TEST(ScaledTier, EntriesResolveByNameThroughDesignSpec) {
  const auto& tier = scaled_design_tier();
  ASSERT_GE(tier.size(), 6u);
  for (const ScaledDesignInfo& info : tier) {
    const ScaledDesignInfo* found = find_scaled_design(info.name);
    ASSERT_NE(found, nullptr) << info.name;
    EXPECT_EQ(found->target_cells, info.target_cells);
    // design_spec falls through to the scaled tier for unknown paper names.
    const DesignSpec spec = design_spec(info.name);
    EXPECT_EQ(spec.name, info.name);
    EXPECT_EQ(spec.target_cells, info.target_cells);
    EXPECT_GE(info.target_cells, 100'000) << "tier is the at-scale ladder";
  }
  EXPECT_EQ(find_scaled_design("not-a-design"), nullptr);
}

TEST(ScaledTier, FamiliesMapToDistinctTopologies) {
  EXPECT_EQ(make_scaled_design("generic", 4000, 0.65, 1).topology,
            Topology::kGeneric);
  EXPECT_EQ(make_scaled_design("macro", 4000, 0.65, 1).topology,
            Topology::kMulticore);
  EXPECT_EQ(make_scaled_design("datapath", 4000, 0.65, 1).topology,
            Topology::kPipeline);
}

TEST(ScaledTier, SmokeSizedScaledDesignsAreValid) {
  // The scale knobs must not depend on absolute size, so a downscaled member
  // of each family stands in for the 1M+ versions in unit tests.
  for (const char* family : {"generic", "macro", "datapath"}) {
    const DesignSpec spec = make_scaled_design(family, 4000, 0.65, 42);
    const Netlist nl = generate(lib(), spec);
    EXPECT_TRUE(nl.validate().empty()) << family;
    const auto stats = netlist::compute_stats(nl);
    EXPECT_NEAR(static_cast<double>(stats.cell_count), 4000.0, 1000.0)
        << family;
    EXPECT_TRUE(nl.has_hierarchy()) << family;
    EXPECT_TRUE(combinational_dag(nl)) << family;
  }
}

/// Cell -> index of its top-level hierarchy block (child of root), the
/// natural clustering for measuring the generated netlist's Rent exponent.
std::vector<std::int32_t> top_block_assignment(const Netlist& nl,
                                               std::int32_t& cluster_count) {
  std::vector<std::int32_t> block_of_module(nl.module_count(), 0);
  cluster_count = 1;  // cluster 0: cells directly under the root
  for (const netlist::ModuleId id : nl.module_ids()) {
    if (id == nl.root_module()) continue;
    netlist::ModuleId top = id;
    while (nl.module(top).parent != nl.root_module()) {
      top = nl.module(top).parent;
    }
    if (top == id) block_of_module[id.index()] = cluster_count++;
  }
  for (const netlist::ModuleId id : nl.module_ids()) {
    if (id == nl.root_module()) continue;
    netlist::ModuleId top = id;
    while (nl.module(top).parent != nl.root_module()) {
      top = nl.module(top).parent;
    }
    block_of_module[id.index()] = block_of_module[top.index()];
  }
  std::vector<std::int32_t> assignment(nl.cell_count(), 0);
  for (const netlist::CellId id : nl.cell_ids()) {
    assignment[id.index()] = block_of_module[nl.cell(id).module.index()];
  }
  return assignment;
}

TEST(ScaledTier, RentExponentKnobIsMonotone) {
  // The requested exponent maps onto net-locality fractions; the measured
  // average Rent exponent over top-level blocks must preserve the ordering
  // (calibrated, not exact — only monotonicity is contractual).
  auto measured = [&](double p) {
    const DesignSpec spec = make_scaled_design("generic", 6000, p, 42);
    const Netlist nl = generate(lib(), spec);
    std::int32_t clusters = 0;
    const auto assignment = top_block_assignment(nl, clusters);
    return hier::average_rent(nl, assignment, clusters);
  };
  const double low = measured(0.50);
  const double high = measured(0.80);
  EXPECT_LT(low, high) << "low=" << low << " high=" << high;
}

}  // namespace
}  // namespace ppacd::gen
