#include <gtest/gtest.h>

#include <cmath>

#include "features/features.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "netlist/subnetlist.hpp"

namespace ppacd::features {
namespace {

using netlist::CellId;
using netlist::NetId;
using netlist::Netlist;

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

/// Path graph a - b - c (two 2-pin nets).
Netlist path3() {
  Netlist nl(lib(), "p3");
  const auto inv = *lib().find("INV_X1");
  const auto nand2 = *lib().find("NAND2_X1");
  const CellId a = nl.add_cell("a", inv, nl.root_module());
  const CellId b = nl.add_cell("b", nand2, nl.root_module());
  const CellId c = nl.add_cell("c", inv, nl.root_module());
  const NetId n0 = nl.add_net("n0");
  nl.connect(n0, nl.cell_output_pin(a));
  nl.connect(n0, nl.cell_pin(b, 0));
  const NetId n1 = nl.add_net("n1");
  nl.connect(n1, nl.cell_output_pin(b));
  nl.connect(n1, nl.cell_pin(c, 0));
  return nl;
}

TEST(Features, DimensionsAndShapeSlots) {
  const Netlist nl = path3();
  ClusterGraph graph = extract_cluster_graph(nl, FeatureOptions{});
  EXPECT_EQ(graph.node_count, 3);
  EXPECT_EQ(graph.node_features.size(), 3u * kFeatureDim);
  EXPECT_DOUBLE_EQ(graph.feature(0, kShapeUtilSlot), 0.0);
  apply_shape_features(graph, 0.85, 1.25);
  for (std::int32_t v = 0; v < 3; ++v) {
    EXPECT_DOUBLE_EQ(graph.feature(v, kShapeUtilSlot), 0.85);
    EXPECT_DOUBLE_EQ(graph.feature(v, kShapeAspectSlot), 1.25);
  }
}

TEST(Features, PathGraphStructureMetrics) {
  const Netlist nl = path3();
  const ClusterGraph graph = extract_cluster_graph(nl, FeatureOptions{});
  // Slot map: 2=#cells, 3=#nets, 13=diameter (2+11), 14=radius.
  EXPECT_DOUBLE_EQ(graph.feature(0, 2), 3.0);   // #cells
  EXPECT_DOUBLE_EQ(graph.feature(0, 3), 2.0);   // #nets
  EXPECT_DOUBLE_EQ(graph.feature(0, 14), 2.0);  // diameter of a path of 3
  EXPECT_DOUBLE_EQ(graph.feature(0, 15), 1.0);  // radius (center node)
  // Degrees: ends 1, middle 2 (slot 20).
  EXPECT_DOUBLE_EQ(graph.feature(0, 20), 1.0);
  EXPECT_DOUBLE_EQ(graph.feature(1, 20), 2.0);
  EXPECT_DOUBLE_EQ(graph.feature(2, 20), 1.0);
  // Degree centrality (slot 24): degree / (n-1).
  EXPECT_DOUBLE_EQ(graph.feature(1, 24), 1.0);
  // Middle node has max betweenness (slot 22).
  EXPECT_GT(graph.feature(1, 22), graph.feature(0, 22));
}

TEST(Features, CellTypeOneHot) {
  const Netlist nl = path3();
  const ClusterGraph graph = extract_cluster_graph(nl, FeatureOptions{});
  for (std::int32_t v = 0; v < graph.node_count; ++v) {
    double sum = 0.0;
    for (int c = 27; c < 35; ++c) sum += graph.feature(v, c);
    EXPECT_DOUBLE_EQ(sum, 1.0);
  }
  // a is INV (class 0), b is NAND2 (class 2).
  EXPECT_DOUBLE_EQ(graph.feature(0, 27 + 0), 1.0);
  EXPECT_DOUBLE_EQ(graph.feature(1, 27 + 2), 1.0);
}

TEST(Features, NormalizedAdjacencyHasSelfLoops) {
  const Netlist nl = path3();
  const ClusterGraph graph = extract_cluster_graph(nl, FeatureOptions{});
  for (std::int32_t v = 0; v < graph.node_count; ++v) {
    bool self = false;
    for (const auto& [u, w] : graph.adjacency[static_cast<std::size_t>(v)]) {
      EXPECT_GT(w, 0.0);
      if (u == v) self = true;
    }
    EXPECT_TRUE(self);
  }
}

TEST(Features, DeterministicForSeed) {
  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = 300;
  const Netlist nl = gen::generate(lib(), spec);
  FeatureOptions options;
  options.seed = 9;
  const ClusterGraph a = extract_cluster_graph(nl, options);
  const ClusterGraph b = extract_cluster_graph(nl, options);
  EXPECT_EQ(a.node_features, b.node_features);
}

TEST(Features, ClusterLevelBroadcast) {
  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = 300;
  const Netlist nl = gen::generate(lib(), spec);
  const ClusterGraph graph = extract_cluster_graph(nl, FeatureOptions{});
  // Cluster-level slots (2..18) identical on all nodes.
  for (int slot = 2; slot <= 18; ++slot) {
    for (std::int32_t v = 1; v < graph.node_count; ++v) {
      ASSERT_DOUBLE_EQ(graph.feature(v, slot), graph.feature(0, slot))
          << "slot " << slot;
    }
  }
  // Cell-level degree (slot 20) must differ across nodes somewhere.
  bool differs = false;
  for (std::int32_t v = 1; v < graph.node_count && !differs; ++v) {
    differs = graph.feature(v, 20) != graph.feature(0, 20);
  }
  EXPECT_TRUE(differs);
}

TEST(Features, BorderNetsCounted) {
  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = 400;
  const Netlist nl = gen::generate(lib(), spec);
  // Extract a strict subset so boundary ports exist.
  std::vector<CellId> half;
  for (std::size_t i = 0; i < nl.cell_count() / 2; ++i) {
    half.push_back(static_cast<CellId>(i));
  }
  const netlist::SubNetlist sub = netlist::extract_subnetlist(nl, half);
  const ClusterGraph graph = extract_cluster_graph(sub.netlist, FeatureOptions{});
  EXPECT_GT(graph.feature(0, 8), 0.0);  // #border nets (slot 2+6)
}

class FeatureSampleSweep : public ::testing::TestWithParam<int> {};

TEST_P(FeatureSampleSweep, SampledMetricsStayBounded) {
  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = 300;
  const Netlist nl = gen::generate(lib(), spec);
  FeatureOptions options;
  options.bfs_samples = GetParam();
  const ClusterGraph graph = extract_cluster_graph(nl, options);
  for (std::int32_t v = 0; v < graph.node_count; ++v) {
    EXPECT_GE(graph.feature(v, 22), 0.0);  // betweenness
    EXPECT_GE(graph.feature(v, 23), 0.0);  // closeness
    EXPECT_LE(graph.feature(v, 25), 1.0);  // clustering coefficient
    EXPECT_GE(graph.feature(v, 26), 0.0);  // eccentricity
  }
  // Diameter >= radius >= 0 (cluster-level slots 14/15).
  EXPECT_GE(graph.feature(0, 14), graph.feature(0, 15));
  EXPECT_GE(graph.feature(0, 15), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Samples, FeatureSampleSweep,
                         ::testing::Values(4, 12, 32, 64),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "s" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ppacd::features
