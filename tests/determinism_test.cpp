/// \file determinism_test.cpp
/// \brief End-to-end enforcement of the exec determinism contract: the full
/// flow (clustering, V-P&R shape sweeps, placement, routing, CTS, STA) must
/// produce bit-identical results with 1 thread and with 8, on more than one
/// design and through both flow entry points.
///
/// Gauges are last-write metrics and thus legitimately racy under parallel
/// writers; the comparisons below stick to placements, PPA numbers, and
/// deterministic counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <queue>
#include <vector>

#include "exec/exec.hpp"
#include "fault/fault.hpp"
#include "flow/flow.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "observe/observe.hpp"
#include "route/bucket_queue.hpp"
#include "telemetry/telemetry.hpp"
#include "util/simd.hpp"

namespace ppacd::flow {
namespace {

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

// Pinned by the golden-hash fixtures below; regenerate by running this test
// and copying the hash printed on mismatch.
//
// History: the clustered hash was re-pinned when the clustering kernels moved
// from unordered_map rating/gain tables to epoch-stamped dense scratch — the
// scratch iterates keys in first-touch order instead of stdlib hash order,
// which changes equal-rating tie-breaks (deterministically). The default-flow
// hash was unaffected: the CSR/scratch conversions preserve floating-point
// accumulation order everywhere else.
//
// Both hashes were re-pinned for the SIMD/bandwidth pass (DESIGN.md §15): the
// placer's CG reductions moved to the fixed 4-lane accumulation order of
// util::simd, which changes dot-product bit patterns (deterministically —
// the new order is identical for SIMD and scalar dispatch, for any thread
// count). The router bucket-queue, STA lane-SoA sweeps, and ml CSR batch
// refactors in the same pass were each verified bit-neutral: the flow hashes
// below were unchanged before and after every one of them.
constexpr std::uint64_t kGoldenClusteredHash = 0xb0c19e059d62a9f4ULL;
constexpr std::uint64_t kGoldenDefaultHash = 0xfd23903d85389bc2ULL;
// Sharded flow (DESIGN.md §16): shard membership, extraction, per-shard
// solves, and the stitch are all pure functions of (model, seed, shard
// count), so each shard count pins its own hash. shards=1 differs from the
// clustered golden by construction: the sharded flow solves the flat model
// through the shard path (one region + stitch) instead of the fenced
// incremental pass.
constexpr std::uint64_t kGoldenSharded1Hash = 0xbe8dd0762a2344e5ULL;
constexpr std::uint64_t kGoldenShardedNHash = 0xf1d35026dabbbbf5ULL;

struct FlowSnapshot {
  std::vector<geom::Point> positions;
  double hpwl_um = 0.0;
  int cluster_count = 0;
  int shaped_clusters = 0;
  double rwl_um = 0.0;
  double wns_ps = 0.0;
  double tns_ns = 0.0;
  double power_w = 0.0;
  double clock_skew_ps = 0.0;
  int route_overflow_edges = 0;
  std::int64_t shapes_evaluated = 0;  // deterministic counter
};

void expect_identical(const FlowSnapshot& serial, const FlowSnapshot& parallel) {
  ASSERT_EQ(serial.positions.size(), parallel.positions.size());
  for (std::size_t i = 0; i < serial.positions.size(); ++i) {
    ASSERT_EQ(serial.positions[i].x, parallel.positions[i].x) << "cell " << i;
    ASSERT_EQ(serial.positions[i].y, parallel.positions[i].y) << "cell " << i;
  }
  EXPECT_EQ(serial.hpwl_um, parallel.hpwl_um);
  EXPECT_EQ(serial.cluster_count, parallel.cluster_count);
  EXPECT_EQ(serial.shaped_clusters, parallel.shaped_clusters);
  EXPECT_EQ(serial.rwl_um, parallel.rwl_um);
  EXPECT_EQ(serial.wns_ps, parallel.wns_ps);
  EXPECT_EQ(serial.tns_ns, parallel.tns_ns);
  EXPECT_EQ(serial.power_w, parallel.power_w);
  EXPECT_EQ(serial.clock_skew_ps, parallel.clock_skew_ps);
  EXPECT_EQ(serial.route_overflow_edges, parallel.route_overflow_edges);
  EXPECT_EQ(serial.shapes_evaluated, parallel.shapes_evaluated);
}

/// Runs one flow configuration at `threads` on a freshly generated design
/// (run_* mutates the netlist, so every run starts from the generator).
FlowSnapshot run_at(int threads, const char* design, int cells, bool clustered,
                    bool enable_vpr, int shards = 0) {
  exec::set_thread_count(threads);
  gen::DesignSpec spec = gen::design_spec(design);
  spec.target_cells = cells;
  netlist::Netlist nl = gen::generate(lib(), spec);

  FlowOptions options;
  options.clock_period_ps = 550.0;
  options.fc.target_cluster_count = 10;
  options.vpr.min_cluster_instances = enable_vpr ? 20 : (1 << 20);
  options.sharding.shards = shards;

  telemetry::metrics().reset();
  const FlowResult result = shards > 0 ? run_sharded_flow(nl, options)
                            : clustered ? run_clustered_flow(nl, options)
                                        : run_default_flow(nl, options);
  const PpaOutcome ppa =
      evaluate_ppa(nl, result.place.positions, options);

  FlowSnapshot snap;
  snap.positions = result.place.positions;
  snap.hpwl_um = result.place.hpwl_um;
  snap.cluster_count = result.place.cluster_count;
  snap.shaped_clusters = result.place.shaped_clusters;
  snap.rwl_um = ppa.rwl_um;
  snap.wns_ps = ppa.wns_ps;
  snap.tns_ns = ppa.tns_ns;
  snap.power_w = ppa.power_w;
  snap.clock_skew_ps = ppa.clock_skew_ps;
  snap.route_overflow_edges = ppa.route_overflow_edges;
  snap.shapes_evaluated =
      telemetry::metrics().counter("vpr.shapes.evaluated").value();
  return snap;
}

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = exec::thread_count(); }
  void TearDown() override {
    exec::set_thread_count(saved_threads_);
    telemetry::metrics().reset();
    fault::clear_plan();
    fault::reset_log();
  }
  int saved_threads_ = 1;
};

TEST_F(DeterminismTest, ClusteredFlowWithVprBitIdentical1v8) {
  // V-P&R enabled: exercises the nested cluster x shape-candidate region,
  // the placer solves inside score_virtual_die, and the batched router.
  const FlowSnapshot serial = run_at(1, "aes", 600, /*clustered=*/true,
                                     /*enable_vpr=*/true);
#if !defined(PPACD_TELEMETRY_DISABLED)
  EXPECT_GT(serial.shapes_evaluated, 0);
#endif
  const FlowSnapshot parallel = run_at(8, "aes", 600, /*clustered=*/true,
                                       /*enable_vpr=*/true);
  expect_identical(serial, parallel);
}

TEST_F(DeterminismTest, DefaultFlowSecondDesignBitIdentical1v8) {
  // Second design + flat entry point: flat quadratic placement, routing,
  // CTS, and level-parallel STA with no clustering in the loop.
  const FlowSnapshot serial = run_at(1, "jpeg", 500, /*clustered=*/false,
                                     /*enable_vpr=*/false);
  const FlowSnapshot parallel = run_at(8, "jpeg", 500, /*clustered=*/false,
                                       /*enable_vpr=*/false);
  expect_identical(serial, parallel);
}

TEST_F(DeterminismTest, ShardedFlowBitIdentical1v8) {
  // The sharded flow's per-shard solves run under exec::parallel_for, so this
  // is the direct test of the sharding determinism contract: extraction,
  // shard solves, merge, and stitch must not depend on thread count.
  const FlowSnapshot serial = run_at(1, "aes", 600, /*clustered=*/true,
                                     /*enable_vpr=*/true, /*shards=*/4);
  const FlowSnapshot parallel = run_at(8, "aes", 600, /*clustered=*/true,
                                       /*enable_vpr=*/true, /*shards=*/4);
  expect_identical(serial, parallel);
}

// ---------------------------------------------------------------------------
// Determinism under fault injection
// ---------------------------------------------------------------------------
//
// Faults fire as a pure function of (plan seed, site, logical key, attempt),
// never of dynamic hit order, and degradations are recorded from serial
// contexts in a deterministic order — so an injected, degraded run must be
// just as bit-identical across thread counts as a clean one.

struct FaultedSnapshot {
  FlowSnapshot flow;
  std::vector<fault::Degradation> degradations;
};

FaultedSnapshot run_faulted_at(int threads, const char* plan_spec) {
  auto plan = fault::parse_plan(plan_spec);
  EXPECT_TRUE(plan.has_value()) << plan_spec;
  fault::reset_log();
  fault::set_plan(plan.value());
  FaultedSnapshot snap;
  snap.flow = run_at(threads, "aes", 600, /*clustered=*/true,
                     /*enable_vpr=*/true);
  snap.degradations = fault::degradation_log();
  fault::clear_plan();
  return snap;
}

TEST_F(DeterminismTest, FaultedClusteredFlowBitIdentical1v8) {
  const char* plan =
      "seed=7;vpr.shape_eval=error%0.5;route.maze=error%0.2;"
      "sta.arrival=poison";
  const FaultedSnapshot serial = run_faulted_at(1, plan);
  const FaultedSnapshot parallel = run_faulted_at(8, plan);
  expect_identical(serial.flow, parallel.flow);
  // The degradation record — what fell back, why, in what order — must be
  // identical too, not just the numeric outcome.
  ASSERT_EQ(serial.degradations.size(), parallel.degradations.size());
  EXPECT_FALSE(serial.degradations.empty());
  for (std::size_t i = 0; i < serial.degradations.size(); ++i) {
    EXPECT_TRUE(serial.degradations[i] == parallel.degradations[i])
        << "degradation " << i << ": " << serial.degradations[i].site
        << " vs " << parallel.degradations[i].site;
  }
}

// ---------------------------------------------------------------------------
// Golden flow-result hashes
// ---------------------------------------------------------------------------
//
// The 1-vs-8-thread tests above prove thread-count invariance but would not
// notice a refactor that changes the answer *identically* at every thread
// count. The fixtures below pin the serialized flow result (every placement
// coordinate bit plus the PPA scalars) to a constant, so data-layout and perf
// PRs provably change zero output bits. If an intentional algorithmic change
// moves the result, the failure message prints the new hash to pin.

/// FNV-1a over raw bytes; endian/width-stable for the fixed g++/x86-64 CI
/// toolchain this fixture targets.
std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t hash) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t snapshot_hash(const FlowSnapshot& snap) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const geom::Point& p : snap.positions) {
    hash = fnv1a(&p.x, sizeof(p.x), hash);
    hash = fnv1a(&p.y, sizeof(p.y), hash);
  }
  const double scalars[] = {snap.hpwl_um, snap.rwl_um,   snap.wns_ps,
                            snap.tns_ns,  snap.power_w,  snap.clock_skew_ps};
  hash = fnv1a(scalars, sizeof(scalars), hash);
  const std::int64_t ints[] = {snap.cluster_count, snap.shaped_clusters,
                               snap.route_overflow_edges,
                               snap.shapes_evaluated};
  return fnv1a(ints, sizeof(ints), hash);
}

TEST_F(DeterminismTest, GoldenClusteredFlowHashPinned) {
#if defined(PPACD_TELEMETRY_DISABLED)
  // The clustered golden folds vpr.shapes.evaluated (a telemetry counter)
  // into the hash; with telemetry compiled out the counter reads 0 and the
  // hash legitimately differs. The 1-vs-8 test above still checks
  // bit-identity of positions and PPA in this configuration.
  GTEST_SKIP() << "golden hash includes a telemetry counter";
#endif
  const FlowSnapshot snap = run_at(1, "aes", 600, /*clustered=*/true,
                                   /*enable_vpr=*/true);
  EXPECT_EQ(snapshot_hash(snap), kGoldenClusteredHash)
      << "clustered flow output changed; if intentional, re-pin to 0x"
      << std::hex << snapshot_hash(snap);
}

TEST_F(DeterminismTest, GoldenDefaultFlowHashPinned) {
  const FlowSnapshot snap = run_at(1, "jpeg", 500, /*clustered=*/false,
                                   /*enable_vpr=*/false);
  EXPECT_EQ(snapshot_hash(snap), kGoldenDefaultHash)
      << "default flow output changed; if intentional, re-pin to 0x"
      << std::hex << snapshot_hash(snap);
}

TEST_F(DeterminismTest, GoldenShardedFlowHashesPinned) {
#if defined(PPACD_TELEMETRY_DISABLED)
  GTEST_SKIP() << "golden hash includes a telemetry counter";
#endif
  // shards=1 and shards=4 are distinct algorithms (different region systems
  // and boundary terminals), so each pins its own golden. Together with the
  // 1-vs-8 test above this guarantees the shard decomposition depends only on
  // (model, seed, shard count) — never thread count or iteration order.
  const FlowSnapshot one = run_at(1, "aes", 600, /*clustered=*/true,
                                  /*enable_vpr=*/true, /*shards=*/1);
  EXPECT_EQ(snapshot_hash(one), kGoldenSharded1Hash)
      << "sharded flow (shards=1) output changed; if intentional, re-pin to 0x"
      << std::hex << snapshot_hash(one);
  const FlowSnapshot many = run_at(1, "aes", 600, /*clustered=*/true,
                                   /*enable_vpr=*/true, /*shards=*/4);
  EXPECT_EQ(snapshot_hash(many), kGoldenShardedNHash)
      << "sharded flow (shards=4) output changed; if intentional, re-pin to 0x"
      << std::hex << snapshot_hash(many);
}

#if !defined(PPACD_OBSERVE_DISABLED) && !defined(PPACD_TELEMETRY_DISABLED)
// The flight recorder is write-only for the solvers (DESIGN.md section 13):
// turning it on must not move a single output bit, so the same golden hashes
// hold with the recorder enabled. A failure here means an instrumentation
// block leaked state back into a hot loop.
TEST_F(DeterminismTest, GoldenHashesUnchangedWithObserveEnabled) {
  const bool saved = observe::recorder().enabled();
  observe::recorder().set_enabled(true);
  observe::recorder().reset();
  const FlowSnapshot clustered = run_at(1, "aes", 600, /*clustered=*/true,
                                        /*enable_vpr=*/true);
  EXPECT_EQ(snapshot_hash(clustered), kGoldenClusteredHash)
      << "observe instrumentation changed the clustered flow output";
  const FlowSnapshot flat = run_at(1, "jpeg", 500, /*clustered=*/false,
                                   /*enable_vpr=*/false);
  EXPECT_EQ(snapshot_hash(flat), kGoldenDefaultHash)
      << "observe instrumentation changed the default flow output";
  EXPECT_FALSE(observe::recorder().merged_samples().empty())
      << "recorder was on but nothing was recorded";
  observe::recorder().reset();
  observe::recorder().set_enabled(saved);
}
#endif

// ---------------------------------------------------------------------------
// SIMD kernel bit-identity (DESIGN.md §15)
// ---------------------------------------------------------------------------
//
// util/simd.hpp always compiles the scalar reference path, so one binary can
// cross-check the dispatched kernels (SSE2 when PPACD_SIMD is on, scalar
// aliases otherwise) against the numeric ground truth. The comparisons are on
// raw bit patterns, not tolerances: the contract is bit-identity, which is
// what lets the flow goldens above hold across PPACD_SIMD=ON/OFF builds.

/// Deterministic pseudo-random doubles in [-scale/2, scale/2] (LCG; no
/// std::random so values are identical across stdlib versions).
std::vector<double> lcg_doubles(std::size_t n, std::uint64_t seed,
                                double scale) {
  std::vector<double> out(n);
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < n; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    out[i] = scale * (static_cast<double>(s >> 11) / 9007199254740992.0 - 0.5);
  }
  return out;
}

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

bool same_bits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Lengths covering the empty case, pure scalar tails, exact lane multiples,
/// and vector bodies with every tail remainder.
const std::size_t kSimdLens[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 63, 64, 257};

TEST(SimdKernelsTest, DotBitIdenticalToScalarReference) {
  for (const std::size_t n : kSimdLens) {
    const auto a = lcg_doubles(n, 0x1111 + n, 3.0);
    const auto b = lcg_doubles(n, 0x2222 + n, 2.0);
    EXPECT_EQ(bits(util::simd::dot(a.data(), b.data(), n)),
              bits(util::simd::dot_scalar(a.data(), b.data(), n)))
        << "n=" << n;
  }
}

TEST(SimdKernelsTest, CgUpdateBitIdenticalToScalarReference) {
  for (const std::size_t n : kSimdLens) {
    const auto p = lcg_doubles(n, 0x3333 + n, 1.0);
    const auto ap = lcg_doubles(n, 0x4444 + n, 4.0);
    auto x1 = lcg_doubles(n, 0x5555 + n, 10.0);
    auto r1 = lcg_doubles(n, 0x6666 + n, 0.5);
    auto x2 = x1;
    auto r2 = r1;
    util::simd::cg_update(x1.data(), r1.data(), p.data(), ap.data(), 0.37, n);
    util::simd::cg_update_scalar(x2.data(), r2.data(), p.data(), ap.data(),
                                 0.37, n);
    EXPECT_TRUE(same_bits(x1, x2)) << "n=" << n;
    EXPECT_TRUE(same_bits(r1, r2)) << "n=" << n;
  }
}

TEST(SimdKernelsTest, AxpyXpbyAddBitIdenticalToScalarReference) {
  for (const std::size_t n : kSimdLens) {
    const auto src = lcg_doubles(n, 0x7777 + n, 2.0);
    auto a1 = lcg_doubles(n, 0x8888 + n, 5.0);
    auto a2 = a1;
    util::simd::axpy(a1.data(), -1.25, src.data(), n);
    util::simd::axpy_scalar(a2.data(), -1.25, src.data(), n);
    EXPECT_TRUE(same_bits(a1, a2)) << "axpy n=" << n;

    auto p1 = lcg_doubles(n, 0x9999 + n, 5.0);
    auto p2 = p1;
    util::simd::xpby(p1.data(), src.data(), 0.81, n);
    util::simd::xpby_scalar(p2.data(), src.data(), 0.81, n);
    EXPECT_TRUE(same_bits(p1, p2)) << "xpby n=" << n;

    auto d1 = lcg_doubles(n, 0xaaaa + n, 5.0);
    auto d2 = d1;
    util::simd::add(d1.data(), src.data(), n);
    util::simd::add_scalar(d2.data(), src.data(), n);
    EXPECT_TRUE(same_bits(d1, d2)) << "add n=" << n;
  }
}

TEST(SimdKernelsTest, JacobiBitIdenticalIncludingNonPositiveDiagonal) {
  for (const std::size_t n : kSimdLens) {
    const auto in = lcg_doubles(n, 0xbbbb + n, 6.0);
    // Mix of positive, negative, and exactly-zero diagonal entries so both
    // sides of the d > 0 select are exercised in vector and tail positions.
    auto diag = lcg_doubles(n, 0xcccc + n, 2.0);
    for (std::size_t i = 0; i < n; i += 5) diag[i] = 0.0;
    std::vector<double> out1(n);
    std::vector<double> out2(n);
    util::simd::jacobi(out1.data(), in.data(), diag.data(), n);
    util::simd::jacobi_scalar(out2.data(), in.data(), diag.data(), n);
    EXPECT_TRUE(same_bits(out1, out2)) << "n=" << n;
  }
}

TEST(SimdKernelsTest, CsrRowBitIdenticalToScalarReference) {
  const auto x = lcg_doubles(512, 0xdddd, 8.0);
  for (const std::size_t len : kSimdLens) {
    const auto w = lcg_doubles(len, 0xeeee + len, 1.5);
    std::vector<std::int32_t> c(len);
    std::uint64_t s = 0xffff + len;
    for (std::size_t i = 0; i < len; ++i) {
      s = s * 6364136223846793005ULL + 1442695040888963407ULL;
      c[i] = static_cast<std::int32_t>(s % x.size());
    }
    EXPECT_EQ(bits(util::simd::csr_row(2.5, w.data(), c.data(), x.data(), len)),
              bits(util::simd::csr_row_scalar(2.5, w.data(), c.data(), x.data(),
                                              len)))
        << "len=" << len;
  }
}

// ---------------------------------------------------------------------------
// Router bucket queue vs. binary heap pop-order equivalence
// ---------------------------------------------------------------------------
//
// The maze router's BucketQueue claims pop-order identity with the
// std::priority_queue it replaced (bucket_queue.hpp). This drives both with
// the same Dijkstra-shaped workload — monotone pushes with edge costs
// >= kMinEdgeCost, duplicate distances, and stale entries — and requires the
// two pop sequences to match entry for entry.
TEST(BucketQueueTest, PopOrderMatchesBinaryHeapOnMonotoneWorkload) {
  using Entry = route::BucketQueue::Entry;
  route::BucketQueue bq;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;

  bq.begin();
  std::uint64_t s = 0x5eed;
  auto rnd = [&s]() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s;
  };
  // Seed a few sources at distance 0, then interleave pops with relaxations
  // pushing d + cost, cost in [1, 4); some pushes reuse the exact distance
  // and node of an earlier one to model stale heap entries.
  for (std::int32_t node = 0; node < 4; ++node) {
    bq.push(0.0, node);
    heap.emplace(0.0, node);
  }
  std::vector<Entry> bq_order;
  std::vector<Entry> heap_order;
  Entry e;
  while (bq.pop(e)) {
    bq_order.push_back(e);
    ASSERT_FALSE(heap.empty());
    heap_order.push_back(heap.top());
    heap.pop();
    if (bq_order.size() < 400) {
      const int fanout = 1 + static_cast<int>(rnd() % 2);
      for (int k = 0; k < fanout; ++k) {
        const double cost =
            route::BucketQueue::kMinEdgeCost +
            3.0 * (static_cast<double>(rnd() >> 11) / 9007199254740992.0);
        const double nd = e.first + cost;
        const auto node = static_cast<std::int32_t>(rnd() % 1024);
        bq.push(nd, node);
        heap.emplace(nd, node);
        if (k == 0 && (rnd() & 1) != 0) {  // duplicate == stale entry
          bq.push(nd, node);
          heap.emplace(nd, node);
        }
      }
    }
  }
  EXPECT_TRUE(heap.empty());
  ASSERT_GT(bq_order.size(), 100u);
  ASSERT_EQ(bq_order.size(), heap_order.size());
  for (std::size_t i = 0; i < bq_order.size(); ++i) {
    EXPECT_EQ(bits(bq_order[i].first), bits(heap_order[i].first)) << "pop " << i;
    EXPECT_EQ(bq_order[i].second, heap_order[i].second) << "pop " << i;
  }
}

}  // namespace
}  // namespace ppacd::flow
