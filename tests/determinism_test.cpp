/// \file determinism_test.cpp
/// \brief End-to-end enforcement of the exec determinism contract: the full
/// flow (clustering, V-P&R shape sweeps, placement, routing, CTS, STA) must
/// produce bit-identical results with 1 thread and with 8, on more than one
/// design and through both flow entry points.
///
/// Gauges are last-write metrics and thus legitimately racy under parallel
/// writers; the comparisons below stick to placements, PPA numbers, and
/// deterministic counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exec/exec.hpp"
#include "fault/fault.hpp"
#include "flow/flow.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "observe/observe.hpp"
#include "telemetry/telemetry.hpp"

namespace ppacd::flow {
namespace {

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

// Pinned by the golden-hash fixtures below; regenerate by running this test
// and copying the hash printed on mismatch.
//
// History: the clustered hash was re-pinned when the clustering kernels moved
// from unordered_map rating/gain tables to epoch-stamped dense scratch — the
// scratch iterates keys in first-touch order instead of stdlib hash order,
// which changes equal-rating tie-breaks (deterministically). The default-flow
// hash was unaffected: the CSR/scratch conversions preserve floating-point
// accumulation order everywhere else.
constexpr std::uint64_t kGoldenClusteredHash = 0x16c5a7cfabdff6f3ULL;
constexpr std::uint64_t kGoldenDefaultHash = 0xca7b1fcf249460ebULL;

struct FlowSnapshot {
  std::vector<geom::Point> positions;
  double hpwl_um = 0.0;
  int cluster_count = 0;
  int shaped_clusters = 0;
  double rwl_um = 0.0;
  double wns_ps = 0.0;
  double tns_ns = 0.0;
  double power_w = 0.0;
  double clock_skew_ps = 0.0;
  int route_overflow_edges = 0;
  std::int64_t shapes_evaluated = 0;  // deterministic counter
};

void expect_identical(const FlowSnapshot& serial, const FlowSnapshot& parallel) {
  ASSERT_EQ(serial.positions.size(), parallel.positions.size());
  for (std::size_t i = 0; i < serial.positions.size(); ++i) {
    ASSERT_EQ(serial.positions[i].x, parallel.positions[i].x) << "cell " << i;
    ASSERT_EQ(serial.positions[i].y, parallel.positions[i].y) << "cell " << i;
  }
  EXPECT_EQ(serial.hpwl_um, parallel.hpwl_um);
  EXPECT_EQ(serial.cluster_count, parallel.cluster_count);
  EXPECT_EQ(serial.shaped_clusters, parallel.shaped_clusters);
  EXPECT_EQ(serial.rwl_um, parallel.rwl_um);
  EXPECT_EQ(serial.wns_ps, parallel.wns_ps);
  EXPECT_EQ(serial.tns_ns, parallel.tns_ns);
  EXPECT_EQ(serial.power_w, parallel.power_w);
  EXPECT_EQ(serial.clock_skew_ps, parallel.clock_skew_ps);
  EXPECT_EQ(serial.route_overflow_edges, parallel.route_overflow_edges);
  EXPECT_EQ(serial.shapes_evaluated, parallel.shapes_evaluated);
}

/// Runs one flow configuration at `threads` on a freshly generated design
/// (run_* mutates the netlist, so every run starts from the generator).
FlowSnapshot run_at(int threads, const char* design, int cells, bool clustered,
                    bool enable_vpr) {
  exec::set_thread_count(threads);
  gen::DesignSpec spec = gen::design_spec(design);
  spec.target_cells = cells;
  netlist::Netlist nl = gen::generate(lib(), spec);

  FlowOptions options;
  options.clock_period_ps = 550.0;
  options.fc.target_cluster_count = 10;
  options.vpr.min_cluster_instances = enable_vpr ? 20 : (1 << 20);

  telemetry::metrics().reset();
  const FlowResult result = clustered ? run_clustered_flow(nl, options)
                                      : run_default_flow(nl, options);
  const PpaOutcome ppa =
      evaluate_ppa(nl, result.place.positions, options);

  FlowSnapshot snap;
  snap.positions = result.place.positions;
  snap.hpwl_um = result.place.hpwl_um;
  snap.cluster_count = result.place.cluster_count;
  snap.shaped_clusters = result.place.shaped_clusters;
  snap.rwl_um = ppa.rwl_um;
  snap.wns_ps = ppa.wns_ps;
  snap.tns_ns = ppa.tns_ns;
  snap.power_w = ppa.power_w;
  snap.clock_skew_ps = ppa.clock_skew_ps;
  snap.route_overflow_edges = ppa.route_overflow_edges;
  snap.shapes_evaluated =
      telemetry::metrics().counter("vpr.shapes.evaluated").value();
  return snap;
}

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = exec::thread_count(); }
  void TearDown() override {
    exec::set_thread_count(saved_threads_);
    telemetry::metrics().reset();
    fault::clear_plan();
    fault::reset_log();
  }
  int saved_threads_ = 1;
};

TEST_F(DeterminismTest, ClusteredFlowWithVprBitIdentical1v8) {
  // V-P&R enabled: exercises the nested cluster x shape-candidate region,
  // the placer solves inside score_virtual_die, and the batched router.
  const FlowSnapshot serial = run_at(1, "aes", 600, /*clustered=*/true,
                                     /*enable_vpr=*/true);
#if !defined(PPACD_TELEMETRY_DISABLED)
  EXPECT_GT(serial.shapes_evaluated, 0);
#endif
  const FlowSnapshot parallel = run_at(8, "aes", 600, /*clustered=*/true,
                                       /*enable_vpr=*/true);
  expect_identical(serial, parallel);
}

TEST_F(DeterminismTest, DefaultFlowSecondDesignBitIdentical1v8) {
  // Second design + flat entry point: flat quadratic placement, routing,
  // CTS, and level-parallel STA with no clustering in the loop.
  const FlowSnapshot serial = run_at(1, "jpeg", 500, /*clustered=*/false,
                                     /*enable_vpr=*/false);
  const FlowSnapshot parallel = run_at(8, "jpeg", 500, /*clustered=*/false,
                                       /*enable_vpr=*/false);
  expect_identical(serial, parallel);
}

// ---------------------------------------------------------------------------
// Determinism under fault injection
// ---------------------------------------------------------------------------
//
// Faults fire as a pure function of (plan seed, site, logical key, attempt),
// never of dynamic hit order, and degradations are recorded from serial
// contexts in a deterministic order — so an injected, degraded run must be
// just as bit-identical across thread counts as a clean one.

struct FaultedSnapshot {
  FlowSnapshot flow;
  std::vector<fault::Degradation> degradations;
};

FaultedSnapshot run_faulted_at(int threads, const char* plan_spec) {
  auto plan = fault::parse_plan(plan_spec);
  EXPECT_TRUE(plan.has_value()) << plan_spec;
  fault::reset_log();
  fault::set_plan(plan.value());
  FaultedSnapshot snap;
  snap.flow = run_at(threads, "aes", 600, /*clustered=*/true,
                     /*enable_vpr=*/true);
  snap.degradations = fault::degradation_log();
  fault::clear_plan();
  return snap;
}

TEST_F(DeterminismTest, FaultedClusteredFlowBitIdentical1v8) {
  const char* plan =
      "seed=7;vpr.shape_eval=error%0.5;route.maze=error%0.2;"
      "sta.arrival=poison";
  const FaultedSnapshot serial = run_faulted_at(1, plan);
  const FaultedSnapshot parallel = run_faulted_at(8, plan);
  expect_identical(serial.flow, parallel.flow);
  // The degradation record — what fell back, why, in what order — must be
  // identical too, not just the numeric outcome.
  ASSERT_EQ(serial.degradations.size(), parallel.degradations.size());
  EXPECT_FALSE(serial.degradations.empty());
  for (std::size_t i = 0; i < serial.degradations.size(); ++i) {
    EXPECT_TRUE(serial.degradations[i] == parallel.degradations[i])
        << "degradation " << i << ": " << serial.degradations[i].site
        << " vs " << parallel.degradations[i].site;
  }
}

// ---------------------------------------------------------------------------
// Golden flow-result hashes
// ---------------------------------------------------------------------------
//
// The 1-vs-8-thread tests above prove thread-count invariance but would not
// notice a refactor that changes the answer *identically* at every thread
// count. The fixtures below pin the serialized flow result (every placement
// coordinate bit plus the PPA scalars) to a constant, so data-layout and perf
// PRs provably change zero output bits. If an intentional algorithmic change
// moves the result, the failure message prints the new hash to pin.

/// FNV-1a over raw bytes; endian/width-stable for the fixed g++/x86-64 CI
/// toolchain this fixture targets.
std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t hash) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t snapshot_hash(const FlowSnapshot& snap) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const geom::Point& p : snap.positions) {
    hash = fnv1a(&p.x, sizeof(p.x), hash);
    hash = fnv1a(&p.y, sizeof(p.y), hash);
  }
  const double scalars[] = {snap.hpwl_um, snap.rwl_um,   snap.wns_ps,
                            snap.tns_ns,  snap.power_w,  snap.clock_skew_ps};
  hash = fnv1a(scalars, sizeof(scalars), hash);
  const std::int64_t ints[] = {snap.cluster_count, snap.shaped_clusters,
                               snap.route_overflow_edges,
                               snap.shapes_evaluated};
  return fnv1a(ints, sizeof(ints), hash);
}

TEST_F(DeterminismTest, GoldenClusteredFlowHashPinned) {
#if defined(PPACD_TELEMETRY_DISABLED)
  // The clustered golden folds vpr.shapes.evaluated (a telemetry counter)
  // into the hash; with telemetry compiled out the counter reads 0 and the
  // hash legitimately differs. The 1-vs-8 test above still checks
  // bit-identity of positions and PPA in this configuration.
  GTEST_SKIP() << "golden hash includes a telemetry counter";
#endif
  const FlowSnapshot snap = run_at(1, "aes", 600, /*clustered=*/true,
                                   /*enable_vpr=*/true);
  EXPECT_EQ(snapshot_hash(snap), kGoldenClusteredHash)
      << "clustered flow output changed; if intentional, re-pin to 0x"
      << std::hex << snapshot_hash(snap);
}

TEST_F(DeterminismTest, GoldenDefaultFlowHashPinned) {
  const FlowSnapshot snap = run_at(1, "jpeg", 500, /*clustered=*/false,
                                   /*enable_vpr=*/false);
  EXPECT_EQ(snapshot_hash(snap), kGoldenDefaultHash)
      << "default flow output changed; if intentional, re-pin to 0x"
      << std::hex << snapshot_hash(snap);
}

#if !defined(PPACD_OBSERVE_DISABLED) && !defined(PPACD_TELEMETRY_DISABLED)
// The flight recorder is write-only for the solvers (DESIGN.md section 13):
// turning it on must not move a single output bit, so the same golden hashes
// hold with the recorder enabled. A failure here means an instrumentation
// block leaked state back into a hot loop.
TEST_F(DeterminismTest, GoldenHashesUnchangedWithObserveEnabled) {
  const bool saved = observe::recorder().enabled();
  observe::recorder().set_enabled(true);
  observe::recorder().reset();
  const FlowSnapshot clustered = run_at(1, "aes", 600, /*clustered=*/true,
                                        /*enable_vpr=*/true);
  EXPECT_EQ(snapshot_hash(clustered), kGoldenClusteredHash)
      << "observe instrumentation changed the clustered flow output";
  const FlowSnapshot flat = run_at(1, "jpeg", 500, /*clustered=*/false,
                                   /*enable_vpr=*/false);
  EXPECT_EQ(snapshot_hash(flat), kGoldenDefaultHash)
      << "observe instrumentation changed the default flow output";
  EXPECT_FALSE(observe::recorder().merged_samples().empty())
      << "recorder was on but nothing was recorded";
  observe::recorder().reset();
  observe::recorder().set_enabled(saved);
}
#endif

}  // namespace
}  // namespace ppacd::flow
