#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/cluster_check.hpp"
#include "check/netlist_check.hpp"
#include "check/place_check.hpp"
#include "check/route_check.hpp"
#include "cluster/clustered_netlist.hpp"
#include "flow/flow.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "place/floorplan.hpp"
#include "place/global_placer.hpp"
#include "place/model.hpp"
#include "route/global_router.hpp"

namespace ppacd::check {
namespace {

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

std::vector<std::string> codes(const CheckResult& result) {
  std::vector<std::string> out;
  for (const Violation& v : result.violations) out.push_back(v.code);
  return out;
}

bool has_code(const CheckResult& result, std::string_view code) {
  return std::any_of(result.violations.begin(), result.violations.end(),
                     [&](const Violation& v) { return v.code == code; });
}

bool only_codes(const CheckResult& result,
                std::initializer_list<std::string_view> allowed) {
  return std::all_of(result.violations.begin(), result.violations.end(),
                     [&](const Violation& v) {
                       return std::find(allowed.begin(), allowed.end(),
                                        v.code) != allowed.end();
                     });
}

// ---------------------------------------------------------------------------
// Framework
// ---------------------------------------------------------------------------

TEST(CheckFramework, ParseCheckLevel) {
  CheckLevel level = CheckLevel::kOff;
  EXPECT_TRUE(parse_check_level("cheap", &level));
  EXPECT_EQ(level, CheckLevel::kCheap);
  EXPECT_TRUE(parse_check_level("full", &level));
  EXPECT_EQ(level, CheckLevel::kFull);
  EXPECT_TRUE(parse_check_level("off", &level));
  EXPECT_EQ(level, CheckLevel::kOff);
  EXPECT_TRUE(parse_check_level("2", &level));
  EXPECT_EQ(level, CheckLevel::kFull);
  level = CheckLevel::kCheap;
  EXPECT_FALSE(parse_check_level("bogus", &level));
  EXPECT_EQ(level, CheckLevel::kCheap);  // untouched on failure
}

TEST(CheckFramework, ResultCapsStoredViolationsButCountsAll) {
  CheckResult result;
  result.checker = "test";
  for (int i = 0; i < 100; ++i) result.add("code", msg() << "violation " << i);
  EXPECT_EQ(result.total_violations, 100u);
  EXPECT_EQ(result.violations.size(), CheckResult::kMaxStoredViolations);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.exactly("code"));  // exactly() means exactly one
}

TEST(CheckFramework, ReportAccumulatesIntoProcessLog) {
  reset_log();
  CheckResult clean;
  clean.checker = "clean";
  EXPECT_TRUE(report(clean));
  CheckResult dirty;
  dirty.checker = "dirty";
  dirty.add("some-code", "object 7 is broken");
  EXPECT_FALSE(report(dirty));
  EXPECT_EQ(logged_violations(), 1u);
  EXPECT_EQ(log_snapshot().size(), 2u);
  const std::string json = log_json().dump();
  EXPECT_NE(json.find("some-code"), std::string::npos);
  EXPECT_NE(json.find("object 7 is broken"), std::string::npos);
  reset_log();
  EXPECT_EQ(logged_violations(), 0u);
  EXPECT_TRUE(log_snapshot().empty());
}

// ---------------------------------------------------------------------------
// Netlist checker
// ---------------------------------------------------------------------------

/// in -> a(INV) -> b(INV) -> out; nets n0/n1/n2 recorded in order.
netlist::Netlist tiny_netlist() {
  netlist::Netlist nl(lib(), "tiny");
  const auto inv = *lib().find("INV_X1");
  const auto in = nl.add_port("in", liberty::PinDir::kInput);
  const auto out = nl.add_port("out", liberty::PinDir::kOutput);
  const auto a = nl.add_cell("a", inv, nl.root_module());
  const auto b = nl.add_cell("b", inv, nl.root_module());
  const auto n0 = nl.add_net("n0");
  nl.connect(n0, nl.port(in).pin);
  nl.connect(n0, nl.cell_pin(a, 0));
  const auto n1 = nl.add_net("n1");
  nl.connect(n1, nl.cell_output_pin(a));
  nl.connect(n1, nl.cell_pin(b, 0));
  const auto n2 = nl.add_net("n2");
  nl.connect(n2, nl.cell_output_pin(b));
  nl.connect(n2, nl.port(out).pin);
  return nl;
}

TEST(NetlistCheck, CleanGeneratedDesignPasses) {
  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = 200;
  const netlist::Netlist nl = gen::generate(lib(), spec);
  const CheckResult result = check_netlist(nl, CheckLevel::kFull);
  EXPECT_TRUE(result.ok()) << log_json().dump();
  EXPECT_GT(result.checked, 0u);
}

TEST(NetlistCheck, FlagsDanglingPin) {
  netlist::Netlist nl = tiny_netlist();
  nl.mutable_net(netlist::NetId(1)).pins.push_back(
      netlist::PinId(nl.pin_count() + 7));
  const CheckResult result = check_netlist(nl, CheckLevel::kFull);
  EXPECT_TRUE(result.exactly("dangling-pin"))
      << "codes: " << testing::PrintToString(codes(result));
}

TEST(NetlistCheck, FlagsDuplicatePin) {
  netlist::Netlist nl = tiny_netlist();
  nl.mutable_net(netlist::NetId(1)).pins.push_back(
      nl.cell_pin(netlist::CellId(1), 0));  // b's input, again
  const CheckResult result = check_netlist(nl, CheckLevel::kFull);
  EXPECT_TRUE(result.exactly("duplicate-pin"))
      << "codes: " << testing::PrintToString(codes(result));
}

TEST(NetlistCheck, FlagsFloatingInput) {
  netlist::Netlist nl(lib(), "floating");
  const auto inv = *lib().find("INV_X1");
  const auto in = nl.add_port("in", liberty::PinDir::kInput);
  const auto out = nl.add_port("out", liberty::PinDir::kOutput);
  const auto a = nl.add_cell("a", inv, nl.root_module());
  const auto n0 = nl.add_net("n0");
  nl.connect(n0, nl.port(in).pin);
  nl.connect(n0, nl.cell_pin(a, 0));
  const auto n1 = nl.add_net("n1");
  nl.connect(n1, nl.cell_output_pin(a));
  nl.connect(n1, nl.port(out).pin);
  // A second inverter whose input pin is never connected; its floating
  // *output* is allowed, the floating input is the violation.
  const auto b = nl.add_cell("b", inv, nl.root_module());
  (void)b;
  const CheckResult result = check_netlist(nl, CheckLevel::kCheap);
  EXPECT_TRUE(result.exactly("floating-input"))
      << "codes: " << testing::PrintToString(codes(result));
}

TEST(NetlistCheck, FlagsUnlistedDriver) {
  netlist::Netlist nl = tiny_netlist();
  netlist::Net& n1 = nl.mutable_net(netlist::NetId(1));
  n1.pins.erase(std::find(n1.pins.begin(), n1.pins.end(), n1.driver));
  const CheckResult result = check_netlist(nl, CheckLevel::kCheap);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_code(result, "driver-not-listed"))
      << "codes: " << testing::PrintToString(codes(result));
  // Dropping the driver also breaks the driver count and the pin's
  // back-reference; nothing unrelated may fire.
  EXPECT_TRUE(only_codes(result, {"driver-not-listed", "driver-count",
                                  "pin-net-mismatch"}))
      << "codes: " << testing::PrintToString(codes(result));
}

// ---------------------------------------------------------------------------
// Cluster checker
// ---------------------------------------------------------------------------

/// in -> a0 -> a1 -> b0 -> b1 -> out, clustered {a0,a1} / {b0,b1}.
struct TinyClustering {
  TinyClustering() : nl(lib(), "tinyc") {
    const auto inv = *lib().find("INV_X1");
    const auto in = nl.add_port("in", liberty::PinDir::kInput);
    const auto out = nl.add_port("out", liberty::PinDir::kOutput);
    netlist::CellId prev = netlist::kInvalidId;
    for (const char* name : {"a0", "a1", "b0", "b1"}) {
      const auto c = nl.add_cell(name, inv, nl.root_module());
      const auto n = nl.add_net(std::string("n_") + name);
      if (prev == netlist::kInvalidId) {
        nl.connect(n, nl.port(in).pin);
      } else {
        nl.connect(n, nl.cell_output_pin(prev));
      }
      nl.connect(n, nl.cell_pin(c, 0));
      prev = c;
    }
    const auto n_out = nl.add_net("n_out");
    nl.connect(n_out, nl.cell_output_pin(prev));
    nl.connect(n_out, nl.port(out).pin);
    clustered = cluster::build_clustered_netlist(nl, {0, 0, 1, 1}, 2);
  }
  netlist::Netlist nl;
  cluster::ClusteredNetlist clustered;
};

TEST(ClusterCheck, CleanClusteringPasses) {
  TinyClustering t;
  const CheckResult result = check_clustering(t.nl, t.clustered, CheckLevel::kFull);
  EXPECT_TRUE(result.ok()) << testing::PrintToString(codes(result));
  EXPECT_GT(result.checked, 0u);
}

TEST(ClusterCheck, FlagsDoubleClusteredCell) {
  TinyClustering t;
  // List cell 0 in cluster 1 as well, keeping area/shape self-consistent so
  // only the partition violation fires.
  t.clustered.clusters[cluster::ClusterId(1)].cells.push_back(netlist::CellId(0));
  t.clustered.clusters[cluster::ClusterId(1)].area_um2 +=
      t.nl.lib_cell_of(netlist::CellId(0)).area_um2();
  cluster::set_cluster_shape(t.clustered, cluster::ClusterId(1),
                             t.clustered.clusters[cluster::ClusterId(1)].shape);
  const CheckResult result = check_clustering(t.nl, t.clustered, CheckLevel::kFull);
  // Fires once for the membership/assignment mismatch and once for the
  // listing count; nothing else.
  EXPECT_EQ(result.total_violations, 2u);
  EXPECT_TRUE(only_codes(result, {"double-clustered"}))
      << "codes: " << testing::PrintToString(codes(result));
}

TEST(ClusterCheck, FlagsUnclusteredCell) {
  TinyClustering t;
  cluster::Cluster& c1 = t.clustered.clusters[cluster::ClusterId(1)];
  c1.cells.pop_back();  // drop cell 3 from its membership list
  c1.area_um2 -= t.nl.lib_cell_of(netlist::CellId(3)).area_um2();
  cluster::set_cluster_shape(t.clustered, cluster::ClusterId(1), c1.shape);
  const CheckResult result = check_clustering(t.nl, t.clustered, CheckLevel::kFull);
  EXPECT_TRUE(result.exactly("unclustered"))
      << "codes: " << testing::PrintToString(codes(result));
}

TEST(ClusterCheck, FlagsAssignmentSizeMismatch) {
  TinyClustering t;
  t.clustered.cluster_of_cell.pop_back();
  const CheckResult result = check_clustering(t.nl, t.clustered, CheckLevel::kFull);
  EXPECT_TRUE(result.exactly("assignment-size"))
      << "codes: " << testing::PrintToString(codes(result));
}

TEST(ClusterCheck, FlagsOverlayWeightDrift) {
  TinyClustering t;
  ASSERT_FALSE(t.clustered.nets.empty());
  t.clustered.nets[0].weight += 0.5;
  // The cheap level does not reconstruct the overlay, so it stays silent...
  EXPECT_TRUE(check_clustering(t.nl, t.clustered, CheckLevel::kCheap).ok());
  // ...and the full level pinpoints the drifted hyperedge.
  const CheckResult result = check_clustering(t.nl, t.clustered, CheckLevel::kFull);
  EXPECT_TRUE(result.exactly("overlay-weight"))
      << "codes: " << testing::PrintToString(codes(result));
}

// ---------------------------------------------------------------------------
// Placement checker
// ---------------------------------------------------------------------------

/// 10 x 5.6 um core (4 rows of 1.4) with two 1 x 1.4 movable cells.
place::PlaceModel tiny_model() {
  place::PlaceModel model;
  model.core = geom::Rect::make(0.0, 0.0, 10.0, 5.6);
  model.row_height_um = 1.4;
  model.objects.resize(2);
  for (place::PlaceObject& obj : model.objects) {
    obj.width_um = 1.0;
    obj.height_um = 1.4;
  }
  return model;
}

TEST(PlaceCheck, CleanLegalizedPlacementPasses) {
  const place::PlaceModel model = tiny_model();
  const place::Placement placement = {{1.0, 0.7}, {3.0, 2.1}};
  const CheckResult result =
      check_placement(model, placement, CheckLevel::kFull, {});
  EXPECT_TRUE(result.ok()) << testing::PrintToString(codes(result));
}

TEST(PlaceCheck, FlagsOverlappingCells) {
  const place::PlaceModel model = tiny_model();
  const place::Placement placement = {{1.0, 0.7}, {1.5, 0.7}};
  const CheckResult result =
      check_placement(model, placement, CheckLevel::kFull, {});
  EXPECT_TRUE(result.exactly("overlap"))
      << "codes: " << testing::PrintToString(codes(result));
  EXPECT_NE(result.violations.front().message.find("0.5"), std::string::npos)
      << result.violations.front().message;
}

TEST(PlaceCheck, FlagsCellOutsideCore) {
  const place::PlaceModel model = tiny_model();
  const place::Placement placement = {{-2.0, 0.7}, {3.0, 0.7}};
  const CheckResult result =
      check_placement(model, placement, CheckLevel::kFull, {});
  EXPECT_TRUE(result.exactly("outside-core"))
      << "codes: " << testing::PrintToString(codes(result));
}

TEST(PlaceCheck, FlagsRowMisalignment) {
  const place::PlaceModel model = tiny_model();
  const place::Placement placement = {{1.0, 1.0}, {3.0, 0.7}};
  const CheckResult result =
      check_placement(model, placement, CheckLevel::kFull, {});
  EXPECT_TRUE(result.exactly("row-misaligned"))
      << "codes: " << testing::PrintToString(codes(result));
  // A global (pre-legalization) placement is allowed off-row.
  EXPECT_TRUE(check_placement(model, placement, CheckLevel::kFull,
                              {.legalized = false})
                  .ok());
}

TEST(PlaceCheck, FlagsMovedFixedObject) {
  place::PlaceModel model = tiny_model();
  model.objects[0].fixed = true;
  model.objects[0].fixed_position = {2.0, 2.0};
  const place::Placement placement = {{3.0, 2.0}, {3.0, 0.7}};
  const CheckResult result =
      check_placement(model, placement, CheckLevel::kFull, {});
  EXPECT_TRUE(result.exactly("fixed-moved"))
      << "codes: " << testing::PrintToString(codes(result));
}

TEST(PlaceCheck, FlagsPlacementSizeMismatch) {
  const place::PlaceModel model = tiny_model();
  const place::Placement placement = {{1.0, 0.7}};
  const CheckResult result =
      check_placement(model, placement, CheckLevel::kCheap, {});
  EXPECT_TRUE(result.exactly("placement-size"))
      << "codes: " << testing::PrintToString(codes(result));
}

// ---------------------------------------------------------------------------
// Route checker
// ---------------------------------------------------------------------------

struct RoutedDesign {
  RoutedDesign() : nl(make()) {
    fp = place::Floorplan::create(nl.total_cell_area(), lib().row_height_um(),
                                  place::FloorplanOptions{});
    place::place_ports_on_boundary(nl, fp);
    const place::PlaceModel model = place::make_place_model(nl, fp);
    const auto gp = place::GlobalPlacer(model, place::GlobalPlacerOptions{}).run();
    positions = place::cell_positions(nl, gp.placement);
    routed = route::GlobalRouter(nl, positions, fp.core, options).run();
  }
  static netlist::Netlist make() {
    gen::DesignSpec spec = gen::design_spec("aes");
    spec.target_cells = 200;
    return gen::generate(lib(), spec);
  }
  netlist::Netlist nl;
  place::Floorplan fp;
  std::vector<geom::Point> positions;
  route::RouteOptions options;
  route::RouteResult routed;
};

TEST(RouteCheck, CleanRoutingPasses) {
  RoutedDesign d;
  const CheckResult result = check_routing(d.nl, d.positions, d.fp.core,
                                           d.routed, d.options, CheckLevel::kFull);
  EXPECT_TRUE(result.ok()) << testing::PrintToString(codes(result));
  EXPECT_GT(result.checked, 0u);
}

TEST(RouteCheck, FlagsNegativeWirelength) {
  RoutedDesign d;
  d.routed.wirelength_um = -1.0;
  const CheckResult result = check_routing(d.nl, d.positions, d.fp.core,
                                           d.routed, d.options, CheckLevel::kCheap);
  EXPECT_TRUE(result.exactly("wirelength"))
      << "codes: " << testing::PrintToString(codes(result));
}

TEST(RouteCheck, FlagsEdgeMapSizeMismatch) {
  RoutedDesign d;
  d.routed.edge_utilization.push_back(0.0);
  const CheckResult result = check_routing(d.nl, d.positions, d.fp.core,
                                           d.routed, d.options, CheckLevel::kCheap);
  EXPECT_TRUE(result.exactly("edge-map-size"))
      << "codes: " << testing::PrintToString(codes(result));
}

TEST(RouteCheck, FlagsNegativeEdgeUtilization) {
  RoutedDesign d;
  d.routed.edge_utilization[0] = -2.0;
  const CheckResult result = check_routing(d.nl, d.positions, d.fp.core,
                                           d.routed, d.options, CheckLevel::kCheap);
  EXPECT_TRUE(result.exactly("edge-utilization"))
      << "codes: " << testing::PrintToString(codes(result));
}

TEST(RouteCheck, FlagsOverflowMiscount) {
  RoutedDesign d;
  d.routed.overflow_edges += 1;
  const CheckResult result = check_routing(d.nl, d.positions, d.fp.core,
                                           d.routed, d.options, CheckLevel::kCheap);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_code(result, "overflow-count"))
      << "codes: " << testing::PrintToString(codes(result));
  // A phantom overflow edge may additionally contradict total_overflow.
  EXPECT_TRUE(only_codes(result, {"overflow-count", "overflow-total"}))
      << "codes: " << testing::PrintToString(codes(result));
}

TEST(RouteCheck, FlagsOutOfBoundsRoute) {
  RoutedDesign d;
  // Teleport one cell far outside the routing grid: every net touching it
  // now has a pin (and therefore a topology vertex) out of bounds.
  d.positions[5] = {d.fp.core.ux + 50.0, d.fp.core.uy + 50.0};
  const CheckResult result = check_routing(d.nl, d.positions, d.fp.core,
                                           d.routed, d.options, CheckLevel::kFull);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_code(result, "pin-outside-grid"))
      << "codes: " << testing::PrintToString(codes(result));
  EXPECT_TRUE(has_code(result, "tree-outside-grid"))
      << "codes: " << testing::PrintToString(codes(result));
  EXPECT_TRUE(only_codes(result, {"pin-outside-grid", "tree-outside-grid"}))
      << "codes: " << testing::PrintToString(codes(result));
}

// ---------------------------------------------------------------------------
// End-to-end: the full flow under --check full stays violation-free
// ---------------------------------------------------------------------------

TEST(CheckFlow, FullClusteredFlowIsViolationFree) {
  reset_log();
  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = 300;
  netlist::Netlist nl = gen::generate(lib(), spec);
  flow::FlowOptions options;
  options.check_level = CheckLevel::kFull;
  const flow::FlowResult result = flow::run_clustered_flow(nl, options);
  flow::evaluate_ppa(nl, result.place.positions, options);
  EXPECT_EQ(logged_violations(), 0u) << log_json().dump(2);
  // Every phase validator actually ran: netlist, cluster, place, route.
  const std::vector<CheckResult> log = log_snapshot();
  for (const char* checker : {"netlist", "cluster", "place", "route"}) {
    EXPECT_TRUE(std::any_of(log.begin(), log.end(),
                            [&](const CheckResult& r) {
                              return r.checker == checker;
                            }))
        << "no " << checker << " check in the log";
  }
  reset_log();
}

}  // namespace
}  // namespace ppacd::check
