/// \file fault_test.cpp
/// \brief Fault-injection campaigns: every registered site x {error, timeout,
/// poison} under a seeded plan, asserting the flow either completes with the
/// degradations recorded (and every reported metric finite) or returns a
/// structured FlowError — never crashes, asserts, or leaks NaN into results.
///
/// Registered with ctest label "fault" so CI can run the campaign under the
/// asan-ubsan preset (`ctest -L fault`).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "flow/flow.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "netlist/io.hpp"
#include "telemetry/telemetry.hpp"

namespace ppacd {
namespace {

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

/// Stub GNN predictor: finite, shape-dependent costs so the ml.predict site
/// is exercised (it only fires when a predictor is configured).
vpr::ShapeCostPredictor stub_predictor() {
  return [](const netlist::Netlist&,
            const std::vector<cluster::ClusterShape>& candidates) {
    std::vector<double> costs;
    costs.reserve(candidates.size());
    for (const cluster::ClusterShape& shape : candidates) {
      costs.push_back(100.0 + shape.aspect_ratio + shape.utilization);
    }
    return costs;
  };
}

struct CampaignOutcome {
  bool ok = false;
  fault::FlowError error;                       ///< set when !ok
  flow::FlowResult result;                      ///< set when ok
  flow::PpaOutcome ppa;                         ///< set when ok
  std::vector<fault::Degradation> degradations;
};

/// Runs the full clustered flow + PPA evaluation on a small generated design
/// under the given plan spec. Small configs keep the campaign fast; V-P&R and
/// the ML predictor are enabled so every site is reachable.
CampaignOutcome run_campaign(const std::string& spec,
                             const fault::DegradePolicy& policy = {},
                             bool use_ml = true, bool sharded = false) {
  auto plan = fault::parse_plan(spec);
  EXPECT_TRUE(plan.has_value()) << spec;
  fault::set_plan(plan.value());

  gen::DesignSpec design = gen::design_spec("aes");
  design.target_cells = 400;
  netlist::Netlist nl = gen::generate(lib(), design);

  flow::FlowOptions options;
  options.clock_period_ps = 550.0;
  options.fc.target_cluster_count = 8;
  options.vpr.min_cluster_instances = 20;
  options.shape_mode =
      use_ml ? flow::ShapeMode::kVprMl : flow::ShapeMode::kVpr;
  const vpr::ShapeCostPredictor predictor = stub_predictor();
  if (use_ml) options.ml_predictor = &predictor;
  options.degrade = policy;
  options.sharding.shards = 4;

  CampaignOutcome outcome;
  auto result = sharded ? flow::try_run_sharded_flow(nl, options)
                        : flow::try_run_clustered_flow(nl, options);
  if (!result.has_value()) {
    outcome.error = result.error();
  } else {
    outcome.result = std::move(result).value();
    auto ppa =
        flow::try_evaluate_ppa(nl, outcome.result.place.positions, options);
    if (!ppa.has_value()) {
      outcome.error = ppa.error();
    } else {
      outcome.ok = true;
      outcome.ppa = std::move(ppa).value();
    }
  }
  outcome.degradations = fault::degradation_log();
  fault::clear_plan();
  return outcome;
}

void expect_finite_metrics(const CampaignOutcome& outcome,
                           const std::string& campaign) {
  EXPECT_TRUE(std::isfinite(outcome.result.place.hpwl_um)) << campaign;
  EXPECT_TRUE(std::isfinite(outcome.ppa.rwl_um)) << campaign;
  EXPECT_TRUE(std::isfinite(outcome.ppa.wns_ps)) << campaign;
  EXPECT_TRUE(std::isfinite(outcome.ppa.tns_ns)) << campaign;
  EXPECT_TRUE(std::isfinite(outcome.ppa.power_w)) << campaign;
  EXPECT_TRUE(std::isfinite(outcome.ppa.clock_skew_ps)) << campaign;
  for (const geom::Point& p : outcome.result.place.positions) {
    ASSERT_TRUE(std::isfinite(p.x) && std::isfinite(p.y)) << campaign;
  }
}

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::clear_plan();
    fault::reset_log();
    telemetry::metrics().reset();
  }
  void TearDown() override {
    fault::clear_plan();
    fault::reset_log();
    telemetry::metrics().reset();
  }
};

// ---------------------------------------------------------------------------
// The campaign: every registered site x {error, timeout, poison}
// ---------------------------------------------------------------------------

TEST_F(FaultTest, CampaignEverySiteEveryKindDegradesGracefully) {
  const char* kinds[] = {"error", "timeout", "poison"};
  for (const std::string& site : fault::registered_sites()) {
    if (site == "io.read") continue;  // no deserialization in this flow;
                                      // covered by IoReadFaults below
    for (const char* kind : kinds) {
      const std::string spec = "seed=11;" + site + "=" + kind;
      fault::reset_log();
      telemetry::metrics().reset();
      // The ML predictor bypasses the exact sweep, so the vpr.shape_eval
      // site is only reachable in exact V-P&R mode; place.shard only fires
      // inside the sharded flow.
      const bool use_ml = site != "vpr.shape_eval";
      const bool sharded = site == "place.shard";
      const CampaignOutcome outcome =
          run_campaign(spec, fault::DegradePolicy{}, use_ml, sharded);
      // Default policies absorb every unconditional single-site fault: the
      // flow must complete, with the fallback on record and finite metrics.
      ASSERT_TRUE(outcome.ok)
          << spec << " -> " << outcome.error.code << ": "
          << outcome.error.message;
      EXPECT_FALSE(outcome.degradations.empty()) << spec;
      expect_finite_metrics(outcome, spec);
#if !defined(PPACD_TELEMETRY_DISABLED)
      // Telemetry attribution: the injection counter for this kind moved.
      EXPECT_GT(telemetry::metrics()
                    .counter(std::string("fault.injected.") + kind)
                    .value(),
                0)
          << spec;
#endif
    }
  }
}

TEST_F(FaultTest, CampaignTransientFaultsAcrossSites) {
  // Probabilistic (transient) faults at several sites at once: retries may
  // clear them, everything else degrades. Still must never crash or go
  // non-finite.
  const CampaignOutcome outcome = run_campaign(
      "seed=13;vpr.shape_eval=error%0.5;ml.predict=error%0.5;"
      "route.maze=error%0.3;sta.arrival=poison");
  ASSERT_TRUE(outcome.ok) << outcome.error.code;
  expect_finite_metrics(outcome, "transient campaign");
  EXPECT_FALSE(outcome.degradations.empty());
}

TEST_F(FaultTest, AllocFaultYieldsStructuredErrorOrDegradation) {
  // kAlloc simulates std::bad_alloc at the site. Depending on where the
  // throw lands it is either absorbed by a policy or surfaces as a
  // structured "alloc-failure" — both acceptable; crashing is not.
  for (const std::string& site : fault::registered_sites()) {
    if (site == "io.read") continue;
    fault::reset_log();
    const std::string spec = "seed=17;" + site + "=alloc@1";
    const CampaignOutcome outcome = run_campaign(
        spec, fault::DegradePolicy{}, true, site == "place.shard");
    if (outcome.ok) {
      expect_finite_metrics(outcome, spec);
    } else {
      EXPECT_FALSE(outcome.error.code.empty()) << spec;
    }
  }
}

// ---------------------------------------------------------------------------
// io.read: structured errors from deserialization
// ---------------------------------------------------------------------------

TEST_F(FaultTest, IoReadFaultsReturnStructuredErrors) {
  gen::DesignSpec design = gen::design_spec("aes");
  design.target_cells = 200;
  const netlist::Netlist nl = gen::generate(lib(), design);
  std::ostringstream text;
  netlist::write_verilog(nl, text);

  const struct {
    const char* kind;
    const char* code;
  } cases[] = {{"error", "io-read-failed"},
               {"timeout", "io-read-timeout"},
               {"alloc", "alloc-failure"}};
  for (const auto& c : cases) {
    auto plan = fault::parse_plan(std::string("io.read=") + c.kind);
    ASSERT_TRUE(plan.has_value());
    fault::set_plan(plan.value());
    std::istringstream in(text.str());
    auto loaded = netlist::try_read_verilog(in, lib());
    fault::clear_plan();
    ASSERT_FALSE(loaded.has_value()) << c.kind;
    EXPECT_EQ(loaded.error().code, c.code);
    EXPECT_EQ(loaded.error().site, "io.read");
  }

  // Clean plan: the same stream parses fine.
  std::istringstream in(text.str());
  auto loaded = netlist::try_read_verilog(in, lib());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded.value().cell_count(), nl.cell_count());
}

TEST_F(FaultTest, IoLoadMissingFileIsStructuredNotFatal) {
  auto loaded =
      netlist::try_load_verilog("/nonexistent/path/design.v", lib());
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, "io-open-failed");
}

// ---------------------------------------------------------------------------
// Policy gates: disabling a fallback turns the fault into a FlowError
// ---------------------------------------------------------------------------

TEST_F(FaultTest, DisabledStaPolicyPropagatesStructuredError) {
  fault::DegradePolicy policy;
  policy.sta_fallback_hpwl = false;
  const CampaignOutcome outcome =
      run_campaign("seed=5;sta.arrival=error", policy);
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error.code, "sta-arrival-failed");
  EXPECT_EQ(outcome.error.site, "sta.arrival");
}

TEST_F(FaultTest, DisabledPlacePolicyPropagatesStructuredError) {
  fault::DegradePolicy policy;
  policy.place_early_stop = false;
  const CampaignOutcome outcome =
      run_campaign("seed=5;place.solve=error", policy);
  ASSERT_FALSE(outcome.ok);
  EXPECT_FALSE(outcome.error.code.empty());
  EXPECT_EQ(outcome.error.site, "place.solve");
}

TEST_F(FaultTest, ShardFaultFallsBackToSeedAndRecordsDegradation) {
  // One shard solve fails; the default policy keeps that shard at its VPR
  // seed placement and the sharded flow still completes with finite metrics.
  const CampaignOutcome outcome = run_campaign(
      "seed=5;place.shard=error@1", fault::DegradePolicy{}, true, true);
  ASSERT_TRUE(outcome.ok) << outcome.error.code << ": "
                          << outcome.error.message;
  bool saw_seed_fallback = false;
  for (const fault::Degradation& d : outcome.degradations) {
    if (d.site == "place.shard") {
      EXPECT_EQ(d.fallback, "vpr-seed");
      saw_seed_fallback = true;
    }
  }
  EXPECT_TRUE(saw_seed_fallback);
  expect_finite_metrics(outcome, "shard fallback");
}

TEST_F(FaultTest, DisabledShardPolicyPropagatesStructuredError) {
  fault::DegradePolicy policy;
  policy.shard_fallback_seed = false;
  const CampaignOutcome outcome =
      run_campaign("seed=5;place.shard=error", policy, true, true);
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error.code, "place-shard-failed");
  EXPECT_EQ(outcome.error.site, "place.shard");
}

TEST_F(FaultTest, MlFallbackRecordsVprExactDegradation) {
  const CampaignOutcome outcome = run_campaign("seed=5;ml.predict=error");
  ASSERT_TRUE(outcome.ok) << outcome.error.code;
  bool saw_ml_fallback = false;
  for (const fault::Degradation& d : outcome.degradations) {
    if (d.site == "ml.predict") {
      EXPECT_EQ(d.fallback, "vpr-exact");
      saw_ml_fallback = true;
    }
  }
  EXPECT_TRUE(saw_ml_fallback);
}

// ---------------------------------------------------------------------------
// Plan parsing and the clean-path guarantee
// ---------------------------------------------------------------------------

TEST_F(FaultTest, ParseRejectsMalformedSpecs) {
  const char* bad[] = {
      "bogus.site=error",        // unknown site
      "sta.arrival=explode",     // unknown kind
      "sta.arrival",             // missing '=KIND'
      "seed=notanumber",         // bad seed
      "sta.arrival=error@zero",  // bad selector ordinal
      "sta.arrival=error%2.0",   // probability out of (0,1]
      "sta.arrival=error%0",     // probability out of (0,1]
  };
  for (const char* spec : bad) {
    auto plan = fault::parse_plan(spec);
    EXPECT_FALSE(plan.has_value()) << spec;
    if (!plan.has_value()) {
      EXPECT_FALSE(plan.error().code.empty()) << spec;
      EXPECT_FALSE(plan.error().message.empty()) << spec;
    }
  }
  // Empty / whitespace specs are a valid empty plan.
  auto empty = fault::parse_plan("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty.value().empty());
}

TEST_F(FaultTest, NoPlanMeansNoTriggers) {
  fault::clear_plan();
  EXPECT_FALSE(fault::plan_active());
  for (const std::string& site : fault::registered_sites()) {
    EXPECT_FALSE(fault::trigger(site, 0).has_value()) << site;
    EXPECT_FALSE(fault::trigger(site, 42).has_value()) << site;
  }
}

TEST_F(FaultTest, TriggerIsDeterministicPerKey) {
  auto plan = fault::parse_plan("seed=21;route.maze=error%0.5");
  ASSERT_TRUE(plan.has_value());
  fault::set_plan(plan.value());
  // The decision for a key is a pure function of (seed, site, key, attempt):
  // re-querying in any order reproduces it exactly.
  std::vector<bool> first;
  for (std::uint64_t key = 0; key < 64; ++key) {
    first.push_back(fault::trigger("route.maze", key).has_value());
  }
  for (std::uint64_t key = 64; key-- > 0;) {
    EXPECT_EQ(fault::trigger("route.maze", key).has_value(), first[key])
        << key;
  }
  // ~0.5 probability: both outcomes occur across 64 keys.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
  fault::clear_plan();
}

}  // namespace
}  // namespace ppacd
