#include <gtest/gtest.h>

#include <cmath>

#include "flow/flow.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"

namespace ppacd::flow {
namespace {

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

netlist::Netlist small_design(const char* name = "aes", int cells = 600) {
  gen::DesignSpec spec = gen::design_spec(name);
  spec.target_cells = cells;
  return gen::generate(lib(), spec);
}

FlowOptions fast_options() {
  FlowOptions options;
  options.clock_period_ps = 550.0;
  // Skip V-P&R by default (tests that need it lower the threshold).
  options.vpr.min_cluster_instances = 1 << 20;
  options.fc.target_cluster_count = 10;
  return options;
}

TEST(Flow, DefaultFlowPlacesDesign) {
  netlist::Netlist nl = small_design();
  const FlowResult result = run_default_flow(nl, fast_options());
  EXPECT_EQ(result.place.positions.size(), nl.cell_count());
  EXPECT_GT(result.place.hpwl_um, 0.0);
  EXPECT_GT(result.place.placement_seconds, 0.0);
  EXPECT_EQ(result.place.cluster_count, 0);
}

TEST(Flow, ClusteredFlowOpenRoadLike) {
  netlist::Netlist nl = small_design();
  FlowOptions options = fast_options();
  const FlowResult result = run_clustered_flow(nl, options);
  EXPECT_EQ(result.place.positions.size(), nl.cell_count());
  EXPECT_GT(result.place.cluster_count, 1);
  EXPECT_GT(result.place.clustering_seconds, 0.0);
  EXPECT_GT(result.place.hpwl_um, 0.0);
}

TEST(Flow, ClusteredHpwlComparableToDefault) {
  netlist::Netlist nl_a = small_design();
  netlist::Netlist nl_b = small_design();
  const FlowResult base = run_default_flow(nl_a, fast_options());
  const FlowResult ours = run_clustered_flow(nl_b, fast_options());
  // The paper reports near-identical HPWL (Table 2); allow a wide band here
  // since this is a tiny test design.
  EXPECT_LT(ours.place.hpwl_um, 1.5 * base.place.hpwl_um);
  EXPECT_GT(ours.place.hpwl_um, 0.5 * base.place.hpwl_um);
}

TEST(Flow, InnovusLikeUsesRegions) {
  netlist::Netlist nl = small_design();
  FlowOptions options = fast_options();
  options.tool = Tool::kInnovusLike;
  options.vpr.min_cluster_instances = 30;  // qualify clusters for fences
  options.shape_mode = ShapeMode::kUniform;  // avoid V-P&R cost in this test
  const FlowResult result = run_clustered_flow(nl, options);
  EXPECT_EQ(result.place.positions.size(), nl.cell_count());
  EXPECT_GT(result.place.hpwl_um, 0.0);
}

TEST(Flow, VprShapingRuns) {
  netlist::Netlist nl = small_design();
  FlowOptions options = fast_options();
  options.vpr.min_cluster_instances = 40;
  options.shape_mode = ShapeMode::kVpr;
  const FlowResult result = run_clustered_flow(nl, options);
  EXPECT_GT(result.place.shaped_clusters, 0);
  EXPECT_GT(result.place.shaping_seconds, 0.0);
}

TEST(Flow, RandomShapesDeterministicPerSeed) {
  netlist::Netlist nl_a = small_design();
  netlist::Netlist nl_b = small_design();
  FlowOptions options = fast_options();
  options.vpr.min_cluster_instances = 30;
  options.shape_mode = ShapeMode::kRandom;
  const FlowResult a = run_clustered_flow(nl_a, options);
  const FlowResult b = run_clustered_flow(nl_b, options);
  EXPECT_DOUBLE_EQ(a.place.hpwl_um, b.place.hpwl_um);
}

TEST(Flow, BaselineClusterMethodsRun) {
  for (const ClusterMethod method :
       {ClusterMethod::kMfc, ClusterMethod::kLeiden, ClusterMethod::kLouvainBlob}) {
    netlist::Netlist nl = small_design();
    FlowOptions options = fast_options();
    options.cluster_method = method;
    const FlowResult result = run_clustered_flow(nl, options);
    EXPECT_GT(result.place.cluster_count, 1)
        << "method " << static_cast<int>(method);
    EXPECT_GT(result.place.hpwl_um, 0.0);
  }
}

TEST(Flow, EvaluatePpaProducesSaneMetrics) {
  netlist::Netlist nl = small_design();
  FlowOptions options = fast_options();
  const FlowResult placed = run_default_flow(nl, options);
  const PpaOutcome ppa = evaluate_ppa(nl, placed.place.positions, options);
  EXPECT_GT(ppa.rwl_um, placed.place.hpwl_um * 0.3);
  EXPECT_LE(ppa.wns_ps, 0.0);                  // aes at 0.55 ns: tight
  EXPECT_LE(ppa.tns_ns * 1000.0, ppa.wns_ps);  // TNS aggregates WNS
  EXPECT_GT(ppa.power_w, 0.0);
  EXPECT_LT(ppa.power_w, 1.0);  // hundreds of uW to mW scale for 600 cells
  EXPECT_GE(ppa.clock_skew_ps, 0.0);
}

TEST(Flow, BetterPlacementBetterPpa) {
  // PPA evaluation must distinguish a real placement from a random one.
  netlist::Netlist nl = small_design();
  FlowOptions options = fast_options();
  const FlowResult placed = run_default_flow(nl, options);

  util::Rng rng(3);
  geom::BBox box;
  for (const auto& p : placed.place.positions) box.expand(p);
  std::vector<geom::Point> random(nl.cell_count());
  for (auto& p : random) {
    p = {rng.uniform(box.rect().lx, box.rect().ux),
         rng.uniform(box.rect().ly, box.rect().uy)};
  }
  const PpaOutcome good = evaluate_ppa(nl, placed.place.positions, options);
  const PpaOutcome bad = evaluate_ppa(nl, random, options);
  EXPECT_LT(good.rwl_um, bad.rwl_um);
  EXPECT_GE(good.tns_ns, bad.tns_ns);  // less negative is better
}

TEST(Flow, TimingOptimizationImprovesTns) {
  netlist::Netlist nl_base = small_design("jpeg", 800);
  netlist::Netlist nl_opt = small_design("jpeg", 800);
  FlowOptions options = fast_options();
  options.clock_period_ps = 800.0;
  const FlowResult base = run_default_flow(nl_base, options);
  const PpaOutcome base_ppa = evaluate_ppa(nl_base, base.place.positions, options);

  FlowOptions opt_options = options;
  opt_options.timing_optimization = true;
  const FlowResult opt = run_default_flow(nl_opt, opt_options);
  const PpaOutcome opt_ppa = evaluate_ppa(nl_opt, opt.place.positions, opt_options);

  // The repaired netlist grew (buffers) and stays valid.
  EXPECT_GE(nl_opt.cell_count(), nl_base.cell_count());
  EXPECT_TRUE(nl_opt.validate().empty());
  EXPECT_EQ(opt.place.positions.size(), nl_opt.cell_count());
  // Timing must not degrade materially (usually improves).
  EXPECT_GE(opt_ppa.tns_ns, base_ppa.tns_ns * 1.15);
}

TEST(Flow, SeededFlowDeterministic) {
  netlist::Netlist nl_a = small_design();
  netlist::Netlist nl_b = small_design();
  const FlowResult a = run_clustered_flow(nl_a, fast_options());
  const FlowResult b = run_clustered_flow(nl_b, fast_options());
  EXPECT_DOUBLE_EQ(a.place.hpwl_um, b.place.hpwl_um);
}

}  // namespace
}  // namespace ppacd::flow
