#include <gtest/gtest.h>

#include <map>

#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "place/detailed.hpp"
#include "place/floorplan.hpp"
#include "place/global_placer.hpp"
#include "place/legalizer.hpp"
#include "place/model.hpp"

namespace ppacd::place {
namespace {

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

struct LegalDesign {
  explicit LegalDesign(int cells = 400) {
    gen::DesignSpec spec = gen::design_spec("aes");
    spec.target_cells = cells;
    nl_storage = gen::generate(lib(), spec);
    FloorplanOptions fpo;
    fpo.utilization = 0.6;
    fp = Floorplan::create(nl_storage->total_cell_area(), lib().row_height_um(), fpo);
    place_ports_on_boundary(*nl_storage, fp);
    model = make_place_model(*nl_storage, fp);
    const PlaceResult gp = GlobalPlacer(model, GlobalPlacerOptions{}).run();
    legal = legalize(model, gp.placement);
  }
  std::optional<netlist::Netlist> nl_storage;
  Floorplan fp;
  PlaceModel model;
  LegalizeResult legal;
};

void expect_no_row_overlaps(const PlaceModel& model, const Placement& placement) {
  std::map<long, std::vector<std::size_t>> rows;
  for (std::size_t i = 0; i < model.objects.size(); ++i) {
    if (model.objects[i].fixed) continue;
    rows[std::lround(placement[i].y * 1e6)].push_back(i);
  }
  for (auto& [y, cells] : rows) {
    std::sort(cells.begin(), cells.end(), [&](std::size_t a, std::size_t b) {
      return placement[a].x < placement[b].x;
    });
    for (std::size_t k = 1; k < cells.size(); ++k) {
      const double prev_end = placement[cells[k - 1]].x +
                              model.objects[cells[k - 1]].width_um * 0.5;
      const double next_start =
          placement[cells[k]].x - model.objects[cells[k]].width_um * 0.5;
      ASSERT_LE(prev_end, next_start + 1e-6);
    }
  }
}

TEST(DetailedPlace, NeverWorsensHpwl) {
  LegalDesign d;
  const DetailedResult result =
      detailed_place(d.model, d.legal.placement, DetailedOptions{});
  EXPECT_LE(result.hpwl_after_um, result.hpwl_before_um + 1e-9);
}

TEST(DetailedPlace, ActuallyImproves) {
  LegalDesign d;
  const DetailedResult result =
      detailed_place(d.model, d.legal.placement, DetailedOptions{});
  // A greedy legalization always leaves reorderable windows.
  EXPECT_GT(result.moves, 0);
  EXPECT_LT(result.hpwl_after_um, result.hpwl_before_um);
}

TEST(DetailedPlace, PreservesLegality) {
  LegalDesign d;
  const DetailedResult result =
      detailed_place(d.model, d.legal.placement, DetailedOptions{});
  expect_no_row_overlaps(d.model, result.placement);
  // Rows unchanged: y coordinates must be identical.
  for (std::size_t i = 0; i < d.model.objects.size(); ++i) {
    if (d.model.objects[i].fixed) continue;
    EXPECT_DOUBLE_EQ(result.placement[i].y, d.legal.placement[i].y);
  }
}

TEST(DetailedPlace, FixedObjectsUntouched) {
  LegalDesign d;
  const DetailedResult result =
      detailed_place(d.model, d.legal.placement, DetailedOptions{});
  for (std::size_t i = 0; i < d.model.objects.size(); ++i) {
    if (!d.model.objects[i].fixed) continue;
    EXPECT_DOUBLE_EQ(result.placement[i].x, d.legal.placement[i].x);
    EXPECT_DOUBLE_EQ(result.placement[i].y, d.legal.placement[i].y);
  }
}

TEST(DetailedPlace, LargerWindowAtLeastAsGood) {
  LegalDesign d;
  DetailedOptions w2;
  w2.window = 2;
  w2.passes = 1;
  DetailedOptions w4;
  w4.window = 4;
  w4.passes = 1;
  const DetailedResult r2 = detailed_place(d.model, d.legal.placement, w2);
  const DetailedResult r4 = detailed_place(d.model, d.legal.placement, w4);
  // Window-4 permutations strictly contain window-2 swaps per window, so a
  // single pass should do at least as well (allow tiny slack for greedy
  // ordering artifacts).
  EXPECT_LE(r4.hpwl_after_um, r2.hpwl_after_um * 1.02);
}

TEST(DetailedPlace, IdempotentOnConvergedInput) {
  LegalDesign d;
  DetailedOptions options;
  options.passes = 4;
  const DetailedResult first =
      detailed_place(d.model, d.legal.placement, options);
  const DetailedResult second =
      detailed_place(d.model, first.placement, options);
  EXPECT_NEAR(second.hpwl_after_um, first.hpwl_after_um,
              1e-6 * first.hpwl_after_um);
}

}  // namespace
}  // namespace ppacd::place
