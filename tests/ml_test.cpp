#include <gtest/gtest.h>

#include <cmath>

#include "features/features.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "ml/dataset.hpp"
#include "ml/gnn.hpp"
#include "ml/layers.hpp"
#include "ml/tensor.hpp"
#include "ml/trainer.hpp"

namespace ppacd::ml {
namespace {

TEST(Tensor, MatmulHandChecked) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]].
  for (int i = 0; i < 6; ++i) a.data[static_cast<std::size_t>(i)] = i + 1;
  for (int i = 0; i < 6; ++i) b.data[static_cast<std::size_t>(i)] = i + 7;
  Matrix out;
  matmul(a, b, out);
  EXPECT_DOUBLE_EQ(out.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(out.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(out.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(out.at(1, 1), 154.0);
}

TEST(Tensor, TransposedVariantsAgree) {
  util::Rng rng(1);
  Matrix a(4, 3);
  Matrix b(4, 5);
  for (double& v : a.data) v = rng.normal();
  for (double& v : b.data) v = rng.normal();
  // at_b: (a^T b) == matmul(transpose(a), b).
  Matrix at(3, 4);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 3; ++c) at.at(c, r) = a.at(r, c);
  }
  Matrix expected;
  matmul(at, b, expected);
  Matrix got;
  matmul_at_b(a, b, got);
  for (std::size_t i = 0; i < expected.data.size(); ++i) {
    EXPECT_NEAR(got.data[i], expected.data[i], 1e-12);
  }
  // a_bt: a (5x3) times b(4x3)^T.
  Matrix c(5, 3);
  for (double& v : c.data) v = rng.normal();
  Matrix bt(3, 4);
  for (int r = 0; r < 4; ++r) {
    for (int k = 0; k < 3; ++k) bt.at(k, r) = a.at(r, k);
  }
  Matrix expected2;
  matmul(c, bt, expected2);
  Matrix got2;
  matmul_a_bt(c, a, got2);
  for (std::size_t i = 0; i < expected2.data.size(); ++i) {
    EXPECT_NEAR(got2.data[i], expected2.data[i], 1e-12);
  }
}

TEST(Tensor, SpmmRowCombination) {
  SparseRows adj(2);
  adj[0] = {{0, 0.5}, {1, 0.5}};
  adj[1] = {{1, 1.0}};
  Matrix x(2, 2);
  x.at(0, 0) = 2.0;
  x.at(0, 1) = 4.0;
  x.at(1, 0) = 6.0;
  x.at(1, 1) = 8.0;
  Matrix out;
  spmm(adj, x, out);
  EXPECT_DOUBLE_EQ(out.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(out.at(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(out.at(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(out.at(1, 1), 8.0);
}

TEST(Layers, LinearGradientNumericallyCorrect) {
  util::Rng rng(3);
  Linear layer(3, 2, rng);
  Matrix x(4, 3);
  for (double& v : x.data) v = rng.normal();

  // Loss = sum(Y); dY = ones.
  const Matrix y = layer.forward(x);
  Matrix dy(y.rows, y.cols);
  std::fill(dy.data.begin(), dy.data.end(), 1.0);
  Linear layer_copy = layer;
  const Matrix dx = layer_copy.backward(x, dy);

  // Numerical check for dX[0][0].
  const double eps = 1e-6;
  Matrix x_pert = x;
  x_pert.at(0, 0) += eps;
  const Matrix y2 = layer.forward(x_pert);
  double f0 = 0.0, f1 = 0.0;
  for (const double v : y.data) f0 += v;
  for (const double v : y2.data) f1 += v;
  EXPECT_NEAR(dx.at(0, 0), (f1 - f0) / eps, 1e-4);

  // Numerical check for dW via params(): perturb first weight.
  auto params = layer.params();
  Param* w = params[0];
  const double grad_analytic = layer_copy.params()[0]->grad[0];
  const double original = w->value[0];
  w->value[0] = original + eps;
  const Matrix y3 = layer.forward(x);
  double f2 = 0.0;
  for (const double v : y3.data) f2 += v;
  EXPECT_NEAR(grad_analytic, (f2 - f0) / eps, 1e-4);
}

TEST(Layers, BatchNormNormalizesColumns) {
  BatchNorm bn(3);
  util::Rng rng(5);
  Matrix x(64, 3);
  for (int r = 0; r < 64; ++r) {
    x.at(r, 0) = rng.normal(5.0, 2.0);
    x.at(r, 1) = rng.normal(-3.0, 0.5);
    x.at(r, 2) = rng.normal(0.0, 10.0);
  }
  BatchNorm::Cache cache;
  const Matrix y = bn.forward(x, true, cache);
  for (int c = 0; c < 3; ++c) {
    double mean = 0.0;
    for (int r = 0; r < 64; ++r) mean += y.at(r, c);
    mean /= 64;
    double var = 0.0;
    for (int r = 0; r < 64; ++r) var += (y.at(r, c) - mean) * (y.at(r, c) - mean);
    var /= 64;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(Layers, AdamMinimizesQuadratic) {
  // Minimize (w - 3)^2 with Adam.
  Param w;
  w.init(1, 0.0);
  Adam adam({&w}, 0.1);
  for (int i = 0; i < 300; ++i) {
    w.grad[0] = 2.0 * (w.value[0] - 3.0);
    adam.step();
  }
  EXPECT_NEAR(w.value[0], 3.0, 1e-2);
}

/// Full-model gradient check: analytic dParam vs finite differences on a
/// tiny graph. Verifies conv blocks, skip connections, BN, pooling and the
/// head end to end.
TEST(Gnn, GradientCheckEndToEnd) {
  GnnConfig config;
  config.input_dim = 5;
  config.hidden_dim = 6;
  config.conv_out_dim = 4;
  config.head_hidden_dim = 6;
  config.branches = 2;

  TotalCostModel model(config, 11);
  SparseRows adj(3);
  adj[0] = {{0, 0.5}, {1, 0.3}};
  adj[1] = {{1, 0.6}, {0, 0.3}, {2, 0.1}};
  adj[2] = {{2, 0.9}, {1, 0.1}};
  util::Rng rng(7);
  Matrix x(3, 5);
  for (double& v : x.data) v = rng.normal();

  // Two-sample batch (head BN needs > 1 row); loss = sum of outputs.
  Matrix x2 = x;
  for (double& v : x2.data) v *= 0.7;
  const std::vector<const SparseRows*> adjacencies = {&adj, &adj};
  const std::vector<const Matrix*> feature_ptrs = {&x, &x2};

  auto loss_fn = [&]() {
    // Eval-mode stats so the function is smooth in the parameters.
    TotalCostModel::EmbedCache ec;
    const Matrix embeddings = model.embed_batch(adjacencies, feature_ptrs, false, ec);
    TotalCostModel::HeadCache hc;
    const Matrix out = model.head_forward(embeddings, false, hc);
    return out.at(0, 0) + out.at(1, 0);
  };

  // Analytic pass.
  TotalCostModel::EmbedCache ec;
  const Matrix embeddings = model.embed_batch(adjacencies, feature_ptrs, false, ec);
  TotalCostModel::HeadCache hc;
  model.head_forward(embeddings, false, hc);
  Matrix grad_out(2, 1);
  grad_out.at(0, 0) = 1.0;
  grad_out.at(1, 0) = 1.0;
  const Matrix grad_emb = model.head_backward(hc, grad_out);
  model.embed_backward(ec, grad_emb);

  // Check a spread of parameters numerically.
  auto params = model.params();
  const double eps = 1e-6;
  int checked = 0;
  for (std::size_t pi = 0; pi < params.size(); pi += 3) {
    Param* p = params[pi];
    if (p->value.empty()) continue;
    const std::size_t k = p->value.size() / 2;
    const double analytic = p->grad[k];
    const double original = p->value[k];
    p->value[k] = original + eps;
    const double f_plus = loss_fn();
    p->value[k] = original - eps;
    const double f_minus = loss_fn();
    p->value[k] = original;
    const double numeric = (f_plus - f_minus) / (2.0 * eps);
    EXPECT_NEAR(analytic, numeric, 1e-4 + 1e-3 * std::fabs(numeric))
        << "param " << pi << " index " << k;
    ++checked;
  }
  EXPECT_GE(checked, 5);
}

TEST(Gnn, PredictIsDeterministic) {
  TotalCostModel model(GnnConfig{}, 3);
  SparseRows adj(2);
  adj[0] = {{0, 1.0}};
  adj[1] = {{1, 1.0}};
  util::Rng rng(2);
  Matrix x(2, 35);
  for (double& v : x.data) v = rng.normal();
  EXPECT_DOUBLE_EQ(model.predict(adj, x), model.predict(adj, x));
}

// --- Dataset + trainer (small end-to-end) -------------------------------------

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

const Dataset& tiny_dataset() {
  static const Dataset dataset = [] {
    gen::DesignSpec spec = gen::design_spec("aes");
    spec.target_cells = 800;
    static netlist::Netlist nl = gen::generate(lib(), spec);
    DatasetOptions options;
    options.min_cluster_size = 20;
    options.max_cluster_size = 200;
    options.max_clusters_per_design = 10;
    options.clustering_configs = 2;
    vpr::VprOptions vpr_options;  // full 20-shape sweep per cluster
    return build_dataset({&nl}, options, vpr_options);
  }();
  return dataset;
}

TEST(Dataset, BuildsLabelledClusters) {
  const Dataset& dataset = tiny_dataset();
  ASSERT_GE(dataset.clusters.size(), 3u);
  EXPECT_EQ(dataset.shapes.size(), 20u);
  for (const ClusterSample& sample : dataset.clusters) {
    EXPECT_EQ(sample.labels.size(), 20u);
    EXPECT_GE(sample.cluster_size, 20);
    EXPECT_LE(sample.cluster_size, 200);
    for (const double label : sample.labels) EXPECT_GT(label, 0.0);
  }
}

TEST(Trainer, LearnsSomething) {
  const Dataset& dataset = tiny_dataset();
  TrainOptions options;
  options.epochs = 12;
  options.batch_size = 8;
  const TrainResult result = train_total_cost_model(dataset, options);
  EXPECT_EQ(result.epochs_run, 12);
  EXPECT_GT(result.labels.max, result.labels.min);
  // Training MAE must be meaningfully below the label stddev (i.e., beats
  // the constant-mean predictor on the training set).
  EXPECT_LT(result.train.mae, result.labels.stddev);
  EXPECT_GT(result.train.r2, 0.0);
  EXPECT_GT(result.train.sample_count, 0u);
  EXPECT_GT(result.val.sample_count, 0u);
  EXPECT_GT(result.test.sample_count, 0u);
}

TEST(Trainer, PredictorAdapterScoresAllCandidates) {
  const Dataset& dataset = tiny_dataset();
  TrainOptions options;
  options.epochs = 3;
  const TrainResult result = train_total_cost_model(dataset, options);

  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = 200;
  const netlist::Netlist nl = gen::generate(lib(), spec);
  std::vector<netlist::CellId> cells;
  for (std::size_t i = 0; i < 60; ++i) cells.push_back(static_cast<netlist::CellId>(i));
  const netlist::SubNetlist sub = netlist::extract_subnetlist(nl, cells);

  const vpr::ShapeCostPredictor predictor =
      result.model->predictor(features::FeatureOptions{});
  const auto costs = predictor(sub.netlist, dataset.shapes);
  ASSERT_EQ(costs.size(), 20u);
  for (const double c : costs) EXPECT_TRUE(std::isfinite(c));
}

}  // namespace
}  // namespace ppacd::ml
