/// \file observe_test.cpp
/// \brief Flight-recorder contract tests: bounded rings with drop counting,
/// deterministic every-Nth sampling, serial series numbering, merge order by
/// (stream, series, index, sub), capacity trimming that keeps the newest
/// keys, and — the headline guarantee — a merged event stream that is
/// bit-identical when the full clustered flow runs with 1 thread and with 8.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "exec/exec.hpp"
#include "flow/flow.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "observe/observe.hpp"
#include "telemetry/telemetry.hpp"

namespace ppacd::observe {
namespace {

#if defined(PPACD_OBSERVE_DISABLED)
// With the recorder compiled out active() is constant-false and no emit site
// runs; the API below still links (tools/tests compile either way) but there
// is nothing to test beyond that.
TEST(Observe, CompiledOutIsInertButLinks) {
  EXPECT_FALSE(kCompiledIn);
  EXPECT_FALSE(active());
  recorder().set_enabled(true);
  recorder().record(Stream::kPlaceIter, 0, 0, 0, {1.0});
  recorder().set_enabled(false);
}
#else

/// Saves and restores the process-wide recorder configuration around each
/// test, and starts every test from an empty, enabled recorder.
class ObserveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_enabled_ = recorder().enabled();
    saved_capacity_ = recorder().capacity();
    saved_stride_ = recorder().sample_stride();
    recorder().reset();
    recorder().set_enabled(true);
  }
  void TearDown() override {
    recorder().reset();
    recorder().set_enabled(saved_enabled_);
    recorder().set_capacity(saved_capacity_);
    recorder().set_sample_stride(saved_stride_);
  }

 private:
  bool saved_enabled_ = false;
  std::size_t saved_capacity_ = 0;
  int saved_stride_ = 1;
};

TEST_F(ObserveTest, DisabledRecorderRecordsNothing) {
  recorder().set_enabled(false);
  EXPECT_FALSE(active());
  EXPECT_FALSE(recorder().want(0));
  recorder().record(Stream::kPlaceIter, 0, 0, 0, {1.0});
  recorder().set_enabled(true);
  EXPECT_TRUE(recorder().merged_samples().empty());
}

TEST_F(ObserveTest, WantIsEveryNthByLogicalIndex) {
  recorder().set_sample_stride(4);
  EXPECT_TRUE(recorder().want(0));
  EXPECT_FALSE(recorder().want(1));
  EXPECT_FALSE(recorder().want(3));
  EXPECT_TRUE(recorder().want(4));
  EXPECT_TRUE(recorder().want(8000));
  recorder().set_sample_stride(1);
  EXPECT_TRUE(recorder().want(7));
}

TEST_F(ObserveTest, SeriesNumbersArePerStreamAndSequential) {
  EXPECT_EQ(recorder().begin_series(Stream::kPlaceIter), 0);
  EXPECT_EQ(recorder().begin_series(Stream::kPlaceIter), 1);
  EXPECT_EQ(recorder().begin_series(Stream::kRouteRound), 0);
  recorder().reset();
  EXPECT_EQ(recorder().begin_series(Stream::kPlaceIter), 0);
}

TEST_F(ObserveTest, ValuesTruncateToFour) {
  recorder().record(Stream::kStaLevel, 0, 0, 0,
                    {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  const std::vector<Sample> samples = recorder().merged_samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].count, 4);
  EXPECT_EQ(samples[0].values[3], 4.0);
}

TEST_F(ObserveTest, MergedSamplesSortByKeyNotEmitOrder) {
  // Emit deliberately out of key order from one thread.
  recorder().record(Stream::kRouteRound, 0, 2, 0, {1.0});
  recorder().record(Stream::kPlaceIter, 1, 0, 0, {2.0});
  recorder().record(Stream::kPlaceIter, 0, 5, 1, {3.0});
  recorder().record(Stream::kPlaceIter, 0, 5, 0, {4.0});
  const std::vector<Sample> samples = recorder().merged_samples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].values[0], 4.0);  // place.iter s0 i5 sub0
  EXPECT_EQ(samples[1].values[0], 3.0);  // place.iter s0 i5 sub1
  EXPECT_EQ(samples[2].values[0], 2.0);  // place.iter s1
  EXPECT_EQ(samples[3].values[0], 1.0);  // route.round
}

TEST_F(ObserveTest, RingOverwritesOldestAndCountsDrops) {
  recorder().set_capacity(8);
  for (int i = 0; i < 20; ++i) {
    recorder().record(Stream::kPlaceCg, 0, i, 0, {double(i)});
  }
  const std::vector<Sample> samples = recorder().merged_samples();
  ASSERT_EQ(samples.size(), 8u);
  // Ring semantics: the newest keys survive (indices 12..19).
  EXPECT_EQ(samples.front().index, 12);
  EXPECT_EQ(samples.back().index, 19);
  EXPECT_EQ(recorder().dropped(), 12);
  recorder().reset();
  EXPECT_EQ(recorder().dropped(), 0);
  EXPECT_TRUE(recorder().merged_samples().empty());
}

TEST_F(ObserveTest, MergedTrimsToCapacityKeepingHighestKeys) {
  // Two "threads" worth of data can exceed capacity even when each ring
  // fits; the merged snapshot must still be bounded by capacity().
  recorder().set_capacity(16);
  for (int i = 0; i < 16; ++i) {
    recorder().record(Stream::kPlaceCg, 0, i, 0, {double(i)});
  }
  std::thread other([] {
    for (int i = 16; i < 32; ++i) {
      recorder().record(Stream::kPlaceCg, 0, i, 0, {double(i)});
    }
  });
  other.join();
  const std::vector<Sample> samples = recorder().merged_samples();
  ASSERT_EQ(samples.size(), 16u);
  EXPECT_EQ(samples.front().index, 16);
  EXPECT_EQ(samples.back().index, 31);
}

TEST_F(ObserveTest, FrameStoreBoundedAtKMaxFrames) {
  for (std::size_t i = 0; i < Recorder::kMaxFrames + 5; ++i) {
    recorder().record_frame(Stream::kRouteHeatmap, 0,
                            static_cast<std::int64_t>(i), 2, 2,
                            {1.0, 2.0, 3.0, 4.0});
  }
  const std::vector<Frame> frames = recorder().frames();
  ASSERT_EQ(frames.size(), Recorder::kMaxFrames);
  // Oldest dropped first.
  EXPECT_EQ(frames.front().index, 5);
  EXPECT_EQ(frames.back().index,
            static_cast<std::int64_t>(Recorder::kMaxFrames) + 4);
  EXPECT_EQ(recorder().dropped(), 5);
}

TEST_F(ObserveTest, ToJsonCarriesSchemaAndStreamNames) {
  recorder().record(Stream::kClusterCut, 0, 0, 0, {0.5, 10.0});
  recorder().record_frame(Stream::kStaSlack, 0, 0, 4, 0,
                          {-10.0, 10.0, 1.0, 2.0, 3.0, 4.0});
  const std::string dump = recorder().to_json("unit").dump(0);
  EXPECT_NE(dump.find("\"schema\": \"ppacd-observe-v1\""), std::string::npos);
  EXPECT_NE(dump.find("\"label\": \"unit\""), std::string::npos);
  EXPECT_NE(dump.find("\"cluster.cut\""), std::string::npos);
  EXPECT_NE(dump.find("\"sta.slack\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Deterministic merge across the worker pool
// ---------------------------------------------------------------------------

/// Emits keyed samples from a parallel_for at `threads` and returns the
/// merged stream. Keys depend only on the loop index, so the result must be
/// independent of how iterations landed on workers.
std::vector<Sample> emit_from_pool(int threads, int n) {
  const int saved = exec::thread_count();
  exec::set_thread_count(threads);
  recorder().reset();
  const std::int32_t series = recorder().begin_series(Stream::kVprCandidate);
  exec::parallel_for(0, static_cast<std::size_t>(n), 1, [&](std::size_t i) {
    recorder().record(Stream::kVprCandidate, series,
                      static_cast<std::int64_t>(i), 0,
                      {double(i), double(i) * 0.5});
  });
  std::vector<Sample> merged = recorder().merged_samples();
  exec::set_thread_count(saved);
  return merged;
}

void expect_same_stream(const std::vector<Sample>& a,
                        const std::vector<Sample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stream, b[i].stream) << i;
    EXPECT_EQ(a[i].series, b[i].series) << i;
    EXPECT_EQ(a[i].index, b[i].index) << i;
    EXPECT_EQ(a[i].sub, b[i].sub) << i;
    ASSERT_EQ(a[i].count, b[i].count) << i;
    for (int v = 0; v < a[i].count; ++v) {
      EXPECT_EQ(a[i].values[v], b[i].values[v]) << i << "." << v;
    }
  }
}

TEST_F(ObserveTest, PoolEmitsMergeIdentical1v8) {
  const std::vector<Sample> serial = emit_from_pool(1, 500);
  const std::vector<Sample> parallel = emit_from_pool(8, 500);
  ASSERT_EQ(serial.size(), 500u);
  expect_same_stream(serial, parallel);
}

// ---------------------------------------------------------------------------
// Full-flow bit-identity (the ISSUE acceptance criterion)
// ---------------------------------------------------------------------------

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

struct FlowStream {
  std::vector<Sample> samples;
  std::vector<Frame> frames;
  std::string json;
};

/// Runs the sharded aes flow (V-P&R on, nested solvers exercised, and the
/// place.shard series emitted — this is the clustered flow plus the sharded
/// placement pass, so it covers every stream) plus PPA evaluation with the
/// recorder on, and snapshots the full event stream.
FlowStream record_flow_at(int threads) {
  const int saved = exec::thread_count();
  exec::set_thread_count(threads);
  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = 600;
  netlist::Netlist nl = gen::generate(lib(), spec);

  flow::FlowOptions options;
  options.clock_period_ps = 550.0;
  options.fc.target_cluster_count = 10;
  options.vpr.min_cluster_instances = 20;
  options.sharding.shards = 3;

  telemetry::metrics().reset();
  recorder().reset();
  const flow::FlowResult result = flow::run_sharded_flow(nl, options);
  (void)flow::evaluate_ppa(nl, result.place.positions, options);

  FlowStream stream;
  stream.samples = recorder().merged_samples();
  stream.frames = recorder().frames();
  stream.json = recorder().to_json("aes").dump(0);
  recorder().reset();
  telemetry::metrics().reset();
  exec::set_thread_count(saved);
  return stream;
}

TEST_F(ObserveTest, FlowEventStreamBitIdentical1v8) {
  const FlowStream serial = record_flow_at(1);
  const FlowStream parallel = record_flow_at(8);

  // The flow must actually have emitted: placer iterations, CG residuals,
  // router rounds, STA levels, V-P&R candidates, cluster stats, and the
  // heatmap/histogram frames.
  EXPECT_FALSE(serial.samples.empty());
  EXPECT_FALSE(serial.frames.empty());
  bool seen[static_cast<int>(Stream::kStreamCount)] = {};
  for (const Sample& s : serial.samples) seen[s.stream] = true;
  for (const Frame& f : serial.frames) seen[f.stream] = true;
  for (int s = 0; s < static_cast<int>(Stream::kStreamCount); ++s) {
    EXPECT_TRUE(seen[s]) << "stream " << to_string(static_cast<Stream>(s))
                         << " recorded nothing";
  }

  expect_same_stream(serial.samples, parallel.samples);
  ASSERT_EQ(serial.frames.size(), parallel.frames.size());
  for (std::size_t i = 0; i < serial.frames.size(); ++i) {
    EXPECT_EQ(serial.frames[i].stream, parallel.frames[i].stream) << i;
    EXPECT_EQ(serial.frames[i].series, parallel.frames[i].series) << i;
    EXPECT_EQ(serial.frames[i].index, parallel.frames[i].index) << i;
    EXPECT_EQ(serial.frames[i].values, parallel.frames[i].values) << i;
  }
  // Belt and braces: the serialized export (what --observe writes and what
  // the dashboard reads) is byte-identical too.
  EXPECT_EQ(serial.json, parallel.json);
}

TEST_F(ObserveTest, SampledStrideThinsHighFrequencyStreamsOnly) {
  recorder().set_sample_stride(8);
  const FlowStream thinned = record_flow_at(1);
  recorder().set_sample_stride(1);
  const FlowStream full = record_flow_at(1);
  EXPECT_LT(thinned.samples.size(), full.samples.size());
  // Frames are always recorded regardless of stride.
  EXPECT_EQ(thinned.frames.size(), full.frames.size());
  // Thinned CG samples all fall on the stride (summary rows use sub == -1).
  for (const Sample& s : thinned.samples) {
    if (s.stream == static_cast<std::int32_t>(Stream::kPlaceCg) &&
        s.sub >= 0) {
      EXPECT_EQ(s.sub % 8, 0) << "CG sample off stride";
    }
  }
}

#endif  // PPACD_OBSERVE_DISABLED

}  // namespace
}  // namespace ppacd::observe
