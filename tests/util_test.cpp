#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_set>
#include <vector>

#include "util/arena.hpp"
#include "util/csr.hpp"
#include "util/csv.hpp"
#include "util/dense_scratch.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/string_utils.hpp"
#include "util/strong_id.hpp"
#include "util/table.hpp"

namespace ppacd::util {
namespace {

TEST(Stats, SummaryOfEmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Stats, QuantileInterpolates) {
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);  // unsorted input
}

TEST(Stats, MaeAndR2) {
  const std::vector<double> labels = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_absolute_error(labels, labels), 0.0);
  EXPECT_DOUBLE_EQ(r2_score(labels, labels), 1.0);
  const std::vector<double> pred = {2.0, 2.0, 2.0};  // predicts the mean
  EXPECT_DOUBLE_EQ(r2_score(pred, labels), 0.0);
  EXPECT_NEAR(mean_absolute_error(pred, labels), 2.0 / 3.0, 1e-12);
}

TEST(Stats, R2ZeroVarianceLabels) {
  EXPECT_DOUBLE_EQ(r2_score({1.0, 2.0}, {5.0, 5.0}), 0.0);
}

TEST(Stats, PercentImprovement) {
  EXPECT_DOUBLE_EQ(percent_improvement(2.0, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percent_improvement(-100.0, -50.0), -50.0);
  EXPECT_DOUBLE_EQ(percent_improvement(0.0, 1.0), 0.0);
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(11);
  const auto perm = rng.permutation(50);
  std::vector<bool> seen(50, false);
  for (const std::size_t v : perm) {
    ASSERT_LT(v, 50u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, Geometric1AtLeastOne) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) EXPECT_GE(rng.geometric1(0.5), 1);
}

TEST(StringUtils, SplitJoinRoundtrip) {
  const auto tokens = split("a/b//c", '/');
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[2], "");
  EXPECT_EQ(join(tokens, '/'), "a/b//c");
}

TEST(StringUtils, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 3), "1.235");
  EXPECT_EQ(format_double(-0.5, 0), "-0");  // printf semantics
}

TEST(Table, RendersAllRows) {
  Table t("demo");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333"});  // short row padded
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Csr, CountingBuildPreservesPushOrder) {
  // Two-pass counting build: the per-row push order must match what a
  // vector-of-vectors push_back would have produced.
  Csr<int> csr;
  csr.start_rows(3);
  csr.add_to_row(0, 2);
  csr.add_to_row(2, 3);
  csr.commit_rows();
  csr.push(2, 10);
  csr.push(0, 1);
  csr.push(2, 20);
  csr.push(0, 2);
  csr.push(2, 30);

  ASSERT_EQ(csr.rows(), 3u);
  EXPECT_EQ(csr.value_count(), 5u);
  EXPECT_EQ(std::vector<int>(csr.row(0).begin(), csr.row(0).end()),
            (std::vector<int>{1, 2}));
  EXPECT_TRUE(csr.row(1).empty());
  EXPECT_EQ(std::vector<int>(csr.row(2).begin(), csr.row(2).end()),
            (std::vector<int>{10, 20, 30}));
}

TEST(Csr, AppendBuildAndRowSpans) {
  Csr<int> csr;
  csr.start_append(/*expected_rows=*/2, /*expected_values=*/4);
  csr.append(7);
  csr.append(8);
  csr.end_row();
  csr.end_row();  // empty row
  csr.append_row(std::vector<int>{9});

  ASSERT_EQ(csr.rows(), 3u);
  EXPECT_EQ(csr.row_size(0), 2u);
  EXPECT_EQ(csr.row_size(1), 0u);
  EXPECT_EQ(csr.row(2)[0], 9);
  // clear() then rebuild reuses the same storage and stays correct.
  csr.clear();
  EXPECT_EQ(csr.rows(), 0u);
  csr.start_append(1, 1);
  csr.append(42);
  csr.end_row();
  ASSERT_EQ(csr.rows(), 1u);
  EXPECT_EQ(csr.row(0)[0], 42);
}

TEST(DenseScratch, EpochClearForgetsEntries) {
  DenseScratch<double> table(8);
  table.add(3, 1.5);
  table.add(5, 2.0);
  table.add(3, 0.5);
  EXPECT_TRUE(table.contains(3));
  EXPECT_DOUBLE_EQ(table.get(3), 2.0);
  EXPECT_DOUBLE_EQ(table.get(5), 2.0);
  EXPECT_DOUBLE_EQ(table.get(4, -1.0), -1.0);
  // First-touch key order is deterministic (no hashing involved).
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table.keys()[0], 3);
  EXPECT_EQ(table.keys()[1], 5);

  table.clear();
  EXPECT_FALSE(table.contains(3));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_DOUBLE_EQ(table.get(3, 0.0), 0.0);
  // Slots are reusable across epochs with fresh default values.
  table.add(3, 4.0);
  EXPECT_DOUBLE_EQ(table.get(3), 4.0);
  EXPECT_EQ(table.resets(), 1u);
}

TEST(DenseScratch, TestAndSetDeduplicates) {
  DenseScratch<char> seen(4);
  EXPECT_FALSE(seen.test_and_set(2));
  EXPECT_TRUE(seen.test_and_set(2));
  EXPECT_FALSE(seen.test_and_set(0));
  seen.clear();
  EXPECT_FALSE(seen.test_and_set(2));
}

TEST(DenseScratch, GrowKeepsCurrentEpoch) {
  DenseScratch<int> table(2);
  table.add(1, 7);
  table.grow(100);
  EXPECT_TRUE(table.contains(1));
  EXPECT_EQ(table.get(1), 7);
  table.add(99, 3);
  EXPECT_EQ(table.get(99), 3);
}

TEST(Arena, SpansAreZeroedAndDisjoint) {
  Arena arena;
  const std::span<double> a = arena.alloc<double>(16);
  const std::span<std::int32_t> b = arena.alloc<std::int32_t>(8);
  ASSERT_EQ(a.size(), 16u);
  ASSERT_EQ(b.size(), 8u);
  for (const double v : a) EXPECT_EQ(v, 0.0);
  for (const std::int32_t v : b) EXPECT_EQ(v, 0);
  a[0] = 1.0;
  b[0] = 2;
  EXPECT_EQ(a[0], 1.0);  // no overlap
  EXPECT_GE(arena.bytes_peak(), 16 * sizeof(double) + 8 * sizeof(std::int32_t));
}

TEST(Arena, ResetCoalescesAndThenReuses) {
  Arena arena(64);  // force the first cycle to spill across blocks
  arena.alloc<double>(4096);
  arena.alloc<double>(4096);
  const std::size_t peak = arena.bytes_peak();
  EXPECT_GE(peak, 2 * 4096 * sizeof(double));

  // First reset coalesces the chain; subsequent cycles fit one block and
  // count as pure reuse (zero heap traffic).
  arena.reset();
  const std::size_t reserved = arena.bytes_reserved();
  for (int cycle = 0; cycle < 3; ++cycle) {
    const std::span<double> s = arena.alloc<double>(4096);
    for (const double v : s) ASSERT_EQ(v, 0.0);  // re-zeroed every cycle
    s[0] = 7.0;
    arena.reset();
  }
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // no new blocks
  EXPECT_GE(arena.reuse_count(), 3u);
  EXPECT_GE(arena.bytes_peak(), peak);
}

TEST(Csv, EscapesSpecialCells) {
  CsvWriter csv;
  csv.set_header({"x", "y"});
  csv.add_row({"a,b", "q\"q"});
  const std::string s = csv.to_string();
  EXPECT_NE(s.find("\"a,b\""), std::string::npos);
  EXPECT_NE(s.find("\"q\"\"q\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// StrongId / IdVector / IdSpan
// ---------------------------------------------------------------------------

using TestCellId = StrongId<struct TestCellTag>;
using TestNetId = StrongId<struct TestNetTag>;

// The point of the whole exercise: cross-domain operations must not compile.
static_assert(!std::is_constructible_v<TestCellId, TestNetId>,
              "ids of different domains must not convert");
static_assert(!std::is_assignable_v<TestCellId&, TestNetId>,
              "ids of different domains must not assign");
static_assert(!std::is_convertible_v<int, TestCellId>,
              "integer -> id must require an explicit construction");
static_assert(!std::is_convertible_v<TestCellId, int>,
              "id -> integer must go through value()/index()");
static_assert(std::is_convertible_v<InvalidId, TestCellId>,
              "the invalid sentinel assigns to every domain");
static_assert(is_strong_id_v<TestCellId> && !is_strong_id_v<int>);

template <typename A, typename B, typename = void>
struct EqComparable : std::false_type {};
template <typename A, typename B>
struct EqComparable<
    A, B, std::void_t<decltype(std::declval<A>() == std::declval<B>())>>
    : std::true_type {};

static_assert(EqComparable<TestCellId, TestCellId>::value);
static_assert(!EqComparable<TestCellId, TestNetId>::value,
              "comparing ids of different domains must not compile");
static_assert(!EqComparable<TestCellId, int>::value,
              "comparing an id with a bare integer must not compile");

template <typename V, typename I, typename = void>
struct Subscriptable : std::false_type {};
template <typename V, typename I>
struct Subscriptable<
    V, I, std::void_t<decltype(std::declval<V&>()[std::declval<I>()])>>
    : std::true_type {};

static_assert(Subscriptable<IdVector<TestCellId, int>, TestCellId>::value);
static_assert(!Subscriptable<IdVector<TestCellId, int>, TestNetId>::value,
              "cells[net_id] must be a compile error");
static_assert(!Subscriptable<IdVector<TestCellId, int>, int>::value,
              "cells[3] must go through an explicit id construction");
static_assert(!Subscriptable<IdVector<TestCellId, int>, std::size_t>::value);
static_assert(!Subscriptable<IdSpan<TestCellId, int>, TestNetId>::value);

TEST(StrongId, DefaultIsInvalidSentinel) {
  const TestCellId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), -1);
  EXPECT_TRUE(id == kInvalidId);
  EXPECT_TRUE(kInvalidId == id);
  const TestCellId assigned = kInvalidId;
  EXPECT_FALSE(assigned.valid());
}

TEST(StrongId, ExplicitConstructionAndAccessors) {
  const TestCellId id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7);
  EXPECT_EQ(id.index(), 7u);
  EXPECT_TRUE(id != kInvalidId);
  EXPECT_EQ(id, TestCellId(7));
  EXPECT_NE(id, TestCellId(8));
  EXPECT_LT(TestCellId(3), id);
}

TEST(StrongId, OrdersIncrementsAndPrints) {
  TestCellId id(1);
  ++id;
  EXPECT_EQ(id, TestCellId(2));
  std::ostringstream os;
  os << id << " " << TestCellId();
  EXPECT_EQ(os.str(), "2 -1");
}

TEST(StrongId, HashesAsMapKey) {
  std::unordered_set<TestCellId> seen;
  seen.insert(TestCellId(1));
  seen.insert(TestCellId(2));
  seen.insert(TestCellId(1));
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen.count(TestCellId(2)) > 0);
  EXPECT_EQ(seen.count(TestCellId(9)), 0u);
}

TEST(IdRange, CoversHalfOpenInterval) {
  std::vector<int> visited;
  for (const TestCellId c : IdRange<TestCellId>(4)) {
    visited.push_back(c.value());
  }
  EXPECT_EQ(visited, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(IdRange<TestCellId>(4).size(), 4u);
  EXPECT_TRUE(IdRange<TestCellId>(0).empty());
  const IdRange<TestCellId> tail(TestCellId(2), TestCellId(4));
  EXPECT_EQ(tail.size(), 2u);
}

TEST(IdVector, TypedSubscriptAndGrowth) {
  IdVector<TestCellId, std::string> names;
  EXPECT_TRUE(names.empty());
  EXPECT_EQ(names.next_id(), TestCellId(0));
  const TestCellId a = names.push_back("a");
  const TestCellId b = names.emplace_back("b");
  EXPECT_EQ(a, TestCellId(0));
  EXPECT_EQ(b, TestCellId(1));
  EXPECT_EQ(names[a], "a");
  EXPECT_EQ(names.at(b), "b");
  EXPECT_EQ(names.size(), 2u);
  EXPECT_TRUE(names.contains(a));
  EXPECT_FALSE(names.contains(TestCellId(2)));
  EXPECT_FALSE(names.contains(TestCellId()));
  EXPECT_THROW(names.at(TestCellId(5)), std::out_of_range);
  names.pop_back();
  EXPECT_EQ(names.size(), 1u);
}

TEST(IdVector, IdsRangeAndRawEscapeHatch) {
  IdVector<TestCellId, int> squares;
  for (int i = 0; i < 5; ++i) squares.push_back(i * i);
  int sum = 0;
  for (const TestCellId c : squares.ids()) sum += squares[c];
  EXPECT_EQ(sum, 0 + 1 + 4 + 9 + 16);
  // raw() exposes the underlying vector for id-agnostic bulk operations.
  std::sort(squares.raw().begin(), squares.raw().end(), std::greater<>());
  EXPECT_EQ(squares[TestCellId(0)], 16);
}

TEST(IdSpan, ViewsIdVectorAndRawVector) {
  IdVector<TestCellId, double> v(3, 1.5);
  IdSpan<TestCellId, const double> view = v;
  EXPECT_EQ(view.size(), 3u);
  EXPECT_DOUBLE_EQ(view[TestCellId(2)], 1.5);
  std::vector<double> raw = {1.0, 2.0};
  auto mut = IdSpan<TestCellId, double>::from_raw(raw);
  mut[TestCellId(1)] = 5.0;
  EXPECT_DOUBLE_EQ(raw[1], 5.0);
}

}  // namespace
}  // namespace ppacd::util
