#include <gtest/gtest.h>

#include <cmath>

#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

namespace ppacd::util {
namespace {

TEST(Stats, SummaryOfEmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Stats, QuantileInterpolates) {
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);  // unsorted input
}

TEST(Stats, MaeAndR2) {
  const std::vector<double> labels = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_absolute_error(labels, labels), 0.0);
  EXPECT_DOUBLE_EQ(r2_score(labels, labels), 1.0);
  const std::vector<double> pred = {2.0, 2.0, 2.0};  // predicts the mean
  EXPECT_DOUBLE_EQ(r2_score(pred, labels), 0.0);
  EXPECT_NEAR(mean_absolute_error(pred, labels), 2.0 / 3.0, 1e-12);
}

TEST(Stats, R2ZeroVarianceLabels) {
  EXPECT_DOUBLE_EQ(r2_score({1.0, 2.0}, {5.0, 5.0}), 0.0);
}

TEST(Stats, PercentImprovement) {
  EXPECT_DOUBLE_EQ(percent_improvement(2.0, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percent_improvement(-100.0, -50.0), -50.0);
  EXPECT_DOUBLE_EQ(percent_improvement(0.0, 1.0), 0.0);
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(11);
  const auto perm = rng.permutation(50);
  std::vector<bool> seen(50, false);
  for (const std::size_t v : perm) {
    ASSERT_LT(v, 50u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, Geometric1AtLeastOne) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) EXPECT_GE(rng.geometric1(0.5), 1);
}

TEST(StringUtils, SplitJoinRoundtrip) {
  const auto tokens = split("a/b//c", '/');
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[2], "");
  EXPECT_EQ(join(tokens, '/'), "a/b//c");
}

TEST(StringUtils, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 3), "1.235");
  EXPECT_EQ(format_double(-0.5, 0), "-0");  // printf semantics
}

TEST(Table, RendersAllRows) {
  Table t("demo");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333"});  // short row padded
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Csv, EscapesSpecialCells) {
  CsvWriter csv;
  csv.set_header({"x", "y"});
  csv.add_row({"a,b", "q\"q"});
  const std::string s = csv.to_string();
  EXPECT_NE(s.find("\"a,b\""), std::string::npos);
  EXPECT_NE(s.find("\"q\"\"q\""), std::string::npos);
}

}  // namespace
}  // namespace ppacd::util
