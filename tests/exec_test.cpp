/// \file exec_test.cpp
/// \brief Unit tests for the deterministic parallel execution layer: chunk
/// structure, ordered reduction, nested regions, exception propagation, and
/// pool reconfiguration.
#include "exec/exec.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ppacd::exec {
namespace {

// Restores the entry thread count after each test so the suite's pool state
// does not leak between tests (or into other suites in the same binary).
class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = thread_count(); }
  void TearDown() override { set_thread_count(saved_threads_); }
  int saved_threads_ = 1;
};

TEST_F(ExecTest, ChunkCountFor) {
  EXPECT_EQ(detail::chunk_count_for(0, 4), 0u);
  EXPECT_EQ(detail::chunk_count_for(1, 4), 1u);
  EXPECT_EQ(detail::chunk_count_for(4, 4), 1u);
  EXPECT_EQ(detail::chunk_count_for(5, 4), 2u);
  EXPECT_EQ(detail::chunk_count_for(8, 4), 2u);
  EXPECT_EQ(detail::chunk_count_for(9, 4), 3u);
  EXPECT_EQ(detail::chunk_count_for(7, 0), 7u);  // grain 0 acts as 1
  EXPECT_EQ(detail::chunk_count_for(7, kSerialGrain), 1u);
}

TEST_F(ExecTest, ParallelForVisitsEveryIndexOnce) {
  set_thread_count(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(0, kN, 64, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ExecTest, SerialGrainRunsInline) {
  set_thread_count(8);
  // With kSerialGrain the whole range is one chunk on the caller; no other
  // thread may observe the (unsynchronized) counter mid-flight.
  std::size_t count = 0;
  std::vector<std::size_t> order;
  parallel_for_chunks(0, 1000, kSerialGrain,
                      [&](std::size_t b, std::size_t e, std::size_t c) {
                        EXPECT_EQ(b, 0u);
                        EXPECT_EQ(e, 1000u);
                        EXPECT_EQ(c, 0u);
                        EXPECT_FALSE(inside_parallel_region());
                        count = e - b;
                        order.push_back(c);
                      });
  EXPECT_EQ(count, 1000u);
  EXPECT_EQ(order.size(), 1u);
}

TEST_F(ExecTest, ReduceIsBitIdenticalAcrossThreadCounts) {
  // Sum a series whose terms differ by many orders of magnitude, so any
  // change in accumulation order changes the rounded bits.
  constexpr std::size_t kN = 20'000;
  auto run = [&](int threads) {
    set_thread_count(threads);
    return parallel_reduce(
        std::size_t{0}, kN, 128, 0.0,
        [](std::size_t b, std::size_t e) {
          double acc = 0.0;
          for (std::size_t i = b; i < e; ++i) {
            acc += 1.0 / (1.0 + static_cast<double>(i) * 1e-3) +
                   std::ldexp(1.0, -static_cast<int>(i % 40));
          }
          return acc;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = run(1);
  for (const int threads : {2, 3, 4, 8}) {
    const double parallel_result = run(threads);
    EXPECT_EQ(serial, parallel_result) << "threads=" << threads;
  }
}

TEST_F(ExecTest, NestedParallelForDoesNotDeadlockAndCoversRange) {
  set_thread_count(4);
  constexpr std::size_t kOuter = 64;
  constexpr std::size_t kInner = 257;
  std::vector<std::atomic<std::size_t>> inner_sums(kOuter);
  parallel_for(0, kOuter, 1, [&](std::size_t outer) {
    std::size_t local = 0;
    // Nested region: runs inline when the outer chunk landed on a worker,
    // through the pool otherwise. Either way the chunk structure is the same.
    parallel_for(0, kInner, 32, [&](std::size_t inner) { local += inner; });
    inner_sums[outer].store(local, std::memory_order_relaxed);
  });
  const std::size_t expected = kInner * (kInner - 1) / 2;
  for (std::size_t outer = 0; outer < kOuter; ++outer) {
    ASSERT_EQ(inner_sums[outer].load(), expected) << "outer " << outer;
  }
}

TEST_F(ExecTest, ExceptionPropagatesToCaller) {
  set_thread_count(4);
  EXPECT_THROW(
      parallel_for(0, 1'000, 8,
                   [&](std::size_t i) {
                     if (i == 613) throw std::runtime_error("chunk failure");
                   }),
      std::runtime_error);
  // The pool must be reusable after a failed region.
  std::atomic<std::size_t> visited{0};
  parallel_for(0, 100, 8, [&](std::size_t) {
    visited.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(visited.load(), 100u);
}

TEST_F(ExecTest, SetThreadCountReconfigures) {
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3);
  EXPECT_EQ(worker_slots(), 3u);
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1);
  set_thread_count(0);  // clamped
  EXPECT_EQ(thread_count(), 1);
  set_thread_count(5);
  EXPECT_EQ(thread_count(), 5);
  std::atomic<std::size_t> visited{0};
  parallel_for(0, 1'000, 16, [&](std::size_t) {
    visited.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(visited.load(), 1000u);
}

TEST_F(ExecTest, WorkerSlotIsInRangeDuringRegion) {
  set_thread_count(4);
  std::atomic<bool> out_of_range{false};
  parallel_for(0, 4'096, 16, [&](std::size_t) {
    if (this_worker_slot() >= worker_slots()) out_of_range.store(true);
  });
  EXPECT_FALSE(out_of_range.load());
  EXPECT_EQ(this_worker_slot(), 0u);  // calling thread outside a region
}

}  // namespace
}  // namespace ppacd::exec
