#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "place/floorplan.hpp"
#include "place/global_placer.hpp"
#include "place/legalizer.hpp"
#include "place/model.hpp"
#include "util/rng.hpp"

namespace ppacd::place {
namespace {

using netlist::Netlist;

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

Netlist small_design(int cells = 500) {
  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = cells;
  return gen::generate(lib(), spec);
}

TEST(Floorplan, RespectsUtilizationAndAspectRatio) {
  FloorplanOptions options;
  options.utilization = 0.5;
  options.aspect_ratio = 2.0;
  const Floorplan fp = Floorplan::create(1000.0, 1.4, options);
  // Core area >= cell area / utilization (rounded up to rows).
  EXPECT_GE(fp.core.area(), 1000.0 / 0.5 - 1e-6);
  EXPECT_NEAR(fp.core.height() / fp.core.width(), 2.0, 0.25);
  EXPECT_NEAR(fp.core.height(), fp.row_count * 1.4, 1e-9);
}

TEST(Floorplan, SquareByDefault) {
  const Floorplan fp = Floorplan::create(5000.0, 1.4, FloorplanOptions{});
  EXPECT_NEAR(fp.core.width(), fp.core.height(), fp.row_height_um * 2);
}

TEST(Floorplan, PortsLandOnBoundary) {
  Netlist nl = small_design(300);
  const Floorplan fp =
      Floorplan::create(nl.total_cell_area(), lib().row_height_um(), FloorplanOptions{});
  place_ports_on_boundary(nl, fp);
  for (std::size_t po = 0; po < nl.port_count(); ++po) {
    const geom::Point p = nl.port(static_cast<netlist::PortId>(po)).position;
    const bool on_x_edge = std::fabs(p.x - fp.core.lx) < 1e-9 ||
                           std::fabs(p.x - fp.core.ux) < 1e-9;
    const bool on_y_edge = std::fabs(p.y - fp.core.ly) < 1e-9 ||
                           std::fabs(p.y - fp.core.uy) < 1e-9;
    EXPECT_TRUE(on_x_edge || on_y_edge) << "port " << po;
    EXPECT_TRUE(fp.core.contains(p));
  }
}

TEST(Model, ObjectLayoutAndFixedPorts) {
  Netlist nl = small_design(300);
  const Floorplan fp =
      Floorplan::create(nl.total_cell_area(), lib().row_height_um(), FloorplanOptions{});
  place_ports_on_boundary(nl, fp);
  const PlaceModel model = make_place_model(nl, fp);
  ASSERT_EQ(model.objects.size(), nl.cell_count() + nl.port_count());
  for (std::size_t i = 0; i < nl.cell_count(); ++i) {
    EXPECT_FALSE(model.objects[i].fixed);
    EXPECT_GT(model.objects[i].width_um, 0.0);
  }
  for (std::size_t i = nl.cell_count(); i < model.objects.size(); ++i) {
    EXPECT_TRUE(model.objects[i].fixed);
  }
  EXPECT_EQ(model.movable_count(), nl.cell_count());
  EXPECT_NEAR(model.movable_area(), nl.total_cell_area(), 1e-6);
}

TEST(Model, ClockNetExcluded) {
  Netlist nl = small_design(300);
  const Floorplan fp =
      Floorplan::create(nl.total_cell_area(), lib().row_height_um(), FloorplanOptions{});
  const PlaceModel model = make_place_model(nl, fp);
  std::size_t placeable = 0;
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const auto& net = nl.net(static_cast<netlist::NetId>(ni));
    if (!net.is_clock && net.pins.size() >= 2) ++placeable;
  }
  EXPECT_EQ(model.nets.size(), placeable);
}

TEST(Model, IoWeightScaling) {
  Netlist nl = small_design(300);
  const Floorplan fp =
      Floorplan::create(nl.total_cell_area(), lib().row_height_um(), FloorplanOptions{});
  const PlaceModel plain = make_place_model(nl, fp, 1.0);
  const PlaceModel scaled = make_place_model(nl, fp, 4.0);
  ASSERT_EQ(plain.nets.size(), scaled.nets.size());
  bool any_scaled = false;
  for (std::size_t i = 0; i < plain.nets.size(); ++i) {
    const double ratio = scaled.nets[i].weight / plain.nets[i].weight;
    if (ratio > 3.9) any_scaled = true;
    else EXPECT_NEAR(ratio, 1.0, 1e-12);
  }
  EXPECT_TRUE(any_scaled);
}

TEST(Model, HpwlHandComputed) {
  PlaceModel model;
  model.core = geom::Rect::make(0, 0, 100, 100);
  model.objects.resize(3);
  PlaceNet net;
  net.weight = 2.0;
  net.objects = {0, 1, 2};
  model.nets.push_back(net);
  const Placement placement = {{0, 0}, {10, 5}, {4, 20}};
  EXPECT_DOUBLE_EQ(net_hpwl(model, placement, 0), 10.0 + 20.0);
  EXPECT_DOUBLE_EQ(total_hpwl(model, placement), 2.0 * 30.0);
}

struct PlacedDesign {
  explicit PlacedDesign(int cells, double util = 0.7) : nl(small_design(cells)) {
    FloorplanOptions fpo;
    fpo.utilization = util;
    fp = Floorplan::create(nl.total_cell_area(), lib().row_height_um(), fpo);
    place_ports_on_boundary(nl, fp);
    model = make_place_model(nl, fp);
  }
  Netlist nl;
  Floorplan fp;
  PlaceModel model;
};

TEST(GlobalPlacer, ProducesInCorePlacement) {
  PlacedDesign d(500);
  GlobalPlacer placer(d.model, GlobalPlacerOptions{});
  const PlaceResult result = placer.run();
  ASSERT_EQ(result.placement.size(), d.model.objects.size());
  for (std::size_t i = 0; i < d.nl.cell_count(); ++i) {
    EXPECT_TRUE(d.fp.core.contains(result.placement[i])) << "cell " << i;
  }
  EXPECT_GT(result.iterations, 0);
  EXPECT_LT(result.overflow, 0.5);
}

TEST(GlobalPlacer, BeatsRandomPlacementOnHpwl) {
  PlacedDesign d(500);
  GlobalPlacer placer(d.model, GlobalPlacerOptions{});
  const PlaceResult result = placer.run();

  util::Rng rng(7);
  Placement random(d.model.objects.size());
  for (std::size_t i = 0; i < random.size(); ++i) {
    random[i] = d.model.objects[i].fixed
                    ? d.model.objects[i].fixed_position
                    : geom::Point{rng.uniform(d.fp.core.lx, d.fp.core.ux),
                                  rng.uniform(d.fp.core.ly, d.fp.core.uy)};
  }
  EXPECT_LT(result.hpwl_um, 0.6 * total_hpwl(d.model, random));
}

TEST(GlobalPlacer, DeterministicForFixedSeed) {
  PlacedDesign d(300);
  GlobalPlacerOptions options;
  options.seed = 5;
  const PlaceResult a = GlobalPlacer(d.model, options).run();
  const PlaceResult b = GlobalPlacer(d.model, options).run();
  ASSERT_EQ(a.placement.size(), b.placement.size());
  for (std::size_t i = 0; i < a.placement.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.placement[i].x, b.placement[i].x);
    EXPECT_DOUBLE_EQ(a.placement[i].y, b.placement[i].y);
  }
}

TEST(GlobalPlacer, IncrementalStaysNearSeed) {
  PlacedDesign d(500);
  GlobalPlacer placer(d.model, GlobalPlacerOptions{});
  const PlaceResult full = placer.run();

  // Seed: the converged placement. Incremental from it must not wander far.
  const PlaceResult inc = placer.run_incremental(full.placement);
  double mean_move = 0.0;
  for (std::size_t i = 0; i < d.nl.cell_count(); ++i) {
    mean_move += geom::manhattan(full.placement[i], inc.placement[i]);
  }
  mean_move /= static_cast<double>(d.nl.cell_count());
  EXPECT_LT(mean_move, 0.25 * d.fp.core.half_perimeter());
  // And it should produce comparable or better wirelength.
  EXPECT_LT(inc.hpwl_um, 1.3 * full.hpwl_um);
}

TEST(GlobalPlacer, IncrementalImprovesClusterSeed) {
  // Seed every cell at the core center (worst-case cluster collapse):
  // incremental placement must spread the cells out and produce a real
  // placement (this is exactly Alg. 1's seeded-placement step).
  PlacedDesign d(500);
  Placement seed(d.model.objects.size(), d.fp.core.center());
  for (std::size_t i = 0; i < seed.size(); ++i) {
    if (d.model.objects[i].fixed) seed[i] = d.model.objects[i].fixed_position;
  }
  GlobalPlacer placer(d.model, GlobalPlacerOptions{});
  const PlaceResult inc = placer.run_incremental(seed);
  EXPECT_LT(inc.overflow, 0.6);
  // Cells actually moved off the center.
  double spread = 0.0;
  for (std::size_t i = 0; i < d.nl.cell_count(); ++i) {
    spread += geom::manhattan(inc.placement[i], d.fp.core.center());
  }
  EXPECT_GT(spread / static_cast<double>(d.nl.cell_count()),
            0.02 * d.fp.core.half_perimeter());
}

TEST(GlobalPlacer, RegionConstraintHonoured) {
  PlacedDesign d(300);
  // Fence the first 50 cells into the lower-left quadrant.
  const geom::Rect fence = geom::Rect::make(
      d.fp.core.lx, d.fp.core.ly, d.fp.core.center().x, d.fp.core.center().y);
  for (std::size_t i = 0; i < 50; ++i) d.model.objects[i].region = fence;
  GlobalPlacer placer(d.model, GlobalPlacerOptions{});
  const PlaceResult result = placer.run();
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(fence.contains(result.placement[i])) << "cell " << i;
  }
}

TEST(Legalizer, NoOverlapsWithinRows) {
  PlacedDesign d(400, 0.6);
  GlobalPlacer placer(d.model, GlobalPlacerOptions{});
  const PlaceResult gp = placer.run();
  const LegalizeResult lg = legalize(d.model, gp.placement);
  EXPECT_EQ(lg.failed_count, 0);

  // Group by row and check non-overlap.
  std::map<long, std::vector<std::size_t>> rows;
  for (std::size_t i = 0; i < d.nl.cell_count(); ++i) {
    rows[std::lround(lg.placement[i].y * 1000.0)].push_back(i);
  }
  for (auto& [y, cells] : rows) {
    std::sort(cells.begin(), cells.end(), [&](std::size_t a, std::size_t b) {
      return lg.placement[a].x < lg.placement[b].x;
    });
    for (std::size_t k = 1; k < cells.size(); ++k) {
      const auto& prev = d.model.objects[cells[k - 1]];
      const double prev_end =
          lg.placement[cells[k - 1]].x + prev.width_um * 0.5;
      const double next_start = lg.placement[cells[k]].x -
                                d.model.objects[cells[k]].width_um * 0.5;
      EXPECT_LE(prev_end, next_start + 1e-6);
    }
  }
}

TEST(Legalizer, CellsSnapToRowCenters) {
  PlacedDesign d(300, 0.6);
  const PlaceResult gp = GlobalPlacer(d.model, GlobalPlacerOptions{}).run();
  const LegalizeResult lg = legalize(d.model, gp.placement);
  const double row_h = d.model.row_height_um;
  for (std::size_t i = 0; i < d.nl.cell_count(); ++i) {
    const double rel = (lg.placement[i].y - d.fp.core.ly) / row_h - 0.5;
    EXPECT_NEAR(rel, std::round(rel), 1e-6) << "cell " << i;
  }
}

TEST(Legalizer, DisplacementIsModest) {
  PlacedDesign d(400, 0.5);
  const PlaceResult gp = GlobalPlacer(d.model, GlobalPlacerOptions{}).run();
  const LegalizeResult lg = legalize(d.model, gp.placement);
  const double mean_disp =
      lg.total_displacement_um / static_cast<double>(d.nl.cell_count());
  EXPECT_LT(mean_disp, 0.2 * d.fp.core.half_perimeter());
}

TEST(GlobalPlacer, BlockageRepelsCells) {
  PlacedDesign d(400, 0.5);
  // Block the right half of the core.
  PlaceObject notch;
  notch.blockage = true;
  notch.fixed = true;
  notch.width_um = d.fp.core.width() * 0.5;
  notch.height_um = d.fp.core.height();
  notch.fixed_position = {d.fp.core.ux - notch.width_um * 0.5,
                          d.fp.core.center().y};
  d.model.objects.push_back(notch);

  GlobalPlacer placer(d.model, GlobalPlacerOptions{});
  const PlaceResult result = placer.run();
  // The blocked half should hold far less than half the cells.
  std::size_t in_blocked = 0;
  for (std::size_t i = 0; i < d.nl.cell_count(); ++i) {
    if (result.placement[i].x > d.fp.core.center().x) ++in_blocked;
  }
  EXPECT_LT(in_blocked, d.nl.cell_count() / 4);
}

TEST(GlobalPlacer, BlockageObjectsAreNotMoved) {
  PlacedDesign d(200, 0.5);
  PlaceObject notch;
  notch.blockage = true;
  notch.fixed = true;
  notch.width_um = 5.0;
  notch.height_um = 5.0;
  notch.fixed_position = d.fp.core.center();
  d.model.objects.push_back(notch);
  GlobalPlacer placer(d.model, GlobalPlacerOptions{});
  const PlaceResult result = placer.run();
  const geom::Point placed = result.placement.back();
  EXPECT_DOUBLE_EQ(placed.x, d.fp.core.center().x);
  EXPECT_DOUBLE_EQ(placed.y, d.fp.core.center().y);
}

}  // namespace
}  // namespace ppacd::place
