#include <gtest/gtest.h>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "netlist/stats.hpp"
#include "netlist/subnetlist.hpp"

namespace ppacd::netlist {
namespace {

class NetlistTest : public ::testing::Test {
 protected:
  NetlistTest() : lib_(liberty::Library::nangate45_like()), nl_(lib_, "t") {}

  /// Builds: in0 -> INV(a) -> NAND(c).A ; in1 -> INV(b) -> NAND(c).B ;
  /// NAND(c) -> DFF(d).D ; clk -> DFF.CK ; DFF.Q -> out0.
  void build_tiny() {
    const auto inv = *lib_.find("INV_X1");
    const auto nand2 = *lib_.find("NAND2_X1");
    const auto dff = *lib_.find("DFF_X1");
    const ModuleId sub = nl_.add_module("sub", nl_.root_module());
    a_ = nl_.add_cell("a", inv, nl_.root_module());
    b_ = nl_.add_cell("b", inv, sub);
    c_ = nl_.add_cell("c", nand2, sub);
    d_ = nl_.add_cell("d", dff, nl_.root_module());
    const PortId in0 = nl_.add_port("in0", liberty::PinDir::kInput);
    const PortId in1 = nl_.add_port("in1", liberty::PinDir::kInput);
    const PortId clk = nl_.add_port("clk", liberty::PinDir::kInput);
    const PortId out0 = nl_.add_port("out0", liberty::PinDir::kOutput);

    const NetId n_in0 = nl_.add_net("n_in0");
    nl_.connect(n_in0, nl_.port(in0).pin);
    nl_.connect(n_in0, nl_.cell_pin(a_, 0));
    const NetId n_in1 = nl_.add_net("n_in1");
    nl_.connect(n_in1, nl_.port(in1).pin);
    nl_.connect(n_in1, nl_.cell_pin(b_, 0));
    const NetId n_a = nl_.add_net("n_a");
    nl_.connect(n_a, nl_.cell_output_pin(a_));
    nl_.connect(n_a, nl_.cell_pin(c_, 0));
    const NetId n_b = nl_.add_net("n_b");
    nl_.connect(n_b, nl_.cell_output_pin(b_));
    nl_.connect(n_b, nl_.cell_pin(c_, 1));
    const NetId n_c = nl_.add_net("n_c");
    nl_.connect(n_c, nl_.cell_output_pin(c_));
    nl_.connect(n_c, nl_.cell_pin(d_, 0));  // D
    const NetId n_clk = nl_.add_net("clk");
    nl_.connect(n_clk, nl_.port(clk).pin);
    nl_.connect(n_clk, nl_.cell_pin(d_, 1));  // CK
    nl_.mark_clock_net(n_clk);
    const NetId n_q = nl_.add_net("n_q");
    nl_.connect(n_q, nl_.cell_output_pin(d_));
    nl_.connect(n_q, nl_.port(out0).pin);
  }

  liberty::Library lib_;
  Netlist nl_;
  CellId a_ = kInvalidId, b_ = kInvalidId, c_ = kInvalidId, d_ = kInvalidId;
};

TEST_F(NetlistTest, TinyDesignValidates) {
  build_tiny();
  EXPECT_TRUE(nl_.validate().empty());
  EXPECT_EQ(nl_.cell_count(), 4u);
  EXPECT_EQ(nl_.net_count(), 7u);
  EXPECT_EQ(nl_.port_count(), 4u);
}

TEST_F(NetlistTest, DriverRecorded) {
  build_tiny();
  for (std::size_t i = 0; i < nl_.net_count(); ++i) {
    const Net& net = nl_.net(static_cast<NetId>(i));
    ASSERT_NE(net.driver, kInvalidId) << net.name;
    EXPECT_EQ(nl_.pin(net.driver).dir, liberty::PinDir::kOutput);
  }
}

TEST_F(NetlistTest, PortPinDirectionFlipped) {
  build_tiny();
  // Input port drives from inside; output port sinks.
  const Port& in0 = nl_.port(PortId(0));
  EXPECT_EQ(nl_.pin(in0.pin).dir, liberty::PinDir::kOutput);
  const Port& out0 = nl_.port(PortId(3));
  EXPECT_EQ(nl_.pin(out0.pin).dir, liberty::PinDir::kInput);
}

TEST_F(NetlistTest, ModulePaths) {
  build_tiny();
  EXPECT_EQ(nl_.module_path(nl_.root_module()), "t");
  EXPECT_EQ(nl_.module_path(ModuleId(1)), "t/sub");
  EXPECT_TRUE(nl_.has_hierarchy());
  EXPECT_EQ(nl_.cell(b_).module, ModuleId(1));
}

TEST_F(NetlistTest, IoNetDetection) {
  build_tiny();
  int io_nets = 0;
  for (std::size_t i = 0; i < nl_.net_count(); ++i) {
    if (nl_.is_io_net(static_cast<NetId>(i))) ++io_nets;
  }
  EXPECT_EQ(io_nets, 4);  // in0, in1, clk, q->out0
}

TEST_F(NetlistTest, ValidateCatchesFloatingInput) {
  const auto inv = *lib_.find("INV_X1");
  nl_.add_cell("lonely", inv, nl_.root_module());
  const auto problems = nl_.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("floating input"), std::string::npos);
}

TEST_F(NetlistTest, ValidateCatchesUndrivenNet) {
  build_tiny();
  const auto inv = *lib_.find("INV_X1");
  const CellId e = nl_.add_cell("e", inv, nl_.root_module());
  const NetId bad = nl_.add_net("undriven");
  nl_.connect(bad, nl_.cell_pin(e, 0));
  // e's output dangles (allowed) but `undriven` has no driver.
  bool found = false;
  for (const auto& p : nl_.validate()) {
    if (p.find("undriven") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(NetlistTest, TotalCellArea) {
  build_tiny();
  const double expected = 2 * lib_.cell(*lib_.find("INV_X1")).area_um2() +
                          lib_.cell(*lib_.find("NAND2_X1")).area_um2() +
                          lib_.cell(*lib_.find("DFF_X1")).area_um2();
  EXPECT_NEAR(nl_.total_cell_area(), expected, 1e-9);
}

TEST_F(NetlistTest, StatsCountRegistersAndDepth) {
  build_tiny();
  const NetlistStats stats = compute_stats(nl_);
  EXPECT_EQ(stats.cell_count, 4u);
  EXPECT_EQ(stats.register_count, 1u);
  EXPECT_EQ(stats.module_count, 2u);
  EXPECT_EQ(stats.max_hierarchy_depth, 2u);
  EXPECT_GT(stats.average_net_degree, 1.0);
  EXPECT_EQ(stats.max_net_degree, 2u);
}

// --- Sub-netlist extraction -------------------------------------------------

TEST_F(NetlistTest, SubnetlistInternalAndBoundary) {
  build_tiny();
  // Cluster = {b, c}: n_b internal; n_in1 has external driver (input port);
  // n_a has external driver (cell a); n_c has internal driver, external sink.
  const SubNetlist sub = extract_subnetlist(nl_, {b_, c_});
  EXPECT_TRUE(sub.netlist.validate().empty());
  EXPECT_EQ(sub.netlist.cell_count(), 2u);
  EXPECT_EQ(sub.boundary_net_count, 3u);
  // Ports: pi_n_in1, pi_n_a, po_n_c.
  EXPECT_EQ(sub.netlist.port_count(), 3u);
  int inputs = 0, outputs = 0;
  for (std::size_t i = 0; i < sub.netlist.port_count(); ++i) {
    if (sub.netlist.port(static_cast<PortId>(i)).dir == liberty::PinDir::kInput)
      ++inputs;
    else
      ++outputs;
  }
  EXPECT_EQ(inputs, 2);
  EXPECT_EQ(outputs, 1);
}

TEST_F(NetlistTest, SubnetlistWholeDesignHasNoBoundary) {
  build_tiny();
  const SubNetlist sub = extract_subnetlist(nl_, {a_, b_, c_, d_});
  // All original nets touch the cluster; IO and clock nets still cross to
  // the chip ports, so they become boundary nets.
  EXPECT_EQ(sub.netlist.cell_count(), 4u);
  EXPECT_EQ(sub.boundary_net_count, 4u);
  EXPECT_TRUE(sub.netlist.validate().empty());
}

TEST_F(NetlistTest, SubnetlistSingleCell) {
  build_tiny();
  const SubNetlist sub = extract_subnetlist(nl_, {c_});
  EXPECT_EQ(sub.netlist.cell_count(), 1u);
  EXPECT_EQ(sub.netlist.port_count(), 3u);  // two inputs, one output
  EXPECT_TRUE(sub.netlist.validate().empty());
}

}  // namespace
}  // namespace ppacd::netlist
