#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "hier/dendrogram.hpp"
#include "hier/rent.hpp"
#include "util/rng.hpp"

namespace ppacd::hier {
namespace {

using netlist::CellId;
using netlist::ModuleId;
using netlist::NetId;
using netlist::Netlist;

liberty::Library& lib() {
  static liberty::Library instance = liberty::Library::nangate45_like();
  return instance;
}

/// Figure-2-style unbalanced hierarchy:
///   root -> {x1, a}, a -> {x2, x3}; x1 is one level shallower than x2/x3.
struct UnbalancedDesign {
  UnbalancedDesign() : nl(lib(), "top") {
    const auto inv = *lib().find("INV_X1");
    x1 = nl.add_module("x1", nl.root_module());
    a = nl.add_module("a", nl.root_module());
    x2 = nl.add_module("x2", a);
    x3 = nl.add_module("x3", a);
    c_x1 = nl.add_cell("c_x1", inv, x1);
    c_x2 = nl.add_cell("c_x2", inv, x2);
    c_x3 = nl.add_cell("c_x3", inv, x3);
  }
  Netlist nl;
  ModuleId x1, a, x2, x3;
  CellId c_x1, c_x2, c_x3;
};

TEST(Dendrogram, LevelizationReplicatesShallowLeaves) {
  UnbalancedDesign d;
  const Dendrogram dendro(d.nl);
  EXPECT_EQ(dendro.level_max(), 2);
  // x1 (level 1 leaf) must be replicated once, like node x1 in Figure 2.
  EXPECT_EQ(dendro.replicated_count(), 1u);
  int replicas = 0;
  for (const DendroNode& node : dendro.nodes()) {
    if (node.replica) {
      ++replicas;
      EXPECT_EQ(node.level, 2);
      EXPECT_EQ(node.cells.size(), 1u);  // x1's cell moved into the replica
    }
  }
  EXPECT_EQ(replicas, 1);
}

TEST(Dendrogram, ClusteringAtLevels) {
  UnbalancedDesign d;
  const Dendrogram dendro(d.nl);
  std::int32_t count = 0;
  const auto level1 = dendro.clustering_at(1, &count);
  EXPECT_EQ(count, 2);  // {x1}, {a = x2+x3}
  EXPECT_NE(level1[d.c_x1.index()],
            level1[d.c_x2.index()]);
  EXPECT_EQ(level1[d.c_x2.index()],
            level1[d.c_x3.index()]);

  const auto level2 = dendro.clustering_at(2, &count);
  EXPECT_EQ(count, 3);  // all leaves separate
}

TEST(Dendrogram, CellsInInternalModulesGetImplicitLeaf) {
  Netlist nl(lib(), "top");
  const auto inv = *lib().find("INV_X1");
  const ModuleId sub = nl.add_module("sub", nl.root_module());
  nl.add_module("subsub", sub);
  const CellId direct = nl.add_cell("direct", inv, sub);  // cell in internal module
  const Dendrogram dendro(nl);
  std::int32_t count = 0;
  const auto assignment = dendro.clustering_at(dendro.level_max(), &count);
  EXPECT_EQ(assignment[direct.index()] >= 0, true);
}

TEST(Rent, HandComputedTwoClusters) {
  Netlist nl(lib(), "t");
  const auto inv = *lib().find("INV_X1");
  const CellId a = nl.add_cell("a", inv, nl.root_module());
  const CellId b = nl.add_cell("b", inv, nl.root_module());
  const CellId c = nl.add_cell("c", inv, nl.root_module());
  const CellId d = nl.add_cell("d", inv, nl.root_module());
  auto connect2 = [&](CellId from, CellId to, const std::string& name) {
    const NetId net = nl.add_net(name);
    nl.connect(net, nl.cell_output_pin(from));
    nl.connect(net, nl.cell_pin(to, 0));
  };
  connect2(a, b, "n_ab");  // internal to cluster 0
  connect2(c, d, "n_cd");  // internal to cluster 1
  connect2(b, c, "n_bc");  // external

  const std::vector<std::int32_t> assignment = {0, 0, 1, 1};
  const auto terms = rent_terms(nl, assignment, 2);
  ASSERT_EQ(terms.size(), 2u);
  for (const RentTerms& t : terms) {
    EXPECT_EQ(t.size, 2);
    EXPECT_EQ(t.internal_pins, 2);
    EXPECT_EQ(t.external_pins, 1);
    EXPECT_EQ(t.external_edges, 1);
    EXPECT_NEAR(t.rent, std::log(1.0 / 3.0) / std::log(2.0) + 1.0, 1e-12);
  }
  EXPECT_NEAR(average_rent(nl, assignment, 2),
              std::log(1.0 / 3.0) / std::log(2.0) + 1.0, 1e-12);
}

TEST(Rent, SingletonClustersAreNeutral) {
  Netlist nl(lib(), "t");
  const auto inv = *lib().find("INV_X1");
  nl.add_cell("a", inv, nl.root_module());
  nl.add_cell("b", inv, nl.root_module());
  const std::vector<std::int32_t> assignment = {0, 1};
  const auto terms = rent_terms(nl, assignment, 2);
  EXPECT_DOUBLE_EQ(terms[0].rent, 1.0);
  EXPECT_DOUBLE_EQ(terms[1].rent, 1.0);
}

TEST(Rent, GoodClusteringBeatsRandom) {
  gen::DesignSpec spec = gen::design_spec("ariane");
  spec.target_cells = 1200;
  const Netlist nl = gen::generate(lib(), spec);

  // Hierarchy clustering vs a random assignment with the same cluster count.
  const HierClusteringResult good = hierarchy_clustering(nl);
  ASSERT_GT(good.cluster_count, 1);
  util::Rng rng(3);
  std::vector<std::int32_t> random(nl.cell_count());
  for (auto& c : random) {
    c = static_cast<std::int32_t>(rng.index(static_cast<std::size_t>(good.cluster_count)));
  }
  EXPECT_LT(average_rent(nl, good.cluster_of_cell, good.cluster_count),
            average_rent(nl, random, good.cluster_count));
}

TEST(HierClustering, ProducesValidAssignment) {
  gen::DesignSpec spec = gen::design_spec("jpeg");
  spec.target_cells = 800;
  const Netlist nl = gen::generate(lib(), spec);
  const HierClusteringResult result = hierarchy_clustering(nl);
  ASSERT_EQ(result.cluster_of_cell.size(), nl.cell_count());
  EXPECT_GE(result.cluster_count, 2);
  EXPECT_GE(result.chosen_level, 1);
  std::set<std::int32_t> used(result.cluster_of_cell.begin(),
                              result.cluster_of_cell.end());
  EXPECT_EQ(static_cast<std::int32_t>(used.size()), result.cluster_count);
  for (const std::int32_t c : result.cluster_of_cell) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, result.cluster_count);
  }
}

TEST(HierClustering, PicksMinimumRentLevel) {
  gen::DesignSpec spec = gen::design_spec("BlackParrot");
  spec.target_cells = 1500;
  const Netlist nl = gen::generate(lib(), spec);
  const HierClusteringResult result = hierarchy_clustering(nl);
  double best = std::numeric_limits<double>::infinity();
  for (const double r : result.level_rent) {
    if (!std::isnan(r)) best = std::min(best, r);
  }
  ASSERT_GE(result.chosen_level, 0);
  EXPECT_NEAR(result.level_rent[static_cast<std::size_t>(result.chosen_level)],
              best, 1e-12);
}

TEST(HierClustering, FlatDesignSingleCluster) {
  Netlist nl(lib(), "flat");
  const auto inv = *lib().find("INV_X1");
  nl.add_cell("a", inv, nl.root_module());
  nl.add_cell("b", inv, nl.root_module());
  const HierClusteringResult result = hierarchy_clustering(nl);
  EXPECT_EQ(result.cluster_count, 1);
  EXPECT_EQ(result.cluster_of_cell, (std::vector<std::int32_t>{0, 0}));
}

}  // namespace
}  // namespace ppacd::hier
