file(REMOVE_RECURSE
  "CMakeFiles/vpr_test.dir/vpr_test.cpp.o"
  "CMakeFiles/vpr_test.dir/vpr_test.cpp.o.d"
  "vpr_test"
  "vpr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
