# Empty compiler generated dependencies file for vpr_test.
# This may be replaced when dependencies are built.
