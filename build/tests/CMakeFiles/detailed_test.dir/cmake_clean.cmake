file(REMOVE_RECURSE
  "CMakeFiles/detailed_test.dir/detailed_test.cpp.o"
  "CMakeFiles/detailed_test.dir/detailed_test.cpp.o.d"
  "detailed_test"
  "detailed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detailed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
