
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cts_test.cpp" "tests/CMakeFiles/cts_test.dir/cts_test.cpp.o" "gcc" "tests/CMakeFiles/cts_test.dir/cts_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ppacd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/ppacd_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/ppacd_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/ppacd_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/cts/CMakeFiles/ppacd_cts.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/ppacd_place.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/ppacd_sta.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
