file(REMOVE_RECURSE
  "libppacd_vpr.a"
)
