file(REMOVE_RECURSE
  "CMakeFiles/ppacd_vpr.dir/vpr.cpp.o"
  "CMakeFiles/ppacd_vpr.dir/vpr.cpp.o.d"
  "libppacd_vpr.a"
  "libppacd_vpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppacd_vpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
