# Empty dependencies file for ppacd_vpr.
# This may be replaced when dependencies are built.
