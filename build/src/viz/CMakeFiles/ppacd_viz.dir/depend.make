# Empty dependencies file for ppacd_viz.
# This may be replaced when dependencies are built.
