file(REMOVE_RECURSE
  "CMakeFiles/ppacd_viz.dir/viz.cpp.o"
  "CMakeFiles/ppacd_viz.dir/viz.cpp.o.d"
  "libppacd_viz.a"
  "libppacd_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppacd_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
