file(REMOVE_RECURSE
  "libppacd_viz.a"
)
