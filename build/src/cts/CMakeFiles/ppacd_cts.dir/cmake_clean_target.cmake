file(REMOVE_RECURSE
  "libppacd_cts.a"
)
