file(REMOVE_RECURSE
  "CMakeFiles/ppacd_cts.dir/cts.cpp.o"
  "CMakeFiles/ppacd_cts.dir/cts.cpp.o.d"
  "libppacd_cts.a"
  "libppacd_cts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppacd_cts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
