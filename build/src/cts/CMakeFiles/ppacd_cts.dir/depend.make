# Empty dependencies file for ppacd_cts.
# This may be replaced when dependencies are built.
