file(REMOVE_RECURSE
  "CMakeFiles/ppacd_route.dir/global_router.cpp.o"
  "CMakeFiles/ppacd_route.dir/global_router.cpp.o.d"
  "CMakeFiles/ppacd_route.dir/steiner.cpp.o"
  "CMakeFiles/ppacd_route.dir/steiner.cpp.o.d"
  "libppacd_route.a"
  "libppacd_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppacd_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
