file(REMOVE_RECURSE
  "libppacd_route.a"
)
