# Empty compiler generated dependencies file for ppacd_route.
# This may be replaced when dependencies are built.
