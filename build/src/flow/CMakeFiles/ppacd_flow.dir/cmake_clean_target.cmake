file(REMOVE_RECURSE
  "libppacd_flow.a"
)
