file(REMOVE_RECURSE
  "CMakeFiles/ppacd_flow.dir/flow.cpp.o"
  "CMakeFiles/ppacd_flow.dir/flow.cpp.o.d"
  "libppacd_flow.a"
  "libppacd_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppacd_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
