# Empty dependencies file for ppacd_flow.
# This may be replaced when dependencies are built.
