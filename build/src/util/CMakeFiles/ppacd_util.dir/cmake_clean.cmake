file(REMOVE_RECURSE
  "CMakeFiles/ppacd_util.dir/csv.cpp.o"
  "CMakeFiles/ppacd_util.dir/csv.cpp.o.d"
  "CMakeFiles/ppacd_util.dir/logging.cpp.o"
  "CMakeFiles/ppacd_util.dir/logging.cpp.o.d"
  "CMakeFiles/ppacd_util.dir/stats.cpp.o"
  "CMakeFiles/ppacd_util.dir/stats.cpp.o.d"
  "CMakeFiles/ppacd_util.dir/string_utils.cpp.o"
  "CMakeFiles/ppacd_util.dir/string_utils.cpp.o.d"
  "CMakeFiles/ppacd_util.dir/table.cpp.o"
  "CMakeFiles/ppacd_util.dir/table.cpp.o.d"
  "libppacd_util.a"
  "libppacd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppacd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
