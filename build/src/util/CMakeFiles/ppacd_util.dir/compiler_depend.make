# Empty compiler generated dependencies file for ppacd_util.
# This may be replaced when dependencies are built.
