file(REMOVE_RECURSE
  "libppacd_util.a"
)
