# Empty compiler generated dependencies file for ppacd_gen.
# This may be replaced when dependencies are built.
