file(REMOVE_RECURSE
  "CMakeFiles/ppacd_gen.dir/designs.cpp.o"
  "CMakeFiles/ppacd_gen.dir/designs.cpp.o.d"
  "CMakeFiles/ppacd_gen.dir/generator.cpp.o"
  "CMakeFiles/ppacd_gen.dir/generator.cpp.o.d"
  "libppacd_gen.a"
  "libppacd_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppacd_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
