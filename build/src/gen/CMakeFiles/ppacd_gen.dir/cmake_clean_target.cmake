file(REMOVE_RECURSE
  "libppacd_gen.a"
)
