file(REMOVE_RECURSE
  "CMakeFiles/ppacd_place.dir/detailed.cpp.o"
  "CMakeFiles/ppacd_place.dir/detailed.cpp.o.d"
  "CMakeFiles/ppacd_place.dir/floorplan.cpp.o"
  "CMakeFiles/ppacd_place.dir/floorplan.cpp.o.d"
  "CMakeFiles/ppacd_place.dir/global_placer.cpp.o"
  "CMakeFiles/ppacd_place.dir/global_placer.cpp.o.d"
  "CMakeFiles/ppacd_place.dir/legalizer.cpp.o"
  "CMakeFiles/ppacd_place.dir/legalizer.cpp.o.d"
  "CMakeFiles/ppacd_place.dir/model.cpp.o"
  "CMakeFiles/ppacd_place.dir/model.cpp.o.d"
  "libppacd_place.a"
  "libppacd_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppacd_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
