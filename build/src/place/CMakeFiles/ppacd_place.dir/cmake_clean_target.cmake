file(REMOVE_RECURSE
  "libppacd_place.a"
)
