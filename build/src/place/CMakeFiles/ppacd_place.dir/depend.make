# Empty dependencies file for ppacd_place.
# This may be replaced when dependencies are built.
