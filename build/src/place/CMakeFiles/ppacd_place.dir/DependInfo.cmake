
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/place/detailed.cpp" "src/place/CMakeFiles/ppacd_place.dir/detailed.cpp.o" "gcc" "src/place/CMakeFiles/ppacd_place.dir/detailed.cpp.o.d"
  "/root/repo/src/place/floorplan.cpp" "src/place/CMakeFiles/ppacd_place.dir/floorplan.cpp.o" "gcc" "src/place/CMakeFiles/ppacd_place.dir/floorplan.cpp.o.d"
  "/root/repo/src/place/global_placer.cpp" "src/place/CMakeFiles/ppacd_place.dir/global_placer.cpp.o" "gcc" "src/place/CMakeFiles/ppacd_place.dir/global_placer.cpp.o.d"
  "/root/repo/src/place/legalizer.cpp" "src/place/CMakeFiles/ppacd_place.dir/legalizer.cpp.o" "gcc" "src/place/CMakeFiles/ppacd_place.dir/legalizer.cpp.o.d"
  "/root/repo/src/place/model.cpp" "src/place/CMakeFiles/ppacd_place.dir/model.cpp.o" "gcc" "src/place/CMakeFiles/ppacd_place.dir/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/ppacd_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ppacd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/ppacd_liberty.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
