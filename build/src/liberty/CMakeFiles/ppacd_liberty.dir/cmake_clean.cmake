file(REMOVE_RECURSE
  "CMakeFiles/ppacd_liberty.dir/library.cpp.o"
  "CMakeFiles/ppacd_liberty.dir/library.cpp.o.d"
  "libppacd_liberty.a"
  "libppacd_liberty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppacd_liberty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
