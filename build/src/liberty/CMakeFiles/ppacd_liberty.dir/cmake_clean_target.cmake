file(REMOVE_RECURSE
  "libppacd_liberty.a"
)
