# Empty dependencies file for ppacd_liberty.
# This may be replaced when dependencies are built.
