file(REMOVE_RECURSE
  "libppacd_ml.a"
)
