file(REMOVE_RECURSE
  "CMakeFiles/ppacd_ml.dir/dataset.cpp.o"
  "CMakeFiles/ppacd_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/ppacd_ml.dir/gnn.cpp.o"
  "CMakeFiles/ppacd_ml.dir/gnn.cpp.o.d"
  "CMakeFiles/ppacd_ml.dir/layers.cpp.o"
  "CMakeFiles/ppacd_ml.dir/layers.cpp.o.d"
  "CMakeFiles/ppacd_ml.dir/serialize.cpp.o"
  "CMakeFiles/ppacd_ml.dir/serialize.cpp.o.d"
  "CMakeFiles/ppacd_ml.dir/tensor.cpp.o"
  "CMakeFiles/ppacd_ml.dir/tensor.cpp.o.d"
  "CMakeFiles/ppacd_ml.dir/trainer.cpp.o"
  "CMakeFiles/ppacd_ml.dir/trainer.cpp.o.d"
  "libppacd_ml.a"
  "libppacd_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppacd_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
