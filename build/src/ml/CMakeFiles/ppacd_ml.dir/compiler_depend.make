# Empty compiler generated dependencies file for ppacd_ml.
# This may be replaced when dependencies are built.
