
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/best_choice.cpp" "src/cluster/CMakeFiles/ppacd_cluster.dir/best_choice.cpp.o" "gcc" "src/cluster/CMakeFiles/ppacd_cluster.dir/best_choice.cpp.o.d"
  "/root/repo/src/cluster/clustered_netlist.cpp" "src/cluster/CMakeFiles/ppacd_cluster.dir/clustered_netlist.cpp.o" "gcc" "src/cluster/CMakeFiles/ppacd_cluster.dir/clustered_netlist.cpp.o.d"
  "/root/repo/src/cluster/community.cpp" "src/cluster/CMakeFiles/ppacd_cluster.dir/community.cpp.o" "gcc" "src/cluster/CMakeFiles/ppacd_cluster.dir/community.cpp.o.d"
  "/root/repo/src/cluster/fc_multilevel.cpp" "src/cluster/CMakeFiles/ppacd_cluster.dir/fc_multilevel.cpp.o" "gcc" "src/cluster/CMakeFiles/ppacd_cluster.dir/fc_multilevel.cpp.o.d"
  "/root/repo/src/cluster/graph.cpp" "src/cluster/CMakeFiles/ppacd_cluster.dir/graph.cpp.o" "gcc" "src/cluster/CMakeFiles/ppacd_cluster.dir/graph.cpp.o.d"
  "/root/repo/src/cluster/overlay.cpp" "src/cluster/CMakeFiles/ppacd_cluster.dir/overlay.cpp.o" "gcc" "src/cluster/CMakeFiles/ppacd_cluster.dir/overlay.cpp.o.d"
  "/root/repo/src/cluster/ppa_costs.cpp" "src/cluster/CMakeFiles/ppacd_cluster.dir/ppa_costs.cpp.o" "gcc" "src/cluster/CMakeFiles/ppacd_cluster.dir/ppa_costs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/ppacd_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/ppacd_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/ppacd_place.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ppacd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/ppacd_liberty.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
