file(REMOVE_RECURSE
  "CMakeFiles/ppacd_cluster.dir/best_choice.cpp.o"
  "CMakeFiles/ppacd_cluster.dir/best_choice.cpp.o.d"
  "CMakeFiles/ppacd_cluster.dir/clustered_netlist.cpp.o"
  "CMakeFiles/ppacd_cluster.dir/clustered_netlist.cpp.o.d"
  "CMakeFiles/ppacd_cluster.dir/community.cpp.o"
  "CMakeFiles/ppacd_cluster.dir/community.cpp.o.d"
  "CMakeFiles/ppacd_cluster.dir/fc_multilevel.cpp.o"
  "CMakeFiles/ppacd_cluster.dir/fc_multilevel.cpp.o.d"
  "CMakeFiles/ppacd_cluster.dir/graph.cpp.o"
  "CMakeFiles/ppacd_cluster.dir/graph.cpp.o.d"
  "CMakeFiles/ppacd_cluster.dir/overlay.cpp.o"
  "CMakeFiles/ppacd_cluster.dir/overlay.cpp.o.d"
  "CMakeFiles/ppacd_cluster.dir/ppa_costs.cpp.o"
  "CMakeFiles/ppacd_cluster.dir/ppa_costs.cpp.o.d"
  "libppacd_cluster.a"
  "libppacd_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppacd_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
