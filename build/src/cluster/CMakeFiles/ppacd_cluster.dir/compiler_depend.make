# Empty compiler generated dependencies file for ppacd_cluster.
# This may be replaced when dependencies are built.
