file(REMOVE_RECURSE
  "libppacd_cluster.a"
)
