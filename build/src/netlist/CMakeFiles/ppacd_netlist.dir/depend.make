# Empty dependencies file for ppacd_netlist.
# This may be replaced when dependencies are built.
