file(REMOVE_RECURSE
  "CMakeFiles/ppacd_netlist.dir/io.cpp.o"
  "CMakeFiles/ppacd_netlist.dir/io.cpp.o.d"
  "CMakeFiles/ppacd_netlist.dir/netlist.cpp.o"
  "CMakeFiles/ppacd_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/ppacd_netlist.dir/stats.cpp.o"
  "CMakeFiles/ppacd_netlist.dir/stats.cpp.o.d"
  "CMakeFiles/ppacd_netlist.dir/subnetlist.cpp.o"
  "CMakeFiles/ppacd_netlist.dir/subnetlist.cpp.o.d"
  "libppacd_netlist.a"
  "libppacd_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppacd_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
