file(REMOVE_RECURSE
  "libppacd_netlist.a"
)
