file(REMOVE_RECURSE
  "CMakeFiles/ppacd_sta.dir/activity.cpp.o"
  "CMakeFiles/ppacd_sta.dir/activity.cpp.o.d"
  "CMakeFiles/ppacd_sta.dir/power.cpp.o"
  "CMakeFiles/ppacd_sta.dir/power.cpp.o.d"
  "CMakeFiles/ppacd_sta.dir/report.cpp.o"
  "CMakeFiles/ppacd_sta.dir/report.cpp.o.d"
  "CMakeFiles/ppacd_sta.dir/sta.cpp.o"
  "CMakeFiles/ppacd_sta.dir/sta.cpp.o.d"
  "libppacd_sta.a"
  "libppacd_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppacd_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
