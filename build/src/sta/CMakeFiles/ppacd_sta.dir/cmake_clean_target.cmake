file(REMOVE_RECURSE
  "libppacd_sta.a"
)
