# Empty compiler generated dependencies file for ppacd_sta.
# This may be replaced when dependencies are built.
