# Empty dependencies file for ppacd_opt.
# This may be replaced when dependencies are built.
