file(REMOVE_RECURSE
  "CMakeFiles/ppacd_opt.dir/buffering.cpp.o"
  "CMakeFiles/ppacd_opt.dir/buffering.cpp.o.d"
  "CMakeFiles/ppacd_opt.dir/sizing.cpp.o"
  "CMakeFiles/ppacd_opt.dir/sizing.cpp.o.d"
  "libppacd_opt.a"
  "libppacd_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppacd_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
