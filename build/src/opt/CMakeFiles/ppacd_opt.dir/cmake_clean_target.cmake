file(REMOVE_RECURSE
  "libppacd_opt.a"
)
