file(REMOVE_RECURSE
  "libppacd_hier.a"
)
