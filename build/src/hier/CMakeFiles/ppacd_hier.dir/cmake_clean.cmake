file(REMOVE_RECURSE
  "CMakeFiles/ppacd_hier.dir/dendrogram.cpp.o"
  "CMakeFiles/ppacd_hier.dir/dendrogram.cpp.o.d"
  "CMakeFiles/ppacd_hier.dir/rent.cpp.o"
  "CMakeFiles/ppacd_hier.dir/rent.cpp.o.d"
  "libppacd_hier.a"
  "libppacd_hier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppacd_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
