# Empty dependencies file for ppacd_hier.
# This may be replaced when dependencies are built.
