# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geom")
subdirs("netlist")
subdirs("liberty")
subdirs("gen")
subdirs("sta")
subdirs("place")
subdirs("route")
subdirs("cts")
subdirs("hier")
subdirs("cluster")
subdirs("vpr")
subdirs("features")
subdirs("ml")
subdirs("opt")
subdirs("viz")
subdirs("flow")
