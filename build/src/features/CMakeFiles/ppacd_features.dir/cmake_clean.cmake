file(REMOVE_RECURSE
  "CMakeFiles/ppacd_features.dir/features.cpp.o"
  "CMakeFiles/ppacd_features.dir/features.cpp.o.d"
  "libppacd_features.a"
  "libppacd_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppacd_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
