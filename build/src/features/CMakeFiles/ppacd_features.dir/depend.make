# Empty dependencies file for ppacd_features.
# This may be replaced when dependencies are built.
