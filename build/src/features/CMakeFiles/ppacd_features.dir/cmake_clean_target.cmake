file(REMOVE_RECURSE
  "libppacd_features.a"
)
