file(REMOVE_RECURSE
  "CMakeFiles/ppacd_bench_common.dir/common.cpp.o"
  "CMakeFiles/ppacd_bench_common.dir/common.cpp.o.d"
  "libppacd_bench_common.a"
  "libppacd_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppacd_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
