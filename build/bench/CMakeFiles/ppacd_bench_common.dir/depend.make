# Empty dependencies file for ppacd_bench_common.
# This may be replaced when dependencies are built.
