file(REMOVE_RECURSE
  "libppacd_bench_common.a"
)
