file(REMOVE_RECURSE
  "CMakeFiles/bench_shape_study.dir/bench_shape_study.cpp.o"
  "CMakeFiles/bench_shape_study.dir/bench_shape_study.cpp.o.d"
  "bench_shape_study"
  "bench_shape_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shape_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
