# Empty compiler generated dependencies file for bench_shape_study.
# This may be replaced when dependencies are built.
