# Empty compiler generated dependencies file for ppa_compare.
# This may be replaced when dependencies are built.
