file(REMOVE_RECURSE
  "CMakeFiles/ppa_compare.dir/ppa_compare.cpp.o"
  "CMakeFiles/ppa_compare.dir/ppa_compare.cpp.o.d"
  "ppa_compare"
  "ppa_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppa_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
