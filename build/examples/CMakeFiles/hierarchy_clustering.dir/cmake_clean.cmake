file(REMOVE_RECURSE
  "CMakeFiles/hierarchy_clustering.dir/hierarchy_clustering.cpp.o"
  "CMakeFiles/hierarchy_clustering.dir/hierarchy_clustering.cpp.o.d"
  "hierarchy_clustering"
  "hierarchy_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchy_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
