# Empty dependencies file for hierarchy_clustering.
# This may be replaced when dependencies are built.
