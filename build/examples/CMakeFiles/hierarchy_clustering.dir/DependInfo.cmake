
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/hierarchy_clustering.cpp" "examples/CMakeFiles/hierarchy_clustering.dir/hierarchy_clustering.cpp.o" "gcc" "examples/CMakeFiles/hierarchy_clustering.dir/hierarchy_clustering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/ppacd_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ppacd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/ppacd_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/ppacd_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/ppacd_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ppacd_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/cts/CMakeFiles/ppacd_cts.dir/DependInfo.cmake"
  "/root/repo/build/src/vpr/CMakeFiles/ppacd_vpr.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/ppacd_features.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ppacd_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/ppacd_place.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/ppacd_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/ppacd_route.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/ppacd_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/ppacd_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ppacd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
