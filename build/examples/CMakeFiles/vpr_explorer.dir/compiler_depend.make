# Empty compiler generated dependencies file for vpr_explorer.
# This may be replaced when dependencies are built.
