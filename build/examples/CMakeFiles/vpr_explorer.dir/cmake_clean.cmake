file(REMOVE_RECURSE
  "CMakeFiles/vpr_explorer.dir/vpr_explorer.cpp.o"
  "CMakeFiles/vpr_explorer.dir/vpr_explorer.cpp.o.d"
  "vpr_explorer"
  "vpr_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpr_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
