# Telemetry smoke check (run via `cmake -P` from ctest, see
# examples/CMakeLists.txt): drives flow_cli end-to-end with --report/--trace
# on a shrunken design, then validates that the run report carries every flow
# phase and the per-iteration placer metrics, and that the trace file is a
# Chrome trace_event document.
#
# Inputs: -DFLOW_CLI=<path to flow_cli> -DWORK_DIR=<writable directory>

if(NOT DEFINED FLOW_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "telemetry_smoke: FLOW_CLI and WORK_DIR must be defined")
endif()

set(report "${WORK_DIR}/telemetry_smoke_report.json")
set(trace "${WORK_DIR}/telemetry_smoke_trace.json")

execute_process(
  COMMAND "${FLOW_CLI}" --design aes --cells 400 --flow ours
          --report "${report}" --trace "${trace}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "flow_cli failed (${rc}):\n${out}\n${err}")
endif()

file(READ "${report}" report_text)
# Every flow phase plus the placer metrics must be present in the report.
foreach(key
    "schema_version" "phases" "spans" "metrics" "options" "place" "ppa"
    "flow.cluster" "flow.shape" "flow.seed_place" "flow.incremental_place"
    "flow.route" "flow.cts" "flow.sta"
    "place.gp.iterations" "place.gp.overflow" "place.gp.hpwl")
  string(FIND "${report_text}" "\"${key}\"" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "report missing \"${key}\":\n${report_text}")
  endif()
endforeach()
# Phase durations must be nonzero: a literal zero seconds means the span
# never actually measured anything.
string(REGEX MATCH "\"seconds\": 0[,\n]" zero_phase "${report_text}")
if(zero_phase)
  message(FATAL_ERROR "report has a zero-duration phase:\n${report_text}")
endif()

file(READ "${trace}" trace_text)
foreach(key "traceEvents" "displayTimeUnit" "flow.cluster")
  string(FIND "${trace_text}" "\"${key}\"" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "trace missing \"${key}\"")
  endif()
endforeach()

message(STATUS "telemetry smoke OK: ${report}")
