# Invariant-check smoke (run via `cmake -P` from ctest, see
# examples/CMakeLists.txt): drives flow_cli end-to-end with --check=full on a
# shrunken design and asserts that (a) the run exits 0 — flow_cli exits 2
# when any validator reports a violation — (b) the stdout summary reports
# zero violations, and (c) the JSON run report carries the per-checker
# "checks" section with every phase validator present.
#
# Inputs: -DFLOW_CLI=<path to flow_cli> -DWORK_DIR=<writable directory>

if(NOT DEFINED FLOW_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "check_smoke: FLOW_CLI and WORK_DIR must be defined")
endif()

set(report "${WORK_DIR}/check_smoke_report.json")

execute_process(
  COMMAND "${FLOW_CLI}" --design aes --cells 400 --flow ours
          --check full --report "${report}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "flow_cli --check full failed (${rc}):\n${out}\n${err}")
endif()

string(FIND "${out}" "check violations: 0 (full level)" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "expected a zero-violation check summary, got:\n${out}")
endif()

file(READ "${report}" report_text)
# The report must record the check level and one entry per phase validator.
foreach(key "checks" "check_level")
  string(FIND "${report_text}" "\"${key}\"" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "report missing \"${key}\":\n${report_text}")
  endif()
endforeach()
foreach(checker "netlist" "cluster" "place" "route")
  string(FIND "${report_text}" "\"checker\": \"${checker}\"" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "report has no ${checker} check entry:\n${report_text}")
  endif()
endforeach()
string(REGEX MATCH "\"violations\": [1-9]" dirty "${report_text}")
if(dirty)
  message(FATAL_ERROR "report records violations:\n${report_text}")
endif()

message(STATUS "check smoke OK: ${report}")
