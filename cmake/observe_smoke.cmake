# Flight-recorder smoke check (run via `cmake -P` from ctest, see
# examples/CMakeLists.txt): drives flow_cli end-to-end with --observe/--qor
# on a shrunken design, validates the event stream and QoR ledger, then
# exercises the full tools/qor_diff.py exit-code contract (0 self-diff,
# 1 regression with --fail-on-regression, 2 usage, 3 missing file, 4 bad
# schema) and renders the HTML dashboard from the recorded stream.
#
# Inputs: -DFLOW_CLI=<path> -DWORK_DIR=<writable dir> -DSOURCE_DIR=<repo root>

if(NOT DEFINED FLOW_CLI OR NOT DEFINED WORK_DIR OR NOT DEFINED SOURCE_DIR)
  message(FATAL_ERROR "observe_smoke: FLOW_CLI, WORK_DIR, SOURCE_DIR required")
endif()

set(events "${WORK_DIR}/observe_smoke_events.json")
set(qor "${WORK_DIR}/observe_smoke.qor.json")
set(report "${WORK_DIR}/observe_smoke_report.json")

execute_process(
  COMMAND "${FLOW_CLI}" --design aes --cells 400 --flow ours
          --observe=${events} --qor=${qor} --report "${report}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "flow_cli failed (${rc}):\n${out}\n${err}")
endif()

# The event stream must carry the schema, every solver stream, and frames.
file(READ "${events}" events_text)
foreach(key
    "ppacd-observe-v1" "place.iter" "place.cg" "route.batch" "route.round"
    "route.heatmap" "sta.level" "sta.slack" "vpr.candidate" "cluster.level"
    "cluster.size" "cluster.cut" "samples" "frames")
  string(FIND "${events_text}" "\"${key}\"" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "event stream missing \"${key}\"")
  endif()
endforeach()

# The QoR ledger must carry final metrics plus convergence summaries.
file(READ "${qor}" qor_text)
foreach(key
    "ppacd-qor-v1" "metrics" "hpwl_um" "rwl_um" "wns_ps" "tns_ns"
    "convergence" "place_iterations" "cg_iterations_total" "route_rounds"
    "slack_p50_ps")
  string(FIND "${qor_text}" "\"${key}\"" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "QoR ledger missing \"${key}\":\n${qor_text}")
  endif()
endforeach()

# The run report folds the event stream in when the recorder was on.
file(READ "${report}" report_text)
string(FIND "${report_text}" "\"observe\"" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "run report missing folded \"observe\" section")
endif()

find_program(PYTHON3 python3)
if(NOT PYTHON3)
  message(STATUS "observe smoke OK (python3 not found; tool contract skipped)")
  return()
endif()

set(qor_diff "${SOURCE_DIR}/tools/qor_diff.py")

# Exit 0: a ledger diffed against itself is regression-free.
execute_process(
  COMMAND "${PYTHON3}" "${qor_diff}" "${qor}" "${qor}" --fail-on-regression
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "qor_diff self-diff: want exit 0, got ${rc}:\n${out}${err}")
endif()

# Exit 1: a 10x-worse HPWL must trip --fail-on-regression. Build the mutant
# by string surgery so this stays stdlib-cmake only.
string(REGEX REPLACE "(\"hpwl_um\": )([0-9.eE+-]+)" "\\1999999999"
       worse_text "${qor_text}")
file(WRITE "${WORK_DIR}/observe_smoke_worse.qor.json" "${worse_text}")
execute_process(
  COMMAND "${PYTHON3}" "${qor_diff}" "${qor}"
          "${WORK_DIR}/observe_smoke_worse.qor.json" --fail-on-regression
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "qor_diff regression: want exit 1, got ${rc}:\n${out}${err}")
endif()
# ... and without --fail-on-regression the same diff is advisory (exit 0).
execute_process(
  COMMAND "${PYTHON3}" "${qor_diff}" "${qor}"
          "${WORK_DIR}/observe_smoke_worse.qor.json"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "qor_diff advisory: want exit 0, got ${rc}:\n${out}${err}")
endif()

# Exit 2: bad flags are a usage error (argparse).
execute_process(
  COMMAND "${PYTHON3}" "${qor_diff}" --no-such-flag
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "qor_diff usage: want exit 2, got ${rc}")
endif()

# Exit 3: missing input file.
execute_process(
  COMMAND "${PYTHON3}" "${qor_diff}" "${WORK_DIR}/no_such_ledger.json" "${qor}"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "qor_diff missing file: want exit 3, got ${rc}")
endif()

# Exit 4: parses as JSON but is not a ppacd-qor-v1 ledger.
file(WRITE "${WORK_DIR}/observe_smoke_bad.json" "{\"schema\": \"nope\"}")
execute_process(
  COMMAND "${PYTHON3}" "${qor_diff}" "${WORK_DIR}/observe_smoke_bad.json" "${qor}"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 4)
  message(FATAL_ERROR "qor_diff bad schema: want exit 4, got ${rc}")
endif()

# Dashboard: one self-contained HTML file with inline SVG charts.
execute_process(
  COMMAND "${PYTHON3}" "${SOURCE_DIR}/tools/flow_dashboard.py" "${events}"
          -o "${WORK_DIR}/observe_smoke_dashboard.html"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "flow_dashboard failed (${rc}):\n${out}${err}")
endif()
file(READ "${WORK_DIR}/observe_smoke_dashboard.html" dash_text)
foreach(key "<svg" "<polyline" "Congestion heatmap" "Endpoint slack")
  string(FIND "${dash_text}" "${key}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "dashboard missing \"${key}\"")
  endif()
endforeach()

message(STATUS "observe smoke OK: ${events}")
