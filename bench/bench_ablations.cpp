/// \file bench_ablations.cpp
/// \brief Ablations of the design choices DESIGN.md section 5 calls out:
/// hierarchy grouping constraints, timing cost, switching cost, the
/// footnote-2 singleton policy, seed scattering, region-release schedule,
/// and the optional detailed-placement stage. Run on aes/jpeg/ariane with
/// the OpenROAD-like flow; rWL normalized to the full "Ours" configuration.
#include <cstdio>
#include <functional>

#include "common.hpp"

int main() {
  using namespace ppacd;

  struct Variant {
    const char* label;
    std::function<void(flow::FlowOptions&)> tweak;
  };
  const Variant variants[] = {
      {"Ours (full)", [](flow::FlowOptions&) {}},
      {"no grouping", [](flow::FlowOptions& o) { o.fc.use_grouping = false; }},
      {"no timing", [](flow::FlowOptions& o) { o.fc.use_timing = false; }},
      {"no switching", [](flow::FlowOptions& o) { o.fc.use_switching = false; }},
      {"merge singletons",
       [](flow::FlowOptions& o) { o.fc.merge_singletons = true; }},
      {"center seeding", [](flow::FlowOptions& o) { o.scatter_seed = false; }},
      {"+detailed place",
       [](flow::FlowOptions& o) { o.detailed_placement = true; }},
      {"+timing opt",
       [](flow::FlowOptions& o) { o.timing_optimization = true; }},
  };

  util::Table table("Ablations of the clustering-driven flow "
                    "(rWL/HPWL normalized to 'Ours (full)' per design)");
  table.set_header({"Design", "Variant", "HPWL", "rWL", "WNS", "TNS", "CPU(s)"});
  util::CsvWriter csv;
  csv.set_header({"design", "variant", "hpwl_norm", "rwl_norm", "wns_ps",
                  "tns_ns", "cpu_s"});

  for (const gen::DesignSpec& spec : gen::small_design_specs()) {
    double base_hpwl = 0.0;
    double base_rwl = 0.0;
    for (const Variant& variant : variants) {
      netlist::Netlist nl = bench::make_design(spec);
      flow::FlowOptions options = bench::design_flow_options(spec);
      options.shape_mode = flow::ShapeMode::kVpr;
      variant.tweak(options);
      const flow::FlowResult run = flow::run_clustered_flow(nl, options);
      const flow::PpaOutcome ppa =
          flow::evaluate_ppa(nl, run.place.positions, options);
      if (base_hpwl == 0.0) {
        base_hpwl = run.place.hpwl_um;
        base_rwl = ppa.rwl_um;
      }
      const double cpu =
          run.place.clustering_seconds + run.place.placement_seconds;
      table.add_row({spec.name, variant.label,
                     bench::fmt(run.place.hpwl_um / base_hpwl, 3),
                     bench::fmt(ppa.rwl_um / base_rwl, 3),
                     bench::fmt(ppa.wns_ps, 0), bench::fmt(ppa.tns_ns, 2),
                     bench::fmt(cpu, 2)});
      csv.add_row({spec.name, variant.label,
                   bench::fmt(run.place.hpwl_um / base_hpwl, 4),
                   bench::fmt(ppa.rwl_um / base_rwl, 4),
                   bench::fmt(ppa.wns_ps, 1), bench::fmt(ppa.tns_ns, 3),
                   bench::fmt(cpu, 3)});
    }
  }
  table.print();
  bench::write_results(csv, "ablations");
  std::printf("\nExpected directions: dropping grouping or timing degrades\n"
              "HPWL/TNS; merging singletons degrades PPA (paper footnote 2);\n"
              "center seeding slows convergence (worse HPWL at equal budget);\n"
              "detailed placement only improves.\n");
  return 0;
}
