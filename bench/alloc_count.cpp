#include "alloc_count.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_bytes{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::size_t alignment) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

// Replacement global allocation functions (C++ [new.delete] replaceable).
// Deletes must pair with the mallocs above.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ppacd::bench {

AllocSnapshot alloc_snapshot() {
  return {g_allocs.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed)};
}

AllocSnapshot alloc_delta(const AllocSnapshot& since) {
  const AllocSnapshot now = alloc_snapshot();
  return {now.allocs - since.allocs, now.bytes - since.bytes};
}

}  // namespace ppacd::bench
