/// \file bench_table3.cpp
/// \brief Table 3: post-route PPA with the OpenROAD-like flow, Default vs
/// Ours, on the four designs OpenROAD can route in the paper
/// (aes, jpeg, ariane, BlackParrot). rWL normalized to Default; WNS in ps,
/// TNS in ns, Power in W.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace ppacd;
  util::Table table("Table 3: Post-route results with the OpenROAD-like flow");
  table.set_header({"Design", "Flow", "rWL", "WNS", "TNS", "Power"});
  util::CsvWriter csv;
  csv.set_header({"design", "flow", "rwl_norm", "rwl_um", "wns_ps", "tns_ns",
                  "power_w"});

  for (const gen::DesignSpec& spec : gen::routable_design_specs()) {
    const flow::FlowOptions base = bench::design_flow_options(spec);

    netlist::Netlist nl_default = bench::make_design(spec);
    const flow::FlowResult def = flow::run_default_flow(nl_default, base);
    const flow::PpaOutcome def_ppa =
        flow::evaluate_ppa(nl_default, def.place.positions, base);

    netlist::Netlist nl_ours = bench::make_design(spec);
    flow::FlowOptions ours_options = base;
    ours_options.shape_mode = flow::ShapeMode::kVpr;
    const flow::FlowResult ours = flow::run_clustered_flow(nl_ours, ours_options);
    const flow::PpaOutcome ours_ppa =
        flow::evaluate_ppa(nl_ours, ours.place.positions, ours_options);

    auto add = [&](const char* label, const flow::PpaOutcome& ppa) {
      const double rwl_norm = ppa.rwl_um / def_ppa.rwl_um;
      table.add_row({spec.name, label, bench::fmt(rwl_norm, 2),
                     bench::fmt(ppa.wns_ps, 0), bench::fmt(ppa.tns_ns, 2),
                     bench::fmt(ppa.power_w, 4)});
      csv.add_row({spec.name, label, bench::fmt(rwl_norm, 4),
                   bench::fmt(ppa.rwl_um, 1), bench::fmt(ppa.wns_ps, 1),
                   bench::fmt(ppa.tns_ns, 3), bench::fmt(ppa.power_w, 6)});
    };
    add("Default", def_ppa);
    add("Ours", ours_ppa);
  }
  table.print();
  bench::write_results(csv, "table3");
  std::printf("\nUnits as in the paper: WNS ps, TNS ns, Power W. Expected shape:\n"
              "Ours improves WNS/TNS at roughly equal rWL and power.\n");
  return 0;
}
