/// \file common.hpp
/// \brief Shared infrastructure for the table/figure bench binaries.
#pragma once

#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "gen/designs.hpp"
#include "gen/generator.hpp"
#include "ml/trainer.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace ppacd::bench {

/// Scale factor for design sizes, read from PPACD_SCALE (default 1.0).
/// Values < 1 shrink every generated design for quick smoke runs.
double size_scale();

/// The shared standard-cell library.
const liberty::Library& library();

/// Generates a paper design, applying size_scale().
netlist::Netlist make_design(const gen::DesignSpec& spec);

/// Flow options configured for one design: its clock period, the scaled
/// V-P&R instance threshold (footnote 3 scaled with the design sizes; see
/// DESIGN.md section 6), and default Eq. 2/3 hyperparameters.
flow::FlowOptions design_flow_options(const gen::DesignSpec& spec);

/// Formats with fixed decimals.
std::string fmt(double value, int decimals);

/// Writes `csv` to bench_results/<name>.csv (creating the directory) and
/// prints the path.
void write_results(const util::CsvWriter& csv, const std::string& name);

/// Dataset + training used by bench_model_eval and bench_table6: clusters
/// from aes/jpeg/ariane under perturbed clustering configs, labelled with
/// exact V-P&R (Sec. 3.2's data generation at reproduction scale), then the
/// Fig. 4 model trained with the paper's split ratio. `designs_keepalive`
/// must outlive nothing -- the dataset copies what it needs.
struct ModelBundle {
  ml::Dataset dataset;
  ml::TrainResult result;
  double dataset_seconds = 0.0;
  double training_seconds = 0.0;
};
ModelBundle build_and_train_model();

}  // namespace ppacd::bench
