/// \file bench_shape_study.cpp
/// \brief Paper section 5 (ongoing work): effect of non-rectangular cluster
/// footprints. For sample clusters of ariane/jpeg, compares the best
/// rectangular V-P&R candidate against L-shaped dies (a corner notch of
/// 15/25/35 % of the gross area, modeled as a placement blockage), at the
/// same usable utilization.
#include <cstdio>

#include "cluster/clustered_netlist.hpp"
#include "cluster/fc_multilevel.hpp"
#include "common.hpp"
#include "netlist/subnetlist.hpp"
#include "vpr/vpr.hpp"

int main() {
  using namespace ppacd;
  util::Table table("Cluster footprint study: rectangle vs L-shape (TotalCost)");
  table.set_header({"Design", "Cluster", "#Cells", "Rect best", "L 15%", "L 25%",
                    "L 35%", "Winner"});
  util::CsvWriter csv;
  csv.set_header({"design", "cluster", "cells", "rect_best", "l15", "l25", "l35"});

  for (const char* name : {"ariane", "jpeg"}) {
    const gen::DesignSpec spec = gen::design_spec(name);
    const netlist::Netlist nl = bench::make_design(spec);
    cluster::FcOptions fc;
    fc.target_cluster_count =
        std::max(8, static_cast<int>(nl.cell_count()) / 120);
    fc.max_cluster_area_factor = 3.0;
    const cluster::FcResult fc_result =
        cluster::fc_multilevel_cluster(nl, cluster::FcPpaInputs{}, fc);
    const cluster::ClusteredNetlist clustered = cluster::build_clustered_netlist(
        nl, fc_result.cluster_of_cell, fc_result.cluster_count);

    // The three largest clusters.
    std::vector<cluster::ClusterId> order;
    order.reserve(clustered.cluster_count());
    for (const cluster::ClusterId c : clustered.cluster_ids()) order.push_back(c);
    std::sort(order.begin(), order.end(),
              [&](cluster::ClusterId a, cluster::ClusterId b) {
      return clustered.clusters[a].cells.size() > clustered.clusters[b].cells.size();
    });

    const vpr::VprOptions options;
    for (int k = 0; k < 3 && k < static_cast<int>(order.size()); ++k) {
      const cluster::Cluster& c = clustered.clusters[order[static_cast<std::size_t>(k)]];
      const netlist::SubNetlist sub = netlist::extract_subnetlist(nl, c.cells);

      const vpr::VprResult rect = vpr::run_vpr(sub.netlist, options);
      const cluster::ClusterShape base = rect.best().shape;
      double best_l = 1e18;
      double l_costs[3];
      const double notches[3] = {0.15, 0.25, 0.35};
      for (int v = 0; v < 3; ++v) {
        l_costs[v] =
            vpr::evaluate_l_shape(sub.netlist, base, notches[v], options)
                .total_cost;
        best_l = std::min(best_l, l_costs[v]);
      }
      table.add_row({name, std::to_string(k), std::to_string(c.cells.size()),
                     bench::fmt(rect.best().total_cost, 4),
                     bench::fmt(l_costs[0], 4), bench::fmt(l_costs[1], 4),
                     bench::fmt(l_costs[2], 4),
                     rect.best().total_cost <= best_l ? "rect" : "L"});
      csv.add_row({name, std::to_string(k), std::to_string(c.cells.size()),
                   bench::fmt(rect.best().total_cost, 5), bench::fmt(l_costs[0], 5),
                   bench::fmt(l_costs[1], 5), bench::fmt(l_costs[2], 5)});
    }
  }
  table.print();
  bench::write_results(csv, "shape_study");
  std::printf("\nThe paper leaves non-rectangular footprints as future work;\n"
              "this study shows how the existing V-P&R cost compares them.\n"
              "L-shapes pay a longer boundary (more HPWL) for floorplan\n"
              "flexibility the single-cluster view cannot credit, so the\n"
              "rectangle usually wins in isolation.\n");
  return 0;
}
