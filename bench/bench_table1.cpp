/// \file bench_table1.cpp
/// \brief Table 1: specifications of benchmarks (#insts, #nets, TCP).
///
/// The paper's designs are proprietary-toolchain artifacts of open RTL; this
/// binary regenerates our scaled synthetic stand-ins and prints the same
/// columns (TCP_Inv masked in the paper, reported as '-' here as well).
#include <cstdio>

#include "common.hpp"
#include "netlist/stats.hpp"

int main() {
  using namespace ppacd;
  util::Table table("Table 1: Specifications of benchmarks (scaled reproduction)");
  table.set_header({"Design (NG45-like)", "#Insts", "#Nets", "#Regs", "#Modules",
                    "TCP_OR (ns)", "TCP_Inv"});
  util::CsvWriter csv;
  csv.set_header({"design", "insts", "nets", "regs", "modules", "tcp_or_ns"});

  for (const gen::DesignSpec& spec : gen::all_design_specs()) {
    const netlist::Netlist nl = bench::make_design(spec);
    const netlist::NetlistStats stats = netlist::compute_stats(nl);
    table.add_row({spec.name, std::to_string(stats.cell_count),
                   std::to_string(stats.net_count),
                   std::to_string(stats.register_count),
                   std::to_string(stats.module_count),
                   bench::fmt(spec.clock_period_ps / 1000.0, 2), "-"});
    csv.add_row({spec.name, std::to_string(stats.cell_count),
                 std::to_string(stats.net_count),
                 std::to_string(stats.register_count),
                 std::to_string(stats.module_count),
                 bench::fmt(spec.clock_period_ps / 1000.0, 2)});
  }
  table.print();
  bench::write_results(csv, "table1");
  std::printf("\nNote: instance counts are scaled per DESIGN.md section 6; the\n"
              "paper's size ladder (aes smallest ... MemPool Group largest) and\n"
              "hierarchy topologies are preserved. TCP_Inv is masked as in the paper.\n");
  return 0;
}
