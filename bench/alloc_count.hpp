/// \file alloc_count.hpp
/// \brief Process-wide heap allocation counters for the perf harness.
///
/// bench binaries that link alloc_count.cpp get a replacement global
/// operator new/delete that bumps two relaxed atomics per allocation. The
/// counters feed the allocs/op and bytes/op columns of BENCH_perf.json: a
/// kernel whose steady-state loop allocates nothing shows ~0 for both.
/// Counting costs two relaxed fetch_adds per allocation, which is noise next
/// to the allocation itself; the timing columns stay comparable with and
/// without the hook.
#pragma once

#include <cstdint>

namespace ppacd::bench {

struct AllocSnapshot {
  std::uint64_t allocs = 0;
  std::uint64_t bytes = 0;
};

/// Current totals since process start. Zeros if the hook is not linked in.
AllocSnapshot alloc_snapshot();

/// allocs/bytes since `since`.
AllocSnapshot alloc_delta(const AllocSnapshot& since);

}  // namespace ppacd::bench
