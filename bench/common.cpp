#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "telemetry/telemetry.hpp"
#include "util/string_utils.hpp"
#include "util/timer.hpp"

namespace ppacd::bench {

double size_scale() {
  static const double scale = [] {
    const char* env = std::getenv("PPACD_SCALE");
    if (env == nullptr) return 1.0;
    const double value = std::atof(env);
    return value > 0.0 ? value : 1.0;
  }();
  return scale;
}

const liberty::Library& library() {
  static const liberty::Library lib = liberty::Library::nangate45_like();
  return lib;
}

netlist::Netlist make_design(const gen::DesignSpec& spec) {
  gen::DesignSpec scaled = spec;
  scaled.target_cells =
      std::max(200, static_cast<int>(spec.target_cells * size_scale()));
  return gen::generate(library(), scaled);
}

flow::FlowOptions design_flow_options(const gen::DesignSpec& spec) {
  flow::FlowOptions options;
  options.clock_period_ps = spec.clock_period_ps;
  // Footnote 3 uses 200 instances on million-cell designs; with our ~20-100x
  // smaller designs and cells/100 coarsening targets, 30 instances puts a
  // comparable fraction of clusters above the threshold.
  options.vpr.min_cluster_instances =
      std::max(10, static_cast<int>(30 * size_scale()));
  return options;
}

std::string fmt(double value, int decimals) {
  return util::format_double(value, decimals);
}

void write_results(const util::CsvWriter& csv, const std::string& name) {
  std::filesystem::create_directories("bench_results");
  const std::string path = "bench_results/" + name + ".csv";
  if (csv.write(path)) {
    std::printf("results written to %s\n", path.c_str());
  } else {
    std::printf("WARNING: could not write %s\n", path.c_str());
  }
  // Telemetry artifacts for the whole bench run so far: a metric/span summary
  // and a Chrome trace next to the table. Best-effort -- tables stay valid
  // even if these fail (e.g. telemetry compiled out writes empty summaries).
  telemetry::write_summary("bench_results/" + name + ".report.json", name);
  telemetry::write_chrome_trace("bench_results/" + name + ".trace.json");
}

ModelBundle build_and_train_model() {
  ModelBundle bundle;

  {
    util::ScopedTimer timer(bundle.dataset_seconds);
    std::vector<netlist::Netlist> designs;
    std::vector<const netlist::Netlist*> design_ptrs;
    for (const gen::DesignSpec& spec : gen::small_design_specs()) {
      designs.push_back(make_design(spec));
    }
    for (const netlist::Netlist& nl : designs) design_ptrs.push_back(&nl);

    ml::DatasetOptions dataset_options;
    dataset_options.min_cluster_size = 25;
    dataset_options.max_cluster_size = 250;
    dataset_options.max_clusters_per_design =
        std::max(10, static_cast<int>(80 * size_scale()));
    dataset_options.clustering_configs = 8;
    vpr::VprOptions vpr_options;
    bundle.dataset = ml::build_dataset(design_ptrs, dataset_options, vpr_options);
  }

  {
    util::ScopedTimer timer(bundle.training_seconds);
    ml::TrainOptions train_options;
    train_options.epochs = 22;
    train_options.batch_size = 16;
    bundle.result = ml::train_total_cost_model(bundle.dataset, train_options);
  }
  return bundle;
}

}  // namespace ppacd::bench
