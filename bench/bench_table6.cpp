/// \file bench_table6.cpp
/// \brief Table 6: cluster-shape ablation with the Innovus-like flow --
/// Random vs Uniform (util 0.9, AR 1.0) vs ML-accelerated V-P&R, on
/// ariane / jpeg / MegaBoom. rWL normalized to the Uniform row per design,
/// as in the paper.
#include <cstdio>

#include "common.hpp"
#include "features/features.hpp"

int main() {
  using namespace ppacd;
  std::printf("training the TotalCost model (one-time cost the ML path amortizes)...\n");
  const bench::ModelBundle bundle = bench::build_and_train_model();
  std::printf("dataset %.1fs (%zu clusters), training %.1fs, test MAE %.3f\n\n",
              bundle.dataset_seconds, bundle.dataset.clusters.size(),
              bundle.training_seconds, bundle.result.test.mae);
  const vpr::ShapeCostPredictor predictor =
      bundle.result.model->predictor(features::FeatureOptions{});

  util::Table table("Table 6: Evaluation of the ML-based V-P&R framework");
  table.set_header({"Design", "Shape", "rWL", "WNS", "TNS", "Power"});
  util::CsvWriter csv;
  csv.set_header({"design", "shape", "rwl_norm", "wns_ps", "tns_ns", "power_w"});

  for (const char* name : {"ariane", "jpeg", "MegaBoom"}) {
    const gen::DesignSpec spec = gen::design_spec(name);
    flow::FlowOptions base = bench::design_flow_options(spec);
    base.tool = flow::Tool::kInnovusLike;
    // Shape leverage needs macro-scale clusters; this ablation runs in the
    // paper's coarse-cluster regime (clusters of ~100+ instances, V-P&R on
    // the large ones, fences held through most of the incremental pass).
    base.fc.target_cluster_count = 0;  // set per design below
    base.fc.max_cluster_area_factor = 3.0;
    base.vpr.min_cluster_instances =
        std::max(30, static_cast<int>(100 * bench::size_scale()));
    base.placer.region_release_fraction = 0.75;

    struct Variant {
      const char* label;
      flow::ShapeMode mode;
    };
    const Variant variants[] = {
        {"Random", flow::ShapeMode::kRandom},
        {"Uniform", flow::ShapeMode::kUniform},
        {"V-P&R_ML", flow::ShapeMode::kVprMl},
    };

    double uniform_rwl = 0.0;
    std::vector<std::pair<const char*, flow::PpaOutcome>> rows;
    for (const Variant& variant : variants) {
      netlist::Netlist nl = bench::make_design(spec);
      flow::FlowOptions options = base;
      options.fc.target_cluster_count =
          std::max(8, static_cast<int>(nl.cell_count()) / 120);
      options.shape_mode = variant.mode;
      options.ml_predictor = &predictor;
      const flow::FlowResult run = flow::run_clustered_flow(nl, options);
      const flow::PpaOutcome ppa =
          flow::evaluate_ppa(nl, run.place.positions, options);
      if (variant.mode == flow::ShapeMode::kUniform) uniform_rwl = ppa.rwl_um;
      rows.emplace_back(variant.label, ppa);
    }
    for (const auto& [label, ppa] : rows) {
      const double rwl_norm = ppa.rwl_um / uniform_rwl;
      table.add_row({spec.name, label, bench::fmt(rwl_norm, 3),
                     bench::fmt(ppa.wns_ps, 0), bench::fmt(ppa.tns_ns, 2),
                     bench::fmt(ppa.power_w, 4)});
      csv.add_row({spec.name, label, bench::fmt(rwl_norm, 4),
                   bench::fmt(ppa.wns_ps, 1), bench::fmt(ppa.tns_ns, 3),
                   bench::fmt(ppa.power_w, 6)});
    }
  }
  table.print();
  bench::write_results(csv, "table6");
  std::printf("\nrWL normalized to the Uniform assignment per design. Expected\n"
              "shape (paper): V-P&R_ML beats both Random and Uniform on WNS/TNS\n"
              "with equal-or-better rWL and power.\n");
  return 0;
}
