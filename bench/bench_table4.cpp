/// \file bench_table4.cpp
/// \brief Table 4: post-route PPA with the Innovus-like flow (region
/// constraints + incremental placement) on all six designs, Default vs Ours.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace ppacd;
  util::Table table("Table 4: Post-route results with the Innovus-like flow");
  table.set_header({"Design", "Flow", "rWL", "WNS", "TNS", "Power"});
  util::CsvWriter csv;
  csv.set_header({"design", "flow", "rwl_norm", "rwl_um", "wns_ps", "tns_ns",
                  "power_w"});

  for (const gen::DesignSpec& spec : gen::all_design_specs()) {
    flow::FlowOptions base = bench::design_flow_options(spec);
    base.tool = flow::Tool::kInnovusLike;

    netlist::Netlist nl_default = bench::make_design(spec);
    const flow::FlowResult def = flow::run_default_flow(nl_default, base);
    const flow::PpaOutcome def_ppa =
        flow::evaluate_ppa(nl_default, def.place.positions, base);

    netlist::Netlist nl_ours = bench::make_design(spec);
    flow::FlowOptions ours_options = base;
    ours_options.shape_mode = flow::ShapeMode::kVpr;
    const flow::FlowResult ours = flow::run_clustered_flow(nl_ours, ours_options);
    const flow::PpaOutcome ours_ppa =
        flow::evaluate_ppa(nl_ours, ours.place.positions, ours_options);

    auto add = [&](const char* label, const flow::PpaOutcome& ppa) {
      const double rwl_norm = ppa.rwl_um / def_ppa.rwl_um;
      table.add_row({spec.name, label, bench::fmt(rwl_norm, 3),
                     bench::fmt(ppa.wns_ps, 0), bench::fmt(ppa.tns_ns, 2),
                     bench::fmt(ppa.power_w, 4)});
      csv.add_row({spec.name, label, bench::fmt(rwl_norm, 4),
                   bench::fmt(ppa.rwl_um, 1), bench::fmt(ppa.wns_ps, 1),
                   bench::fmt(ppa.tns_ns, 3), bench::fmt(ppa.power_w, 6)});
    };
    add("Default", def_ppa);
    add("Ours", ours_ppa);
  }
  table.print();
  bench::write_results(csv, "table4");
  std::printf("\nUnits: WNS ps, TNS ns, Power W. Expected shape (paper): Ours\n"
              "improves WNS/TNS on most designs with ~equal rWL/power.\n");
  return 0;
}
