/// \file bench_table5.cpp
/// \brief Table 5: PPA-awareness ablation -- Leiden vs plain multilevel FC
/// (MFC) vs Ours on aes/jpeg/ariane (OpenROAD-like flow, post-route PPA,
/// rWL normalized to the Default flow as in the paper).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace ppacd;
  util::Table table("Table 5: Evaluation of the PPA-aware clustering framework");
  table.set_header({"Design", "Method", "rWL", "WNS", "TNS", "Power"});
  util::CsvWriter csv;
  csv.set_header({"design", "method", "rwl_norm", "wns_ps", "tns_ns", "power_w"});

  struct Method {
    const char* label;
    flow::ClusterMethod method;
    bool ppa_costs;
  };
  const Method methods[] = {
      {"Leiden", flow::ClusterMethod::kLeiden, false},
      {"MFC", flow::ClusterMethod::kMfc, false},
      {"Ours", flow::ClusterMethod::kPpaAware, true},
  };

  for (const gen::DesignSpec& spec : gen::small_design_specs()) {
    const flow::FlowOptions base = bench::design_flow_options(spec);

    netlist::Netlist nl_default = bench::make_design(spec);
    const flow::FlowResult def = flow::run_default_flow(nl_default, base);
    const flow::PpaOutcome def_ppa =
        flow::evaluate_ppa(nl_default, def.place.positions, base);

    for (const Method& m : methods) {
      netlist::Netlist nl = bench::make_design(spec);
      flow::FlowOptions options = base;
      options.cluster_method = m.method;
      options.shape_mode = flow::ShapeMode::kVpr;
      const flow::FlowResult run = flow::run_clustered_flow(nl, options);
      const flow::PpaOutcome ppa =
          flow::evaluate_ppa(nl, run.place.positions, options);
      const double rwl_norm = ppa.rwl_um / def_ppa.rwl_um;
      table.add_row({spec.name, m.label, bench::fmt(rwl_norm, 3),
                     bench::fmt(ppa.wns_ps, 0), bench::fmt(ppa.tns_ns, 2),
                     bench::fmt(ppa.power_w, 4)});
      csv.add_row({spec.name, m.label, bench::fmt(rwl_norm, 4),
                   bench::fmt(ppa.wns_ps, 1), bench::fmt(ppa.tns_ns, 3),
                   bench::fmt(ppa.power_w, 6)});
    }
  }
  table.print();
  bench::write_results(csv, "table5");
  std::printf("\nExpected shape (paper): Ours beats Leiden and MFC on rWL, WNS,\n"
              "TNS and Power, confirming the value of hierarchy + timing +\n"
              "switching awareness in the clustering objective.\n");
  return 0;
}
