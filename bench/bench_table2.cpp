/// \file bench_table2.cpp
/// \brief Table 2: post-place HPWL and CPU, [9] (blob placement) and Ours,
/// both normalized to the default flow.
///
/// CPU follows the paper's accounting: cumulative clustering + seeded
/// placement runtime, divided by the default flow's placement runtime.
/// Shape-selection (V-P&R) time is reported separately since the paper's
/// runtime comparison covers clustering and placement. The paper lists NA
/// for [9] on MegaBoom/MemPool Group because Louvain's runtime exploded at
/// millions of cells; our scaled designs stay tractable so measured values
/// are printed, flagged with '*'.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace ppacd;
  util::Table table("Table 2: Post-place results with the OpenROAD-like flow "
                    "(normalized to Default)");
  table.set_header({"Design", "[9] HPWL", "[9] CPU", "Ours HPWL", "Ours CPU"});
  util::CsvWriter csv;
  csv.set_header({"design", "default_hpwl_um", "default_cpu_s", "blob_hpwl_norm",
                  "blob_cpu_norm", "ours_hpwl_norm", "ours_cpu_norm",
                  "ours_vpr_s", "ours_clusters"});

  double blob_cpu_sum = 0.0;
  double ours_cpu_sum = 0.0;
  int designs = 0;
  for (const gen::DesignSpec& spec : gen::all_design_specs()) {
    const flow::FlowOptions base = bench::design_flow_options(spec);

    netlist::Netlist nl_default = bench::make_design(spec);
    const flow::FlowResult def = flow::run_default_flow(nl_default, base);

    // Blob placement [9]: Louvain communities, uniform shapes, seeded flow.
    netlist::Netlist nl_blob = bench::make_design(spec);
    flow::FlowOptions blob_options = base;
    blob_options.cluster_method = flow::ClusterMethod::kLouvainBlob;
    blob_options.shape_mode = flow::ShapeMode::kUniform;
    const flow::FlowResult blob = flow::run_clustered_flow(nl_blob, blob_options);

    // Ours: PPA-aware clustering + V-P&R cluster shapes.
    netlist::Netlist nl_ours = bench::make_design(spec);
    flow::FlowOptions ours_options = base;
    ours_options.shape_mode = flow::ShapeMode::kVpr;
    const flow::FlowResult ours = flow::run_clustered_flow(nl_ours, ours_options);

    const double def_cpu = def.place.placement_seconds;
    auto cpu_of = [](const flow::FlowResult& r) {
      return r.place.clustering_seconds + r.place.placement_seconds;
    };
    const bool large = spec.target_cells > 15000;
    const double blob_hpwl = blob.place.hpwl_um / def.place.hpwl_um;
    const double blob_cpu = cpu_of(blob) / def_cpu;
    const double ours_hpwl = ours.place.hpwl_um / def.place.hpwl_um;
    const double ours_cpu = cpu_of(ours) / def_cpu;
    blob_cpu_sum += blob_cpu;
    ours_cpu_sum += ours_cpu;
    ++designs;

    table.add_row({spec.name,
                   bench::fmt(blob_hpwl, 3) + (large ? "*" : ""),
                   bench::fmt(blob_cpu, 3) + (large ? "*" : ""),
                   bench::fmt(ours_hpwl, 3), bench::fmt(ours_cpu, 3)});
    csv.add_row({spec.name, bench::fmt(def.place.hpwl_um, 1),
                 bench::fmt(def_cpu, 4), bench::fmt(blob_hpwl, 4),
                 bench::fmt(blob_cpu, 4), bench::fmt(ours_hpwl, 4),
                 bench::fmt(ours_cpu, 4), bench::fmt(ours.place.shaping_seconds, 3),
                 std::to_string(ours.place.cluster_count)});
  }
  table.print();
  bench::write_results(csv, "table2");
  std::printf("\n* paper reports NA for [9] on these designs (Louvain runtime\n"
              "  blow-up at full scale); scaled designs stay tractable here.\n"
              "Average CPU vs default: [9] %.2f, Ours %.2f (paper: ours ~0.64,\n"
              "i.e. 36%% average global-placement runtime improvement).\n",
              blob_cpu_sum / designs, ours_cpu_sum / designs);
  return 0;
}
