/// \file bench_table2.cpp
/// \brief Table 2: post-place HPWL and CPU, [9] (blob placement) and Ours,
/// both normalized to the default flow.
///
/// CPU follows the paper's accounting: cumulative clustering + seeded
/// placement runtime, divided by the default flow's placement runtime.
/// Shape-selection (V-P&R) time is reported separately since the paper's
/// runtime comparison covers clustering and placement. The paper lists NA
/// for [9] on MegaBoom/MemPool Group because Louvain's runtime exploded at
/// millions of cells; our scaled designs stay tractable so measured values
/// are printed, flagged with '*'.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "telemetry/json.hpp"

namespace {

/// One timed flow phase, reported in the same ppacd-bench-perf-v1 schema as
/// bench_microkernels so tools/bench_diff.py can compare runs of either.
struct PerfEntry {
  std::string name;
  double ns_per_op = 0.0;
};

bool write_perf_json(const std::string& path,
                     const std::vector<PerfEntry>& entries) {
  using ppacd::telemetry::Json;
  Json report = Json::object();
  report.set("schema", "ppacd-bench-perf-v1");
  report.set("binary", "bench_table2");
  Json list = Json::array();
  for (const PerfEntry& e : entries) {
    Json entry = Json::object();
    entry.set("name", e.name);
    entry.set("ns_per_op", e.ns_per_op);
    entry.set("allocs_per_op", 0.0);  // flow timers do not count allocations
    entry.set("bytes_per_op", 0.0);
    entry.set("iterations", static_cast<std::int64_t>(1));
    list.push_back(std::move(entry));
  }
  report.set("kernels", std::move(list));
  std::ofstream out(path);
  if (!out) return false;
  out << report.dump(2) << "\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppacd;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  std::vector<PerfEntry> perf;
  util::Table table("Table 2: Post-place results with the OpenROAD-like flow "
                    "(normalized to Default)");
  table.set_header({"Design", "[9] HPWL", "[9] CPU", "Ours HPWL", "Ours CPU"});
  util::CsvWriter csv;
  csv.set_header({"design", "default_hpwl_um", "default_cpu_s", "blob_hpwl_norm",
                  "blob_cpu_norm", "ours_hpwl_norm", "ours_cpu_norm",
                  "ours_vpr_s", "ours_clusters"});

  double blob_cpu_sum = 0.0;
  double ours_cpu_sum = 0.0;
  int designs = 0;
  for (const gen::DesignSpec& spec : gen::all_design_specs()) {
    const flow::FlowOptions base = bench::design_flow_options(spec);

    netlist::Netlist nl_default = bench::make_design(spec);
    const flow::FlowResult def = flow::run_default_flow(nl_default, base);

    // Blob placement [9]: Louvain communities, uniform shapes, seeded flow.
    netlist::Netlist nl_blob = bench::make_design(spec);
    flow::FlowOptions blob_options = base;
    blob_options.cluster_method = flow::ClusterMethod::kLouvainBlob;
    blob_options.shape_mode = flow::ShapeMode::kUniform;
    const flow::FlowResult blob = flow::run_clustered_flow(nl_blob, blob_options);

    // Ours: PPA-aware clustering + V-P&R cluster shapes.
    netlist::Netlist nl_ours = bench::make_design(spec);
    flow::FlowOptions ours_options = base;
    ours_options.shape_mode = flow::ShapeMode::kVpr;
    const flow::FlowResult ours = flow::run_clustered_flow(nl_ours, ours_options);

    const double def_cpu = def.place.placement_seconds;
    auto cpu_of = [](const flow::FlowResult& r) {
      return r.place.clustering_seconds + r.place.placement_seconds;
    };
    const bool large = spec.target_cells > 15000;
    const double blob_hpwl = blob.place.hpwl_um / def.place.hpwl_um;
    const double blob_cpu = cpu_of(blob) / def_cpu;
    const double ours_hpwl = ours.place.hpwl_um / def.place.hpwl_um;
    const double ours_cpu = cpu_of(ours) / def_cpu;
    blob_cpu_sum += blob_cpu;
    ours_cpu_sum += ours_cpu;
    ++designs;

    table.add_row({spec.name,
                   bench::fmt(blob_hpwl, 3) + (large ? "*" : ""),
                   bench::fmt(blob_cpu, 3) + (large ? "*" : ""),
                   bench::fmt(ours_hpwl, 3), bench::fmt(ours_cpu, 3)});
    csv.add_row({spec.name, bench::fmt(def.place.hpwl_um, 1),
                 bench::fmt(def_cpu, 4), bench::fmt(blob_hpwl, 4),
                 bench::fmt(blob_cpu, 4), bench::fmt(ours_hpwl, 4),
                 bench::fmt(ours_cpu, 4), bench::fmt(ours.place.shaping_seconds, 3),
                 std::to_string(ours.place.cluster_count)});
    perf.push_back({"table2/" + std::string(spec.name) + "/default_place",
                    def_cpu * 1e9});
    perf.push_back({"table2/" + std::string(spec.name) + "/blob_cluster_place",
                    cpu_of(blob) * 1e9});
    perf.push_back({"table2/" + std::string(spec.name) + "/ours_cluster_place",
                    cpu_of(ours) * 1e9});
  }
  table.print();
  bench::write_results(csv, "table2");
  std::printf("\n* paper reports NA for [9] on these designs (Louvain runtime\n"
              "  blow-up at full scale); scaled designs stay tractable here.\n"
              "Average CPU vs default: [9] %.2f, Ours %.2f (paper: ours ~0.64,\n"
              "i.e. 36%% average global-placement runtime improvement).\n",
              blob_cpu_sum / designs, ours_cpu_sum / designs);
  if (!json_path.empty()) {
    if (!write_perf_json(json_path, perf)) {
      std::fprintf(stderr, "could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("perf report written to %s\n", json_path.c_str());
  }
  return 0;
}
