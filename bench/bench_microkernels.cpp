/// \file bench_microkernels.cpp
/// \brief google-benchmark timings of the substrate kernels: global
/// placement, global routing, STA, and the clustering engines. These are the
/// per-stage costs behind Table 2's CPU column.
///
/// Besides wall time, every kernel reports allocs/op and bytes/op measured
/// through the counting operator new in alloc_count.cpp — the perf-regression
/// harness watches both. `--json out.json` (conventionally BENCH_perf.json)
/// writes a machine-readable report; tools/bench_diff.py compares two such
/// reports and flags regressions.
///
/// `--min-of N` (or env PPACD_BENCH_REPEATS=N) runs every kernel N times and
/// reports the best-of-N ns/op in both the console and the JSON report —
/// best-of filters scheduler noise on loaded CI runners, where a mean would
/// absorb it. The flag wins over the environment variable.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "alloc_count.hpp"
#include "cluster/best_choice.hpp"
#include "cluster/community.hpp"
#include "cluster/fc_multilevel.hpp"
#include "cluster/graph.hpp"
#include "common.hpp"
#include "hier/dendrogram.hpp"
#include "place/floorplan.hpp"
#include "place/global_placer.hpp"
#include "place/legalizer.hpp"
#include "place/model.hpp"
#include "route/global_router.hpp"
#include "sta/activity.hpp"
#include "sta/sta.hpp"
#include "telemetry/json.hpp"

namespace {

using namespace ppacd;

/// Shared medium design (ariane-scaled) so kernels compare apples to apples.
struct Fixture {
  Fixture() : nl(bench::make_design(gen::design_spec("ariane"))) {
    place::FloorplanOptions fpo;
    fpo.utilization = 0.65;
    fp = place::Floorplan::create(nl.total_cell_area(),
                                  bench::library().row_height_um(), fpo);
    place::place_ports_on_boundary(nl, fp);
    model = place::make_place_model(nl, fp);
    const auto gp = place::GlobalPlacer(model, place::GlobalPlacerOptions{}).run();
    const auto lg = place::legalize(model, gp.placement);
    positions = place::cell_positions(nl, lg.placement);
  }
  netlist::Netlist nl;
  place::Floorplan fp;
  place::PlaceModel model;
  std::vector<geom::Point> positions;
};

Fixture& fixture() {
  static Fixture instance;
  return instance;
}

/// Sets allocs/op + bytes/op counters from the heap deltas over the scope's
/// lifetime. Declare after the fixture is built and before the timed loop.
class AllocCounters {
 public:
  explicit AllocCounters(benchmark::State& state)
      : state_(state), start_(bench::alloc_snapshot()) {}
  ~AllocCounters() {
    const bench::AllocSnapshot d = bench::alloc_delta(start_);
    const double iters =
        std::max<double>(1.0, static_cast<double>(state_.iterations()));
    state_.counters["allocs_per_op"] =
        static_cast<double>(d.allocs) / iters;
    state_.counters["bytes_per_op"] = static_cast<double>(d.bytes) / iters;
  }
  AllocCounters(const AllocCounters&) = delete;
  AllocCounters& operator=(const AllocCounters&) = delete;

 private:
  benchmark::State& state_;
  bench::AllocSnapshot start_;
};

void BM_GlobalPlacement(benchmark::State& state) {
  Fixture& f = fixture();
  AllocCounters allocs(state);
  for (auto _ : state) {
    place::GlobalPlacer placer(f.model, place::GlobalPlacerOptions{});
    benchmark::DoNotOptimize(placer.run().hpwl_um);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.nl.cell_count()));
}
BENCHMARK(BM_GlobalPlacement)->Unit(benchmark::kMillisecond);

void BM_IncrementalPlacement(benchmark::State& state) {
  Fixture& f = fixture();
  place::GlobalPlacer placer(f.model, place::GlobalPlacerOptions{});
  const auto seed = placer.run().placement;
  AllocCounters allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(placer.run_incremental(seed).hpwl_um);
  }
}
BENCHMARK(BM_IncrementalPlacement)->Unit(benchmark::kMillisecond);

void BM_GlobalRouting(benchmark::State& state) {
  Fixture& f = fixture();
  AllocCounters allocs(state);
  for (auto _ : state) {
    route::GlobalRouter router(f.nl, f.positions, f.fp.core, route::RouteOptions{});
    benchmark::DoNotOptimize(router.run().wirelength_um);
  }
}
BENCHMARK(BM_GlobalRouting)->Unit(benchmark::kMillisecond);

void BM_Sta(benchmark::State& state) {
  Fixture& f = fixture();
  sta::StaOptions options;
  options.clock_period_ps = 1800.0;
  options.cell_positions = &f.positions;
  AllocCounters allocs(state);
  for (auto _ : state) {
    sta::Sta sta(f.nl, options);
    sta.run();
    benchmark::DoNotOptimize(sta.tns_ns());
  }
}
BENCHMARK(BM_Sta)->Unit(benchmark::kMillisecond);

void BM_ActivityPropagation(benchmark::State& state) {
  Fixture& f = fixture();
  AllocCounters allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sta::propagate_activity(f.nl, sta::ActivityOptions{}).size());
  }
}
BENCHMARK(BM_ActivityPropagation)->Unit(benchmark::kMillisecond);

void BM_CliqueExpand(benchmark::State& state) {
  Fixture& f = fixture();
  AllocCounters allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::clique_expand(f.nl).total_edge_weight);
  }
}
BENCHMARK(BM_CliqueExpand)->Unit(benchmark::kMillisecond);

void BM_FcClustering(benchmark::State& state) {
  Fixture& f = fixture();
  AllocCounters allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::fc_multilevel_cluster(f.nl, cluster::FcPpaInputs{},
                                       cluster::FcOptions{})
            .cluster_count);
  }
}
BENCHMARK(BM_FcClustering)->Unit(benchmark::kMillisecond);

void BM_BestChoice(benchmark::State& state) {
  Fixture& f = fixture();
  AllocCounters allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::best_choice_cluster(f.nl, cluster::BestChoiceOptions{})
            .cluster_count);
  }
}
BENCHMARK(BM_BestChoice)->Unit(benchmark::kMillisecond);

void BM_Louvain(benchmark::State& state) {
  Fixture& f = fixture();
  const cluster::Graph graph = cluster::clique_expand(f.nl);
  AllocCounters allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::louvain(graph, cluster::CommunityOptions{}).community_count);
  }
}
BENCHMARK(BM_Louvain)->Unit(benchmark::kMillisecond);

void BM_Leiden(benchmark::State& state) {
  Fixture& f = fixture();
  const cluster::Graph graph = cluster::clique_expand(f.nl);
  AllocCounters allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::leiden(graph, cluster::CommunityOptions{}).community_count);
  }
}
BENCHMARK(BM_Leiden)->Unit(benchmark::kMillisecond);

void BM_HierarchyClustering(benchmark::State& state) {
  Fixture& f = fixture();
  AllocCounters allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hier::hierarchy_clustering(f.nl).cluster_count);
  }
}
BENCHMARK(BM_HierarchyClustering)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --json reporting
// ---------------------------------------------------------------------------

/// Console output as usual, plus an in-memory copy of every iteration run for
/// the JSON report.
class PerfReporter : public benchmark::ConsoleReporter {
 public:
  struct KernelRun {
    std::string name;
    double ns_per_op = 0.0;
    double allocs_per_op = 0.0;
    double bytes_per_op = 0.0;
    std::int64_t iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      KernelRun k;
      k.name = run.benchmark_name();
      k.iterations = run.iterations;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      k.ns_per_op = run.real_accumulated_time * 1e9 / iters;
      const auto allocs = run.counters.find("allocs_per_op");
      if (allocs != run.counters.end()) k.allocs_per_op = allocs->second;
      const auto bytes = run.counters.find("bytes_per_op");
      if (bytes != run.counters.end()) k.bytes_per_op = bytes->second;
      // Under --min-of N each repetition reports a separate iteration run
      // with the same name; keep the fastest (best-of-N filters scheduler
      // noise on loaded CI runners, where a mean would not).
      bool merged = false;
      for (KernelRun& existing : kernels_) {
        if (existing.name == k.name) {
          if (k.ns_per_op < existing.ns_per_op) existing = k;
          merged = true;
          break;
        }
      }
      if (!merged) kernels_.push_back(std::move(k));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<KernelRun>& kernels() const { return kernels_; }

 private:
  std::vector<KernelRun> kernels_;
};

bool write_perf_json(const std::string& path,
                     const std::vector<PerfReporter::KernelRun>& kernels) {
  telemetry::Json report = telemetry::Json::object();
  report.set("schema", "ppacd-bench-perf-v1");
  report.set("binary", "bench_microkernels");
  telemetry::Json list = telemetry::Json::array();
  for (const PerfReporter::KernelRun& k : kernels) {
    telemetry::Json entry = telemetry::Json::object();
    entry.set("name", k.name);
    entry.set("ns_per_op", k.ns_per_op);
    entry.set("allocs_per_op", k.allocs_per_op);
    entry.set("bytes_per_op", k.bytes_per_op);
    entry.set("iterations", k.iterations);
    list.push_back(std::move(entry));
  }
  report.set("kernels", std::move(list));
  std::ofstream out(path);
  if (!out) return false;
  out << report.dump(2) << "\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  long repeats = 1;
  if (const char* env = std::getenv("PPACD_BENCH_REPEATS")) {
    repeats = std::strtol(env, nullptr, 10);
  }
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--min-of") == 0 && i + 1 < argc) {
      repeats = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--min-of=", 9) == 0) {
      repeats = std::strtol(argv[i] + 9, nullptr, 10);
    } else {
      args.push_back(argv[i]);
    }
  }
  if (repeats < 1) {
    std::fprintf(stderr, "--min-of/PPACD_BENCH_REPEATS must be >= 1\n");
    return 1;
  }
  // Repetitions flow through google-benchmark's own flag; PerfReporter keeps
  // the fastest iteration run per kernel name.
  std::string repetitions_flag;
  if (repeats > 1) {
    repetitions_flag = "--benchmark_repetitions=" + std::to_string(repeats);
    args.push_back(repetitions_flag.data());
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  PerfReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    if (!write_perf_json(json_path, reporter.kernels())) {
      std::fprintf(stderr, "could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("perf report written to %s\n", json_path.c_str());
  }
  return 0;
}
