/// \file bench_microkernels.cpp
/// \brief google-benchmark timings of the substrate kernels: global
/// placement, global routing, STA, and the three clustering engines. These
/// are the per-stage costs behind Table 2's CPU column.
#include <benchmark/benchmark.h>

#include "cluster/community.hpp"
#include "cluster/fc_multilevel.hpp"
#include "cluster/graph.hpp"
#include "common.hpp"
#include "hier/dendrogram.hpp"
#include "place/floorplan.hpp"
#include "place/global_placer.hpp"
#include "place/legalizer.hpp"
#include "place/model.hpp"
#include "route/global_router.hpp"
#include "sta/activity.hpp"
#include "sta/sta.hpp"

namespace {

using namespace ppacd;

/// Shared medium design (ariane-scaled) so kernels compare apples to apples.
struct Fixture {
  Fixture() : nl(bench::make_design(gen::design_spec("ariane"))) {
    place::FloorplanOptions fpo;
    fpo.utilization = 0.65;
    fp = place::Floorplan::create(nl.total_cell_area(),
                                  bench::library().row_height_um(), fpo);
    place::place_ports_on_boundary(nl, fp);
    model = place::make_place_model(nl, fp);
    const auto gp = place::GlobalPlacer(model, place::GlobalPlacerOptions{}).run();
    const auto lg = place::legalize(model, gp.placement);
    positions = place::cell_positions(nl, lg.placement);
  }
  netlist::Netlist nl;
  place::Floorplan fp;
  place::PlaceModel model;
  std::vector<geom::Point> positions;
};

Fixture& fixture() {
  static Fixture instance;
  return instance;
}

void BM_GlobalPlacement(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    place::GlobalPlacer placer(f.model, place::GlobalPlacerOptions{});
    benchmark::DoNotOptimize(placer.run().hpwl_um);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.nl.cell_count()));
}
BENCHMARK(BM_GlobalPlacement)->Unit(benchmark::kMillisecond);

void BM_IncrementalPlacement(benchmark::State& state) {
  Fixture& f = fixture();
  place::GlobalPlacer placer(f.model, place::GlobalPlacerOptions{});
  const auto seed = placer.run().placement;
  for (auto _ : state) {
    benchmark::DoNotOptimize(placer.run_incremental(seed).hpwl_um);
  }
}
BENCHMARK(BM_IncrementalPlacement)->Unit(benchmark::kMillisecond);

void BM_GlobalRouting(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    route::GlobalRouter router(f.nl, f.positions, f.fp.core, route::RouteOptions{});
    benchmark::DoNotOptimize(router.run().wirelength_um);
  }
}
BENCHMARK(BM_GlobalRouting)->Unit(benchmark::kMillisecond);

void BM_Sta(benchmark::State& state) {
  Fixture& f = fixture();
  sta::StaOptions options;
  options.clock_period_ps = 1800.0;
  options.cell_positions = &f.positions;
  for (auto _ : state) {
    sta::Sta sta(f.nl, options);
    sta.run();
    benchmark::DoNotOptimize(sta.tns_ns());
  }
}
BENCHMARK(BM_Sta)->Unit(benchmark::kMillisecond);

void BM_ActivityPropagation(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sta::propagate_activity(f.nl, sta::ActivityOptions{}).size());
  }
}
BENCHMARK(BM_ActivityPropagation)->Unit(benchmark::kMillisecond);

void BM_FcClustering(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::fc_multilevel_cluster(f.nl, cluster::FcPpaInputs{},
                                       cluster::FcOptions{})
            .cluster_count);
  }
}
BENCHMARK(BM_FcClustering)->Unit(benchmark::kMillisecond);

void BM_Louvain(benchmark::State& state) {
  Fixture& f = fixture();
  const cluster::Graph graph = cluster::clique_expand(f.nl);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::louvain(graph, cluster::CommunityOptions{}).community_count);
  }
}
BENCHMARK(BM_Louvain)->Unit(benchmark::kMillisecond);

void BM_Leiden(benchmark::State& state) {
  Fixture& f = fixture();
  const cluster::Graph graph = cluster::clique_expand(f.nl);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::leiden(graph, cluster::CommunityOptions{}).community_count);
  }
}
BENCHMARK(BM_Leiden)->Unit(benchmark::kMillisecond);

void BM_HierarchyClustering(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hier::hierarchy_clustering(f.nl).cluster_count);
  }
}
BENCHMARK(BM_HierarchyClustering)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
