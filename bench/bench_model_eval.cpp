/// \file bench_model_eval.cpp
/// \brief Section 4.4: GNN model evaluation -- label statistics, MAE and R2
/// on train/validation/test splits, and the V-P&R acceleration factor
/// (paper: MAE 0.105/0.113/0.131, R2 0.788/0.753/0.638, labels in
/// [0.564, 2.96] with mean 1.703 / stddev 0.727, ~30x speedup).
#include <cstdio>

#include "common.hpp"
#include "cluster/fc_multilevel.hpp"
#include "features/features.hpp"
#include "netlist/subnetlist.hpp"
#include "util/timer.hpp"
#include "vpr/vpr.hpp"

int main() {
  using namespace ppacd;
  std::printf("building V-P&R-labelled dataset and training the Fig. 4 model...\n");
  const bench::ModelBundle bundle = bench::build_and_train_model();
  const ml::TrainResult& result = bundle.result;

  util::Table table("Section 4.4: TotalCost model evaluation");
  table.set_header({"Split", "#Samples", "MAE", "R2"});
  auto add = [&table](const char* name, const ml::SplitMetrics& m) {
    table.add_row({name, std::to_string(m.sample_count), bench::fmt(m.mae, 3),
                   bench::fmt(m.r2, 3)});
  };
  add("Train", result.train);
  add("Validation", result.val);
  add("Test", result.test);
  table.print();

  std::printf("\nLabel statistics: range [%.3f, %.3f], mean %.3f, stddev %.3f\n"
              "(paper: range [0.564, 2.96], mean 1.703, stddev 0.727 -- absolute\n"
              "values differ because TotalCost depends on the P&R substrate).\n"
              "Dataset: %zu clusters x %zu shapes = %zu samples; labelling took\n"
              "%.1fs, training %.1fs over %d epochs.\n",
              result.labels.min, result.labels.max, result.labels.mean,
              result.labels.stddev, bundle.dataset.clusters.size(),
              bundle.dataset.shapes.size(), bundle.dataset.sample_count(),
              bundle.dataset_seconds, bundle.training_seconds, result.epochs_run);

  // --- Acceleration factor: exact V-P&R vs ML prediction per cluster --------
  const gen::DesignSpec spec = gen::design_spec("ariane");
  netlist::Netlist nl = bench::make_design(spec);
  cluster::FcOptions fc;
  fc.target_cluster_count = std::max(8, static_cast<int>(nl.cell_count()) / 100);
  const cluster::FcResult fc_result =
      cluster::fc_multilevel_cluster(nl, cluster::FcPpaInputs{}, fc);
  cluster::ClusteredNetlist clustered = cluster::build_clustered_netlist(
      nl, fc_result.cluster_of_cell, fc_result.cluster_count);

  vpr::VprOptions vpr_options;
  vpr_options.min_cluster_instances = 60;
  util::Timer timer;
  const vpr::ShapeSelectionStats exact =
      vpr::select_cluster_shapes(nl, clustered, vpr_options, nullptr);
  const double exact_seconds = timer.seconds();

  const vpr::ShapeCostPredictor predictor =
      result.model->predictor(features::FeatureOptions{});
  timer.reset();
  const vpr::ShapeSelectionStats ml_stats =
      vpr::select_cluster_shapes(nl, clustered, vpr_options, &predictor);
  const double ml_seconds = timer.seconds();

  const double per_run_s =
      exact.vpr_runs > 0 ? exact_seconds / exact.vpr_runs : 0.0;
  const double ml_per_cluster_s =
      ml_stats.clusters_shaped > 0 ? ml_seconds / ml_stats.clusters_shaped : 0.0;
  std::printf(
      "\nV-P&R acceleration on %s (%d shaped clusters):\n"
      "  exact V-P&R: %.2fs total, %.1f ms per virtual P&R run\n"
      "  ML-accelerated: %.2fs total, %.0f ms per cluster (features + 20\n"
      "  predictions)\n"
      "  measured speedup: %.2fx\n"
      "The paper reports ~30x because each of its OpenROAD runs costs up to\n"
      "3 s; on this substrate a virtual P&R finishes in milliseconds, so the\n"
      "crossover favours exact V-P&R at this design scale. At the paper's\n"
      "per-run cost the same model would save (20 x 3 s) / %.2f s = %.0fx.\n",
      spec.name.c_str(), exact.clusters_shaped, exact_seconds,
      1000.0 * per_run_s, ml_seconds, 1000.0 * ml_per_cluster_s,
      ml_seconds > 0 ? exact_seconds / ml_seconds : 0.0, ml_per_cluster_s,
      ml_per_cluster_s > 0 ? 60.0 / ml_per_cluster_s : 0.0);

  util::CsvWriter csv;
  csv.set_header({"split", "samples", "mae", "r2"});
  csv.add_row({"train", std::to_string(result.train.sample_count),
               bench::fmt(result.train.mae, 4), bench::fmt(result.train.r2, 4)});
  csv.add_row({"val", std::to_string(result.val.sample_count),
               bench::fmt(result.val.mae, 4), bench::fmt(result.val.r2, 4)});
  csv.add_row({"test", std::to_string(result.test.sample_count),
               bench::fmt(result.test.mae, 4), bench::fmt(result.test.r2, 4)});
  bench::write_results(csv, "model_eval");
  return 0;
}
