/// \file bench_scaling.cpp
/// \brief Runtime scaling of the default vs clustering-driven flow across
/// design sizes — the turnaround-time story of the paper's introduction
/// rendered as a curve (not a paper table, but the trend every table rests
/// on: the speedup must grow, or at least hold, with design size).
#include <algorithm>
#include <cstdio>

#include "cluster/fc_multilevel.hpp"
#include "common.hpp"
#include "exec/exec.hpp"
#include "util/timer.hpp"
#include "vpr/vpr.hpp"

namespace {

/// Thread-scaling sweep of the hottest flow stage, V-P&R shape selection
/// (exact evaluation, predictor disabled): same design, same clustering,
/// thread counts 1/2/4/8. Emits bench_results/scaling_threads.csv.
void run_thread_sweep() {
  using namespace ppacd;
  util::Table table("V-P&R shape selection: thread scaling");
  table.set_header({"Threads", "Shape (s)", "Speedup"});
  util::CsvWriter csv;
  csv.set_header({"threads", "shape_s", "speedup"});

  gen::DesignSpec spec = gen::design_spec("aes");
  spec.target_cells = static_cast<int>(spec.target_cells * bench::size_scale());
  netlist::Netlist nl = gen::generate(bench::library(), spec);
  cluster::FcOptions fc;
  fc.target_cluster_count = std::max(8, static_cast<int>(nl.cell_count()) / 100);
  const cluster::FcResult fc_result =
      cluster::fc_multilevel_cluster(nl, cluster::FcPpaInputs{}, fc);

  vpr::VprOptions vpr_options;
  vpr_options.min_cluster_instances = 60;
  const int saved_threads = exec::thread_count();
  double base_seconds = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    exec::set_thread_count(threads);
    cluster::ClusteredNetlist clustered = cluster::build_clustered_netlist(
        nl, fc_result.cluster_of_cell, fc_result.cluster_count);
    util::Timer timer;
    vpr::select_cluster_shapes(nl, clustered, vpr_options, nullptr);
    const double seconds = timer.seconds();
    if (threads == 1) base_seconds = seconds;
    const double speedup = seconds > 0.0 ? base_seconds / seconds : 0.0;
    table.add_row({std::to_string(threads), bench::fmt(seconds, 2),
                   bench::fmt(speedup, 2)});
    csv.add_row({std::to_string(threads), bench::fmt(seconds, 3),
                 bench::fmt(speedup, 3)});
  }
  exec::set_thread_count(saved_threads);
  table.print();
  bench::write_results(csv, "scaling_threads");
}

}  // namespace

int main() {
  using namespace ppacd;
  util::Table table("Placement runtime scaling: Default vs Ours");
  table.set_header({"#Cells", "Default (s)", "Ours (s)", "Ratio", "Ours HPWL"});
  util::CsvWriter csv;
  csv.set_header({"cells", "default_s", "ours_s", "ratio", "ours_hpwl_norm"});

  for (const int size : {1000, 2000, 4000, 8000, 16000, 26000}) {
    // Parametric generic design so the instance count tracks the sweep (the
    // named tiled/multicore designs have a module-count floor).
    gen::DesignSpec spec;
    spec.name = "scal" + std::to_string(size);
    spec.seed = 0xc0ffee + static_cast<std::uint64_t>(size);
    spec.topology = gen::Topology::kGeneric;
    spec.hierarchy_depth = 4;
    spec.hierarchy_branching = 3;
    spec.clock_period_ps = 1500.0;
    spec.target_cells = static_cast<int>(size * bench::size_scale());
    flow::FlowOptions options;
    options.clock_period_ps = spec.clock_period_ps;
    options.vpr.min_cluster_instances = 1 << 20;  // isolate placement runtime

    netlist::Netlist nl_default = gen::generate(bench::library(), spec);
    const flow::FlowResult def = flow::run_default_flow(nl_default, options);

    netlist::Netlist nl_ours = gen::generate(bench::library(), spec);
    const flow::FlowResult ours = flow::run_clustered_flow(nl_ours, options);
    const double ours_cpu =
        ours.place.clustering_seconds + ours.place.placement_seconds;
    const double ratio = ours_cpu / def.place.placement_seconds;
    table.add_row({std::to_string(nl_default.cell_count()),
                   bench::fmt(def.place.placement_seconds, 2),
                   bench::fmt(ours_cpu, 2), bench::fmt(ratio, 2),
                   bench::fmt(ours.place.hpwl_um / def.place.hpwl_um, 3)});
    csv.add_row({std::to_string(nl_default.cell_count()),
                 bench::fmt(def.place.placement_seconds, 3),
                 bench::fmt(ours_cpu, 3), bench::fmt(ratio, 3),
                 bench::fmt(ours.place.hpwl_um / def.place.hpwl_um, 4)});
  }
  table.print();
  bench::write_results(csv, "scaling");
  std::printf("\nExpected: the ratio stays well below 1 and does not degrade\n"
              "with size (the paper's motivation: clustering pays off most on\n"
              "the largest designs).\n");

  run_thread_sweep();
  std::printf("\nExpected: near-linear shape-selection speedup up to the\n"
              "machine's core count (clusters and shape candidates are\n"
              "embarrassingly parallel); flat on single-core hosts.\n");
  return 0;
}
