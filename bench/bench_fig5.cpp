/// \file bench_fig5.cpp
/// \brief Figure 5: hyperparameter validation -- sweep multipliers 1..6 on
/// each of alpha, beta, gamma, mu (one at a time, others at defaults) over
/// aes/jpeg/ariane; the score is post-place HPWL normalized to the default
/// setting, exactly as in Section 4.5.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace ppacd;
  const char* params[] = {"alpha", "beta", "gamma", "mu"};
  constexpr int kMaxMultiplier = 6;

  util::CsvWriter csv;
  csv.set_header({"design", "param", "multiplier", "hpwl_norm"});

  util::Table table("Figure 5: Hyperparameter validation (HPWL normalized to "
                    "default settings; mean over aes/jpeg/ariane)");
  {
    std::vector<std::string> header = {"Param"};
    for (int m = 1; m <= kMaxMultiplier; ++m) header.push_back("x" + std::to_string(m));
    table.set_header(header);
  }

  // Per-design baseline HPWL at the default hyperparameters.
  const auto specs = gen::small_design_specs();
  std::vector<double> baseline(specs.size(), 0.0);
  for (std::size_t d = 0; d < specs.size(); ++d) {
    netlist::Netlist nl = bench::make_design(specs[d]);
    flow::FlowOptions options = bench::design_flow_options(specs[d]);
    options.shape_mode = flow::ShapeMode::kUniform;  // isolate Eq. 3 effects
    const flow::FlowResult run = flow::run_clustered_flow(nl, options);
    baseline[d] = run.place.hpwl_um;
  }

  for (const char* param : params) {
    std::vector<std::string> row = {param};
    for (int multiplier = 1; multiplier <= kMaxMultiplier; ++multiplier) {
      double norm_sum = 0.0;
      for (std::size_t d = 0; d < specs.size(); ++d) {
        netlist::Netlist nl = bench::make_design(specs[d]);
        flow::FlowOptions options = bench::design_flow_options(specs[d]);
        options.shape_mode = flow::ShapeMode::kUniform;
        if (std::string(param) == "alpha") options.fc.alpha *= multiplier;
        if (std::string(param) == "beta") options.fc.beta *= multiplier;
        if (std::string(param) == "gamma") options.fc.gamma *= multiplier;
        if (std::string(param) == "mu") options.fc.mu *= multiplier;
        const flow::FlowResult run = flow::run_clustered_flow(nl, options);
        const double norm = run.place.hpwl_um / baseline[d];
        norm_sum += norm;
        csv.add_row({specs[d].name, param, std::to_string(multiplier),
                     bench::fmt(norm, 4)});
      }
      row.push_back(bench::fmt(norm_sum / specs.size(), 3));
    }
    table.add_row(row);
  }
  table.print();
  bench::write_results(csv, "fig5");
  std::printf("\nValues near 1.000 at multiplier 1 by construction; the paper's\n"
              "finding -- the default setting is a reasonable optimum, larger\n"
              "multipliers do not consistently help -- holds if no column is\n"
              "consistently well below 1.\n");
  return 0;
}
