/// \file bench_sharded.cpp
/// \brief Monolithic vs region-sharded seeded placement at paper scale:
/// wall-clock, peak RSS, and QoR (HPWL/overflow) across shard counts.
///
/// Both arms run the same clustering (plain MFC) and uniform cluster shapes,
/// so the comparison isolates the placement strategy: one 14-iteration
/// incremental CG system over the whole netlist (monolithic) vs K small
/// per-region systems plus a short stitch (sharded). Results are emitted as
/// a ppacd-bench-perf-v1 report (--json, compare with tools/bench_diff.py)
/// and one ppacd-qor-v1 ledger per arm (--qor-dir, gate the sharded arms
/// against the monolithic ledger with tools/qor_diff.py --threshold 2).
///
/// Defaults are smoke-sized; the paper-scale run is
///   bench_sharded --design scale-1m --shards 1,2,4,8,16 --json ... --qor-dir ...
/// --shard-iters/--stitch-iters override ShardedOptions for tuning sweeps;
/// --mono-iters raises the monolithic incremental iteration budget for
/// iso-quality comparisons (how long must the monolithic arm run to match
/// the sharded arm's HPWL?).
/// Peak RSS (getrusage ru_maxrss) is process-wide and monotonic, so the
/// per-arm numbers are high-water marks after each arm in run order, not
/// independent measurements — run arms in separate processes for isolation.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common.hpp"
#include "exec/exec.hpp"
#include "flow/qor.hpp"
#include "gen/scale.hpp"
#include "telemetry/json.hpp"

namespace {

using namespace ppacd;

double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage = {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
#else
  return 0.0;
#endif
}

struct PerfEntry {
  std::string name;
  double ns_per_op = 0.0;
};

bool write_perf_json(const std::string& path,
                     const std::vector<PerfEntry>& entries) {
  using telemetry::Json;
  Json report = Json::object();
  report.set("schema", "ppacd-bench-perf-v1");
  report.set("binary", "bench_sharded");
  Json list = Json::array();
  for (const PerfEntry& e : entries) {
    Json entry = Json::object();
    entry.set("name", e.name);
    entry.set("ns_per_op", e.ns_per_op);
    entry.set("allocs_per_op", 0.0);  // flow timers do not count allocations
    entry.set("bytes_per_op", 0.0);
    entry.set("iterations", static_cast<std::int64_t>(1));
    list.push_back(std::move(entry));
  }
  report.set("kernels", std::move(list));
  std::ofstream out(path);
  if (!out) return false;
  out << report.dump(2) << "\n";
  return static_cast<bool>(out);
}

std::vector<int> parse_shards(const std::string& csv) {
  std::vector<int> shards;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string token =
        csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                   : comma - pos);
    const int value = std::atoi(token.c_str());
    if (value > 0) shards.push_back(value);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return shards;
}

}  // namespace

int main(int argc, char** argv) {
  std::string design_name = "scale-100k";
  std::string shard_list = "2,4,8";
  std::string json_path;
  std::string qor_dir;
  int cells = 0;
  int threads = 0;
  int shard_iters = 0;
  int stitch_iters = -1;
  int mono_iters = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--design") design_name = value();
    else if (arg == "--shards") shard_list = value();
    else if (arg == "--json") json_path = value();
    else if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    else if (arg == "--qor-dir") qor_dir = value();
    else if (arg == "--cells") cells = std::atoi(value());
    else if (arg == "--threads") threads = std::atoi(value());
    else if (arg == "--shard-iters") shard_iters = std::atoi(value());
    else if (arg == "--stitch-iters") stitch_iters = std::atoi(value());
    else if (arg == "--mono-iters") mono_iters = std::atoi(value());
    else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 1;
    }
  }
  if (threads > 0) exec::set_thread_count(threads);
  const std::vector<int> shard_counts = parse_shards(shard_list);

  gen::DesignSpec spec = gen::design_spec(design_name);
  if (cells > 0) spec.target_cells = cells;

  // Same clustering for every arm: plain MFC + uniform shapes keeps the
  // non-placement phases cheap and identical, so the wall-clock ratio below
  // measures the placement strategy alone.
  flow::FlowOptions options = bench::design_flow_options(spec);
  options.cluster_method = flow::ClusterMethod::kMfc;
  options.shape_mode = flow::ShapeMode::kUniform;

  util::Table table("Sharded placement: monolithic vs region-sharded (" +
                    design_name + ", " + std::to_string(exec::thread_count()) +
                    " threads)");
  table.set_header({"Arm", "Place s", "Speedup", "HPWL um", "dHPWL %",
                    "Fallbacks", "RSS MB"});
  util::CsvWriter csv;
  csv.set_header({"arm", "shards", "clustering_s", "placement_s", "speedup",
                  "hpwl_um", "hpwl_delta_pct", "fallbacks", "peak_rss_mb"});
  std::vector<PerfEntry> perf;

  auto qor_path = [&](const std::string& arm) {
    return qor_dir + "/sharded_" + arm + ".qor.json";
  };

  // --- Monolithic arm --------------------------------------------------------
  netlist::Netlist nl_mono = bench::make_design(spec);
  flow::FlowOptions mono_options = options;
  if (mono_iters > 0) mono_options.placer.incremental_iterations = mono_iters;
  const flow::FlowResult mono = flow::run_clustered_flow(nl_mono, mono_options);
  const double mono_rss = peak_rss_mb();
  table.add_row({"monolithic", bench::fmt(mono.place.placement_seconds, 2),
                 "1.00", bench::fmt(mono.place.hpwl_um, 0), "0.00", "0",
                 bench::fmt(mono_rss, 0)});
  csv.add_row({"monolithic", "0", bench::fmt(mono.place.clustering_seconds, 3),
               bench::fmt(mono.place.placement_seconds, 3), "1.0",
               bench::fmt(mono.place.hpwl_um, 1), "0.0", "0",
               bench::fmt(mono_rss, 1)});
  perf.push_back({"sharded/" + design_name + "/monolithic_place",
                  mono.place.placement_seconds * 1e9});
  if (!qor_dir.empty()) flow::write_qor(qor_path("mono"), design_name, "mono", mono);

  // --- Sharded arms ----------------------------------------------------------
  bool met_speedup = false;
  bool met_quality = false;
  for (const int shards : shard_counts) {
    netlist::Netlist nl = bench::make_design(spec);
    flow::FlowOptions sharded_options = options;
    sharded_options.sharding.shards = shards;
    if (shard_iters > 0) sharded_options.sharding.shard_iterations = shard_iters;
    if (stitch_iters >= 0) sharded_options.sharding.stitch_iterations = stitch_iters;
    const flow::FlowResult run = flow::run_sharded_flow(nl, sharded_options);
    const double rss = peak_rss_mb();
    const double speedup =
        run.place.placement_seconds > 0.0
            ? mono.place.placement_seconds / run.place.placement_seconds
            : 0.0;
    const double delta_pct =
        (run.place.hpwl_um / mono.place.hpwl_um - 1.0) * 100.0;
    met_speedup = met_speedup || speedup >= 2.0;
    met_quality = met_quality || (speedup >= 2.0 && delta_pct <= 2.0);
    const std::string arm = "shards" + std::to_string(shards);
    table.add_row({arm, bench::fmt(run.place.placement_seconds, 2),
                   bench::fmt(speedup, 2), bench::fmt(run.place.hpwl_um, 0),
                   bench::fmt(delta_pct, 2),
                   std::to_string(run.place.shard_fallbacks),
                   bench::fmt(rss, 0)});
    csv.add_row({arm, std::to_string(shards),
                 bench::fmt(run.place.clustering_seconds, 3),
                 bench::fmt(run.place.placement_seconds, 3),
                 bench::fmt(speedup, 3), bench::fmt(run.place.hpwl_um, 1),
                 bench::fmt(delta_pct, 3),
                 std::to_string(run.place.shard_fallbacks),
                 bench::fmt(rss, 1)});
    perf.push_back({"sharded/" + design_name + "/" + arm + "_place",
                    run.place.placement_seconds * 1e9});
    if (!qor_dir.empty()) {
      flow::write_qor(qor_path(arm), design_name, "sharded", run);
    }
  }

  table.print();
  bench::write_results(csv, "sharded");
  std::printf("\nTarget: >= 2x placement wall-clock at >= 1M instances with\n"
              "<= 2%% HPWL regression (gate the qor ledgers with\n"
              "tools/qor_diff.py --threshold 2 --fail-on-regression).\n"
              "Best arm meets speedup: %s, meets speedup+quality: %s\n",
              met_speedup ? "yes" : "no", met_quality ? "yes" : "no");
  if (!json_path.empty()) {
    if (!write_perf_json(json_path, perf)) {
      std::fprintf(stderr, "could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("perf report written to %s\n", json_path.c_str());
  }
  return 0;
}
