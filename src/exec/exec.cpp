#include "exec/exec.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace ppacd::exec {

namespace {

/// Lane identity of the current thread: 0 = any non-pool thread, 1..N-1 = a
/// pool worker. Workers set it once at startup.
thread_local std::size_t t_lane = 0;
thread_local bool t_is_worker = false;
/// True while this thread executes a region chunk — on workers AND on the
/// caller (which drains as lane 0). Nested run_chunks calls check this, not
/// t_is_worker: a nested region issued from a chunk on the calling thread
/// must also run inline, or it would re-lock region_mutex and deadlock.
thread_local bool t_in_region = false;

struct Pool {
  std::mutex mutex;
  std::condition_variable work_cv;  ///< workers wait here for a region
  std::condition_variable done_cv;  ///< the caller waits here for completion

  /// Joins the workers at static destruction — a destroyed joinable
  /// std::thread calls std::terminate, so a process exiting with a live
  /// multi-lane pool (e.g. flow_cli --threads N) must wind it down here.
  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      shutdown = true;
    }
    work_cv.notify_all();
    for (std::thread& worker : workers) worker.join();
  }

  int lanes = 0;  ///< 0 = not yet configured
  std::vector<std::thread> workers;
  bool shutdown = false;

  // --- Current region (one at a time; callers serialize on region_mutex) ---
  std::mutex region_mutex;
  const detail::ChunkFnRef* fn = nullptr;
  std::vector<std::deque<std::size_t>> queues;  ///< one chunk deque per lane
  std::size_t pending = 0;                      ///< chunks not yet finished
  std::atomic<bool> failed{false};
  std::exception_ptr error;
};

Pool& pool_state() {
  static Pool pool;
  return pool;
}

int env_thread_count() {
  if (const char* env = std::getenv("PPACD_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
    PPACD_LOG_WARN("exec") << "ignoring PPACD_THREADS=\"" << env << "\"";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Claims one chunk for `lane`: its own deque front first, else steals from
/// the back of the busiest other lane. Returns false when no work is left.
/// Caller holds pool.mutex.
bool claim_chunk(Pool& pool, std::size_t lane, std::size_t* chunk,
                 bool* stolen) {
  if (!pool.queues[lane].empty()) {
    *chunk = pool.queues[lane].front();
    pool.queues[lane].pop_front();
    *stolen = false;
    return true;
  }
  std::size_t victim = lane;
  std::size_t victim_size = 0;
  for (std::size_t l = 0; l < pool.queues.size(); ++l) {
    if (l != lane && pool.queues[l].size() > victim_size) {
      victim = l;
      victim_size = pool.queues[l].size();
    }
  }
  if (victim_size == 0) return false;
  *chunk = pool.queues[victim].back();
  pool.queues[victim].pop_back();
  *stolen = true;
  return true;
}

/// Executes chunks of the current region until none are claimable. Returns
/// with pool.mutex held.
void drain_region(Pool& pool, std::unique_lock<std::mutex>& lock,
                  std::size_t lane) {
  std::int64_t executed = 0;
  std::int64_t steals = 0;
  while (pool.fn != nullptr) {
    std::size_t chunk = 0;
    bool stolen = false;
    if (!claim_chunk(pool, lane, &chunk, &stolen)) break;
    const detail::ChunkFnRef* fn = pool.fn;
    lock.unlock();
    if (stolen) ++steals;
    ++executed;
    if (!pool.failed.load(std::memory_order_acquire)) {
      t_in_region = true;
      try {
        (*fn)(chunk);
      } catch (...) {
        // First failure wins; later chunks are skipped (not re-queued) so the
        // region drains quickly. The caller rethrows after completion.
        bool expected = false;
        if (pool.failed.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
          lock.lock();
          pool.error = std::current_exception();
          lock.unlock();
        }
      }
      t_in_region = false;
    }
    lock.lock();
    if (--pool.pending == 0) pool.done_cv.notify_all();
  }
  if (executed > 0) PPACD_COUNT("exec.tasks.executed", executed);
  if (steals > 0) PPACD_COUNT("exec.steal.count", steals);
}

void worker_main(std::size_t lane) {
  t_lane = lane;
  t_is_worker = true;
  Pool& pool = pool_state();
  std::unique_lock<std::mutex> lock(pool.mutex);
  while (true) {
    pool.work_cv.wait(lock, [&pool, lane] {
      return pool.shutdown ||
             (pool.fn != nullptr && lane < pool.queues.size());
    });
    if (pool.shutdown) return;
    drain_region(pool, lock, lane);
    // Region exhausted from this worker's perspective; wait for the next one.
    // fn stays set until the caller observes pending == 0, so guard against a
    // busy re-wake on the same drained region.
    pool.work_cv.wait(lock, [&pool] { return pool.fn == nullptr || pool.shutdown; });
  }
}

/// Joins the current workers (if any). Caller must not hold pool.mutex.
void stop_workers(Pool& pool) {
  {
    std::lock_guard<std::mutex> lock(pool.mutex);
    pool.shutdown = true;
  }
  pool.work_cv.notify_all();
  for (std::thread& worker : pool.workers) worker.join();
  pool.workers.clear();
  std::lock_guard<std::mutex> lock(pool.mutex);
  pool.shutdown = false;
}

/// Spawns workers for `lanes` total lanes. Caller must not hold pool.mutex.
void configure(Pool& pool, int lanes) {
  PPACD_CHECK(!t_is_worker && !t_in_region,
              "pool reconfigured from inside a parallel region");
  if (!pool.workers.empty()) stop_workers(pool);
  pool.lanes = lanes < 1 ? 1 : lanes;
  pool.workers.reserve(static_cast<std::size_t>(pool.lanes) - 1);
  for (int lane = 1; lane < pool.lanes; ++lane) {
    pool.workers.emplace_back(worker_main, static_cast<std::size_t>(lane));
  }
  PPACD_GAUGE_SET("exec.pool.size", pool.lanes);
  PPACD_LOG_DEBUG("exec") << "pool configured with " << pool.lanes << " lanes";
}

Pool& pool() {
  Pool& pool = pool_state();
  // Lazy first-use sizing; set_thread_count() reconfigures explicitly.
  if (pool.lanes == 0) {
    static std::once_flag once;
    std::call_once(once, [&pool] { configure(pool, env_thread_count()); });
  }
  return pool;
}

}  // namespace

int thread_count() { return pool().lanes; }

void set_thread_count(int count) {
  Pool& state = pool_state();
  if (state.lanes == count && count >= 1) return;
  configure(state, count);
}

std::size_t worker_slots() { return static_cast<std::size_t>(pool().lanes); }

std::size_t this_worker_slot() { return t_lane; }

bool inside_parallel_region() { return t_in_region; }

namespace detail {

void run_chunks(std::size_t chunk_count, const ChunkFnRef& chunk_fn) {
  if (chunk_count == 0) return;
  Pool& state = pool();
  // Nested region (issued from inside a chunk, on a worker or on the caller
  // draining as lane 0) or serial pool: run inline, in chunk order — the
  // chunk structure is identical, so results are too.
  if (t_in_region || state.lanes <= 1) {
    PPACD_COUNT("exec.tasks.executed", chunk_count);
    for (std::size_t c = 0; c < chunk_count; ++c) chunk_fn(c);
    return;
  }

  // One region at a time; concurrent callers (not used by the flow) queue up.
  std::lock_guard<std::mutex> region_lock(state.region_mutex);
  std::unique_lock<std::mutex> lock(state.mutex);
  state.fn = &chunk_fn;
  state.pending = chunk_count;
  state.failed.store(false, std::memory_order_release);
  state.error = nullptr;
  state.queues.assign(static_cast<std::size_t>(state.lanes), {});
  for (std::size_t c = 0; c < chunk_count; ++c) {
    state.queues[c % static_cast<std::size_t>(state.lanes)].push_back(c);
  }
  state.work_cv.notify_all();

  drain_region(state, lock, /*lane=*/0);  // the caller participates as lane 0
  state.done_cv.wait(lock, [&state] { return state.pending == 0; });
  state.fn = nullptr;
  state.queues.clear();
  const std::exception_ptr error = state.error;
  state.error = nullptr;
  lock.unlock();
  state.work_cv.notify_all();  // release workers parked on the drained region
  if (error) std::rethrow_exception(error);
}

}  // namespace detail

}  // namespace ppacd::exec
