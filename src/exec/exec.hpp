/// \file exec.hpp
/// \brief Deterministic parallel execution: a fixed-size work-stealing thread
/// pool plus `parallel_for` / `parallel_reduce` helpers used by the flow's
/// hot paths (V-P&R shape sweeps, quadratic placement, routing, STA).
///
/// Determinism contract (see DESIGN.md "Parallel execution"):
///   * Work is split into chunks whose boundaries depend ONLY on the range
///     and the `grain` argument — never on the thread count or on runtime
///     timing. Callers pick a fixed grain per call site.
///   * `parallel_reduce` combines chunk results in ascending chunk order on
///     the calling thread, so floating-point accumulation order — and thus
///     the bit pattern of the result — is identical for any pool size,
///     including the serial (1-thread) configuration.
///   * Any randomness inside a chunk must derive from an explicit seed plus
///     the chunk/task index (util::Rng), never from a thread id.
/// Under this contract `--threads 1` and `--threads N` produce bit-identical
/// flow results; tests/determinism_test.cpp enforces it end to end.
///
/// Pool model: one process-wide lazily-created pool of `thread_count() - 1`
/// worker threads; the calling thread participates as lane 0. Each lane owns
/// a chunk deque (filled round-robin); idle lanes steal from the back of
/// other lanes' deques (`exec.steal.count`). A `parallel_for` issued from
/// inside a worker (nested parallelism) runs its chunks inline, in order, on
/// that worker — no new tasks, no deadlock, same chunk structure.
///
/// Sizing: `PPACD_THREADS` environment variable, else
/// std::thread::hardware_concurrency(); `set_thread_count()` (e.g. from a
/// `--threads` CLI flag) reconfigures the pool between parallel regions.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace ppacd::exec {

/// Grain value meaning "never split": the whole range runs as one chunk on
/// the calling thread, degrading every helper below to its serial form.
inline constexpr std::size_t kSerialGrain = static_cast<std::size_t>(-1);

/// Current pool width in lanes (worker threads + the calling thread); >= 1.
int thread_count();

/// Reconfigures the pool to `count` lanes (clamped to >= 1), joining the old
/// workers first. Must not be called from inside a parallel region or while
/// one is running on another thread.
void set_thread_count(int count);

/// Number of scratch slots a parallel region may index with
/// this_worker_slot(): equal to thread_count().
std::size_t worker_slots();

/// Stable slot of the executing lane in [0, worker_slots()): 0 for the
/// calling (non-pool) thread, 1..N-1 for pool workers. Use it to index
/// per-lane scratch (e.g. the V-P&R scratch netlists); never use it to seed
/// randomness (slot occupancy is timing-dependent, chunk indices are not).
std::size_t this_worker_slot();

/// True while the current thread is executing a region chunk — on a pool
/// worker or on the calling thread draining as lane 0. Nested parallel calls
/// run inline in that case.
bool inside_parallel_region();

namespace detail {

/// Non-owning view of the region body. run_chunks only borrows the caller's
/// lambda for the duration of the (blocking) region, so issuing a parallel
/// region never heap-allocates — a std::function parameter would copy the
/// capture onto the heap on every parallel_for call on a hot path.
class ChunkFnRef {
 public:
  template <typename Fn>
  ChunkFnRef(const Fn& fn)  // NOLINT(google-explicit-constructor)
      : ctx_(const_cast<void*>(static_cast<const void*>(&fn))),
        call_([](void* ctx, std::size_t c) {
          (*static_cast<const Fn*>(ctx))(c);
        }) {}

  void operator()(std::size_t chunk) const { call_(ctx_, chunk); }

 private:
  void* ctx_;
  void (*call_)(void*, std::size_t);
};

/// Runs chunk_fn(0..chunk_count-1) across the pool; blocks until all chunks
/// finish. Rethrows the first chunk exception after the region drains.
void run_chunks(std::size_t chunk_count, const ChunkFnRef& chunk_fn);

/// Number of chunks for `n` items at the given grain (grain 0 acts as 1).
inline std::size_t chunk_count_for(std::size_t n, std::size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  if (grain >= n) return 1;
  return (n + grain - 1) / grain;
}

}  // namespace detail

/// Calls fn(chunk_begin, chunk_end, chunk_index) for every grain-sized chunk
/// of [begin, end). Chunk boundaries depend only on the range and grain.
template <typename Fn>
void parallel_for_chunks(std::size_t begin, std::size_t end, std::size_t grain,
                         Fn&& fn) {
  const std::size_t n = end > begin ? end - begin : 0;
  const std::size_t chunks = detail::chunk_count_for(n, grain);
  if (chunks == 0) return;
  if (chunks == 1) {
    fn(begin, end, std::size_t{0});
    return;
  }
  const std::size_t step = grain == 0 ? 1 : grain;
  detail::run_chunks(chunks, [&](std::size_t c) {
    const std::size_t b = begin + c * step;
    const std::size_t e = b + step < end ? b + step : end;
    fn(b, e, c);
  });
}

/// Calls fn(i) for every i in [begin, end), chunked by grain.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Fn&& fn) {
  parallel_for_chunks(begin, end, grain,
                      [&fn](std::size_t b, std::size_t e, std::size_t) {
                        for (std::size_t i = b; i < e; ++i) fn(i);
                      });
}

/// Ordered chunk-indexed reduction: map(chunk_begin, chunk_end) -> T runs in
/// parallel per chunk; the partials are folded as
/// combine(...combine(combine(identity, p0), p1)..., pK) in ascending chunk
/// order on the calling thread, making the result independent of the thread
/// count (bit-identical for floating-point T).
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T identity, Map&& map, Combine&& combine) {
  const std::size_t n = end > begin ? end - begin : 0;
  const std::size_t chunks = detail::chunk_count_for(n, grain);
  if (chunks == 0) return identity;
  if (chunks == 1) return combine(std::move(identity), map(begin, end));
  const std::size_t step = grain == 0 ? 1 : grain;
  std::vector<T> partials(chunks, identity);
  detail::run_chunks(chunks, [&](std::size_t c) {
    const std::size_t b = begin + c * step;
    const std::size_t e = b + step < end ? b + step : end;
    partials[c] = map(b, e);
  });
  T result = std::move(identity);
  for (std::size_t c = 0; c < chunks; ++c) {
    result = combine(std::move(result), std::move(partials[c]));
  }
  return result;
}

}  // namespace ppacd::exec
