/// \file activity.hpp
/// \brief Vectorless switching-activity propagation (OpenSTA
/// `findClkedActivity` substitute).
///
/// Computes, for every net, the static probability of being 1 and the toggle
/// rate (expected transitions per clock cycle). Primary inputs get default
/// activities; combinational gates propagate them with the standard Boolean
/// difference formulas under an input-independence assumption; flip-flops
/// resample their D probability each cycle with a temporal-correlation
/// damping factor. Because registered feedback makes activities circular,
/// the analysis sweeps the logic a few times to a fixpoint.
///
/// The resulting per-net toggle rate is the theta_e of the switching cost
/// (Eq. 2) and the input to the dynamic-power report.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace ppacd::sta {

/// Per-net signal statistics.
struct NetActivity {
  double p_one = 0.5;   ///< probability the signal is logic 1
  double toggle = 0.0;  ///< expected transitions per clock cycle
};

struct ActivityOptions {
  double input_p = 0.5;       ///< static probability at primary inputs
  double input_toggle = 0.2;  ///< toggle rate at primary inputs (mean)
  double dff_damping = 0.5;   ///< temporal-correlation damping at registers
  int sweeps = 3;             ///< fixpoint sweeps over registered feedback
  double max_toggle = 2.0;    ///< clamp on propagated transition density
};

/// Runs vectorless activity analysis; the result is indexed by NetId.
std::vector<NetActivity> propagate_activity(const netlist::Netlist& netlist,
                                            const ActivityOptions& options);

}  // namespace ppacd::sta
