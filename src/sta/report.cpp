#include "sta/report.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace ppacd::sta {

std::string pin_name(const netlist::Netlist& nl, netlist::PinId pin_id) {
  const netlist::Pin& pin = nl.pin(pin_id);
  if (pin.kind == netlist::PinKind::kTopPort) {
    return nl.port(pin.port).name;
  }
  const netlist::Cell& cell = nl.cell(pin.cell);
  const liberty::LibCell& lc = nl.lib_cell_of(pin.cell);
  return cell.name + "/" + lc.pins[static_cast<std::size_t>(pin.lib_pin)].name;
}

std::string report_checks(const netlist::Netlist& nl, const Sta& sta,
                          std::size_t max_paths) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1);
  const auto paths = sta.worst_paths(max_paths);
  for (const TimingPath& path : paths) {
    out << "Startpoint: " << pin_name(nl, path.pins.front()) << "\n";
    out << "Endpoint:   " << pin_name(nl, path.pins.back()) << "\n";
    out << "  " << std::setw(10) << "arrival" << "  " << std::setw(10)
        << "incr" << "  pin\n";
    double previous = 0.0;
    for (const netlist::PinId pid : path.pins) {
      const double arrival = sta.arrival_ps(pid);
      out << "  " << std::setw(10) << arrival << "  " << std::setw(10)
          << arrival - previous << "  " << pin_name(nl, pid) << "\n";
      previous = arrival;
    }
    const double required = sta.required_ps(path.endpoint);
    out << "  required " << required << " ps, arrival " << path.arrival_ps
        << " ps, slack " << path.slack_ps << " ps"
        << (path.slack_ps < 0.0 ? " (VIOLATED)" : "") << "\n\n";
  }
  return out.str();
}

std::string report_summary(const netlist::Netlist& nl, const Sta& sta) {
  std::size_t violating = 0;
  for (const netlist::PinId ep : sta.endpoints()) {
    const double s = sta.slack_ps(ep);
    if (std::isfinite(s) && s < 0.0) ++violating;
  }
  std::ostringstream out;
  out << std::fixed << std::setprecision(2);
  out << nl.name() << ": WNS " << sta.wns_ps() << " ps, TNS " << sta.tns_ns()
      << " ns, " << violating << "/" << sta.endpoints().size()
      << " endpoints violating";
  return out.str();
}

}  // namespace ppacd::sta
