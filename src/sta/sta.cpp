#include "sta/sta.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <new>
#include <queue>

#include "exec/exec.hpp"
#include "fault/fault.hpp"
#include "observe/observe.hpp"
#include "telemetry/telemetry.hpp"
#include "util/simd.hpp"
#include "util/logging.hpp"

namespace ppacd::sta {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Pins per parallel chunk in the level sweeps; a level must be much wider
// than this before fan-out pays for itself.
constexpr std::size_t kPinGrain = 256;
}

Sta::Sta(const netlist::Netlist& netlist, const StaOptions& options)
    : nl_(&netlist), options_(options) {}

geom::Point Sta::pin_position(netlist::PinId pin_id) const {
  const netlist::Pin& pin = nl_->pin(pin_id);
  if (pin.kind == netlist::PinKind::kTopPort) {
    return nl_->port(pin.port).position;
  }
  assert(options_.cell_positions != nullptr);
  return options_.cell_positions->at(pin.cell.index());
}

double Sta::clock_arrival_of(netlist::CellId cell) const {
  if (options_.clock_arrivals_ps == nullptr) return 0.0;
  return options_.clock_arrivals_ps->at(cell.index());
}

double Sta::net_wirelength_um(netlist::NetId net_id) const {
  if (options_.cell_positions == nullptr) return 0.0;
  geom::BBox box;
  for (netlist::PinId pid : nl_->net(net_id).pins) {
    box.expand(pin_position(pid));
  }
  return box.half_perimeter();
}

void Sta::build_graph() {
  const netlist::Netlist& nl = *nl_;
  const liberty::Library& lib = nl.library();
  arc_from_.clear();
  arc_to_.clear();
  arc_delay_.clear();
  endpoints_.clear();

  auto add_arc = [this](netlist::PinId from, netlist::PinId to, double delay) {
    arc_from_.push_back(from);
    arc_to_.push_back(to);
    arc_delay_.push_back(delay);
  };

  // Per-net: driver load capacitance and per-sink wire delay.
  const bool placed = options_.cell_positions != nullptr;
  std::vector<double> net_load_ff(nl.net_count(), 0.0);
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const netlist::NetId net_id = static_cast<netlist::NetId>(ni);
    const netlist::Net& net = nl.net(net_id);
    if (net.is_clock || net.driver == netlist::kInvalidId) continue;

    double load = 0.0;
    for (netlist::PinId pid : net.pins) {
      if (pid == net.driver) continue;
      const netlist::Pin& pin = nl.pin(pid);
      if (pin.kind == netlist::PinKind::kCellPin) {
        load += lib.cell(nl.cell(pin.cell).lib_cell)
                    .pins[static_cast<std::size_t>(pin.lib_pin)]
                    .cap_ff;
      }
    }
    if (placed) {
      load += lib.wire_cap_ff_per_um() * net_wirelength_um(net_id);
    }
    net_load_ff[ni] = load;

    // Net arcs: driver -> each sink, Elmore-style wire delay.
    const geom::Point driver_pos = placed ? pin_position(net.driver) : geom::Point{};
    for (netlist::PinId pid : net.pins) {
      if (pid == net.driver) continue;
      double wire_delay = 0.0;
      if (placed) {
        const double len = geom::manhattan(driver_pos, pin_position(pid));
        const netlist::Pin& pin = nl.pin(pid);
        double sink_cap = 0.0;
        if (pin.kind == netlist::PinKind::kCellPin) {
          sink_cap = lib.cell(nl.cell(pin.cell).lib_cell)
                         .pins[static_cast<std::size_t>(pin.lib_pin)]
                         .cap_ff;
        }
        wire_delay = lib.wire_res_kohm_per_um() * len *
                     (0.5 * lib.wire_cap_ff_per_um() * len + sink_cap);
      }
      add_arc(net.driver, pid, wire_delay);
    }
  }

  // Cell arcs.
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const netlist::CellId cid = static_cast<netlist::CellId>(ci);
    const netlist::Cell& cell = nl.cell(cid);
    const liberty::LibCell& lc = lib.cell(cell.lib_cell);
    const netlist::PinId out = nl.cell_output_pin(cid);
    if (out == netlist::kInvalidId) continue;

    const netlist::NetId out_net = nl.pin(out).net;
    const double load =
        out_net == netlist::kInvalidId ? 0.0 : net_load_ff[out_net.index()];
    const double delay = lc.intrinsic_ps + lc.drive_res_kohm * load;

    if (liberty::is_sequential(lc.function)) {
      const int ck = lc.clock_pin_index();
      assert(ck >= 0);
      add_arc(nl.cell_pin(cid, ck), out, delay);  // CK -> Q launch arc
    } else {
      for (netlist::PinId pid : cell.pins) {
        const netlist::Pin& pin = nl.pin(pid);
        if (pin.dir == liberty::PinDir::kInput && !pin.is_clock) {
          add_arc(pid, out, delay);
        }
      }
    }
  }

  // Endpoints: flip-flop D pins and output ports.
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const netlist::CellId cid = static_cast<netlist::CellId>(ci);
    const liberty::LibCell& lc = lib.cell(nl.cell(cid).lib_cell);
    if (!liberty::is_sequential(lc.function)) continue;
    for (netlist::PinId pid : nl.cell(cid).pins) {
      const netlist::Pin& pin = nl.pin(pid);
      if (pin.dir == liberty::PinDir::kInput && !pin.is_clock) {
        endpoints_.push_back(pid);
      }
    }
  }
  for (std::size_t po = 0; po < nl.port_count(); ++po) {
    const netlist::Port& port = nl.port(static_cast<netlist::PortId>(po));
    if (port.dir == liberty::PinDir::kOutput) endpoints_.push_back(port.pin);
  }

  // Flat per-pin arc lists, filled in arc creation order so each
  // row reads exactly like the push_back sequence it replaced.
  fanin_arcs_.start_rows(nl.pin_count());
  fanout_arcs_.start_rows(nl.pin_count());
  const std::size_t arc_count = arc_from_.size();
  for (std::size_t ai = 0; ai < arc_count; ++ai) {
    fanout_arcs_.add_to_row(arc_from_[ai].index());
    fanin_arcs_.add_to_row(arc_to_[ai].index());
  }
  fanin_arcs_.commit_rows();
  fanout_arcs_.commit_rows();
  for (std::size_t ai = 0; ai < arc_count; ++ai) {
    fanout_arcs_.push(arc_from_[ai].index(),
                      static_cast<std::int32_t>(ai));
    fanin_arcs_.push(arc_to_[ai].index(),
                     static_cast<std::int32_t>(ai));
  }

  // Topological order (Kahn).
  topo_order_.clear();
  topo_order_.reserve(nl.pin_count());
  std::vector<std::int32_t> pending(nl.pin_count(), 0);
  std::queue<netlist::PinId> ready;
  for (std::size_t p = 0; p < nl.pin_count(); ++p) {
    pending[p] = static_cast<std::int32_t>(fanin_arcs_.row_size(p));
    if (pending[p] == 0) ready.push(static_cast<netlist::PinId>(p));
  }
  while (!ready.empty()) {
    const netlist::PinId pid = ready.front();
    ready.pop();
    topo_order_.push_back(pid);
    for (std::int32_t ai : fanout_arcs_.row(pid.index())) {
      const netlist::PinId to = arc_to_[static_cast<std::size_t>(ai)];
      if (--pending[to.index()] == 0) ready.push(to);
    }
  }
  assert(topo_order_.size() == nl.pin_count() && "timing graph has a cycle");

  // Level = longest fanin distance. All arcs cross level boundaries, so the
  // pins of one level never feed each other and a level can be processed
  // pin-parallel. Buckets are filled in topo order, keeping their contents
  // independent of how the sweep is later chunked.
  std::vector<std::int32_t> level(nl.pin_count(), 0);
  std::int32_t max_level = 0;
  for (const netlist::PinId pid : topo_order_) {
    const auto p = pid.index();
    for (std::int32_t ai : fanout_arcs_.row(p)) {
      const auto to = arc_to_[static_cast<std::size_t>(ai)].index();
      level[to] = std::max(level[to], level[p] + 1);
    }
    max_level = std::max(max_level, level[p]);
  }
  level_buckets_.start_rows(static_cast<std::size_t>(max_level) + 1);
  for (const netlist::PinId pid : topo_order_) {
    level_buckets_.add_to_row(
        static_cast<std::size_t>(level[pid.index()]));
  }
  level_buckets_.commit_rows();
  for (const netlist::PinId pid : topo_order_) {
    level_buckets_.push(
        static_cast<std::size_t>(level[pid.index()]), pid);
  }
}

void Sta::propagate_arrivals() {
  const netlist::Netlist& nl = *nl_;
  arrival_.assign(nl.pin_count(), -kInf);
  worst_fanin_.assign(nl.pin_count(), -1);

  // Sources: pins without fanin arcs. Clock pins launch at their cell's
  // clock arrival; everything else (input ports, dangling) launches at 0.
  for (std::size_t p = 0; p < nl.pin_count(); ++p) {
    if (fanin_arcs_.row_size(p) != 0) continue;
    const netlist::Pin& pin = nl.pin(static_cast<netlist::PinId>(p));
    arrival_[p] = pin.is_clock && pin.kind == netlist::PinKind::kCellPin
                      ? clock_arrival_of(pin.cell)
                      : 0.0;
  }

  // Flight recorder: sampled per-level sweep widths (how much pin-parallel
  // work each level exposes). Serial emit from the loop head; nested STA
  // runs keep observe_stream off so only the flow's evaluation streams.
  const bool observing = options_.observe_stream && observe::active();
  const std::int32_t obs_series =
      observing ? observe::recorder().begin_series(observe::Stream::kStaLevel)
                : -1;

  // Pull-based blocked level sweep: every pin beyond level 0 folds its own
  // fanin slots in arc order, so arrivals and the worst-arc choice are
  // identical for any thread count. Lower levels are complete before a
  // level starts. Each chunk walks the arc lanes through restrict pointers,
  // touching only the 4-byte source ids and 8-byte delays (not whole arc
  // records); `arr` is both read (sources, lower levels) and written (this
  // level), which restrict allows for one pointer — nothing else aliases it.
  const std::size_t* PPACD_RESTRICT fin_off = fanin_arcs_.offsets().data();
  const std::int32_t* PPACD_RESTRICT fin_arc = fanin_arcs_.values().data();
  const netlist::PinId* PPACD_RESTRICT src = arc_from_.data();
  const double* PPACD_RESTRICT dly = arc_delay_.data();
  double* PPACD_RESTRICT arr = arrival_.data();
  std::int32_t* PPACD_RESTRICT wf = worst_fanin_.data();
  for (std::size_t l = 1; l < level_buckets_.rows(); ++l) {
    const std::span<const netlist::PinId> bucket = level_buckets_.row(l);
    if (observing &&
        observe::recorder().want(static_cast<std::int64_t>(l))) {
      observe::recorder().record(observe::Stream::kStaLevel, obs_series,
                                 static_cast<std::int64_t>(l), 0,
                                 {static_cast<double>(bucket.size())});
    }
    const netlist::PinId* PPACD_RESTRICT pins = bucket.data();
    exec::parallel_for_chunks(
        std::size_t{0}, bucket.size(), kPinGrain,
        [=](std::size_t lo, std::size_t hi, std::size_t) {
          for (std::size_t i = lo; i < hi; ++i) {
            const auto p = pins[i].index();
            double best = -kInf;
            std::int32_t best_arc = -1;
            for (std::size_t k = fin_off[p]; k < fin_off[p + 1]; ++k) {
              const std::int32_t ai = fin_arc[k];
              const double candidate = arr[src[ai].index()] + dly[ai];
              if (candidate > best) {
                best = candidate;
                best_arc = ai;
              }
            }
            arr[p] = best;
            wf[p] = best_arc;
          }
        });
  }
}

void Sta::propagate_requireds() {
  const netlist::Netlist& nl = *nl_;
  required_.assign(nl.pin_count(), kInf);
  const double period = options_.clock_period_ps;

  for (const netlist::PinId pid : endpoints_) {
    const netlist::Pin& pin = nl.pin(pid);
    double req = period;
    if (pin.kind == netlist::PinKind::kCellPin) {
      const liberty::LibCell& lc = nl.lib_cell_of(pin.cell);
      req = period + clock_arrival_of(pin.cell) - lc.setup_ps;
    }
    required_[pid.index()] =
        std::min(required_[pid.index()], req);
  }

  // Pull-based blocked level sweep, levels descending: each pin min-folds
  // its fanout slots (all pointing at higher, already-final levels) on top
  // of its endpoint requirement, thread-count independent as for arrivals.
  const std::size_t* PPACD_RESTRICT fout_off = fanout_arcs_.offsets().data();
  const std::int32_t* PPACD_RESTRICT fout_arc = fanout_arcs_.values().data();
  const netlist::PinId* PPACD_RESTRICT dst = arc_to_.data();
  const double* PPACD_RESTRICT dly = arc_delay_.data();
  double* PPACD_RESTRICT req_arr = required_.data();
  for (std::size_t l = level_buckets_.rows(); l-- > 0;) {
    const std::span<const netlist::PinId> bucket = level_buckets_.row(l);
    const netlist::PinId* PPACD_RESTRICT pins = bucket.data();
    exec::parallel_for_chunks(
        std::size_t{0}, bucket.size(), kPinGrain,
        [=](std::size_t lo, std::size_t hi, std::size_t) {
          for (std::size_t i = lo; i < hi; ++i) {
            const auto p = pins[i].index();
            double req = req_arr[p];
            for (std::size_t k = fout_off[p]; k < fout_off[p + 1]; ++k) {
              const std::int32_t ai = fout_arc[k];
              req = std::min(req, req_arr[dst[ai].index()] - dly[ai]);
            }
            req_arr[p] = req;
          }
        });
  }

  wns_ps_ = 0.0;
  tns_ns_ = 0.0;
  for (const netlist::PinId pid : endpoints_) {
    const double s = slack_ps(pid);
    if (s < 0.0) {
      wns_ps_ = std::min(wns_ps_, s);
      tns_ns_ += s / 1000.0;
    }
  }
}

void Sta::run() {
  build_graph();
  propagate_arrivals();
  propagate_requireds();
  ran_ = true;
  if (options_.observe_stream && observe::active()) {
    // End-of-run endpoint slack histogram. Unconstrained endpoints (slack
    // +inf) are excluded; the frame layout is [lo_ps, hi_ps, count_0..n-1].
    std::vector<double> slacks;
    slacks.reserve(endpoints_.size());
    for (const netlist::PinId pid : endpoints_) {
      const double s = slack_ps(pid);
      if (std::isfinite(s)) slacks.push_back(s);
    }
    constexpr int kSlackBins = 32;
    std::vector<double> frame(2 + kSlackBins, 0.0);
    if (!slacks.empty()) {
      double lo = slacks[0];
      double hi = slacks[0];
      for (const double s : slacks) {
        lo = std::min(lo, s);
        hi = std::max(hi, s);
      }
      if (hi <= lo) hi = lo + 1.0;  // degenerate: all slacks identical
      frame[0] = lo;
      frame[1] = hi;
      for (const double s : slacks) {
        const int bin = std::min(
            kSlackBins - 1,
            static_cast<int>((s - lo) / (hi - lo) * kSlackBins));
        frame[static_cast<std::size_t>(2 + bin)] += 1.0;
      }
    }
    const std::int32_t series =
        observe::recorder().begin_series(observe::Stream::kStaSlack);
    observe::recorder().record_frame(observe::Stream::kStaSlack, series, 0,
                                     kSlackBins, 0, std::move(frame));
  }
  PPACD_COUNT("sta.runs", 1);
  PPACD_GAUGE_SET("sta.wns_ps", wns_ps_);
  PPACD_GAUGE_SET("sta.tns_ns", tns_ns_);
  PPACD_LOG_DEBUG("sta") << nl_->name() << ": WNS " << wns_ps_ << " ps, TNS "
                         << tns_ns_ << " ns";
}

fault::Expected<void, fault::FlowError> Sta::try_run() {
  if (const auto kind = fault::trigger("sta.arrival")) {
    switch (*kind) {
      case fault::FaultKind::kPoison:
        // Poison the propagated metrics, then let the non-finite check
        // below turn them into a structured error.
        run();
        wns_ps_ = fault::poison_value();
        tns_ns_ = fault::poison_value();
        break;
      case fault::FaultKind::kAlloc:
        // Exercise the real catch path below.
        try {
          throw std::bad_alloc();
        } catch (const std::bad_alloc&) {
          ran_ = false;
          return fault::Unexpected<fault::FlowError>(
              fault::make_error("sta.arrival", *kind));
        }
      default:
        ran_ = false;
        return fault::Unexpected<fault::FlowError>(
            fault::make_error("sta.arrival", *kind));
    }
  } else {
    try {
      run();
    } catch (const std::bad_alloc&) {
      ran_ = false;
      return fault::Unexpected<fault::FlowError>(
          fault::make_error("sta.arrival", fault::FaultKind::kAlloc));
    }
  }
  if (!std::isfinite(wns_ps_) || !std::isfinite(tns_ns_)) {
    ran_ = false;
    return fault::err("non-finite-result", "sta.arrival",
                      "propagated WNS/TNS is not finite");
  }
  return {};
}

double Sta::slack_ps(netlist::PinId pin) const {
  const double a = arrival_.at(pin.index());
  const double r = required_.at(pin.index());
  if (a == -kInf || r == kInf) return kInf;
  return r - a;
}

double Sta::net_slack_ps(netlist::NetId net_id) const {
  const netlist::Net& net = nl_->net(net_id);
  if (net.is_clock || net.driver == netlist::kInvalidId) return kInf;
  return slack_ps(net.driver);
}

std::vector<TimingPath> Sta::worst_paths(std::size_t max_paths) const {
  assert(ran_);
  std::vector<netlist::PinId> sorted = endpoints_;
  std::sort(sorted.begin(), sorted.end(),
            [this](netlist::PinId a, netlist::PinId b) {
              return slack_ps(a) < slack_ps(b);
            });
  if (sorted.size() > max_paths) sorted.resize(max_paths);

  std::vector<TimingPath> paths;
  paths.reserve(sorted.size());
  for (const netlist::PinId end : sorted) {
    if (slack_ps(end) == kInf) continue;  // unconstrained endpoint
    TimingPath path;
    path.endpoint = end;
    path.slack_ps = slack_ps(end);
    path.arrival_ps = arrival_.at(end.index());
    // Backtrack the arrival-defining chain to a source.
    netlist::PinId cursor = end;
    while (cursor != netlist::kInvalidId) {
      path.pins.push_back(cursor);
      const std::int32_t ai = worst_fanin_[cursor.index()];
      cursor = ai < 0 ? netlist::kInvalidId : arc_from_[static_cast<std::size_t>(ai)];
    }
    std::reverse(path.pins.begin(), path.pins.end());
    paths.push_back(std::move(path));
  }
  PPACD_COUNT("sta.paths.extracted", paths.size());
  return paths;
}

}  // namespace ppacd::sta
