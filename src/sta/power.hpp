/// \file power.hpp
/// \brief Total-power report (the `Power` column of Tables 3-6).
///
/// Power = switching + leakage. Switching power of a net is
/// 0.5 * Vdd^2 * C_net * toggle * f_clk, where C_net sums sink pin caps and
/// (when placement is available) HPWL-based wire capacitance; toggle rates
/// come from the vectorless activity analysis. Leakage sums the library's
/// per-cell leakage. Internal (short-circuit) power is folded into switching
/// via a fixed 10% uplift, matching the coarse granularity of this model.
#pragma once

#include <vector>

#include "geom/geometry.hpp"
#include "netlist/netlist.hpp"
#include "sta/activity.hpp"

namespace ppacd::sta {

struct PowerReport {
  double switching_w = 0.0;
  double leakage_w = 0.0;
  double clock_w = 0.0;  ///< share of switching_w spent on clock nets
  double total_w = 0.0;
};

/// Computes the power report. `cell_positions` may be null (ideal wires).
PowerReport compute_power(const netlist::Netlist& netlist,
                          const std::vector<NetActivity>& activities,
                          double clock_period_ps,
                          const std::vector<geom::Point>* cell_positions);

}  // namespace ppacd::sta
