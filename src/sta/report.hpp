/// \file report.hpp
/// \brief Human-readable timing reports (OpenSTA `report_checks` substitute).
#pragma once

#include <string>

#include "sta/sta.hpp"

namespace ppacd::sta {

/// Full pin name: "cell/PIN" for cell pins, the port name for ports.
std::string pin_name(const netlist::Netlist& netlist, netlist::PinId pin);

/// OpenSTA-style per-path report for the `max_paths` worst endpoints:
/// startpoint, endpoint, pin-by-pin arrival trace, required time and slack.
/// `sta.run()` must have been called.
std::string report_checks(const netlist::Netlist& netlist, const Sta& sta,
                          std::size_t max_paths = 3);

/// One-line design summary: WNS / TNS / endpoint and violation counts.
std::string report_summary(const netlist::Netlist& netlist, const Sta& sta);

}  // namespace ppacd::sta
