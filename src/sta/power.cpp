#include "sta/power.hpp"

#include <cassert>

namespace ppacd::sta {

PowerReport compute_power(const netlist::Netlist& nl,
                          const std::vector<NetActivity>& activities,
                          double clock_period_ps,
                          const std::vector<geom::Point>* cell_positions) {
  assert(activities.size() == nl.net_count());
  const liberty::Library& lib = nl.library();
  PowerReport report;
  const double vdd = lib.vdd();
  constexpr double kInternalUplift = 1.10;

  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const netlist::NetId net_id = static_cast<netlist::NetId>(ni);
    const netlist::Net& net = nl.net(net_id);
    if (net.driver == netlist::kInvalidId) continue;

    double cap_ff = 0.0;
    for (netlist::PinId pid : net.pins) {
      const netlist::Pin& pin = nl.pin(pid);
      if (pin.kind != netlist::PinKind::kCellPin) continue;
      cap_ff += lib.cell(nl.cell(pin.cell).lib_cell)
                    .pins[static_cast<std::size_t>(pin.lib_pin)]
                    .cap_ff;
    }
    if (cell_positions != nullptr) {
      geom::BBox box;
      for (netlist::PinId pid : net.pins) {
        const netlist::Pin& pin = nl.pin(pid);
        if (pin.kind == netlist::PinKind::kTopPort) {
          box.expand(nl.port(pin.port).position);
        } else {
          box.expand(cell_positions->at(pin.cell.index()));
        }
      }
      cap_ff += lib.wire_cap_ff_per_um() * box.half_perimeter();
    }

    // 0.5 * V^2 * C[fF]*1e-15 * toggle * f[1/ps]*1e12  ==
    // 0.5e-3 * V^2 * C_ff * toggle / TCP_ps  (watts)
    const double p_net = 0.5e-3 * vdd * vdd * cap_ff *
                         activities[ni].toggle / clock_period_ps *
                         kInternalUplift;
    report.switching_w += p_net;
    if (net.is_clock) report.clock_w += p_net;
  }

  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    report.leakage_w +=
        nl.lib_cell_of(static_cast<netlist::CellId>(ci)).leakage_uw * 1e-6;
  }
  report.total_w = report.switching_w + report.leakage_w;
  return report;
}

}  // namespace ppacd::sta
