/// \file sta.hpp
/// \brief Graph-based static timing analysis (OpenSTA substitute).
///
/// Provides what the paper extracts from OpenSTA (Alg. 1 lines 4-5) and what
/// the evaluation records (lines 27-29):
///   * arrival/required/slack per pin under a single-clock constraint,
///   * WNS/TNS over all endpoints (flip-flop D pins and output ports),
///   * the top |P| critical paths, one per endpoint, sorted by slack
///     (mirrors `findPathEnds` with endpoint_count=1, sort_by_slack=true),
///   * per-net slacks consumed by the PPA-aware clustering (Eq. 3).
///
/// Interconnect model: without placement, wires are ideal (pin caps only).
/// With placement, each driver-sink connection gets an Elmore-style delay
/// from its Manhattan length and the library's per-um R/C, and the driver's
/// load includes the net's HPWL wire capacitance.
///
/// Clocks: one ideal clock of period `clock_period_ps`. Per-register clock
/// arrival times (CTS insertion delays) can be injected to model the
/// post-CTS network; launch and capture edges then use those arrivals.
#pragma once

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "fault/expected.hpp"
#include "geom/geometry.hpp"
#include "netlist/netlist.hpp"
#include "util/csr.hpp"

namespace ppacd::sta {

/// One timing path: ordered pins from a launch point to an endpoint.
struct TimingPath {
  std::vector<netlist::PinId> pins;
  double slack_ps = 0.0;
  double arrival_ps = 0.0;
  netlist::PinId endpoint = netlist::kInvalidId;
};

/// Analysis options.
struct StaOptions {
  double clock_period_ps = 1000.0;
  /// Cell center positions indexed by CellId; empty => ideal wires.
  const std::vector<geom::Point>* cell_positions = nullptr;
  /// Clock arrival (insertion delay) per cell, indexed by CellId; empty =>
  /// ideal clock (arrival 0 everywhere). Only sequential cells are read.
  const std::vector<double>* clock_arrivals_ps = nullptr;
  /// Stream per-level sweep widths and the end-of-run endpoint slack
  /// histogram to the flight recorder (src/observe). Off by default so the
  /// many nested STA runs (clustering costs, shape sweeps) stay silent; the
  /// flow enables it for the top-level PPA evaluation only.
  bool observe_stream = false;
};

/// Static timing engine. Construct, then call run(); queries are valid until
/// the netlist changes.
class Sta {
 public:
  Sta(const netlist::Netlist& netlist, const StaOptions& options);

  /// Propagates arrivals and requireds. Must be called before queries.
  /// Asserts on failure; prefer try_run() in fault-tolerant callers.
  void run();

  /// Fallible form of run(): returns a structured error instead of aborting
  /// when the `sta.arrival` fault site fires, the propagated WNS/TNS come
  /// out non-finite, or allocation fails. On error the engine stays
  /// un-run (queries are invalid) and the caller decides the degradation
  /// (the flow falls back to HPWL-only cost; see fault::DegradePolicy).
  [[nodiscard]] fault::Expected<void, fault::FlowError> try_run();

  // --- Queries ---------------------------------------------------------------
  double arrival_ps(netlist::PinId pin) const { return arrival_.at(pin.index()); }
  double required_ps(netlist::PinId pin) const { return required_.at(pin.index()); }
  double slack_ps(netlist::PinId pin) const;

  /// Worst negative slack over all endpoints (0 if none negative).
  double wns_ps() const { return wns_ps_; }
  /// Total negative slack in ns (sum of negative endpoint slacks), <= 0.
  double tns_ns() const { return tns_ns_; }

  /// Slack of a net: slack at its driver pin (used as the net slack by the
  /// clustering timing cost). Returns +inf for undriven/clock nets.
  double net_slack_ps(netlist::NetId net) const;

  /// The worst path per endpoint, sorted by ascending slack, at most
  /// `max_paths` entries (the paper uses |P| = 100000, i.e. effectively all).
  std::vector<TimingPath> worst_paths(std::size_t max_paths) const;

  /// All endpoints (flip-flop D pins and output-port pins).
  const std::vector<netlist::PinId>& endpoints() const { return endpoints_; }

  /// Estimated wire length of `net` (HPWL); 0 under ideal wires.
  double net_wirelength_um(netlist::NetId net) const;

 private:
  geom::Point pin_position(netlist::PinId pin) const;
  double clock_arrival_of(netlist::CellId cell) const;
  void build_graph();
  void propagate_arrivals();
  void propagate_requireds();

  const netlist::Netlist* nl_;
  StaOptions options_;

  /// Timing arcs in SoA lanes indexed by arc id (DESIGN.md §15): the level
  /// sweeps touch only the lanes they read (arrivals: from + delay,
  /// requireds: to + delay) instead of pulling whole Arc records through
  /// the arc-id indirection, and each lane is a dense unit-stride stream
  /// for the 4-byte ids and 8-byte delays separately.
  std::vector<netlist::PinId> arc_from_;
  std::vector<netlist::PinId> arc_to_;
  std::vector<double> arc_delay_;
  /// Per-pin arc ids in flat CSR form, filled in arc creation order, so row
  /// contents match the per-pin push_back they replaced.
  util::Csr<std::int32_t> fanin_arcs_;
  util::Csr<std::int32_t> fanout_arcs_;
  std::vector<netlist::PinId> topo_order_;
  /// Pins grouped by topological level (longest fanin distance). Pins within
  /// a level share no arcs, so each level propagates pin-parallel; the pull
  /// form (each pin folds its own fanins in fixed order) keeps the result
  /// thread-count independent.
  util::Csr<netlist::PinId> level_buckets_;
  std::vector<netlist::PinId> endpoints_;

  std::vector<double> arrival_;
  std::vector<double> required_;
  /// Arc index that set each pin's arrival (for path backtracking); -1 at
  /// sources.
  std::vector<std::int32_t> worst_fanin_;

  double wns_ps_ = 0.0;
  double tns_ns_ = 0.0;
  bool ran_ = false;
};

}  // namespace ppacd::sta
