#include "sta/activity.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace ppacd::sta {

namespace {

using liberty::Function;
using netlist::CellId;
using netlist::NetId;
using netlist::Netlist;
using netlist::PinId;

/// Signal statistic pair used during composition.
struct Sig {
  double p = 0.5;
  double d = 0.0;
};

Sig inv(const Sig& a) { return Sig{1.0 - a.p, a.d}; }

Sig and2(const Sig& a, const Sig& b) {
  return Sig{a.p * b.p, b.p * a.d + a.p * b.d};
}

Sig or2(const Sig& a, const Sig& b) {
  return Sig{a.p + b.p - a.p * b.p, (1.0 - b.p) * a.d + (1.0 - a.p) * b.d};
}

Sig xor2(const Sig& a, const Sig& b) {
  return Sig{a.p * (1.0 - b.p) + b.p * (1.0 - a.p), a.d + b.d};
}

/// Evaluates the gate function over its data inputs (library pin order).
Sig evaluate(Function function, const std::vector<Sig>& in) {
  switch (function) {
    case Function::kInv: return inv(in.at(0));
    case Function::kBuf: return in.at(0);
    case Function::kNand2: return inv(and2(in.at(0), in.at(1)));
    case Function::kNand3: return inv(and2(and2(in.at(0), in.at(1)), in.at(2)));
    case Function::kNor2: return inv(or2(in.at(0), in.at(1)));
    case Function::kAnd2: return and2(in.at(0), in.at(1));
    case Function::kOr2: return or2(in.at(0), in.at(1));
    case Function::kXor2: return xor2(in.at(0), in.at(1));
    case Function::kAoi21: return inv(or2(and2(in.at(0), in.at(1)), in.at(2)));
    case Function::kOai21: return inv(and2(or2(in.at(0), in.at(1)), in.at(2)));
    case Function::kMux2: {
      // y = s ? a : b with pins (A, B, S).
      const Sig& a = in.at(0);
      const Sig& b = in.at(1);
      const Sig& s = in.at(2);
      Sig out;
      out.p = s.p * a.p + (1.0 - s.p) * b.p;
      const double p_diff = a.p * (1.0 - b.p) + b.p * (1.0 - a.p);
      out.d = s.p * a.d + (1.0 - s.p) * b.d + p_diff * s.d;
      return out;
    }
    case Function::kHalfAdder: return xor2(in.at(0), in.at(1));
    case Function::kFullAdder: return xor2(xor2(in.at(0), in.at(1)), in.at(2));
    case Function::kDff: return in.at(0);  // handled by register update
    case Function::kTieHi: return Sig{1.0, 0.0};
    case Function::kTieLo: return Sig{0.0, 0.0};
  }
  return Sig{};
}

/// Topological order of combinational cells (registers are both the sources
/// and sinks of the acyclic region, so they are excluded).
std::vector<CellId> comb_topo_order(const Netlist& nl) {
  std::vector<int> pending(nl.cell_count(), 0);
  std::vector<std::vector<CellId>> fanout(nl.cell_count());
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const auto& net = nl.net(static_cast<NetId>(ni));
    if (net.is_clock || net.driver == netlist::kInvalidId) continue;
    const auto& driver = nl.pin(net.driver);
    if (driver.kind != netlist::PinKind::kCellPin) continue;
    if (liberty::is_sequential(nl.lib_cell_of(driver.cell).function)) continue;
    for (PinId pid : net.pins) {
      if (pid == net.driver) continue;
      const auto& pin = nl.pin(pid);
      if (pin.kind != netlist::PinKind::kCellPin || pin.is_clock) continue;
      if (liberty::is_sequential(nl.lib_cell_of(pin.cell).function)) continue;
      fanout[driver.cell.index()].push_back(pin.cell);
      ++pending[pin.cell.index()];
    }
  }
  std::vector<CellId> order;
  order.reserve(nl.cell_count());
  std::queue<CellId> ready;
  for (std::size_t c = 0; c < nl.cell_count(); ++c) {
    if (liberty::is_sequential(nl.lib_cell_of(static_cast<CellId>(c)).function))
      continue;
    if (pending[c] == 0) ready.push(static_cast<CellId>(c));
  }
  while (!ready.empty()) {
    const CellId c = ready.front();
    ready.pop();
    order.push_back(c);
    for (CellId next : fanout[c.index()]) {
      if (--pending[next.index()] == 0) ready.push(next);
    }
  }
  return order;
}

}  // namespace

std::vector<NetActivity> propagate_activity(const Netlist& nl,
                                            const ActivityOptions& options) {
  std::vector<NetActivity> act(nl.net_count());

  // Defaults for registered signals (refined by the fixpoint sweeps below).
  for (auto& a : act) {
    a.p_one = 0.5;
    a.toggle = options.dff_damping * 0.5;
  }

  // Primary inputs: deterministic per-port variation around the defaults so
  // different interface nets carry different activity.
  for (std::size_t po = 0; po < nl.port_count(); ++po) {
    const auto& port = nl.port(static_cast<netlist::PortId>(po));
    if (port.dir != liberty::PinDir::kInput) continue;
    const NetId net = nl.pin(port.pin).net;
    if (net == netlist::kInvalidId) continue;
    const double jitter = 0.5 + static_cast<double>((po * 2654435761u) % 100) / 100.0;
    act[net.index()].p_one = options.input_p;
    act[net.index()].toggle =
        std::min(options.max_toggle, options.input_toggle * jitter);
  }

  // Clock nets: two transitions per cycle by definition.
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    if (nl.net(static_cast<NetId>(ni)).is_clock) {
      act[ni].p_one = 0.5;
      act[ni].toggle = 2.0;
    }
  }

  const std::vector<CellId> order = comb_topo_order(nl);

  for (int sweep = 0; sweep < options.sweeps; ++sweep) {
    // Combinational propagation.
    for (const CellId cid : order) {
      const netlist::Cell& cell = nl.cell(cid);
      const liberty::LibCell& lc = nl.lib_cell_of(cid);
      const PinId out = nl.cell_output_pin(cid);
      if (out == netlist::kInvalidId) continue;
      const NetId out_net = nl.pin(out).net;
      if (out_net == netlist::kInvalidId) continue;

      std::vector<Sig> inputs;
      for (PinId pid : cell.pins) {
        const auto& pin = nl.pin(pid);
        if (pin.dir != liberty::PinDir::kInput || pin.is_clock) continue;
        Sig sig;
        if (pin.net != netlist::kInvalidId) {
          sig.p = act[pin.net.index()].p_one;
          sig.d = act[pin.net.index()].toggle;
        }
        inputs.push_back(sig);
      }
      Sig out_sig = evaluate(lc.function, inputs);
      out_sig.p = std::clamp(out_sig.p, 0.0, 1.0);
      out_sig.d = std::clamp(out_sig.d, 0.0, options.max_toggle);
      act[out_net.index()].p_one = out_sig.p;
      act[out_net.index()].toggle = out_sig.d;
    }

    // Register update: Q resamples D once per cycle with damping.
    for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
      const CellId cid = static_cast<CellId>(ci);
      const liberty::LibCell& lc = nl.lib_cell_of(cid);
      if (!liberty::is_sequential(lc.function)) continue;
      const netlist::Cell& cell = nl.cell(cid);
      NetId d_net = netlist::kInvalidId;
      for (PinId pid : cell.pins) {
        const auto& pin = nl.pin(pid);
        if (pin.dir == liberty::PinDir::kInput && !pin.is_clock) d_net = pin.net;
      }
      const PinId out = nl.cell_output_pin(cid);
      if (out == netlist::kInvalidId) continue;
      const NetId q_net = nl.pin(out).net;
      if (q_net == netlist::kInvalidId) continue;
      const double p_d =
          d_net == netlist::kInvalidId ? 0.5 : act[d_net.index()].p_one;
      act[q_net.index()].p_one = p_d;
      act[q_net.index()].toggle =
          std::min(1.0, options.dff_damping * 2.0 * p_d * (1.0 - p_d));
    }
  }
  return act;
}

}  // namespace ppacd::sta
