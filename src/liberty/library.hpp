/// \file library.hpp
/// \brief Standard-cell library model (Liberty/LEF substitute).
///
/// The paper uses the NanGate45 open enablement through .lib/.lef files. This
/// module provides the subset of that data the rest of the system needs:
///   * footprint (area, width, height) for placement and cluster shaping,
///   * pin capacitances and a linear delay model (intrinsic + R_drive * C_load)
///     for STA,
///   * leakage and Vdd for the power report,
///   * the Boolean function class for vectorless switching-activity
///     propagation (Section 3.1, Eq. 2 inputs).
///
/// Units: microns (geometry), picoseconds (time), femtofarads (capacitance),
/// kiloohms (resistance; kOhm * fF = ps), microwatts (leakage), volts (Vdd).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/strong_id.hpp"

namespace ppacd::liberty {

/// Identifier of a library cell within a Library (strongly typed: not
/// interchangeable with netlist CellId or any other id domain).
using LibCellId = util::StrongId<struct LibCellIdTag>;
inline constexpr LibCellId kInvalidLibCell{};

/// Boolean function class of a cell; drives delay/activity models.
enum class Function {
  kInv,
  kBuf,
  kNand2,
  kNand3,
  kNor2,
  kAnd2,
  kOr2,
  kXor2,
  kAoi21,   // y = !(a*b + c)
  kOai21,   // y = !((a+b) * c)
  kMux2,    // y = s ? a : b
  kHalfAdder,  // modeled through its sum output (xor-like)
  kFullAdder,  // modeled through its sum output (xor-like)
  kDff,     // D flip-flop, rising edge
  kTieHi,
  kTieLo,
};

/// True for sequential (edge-triggered) cells.
bool is_sequential(Function function);

/// Direction of a library pin.
enum class PinDir { kInput, kOutput };

/// One pin of a library cell.
struct LibPin {
  std::string name;
  PinDir dir = PinDir::kInput;
  bool is_clock = false;    ///< clock input of a sequential cell
  double cap_ff = 1.0;      ///< input capacitance (outputs: 0)
};

/// One standard cell. Delay model: arc delay = intrinsic_ps +
/// drive_res_kohm * C_load_ff, identical for all input->output arcs.
struct LibCell {
  LibCellId id = kInvalidLibCell;
  std::string name;
  Function function = Function::kBuf;
  double width_um = 0.0;
  double height_um = 0.0;
  double intrinsic_ps = 0.0;
  double drive_res_kohm = 0.0;
  double leakage_uw = 0.0;
  /// Setup time for sequential cells (D must be stable this long before CK).
  double setup_ps = 0.0;
  std::vector<LibPin> pins;

  double area_um2() const { return width_um * height_um; }

  /// Number of data (non-clock) input pins.
  int data_input_count() const;

  /// Index of the first output pin; -1 if none.
  int output_pin_index() const;

  /// Index of the clock pin; -1 if none.
  int clock_pin_index() const;
};

/// An immutable set of library cells with name lookup.
class Library {
 public:
  /// Builds the default NanGate45-like library used by all experiments.
  static Library nangate45_like();

  /// Adds a cell; assigns and returns its id.
  LibCellId add_cell(LibCell cell);

  const LibCell& cell(LibCellId id) const { return cells_.at(id); }
  std::size_t cell_count() const { return cells_.size(); }
  util::IdRange<LibCellId> cell_ids() const { return cells_.ids(); }

  /// Finds a cell by name; nullopt if absent.
  std::optional<LibCellId> find(std::string_view name) const;

  /// Supply voltage used by the dynamic-power model.
  double vdd() const { return vdd_; }
  void set_vdd(double vdd) { vdd_ = vdd; }

  /// Standard-cell row height (all cells share it, as in NanGate45).
  double row_height_um() const { return row_height_um_; }
  void set_row_height_um(double h) { row_height_um_ = h; }

  /// Wire parasitics per micron of estimated length (used by STA's
  /// HPWL-based interconnect model).
  double wire_cap_ff_per_um() const { return wire_cap_ff_per_um_; }
  double wire_res_kohm_per_um() const { return wire_res_kohm_per_um_; }

 private:
  util::IdVector<LibCellId, LibCell> cells_;
  double vdd_ = 1.1;
  double row_height_um_ = 1.4;
  double wire_cap_ff_per_um_ = 0.16;
  double wire_res_kohm_per_um_ = 0.0038;
};

}  // namespace ppacd::liberty
