#include "liberty/library.hpp"

#include <cassert>
#include <unordered_map>

namespace ppacd::liberty {

bool is_sequential(Function function) { return function == Function::kDff; }

int LibCell::data_input_count() const {
  int count = 0;
  for (const LibPin& pin : pins) {
    if (pin.dir == PinDir::kInput && !pin.is_clock) ++count;
  }
  return count;
}

int LibCell::output_pin_index() const {
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i].dir == PinDir::kOutput) return static_cast<int>(i);
  }
  return -1;
}

int LibCell::clock_pin_index() const {
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i].is_clock) return static_cast<int>(i);
  }
  return -1;
}

LibCellId Library::add_cell(LibCell cell) {
  cell.id = static_cast<LibCellId>(cells_.size());
  cells_.push_back(std::move(cell));
  return cells_.back().id;
}

std::optional<LibCellId> Library::find(std::string_view name) const {
  for (const LibCell& cell : cells_) {
    if (cell.name == name) return cell.id;
  }
  return std::nullopt;
}

namespace {

LibPin in(std::string name, double cap_ff) {
  return LibPin{std::move(name), PinDir::kInput, false, cap_ff};
}

LibPin clk(std::string name, double cap_ff) {
  return LibPin{std::move(name), PinDir::kInput, true, cap_ff};
}

LibPin out(std::string name) { return LibPin{std::move(name), PinDir::kOutput, false, 0.0}; }

/// Builds a combinational cell. `site_count` scales the 0.19 um NanGate45 site.
LibCell comb(std::string name, Function fn, int site_count, double intrinsic_ps,
             double drive_res_kohm, double leakage_uw,
             std::vector<LibPin> pins) {
  LibCell cell;
  cell.name = std::move(name);
  cell.function = fn;
  cell.width_um = 0.19 * site_count;
  cell.height_um = 1.4;
  cell.intrinsic_ps = intrinsic_ps;
  cell.drive_res_kohm = drive_res_kohm;
  cell.leakage_uw = leakage_uw;
  cell.pins = std::move(pins);
  return cell;
}

}  // namespace

Library Library::nangate45_like() {
  Library lib;

  // Inverters / buffers in three drive strengths. Resistance halves per step.
  lib.add_cell(comb("INV_X1", Function::kInv, 2, 8.0, 8.0, 0.10, {in("A", 1.0), out("Y")}));
  lib.add_cell(comb("INV_X2", Function::kInv, 3, 8.0, 4.0, 0.18, {in("A", 1.9), out("Y")}));
  lib.add_cell(comb("INV_X4", Function::kInv, 5, 8.0, 2.0, 0.35, {in("A", 3.7), out("Y")}));
  lib.add_cell(comb("BUF_X1", Function::kBuf, 3, 14.0, 8.0, 0.14, {in("A", 1.0), out("Y")}));
  lib.add_cell(comb("BUF_X2", Function::kBuf, 4, 14.0, 4.0, 0.25, {in("A", 1.8), out("Y")}));
  lib.add_cell(comb("BUF_X4", Function::kBuf, 6, 15.0, 2.0, 0.48, {in("A", 3.5), out("Y")}));
  // Clock buffer used by CTS; sized like BUF_X4 with a balanced drive.
  lib.add_cell(comb("CLKBUF_X2", Function::kBuf, 5, 13.0, 2.5, 0.40, {in("A", 2.6), out("Y")}));

  lib.add_cell(comb("NAND2_X1", Function::kNand2, 3, 10.0, 9.0, 0.16,
                    {in("A", 1.2), in("B", 1.2), out("Y")}));
  lib.add_cell(comb("NAND3_X1", Function::kNand3, 4, 12.0, 10.0, 0.22,
                    {in("A", 1.3), in("B", 1.3), in("C", 1.3), out("Y")}));
  lib.add_cell(comb("NOR2_X1", Function::kNor2, 3, 11.0, 10.0, 0.15,
                    {in("A", 1.3), in("B", 1.3), out("Y")}));
  lib.add_cell(comb("AND2_X1", Function::kAnd2, 4, 16.0, 8.0, 0.20,
                    {in("A", 1.1), in("B", 1.1), out("Y")}));
  lib.add_cell(comb("OR2_X1", Function::kOr2, 4, 16.0, 8.0, 0.20,
                    {in("A", 1.1), in("B", 1.1), out("Y")}));
  lib.add_cell(comb("XOR2_X1", Function::kXor2, 6, 20.0, 9.0, 0.32,
                    {in("A", 2.0), in("B", 2.0), out("Y")}));
  lib.add_cell(comb("AOI21_X1", Function::kAoi21, 4, 12.0, 10.0, 0.18,
                    {in("A", 1.3), in("B", 1.3), in("C", 1.4), out("Y")}));
  lib.add_cell(comb("OAI21_X1", Function::kOai21, 4, 12.0, 10.0, 0.18,
                    {in("A", 1.3), in("B", 1.3), in("C", 1.4), out("Y")}));
  lib.add_cell(comb("MUX2_X1", Function::kMux2, 6, 18.0, 9.0, 0.30,
                    {in("A", 1.4), in("B", 1.4), in("S", 1.8), out("Y")}));
  lib.add_cell(comb("HA_X1", Function::kHalfAdder, 7, 22.0, 9.0, 0.45,
                    {in("A", 1.9), in("B", 1.9), out("S")}));
  lib.add_cell(comb("FA_X1", Function::kFullAdder, 9, 26.0, 9.0, 0.60,
                    {in("A", 2.1), in("B", 2.1), in("CI", 2.1), out("S")}));

  // Rising-edge D flip-flop: D, CK -> Q.
  {
    LibCell dff;
    dff.name = "DFF_X1";
    dff.function = Function::kDff;
    dff.width_um = 0.19 * 12;
    dff.height_um = 1.4;
    dff.intrinsic_ps = 35.0;  // clk-to-q
    dff.drive_res_kohm = 6.0;
    dff.leakage_uw = 0.80;
    dff.setup_ps = 30.0;
    dff.pins = {in("D", 1.5), clk("CK", 1.2), out("Q")};
    lib.add_cell(std::move(dff));
  }

  lib.add_cell(comb("TIEHI_X1", Function::kTieHi, 2, 0.0, 20.0, 0.05, {out("Y")}));
  lib.add_cell(comb("TIELO_X1", Function::kTieLo, 2, 0.0, 20.0, 0.05, {out("Y")}));

  return lib;
}

}  // namespace ppacd::liberty
