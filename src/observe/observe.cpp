// lint:allow-file(raw-thread): ring-buffer recorder is cross-thread infra by design
#include "observe/observe.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>

namespace ppacd::observe {

const char* to_string(Stream stream) {
  switch (stream) {
    case Stream::kPlaceIter: return "place.iter";
    case Stream::kPlaceCg: return "place.cg";
    case Stream::kRouteBatch: return "route.batch";
    case Stream::kRouteRound: return "route.round";
    case Stream::kRouteHeatmap: return "route.heatmap";
    case Stream::kStaLevel: return "sta.level";
    case Stream::kStaSlack: return "sta.slack";
    case Stream::kVprCandidate: return "vpr.candidate";
    case Stream::kClusterLevel: return "cluster.level";
    case Stream::kClusterSize: return "cluster.size";
    case Stream::kClusterCut: return "cluster.cut";
    case Stream::kPlaceShard: return "place.shard";
    case Stream::kStreamCount: break;
  }
  return "?";
}

namespace {

/// Total order over samples; the deterministic merge key.
bool sample_less(const Sample& a, const Sample& b) {
  if (a.stream != b.stream) return a.stream < b.stream;
  if (a.series != b.series) return a.series < b.series;
  if (a.index != b.index) return a.index < b.index;
  return a.sub < b.sub;
}

bool env_default_enabled() {
  const char* env = std::getenv("PPACD_OBSERVE");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

/// Fixed-capacity ring of samples owned by one thread. Only the owning
/// thread writes; snapshots read under the registry mutex while no parallel
/// region is emitting (the flow snapshots between phases / at the end).
struct ThreadRing {
  std::vector<Sample> slots;
  std::size_t next = 0;        ///< insertion cursor
  std::size_t size = 0;        ///< live samples (<= slots.size())
  std::int64_t overwritten = 0;

  void push(const Sample& sample, std::size_t capacity) {
    if (slots.size() != capacity) {
      // First use, or capacity changed between runs: restart this ring.
      slots.assign(capacity, Sample{});
      next = 0;
      size = 0;
    }
    if (size == capacity) ++overwritten;
    slots[next] = sample;
    next = (next + 1) % capacity;
    size = std::min(size + 1, capacity);
  }

  void clear() {
    next = 0;
    size = 0;
    overwritten = 0;
  }
};

}  // namespace

struct Recorder::Impl {
  std::atomic<bool> enabled{env_default_enabled()};
  std::atomic<std::size_t> capacity{std::size_t{1} << 15};
  std::atomic<int> stride{1};
  std::atomic<std::int64_t> frames_dropped{0};

  mutable std::mutex mutex;  ///< guards rings registry, frames, series
  std::vector<std::unique_ptr<ThreadRing>> rings;
  std::deque<Frame> frames;
  std::int32_t next_series[static_cast<std::size_t>(Stream::kStreamCount)] = {};
  std::uint64_t generation = 1;  ///< bumped by reset(); stale rings restart
};

Recorder::Impl& Recorder::impl() const {
  static Impl instance;
  return instance;
}

Recorder& recorder() {
  static Recorder instance;
  return instance;
}

bool Recorder::enabled() const {
  return impl().enabled.load(std::memory_order_relaxed);
}

void Recorder::set_enabled(bool enabled) {
  impl().enabled.store(enabled, std::memory_order_relaxed);
}

std::size_t Recorder::capacity() const {
  return impl().capacity.load(std::memory_order_relaxed);
}

void Recorder::set_capacity(std::size_t capacity) {
  impl().capacity.store(std::max<std::size_t>(1, capacity),
                        std::memory_order_relaxed);
}

int Recorder::sample_stride() const {
  return impl().stride.load(std::memory_order_relaxed);
}

void Recorder::set_sample_stride(int stride) {
  impl().stride.store(std::max(1, stride), std::memory_order_relaxed);
}

std::int32_t Recorder::begin_series(Stream stream) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.next_series[static_cast<std::size_t>(stream)]++;
}

namespace {

/// Per-thread ring plus the reset generation it was registered under.
struct ThreadRingRef {
  ThreadRing* ring = nullptr;
  std::uint64_t generation = 0;
};

thread_local ThreadRingRef t_ring;

}  // namespace

void Recorder::record(Stream stream, std::int32_t series, std::int64_t index,
                      std::int64_t sub, std::initializer_list<double> values) {
  Impl& state = impl();
  // Emit sites gate on active()/want() already; this keeps the contract (a
  // disabled recorder records nothing) even for direct API callers.
  if (!state.enabled.load(std::memory_order_relaxed)) return;
  // reset() bumps the generation; a thread that cached a ring from before
  // the reset re-registers (its old ring was cleared, not freed, so the
  // stale pointer is never dangling — re-registration just re-reads it).
  if (t_ring.ring == nullptr || t_ring.generation != state.generation) {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.rings.push_back(std::make_unique<ThreadRing>());
    t_ring.ring = state.rings.back().get();
    t_ring.generation = state.generation;
  }
  Sample sample;
  sample.stream = static_cast<std::int32_t>(stream);
  sample.series = series;
  sample.index = index;
  sample.sub = sub;
  for (const double v : values) {
    if (sample.count >= 4) break;
    sample.values[sample.count++] = v;
  }
  t_ring.ring->push(sample, capacity());
}

void Recorder::record_frame(Stream stream, std::int32_t series,
                            std::int64_t index, std::int32_t nx,
                            std::int32_t ny, std::vector<double> values) {
  Impl& state = impl();
  if (!state.enabled.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.frames.size() >= kMaxFrames) {
    state.frames.pop_front();
    state.frames_dropped.fetch_add(1, std::memory_order_relaxed);
  }
  Frame frame;
  frame.stream = static_cast<std::int32_t>(stream);
  frame.series = series;
  frame.index = index;
  frame.nx = nx;
  frame.ny = ny;
  frame.values = std::move(values);
  state.frames.push_back(std::move(frame));
}

std::vector<Sample> Recorder::merged_samples() const {
  Impl& state = impl();
  std::vector<Sample> merged;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    for (const auto& ring : state.rings) {
      for (std::size_t i = 0; i < ring->size; ++i) {
        merged.push_back(ring->slots[i]);
      }
    }
  }
  std::sort(merged.begin(), merged.end(), sample_less);
  // Ring semantics across the merge too: when the union exceeds the
  // capacity, drop the lowest keys (the oldest logical indices) so the
  // retained set is a pure function of the keys, not the thread count.
  const std::size_t cap = capacity();
  if (merged.size() > cap) {
    merged.erase(merged.begin(),
                 merged.begin() + static_cast<std::ptrdiff_t>(merged.size() - cap));
  }
  return merged;
}

std::vector<Frame> Recorder::frames() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  return {state.frames.begin(), state.frames.end()};
}

std::int64_t Recorder::dropped() const {
  Impl& state = impl();
  std::int64_t total = state.frames_dropped.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state.mutex);
  for (const auto& ring : state.rings) total += ring->overwritten;
  return total;
}

void Recorder::reset() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (auto& ring : state.rings) ring->clear();
  state.frames.clear();
  state.frames_dropped.store(0, std::memory_order_relaxed);
  std::fill(std::begin(state.next_series), std::end(state.next_series), 0);
  ++state.generation;
}

telemetry::Json Recorder::to_json(std::string_view label) const {
  using telemetry::Json;
  Json out = Json::object();
  out.set("schema", "ppacd-observe-v1");
  out.set("label", label);
  out.set("sample_stride", sample_stride());
  out.set("dropped", dropped());

  Json samples = Json::array();
  for (const Sample& sample : merged_samples()) {
    Json entry = Json::object();
    entry.set("stream", to_string(static_cast<Stream>(sample.stream)));
    entry.set("series", sample.series);
    entry.set("index", sample.index);
    entry.set("sub", sample.sub);
    Json values = Json::array();
    for (std::int32_t i = 0; i < sample.count; ++i) {
      values.push_back(sample.values[i]);
    }
    entry.set("values", std::move(values));
    samples.push_back(std::move(entry));
  }
  out.set("samples", std::move(samples));

  Json frames_json = Json::array();
  for (const Frame& frame : frames()) {
    Json entry = Json::object();
    entry.set("stream", to_string(static_cast<Stream>(frame.stream)));
    entry.set("series", frame.series);
    entry.set("index", frame.index);
    entry.set("nx", frame.nx);
    entry.set("ny", frame.ny);
    Json values = Json::array();
    for (const double v : frame.values) values.push_back(v);
    entry.set("values", std::move(values));
    frames_json.push_back(std::move(entry));
  }
  out.set("frames", std::move(frames_json));
  return out;
}

bool write_events(const std::string& path, std::string_view label) {
  std::ofstream out(path);
  if (!out) return false;
  out << recorder().to_json(label).dump(2) << '\n';
  return static_cast<bool>(out);
}

}  // namespace ppacd::observe
