/// \file observe.hpp
/// \brief Flight recorder: hot loops emit structured, schema-versioned
/// convergence events (schema `ppacd-observe-v1`) that the QoR ledger,
/// the run report, and tools/flow_dashboard.py consume.
///
/// Telemetry (src/telemetry) answers "how long did each phase take and what
/// were the end-of-run scalars"; the recorder answers "what trajectory did
/// the solvers take to get there": per-CG-iteration residuals, per-placer-
/// iteration HPWL/overflow/spreading displacement, per-router-round overflow
/// drain plus a binned congestion heatmap, per-STA-level sweep widths and
/// the end-of-run slack distribution, V-P&R shape-candidate scores, and
/// cluster size/cut-quality distributions.
///
/// Design constraints (all load-bearing, see DESIGN.md section 13):
///   * Bounded memory: every per-thread buffer is a fixed-capacity ring
///     (oldest samples overwritten, drops counted); variable-size payloads
///     (heatmaps, histograms) go into a separate bounded frame store.
///   * Deterministic: sampling is every-Nth by *logical index* (iteration,
///     round, level — never wall time or RNG), so the recorded set is
///     seed- and thread-count-independent. Each sample carries an explicit
///     sort key (stream, series, index, sub) assigned at the emit site;
///     merged_samples() orders by that key, so the merged stream is
///     bit-identical at 1 and 8 threads (the PR 3 exec contract: order by
///     logical index, never by thread id or completion time).
///   * Zero cost when off: recording is gated on enabled() (a relaxed
///     atomic load); building with -DPPACD_OBSERVE=OFF defines
///     PPACD_OBSERVE_DISABLED which turns active() into a compile-time
///     `false`, dead-coding every instrumentation block. The classes stay
///     available either way so tools and tests keep linking.
///   * No feedback: the recorder is write-only for the solvers. Nothing a
///     hot loop computes may depend on recorder state, so the golden flow
///     hashes in determinism_test are unchanged with observe on or off.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/json.hpp"

namespace ppacd::observe {

/// Event streams. A fixed enum (not interned strings) so stream ids are
/// compile-time constants — identical across threads, runs, and builds,
/// which the deterministic merge order depends on.
enum class Stream : std::int32_t {
  kPlaceIter = 0,   ///< per placer outer iteration: hpwl, overflow,
                    ///< anchor (density-penalty) weight, spread displacement
  kPlaceCg,         ///< per (sampled) CG iteration: relative residual;
                    ///< sub == -1 carries {iters_run, final_residual}
  kRouteBatch,      ///< per (sampled) initial-routing batch: nets committed,
                    ///< cumulative nets, overflowed edges so far
  kRouteRound,      ///< per rip-up round: overflowed edges, victims,
                    ///< total overflow
  kRouteHeatmap,    ///< frame: binned congestion grid after each round
  kStaLevel,        ///< per (sampled) topological level: sweep width
  kStaSlack,        ///< frame: end-of-run endpoint slack histogram
                    ///< (layout: [lo_ps, hi_ps, count_0 .. count_{n-1}])
  kVprCandidate,    ///< per shape candidate: total/hpwl/congestion cost
  kClusterLevel,    ///< per coarsening level: vertices, merges, match rate
  kClusterSize,     ///< frame: final cluster sizes (cells per cluster)
  kClusterCut,      ///< end of clustering: cut-net fraction, clusters,
                    ///< singletons
  kPlaceShard,      ///< per shard of a sharded placement pass: movables,
                    ///< hpwl, iterations, overflow; index == shard count
                    ///< carries the post-stitch summary
  kStreamCount
};

/// Stable lowercase name ("place.iter", "route.heatmap", ...) used in the
/// JSON export and by the Python tools.
const char* to_string(Stream stream);

/// One fixed-size recorded sample. (stream, series, index, sub) is the
/// unique, deterministic sort key; emit sites must never reuse a key.
struct Sample {
  std::int32_t stream = 0;
  std::int32_t series = 0;   ///< which run of the stream (placer #2, ...)
  std::int64_t index = 0;    ///< iteration / round / level / cluster
  std::int64_t sub = 0;      ///< inner index (CG iter, candidate, ...)
  std::int32_t count = 0;    ///< populated entries of values[]
  double values[4] = {0.0, 0.0, 0.0, 0.0};
};

/// One variable-size payload (heatmap grid, histogram). Frames must be
/// emitted from serial program points only — they carry no merge key.
struct Frame {
  std::int32_t stream = 0;
  std::int32_t series = 0;
  std::int64_t index = 0;
  std::int32_t nx = 0;  ///< grid width (0 for 1-D payloads)
  std::int32_t ny = 0;  ///< grid height (0 for 1-D payloads)
  std::vector<double> values;
};

/// Process-wide recorder. Thread-safe: each thread appends to its own
/// ring buffer (registered on first use under a mutex); snapshots merge
/// the rings in deterministic key order.
class Recorder {
 public:
  /// Runtime collection switch. Defaults to the PPACD_OBSERVE environment
  /// variable ("0"/"" = off, anything else = on); flow_cli --observe and
  /// tests flip it explicitly.
  bool enabled() const;
  void set_enabled(bool enabled);

  /// Per-thread ring capacity in samples (default 1 << 15). Total memory is
  /// bounded by threads * capacity * sizeof(Sample); merged_samples() also
  /// trims to `capacity` entries (highest keys kept), so the exported
  /// stream is bounded regardless of thread count.
  std::size_t capacity() const;
  void set_capacity(std::size_t capacity);

  /// Deterministic every-Nth sampling stride (default 1 = every event).
  /// Applies to the high-frequency streams via want(); frames and
  /// low-frequency per-round samples are always recorded.
  int sample_stride() const;
  void set_sample_stride(int stride);

  /// True when recording is on and `index` falls on the sampling stride.
  /// The decision is a pure function of the logical index.
  bool want(std::int64_t index) const {
    return enabled() && index % sample_stride() == 0;
  }

  /// Begins a new series of `stream`: returns a per-stream sequence number.
  /// Call from serial context only (the flow phases are serial), so series
  /// ids are assigned in deterministic order.
  std::int32_t begin_series(Stream stream);

  /// Appends one sample to the calling thread's ring (oldest overwritten
  /// when full). `values` is truncated to 4 entries.
  void record(Stream stream, std::int32_t series, std::int64_t index,
              std::int64_t sub, std::initializer_list<double> values);

  /// Appends one frame (serial emit sites only). The frame store holds at
  /// most kMaxFrames frames; oldest dropped first.
  void record_frame(Stream stream, std::int32_t series, std::int64_t index,
                    std::int32_t nx, std::int32_t ny,
                    std::vector<double> values);

  /// All retained samples merged across threads, sorted by
  /// (stream, series, index, sub) and trimmed to capacity() (highest keys
  /// kept — ring semantics: the most recent samples survive). The result is
  /// identical for any thread count as long as emit sites used
  /// deterministic keys.
  std::vector<Sample> merged_samples() const;

  /// All retained frames in emission order.
  std::vector<Frame> frames() const;

  /// Samples overwritten in rings plus frames dropped from the store.
  std::int64_t dropped() const;

  /// Clears samples, frames, series counters, and the drop count. Does not
  /// change enabled/capacity/stride.
  void reset();

  /// Full export:
  ///   { "schema": "ppacd-observe-v1", "label": ..., "sample_stride": ...,
  ///     "dropped": ..., "samples": [...], "frames": [...] }
  telemetry::Json to_json(std::string_view label) const;

  static constexpr std::size_t kMaxFrames = 64;

 private:
  struct Impl;
  Impl& impl() const;
};

/// The process-wide recorder.
Recorder& recorder();

/// Writes recorder().to_json(label) to `path`; false on I/O error.
bool write_events(const std::string& path, std::string_view label);

#if defined(PPACD_OBSERVE_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// Gate for instrumentation blocks:
///   if (observe::active()) { ... compute + record ... }
/// With -DPPACD_OBSERVE=OFF this is a compile-time `false`, so the whole
/// block (including any observation-only computation) is dead-coded.
inline bool active() {
  if constexpr (!kCompiledIn) {
    return false;
  } else {
    return recorder().enabled();
  }
}

}  // namespace ppacd::observe
