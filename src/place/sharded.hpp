/// \file sharded.hpp
/// \brief Region-sharded placement: partition the floorplan into cluster
/// regions, place each region's cells as an independent sub-problem, then
/// stitch the shard placements with a short bounded global refinement.
///
/// This is the scale unlock the paper's clustering buys (ROADMAP item 2):
/// the top-level clusters already induce a geometric decomposition of the
/// die (their V-P&R-shaped, seed-placed footprints), so the seeded flat
/// placement — one CG system over every cell — can be replaced by K much
/// smaller systems, one per region, whose boundary nets are pinned to fixed
/// terminals at the region crossings. Smaller systems converge in fewer CG
/// iterations for the same relative tolerance, so the sharded pass is faster
/// even before any thread-level parallelism; on multi-core the shards also
/// run concurrently.
///
/// Determinism contract (DESIGN.md §16): shard membership, sub-problem
/// extraction, and the stitch all depend only on (model, seed placement,
/// shard count) — never on thread count or completion order. The per-shard
/// solves run under exec::parallel_for with one shard per chunk and write to
/// disjoint index ranges; degradations and flight-recorder samples are
/// recorded after the parallel region in shard-index order. Results are
/// bit-identical at any thread count for a fixed shard count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/expected.hpp"
#include "fault/fault.hpp"
#include "geom/geometry.hpp"
#include "place/global_placer.hpp"
#include "place/model.hpp"

namespace ppacd::place {

/// Knobs of the sharded placement pass (FlowOptions::sharding).
struct ShardedOptions {
  /// Requested shard count; clamped to [1, group count]. 1 degenerates to
  /// "one region holding everything" and is the determinism-test anchor.
  int shards = 8;
  /// Incremental iterations per shard solve (each shard continues from its
  /// cluster-induced seed, so it needs fewer iterations than a monolithic
  /// incremental pass).
  int shard_iterations = 8;
  /// Iterations of the bounded global refinement that resolves cross-shard
  /// nets after the merge. 0 skips the stitch solve (merge only).
  int stitch_iterations = 4;
};

/// One partitionable unit: a top-level cluster's placed footprint. `weight`
/// is the cluster's cell count (the partitioner balances total weight).
struct ShardGroup {
  geom::Point center;
  geom::Rect rect;
  std::int64_t weight = 1;
};

/// Output of the region partitioner.
struct RegionPartition {
  std::vector<std::int32_t> shard_of_group;  ///< group -> shard index
  std::vector<geom::Rect> regions;  ///< shard -> region (clipped to core)
  std::vector<std::int64_t> weights;  ///< shard -> total member weight
  int shard_count() const { return static_cast<int>(regions.size()); }
};

/// Maps each group (top-level cluster) to one of `shards` floorplan regions
/// by recursive weighted bisection over the group centers: the current set
/// is split along the longer axis of its bounding box at the
/// weight-balanced prefix, recursing until one shard per set remains. A
/// shard's region is the bounding box of its member rects, inflated to hold
/// the member area at placement density and clipped to `core`. Purely a
/// function of the inputs — no RNG, no iteration-order dependence.
RegionPartition partition_regions(const std::vector<ShardGroup>& groups,
                                  const geom::Rect& core, int shards);

/// Per-shard outcome, in shard-index order.
struct ShardStat {
  std::int64_t movables = 0;   ///< movable objects solved in this shard
  std::int64_t nets = 0;       ///< sliced nets (interior + boundary)
  std::int64_t terminals = 0;  ///< boundary pins fixed at region crossings
  double hpwl_um = 0.0;        ///< shard-model HPWL (0 when fell_back)
  double overflow = 0.0;
  int iterations = 0;
  /// Nested place.solve early-stop inside this shard's solve (policy
  /// place_early_stop), recorded as a "place.solve" degradation.
  std::string degrade_code;
  /// Set when the shard solve failed outright (structured error, allocation
  /// failure, or a non-finite result) and the shard fell back to its
  /// cluster-induced seed (policy shard_fallback_seed).
  std::string failure_code;
  bool fell_back = false;
};

struct ShardedPlaceResult {
  Placement placement;  ///< stitched centers for all flat-model objects
  double hpwl_um = 0.0;   ///< weighted model HPWL after the stitch
  double overflow = 0.0;  ///< residual overflow after the stitch
  int stitch_iterations = 0;
  std::string stitch_degrade_code;  ///< place.solve early-stop in the stitch
  std::vector<ShardStat> shards;
};

/// The sharded placement pass over a flat model:
///   1. slice the model into per-shard sub-problems (flat CSR arrays carved
///      from one arena; boundary pins become fixed terminals at their seed
///      position clamped into the shard region — the region crossing),
///   2. solve every shard concurrently (GlobalPlacer::try_run_incremental
///      from the shard's slice of `seed`, per-shard scratch, deterministic
///      per-shard solver seeds),
///   3. merge the shard placements and run a bounded global incremental
///      refinement for the cross-shard nets.
///
/// `shard_of_object` maps every flat-model object to its shard (movables) or
/// -1 (fixed objects and unassigned movables; the latter keep their seed
/// positions and act as terminals). Fault site "place.shard" (key = shard
/// index) forces individual shard failures; a failed shard falls back to its
/// seed when `policy.shard_fallback_seed`, otherwise the first failure (in
/// shard order) is returned as the flow error. Degradations and the
/// `place.shard` flight-recorder series are emitted post-merge in shard
/// order, so degraded runs stay bit-identical across thread counts.
[[nodiscard]] fault::Expected<ShardedPlaceResult, fault::FlowError>
try_place_sharded(const PlaceModel& flat, const Placement& seed,
                  const std::vector<std::int32_t>& shard_of_object,
                  const RegionPartition& partition,
                  const ShardedOptions& sharded,
                  const GlobalPlacerOptions& placer,
                  const fault::DegradePolicy& policy);

}  // namespace ppacd::place
