/// \file global_placer.hpp
/// \brief Quadratic global placement with bound-to-bound net model and
/// FastPlace-style cell-shifting spreading (RePlAce/OpenROAD substitute).
///
/// The engine provides the two entry points Algorithm 1 needs:
///   * run(): placement from scratch (default flat flow, cluster seed
///     placement),
///   * run_incremental(seed): continue from given locations with anchoring,
///     mirroring `globalPlacement -incremental` / `place_design -incremental`
///     in the seeded placement step (Alg. 1 lines 19/25).
///
/// Each outer iteration solves two independent 1-D quadratic programs
/// (x and y) built from the bound-to-bound (B2B) net model [Spindler et al.]
/// with Jacobi-preconditioned conjugate gradient, then spreads overfilled
/// bins by cell shifting and anchors cells to their spread locations with a
/// growing pseudo-net weight. Region constraints (fences) are enforced by
/// clamping after every spreading step.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "fault/expected.hpp"
#include "fault/fault.hpp"
#include "place/model.hpp"
#include "util/rng.hpp"

namespace ppacd::place {

/// Reusable solver/density scratch owned by one GlobalPlacer instance
/// (defined in the .cpp). Holding it across iterations and runs means the
/// steady-state optimize loop performs no heap allocation.
struct PlacerScratch;

/// How overfilled bins are resolved between quadratic solves.
enum class SpreadMode {
  kCellShift,  ///< FastPlace cell shifting (standard cells)
  kBisection,  ///< capacity-balanced recursive bisection (cluster macros,
               ///< which cell shifting cannot untangle)
};

struct GlobalPlacerOptions {
  SpreadMode spread_mode = SpreadMode::kCellShift;
  int max_iterations = 24;
  int min_iterations = 5;
  int cg_max_iterations = 60;
  double cg_tolerance = 1e-4;
  /// Bin edge length in row heights for the spreading grid.
  double bin_rows = 4.0;
  /// Stop once (overfill area / movable area) drops below this.
  double target_overflow = 0.08;
  /// Pseudo-net anchor weight; multiplied by the iteration number.
  double anchor_base = 0.01;
  /// Cell-shifting sweeps per spreading step.
  int spread_passes = 10;
  /// Iterations for the incremental mode.
  int incremental_iterations = 14;
  /// Extra anchor weight toward the seed placement in incremental mode.
  double incremental_anchor = 0.02;
  /// Incremental runs resume the anchor-weight schedule at this iteration
  /// index: the seed stands in for the global exploration already done, so
  /// the first solve must not collapse it back to the quadratic optimum.
  int incremental_anchor_offset = 12;
  /// Fraction of the iteration budget during which region (fence)
  /// constraints are enforced; afterwards they are released so the final
  /// refinement is unconstrained (mirrors Alg. 1 line 20, "remove region
  /// constraints"). 1.0 keeps fences throughout.
  double region_release_fraction = 0.5;
  /// Record one telemetry span per outer iteration ("place.gp.iter", with
  /// overflow/HPWL attributes). Off by default so the hundreds of placer
  /// runs inside V-P&R shape sweeps stay out of the trace; the flow turns
  /// it on for its top-level placements. Per-iteration gauges are recorded
  /// regardless (they are plain atomics).
  bool trace_iterations = false;
  std::uint64_t seed = 1;
};

struct PlaceResult {
  Placement placement;   ///< centers for all objects (fixed ones included)
  double hpwl_um = 0.0;  ///< weighted model HPWL
  double overflow = 0.0; ///< residual overfill ratio
  int iterations = 0;
  /// Empty on a clean run; otherwise the error code of the `place.solve`
  /// failure that made the placer stop early with the best placement so far
  /// (e.g. "place-solve-failed", "non-finite-result").
  std::string degrade_code;
};

class GlobalPlacer {
 public:
  GlobalPlacer(const PlaceModel& model, const GlobalPlacerOptions& options);
  ~GlobalPlacer();

  /// Global placement from scratch.
  PlaceResult run();

  /// Incremental placement from `seed` (e.g. cluster-center-induced
  /// locations). `seed` must cover all objects; fixed objects keep their
  /// fixed positions regardless.
  PlaceResult run_incremental(const Placement& seed);

  /// Fallible forms of run()/run_incremental(): allocation failure becomes
  /// a structured `alloc-failure` error, and a mid-run `place.solve`
  /// failure either stops early with the best placement so far (recorded in
  /// PlaceResult::degrade_code) when `policy.place_early_stop`, or is
  /// returned as the FlowError itself when the policy forbids degradation.
  [[nodiscard]] fault::Expected<PlaceResult, fault::FlowError> try_run(
      const fault::DegradePolicy& policy);
  [[nodiscard]] fault::Expected<PlaceResult, fault::FlowError> try_run_incremental(
      const Placement& seed, const fault::DegradePolicy& policy);

 private:
  PlaceResult optimize(Placement positions, int iterations,
                       const Placement* seed_anchor);
  void solve_direction(bool x_dir, Placement& positions,
                       const Placement& anchor_targets, double anchor_weight,
                       const Placement* seed_anchor);
  /// Cell shifting; returns the overflow ratio before shifting.
  double spread(Placement& positions);
  /// Recursive bisection spreading for macro-like objects.
  void spread_bisection(Placement& positions);
  /// Overflow ratio of `positions` on the spreading grid (footprint-smeared).
  double measure_overflow(const Placement& positions) const;
  /// Footprint-smeared movable area per spreading-grid bin, accumulated in
  /// parallel (per-chunk bin scratch merged in fixed chunk order).
  void accumulate_area(const Placement& positions,
                       std::vector<double>& area) const;
  void clamp_to_core_and_regions(Placement& positions);

  const PlaceModel* model_;
  GlobalPlacerOptions options_;
  double seed_weight_ = 0.0;  ///< current (decayed) seed-anchor weight
  bool regions_active_ = true;  ///< fences enforced in the current iteration
  // Flight-recorder series for the current optimize() run (-1 = off). CG
  // residuals use one series per direction so (index, sub) keys stay unique.
  std::int32_t obs_iter_series_ = -1;
  std::int32_t obs_cg_series_[2] = {-1, -1};  ///< [0] = x solves, [1] = y
  std::int64_t obs_iter_ = 0;                 ///< outer iteration being solved
  // Spreading grid (fixed by core + bin_rows) and per-bin blockage area.
  int grid_nx_ = 1;
  int grid_ny_ = 1;
  double bin_w_ = 1.0;
  double bin_h_ = 1.0;
  std::vector<double> blockage_area_;  ///< per bin, from blockage objects
  std::vector<std::int32_t> movable_;        ///< object -> dense movable index or -1
  std::vector<std::int32_t> movable_objects_; ///< dense movable index -> object
  /// Mutable: const queries (overflow measurement) reuse the same buffers.
  mutable std::unique_ptr<PlacerScratch> scratch_;
};

}  // namespace ppacd::place
