/// \file model.hpp
/// \brief Abstract placement model shared by flat and clustered placement.
///
/// The paper's flow places two kinds of designs with the same engine: the
/// flat netlist (default flow, incremental seeded placement) and the
/// clustered netlist whose "cells" are cluster macros with V-P&R-chosen
/// shapes (seed placement). PlaceModel is that common abstraction: movable
/// rectangles, fixed terminals, and weighted hyperedges.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geom/geometry.hpp"
#include "netlist/netlist.hpp"
#include "place/floorplan.hpp"

namespace ppacd::place {

/// One placeable object (standard cell, cluster macro, or fixed terminal).
struct PlaceObject {
  double width_um = 0.0;
  double height_um = 0.0;
  bool fixed = false;
  geom::Point fixed_position;  ///< valid when fixed
  /// Fixed obstruction: its footprint consumes bin capacity during
  /// spreading, so movables flow around it (macros, or the notch of an
  /// L-shaped virtual die). Implies `fixed`.
  bool blockage = false;
  /// Optional fence: the object must stay inside this region (Innovus-style
  /// region constraint, Alg. 1 line 18).
  std::optional<geom::Rect> region;

  double area_um2() const { return width_um * height_um; }
};

/// One hyperedge over object indices.
struct PlaceNet {
  double weight = 1.0;
  std::vector<std::int32_t> objects;
};

/// The placement problem: objects + nets + core area.
struct PlaceModel {
  std::vector<PlaceObject> objects;
  std::vector<PlaceNet> nets;
  geom::Rect core;
  double row_height_um = 1.4;

  std::size_t movable_count() const;
  double movable_area() const;
};

/// Object positions indexed like PlaceModel::objects (centers).
using Placement = std::vector<geom::Point>;

/// Builds a PlaceModel from a flat netlist: objects [0, cell_count) are the
/// cells (in CellId order) and ports become fixed terminals after them.
/// `io_net_weight_scale` multiplies the weight of nets touching top ports
/// (Alg. 1 line 22 uses 4 for the OpenROAD seeded flow). Clock nets are
/// excluded from the model: placement should not chase the clock's fanout.
PlaceModel make_place_model(const netlist::Netlist& netlist, const Floorplan& fp,
                            double io_net_weight_scale = 1.0);

/// Total weighted HPWL of a model under `placement` (um).
double total_hpwl(const PlaceModel& model, const Placement& placement);

/// HPWL of one net of the model (unweighted, um).
double net_hpwl(const PlaceModel& model, const Placement& placement,
                std::size_t net_index);

/// Extracts per-cell positions (the first cell_count placement entries).
std::vector<geom::Point> cell_positions(const netlist::Netlist& netlist,
                                        const Placement& placement);

/// Same, written into `out` (capacity reused) for per-candidate hot loops.
void cell_positions(const netlist::Netlist& netlist, const Placement& placement,
                    std::vector<geom::Point>& out);

/// Netlist-level HPWL (all nets incl. clock, unweighted) from cell positions
/// and port locations; this is the "HPWL" recorded by Alg. 1 line 27.
double netlist_hpwl(const netlist::Netlist& netlist,
                    const std::vector<geom::Point>& positions);

}  // namespace ppacd::place
