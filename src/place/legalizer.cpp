#include "place/legalizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ppacd::place {

namespace {

/// Abacus row legalization [Spindler et al., DATE'08]: cells are inserted
/// into a row in increasing-x order; each row keeps clusters of abutted
/// cells whose optimal (least-squares displacement) position is q / w,
/// clamped into the row. Appending a cell may cascade merges with earlier
/// clusters; both a non-destructive trial (for row selection) and a commit
/// are provided.
struct Cluster {
  double x = 0.0;      ///< left edge of the cluster
  double q = 0.0;      ///< sum of (desired left edge - offset in cluster)
  double w = 0.0;      ///< number of cells
  double width = 0.0;  ///< total width
  std::int32_t first_cell = 0;  ///< index into Row::cells
};

struct RowCell {
  std::int32_t object = -1;
  double width = 0.0;
};

struct Row {
  double lx = 0.0;
  double ux = 0.0;
  double y = 0.0;
  std::vector<Cluster> clusters;
  std::vector<RowCell> cells;  ///< in insertion (x) order
  double used_width = 0.0;

  double clamp_x(double x, double width) const {
    return std::clamp(x, lx, std::max(lx, ux - width));
  }

  /// Final left edge the new cell would get; NaN when the row cannot fit it.
  double trial(double desired_left, double cell_width) const {
    if (used_width + cell_width > ux - lx) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    Cluster cur;
    cur.q = desired_left;
    cur.w = 1.0;
    cur.width = cell_width;
    cur.x = clamp_x(desired_left, cell_width);
    std::size_t idx = clusters.size();
    while (idx > 0 && clusters[idx - 1].x + clusters[idx - 1].width > cur.x) {
      const Cluster& prev = clusters[idx - 1];
      Cluster merged;
      merged.q = prev.q + cur.q - cur.w * prev.width;
      merged.w = prev.w + cur.w;
      merged.width = prev.width + cur.width;
      merged.x = clamp_x(merged.q / merged.w, merged.width);
      cur = merged;
      --idx;
    }
    // Left edge of the appended cell = cluster end minus its own width.
    return cur.x + cur.width - cell_width;
  }

  /// Inserts the cell (must follow a successful trial with the same args).
  void commit(std::int32_t object, double desired_left, double cell_width) {
    cells.push_back(RowCell{object, cell_width});
    used_width += cell_width;

    Cluster cur;
    cur.q = desired_left;
    cur.w = 1.0;
    cur.width = cell_width;
    cur.x = clamp_x(desired_left, cell_width);
    cur.first_cell = static_cast<std::int32_t>(cells.size()) - 1;
    while (!clusters.empty() &&
           clusters.back().x + clusters.back().width > cur.x) {
      const Cluster prev = clusters.back();
      clusters.pop_back();
      Cluster merged;
      merged.q = prev.q + cur.q - cur.w * prev.width;
      merged.w = prev.w + cur.w;
      merged.width = prev.width + cur.width;
      merged.x = clamp_x(merged.q / merged.w, merged.width);
      merged.first_cell = prev.first_cell;
      cur = merged;
    }
    clusters.push_back(cur);
  }
};

}  // namespace

LegalizeResult legalize(const PlaceModel& model, const Placement& placement) {
  LegalizeResult result;
  result.placement = placement;

  const geom::Rect& core = model.core;
  const double row_h = model.row_height_um;
  const int row_count = std::max(1, static_cast<int>(core.height() / row_h));
  std::vector<Row> rows(static_cast<std::size_t>(row_count));
  for (int r = 0; r < row_count; ++r) {
    rows[static_cast<std::size_t>(r)].lx = core.lx;
    rows[static_cast<std::size_t>(r)].ux = core.ux;
    rows[static_cast<std::size_t>(r)].y = core.ly + (r + 0.5) * row_h;
  }

  // Single-row movables, left to right (Abacus requires x-sorted insertion).
  std::vector<std::int32_t> order;
  for (std::size_t i = 0; i < model.objects.size(); ++i) {
    const PlaceObject& obj = model.objects[i];
    if (obj.fixed || obj.blockage || obj.height_um > row_h * 1.5) continue;
    order.push_back(static_cast<std::int32_t>(i));
  }
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    return placement[static_cast<std::size_t>(a)].x <
           placement[static_cast<std::size_t>(b)].x;
  });

  for (const std::int32_t oi : order) {
    const PlaceObject& obj = model.objects[static_cast<std::size_t>(oi)];
    const geom::Point want = placement[static_cast<std::size_t>(oi)];
    const double hw = obj.width_um * 0.5;
    const double desired_left = want.x - hw;

    int best_row = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    double best_left = 0.0;
    const int want_row = std::clamp(
        static_cast<int>((want.y - core.ly) / row_h), 0, row_count - 1);
    for (int offset = 0; offset < row_count; ++offset) {
      for (const int r : {want_row - offset, want_row + offset}) {
        if (r < 0 || r >= row_count || (offset > 0 && r == want_row)) continue;
        Row& row = rows[static_cast<std::size_t>(r)];
        const double dy = std::fabs(row.y - want.y);
        if (dy >= best_cost) continue;
        const double left = row.trial(desired_left, obj.width_um);
        if (std::isnan(left)) continue;
        const double cost = std::fabs(left - desired_left) + dy;
        if (cost < best_cost) {
          best_cost = cost;
          best_row = r;
          best_left = left;
        }
      }
      if (best_row >= 0 && static_cast<double>(offset) * row_h > best_cost) break;
    }
    if (best_row < 0) {
      ++result.failed_count;
      continue;
    }
    rows[static_cast<std::size_t>(best_row)].commit(oi, desired_left, obj.width_um);
    // Provisional position; final x comes from the cluster walk below.
    result.placement[static_cast<std::size_t>(oi)] = {
        best_left + hw, rows[static_cast<std::size_t>(best_row)].y};
  }

  // Final positions: walk every row's clusters (their x moved as later
  // cells were merged in).
  for (const Row& row : rows) {
    for (const Cluster& cluster : row.clusters) {
      double cursor = cluster.x;
      // Cells of this cluster are contiguous starting at first_cell; the
      // cluster width tells where it ends.
      double consumed = 0.0;
      for (std::size_t ci = static_cast<std::size_t>(cluster.first_cell);
           ci < row.cells.size() && consumed < cluster.width - 1e-9; ++ci) {
        const RowCell& cell = row.cells[ci];
        result.placement[static_cast<std::size_t>(cell.object)] = {
            cursor + cell.width * 0.5, row.y};
        cursor += cell.width;
        consumed += cell.width;
      }
    }
  }

  for (const std::int32_t oi : order) {
    const double disp = geom::manhattan(placement[static_cast<std::size_t>(oi)],
                                        result.placement[static_cast<std::size_t>(oi)]);
    result.total_displacement_um += disp;
    result.max_displacement_um = std::max(result.max_displacement_um, disp);
  }
  return result;
}

}  // namespace ppacd::place
