#include "place/global_placer.hpp"

#include <algorithm>
#include "util/assert.hpp"
#include <cmath>
#include <new>
#include <span>

#include "exec/exec.hpp"
#include "observe/observe.hpp"
#include "telemetry/telemetry.hpp"
#include "util/arena.hpp"
#include "util/logging.hpp"
#include "util/simd.hpp"
#include "util/soa.hpp"

namespace ppacd::place {

namespace {

// Fixed grains for the parallel numeric kernels. Chunk boundaries (and thus
// floating-point combination order) depend only on these constants and the
// problem size, never on the thread count — see src/exec/exec.hpp.
constexpr std::size_t kVecGrain = 4096;   ///< elementwise / dot chunks
constexpr std::size_t kRowGrain = 2048;   ///< mat-vec rows per chunk
constexpr std::size_t kNetGrain = 256;    ///< nets per assembly chunk
constexpr std::size_t kObjGrain = 2048;   ///< objects per density chunk
/// Density scratch cap: at most this many per-chunk bin arrays are alive.
constexpr std::size_t kMaxAreaChunks = 16;

/// Deterministic chunked dot product (ordered reduction). Each chunk reduces
/// with the fixed 4-lane kernel from util/simd.hpp and the per-chunk partials
/// fold in ascending chunk order, so the value depends only on (range,
/// kVecGrain) — never on the thread count or the PPACD_SIMD setting. The
/// switch from a single sequential accumulator to the lane-ordered kernel
/// changed low-order result bits once; the placement goldens were re-pinned
/// with that rationale (DESIGN.md §15).
double dot(std::span<const double> a, std::span<const double> b) {
  return exec::parallel_reduce(
      0, a.size(), kVecGrain, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        return util::simd::dot(a.data() + lo, b.data() + lo, hi - lo);
      },
      [](double x, double y) { return x + y; });
}

}  // namespace

/// Sparse symmetric system assembled per direction: diagonal + off-diagonal
/// triplets over dense movable indices, with right-hand side. finalize()
/// builds a CSR row adjacency so multiply() can run row-parallel: each row
/// gathers its neighbours in a fixed per-row order, so the result does not
/// depend on the thread count. reset() keeps every buffer's capacity, so one
/// instance reused across iterations assembles without allocating.
struct QuadSystem {
  std::vector<double> diag;
  std::vector<double> rhs;
  struct OffDiag {
    std::int32_t i;
    std::int32_t j;
    double w;
  };
  std::vector<OffDiag> off;
  // CSR adjacency (both directions of every off-diagonal edge).
  std::vector<std::int32_t> row_ptr;
  std::vector<std::int32_t> col;
  std::vector<double> weight;
  std::vector<std::int32_t> cursor;  ///< finalize() scratch, capacity reused

  void reset(std::size_t n) {
    diag.assign(n, 0.0);
    rhs.assign(n, 0.0);
    off.clear();
    off.reserve(n * 4);
  }

  void add_edge_movable(std::int32_t i, std::int32_t j, double w) {
    diag[static_cast<std::size_t>(i)] += w;
    diag[static_cast<std::size_t>(j)] += w;
    off.push_back({i, j, w});
  }

  void add_edge_fixed(std::int32_t i, double fixed_coord, double w) {
    diag[static_cast<std::size_t>(i)] += w;
    rhs[static_cast<std::size_t>(i)] += w * fixed_coord;
  }

  /// Builds the CSR adjacency from `off` (call once, after assembly).
  void finalize() {
    const std::size_t n = diag.size();
    row_ptr.assign(n + 1, 0);
    for (const OffDiag& e : off) {
      ++row_ptr[static_cast<std::size_t>(e.i) + 1];
      ++row_ptr[static_cast<std::size_t>(e.j) + 1];
    }
    for (std::size_t i = 0; i < n; ++i) row_ptr[i + 1] += row_ptr[i];
    col.resize(static_cast<std::size_t>(row_ptr[n]));
    weight.resize(col.size());
    cursor.assign(row_ptr.begin(), row_ptr.end() - 1);
    for (const OffDiag& e : off) {
      const std::size_t si = static_cast<std::size_t>(e.i);
      const std::size_t sj = static_cast<std::size_t>(e.j);
      col[static_cast<std::size_t>(cursor[si])] = e.j;
      weight[static_cast<std::size_t>(cursor[si]++)] = e.w;
      col[static_cast<std::size_t>(cursor[sj])] = e.i;
      weight[static_cast<std::size_t>(cursor[sj]++)] = e.w;
    }
  }

  void multiply(std::span<const double> x, std::span<double> out) const {
    // Chunked row loop with non-aliased raw pointers: the CSR arrays, the
    // input and the output never overlap, and telling the compiler so keeps
    // the gather loop free of reload stalls. Per-row accumulation order is
    // unchanged (diagonal first, then neighbours in CSR order).
    const double* PPACD_RESTRICT dg = diag.data();
    const double* PPACD_RESTRICT wt = weight.data();
    const std::int32_t* PPACD_RESTRICT rp = row_ptr.data();
    const std::int32_t* PPACD_RESTRICT cl = col.data();
    const double* PPACD_RESTRICT xv = x.data();
    double* PPACD_RESTRICT ov = out.data();
    exec::parallel_for_chunks(
        0, diag.size(), kRowGrain,
        [=](std::size_t rb, std::size_t re, std::size_t) {
          for (std::size_t i = rb; i < re; ++i) {
            const std::size_t lo = static_cast<std::size_t>(rp[i]);
            const std::size_t hi = static_cast<std::size_t>(rp[i + 1]);
            ov[i] = util::simd::csr_row(dg[i] * xv[i], wt + lo, cl + lo, xv,
                                        hi - lo);
          }
        });
  }
};

/// Per-placer reusable buffers (pimpl behind GlobalPlacer::scratch_). One
/// instance lives as long as the placer, so the optimize loop — B2B assembly,
/// CG, density accumulation, cell shifting — allocates nothing in steady
/// state: every vector keeps its capacity and the CG vectors come from a
/// bump arena that is reset (not freed) between solves.
struct PlacerScratch {
  /// One parallel-assembly contribution (see solve_direction).
  struct AsmOp {
    std::int32_t i;
    std::int32_t j;  ///< movable partner, or -1 for a fixed edge
    double w;
    double coord;  ///< fixed coordinate when j == -1
  };

  QuadSystem system;                         ///< per-direction quadratic system
  std::vector<std::vector<AsmOp>> chunk_ops; ///< per-chunk assembly op lists
  std::vector<double> x;                     ///< CG solution vector
  util::Arena cg_arena;                      ///< CG residual/direction buffers
  std::vector<double> spread_area;           ///< per-bin area in spread()
  std::vector<double> lane_util;             ///< per-lane bin utilization rows
  std::vector<double> lane_nb;               ///< per-lane new-boundary rows
  std::vector<std::vector<double>> area_chunks; ///< accumulate_area partials
  std::vector<double> measure_area;          ///< measure_overflow() bins
  /// Per-movable footprint constants {half-width, half-height, area},
  /// gathered out of the PlaceObject structs once at construction so the
  /// density loops stream three flat columns instead of chasing the full
  /// object records every call.
  util::SoaBlock<double, 3> geom;
  /// Per-object coordinate in the direction being solved (solve_direction
  /// gathers it once per call; the B2B assembly then reads a flat array).
  std::vector<double> coords;
  /// Counting-sort buckets for spread(): movable object ids grouped by lane.
  std::vector<std::int32_t> lane_objs;
  std::vector<std::int32_t> lane_start;
  std::vector<std::int32_t> lane_fill;
  /// Per-bin movable capacity (bin area minus blockage, clamped) and its
  /// reciprocal; both constant after construction.
  std::vector<double> bin_cap;
  std::vector<double> inv_bin_cap;
};

namespace {

/// Jacobi-preconditioned conjugate gradient; solves A x = b in place. The
/// mat-vec is row-parallel and every dot product reduces in fixed chunk
/// order, so the iterate sequence is bit-identical for any thread count.
/// The four work vectors live in `arena`, reset (capacity kept) per call.
/// When `obs_series >= 0`, sampled relative residuals stream to the flight
/// recorder as kPlaceCg (series obs_series, index obs_index, sub cg_iter);
/// a final sub == -1 sample carries {iters_run, final_residual}.
void solve_cg(const QuadSystem& system, std::vector<double>& x, int max_iters,
              double tolerance, util::Arena& arena,
              std::int32_t obs_series = -1, std::int64_t obs_index = 0) {
  const std::size_t n = x.size();
  if (n == 0) return;
  arena.reset();
  const std::span<double> r = arena.alloc<double>(n);
  const std::span<double> z = arena.alloc<double>(n);
  const std::span<double> p = arena.alloc<double>(n);
  const std::span<double> ap = arena.alloc<double>(n);

  system.multiply(x, ap);
  exec::parallel_for(0, n, kVecGrain,
                     [&](std::size_t i) { r[i] = system.rhs[i] - ap[i]; });
  double b_norm = std::sqrt(dot(system.rhs, system.rhs));
  if (b_norm == 0.0) b_norm = 1.0;

  // Elementwise kernels run per contiguous chunk through util/simd.hpp:
  // each element's result is independent, so vector lanes cannot change a
  // bit regardless of thread count or the PPACD_SIMD setting.
  auto precond = [&system](std::span<const double> in, std::span<double> out) {
    exec::parallel_for_chunks(
        0, in.size(), kVecGrain,
        [&](std::size_t lo, std::size_t hi, std::size_t) {
          util::simd::jacobi(out.data() + lo, in.data() + lo,
                             system.diag.data() + lo, hi - lo);
        });
  };

  precond(r, z);
  std::copy(z.begin(), z.end(), p.begin());
  double rz = dot(r, z);

  // One CG step: direction update, solution/residual axpy, re-precondition.
  // Returns false on the defensive SPD bail-out. Shared by both loops below
  // so the instrumented variant can't drift from the pristine one.
  auto step = [&]() -> bool {
    system.multiply(p, ap);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0) return false;  // matrix should be SPD; bail out
    const double alpha = rz / p_ap;
    exec::parallel_for_chunks(
        0, n, kVecGrain, [&](std::size_t lo, std::size_t hi, std::size_t) {
          // lint:allow(parallel-float-accum): element i touched once
          util::simd::cg_update(x.data() + lo, r.data() + lo, p.data() + lo,
                                ap.data() + lo, alpha, hi - lo);
        });
    precond(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    exec::parallel_for_chunks(
        0, n, kVecGrain, [&](std::size_t lo, std::size_t hi, std::size_t) {
          util::simd::xpby(p.data() + lo, z.data() + lo, beta, hi - lo);
        });
    return true;
  };

  const bool observing = obs_series >= 0 && observe::active();
  if (!observing) {
    // Pristine hot loop: no extra live state, no calls into the recorder —
    // codegen matches the uninstrumented solver.
    for (int iter = 0; iter < max_iters; ++iter) {
      if (std::sqrt(dot(r, r)) / b_norm < tolerance) break;
      if (!step()) break;
    }
    return;
  }

  // Instrumented variant: residuals land in an arena scratch log (one plain
  // store per iteration) and flush to the recorder after the loop, keeping
  // recorder calls out of the solve.
  const std::span<double> resid_log =
      arena.alloc<double>(static_cast<std::size_t>(max_iters) + 1);
  int logged = 0;
  int iters_run = 0;
  for (int iter = 0; iter < max_iters; ++iter) {
    const double residual = std::sqrt(dot(r, r)) / b_norm;
    resid_log[static_cast<std::size_t>(logged++)] = residual;
    if (residual < tolerance) break;
    iters_run = iter + 1;
    if (!step()) break;
  }
  observe::Recorder& rec = observe::recorder();
  for (int i = 0; i < logged; ++i) {
    if (rec.want(i)) {
      rec.record(observe::Stream::kPlaceCg, obs_series, obs_index, i,
                 {resid_log[static_cast<std::size_t>(i)]});
    }
  }
  rec.record(observe::Stream::kPlaceCg, obs_series, obs_index, -1,
             {static_cast<double>(iters_run),
              logged > 0 ? resid_log[static_cast<std::size_t>(logged - 1)] : 0.0});
}

constexpr double kMinB2bDist = 0.5;  // um; keeps B2B weights bounded

}  // namespace

GlobalPlacer::GlobalPlacer(const PlaceModel& model,
                           const GlobalPlacerOptions& options)
    : model_(&model), options_(options) {
  movable_.assign(model.objects.size(), -1);
  for (std::size_t i = 0; i < model.objects.size(); ++i) {
    const PlaceObject& obj = model.objects[i];
    if (!obj.fixed && !obj.blockage) {
      movable_[i] = static_cast<std::int32_t>(movable_objects_.size());
      movable_objects_.push_back(static_cast<std::int32_t>(i));
    }
  }

  // Spreading grid geometry and the static blockage occupancy map.
  const geom::Rect& core = model.core;
  const double bin_edge = options_.bin_rows * model.row_height_um;
  grid_nx_ = std::max(1, static_cast<int>(core.width() / bin_edge));
  grid_ny_ = std::max(1, static_cast<int>(core.height() / bin_edge));
  bin_w_ = core.width() / grid_nx_;
  bin_h_ = core.height() / grid_ny_;
  blockage_area_.assign(
      static_cast<std::size_t>(grid_nx_) * static_cast<std::size_t>(grid_ny_),
      0.0);
  for (const PlaceObject& obj : model.objects) {
    if (!obj.blockage) continue;
    const double hw = obj.width_um * 0.5;
    const double hh = obj.height_um * 0.5;
    const geom::Point& p = obj.fixed_position;
    const int x0 = std::clamp(static_cast<int>((p.x - hw - core.lx) / bin_w_), 0, grid_nx_ - 1);
    const int x1 = std::clamp(static_cast<int>((p.x + hw - core.lx) / bin_w_), 0, grid_nx_ - 1);
    const int y0 = std::clamp(static_cast<int>((p.y - hh - core.ly) / bin_h_), 0, grid_ny_ - 1);
    const int y1 = std::clamp(static_cast<int>((p.y + hh - core.ly) / bin_h_), 0, grid_ny_ - 1);
    for (int by = y0; by <= y1; ++by) {
      const double oy = std::max(0.0, std::min(p.y + hh, core.ly + (by + 1) * bin_h_) -
                                          std::max(p.y - hh, core.ly + by * bin_h_));
      for (int bx = x0; bx <= x1; ++bx) {
        const double ox = std::max(0.0, std::min(p.x + hw, core.lx + (bx + 1) * bin_w_) -
                                            std::max(p.x - hw, core.lx + bx * bin_w_));
        blockage_area_[static_cast<std::size_t>(by) *
                         static_cast<std::size_t>(grid_nx_) +
                     static_cast<std::size_t>(bx)] += ox * oy;
      }
    }
  }

  scratch_ = std::make_unique<PlacerScratch>();
  // SoA footprint columns for the density loops: same clamped values the
  // old per-object loads produced, gathered once.
  scratch_->geom.resize(movable_objects_.size());
  double* const hw_col = scratch_->geom.col(0);
  double* const hh_col = scratch_->geom.col(1);
  double* const area_col = scratch_->geom.col(2);
  for (std::size_t m = 0; m < movable_objects_.size(); ++m) {
    const PlaceObject& o =
        model.objects[static_cast<std::size_t>(movable_objects_[m])];
    hw_col[m] = std::max(o.width_um * 0.5, 1e-6);
    hh_col[m] = std::max(o.height_um * 0.5, 1e-6);
    area_col[m] = o.area_um2();
  }
  // Per-bin capacity is fixed once the blockage map is: precompute it (and
  // its reciprocal, for the utilization sweeps) instead of re-deriving it
  // per bin visit.
  scratch_->bin_cap.resize(blockage_area_.size());
  scratch_->inv_bin_cap.resize(blockage_area_.size());
  const double bin_area = bin_w_ * bin_h_;
  for (std::size_t b = 0; b < blockage_area_.size(); ++b) {
    const double cap = std::max(1e-6, bin_area - blockage_area_[b]);
    scratch_->bin_cap[b] = cap;
    scratch_->inv_bin_cap[b] = 1.0 / cap;
  }
}

GlobalPlacer::~GlobalPlacer() = default;

void GlobalPlacer::solve_direction(bool x_dir, Placement& positions,
                                   const Placement& anchor_targets,
                                   double anchor_weight,
                                   const Placement* seed_anchor) {
  const PlaceModel& model = *model_;
  const std::size_t n = movable_objects_.size();
  QuadSystem& system = scratch_->system;
  system.reset(n);
  auto coord = [x_dir](const geom::Point& p) { return x_dir ? p.x : p.y; };

  // Flat per-object coordinate column for this direction: the B2B assembly
  // below touches every net pin several times, and reading an 8-byte double
  // out of a dense column instead of half a Point costs half the bandwidth.
  // Same values as the Point loads, so the assembled system is unchanged.
  std::vector<double>& coords = scratch_->coords;
  coords.resize(model.objects.size());
  for (std::size_t i = 0; i < model.objects.size(); ++i) {
    coords[i] = x_dir ? positions[i].x : positions[i].y;
  }
  const double* PPACD_RESTRICT co = coords.data();

  // Parallel B2B assembly: each net chunk records its contributions as an
  // ordered op list; applying the lists in ascending chunk order replays the
  // serial assembly exactly (same additions, same floating-point order).
  using AsmOp = PlacerScratch::AsmOp;
  const std::size_t net_count = model.nets.size();
  std::vector<std::vector<AsmOp>>& chunk_ops = scratch_->chunk_ops;
  chunk_ops.resize(exec::detail::chunk_count_for(net_count, kNetGrain));
  exec::parallel_for_chunks(0, net_count, kNetGrain, [&](std::size_t nb,
                                                         std::size_t ne,
                                                         std::size_t chunk) {
    std::vector<AsmOp>& ops = chunk_ops[chunk];
    ops.clear();
    for (std::size_t ni = nb; ni < ne; ++ni) {
      const PlaceNet& net = model.nets[ni];
      const std::size_t k = net.objects.size();
      if (k < 2) continue;

      // Find boundary pins in this direction (first-extreme-wins, exactly
      // as the old recomputing scan: ties keep the earliest index).
      std::size_t idx_min = 0;
      std::size_t idx_max = 0;
      double c_min = co[static_cast<std::size_t>(net.objects[0])];
      double c_max = c_min;
      for (std::size_t i = 1; i < k; ++i) {
        const double c = co[static_cast<std::size_t>(net.objects[i])];
        if (c < c_min) {
          c_min = c;
          idx_min = i;
        }
        if (c > c_max) {
          c_max = c;
          idx_max = i;
        }
      }
      if (idx_min == idx_max) idx_max = (idx_min + 1) % k;

      const double base = net.weight * 2.0 / static_cast<double>(k - 1);
      auto add_pair = [&](std::size_t a, std::size_t b) {
        const std::int32_t oa = net.objects[a];
        const std::int32_t ob = net.objects[b];
        if (oa == ob) return;
        const double ca = co[static_cast<std::size_t>(oa)];
        const double cb = co[static_cast<std::size_t>(ob)];
        const double w = base / std::max(std::fabs(ca - cb), kMinB2bDist);
        const std::int32_t ma = movable_[static_cast<std::size_t>(oa)];
        const std::int32_t mb = movable_[static_cast<std::size_t>(ob)];
        if (ma >= 0 && mb >= 0) {
          ops.push_back({ma, mb, w, 0.0});
        } else if (ma >= 0) {
          ops.push_back({ma, -1, w, cb});
        } else if (mb >= 0) {
          ops.push_back({mb, -1, w, ca});
        }
      };

      for (std::size_t i = 0; i < k; ++i) {
        if (i != idx_min) add_pair(i, idx_min);
        if (i != idx_max && i != idx_min) add_pair(i, idx_max);
      }
    }
  });
  for (const std::vector<AsmOp>& ops : chunk_ops) {
    for (const AsmOp& op : ops) {
      if (op.j >= 0) {
        system.add_edge_movable(op.i, op.j, op.w);
      } else {
        system.add_edge_fixed(op.i, op.coord, op.w);
      }
    }
  }

  // Anchors: pull every movable toward its spread target; in incremental
  // mode additionally toward the seed location. Each m touches only its own
  // diagonal/rhs entry, so the loop is safely index-parallel.
  exec::parallel_for(0, n, kVecGrain, [&](std::size_t m) {
    const std::size_t obj = static_cast<std::size_t>(movable_objects_[m]);
    if (anchor_weight > 0.0) {
      system.add_edge_fixed(static_cast<std::int32_t>(m),
                            coord(anchor_targets[obj]), anchor_weight);
    }
    if (seed_anchor != nullptr && seed_weight_ > 0.0) {
      system.add_edge_fixed(static_cast<std::int32_t>(m),
                            coord((*seed_anchor)[obj]), seed_weight_);
    }
  });
  system.finalize();

  std::vector<double>& x = scratch_->x;
  x.resize(n);
  for (std::size_t m = 0; m < n; ++m) {
    x[m] = co[static_cast<std::size_t>(movable_objects_[m])];
  }
  solve_cg(system, x, options_.cg_max_iterations, options_.cg_tolerance,
           scratch_->cg_arena, obs_cg_series_[x_dir ? 0 : 1], obs_iter_);
  for (std::size_t m = 0; m < n; ++m) {
    auto& p = positions[static_cast<std::size_t>(movable_objects_[m])];
    if (x_dir) p.x = x[m];
    else p.y = x[m];
  }
}

double GlobalPlacer::spread(Placement& positions) {
  const PlaceModel& model = *model_;
  const geom::Rect& core = model.core;
  const int nx = grid_nx_;
  const int ny = grid_ny_;
  const double bw = bin_w_;
  const double bh = bin_h_;

  // Reciprocal binning — same rationale (and the same re-pin) as in
  // accumulate_area.
  const double ibw = 1.0 / bw;
  const double ibh = 1.0 / bh;
  auto bin_x = [&](double x) {
    return std::clamp(static_cast<int>((x - core.lx) * ibw), 0, nx - 1);
  };
  auto bin_y = [&](double y) {
    return std::clamp(static_cast<int>((y - core.ly) * ibh), 0, ny - 1);
  };

  // Capacity available to movables (bin area minus blockage footprints),
  // precomputed at construction together with its reciprocal.
  const double* PPACD_RESTRICT cap = scratch_->bin_cap.data();
  const double* PPACD_RESTRICT icap = scratch_->inv_bin_cap.data();
  std::vector<double>& area = scratch_->spread_area;
  area.assign(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny),
              0.0);
  // Per-lane rows for the cell-shifting sweeps below: each lane writes only
  // its own stride-separated row, so the lane-parallel loop stays race-free
  // without per-lane heap allocation.
  const std::size_t lane_cap = static_cast<std::size_t>(std::max(nx, ny));
  scratch_->lane_util.resize(lane_cap * lane_cap);
  scratch_->lane_nb.resize(lane_cap * (lane_cap + 1));
  auto recompute_area = [&]() { accumulate_area(positions, area); };
  auto compute_overflow = [&]() {
    double overfill = 0.0;
    double total = 0.0;
    for (std::size_t b = 0; b < area.size(); ++b) {
      overfill += std::max(0.0, area[b] - cap[b]);
      total += area[b];
    }
    return total > 0.0 ? overfill / total : 0.0;
  };

  recompute_area();
  const double overflow = compute_overflow();

  // FastPlace cell shifting: move bin boundaries toward equalized
  // utilization, then linearly remap cell coordinates bin-by-bin.
  constexpr double kDelta = 0.5;
  // Lanes are independent: a cell belongs to exactly one lane (its cross-axis
  // bin, which this pass never modifies) and only that lane moves it, so the
  // lane loop is safely parallel and order-free.
  auto shift_axis = [&](bool x_axis) {
    const int lanes = x_axis ? ny : nx;
    const int bins = x_axis ? nx : ny;
    const double lo = x_axis ? core.lx : core.ly;
    const double step = x_axis ? bw : bh;

    // Counting-sort the movables into their lanes up front: the per-lane
    // remap below then touches only its own cells instead of scanning the
    // whole object list once per lane (the old O(lanes x objects) sweep was
    // the placer's single hottest loop). A cell's lane is its cross-axis
    // bin, which this pass never modifies, and cell remaps are independent,
    // so grouping changes nothing but the visit pattern.
    const std::size_t n_mov = movable_objects_.size();
    std::vector<std::int32_t>& lane_objs = scratch_->lane_objs;
    std::vector<std::int32_t>& lane_start = scratch_->lane_start;
    lane_objs.resize(n_mov);
    lane_start.assign(static_cast<std::size_t>(lanes) + 1, 0);
    for (const std::int32_t obj : movable_objects_) {
      const auto& p = positions[static_cast<std::size_t>(obj)];
      const int cell_lane = x_axis ? bin_y(p.y) : bin_x(p.x);
      ++lane_start[static_cast<std::size_t>(cell_lane) + 1];
    }
    for (int l = 0; l < lanes; ++l) {
      lane_start[static_cast<std::size_t>(l) + 1] +=
          lane_start[static_cast<std::size_t>(l)];
    }
    std::vector<std::int32_t>& fill = scratch_->lane_fill;
    fill.assign(lane_start.begin(), lane_start.end() - 1);
    for (const std::int32_t obj : movable_objects_) {
      const auto& p = positions[static_cast<std::size_t>(obj)];
      const int cell_lane = x_axis ? bin_y(p.y) : bin_x(p.x);
      lane_objs[static_cast<std::size_t>(
          fill[static_cast<std::size_t>(cell_lane)]++)] = obj;
    }

    exec::parallel_for(0, static_cast<std::size_t>(lanes), 1, [&](std::size_t lane_idx) {
      const int lane = static_cast<int>(lane_idx);
      // Utilization of each bin in this lane (against blockage-reduced
      // capacity, so movables drain out of blocked bins).
      double* const util = scratch_->lane_util.data() + lane_idx * lane_cap;
      for (int b = 0; b < bins; ++b) {
        const std::size_t idx = x_axis
                                    ? static_cast<std::size_t>(lane) * static_cast<std::size_t>(nx) +
                    static_cast<std::size_t>(b)
                                    : static_cast<std::size_t>(b) * static_cast<std::size_t>(nx) +
                    static_cast<std::size_t>(lane);
        util[static_cast<std::size_t>(b)] = area[idx] * icap[idx];
      }
      // New internal boundaries.
      double* const nb = scratch_->lane_nb.data() + lane_idx * (lane_cap + 1);
      nb[0] = lo;
      nb[static_cast<std::size_t>(bins)] = lo + step * bins;
      for (int b = 0; b + 1 < bins; ++b) {
        const double ob_left = lo + step * b;          // left edge of bin b
        const double ob_right = lo + step * (b + 2);   // right edge of bin b+1
        const double u_l = util[static_cast<std::size_t>(b)];
        const double u_r = util[static_cast<std::size_t>(b) + 1];
        nb[static_cast<std::size_t>(b) + 1] =
            (ob_left * (u_r + kDelta) + ob_right * (u_l + kDelta)) /
            (u_l + u_r + 2.0 * kDelta);
      }
      for (std::size_t i = 1; i <= static_cast<std::size_t>(bins); ++i) {
        nb[i] = std::max(nb[i], nb[i - 1] + 1e-3);
      }
      // Remap cells in this lane (its counting-sort bucket).
      const std::size_t obj_lo =
          static_cast<std::size_t>(lane_start[lane_idx]);
      const std::size_t obj_hi =
          static_cast<std::size_t>(lane_start[lane_idx + 1]);
      for (std::size_t oi = obj_lo; oi < obj_hi; ++oi) {
        const std::int32_t obj = lane_objs[oi];
        auto& p = positions[static_cast<std::size_t>(obj)];
        const double c = x_axis ? p.x : p.y;
        const int b = x_axis ? bin_x(c) : bin_y(c);
        const double old_lo = lo + step * b;
        const double frac = std::clamp((c - old_lo) / step, 0.0, 1.0);
        const double new_lo = nb[static_cast<std::size_t>(b)];
        const double new_hi = nb[static_cast<std::size_t>(b) + 1];
        const double moved = new_lo + frac * (new_hi - new_lo);
        if (x_axis) p.x = moved;
        else p.y = moved;
      }
    });
  };
  // Several damped passes per call: one boundary adjustment only equalizes
  // neighbouring bins, so repeated sweeps are needed to drain a hot center.
  for (int pass = 0; pass < options_.spread_passes; ++pass) {
    shift_axis(/*x_axis=*/true);
    recompute_area();
    shift_axis(/*x_axis=*/false);
    recompute_area();
    if (compute_overflow() < options_.target_overflow) break;
  }
  return overflow;
}

void GlobalPlacer::accumulate_area(const Placement& positions,
                                   std::vector<double>& area) const {
  const PlaceModel& model = *model_;
  const geom::Rect& core = model.core;
  const int nx = grid_nx_;
  const int ny = grid_ny_;
  const double bw = bin_w_;
  const double bh = bin_h_;
  std::fill(area.begin(), area.end(), 0.0);

  // Object area is smeared over every bin its footprint overlaps (crucial
  // for cluster macros, which can span many bins; a point assignment would
  // make spreading blind to their real footprint). Chunks of objects fill
  // per-chunk bin scratch, merged serially in ascending chunk order; the
  // chunk count is capped so scratch memory stays bounded and — being a
  // function of the object count only — the merge order is thread-invariant.
  const std::size_t n = movable_objects_.size();
  // SoA footprint columns (gathered once at construction): the per-object
  // loop streams three flat doubles per cell instead of pulling the whole
  // PlaceObject record; values and accumulation order are unchanged.
  const double* PPACD_RESTRICT hw_col = scratch_->geom.col(0);
  const double* PPACD_RESTRICT hh_col = scratch_->geom.col(1);
  const double* PPACD_RESTRICT area_col = scratch_->geom.col(2);
  const std::int32_t* PPACD_RESTRICT mobj = movable_objects_.data();
  // Binning by reciprocal multiply: a divide per edge (4 per object) was
  // the loop's longest-latency op. The quotient can differ from the exact
  // division by an ulp, which only matters for a cell sitting exactly on a
  // bin boundary — a discretization tie re-broken once and covered by the
  // golden re-pin rationale (DESIGN.md §15).
  const double ibw = 1.0 / bw;
  const double ibh = 1.0 / bh;

  auto smear_range = [&](std::size_t mb, std::size_t me,
                         double* PPACD_RESTRICT bins) {
    for (std::size_t m = mb; m < me; ++m) {
      const auto& p = positions[static_cast<std::size_t>(mobj[m])];
      const double hw = hw_col[m];
      const double hh = hh_col[m];
      const int x0 = std::clamp(static_cast<int>((p.x - hw - core.lx) * ibw), 0, nx - 1);
      const int x1 = std::clamp(static_cast<int>((p.x + hw - core.lx) * ibw), 0, nx - 1);
      const int y0 = std::clamp(static_cast<int>((p.y - hh - core.ly) * ibh), 0, ny - 1);
      const int y1 = std::clamp(static_cast<int>((p.y + hh - core.ly) * ibh), 0, ny - 1);
      if (x0 == x1 && y0 == y1) {
        bins[static_cast<std::size_t>(y0) * static_cast<std::size_t>(nx) +
         static_cast<std::size_t>(x0)] += area_col[m];
        continue;
      }
      for (int by = y0; by <= y1; ++by) {
        const double oy = std::max(0.0, std::min(p.y + hh, core.ly + (by + 1) * bh) -
                                            std::max(p.y - hh, core.ly + by * bh));
        for (int bx = x0; bx <= x1; ++bx) {
          const double ox = std::max(0.0, std::min(p.x + hw, core.lx + (bx + 1) * bw) -
                                              std::max(p.x - hw, core.lx + bx * bw));
          bins[static_cast<std::size_t>(by) * static_cast<std::size_t>(nx) +
           static_cast<std::size_t>(bx)] += ox * oy;
        }
      }
    }
  };

  const std::size_t grain =
      std::max(kObjGrain, (n + kMaxAreaChunks - 1) / kMaxAreaChunks);
  const std::size_t chunks = exec::detail::chunk_count_for(n, grain);
  if (chunks <= 1) {
    // Single chunk: accumulate straight into `area`.
    smear_range(0, n, area.data());
    return;
  }

  std::vector<std::vector<double>>& scratch = scratch_->area_chunks;
  scratch.resize(chunks);
  exec::parallel_for_chunks(0, n, grain, [&](std::size_t ob, std::size_t oe,
                                             std::size_t chunk) {
    std::vector<double>& bins = scratch[chunk];
    bins.assign(area.size(), 0.0);
    smear_range(ob, oe, bins.data());
  });
  for (std::size_t c = 0; c < chunks; ++c) {
    util::simd::add(area.data(), scratch[c].data(), area.size());
  }
}

double GlobalPlacer::measure_overflow(const Placement& positions) const {
  std::vector<double>& area = scratch_->measure_area;
  area.assign(
      static_cast<std::size_t>(grid_nx_) * static_cast<std::size_t>(grid_ny_),
      0.0);
  accumulate_area(positions, area);
  const double* PPACD_RESTRICT cap = scratch_->bin_cap.data();
  double overfill = 0.0;
  double total = 0.0;
  for (std::size_t b = 0; b < area.size(); ++b) {
    overfill += std::max(0.0, area[b] - cap[b]);
    total += area[b];
  }
  return total > 0.0 ? overfill / total : 0.0;
}

void GlobalPlacer::spread_bisection(Placement& positions) {
  const PlaceModel& model = *model_;
  // Recursive capacity-balanced bisection: split the object set at the
  // median of the region's longer axis so that each half receives a
  // sub-region proportional to its area, preserving the quadratic solution's
  // relative order while eliminating overlap at macro granularity.
  struct Frame {
    std::vector<std::int32_t> objects;
    geom::Rect region;
  };
  std::vector<Frame> stack;
  stack.push_back({movable_objects_, model.core});

  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    const std::size_t n = frame.objects.size();
    if (n == 0) continue;
    if (n == 1) {
      const auto& o = model.objects[static_cast<std::size_t>(frame.objects[0])];
      geom::Point target = frame.region.center();
      // Keep the footprint inside the region where possible.
      const double hw = std::min(o.width_um * 0.5, frame.region.width() * 0.5);
      const double hh = std::min(o.height_um * 0.5, frame.region.height() * 0.5);
      target.x = std::clamp(target.x, frame.region.lx + hw, frame.region.ux - hw);
      target.y = std::clamp(target.y, frame.region.ly + hh, frame.region.uy - hh);
      positions[static_cast<std::size_t>(frame.objects[0])] = target;
      continue;
    }

    const bool split_x = frame.region.width() >= frame.region.height();
    std::sort(frame.objects.begin(), frame.objects.end(),
              [&](std::int32_t a, std::int32_t b) {
                const auto& pa = positions[static_cast<std::size_t>(a)];
                const auto& pb = positions[static_cast<std::size_t>(b)];
                return split_x ? pa.x < pb.x : pa.y < pb.y;
              });
    double total_area = 0.0;
    for (const std::int32_t obj : frame.objects) {
      total_area += model.objects[static_cast<std::size_t>(obj)].area_um2();
    }
    // Split the list at half the area.
    double prefix = 0.0;
    std::size_t split = 1;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      prefix += model.objects[static_cast<std::size_t>(frame.objects[i])].area_um2();
      if (prefix >= total_area * 0.5) {
        split = i + 1;
        break;
      }
      split = i + 1;
    }
    const double frac = total_area > 0.0 ? std::clamp(prefix / total_area, 0.1, 0.9) : 0.5;

    Frame lo;
    Frame hi;
    lo.objects.assign(frame.objects.begin(),
                      frame.objects.begin() + static_cast<std::ptrdiff_t>(split));
    hi.objects.assign(frame.objects.begin() + static_cast<std::ptrdiff_t>(split),
                      frame.objects.end());
    if (split_x) {
      const double cut = frame.region.lx + frac * frame.region.width();
      lo.region = geom::Rect::make(frame.region.lx, frame.region.ly, cut, frame.region.uy);
      hi.region = geom::Rect::make(cut, frame.region.ly, frame.region.ux, frame.region.uy);
    } else {
      const double cut = frame.region.ly + frac * frame.region.height();
      lo.region = geom::Rect::make(frame.region.lx, frame.region.ly, frame.region.ux, cut);
      hi.region = geom::Rect::make(frame.region.lx, cut, frame.region.ux, frame.region.uy);
    }
    stack.push_back(std::move(lo));
    stack.push_back(std::move(hi));
  }
}

void GlobalPlacer::clamp_to_core_and_regions(Placement& positions) {
  const PlaceModel& model = *model_;
  for (const std::int32_t obj : movable_objects_) {
    const auto& o = model.objects[static_cast<std::size_t>(obj)];
    auto& p = positions[static_cast<std::size_t>(obj)];
    geom::Rect bounds = model.core;
    if (regions_active_ && o.region.has_value()) bounds = *o.region;
    // Keep the object's footprint inside its bounds.
    const double hw = std::min(o.width_um * 0.5, bounds.width() * 0.5);
    const double hh = std::min(o.height_um * 0.5, bounds.height() * 0.5);
    p.x = std::clamp(p.x, bounds.lx + hw, bounds.ux - hw);
    p.y = std::clamp(p.y, bounds.ly + hh, bounds.uy - hh);
  }
}

PlaceResult GlobalPlacer::optimize(Placement positions, int iterations,
                                   const Placement* seed_anchor) {
  Placement anchors = positions;
  double overflow = 1.0;
  const int schedule_offset =
      seed_anchor != nullptr ? options_.incremental_anchor_offset : 0;
  // Flight recorder: only top-level placements stream (trace_iterations is
  // false for the nested VPR placements, whose emissions would collide).
  const bool observing = observe::active() && options_.trace_iterations;
  obs_iter_series_ = -1;
  obs_cg_series_[0] = obs_cg_series_[1] = -1;
  if (observing) {
    obs_iter_series_ = observe::recorder().begin_series(
        observe::Stream::kPlaceIter);
    obs_cg_series_[0] =
        observe::recorder().begin_series(observe::Stream::kPlaceCg);
    obs_cg_series_[1] =
        observe::recorder().begin_series(observe::Stream::kPlaceCg);
  }
  Placement pre_spread;  // observe-only snapshot; never feeds the solver
  std::string degrade_code;
  int iter = 0;
  for (; iter < iterations; ++iter) {
    PPACD_SPAN_IF(iter_span, "place.gp.iter", options_.trace_iterations);
    // Fault site `place.solve`, keyed by outer-iteration index. error /
    // timeout stop the run with the best placement so far; poison models a
    // solver that produced non-finite coordinates (revert to the last
    // committed positions, then stop); alloc surfaces as std::bad_alloc for
    // try_run to convert.
    if (const auto kind =
            fault::trigger("place.solve", static_cast<std::uint64_t>(iter))) {
      if (*kind == fault::FaultKind::kAlloc) throw std::bad_alloc();
      degrade_code = fault::make_error("place.solve", *kind).code;
      if (*kind == fault::FaultKind::kPoison) positions = anchors;
      break;
    }
    // Fences bind throughout from-scratch runs; in incremental (seeded)
    // mode they only guide the early iterations (Alg. 1 line 20 removes
    // region constraints after the incremental placement).
    regions_active_ =
        seed_anchor == nullptr ||
        iter < static_cast<int>(options_.region_release_fraction * iterations);
    const double anchor_weight = options_.anchor_base * (iter + schedule_offset);
    // The seed guides only the first iterations; decaying it lets the B2B
    // optimization escape seed geometry that disagrees with the netlist.
    const double seed_decay = std::max(0.0, 1.0 - iter / 5.0);
    seed_weight_ = options_.incremental_anchor * seed_decay;
    obs_iter_ = iter;
    solve_direction(true, positions, anchors, anchor_weight, seed_anchor);
    solve_direction(false, positions, anchors, anchor_weight, seed_anchor);
    clamp_to_core_and_regions(positions);
    if (observing) pre_spread = positions;
    if (options_.spread_mode == SpreadMode::kBisection) {
      overflow = measure_overflow(positions);
      spread_bisection(positions);
    } else {
      overflow = spread(positions);
    }
    clamp_to_core_and_regions(positions);
    anchors = positions;
    const double hpwl = total_hpwl(*model_, positions);
    if (observing) {
      double disp_sum = 0.0;
      double disp_max = 0.0;
      for (const std::int32_t obj : movable_objects_) {
        const auto& a = pre_spread[static_cast<std::size_t>(obj)];
        const auto& b = positions[static_cast<std::size_t>(obj)];
        const double d = std::hypot(b.x - a.x, b.y - a.y);
        disp_sum += d;
        disp_max = std::max(disp_max, d);
      }
      const double disp_mean =
          movable_objects_.empty()
              ? 0.0
              : disp_sum / static_cast<double>(movable_objects_.size());
      observe::recorder().record(observe::Stream::kPlaceIter, obs_iter_series_,
                                 iter, 0,
                                 {hpwl, overflow, anchor_weight, disp_mean});
      observe::recorder().record(observe::Stream::kPlaceIter, obs_iter_series_,
                                 iter, 1, {disp_max});
    }
    PPACD_COUNT("place.gp.iterations", 1);
    PPACD_GAUGE_SET("place.gp.overflow", overflow);
    PPACD_GAUGE_SET("place.gp.hpwl", hpwl);
    PPACD_HIST("place.gp.iter_overflow", overflow);
    PPACD_SPAN_ATTR(iter_span, "iter", iter);
    PPACD_SPAN_ATTR(iter_span, "overflow", overflow);
    PPACD_SPAN_ATTR(iter_span, "hpwl", hpwl);
    PPACD_LOG_DEBUG("place") << "iter " << iter << " overflow " << overflow
                             << " hpwl " << hpwl;
    if (overflow < options_.target_overflow && iter + 1 >= options_.min_iterations) {
      ++iter;
      break;
    }
  }

  PlaceResult result;
  result.placement = std::move(positions);
  result.hpwl_um = total_hpwl(*model_, result.placement);
  result.overflow = overflow;
  result.iterations = iter;
  result.degrade_code = std::move(degrade_code);
  PPACD_GAUGE_SET("alloc.arena.bytes_peak",
                  static_cast<double>(scratch_->cg_arena.bytes_peak()));
  PPACD_GAUGE_SET("alloc.arena.reuse_count",
                  static_cast<double>(scratch_->cg_arena.reuse_count()));
  return result;
}

PlaceResult GlobalPlacer::run() {
  const PlaceModel& model = *model_;
  Placement positions(model.objects.size());
  util::Rng rng(options_.seed);
  const geom::Point center = model.core.center();
  const double jitter_x = model.core.width() * 0.05;
  const double jitter_y = model.core.height() * 0.05;
  for (std::size_t i = 0; i < model.objects.size(); ++i) {
    if (model.objects[i].fixed || model.objects[i].blockage) {
      positions[i] = model.objects[i].fixed_position;
    } else if (model.objects[i].region.has_value()) {
      positions[i] = model.objects[i].region->center();
    } else {
      positions[i] = {center.x + rng.uniform(-jitter_x, jitter_x),
                      center.y + rng.uniform(-jitter_y, jitter_y)};
    }
  }
  return optimize(std::move(positions), options_.max_iterations, nullptr);
}

PlaceResult GlobalPlacer::run_incremental(const Placement& seed) {
  PPACD_CHECK(seed.size() == model_->objects.size(),
              "incremental seed covers " << seed.size() << " of "
                                          << model_->objects.size() << " objects");
  Placement positions = seed;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (model_->objects[i].fixed || model_->objects[i].blockage) {
      positions[i] = model_->objects[i].fixed_position;
    }
  }
  clamp_to_core_and_regions(positions);
  const Placement seed_anchor = positions;
  return optimize(std::move(positions), options_.incremental_iterations,
                  &seed_anchor);
}

namespace {

fault::Expected<PlaceResult, fault::FlowError> finish_try_run(
    PlaceResult result, const fault::DegradePolicy& policy) {
  if (!result.degrade_code.empty() && !policy.place_early_stop) {
    return fault::err(result.degrade_code, "place.solve",
                      "placer stopped early and early-stop is disabled");
  }
  return result;
}

}  // namespace

fault::Expected<PlaceResult, fault::FlowError> GlobalPlacer::try_run(
    const fault::DegradePolicy& policy) {
  try {
    return finish_try_run(run(), policy);
  } catch (const std::bad_alloc&) {
    return fault::Unexpected<fault::FlowError>(
        fault::make_error("place.solve", fault::FaultKind::kAlloc));
  }
}

fault::Expected<PlaceResult, fault::FlowError> GlobalPlacer::try_run_incremental(
    const Placement& seed, const fault::DegradePolicy& policy) {
  try {
    return finish_try_run(run_incremental(seed), policy);
  } catch (const std::bad_alloc&) {
    return fault::Unexpected<fault::FlowError>(
        fault::make_error("place.solve", fault::FaultKind::kAlloc));
  }
}

}  // namespace ppacd::place
