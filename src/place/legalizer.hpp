/// \file legalizer.hpp
/// \brief Greedy (Tetris-style) standard-cell legalization.
///
/// Snaps globally placed cells onto rows without overlap, minimizing
/// displacement greedily. Routing, CTS and the post-route STA in this repo
/// run on legalized locations, mirroring how OpenROAD evaluates PPA after
/// detailed placement.
#pragma once

#include "place/model.hpp"

namespace ppacd::place {

struct LegalizeResult {
  Placement placement;
  double total_displacement_um = 0.0;
  double max_displacement_um = 0.0;
  /// Objects that could not fit in any row (should be 0 for sane densities).
  int failed_count = 0;
};

/// Legalizes all movable single-row objects of `model` starting from
/// `placement`. Fixed objects and objects taller than one row are left at
/// their input positions.
LegalizeResult legalize(const PlaceModel& model, const Placement& placement);

}  // namespace ppacd::place
