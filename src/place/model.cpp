#include "place/model.hpp"

#include "util/assert.hpp"

namespace ppacd::place {

std::size_t PlaceModel::movable_count() const {
  std::size_t count = 0;
  for (const PlaceObject& obj : objects) {
    if (!obj.fixed) ++count;
  }
  return count;
}

double PlaceModel::movable_area() const {
  double area = 0.0;
  for (const PlaceObject& obj : objects) {
    if (!obj.fixed) area += obj.area_um2();
  }
  return area;
}

PlaceModel make_place_model(const netlist::Netlist& nl, const Floorplan& fp,
                            double io_net_weight_scale) {
  PlaceModel model;
  model.core = fp.core;
  model.row_height_um = fp.row_height_um;
  model.objects.reserve(nl.cell_count() + nl.port_count());

  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const liberty::LibCell& lc = nl.lib_cell_of(static_cast<netlist::CellId>(ci));
    PlaceObject obj;
    obj.width_um = lc.width_um;
    obj.height_um = lc.height_um;
    model.objects.push_back(obj);
  }
  for (std::size_t po = 0; po < nl.port_count(); ++po) {
    PlaceObject obj;
    obj.fixed = true;
    obj.fixed_position = nl.port(static_cast<netlist::PortId>(po)).position;
    model.objects.push_back(obj);
  }
  const auto object_of_pin = [&nl](netlist::PinId pid) -> std::int32_t {
    const netlist::Pin& pin = nl.pin(pid);
    if (pin.kind == netlist::PinKind::kCellPin) return pin.cell.value();
    return static_cast<std::int32_t>(nl.cell_count()) + pin.port.value();
  };

  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const netlist::Net& net = nl.net(static_cast<netlist::NetId>(ni));
    if (net.is_clock || net.pins.size() < 2) continue;
    PlaceNet pnet;
    pnet.weight = net.weight;
    if (io_net_weight_scale != 1.0 &&
        nl.is_io_net(static_cast<netlist::NetId>(ni))) {
      pnet.weight *= io_net_weight_scale;
    }
    pnet.objects.reserve(net.pins.size());
    for (netlist::PinId pid : net.pins) pnet.objects.push_back(object_of_pin(pid));
    model.nets.push_back(std::move(pnet));
  }
  return model;
}

double net_hpwl(const PlaceModel& model, const Placement& placement,
                std::size_t net_index) {
  const PlaceNet& net = model.nets.at(net_index);
  geom::BBox box;
  for (const std::int32_t obj : net.objects) {
    box.expand(placement.at(static_cast<std::size_t>(obj)));
  }
  return box.half_perimeter();
}

double total_hpwl(const PlaceModel& model, const Placement& placement) {
  double hpwl = 0.0;
  for (std::size_t ni = 0; ni < model.nets.size(); ++ni) {
    hpwl += model.nets[ni].weight * net_hpwl(model, placement, ni);
  }
  return hpwl;
}

std::vector<geom::Point> cell_positions(const netlist::Netlist& nl,
                                        const Placement& placement) {
  std::vector<geom::Point> out;
  cell_positions(nl, placement, out);
  return out;
}

void cell_positions(const netlist::Netlist& nl, const Placement& placement,
                    std::vector<geom::Point>& out) {
  PPACD_CHECK(placement.size() >= nl.cell_count(),
              "placement covers " << placement.size() << " objects, netlist has "
                                   << nl.cell_count() << " cells");
  out.assign(placement.begin(),
             placement.begin() + static_cast<std::ptrdiff_t>(nl.cell_count()));
}

double netlist_hpwl(const netlist::Netlist& nl,
                    const std::vector<geom::Point>& positions) {
  double hpwl = 0.0;
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const netlist::Net& net = nl.net(static_cast<netlist::NetId>(ni));
    if (net.pins.size() < 2) continue;
    geom::BBox box;
    for (netlist::PinId pid : net.pins) {
      const netlist::Pin& pin = nl.pin(pid);
      if (pin.kind == netlist::PinKind::kTopPort) {
        box.expand(nl.port(pin.port).position);
      } else {
        box.expand(positions.at(pin.cell.index()));
      }
    }
    hpwl += box.half_perimeter();
  }
  return hpwl;
}

}  // namespace ppacd::place
