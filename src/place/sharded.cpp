#include "place/sharded.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <utility>

#include "exec/exec.hpp"
#include "observe/observe.hpp"
#include "telemetry/telemetry.hpp"
#include "util/arena.hpp"
#include "util/assert.hpp"
#include "util/csr.hpp"

namespace ppacd::place {

namespace {

geom::Rect clip(const geom::Rect& r, const geom::Rect& core) {
  return geom::Rect::make(std::max(r.lx, core.lx), std::max(r.ly, core.ly),
                          std::min(r.ux, core.ux), std::min(r.uy, core.uy));
}

/// Recursive weighted bisection over `order[lo, hi)`; assigns shards
/// [shard, shard + count) and never depends on container iteration order.
void bisect(const std::vector<ShardGroup>& groups, std::vector<std::int32_t>& order,
            std::vector<std::int32_t>& shard_of_group, std::size_t lo,
            std::size_t hi, int shard, int count) {
  if (count <= 1 || hi - lo <= 1) {
    for (std::size_t i = lo; i < hi; ++i) shard_of_group[order[i]] = shard;
    return;
  }
  geom::BBox box;
  std::int64_t total = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    box.expand(groups[order[i]].center);
    total += std::max<std::int64_t>(1, groups[order[i]].weight);
  }
  const geom::Rect extent = box.rect();
  const bool split_x = extent.width() >= extent.height();
  std::stable_sort(order.begin() + lo, order.begin() + hi,
                   [&](std::int32_t a, std::int32_t b) {
                     const double ca = split_x ? groups[a].center.x : groups[a].center.y;
                     const double cb = split_x ? groups[b].center.x : groups[b].center.y;
                     if (ca != cb) return ca < cb;
                     return a < b;  // total order: ties broken by group index
                   });
  int left_count = count / 2;
  const double target =
      static_cast<double>(total) * left_count / static_cast<double>(count);
  // Weight-balanced prefix split; both sides keep at least one group.
  std::size_t mid = lo + 1;
  std::int64_t prefix = std::max<std::int64_t>(1, groups[order[lo]].weight);
  while (mid < hi - 1 && static_cast<double>(prefix) < target) {
    prefix += std::max<std::int64_t>(1, groups[order[mid]].weight);
    ++mid;
  }
  // A side can host at most one shard per group. When one heavy group pulls
  // the weight-balanced cut right next to it, rebalance the shard split so
  // neither side gets more shards than groups — otherwise a shard ends up
  // empty and its region degenerates.
  const int left_groups = static_cast<int>(mid - lo);
  const int right_groups = static_cast<int>(hi - mid);
  left_count = std::clamp(left_count, std::max(1, count - right_groups),
                          std::min(count - 1, left_groups));
  bisect(groups, order, shard_of_group, lo, mid, shard, left_count);
  bisect(groups, order, shard_of_group, mid, hi, shard + left_count,
         count - left_count);
}

struct ShardSolved {
  Placement placement;   ///< per local movable, in shard-object order
  ShardStat stat;
  fault::FlowError failure;  ///< code empty when the solve succeeded
};

std::string shard_detail(int shard, const ShardStat& stat) {
  std::ostringstream out;
  out << "shard " << shard << " (" << stat.movables << " movables, "
      << stat.terminals << " terminals)";
  return out.str();
}

}  // namespace

RegionPartition partition_regions(const std::vector<ShardGroup>& groups,
                                  const geom::Rect& core, int shards) {
  RegionPartition partition;
  if (groups.empty()) {
    partition.regions.assign(1, core);
    partition.weights.assign(1, 0);
    return partition;
  }
  const int count = std::clamp<int>(shards, 1, static_cast<int>(groups.size()));
  partition.shard_of_group.assign(groups.size(), 0);
  std::vector<std::int32_t> order(groups.size());
  std::iota(order.begin(), order.end(), 0);
  bisect(groups, order, partition.shard_of_group, 0, order.size(), 0, count);

  // Region per shard: bounding box of the member rects, inflated to hold the
  // member footprint area at placement density, clipped to the core.
  partition.regions.assign(count, geom::Rect{});
  partition.weights.assign(count, 0);
  std::vector<geom::BBox> boxes(count);
  std::vector<double> areas(count, 0.0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const int s = partition.shard_of_group[g];
    boxes[s].expand(geom::Point{groups[g].rect.lx, groups[g].rect.ly});
    boxes[s].expand(geom::Point{groups[g].rect.ux, groups[g].rect.uy});
    boxes[s].expand(groups[g].center);
    areas[s] += groups[g].rect.area();
    partition.weights[s] += std::max<std::int64_t>(1, groups[g].weight);
  }
  constexpr double kRegionDensity = 0.7;
  for (int s = 0; s < count; ++s) {
    geom::Rect region = clip(boxes[s].rect(), core);
    const double needed = areas[s] / kRegionDensity;
    if (region.area() < needed) {
      // Inflate about the center to the needed area (aspect ratio 1 when the
      // box is degenerate), then re-clip.
      const geom::Point c = region.center();
      double w = region.width();
      double h = region.height();
      if (w <= 0.0 || h <= 0.0) {
        w = h = std::sqrt(std::max(needed, 1.0));
      } else {
        const double scale = std::sqrt(needed / std::max(region.area(), 1e-12));
        w *= scale;
        h *= scale;
      }
      region = clip(geom::Rect::make(c.x - w * 0.5, c.y - h * 0.5,
                                     c.x + w * 0.5, c.y + h * 0.5),
                    core);
    }
    partition.regions[s] = region;
  }
  return partition;
}

fault::Expected<ShardedPlaceResult, fault::FlowError> try_place_sharded(
    const PlaceModel& flat, const Placement& seed,
    const std::vector<std::int32_t>& shard_of_object,
    const RegionPartition& partition, const ShardedOptions& sharded,
    const GlobalPlacerOptions& placer, const fault::DegradePolicy& policy) {
  const std::size_t object_count = flat.objects.size();
  PPACD_CHECK(seed.size() == object_count,
              "sharded seed covers " << seed.size() << " of " << object_count
                                     << " objects");
  PPACD_CHECK(shard_of_object.size() == object_count,
              "shard_of_object covers " << shard_of_object.size() << " of "
                                        << object_count << " objects");
  const int shard_count = partition.shard_count();
  PPACD_CHECK(shard_count >= 1, "partition has no regions");

  PPACD_SPAN(span, "place.sharded");
  span.anchor();

  // --- Extraction (serial): carve per-shard object and net slices -----------
  // Everything here is a flat array indexed by object/net/shard id; no
  // pointer-chasing containers and no iteration-order dependence.
  util::Arena arena;
  auto local_index = arena.alloc<std::int32_t>(object_count);
  util::Csr<std::int32_t> shard_objects;  // shard -> global movable object ids
  shard_objects.start_rows(static_cast<std::size_t>(shard_count));
  for (std::size_t i = 0; i < object_count; ++i) {
    const std::int32_t s = shard_of_object[i];
    if (s < 0) continue;
    PPACD_CHECK(s < shard_count, "object " << i << " maps to shard " << s
                                           << " of " << shard_count);
    if (flat.objects[i].fixed) continue;  // fixed objects stay terminals
    shard_objects.add_to_row(static_cast<std::size_t>(s));
  }
  shard_objects.commit_rows();
  {
    auto cursor = arena.alloc<std::int32_t>(static_cast<std::size_t>(shard_count));
    for (std::size_t i = 0; i < object_count; ++i) {
      const std::int32_t s = shard_of_object[i];
      if (s < 0 || flat.objects[i].fixed) {
        local_index[i] = -1;
        continue;
      }
      local_index[i] = cursor[s]++;
      shard_objects.push(static_cast<std::size_t>(s),
                         static_cast<std::int32_t>(i));
    }
  }

  // Net slices: a net belongs to every shard holding at least one of its
  // movable pins. Distinct touched shards per net are collected with an
  // epoch-stamped scratch array (O(pins) per net, no sets, no hashing).
  const std::size_t net_count = flat.nets.size();
  auto touched_epoch = arena.alloc<std::int64_t>(static_cast<std::size_t>(shard_count));
  auto touched_pins = arena.alloc<std::int64_t>(static_cast<std::size_t>(shard_count));
  auto touched_list = arena.alloc<std::int32_t>(static_cast<std::size_t>(shard_count));
  std::int64_t epoch = 0;
  util::Csr<std::int32_t> shard_nets;  // shard -> global net ids
  std::vector<ShardStat> stats(static_cast<std::size_t>(shard_count));
  for (int s = 0; s < shard_count; ++s) {
    stats[s].movables =
        static_cast<std::int64_t>(shard_objects.row_size(static_cast<std::size_t>(s)));
  }
  shard_nets.start_rows(static_cast<std::size_t>(shard_count));
  const auto scan_net = [&](std::size_t n, auto&& emit) {
    ++epoch;
    std::size_t touched = 0;
    const PlaceNet& net = flat.nets[n];
    for (const std::int32_t obj : net.objects) {
      const std::int32_t s = local_index[obj] >= 0 ? shard_of_object[obj] : -1;
      if (s < 0) continue;
      if (touched_epoch[s] != epoch) {
        touched_epoch[s] = epoch;
        touched_pins[s] = 0;
        touched_list[touched++] = s;
      }
      ++touched_pins[s];
    }
    const auto total = static_cast<std::int64_t>(net.objects.size());
    for (std::size_t t = 0; t < touched; ++t) {
      const std::int32_t s = touched_list[t];
      const std::int64_t local = touched_pins[s];
      const std::int64_t external = total - local;
      if (local + external < 2) continue;  // single-pin net: no force
      emit(s, n, external);
    }
  };
  for (std::size_t n = 0; n < net_count; ++n) {
    scan_net(n, [&](std::int32_t s, std::size_t, std::int64_t external) {
      shard_nets.add_to_row(static_cast<std::size_t>(s));
      stats[s].nets += 1;
      stats[s].terminals += external;
    });
  }
  shard_nets.commit_rows();
  for (std::size_t n = 0; n < net_count; ++n) {
    scan_net(n, [&](std::int32_t s, std::size_t net, std::int64_t) {
      shard_nets.push(static_cast<std::size_t>(s), static_cast<std::int32_t>(net));
    });
  }

  // --- Concurrent per-shard solves ------------------------------------------
  // One shard per chunk; each shard builds its own sub-model and placer
  // scratch and writes only its stats slot, so results depend on the shard
  // index alone — never on the thread count or completion order.
  std::vector<ShardSolved> solved(static_cast<std::size_t>(shard_count));
  exec::parallel_for(0, static_cast<std::size_t>(shard_count), 1, [&](std::size_t s) {
    ShardSolved& out = solved[s];
    out.stat = stats[s];
    const geom::Rect region = partition.regions[s];
    const auto fired = fault::trigger("place.shard", static_cast<std::uint64_t>(s));
    if (fired == fault::FaultKind::kError || fired == fault::FaultKind::kTimeout ||
        fired == fault::FaultKind::kAlloc) {
      out.failure = fault::make_error("place.shard", *fired);
      return;
    }
    try {
      const auto members = shard_objects.row(s);
      const auto nets = shard_nets.row(s);
      PlaceModel sub;
      sub.core = region;
      sub.row_height_um = flat.row_height_um;
      sub.objects.reserve(members.size() +
                          static_cast<std::size_t>(out.stat.terminals));
      Placement sub_seed;
      sub_seed.reserve(members.size() +
                       static_cast<std::size_t>(out.stat.terminals));
      for (const std::int32_t obj : members) {
        PlaceObject o = flat.objects[obj];
        o.region.reset();  // fences do not apply inside a shard
        sub.objects.push_back(o);
        sub_seed.push_back(seed[obj]);
      }
      // Boundary terminals: every external pin of a sliced net is fixed at
      // its seed position clamped into the shard region — the region
      // crossing. Terminals are appended in (net, pin) order so local ids
      // are deterministic.
      sub.nets.reserve(nets.size());
      for (const std::int32_t n : nets) {
        const PlaceNet& net = flat.nets[n];
        PlaceNet local_net;
        local_net.weight = net.weight;
        local_net.objects.reserve(net.objects.size());
        for (const std::int32_t obj : net.objects) {
          const bool interior = local_index[obj] >= 0 &&
                                shard_of_object[obj] == static_cast<std::int32_t>(s);
          if (interior) {
            local_net.objects.push_back(local_index[obj]);
          } else {
            PlaceObject terminal;
            terminal.fixed = true;
            terminal.fixed_position = region.clamp(seed[obj]);
            local_net.objects.push_back(
                static_cast<std::int32_t>(sub.objects.size()));
            sub.objects.push_back(terminal);
            sub_seed.push_back(terminal.fixed_position);
          }
        }
        sub.nets.push_back(std::move(local_net));
      }

      GlobalPlacerOptions sub_options = placer;
      sub_options.incremental_iterations = sharded.shard_iterations;
      sub_options.trace_iterations = false;  // serial-only series; merged pass
                                             // below owns the place.shard series
      sub_options.seed =
          placer.seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(s) + 1));
      GlobalPlacer sub_placer(sub, sub_options);
      auto placed_or = sub_placer.try_run_incremental(sub_seed, policy);
      if (!placed_or.has_value()) {
        out.failure = std::move(placed_or).error();
        return;
      }
      PlaceResult placed = std::move(placed_or).value();
      if (fired == fault::FaultKind::kPoison) {
        placed.hpwl_um = fault::poison_value();
      }
      bool finite = std::isfinite(placed.hpwl_um);
      for (std::size_t m = 0; finite && m < members.size(); ++m) {
        finite = std::isfinite(placed.placement[m].x) &&
                 std::isfinite(placed.placement[m].y);
      }
      if (!finite) {
        out.failure = fault::make_error("place.shard", fault::FaultKind::kPoison);
        return;
      }
      out.stat.hpwl_um = placed.hpwl_um;
      out.stat.overflow = placed.overflow;
      out.stat.iterations = placed.iterations;
      out.stat.degrade_code = placed.degrade_code;
      out.placement.assign(placed.placement.begin(),
                           placed.placement.begin() +
                               static_cast<std::ptrdiff_t>(members.size()));
    } catch (const std::bad_alloc&) {
      out.failure = fault::make_error("place.shard", fault::FaultKind::kAlloc);
    }
  });

  // --- Merge + degradation accounting (serial, shard order) -----------------
  ShardedPlaceResult result;
  result.placement = seed;
  for (std::size_t i = 0; i < object_count; ++i) {
    if (flat.objects[i].fixed) result.placement[i] = flat.objects[i].fixed_position;
  }
  result.shards.resize(static_cast<std::size_t>(shard_count));
  for (int s = 0; s < shard_count; ++s) {
    ShardSolved& out = solved[s];
    if (!out.failure.code.empty()) {
      if (!policy.shard_fallback_seed) {
        return fault::Unexpected<fault::FlowError>(std::move(out.failure));
      }
      out.stat.fell_back = true;
      out.stat.failure_code = out.failure.code;
      fault::record_degradation({"place.shard", out.failure.code, "vpr-seed",
                                 shard_detail(s, out.stat)});
    } else {
      const auto members = shard_objects.row(static_cast<std::size_t>(s));
      for (std::size_t m = 0; m < members.size(); ++m) {
        result.placement[members[m]] = out.placement[m];
      }
      if (!out.stat.degrade_code.empty()) {
        fault::record_degradation({"place.solve", out.stat.degrade_code,
                                   "early-stop", shard_detail(s, out.stat)});
      }
    }
    result.shards[s] = std::move(out.stat);
  }

  // --- Stitch: bounded global refinement for cross-shard nets ---------------
  if (sharded.stitch_iterations > 0) {
    GlobalPlacerOptions stitch_options = placer;
    stitch_options.incremental_iterations = sharded.stitch_iterations;
    GlobalPlacer stitch_placer(flat, stitch_options);
    auto stitched_or = stitch_placer.try_run_incremental(result.placement, policy);
    if (!stitched_or.has_value()) {
      return fault::Unexpected<fault::FlowError>(std::move(stitched_or).error());
    }
    const PlaceResult stitched = std::move(stitched_or).value();
    if (!stitched.degrade_code.empty()) {
      fault::record_degradation({"place.solve", stitched.degrade_code,
                                 "early-stop", "sharded stitch"});
    }
    result.placement = stitched.placement;
    result.hpwl_um = stitched.hpwl_um;
    result.overflow = stitched.overflow;
    result.stitch_iterations = stitched.iterations;
    result.stitch_degrade_code = stitched.degrade_code;
  } else {
    result.hpwl_um = total_hpwl(flat, result.placement);
  }

  if (observe::active()) {
    // Serial emit point: one place.shard series per sharded pass, one sample
    // per shard plus a summary sample at index == shard_count.
    observe::Recorder& rec = observe::recorder();
    const std::int32_t series = rec.begin_series(observe::Stream::kPlaceShard);
    std::int64_t fallbacks = 0;
    for (int s = 0; s < shard_count; ++s) {
      const ShardStat& stat = result.shards[s];
      fallbacks += stat.fell_back ? 1 : 0;
      rec.record(observe::Stream::kPlaceShard, series, s, 0,
                 {static_cast<double>(stat.movables), stat.hpwl_um,
                  static_cast<double>(stat.iterations), stat.overflow});
    }
    rec.record(observe::Stream::kPlaceShard, series, shard_count, 0,
               {result.hpwl_um, result.overflow,
                static_cast<double>(result.stitch_iterations),
                static_cast<double>(fallbacks)});
  }

  PPACD_SPAN_ATTR(span, "shards", shard_count);
  PPACD_SPAN_ATTR(span, "hpwl_um", result.hpwl_um);
  return result;
}

}  // namespace ppacd::place
