/// \file floorplan.hpp
/// \brief Die/core construction and boundary pin placement.
///
/// Serves two roles from the paper's flow: the top-level floorplan implied
/// by the input .def (footnote 1), and the per-cluster "virtual die" that
/// V-P&R initializes for every (aspect ratio, utilization) candidate
/// (Section 3.2), including placing the sub-netlist's IO ports on the
/// boundary with a simple pin placer.
#pragma once

#include "geom/geometry.hpp"
#include "netlist/netlist.hpp"

namespace ppacd::place {

struct FloorplanOptions {
  double utilization = 0.70;  ///< cell area / core area
  double aspect_ratio = 1.0;  ///< height / width of the core
};

/// A core area aligned to standard-cell rows.
struct Floorplan {
  geom::Rect core;
  double row_height_um = 1.4;
  int row_count = 0;

  /// Builds a floorplan whose core fits `total_cell_area` at the requested
  /// utilization and aspect ratio, rounded up to whole rows.
  static Floorplan create(double total_cell_area_um2, double row_height_um,
                          const FloorplanOptions& options);
};

/// Distributes the netlist's ports evenly around the core boundary
/// (round-robin over the four sides in port order), writing
/// netlist::Port::position. Mirrors the OpenROAD pin placer's role in the
/// virtual die setup (paper footnote 4).
void place_ports_on_boundary(netlist::Netlist& netlist, const Floorplan& fp);

}  // namespace ppacd::place
