#include "place/detailed.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace ppacd::place {

namespace {

/// Incidence: object -> indices of model nets touching it.
std::vector<std::vector<std::int32_t>> build_incidence(const PlaceModel& model) {
  std::vector<std::vector<std::int32_t>> incidence(model.objects.size());
  for (std::size_t ni = 0; ni < model.nets.size(); ++ni) {
    for (const std::int32_t obj : model.nets[ni].objects) {
      incidence[static_cast<std::size_t>(obj)].push_back(static_cast<std::int32_t>(ni));
    }
  }
  for (auto& list : incidence) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return incidence;
}

/// Weighted HPWL of the given nets under `placement`.
double nets_hpwl(const PlaceModel& model, const Placement& placement,
                 const std::vector<std::int32_t>& nets) {
  double sum = 0.0;
  for (const std::int32_t ni : nets) {
    sum += model.nets[static_cast<std::size_t>(ni)].weight *
           net_hpwl(model, placement, static_cast<std::size_t>(ni));
  }
  return sum;
}

}  // namespace

DetailedResult detailed_place(const PlaceModel& model, const Placement& placement,
                              const DetailedOptions& options) {
  DetailedResult result;
  result.placement = placement;
  result.hpwl_before_um = total_hpwl(model, placement);

  const auto incidence = build_incidence(model);

  // Group single-row movables by row (y coordinate), sorted by x.
  const double row_h = model.row_height_um;
  std::map<long, std::vector<std::int32_t>> rows;
  for (std::size_t i = 0; i < model.objects.size(); ++i) {
    const PlaceObject& obj = model.objects[i];
    if (obj.fixed || obj.blockage || obj.height_um > row_h * 1.5) continue;
    rows[std::lround(result.placement[i].y * 1e6)].push_back(static_cast<std::int32_t>(i));
  }
  for (auto& [y, cells] : rows) {
    std::sort(cells.begin(), cells.end(), [&](std::int32_t a, std::int32_t b) {
      return result.placement[static_cast<std::size_t>(a)].x <
             result.placement[static_cast<std::size_t>(b)].x;
    });
  }

  const int window = std::max(2, options.window);
  std::vector<std::int32_t> perm(static_cast<std::size_t>(window));
  std::vector<std::int32_t> affected_nets;

  for (int pass = 0; pass < options.passes; ++pass) {
    bool any_move = false;
    for (auto& [y, cells] : rows) {
      if (static_cast<int>(cells.size()) < window) continue;
      for (std::size_t start = 0;
       start + static_cast<std::size_t>(window) <= cells.size(); ++start) {
        // Window span: from the left edge of the first cell to the right
        // edge of the last (cells stay inside; gaps collapse to the right).
        const std::int32_t first = cells[start];
        const double span_left =
            result.placement[static_cast<std::size_t>(first)].x -
            model.objects[static_cast<std::size_t>(first)].width_um * 0.5;

        affected_nets.clear();
        for (int k = 0; k < window; ++k) {
          const std::int32_t obj = cells[start + static_cast<std::size_t>(k)];
          const auto& nets = incidence[static_cast<std::size_t>(obj)];
          affected_nets.insert(affected_nets.end(), nets.begin(), nets.end());
        }
        std::sort(affected_nets.begin(), affected_nets.end());
        affected_nets.erase(std::unique(affected_nets.begin(), affected_nets.end()),
                            affected_nets.end());

        const double base_cost = nets_hpwl(model, result.placement, affected_nets);
        std::vector<double> original_x(static_cast<std::size_t>(window));
        for (int k = 0; k < window; ++k) {
          perm[static_cast<std::size_t>(k)] = cells[start + static_cast<std::size_t>(k)];
          original_x[static_cast<std::size_t>(k)] =
              result.placement[static_cast<std::size_t>(perm[static_cast<std::size_t>(k)])].x;
        }
        std::vector<std::int32_t> best = perm;
        double best_cost = base_cost;
        std::vector<std::int32_t> trial = perm;
        std::sort(trial.begin(), trial.end());
        do {
          // Pack the permutation left-to-right from the span start.
          double cursor = span_left;
          for (const std::int32_t obj : trial) {
            const double w = model.objects[static_cast<std::size_t>(obj)].width_um;
            result.placement[static_cast<std::size_t>(obj)].x = cursor + w * 0.5;
            cursor += w;
          }
          const double cost = nets_hpwl(model, result.placement, affected_nets);
          if (cost < best_cost - 1e-9) {
            best_cost = cost;
            best = trial;
          }
        } while (std::next_permutation(trial.begin(), trial.end()));

        if (best_cost < base_cost - 1e-9) {
          // Apply the winning permutation (packed from the span start).
          double cursor = span_left;
          for (const std::int32_t obj : best) {
            const double w = model.objects[static_cast<std::size_t>(obj)].width_um;
            result.placement[static_cast<std::size_t>(obj)].x = cursor + w * 0.5;
            cursor += w;
          }
          ++result.moves;
          any_move = true;
          // Keep the row list sorted by x for subsequent windows.
          std::sort(cells.begin() + static_cast<std::ptrdiff_t>(start),
                    cells.begin() + static_cast<std::ptrdiff_t>(start) + window,
                    [&](std::int32_t a, std::int32_t b) {
                      return result.placement[static_cast<std::size_t>(a)].x <
                             result.placement[static_cast<std::size_t>(b)].x;
                    });
        } else {
          // No win: restore the exact original coordinates (packing alone
          // must not move cells without an evaluated gain).
          for (int k = 0; k < window; ++k) {
            result.placement[static_cast<std::size_t>(perm[static_cast<std::size_t>(k)])].x =
                original_x[static_cast<std::size_t>(k)];
          }
        }
      }
    }
    if (!any_move) break;
  }
  result.hpwl_after_um = total_hpwl(model, result.placement);
  return result;
}

}  // namespace ppacd::place
