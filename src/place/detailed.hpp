/// \file detailed.hpp
/// \brief Detailed placement: window-reordering refinement on legalized rows.
///
/// After legalization, cells within a small sliding window of each row are
/// permuted and repacked inside the window's span whenever that reduces
/// HPWL. Legality is preserved by construction (the window's occupied span
/// and the cells' total width are invariant). This is the classic
/// independent-window reordering used by detailed placers; it typically
/// recovers a few percent of HPWL after greedy legalization.
#pragma once

#include "place/model.hpp"

namespace ppacd::place {

struct DetailedOptions {
  int window = 3;   ///< cells per reordering window (3 -> 6 permutations)
  int passes = 2;   ///< sweeps over all rows
};

struct DetailedResult {
  Placement placement;
  double hpwl_before_um = 0.0;  ///< weighted model HPWL before refinement
  double hpwl_after_um = 0.0;
  std::int64_t moves = 0;       ///< accepted window permutations
};

/// Refines a legalized placement. Only single-row movable objects are
/// touched; fixed objects and macros keep their positions.
DetailedResult detailed_place(const PlaceModel& model, const Placement& placement,
                              const DetailedOptions& options);

}  // namespace ppacd::place
