#include "place/floorplan.hpp"

#include <algorithm>
#include "util/assert.hpp"
#include <cmath>

namespace ppacd::place {

Floorplan Floorplan::create(double total_cell_area_um2, double row_height_um,
                            const FloorplanOptions& options) {
  PPACD_CHECK(total_cell_area_um2 > 0.0,
              "total cell area " << total_cell_area_um2 << " um^2");
  PPACD_CHECK(options.utilization > 0.0 && options.utilization <= 1.0,
              "utilization " << options.utilization);
  PPACD_CHECK(options.aspect_ratio > 0.0,
              "aspect ratio " << options.aspect_ratio);

  const double core_area = total_cell_area_um2 / options.utilization;
  double width = std::sqrt(core_area / options.aspect_ratio);
  double height = core_area / width;

  Floorplan fp;
  fp.row_height_um = row_height_um;
  fp.row_count = std::max(1, static_cast<int>(std::ceil(height / row_height_um)));
  height = fp.row_count * row_height_um;
  width = std::max(width, row_height_um);  // degenerate guard
  fp.core = geom::Rect::make(0.0, 0.0, width, height);
  return fp;
}

void place_ports_on_boundary(netlist::Netlist& netlist, const Floorplan& fp) {
  const std::size_t count = netlist.port_count();
  if (count == 0) return;
  const geom::Rect& core = fp.core;

  // Round-robin over sides; within a side, spread pins evenly.
  const std::size_t per_side = (count + 3) / 4;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t side = i % 4;
    const std::size_t slot = i / 4;
    const double frac =
        (static_cast<double>(slot) + 0.5) / static_cast<double>(per_side);
    geom::Point pos;
    switch (side) {
      case 0: pos = {core.lx + frac * core.width(), core.ly}; break;          // south
      case 1: pos = {core.ux, core.ly + frac * core.height()}; break;          // east
      case 2: pos = {core.ux - frac * core.width(), core.uy}; break;           // north
      default: pos = {core.lx, core.uy - frac * core.height()}; break;         // west
    }
    netlist.mutable_port(static_cast<netlist::PortId>(i)).position = pos;
  }
}

}  // namespace ppacd::place
