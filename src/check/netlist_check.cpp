#include "check/netlist_check.hpp"

#include <cstdint>
#include <vector>

#include "util/strong_id.hpp"

namespace ppacd::check {

namespace {

using netlist::CellId;
using netlist::kInvalidId;
using netlist::ModuleId;
using netlist::Netlist;
using netlist::PinId;

bool valid_pin(const Netlist& nl, PinId id) {
  return id.valid() && id.index() < nl.pin_count();
}

void check_nets(const Netlist& nl, CheckResult& result) {
  // Per-pin net membership count; >1 from the same net = duplicate pin.
  util::IdVector<PinId, netlist::NetId> net_of_pin(nl.pin_count());
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const netlist::Net& net = nl.net(static_cast<netlist::NetId>(ni));
    ++result.checked;
    int drivers = 0;
    bool driver_listed = false;
    for (const PinId pid : net.pins) {
      if (!valid_pin(nl, pid)) {
        result.add("dangling-pin", msg() << "net " << net.name
                                         << ": pin id " << pid
                                         << " out of range");
        continue;
      }
      if (net_of_pin[pid] == net.id) {
        result.add("duplicate-pin", msg() << "net " << net.name
                                          << ": pin " << pid
                                          << " listed twice");
        continue;
      }
      net_of_pin[pid] = net.id;
      const netlist::Pin& pin = nl.pin(pid);
      if (pin.net != net.id) {
        result.add("pin-net-mismatch",
                   msg() << "net " << net.name << ": pin " << pid
                         << " back-references net " << pin.net);
      }
      if (pin.dir == liberty::PinDir::kOutput) ++drivers;
      if (pid == net.driver) driver_listed = true;
    }
    if (drivers != 1) {
      result.add("driver-count", msg() << "net " << net.name << ": " << drivers
                                       << " driving pins (expected 1)");
    }
    if (net.driver == kInvalidId) {
      result.add("no-driver", msg() << "net " << net.name
                                    << ": no recorded driver");
    } else if (!driver_listed) {
      result.add("driver-not-listed",
                 msg() << "net " << net.name << ": recorded driver "
                       << net.driver << " is not among the net's pins");
    }
  }

  // Reverse direction: a connected pin must be listed by its net.
  for (const PinId pi : nl.pin_ids()) {
    const netlist::Pin& pin = nl.pin(pi);
    if (pin.net == kInvalidId) {
      if (pin.dir == liberty::PinDir::kInput) {
        const std::string owner = pin.kind == netlist::PinKind::kCellPin
                                      ? nl.cell(pin.cell).name
                                      : nl.port(pin.port).name;
        result.add("floating-input",
                   msg() << "floating input pin on " << owner);
      }
      continue;
    }
    if (!pin.net.valid() || pin.net.index() >= nl.net_count()) {
      result.add("pin-net-mismatch",
                 msg() << "pin " << pi << ": net id " << pin.net
                       << " out of range");
      continue;
    }
    if (net_of_pin[pi] != pin.net) {
      result.add("pin-net-mismatch",
                 msg() << "pin " << pi << ": claims net "
                       << nl.net(pin.net).name
                       << " which does not list it");
    }
  }
}

void check_cells(const Netlist& nl, CheckResult& result) {
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const netlist::Cell& cell = nl.cell(static_cast<CellId>(ci));
    ++result.checked;
    const liberty::LibCell& lc = nl.library().cell(cell.lib_cell);
    if (cell.pins.size() != lc.pins.size()) {
      result.add("cell-pin-count",
                 msg() << "cell " << cell.name << ": " << cell.pins.size()
                       << " pins, library cell " << lc.name << " has "
                       << lc.pins.size());
      continue;
    }
    for (std::size_t i = 0; i < cell.pins.size(); ++i) {
      if (!valid_pin(nl, cell.pins[i])) {
        result.add("cell-pin-range",
                   msg() << "cell " << cell.name << ": pin id "
                         << cell.pins[i] << " out of range");
        continue;
      }
      const netlist::Pin& pin = nl.pin(cell.pins[i]);
      if (pin.cell != cell.id || pin.lib_pin != static_cast<int>(i)) {
        result.add("cell-pin-crosslink",
                   msg() << "cell " << cell.name << ": pin " << i
                         << " cross-link broken");
      }
    }
    if (!cell.module.valid() ||
        cell.module.index() >= nl.module_count()) {
      result.add("cell-module-range",
                 msg() << "cell " << cell.name << ": module id "
                       << cell.module << " out of range");
    }
  }

  for (std::size_t po = 0; po < nl.port_count(); ++po) {
    const netlist::Port& port = nl.port(static_cast<netlist::PortId>(po));
    ++result.checked;
    if (!valid_pin(nl, port.pin)) {
      result.add("port-pin-range", msg() << "port " << port.name
                                         << ": pin id " << port.pin
                                         << " out of range");
      continue;
    }
    const netlist::Pin& pin = nl.pin(port.pin);
    if (pin.kind != netlist::PinKind::kTopPort || pin.port != port.id) {
      result.add("port-pin-crosslink",
                 msg() << "port " << port.name << ": pin cross-link broken");
    }
  }
}

void check_hierarchy(const Netlist& nl, CheckResult& result) {
  // Module membership: each cell in exactly one module list, its own.
  std::vector<std::int32_t> listing_count(nl.cell_count(), 0);
  for (std::size_t mi = 0; mi < nl.module_count(); ++mi) {
    const netlist::Module& mod = nl.module(static_cast<ModuleId>(mi));
    ++result.checked;
    for (const CellId cid : mod.cells) {
      if (!cid.valid() || cid.index() >= nl.cell_count()) {
        result.add("module-cell-range",
                   msg() << "module " << mod.name << ": cell id " << cid
                         << " out of range");
        continue;
      }
      ++listing_count[cid.index()];
      if (nl.cell(cid).module != mod.id) {
        result.add("module-cell-mismatch",
                   msg() << "module " << mod.name << " lists cell "
                         << nl.cell(cid).name << " owned by module "
                         << nl.cell(cid).module);
      }
    }
    for (const ModuleId child : mod.children) {
      if (!child.valid() || child.index() >= nl.module_count()) {
        result.add("module-child-range",
                   msg() << "module " << mod.name << ": child id " << child
                         << " out of range");
      } else if (nl.module(child).parent != mod.id) {
        result.add("module-parent-mismatch",
                   msg() << "module " << nl.module(child).name
                         << " does not name " << mod.name << " as parent");
      }
    }
  }
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    if (listing_count[ci] != 1) {
      result.add("module-cell-listing",
                 msg() << "cell " << nl.cell(static_cast<CellId>(ci)).name
                       << " listed by " << listing_count[ci]
                       << " modules (expected 1)");
    }
  }
  // Acyclic: every module reaches the root within module_count() hops.
  for (std::size_t mi = 1; mi < nl.module_count(); ++mi) {
    ModuleId cursor = static_cast<ModuleId>(mi);
    std::size_t hops = 0;
    while (cursor != nl.root_module() && cursor != kInvalidId &&
           hops <= nl.module_count()) {
      cursor = nl.module(cursor).parent;
      ++hops;
    }
    if (cursor != nl.root_module()) {
      result.add("module-cycle",
                 msg() << "module "
                       << nl.module(static_cast<ModuleId>(mi)).name
                       << " does not reach the root");
    }
  }
}

}  // namespace

CheckResult check_netlist(const Netlist& nl, CheckLevel level) {
  CheckResult result;
  result.checker = "netlist";
  result.level = level;
  if (level == CheckLevel::kOff) return result;
  check_nets(nl, result);
  check_cells(nl, result);
  if (level == CheckLevel::kFull) check_hierarchy(nl, result);
  return result;
}

}  // namespace ppacd::check
