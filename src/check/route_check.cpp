#include "check/route_check.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "route/steiner.hpp"

namespace ppacd::check {

namespace {

using netlist::Netlist;
using route::RouteOptions;
using route::RouteResult;

constexpr double kTolerance = 1e-6;  ///< um

geom::Point pin_position(const Netlist& nl, netlist::PinId pid,
                         const std::vector<geom::Point>& positions) {
  const netlist::Pin& pin = nl.pin(pid);
  return pin.kind == netlist::PinKind::kTopPort
             ? nl.port(pin.port).position
             : positions.at(pin.cell.index());
}

bool routable(const netlist::Net& net, const RouteOptions& options) {
  if (net.pins.size() < 2) return false;
  return !net.is_clock || options.route_clock_nets;
}

void check_grid(const RouteResult& routed, CheckResult& result) {
  const int nx = routed.grid_nx;
  const int ny = routed.grid_ny;
  if (nx < 2 || ny < 2) {
    result.add("grid-degenerate",
               msg() << "routing grid " << nx << " x " << ny
                     << " (expected at least 2 x 2)");
    return;
  }
  const std::size_t expected =
      static_cast<std::size_t>(nx - 1) * static_cast<std::size_t>(ny) +
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny - 1);
  if (routed.edge_utilization.size() != expected) {
    result.add("edge-map-size",
               msg() << "edge utilization map has "
                     << routed.edge_utilization.size() << " entries, grid "
                     << nx << " x " << ny << " has " << expected << " edges");
  }
  double max_util = 0.0;
  int over_edges = 0;
  for (std::size_t i = 0; i < routed.edge_utilization.size(); ++i) {
    const double util = routed.edge_utilization[i];
    ++result.checked;
    if (!std::isfinite(util) || util < 0.0) {
      result.add("edge-utilization",
                 msg() << "edge " << i << ": utilization " << util);
      continue;
    }
    max_util = std::max(max_util, util);
    // Usages are whole track counts over integer capacities, so the
    // utilization comparison is exact — no tolerance needed.
    if (util > 1.0) ++over_edges;
  }
  if (routed.max_utilization + kTolerance < max_util) {
    result.add("max-utilization",
               msg() << "reported max utilization " << routed.max_utilization
                     << " below observed " << max_util);
  }
  // An edge above capacity is exactly a utilization above 1; the two
  // overflow views must agree.
  if (over_edges != routed.overflow_edges) {
    result.add("overflow-count",
               msg() << "reported " << routed.overflow_edges
                     << " overflow edges, utilization map has " << over_edges);
  }
  if ((routed.overflow_edges > 0) != (routed.total_overflow > 0.0)) {
    result.add("overflow-total",
               msg() << routed.overflow_edges << " overflow edges but total "
                     << routed.total_overflow);
  }
  if (!std::isfinite(routed.wirelength_um) || routed.wirelength_um < 0.0) {
    result.add("wirelength", msg() << "routed wirelength "
                                   << routed.wirelength_um);
  }
}

void check_pins(const Netlist& nl, const std::vector<geom::Point>& positions,
                const geom::Rect& grid, const RouteOptions& options,
                CheckResult& result) {
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const netlist::Net& net = nl.net(static_cast<netlist::NetId>(ni));
    if (!routable(net, options)) continue;
    ++result.checked;
    for (const netlist::PinId pid : net.pins) {
      const geom::Point p = pin_position(nl, pid, positions);
      if (p.x < grid.lx - kTolerance || p.x > grid.ux + kTolerance ||
          p.y < grid.ly - kTolerance || p.y > grid.uy + kTolerance) {
        result.add("pin-outside-grid",
                   msg() << "net " << net.name << ": pin at (" << p.x << ", "
                         << p.y << ") outside routing grid [" << grid.lx
                         << ", " << grid.ly << "] x [" << grid.ux << ", "
                         << grid.uy << "]");
      }
    }
  }
}

/// Union-find over topology vertices.
struct UnionFind {
  std::vector<std::int32_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  std::int32_t find(std::int32_t x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(std::int32_t a, std::int32_t b) {
    parent[static_cast<std::size_t>(find(a))] = find(b);
  }
};

/// Rebuilds each routed net's topology and verifies the tree spans its pins.
void check_trees(const Netlist& nl, const std::vector<geom::Point>& positions,
                 const geom::Rect& grid, const RouteOptions& options,
                 CheckResult& result) {
  std::vector<geom::Point> pins;
  std::vector<geom::Point> vertices;
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const netlist::Net& net = nl.net(static_cast<netlist::NetId>(ni));
    if (!routable(net, options)) continue;
    ++result.checked;
    pins.clear();
    for (const netlist::PinId pid : net.pins) {
      pins.push_back(pin_position(nl, pid, positions));
    }
    const std::vector<route::Segment> tree =
        options.use_steiner_topology ? route::steiner_segments(pins)
                                     : route::spanning_segments(pins);

    // Collect topology vertices (pins first so indices [0, pins) are pins).
    vertices = pins;
    auto vertex_index = [&vertices](const geom::Point& p) -> std::int32_t {
      for (std::size_t i = 0; i < vertices.size(); ++i) {
        if (geom::manhattan(vertices[i], p) <= kTolerance) {
          return static_cast<std::int32_t>(i);
        }
      }
      vertices.push_back(p);
      return static_cast<std::int32_t>(vertices.size() - 1);
    };
    std::vector<std::pair<std::int32_t, std::int32_t>> edges;
    edges.reserve(tree.size());
    for (const route::Segment& seg : tree) {
      edges.emplace_back(vertex_index(seg.a), vertex_index(seg.b));
    }
    UnionFind uf(vertices.size());
    // Coincident pins (e.g. two pins of one cell on the same net) are
    // trivially spanned by each other; segment endpoints only resolve to the
    // first duplicate, so unite the copies up front.
    for (std::size_t i = 0; i < pins.size(); ++i) {
      for (std::size_t j = i + 1; j < pins.size(); ++j) {
        if (geom::manhattan(pins[i], pins[j]) <= kTolerance) {
          uf.unite(static_cast<std::int32_t>(i), static_cast<std::int32_t>(j));
        }
      }
    }
    for (const auto& [a, b] : edges) uf.unite(a, b);
    const std::int32_t root = uf.find(0);
    for (std::size_t i = 1; i < pins.size(); ++i) {
      if (uf.find(static_cast<std::int32_t>(i)) != root) {
        result.add("tree-disconnected",
                   msg() << "net " << net.name << ": topology does not span pin "
                         << i << " of " << pins.size());
        break;
      }
    }
    for (const geom::Point& v : vertices) {
      if (v.x < grid.lx - kTolerance || v.x > grid.ux + kTolerance ||
          v.y < grid.ly - kTolerance || v.y > grid.uy + kTolerance) {
        result.add("tree-outside-grid",
                   msg() << "net " << net.name << ": topology vertex at ("
                         << v.x << ", " << v.y << ") outside the grid");
        break;
      }
    }
  }
}

}  // namespace

CheckResult check_routing(const Netlist& nl,
                          const std::vector<geom::Point>& positions,
                          const geom::Rect& grid, const RouteResult& routed,
                          const RouteOptions& options, CheckLevel level) {
  CheckResult result;
  result.checker = "route";
  result.level = level;
  if (level == CheckLevel::kOff) return result;
  check_grid(routed, result);
  check_pins(nl, positions, grid, options, result);
  if (level == CheckLevel::kFull) {
    check_trees(nl, positions, grid, options, result);
  }
  return result;
}

}  // namespace ppacd::check
