/// \file netlist_check.hpp
/// \brief Netlist structural-integrity validator.
///
/// Cheap level (O(pins + nets + cells)):
///   * every id stored in a pin/net/cell/port is in range,
///   * pin <-> net cross-references agree in both directions (no dangling
///     hyperedge pins, no pin claiming a net that does not list it),
///   * no net lists the same pin twice (duplicate hyperedge pin),
///   * every net has exactly one driving pin and records it,
///   * cell <-> pin cross-links match the library cell's pin list,
///   * port <-> pin cross-links agree,
///   * floating input pins (undefined STA/activity) are flagged.
///
/// Full level adds the module-hierarchy invariants Algorithm 2 depends on:
///   * every cell appears in exactly one module's cell list — the module it
///     names as its owner,
///   * module parent/children links are mutual and the tree is acyclic
///     (every module reaches the root).
#pragma once

#include "check/check.hpp"
#include "netlist/netlist.hpp"

namespace ppacd::check {

CheckResult check_netlist(const netlist::Netlist& netlist, CheckLevel level);

}  // namespace ppacd::check
