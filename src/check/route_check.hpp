/// \file route_check.hpp
/// \brief Routing-result validator.
///
/// The router reports aggregate wirelength and a congestion map; this
/// checker verifies the result is structurally sound against the netlist
/// and pin locations it was produced from.
///
/// Cheap level:
///   * grid dimensions are positive and the edge-utilization map has
///     exactly ny*(nx-1) + nx*(ny-1) entries,
///   * every edge utilization is finite and non-negative,
///   * overflow accounting is self-consistent (overflow_edges > 0 implies
///     total_overflow > 0 and vice versa; max_utilization >= any reported
///     utilization implied by overflow),
///   * every routed net's pins (cell centers and port locations) lie inside
///     the routing grid,
///   * routed wirelength is finite, non-negative, and at least the sum of
///     routed-net HPWLs (a route can never be shorter than its bounding
///     boxes).
///
/// Full level additionally rebuilds each routed net's topology (the same
/// Steiner/RMST construction the router decomposes with) and verifies the
/// tree spans all pins: the segment graph connects every pin of the net
/// (union-find over segment endpoints), with every vertex inside the grid.
#pragma once

#include <vector>

#include "check/check.hpp"
#include "geom/geometry.hpp"
#include "netlist/netlist.hpp"
#include "route/global_router.hpp"

namespace ppacd::check {

/// `positions` are cell centers indexed by CellId; `grid` is the rectangle
/// the router's GCell grid was built over (the same one handed to
/// GlobalRouter); `routed` is the result under test.
CheckResult check_routing(const netlist::Netlist& netlist,
                          const std::vector<geom::Point>& positions,
                          const geom::Rect& grid, const route::RouteResult& routed,
                          const route::RouteOptions& options, CheckLevel level);

}  // namespace ppacd::check
