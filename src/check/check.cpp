#include "check/check.hpp"

#include <mutex>
#include <utility>

#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace ppacd::check {

const char* to_string(CheckLevel level) {
  switch (level) {
    case CheckLevel::kOff: return "off";
    case CheckLevel::kCheap: return "cheap";
    case CheckLevel::kFull: return "full";
  }
  return "?";
}

bool parse_check_level(std::string_view text, CheckLevel* out) {
  if (text == "off" || text == "0") *out = CheckLevel::kOff;
  else if (text == "cheap" || text == "1") *out = CheckLevel::kCheap;
  else if (text == "full" || text == "2") *out = CheckLevel::kFull;
  else return false;
  return true;
}

namespace {

struct Log {
  std::mutex mutex;
  std::vector<CheckResult> results;
};

Log& log() {
  static Log* instance = new Log();  // leaked: alive for atexit reporters
  return *instance;
}

}  // namespace

bool report(const CheckResult& result) {
  for (const Violation& v : result.violations) {
    PPACD_LOG_ERROR("check") << result.checker << ": [" << v.code << "] "
                             << v.message;
  }
  if (result.total_violations > result.violations.size()) {
    PPACD_LOG_ERROR("check")
        << result.checker << ": "
        << result.total_violations - result.violations.size()
        << " further violations not shown";
  }
  PPACD_LOG_DEBUG("check") << result.checker << " (" << to_string(result.level)
                           << "): " << result.checked << " objects, "
                           << result.total_violations << " violations";

  const std::string prefix = "check." + result.checker;
  telemetry::metrics().counter(prefix + ".runs").add(1);
  telemetry::metrics()
      .counter(prefix + ".violations")
      .add(static_cast<std::int64_t>(result.total_violations));

  {
    Log& l = log();
    const std::lock_guard<std::mutex> guard(l.mutex);
    l.results.push_back(result);
  }
  return result.ok();
}

std::vector<CheckResult> log_snapshot() {
  Log& l = log();
  const std::lock_guard<std::mutex> guard(l.mutex);
  return l.results;
}

std::size_t logged_violations() {
  Log& l = log();
  const std::lock_guard<std::mutex> guard(l.mutex);
  std::size_t total = 0;
  for (const CheckResult& r : l.results) total += r.total_violations;
  return total;
}

void reset_log() {
  Log& l = log();
  const std::lock_guard<std::mutex> guard(l.mutex);
  l.results.clear();
}

telemetry::Json log_json() {
  telemetry::Json out = telemetry::Json::array();
  for (const CheckResult& result : log_snapshot()) {
    telemetry::Json entry = telemetry::Json::object();
    entry.set("checker", result.checker);
    entry.set("level", to_string(result.level));
    entry.set("checked", result.checked);
    entry.set("violations", result.total_violations);
    if (!result.violations.empty()) {
      telemetry::Json messages = telemetry::Json::array();
      for (const Violation& v : result.violations) {
        telemetry::Json m = telemetry::Json::object();
        m.set("code", v.code);
        m.set("message", v.message);
        messages.push_back(std::move(m));
      }
      entry.set("messages", std::move(messages));
    }
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace ppacd::check
