#include "check/place_check.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace ppacd::check {

namespace {

using place::PlaceModel;
using place::PlaceObject;
using place::Placement;

constexpr double kTolerance = 1e-6;  ///< um; absorbs double rounding only

/// Mirrors the legalizer's skip rule: multi-row objects are not snapped.
bool single_row(const PlaceObject& obj, double row_h) {
  return obj.height_um <= row_h * 1.5;
}

void check_bounds(const PlaceModel& model, const Placement& placement,
                  const PlaceCheckOptions& options, CheckResult& result) {
  const geom::Rect& core = model.core;
  const double row_h = model.row_height_um;
  const int row_count =
      std::max(1, static_cast<int>(core.height() / row_h));
  for (std::size_t i = 0; i < model.objects.size(); ++i) {
    const PlaceObject& obj = model.objects[i];
    const geom::Point& p = placement[i];
    ++result.checked;
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
      result.add("non-finite", msg() << "object " << i << ": position ("
                                     << p.x << ", " << p.y << ")");
      continue;
    }
    if (obj.fixed || obj.blockage) {
      if (geom::manhattan(p, obj.fixed_position) > kTolerance) {
        result.add("fixed-moved",
                   msg() << "fixed object " << i << " moved to (" << p.x
                         << ", " << p.y << ") from (" << obj.fixed_position.x
                         << ", " << obj.fixed_position.y << ")");
      }
      continue;
    }
    const double hw = obj.width_um * 0.5;
    const double hh = obj.height_um * 0.5;
    if (p.x - hw < core.lx - kTolerance || p.x + hw > core.ux + kTolerance ||
        p.y - hh < core.ly - kTolerance || p.y + hh > core.uy + kTolerance) {
      result.add("outside-core",
                 msg() << "object " << i << ": footprint [" << p.x - hw << ", "
                       << p.y - hh << "] x [" << p.x + hw << ", " << p.y + hh
                       << "] leaves core [" << core.lx << ", " << core.ly
                       << "] x [" << core.ux << ", " << core.uy << "]");
      continue;
    }
    if (options.legalized && single_row(obj, row_h)) {
      // Site alignment: the center must sit on a row centerline.
      const double offset = (p.y - core.ly) / row_h - 0.5;
      const double row = std::round(offset);
      if (std::fabs(offset - row) * row_h > kTolerance || row < 0.0 ||
          row >= static_cast<double>(row_count)) {
        result.add("row-misaligned",
                   msg() << "object " << i << ": y " << p.y
                         << " is not centered on a row (row height " << row_h
                         << ")");
      }
    }
  }
}

void check_overlaps(const PlaceModel& model, const Placement& placement,
                    CheckResult& result) {
  const geom::Rect& core = model.core;
  const double row_h = model.row_height_um;
  const int row_count =
      std::max(1, static_cast<int>(core.height() / row_h));

  struct RowCell {
    std::int32_t object = -1;
    double left = 0.0;
    double right = 0.0;
  };
  std::vector<std::vector<RowCell>> rows(static_cast<std::size_t>(row_count));
  for (std::size_t i = 0; i < model.objects.size(); ++i) {
    const PlaceObject& obj = model.objects[i];
    if (obj.fixed || obj.blockage || !single_row(obj, row_h)) continue;
    const geom::Point& p = placement[i];
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) continue;
    const int row = std::clamp(
        static_cast<int>(std::round((p.y - core.ly) / row_h - 0.5)), 0,
        row_count - 1);
    rows[static_cast<std::size_t>(row)].push_back(
        RowCell{static_cast<std::int32_t>(i), p.x - obj.width_um * 0.5,
                p.x + obj.width_um * 0.5});
  }
  for (std::vector<RowCell>& row : rows) {
    std::sort(row.begin(), row.end(),
              [](const RowCell& a, const RowCell& b) { return a.left < b.left; });
    for (std::size_t i = 1; i < row.size(); ++i) {
      ++result.checked;
      const RowCell& prev = row[i - 1];
      const RowCell& cur = row[i];
      if (prev.right > cur.left + kTolerance) {
        result.add("overlap",
                   msg() << "objects " << prev.object << " and " << cur.object
                         << " overlap by " << prev.right - cur.left
                         << " um in the same row");
      }
    }
  }
}

}  // namespace

CheckResult check_placement(const PlaceModel& model, const Placement& placement,
                            CheckLevel level, const PlaceCheckOptions& options) {
  CheckResult result;
  result.checker = "place";
  result.level = level;
  if (level == CheckLevel::kOff) return result;
  if (placement.size() != model.objects.size()) {
    result.add("placement-size",
               msg() << "placement covers " << placement.size()
                     << " objects, model has " << model.objects.size());
    return result;
  }
  check_bounds(model, placement, options, result);
  if (level == CheckLevel::kFull && options.legalized) {
    check_overlaps(model, placement, result);
  }
  return result;
}

}  // namespace ppacd::check
