#include "check/cluster_check.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ppacd::check {

namespace {

using cluster::ClusterId;
using cluster::ClusteredNetlist;
using netlist::CellId;
using netlist::Netlist;

void check_partition(const Netlist& nl, const ClusteredNetlist& clustered,
                     CheckResult& result) {
  const std::size_t cluster_count = clustered.cluster_count();
  if (clustered.cluster_of_cell.size() != nl.cell_count()) {
    result.add("assignment-size",
               msg() << "assignment covers " << clustered.cluster_of_cell.size()
                     << " cells, netlist has " << nl.cell_count());
    return;
  }
  for (const CellId ci : nl.cell_ids()) {
    const ClusterId c = clustered.cluster_of_cell[ci];
    if (!c.valid() || c.index() >= cluster_count) {
      result.add("assignment-range",
                 msg() << "cell " << nl.cell(ci).name
                       << ": cluster id " << c << " out of range [0, "
                       << cluster_count << ")");
    }
  }

  // Membership lists vs assignment: every cell in exactly one list, its own.
  std::vector<std::int32_t> listings(nl.cell_count(), 0);
  for (const ClusterId c : clustered.cluster_ids()) {
    const cluster::Cluster& cl = clustered.clusters[c];
    ++result.checked;
    double member_area = 0.0;
    for (const CellId cid : cl.cells) {
      if (!cid.valid() || cid.index() >= nl.cell_count()) {
        result.add("member-range", msg() << "cluster " << c << ": cell id "
                                         << cid << " out of range");
        continue;
      }
      ++listings[cid.index()];
      member_area += nl.lib_cell_of(cid).area_um2();
      if (clustered.cluster_of_cell[cid] != c) {
        result.add("double-clustered",
                   msg() << "cell " << nl.cell(cid).name << " listed by cluster "
                         << c << " but assigned to cluster "
                         << clustered.cluster_of_cell[cid]);
      }
    }
    if (std::fabs(member_area - cl.area_um2) > 1e-6 * std::max(1.0, member_area)) {
      result.add("cluster-area", msg() << "cluster " << c << ": recorded area "
                                       << cl.area_um2 << " um^2, members sum to "
                                       << member_area);
    }
    if (!cl.cells.empty()) {
      const double footprint = cl.width_um * cl.height_um;
      const double expected = cl.area_um2 / cl.shape.utilization;
      if (std::fabs(footprint - expected) > 1e-6 * std::max(1.0, expected)) {
        result.add("cluster-shape",
                   msg() << "cluster " << c << ": footprint " << footprint
                         << " um^2 does not realize area/utilization "
                         << expected);
      }
    }
  }
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    if (listings[ci] == 1) continue;
    result.add(listings[ci] == 0 ? "unclustered" : "double-clustered",
               msg() << "cell " << nl.cell(static_cast<CellId>(ci)).name
                     << " appears in " << listings[ci]
                     << " cluster membership lists (expected 1)");
  }
}

/// Participant signature identical to build_clustered_netlist's merge key.
std::string net_signature(const std::vector<ClusterId>& clusters,
                          const std::vector<netlist::PortId>& ports) {
  std::string key;
  for (const ClusterId c : clusters) key += 'c' + std::to_string(c.value());
  for (const netlist::PortId p : ports) key += 'p' + std::to_string(p.value());
  return key;
}

void check_overlay(const Netlist& nl, const ClusteredNetlist& clustered,
                   CheckResult& result) {
  // Rebuild the expected cluster hyperedges from the flat hypergraph.
  std::unordered_map<std::string, double> expected;  // signature -> weight
  std::vector<ClusterId> clusters_touched;
  std::vector<netlist::PortId> ports_touched;
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const netlist::Net& net = nl.net(static_cast<netlist::NetId>(ni));
    if (net.is_clock) continue;
    clusters_touched.clear();
    ports_touched.clear();
    for (const netlist::PinId pid : net.pins) {
      const netlist::Pin& pin = nl.pin(pid);
      if (pin.kind == netlist::PinKind::kTopPort) {
        ports_touched.push_back(pin.port);
      } else {
        clusters_touched.push_back(clustered.cluster_of_cell[pin.cell]);
      }
    }
    std::sort(clusters_touched.begin(), clusters_touched.end());
    clusters_touched.erase(
        std::unique(clusters_touched.begin(), clusters_touched.end()),
        clusters_touched.end());
    std::sort(ports_touched.begin(), ports_touched.end());
    ports_touched.erase(
        std::unique(ports_touched.begin(), ports_touched.end()),
        ports_touched.end());
    if (clusters_touched.size() + ports_touched.size() < 2) continue;
    expected[net_signature(clusters_touched, ports_touched)] += net.weight;
  }

  for (std::size_t ni = 0; ni < clustered.nets.size(); ++ni) {
    const cluster::ClusterNet& cnet = clustered.nets[ni];
    ++result.checked;
    bool participants_ok = true;
    for (const ClusterId c : cnet.clusters) {
      if (!c.valid() || c.index() >= clustered.cluster_count()) {
        result.add("overlay-cluster-range",
                   msg() << "cluster net " << ni << ": cluster id " << c
                         << " out of range");
        participants_ok = false;
      }
    }
    for (const netlist::PortId p : cnet.ports) {
      if (!p.valid() || p.index() >= nl.port_count()) {
        result.add("overlay-port-range", msg() << "cluster net " << ni
                                               << ": port id " << p
                                               << " out of range");
        participants_ok = false;
      }
    }
    if (!participants_ok) continue;
    if (cnet.io != !cnet.ports.empty()) {
      result.add("overlay-io-flag",
                 msg() << "cluster net " << ni << ": io flag " << cnet.io
                       << " disagrees with " << cnet.ports.size() << " ports");
    }
    const auto it = expected.find(net_signature(cnet.clusters, cnet.ports));
    if (it == expected.end()) {
      result.add("overlay-extra-net",
                 msg() << "cluster net " << ni
                       << ": no flat net spans its participant set");
      continue;
    }
    if (std::fabs(it->second - cnet.weight) > 1e-6 * std::max(1.0, it->second)) {
      result.add("overlay-weight",
                 msg() << "cluster net " << ni << ": weight " << cnet.weight
                       << ", flat hypergraph accumulates " << it->second);
    }
    it->second = -1.0;  // mark consumed
  }
  // Collect then sort so the violation report is byte-identical run to run.
  std::vector<std::string> missing;
  // lint:allow(unordered-iter): keys are sorted below before any emission
  for (const auto& [signature, weight] : expected) {
    if (weight >= 0.0) missing.push_back(signature);
  }
  std::sort(missing.begin(), missing.end());
  for (const std::string& signature : missing) {
    result.add("overlay-missing-net",
               msg() << "flat hypergraph edge " << signature
                     << " (weight " << expected.at(signature)
                     << ") has no cluster-level net");
  }
}

}  // namespace

CheckResult check_clustering(const Netlist& nl, const ClusteredNetlist& clustered,
                             CheckLevel level) {
  CheckResult result;
  result.checker = "cluster";
  result.level = level;
  if (level == CheckLevel::kOff) return result;
  check_partition(nl, clustered, result);
  // The overlay reconstruction indexes cluster_of_cell by every cell, so it
  // is only meaningful once the partition itself is intact.
  if (level == CheckLevel::kFull &&
      clustered.cluster_of_cell.size() == nl.cell_count()) {
    check_overlay(nl, clustered, result);
  }
  return result;
}

}  // namespace ppacd::check
