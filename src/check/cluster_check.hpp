/// \file cluster_check.hpp
/// \brief Clustering-exactness validator.
///
/// The clustered netlist (Alg. 1 line 10) must be an exact partition of the
/// flat netlist or the seed placement places the wrong problem.
///
/// Cheap level:
///   * assignment vector covers every cell and every value is a valid
///     cluster id,
///   * membership lists agree with the assignment — each cell appears
///     exactly once, in the cluster it is assigned to (a cell in two
///     clusters or in none is flagged),
///   * cluster area equals the sum of member cell areas, and the macro
///     footprint (width x height) realizes area / utilization at the
///     recorded aspect ratio.
///
/// Full level additionally rebuilds the cluster-level hyperedges from the
/// flat hypergraph and verifies the overlay: every stored cluster net's
/// participant signature (sorted unique clusters + ports) exists in the
/// reconstruction with the same accumulated weight, and none is missing.
#pragma once

#include "check/check.hpp"
#include "cluster/clustered_netlist.hpp"
#include "netlist/netlist.hpp"

namespace ppacd::check {

CheckResult check_clustering(const netlist::Netlist& netlist,
                             const cluster::ClusteredNetlist& clustered,
                             CheckLevel level);

}  // namespace ppacd::check
