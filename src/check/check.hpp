/// \file check.hpp
/// \brief Flow-wide invariant checking: the CheckResult/Checker framework.
///
/// The seeded-placement flow (Alg. 1) threads one netlist through six
/// mutating phases — clustering, shape selection, seed/incremental
/// placement, routing, CTS, STA — so a single silently-corrupted structure
/// (a dangling pin, a cell assigned to two clusters, an overlapping
/// legalized cell) poisons every downstream PPA number. The validators in
/// this directory re-derive each phase's structural invariants from first
/// principles and report every deviation with the offending object named.
///
/// Framework pieces:
///   * CheckLevel — off / cheap (O(n) cross-reference scans) / full (adds
///     quadratic-ish work such as overlap sweeps and hypergraph
///     reconstruction); FlowOptions::check_level selects it per run.
///   * Violation / CheckResult — one finding and one validator run's
///     findings. Results cap stored messages (kMaxStoredViolations) but
///     always count the total, so a pathological input cannot OOM the
///     checker itself.
///   * report() — funnels a result into the process-wide check log, the
///     logger, and the telemetry metrics (`check.<checker>.violations` /
///     `check.<checker>.runs`), so violations surface in the JSON run
///     report (flow/report.hpp) next to the phase timings.
///
/// Concrete validators live in sibling headers: netlist_check.hpp,
/// cluster_check.hpp, place_check.hpp, route_check.hpp.
#pragma once

#include <cstddef>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/json.hpp"

namespace ppacd::check {

/// How much validation the flow performs between phases.
enum class CheckLevel {
  kOff = 0,    ///< no checking (production default)
  kCheap = 1,  ///< linear-time cross-reference and bounds scans
  kFull = 2,   ///< cheap + overlap sweeps, hypergraph reconstruction, ...
};

const char* to_string(CheckLevel level);

/// Parses "off" / "cheap" / "full" (also accepts "0"/"1"/"2").
/// Returns false and leaves `out` untouched on anything else.
bool parse_check_level(std::string_view text, CheckLevel* out);

/// One invariant violation. `code` is a stable kebab-case identifier tests
/// key on (e.g. "dangling-pin"); `message` names the offending object.
struct Violation {
  std::string code;
  std::string message;
};

/// The findings of one validator run.
struct [[nodiscard]] CheckResult {
  /// Stored-message cap; violations past it are counted, not stored.
  static constexpr std::size_t kMaxStoredViolations = 64;

  std::string checker;    ///< "netlist", "cluster", "place", "route"
  CheckLevel level = CheckLevel::kCheap;
  std::size_t checked = 0;  ///< objects inspected (for report context)
  std::size_t total_violations = 0;
  std::vector<Violation> violations;  ///< first kMaxStoredViolations

  bool ok() const { return total_violations == 0; }

  void add(std::string_view code, std::string message) {
    ++total_violations;
    if (violations.size() < kMaxStoredViolations) {
      violations.push_back(Violation{std::string(code), std::move(message)});
    }
  }

  /// True when exactly one violation with `code` was recorded (what the
  /// corrupted-input tests assert).
  bool exactly(std::string_view code) const {
    return total_violations == 1 && violations.size() == 1 &&
           violations.front().code == code;
  }
};

/// Stream-builder for violation messages:
///   result.add("overlap", check::msg() << "cells " << a << " and " << b);
class msg {
 public:
  template <typename T>
  msg& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  operator std::string() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

// ---------------------------------------------------------------------------
// Process-wide check log
// ---------------------------------------------------------------------------
// Mirrors the telemetry span store: flow phases report() their results as
// they run; the run report serializes the accumulated log, and tests reset
// it between cases.

/// Logs `result` (violations at error level, a summary line at debug),
/// bumps `check.<checker>.runs` / `check.<checker>.violations`, and appends
/// to the process-wide log. Returns result.ok() for convenience.
bool report(const CheckResult& result);

/// Copy of every result report()ed since the last reset.
std::vector<CheckResult> log_snapshot();

/// Total violations across the log.
std::size_t logged_violations();

/// Clears the log (metrics are owned by telemetry and unaffected).
void reset_log();

/// The log as a JSON array of {checker, level, checked, violations,
/// messages:[{code,message}...]} — embedded in the flow run report.
telemetry::Json log_json();

}  // namespace ppacd::check
