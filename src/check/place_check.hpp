/// \file place_check.hpp
/// \brief Placement-legality validator.
///
/// Runs on a PlaceModel + Placement pair (the flow checks the legalized
/// placement; tests can check any placement).
///
/// Cheap level:
///   * placement vector covers every model object,
///   * every coordinate is finite,
///   * every movable object's footprint lies inside the die core,
///   * fixed objects sit at their recorded fixed positions.
///
/// Legalized mode (PlaceCheckOptions::legalized, the flow's post-legalize
/// check) additionally requires single-row movables to be row-aligned:
/// centered on a standard-cell row (site-aligned in y). Objects taller than
/// ~1.5 rows are exempt, mirroring the legalizer's own skip rule.
///
/// Full level adds the overlap sweep: single-row movables are bucketed per
/// row and swept in x; any pair of same-row cells whose footprints overlap
/// by more than kOverlapTolerance is flagged.
#pragma once

#include "check/check.hpp"
#include "place/model.hpp"

namespace ppacd::check {

struct PlaceCheckOptions {
  /// Placement has been legalized: enforce row alignment, and at full
  /// level, overlap-freedom. Off for global (pre-legalization) placements.
  bool legalized = true;
};

CheckResult check_placement(const place::PlaceModel& model,
                            const place::Placement& placement, CheckLevel level,
                            const PlaceCheckOptions& options = {});

}  // namespace ppacd::check
