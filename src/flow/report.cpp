#include "flow/report.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "fault/fault.hpp"
#include "observe/observe.hpp"
#include "telemetry/telemetry.hpp"

namespace ppacd::flow {

const char* to_string(Tool tool) {
  switch (tool) {
    case Tool::kOpenRoadLike: return "openroad";
    case Tool::kInnovusLike: return "innovus";
  }
  return "?";
}

const char* to_string(ClusterMethod method) {
  switch (method) {
    case ClusterMethod::kPpaAware: return "ppa_aware";
    case ClusterMethod::kMfc: return "mfc";
    case ClusterMethod::kLeiden: return "leiden";
    case ClusterMethod::kLouvainBlob: return "louvain_blob";
    case ClusterMethod::kBestChoice: return "best_choice";
    case ClusterMethod::kCutOverlay: return "cut_overlay";
  }
  return "?";
}

const char* to_string(ShapeMode mode) {
  switch (mode) {
    case ShapeMode::kUniform: return "uniform";
    case ShapeMode::kRandom: return "random";
    case ShapeMode::kVpr: return "vpr";
    case ShapeMode::kVprMl: return "vpr_ml";
  }
  return "?";
}

namespace {

using telemetry::Json;

Json options_json(const FlowOptions& options) {
  Json out = Json::object();
  out.set("tool", to_string(options.tool));
  out.set("cluster_method", to_string(options.cluster_method));
  out.set("shape_mode", to_string(options.shape_mode));
  out.set("clock_period_ps", options.clock_period_ps);
  out.set("floorplan_utilization", options.floorplan_utilization);
  out.set("io_weight_scale", options.io_weight_scale);
  out.set("top_paths", options.top_paths);
  out.set("detailed_placement", options.detailed_placement);
  out.set("scatter_seed", options.scatter_seed);
  out.set("timing_optimization", options.timing_optimization);
  out.set("check_level", check::to_string(options.check_level));
  out.set("seed", options.seed);

  Json fc = Json::object();
  fc.set("target_cluster_count", options.fc.target_cluster_count);
  fc.set("max_cluster_area_factor", options.fc.max_cluster_area_factor);
  fc.set("alpha", options.fc.alpha);
  fc.set("beta", options.fc.beta);
  fc.set("gamma", options.fc.gamma);
  fc.set("mu", options.fc.mu);
  fc.set("use_grouping", options.fc.use_grouping);
  fc.set("use_timing", options.fc.use_timing);
  fc.set("use_switching", options.fc.use_switching);
  fc.set("max_net_degree", options.fc.max_net_degree);
  fc.set("max_levels", options.fc.max_levels);
  out.set("fc", std::move(fc));

  Json vpr = Json::object();
  vpr.set("min_cluster_instances", options.vpr.min_cluster_instances);
  vpr.set("delta", options.vpr.delta);
  vpr.set("top_percent", options.vpr.top_percent);
  vpr.set("aspect_ratio_count", options.vpr.aspect_ratios.size());
  vpr.set("utilization_count", options.vpr.utilizations.size());
  out.set("vpr", std::move(vpr));

  Json placer = Json::object();
  placer.set("max_iterations", options.placer.max_iterations);
  placer.set("incremental_iterations", options.placer.incremental_iterations);
  placer.set("cg_max_iterations", options.placer.cg_max_iterations);
  placer.set("target_overflow", options.placer.target_overflow);
  placer.set("bin_rows", options.placer.bin_rows);
  placer.set("anchor_base", options.placer.anchor_base);
  placer.set("incremental_anchor", options.placer.incremental_anchor);
  out.set("placer", std::move(placer));

  Json router = Json::object();
  router.set("gcell_um", options.router.gcell_um);
  router.set("h_capacity", options.router.h_capacity);
  router.set("v_capacity", options.router.v_capacity);
  router.set("rrr_rounds", options.router.rrr_rounds);
  router.set("use_steiner_topology", options.router.use_steiner_topology);
  router.set("maze_fallback", options.router.maze_fallback);
  out.set("router", std::move(router));

  Json cts = Json::object();
  cts.set("max_sinks_per_buffer", options.cts.max_sinks_per_buffer);
  cts.set("buffer_cell", options.cts.buffer_cell);
  out.set("cts", std::move(cts));
  return out;
}

/// Aggregates "flow."-prefixed spans by name: total seconds, occurrence
/// count, and the attributes of the last occurrence.
Json phases_json(const std::vector<telemetry::SpanRecord>& spans) {
  struct Phase {
    double seconds = 0.0;
    std::int64_t count = 0;
    Json attrs = Json::object();
    std::size_t order = 0;  ///< first-seen order
  };
  std::map<std::string, Phase> phases;
  std::size_t order = 0;
  for (const telemetry::SpanRecord& span : spans) {
    if (span.name.rfind("flow.", 0) != 0) continue;
    Phase& phase = phases[span.name];
    if (phase.count == 0) phase.order = order++;
    phase.seconds += span.dur_us >= 0.0 ? span.dur_us / 1e6 : 0.0;
    ++phase.count;
    if (!span.attrs.empty()) {
      Json attrs = Json::object();
      for (const telemetry::SpanAttr& attr : span.attrs) {
        if (attr.is_number) {
          attrs.set(attr.key, attr.number);
        } else {
          attrs.set(attr.key, attr.text);
        }
      }
      phase.attrs = std::move(attrs);
    }
  }
  std::vector<const std::pair<const std::string, Phase>*> ordered;
  ordered.reserve(phases.size());
  for (const auto& entry : phases) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) {
              return a->second.order < b->second.order;
            });
  Json out = Json::array();
  for (const auto* entry : ordered) {
    Json phase = Json::object();
    phase.set("name", entry->first);
    phase.set("seconds", entry->second.seconds);
    phase.set("count", entry->second.count);
    if (entry->second.attrs.size() > 0) {
      phase.set("attrs", entry->second.attrs);
    }
    out.push_back(std::move(phase));
  }
  return out;
}

Json place_json(const PlaceOutcome& place) {
  Json out = Json::object();
  out.set("hpwl_um", place.hpwl_um);
  out.set("clustering_seconds", place.clustering_seconds);
  out.set("shaping_seconds", place.shaping_seconds);
  out.set("placement_seconds", place.placement_seconds);
  out.set("cluster_count", place.cluster_count);
  out.set("shaped_clusters", place.shaped_clusters);
  if (place.shard_count > 0) {
    out.set("shard_count", place.shard_count);
    out.set("shard_fallbacks", place.shard_fallbacks);
  }
  return out;
}

Json ppa_json(const PpaOutcome& ppa) {
  Json out = Json::object();
  out.set("rwl_um", ppa.rwl_um);
  out.set("wns_ps", ppa.wns_ps);
  out.set("tns_ns", ppa.tns_ns);
  out.set("power_w", ppa.power_w);
  out.set("clock_skew_ps", ppa.clock_skew_ps);
  out.set("route_overflow_edges", ppa.route_overflow_edges);
  return out;
}

}  // namespace

telemetry::Json run_report_json(const RunReportInputs& inputs) {
  Json out = Json::object();
  out.set("schema_version", 1);
  out.set("design", inputs.design);
  out.set("flow", inputs.flow);
  if (inputs.options != nullptr) {
    out.set("options", options_json(*inputs.options));
  }
  const std::vector<telemetry::SpanRecord> spans = telemetry::span_snapshot();
  out.set("phases", phases_json(spans));
  out.set("spans", telemetry::spans_json());
  out.set("metrics", telemetry::metrics().to_json());
  out.set("checks", check::log_json());
  out.set("errors", fault::errors_json());
  out.set("degradations", fault::degradations_json());
  if (inputs.place != nullptr) out.set("place", place_json(*inputs.place));
  if (inputs.ppa != nullptr) out.set("ppa", ppa_json(*inputs.ppa));
  // Flight-recorder event stream (folded in only when the recorder captured
  // anything, so reports stay unchanged for observe-off runs).
  if (observe::kCompiledIn && observe::recorder().enabled()) {
    out.set("observe", observe::recorder().to_json(inputs.design));
  }
  return out;
}

bool write_run_report(const std::string& path, const RunReportInputs& inputs) {
  std::ofstream out(path);
  if (!out) return false;
  out << run_report_json(inputs).dump(2) << '\n';
  return static_cast<bool>(out);
}

}  // namespace ppacd::flow
