/// \file flow.hpp
/// \brief Algorithm 1: the full clustering-driven placement flow, its
/// baselines, and post-route PPA evaluation.
///
/// Flows provided:
///   * run_default_flow  - flat global placement (the "Default" rows),
///   * run_clustered_flow - the paper's approach: PPA-info extraction,
///     hierarchy grouping (Alg. 2), enhanced FC clustering (Eq. 2/3),
///     cluster shaping (V-P&R / ML / random / uniform), cluster seed
///     placement, seeded incremental flat placement; the `cluster_method`
///     knob swaps in the Table-5 baselines (Leiden, plain multilevel FC) and
///     the blob-placement comparator [9] (Louvain + seeded placement).
///
/// Tool personalities (Alg. 1 lines 15-25): the OpenROAD-like flow scales IO
/// net weights by 4 on the clustered netlist and runs incremental placement
/// from cluster centers; the Innovus-like flow instead adds region (fence)
/// constraints for V-P&R-shaped clusters during the incremental placement.
///
/// evaluate_ppa routes the design, synthesizes the clock tree, and reports
/// rWL / WNS / TNS / Power exactly as Tables 3-6 record them.
#pragma once

#include <cstdint>
#include <vector>

#include "check/check.hpp"
#include "cluster/fc_multilevel.hpp"
#include "cts/cts.hpp"
#include "fault/expected.hpp"
#include "fault/fault.hpp"
#include "geom/geometry.hpp"
#include "netlist/netlist.hpp"
#include "place/global_placer.hpp"
#include "place/sharded.hpp"
#include "route/global_router.hpp"
#include "vpr/vpr.hpp"

namespace ppacd::flow {

enum class Tool { kOpenRoadLike, kInnovusLike };

enum class ClusterMethod {
  kPpaAware,     ///< ours: hierarchy grouping + timing + switching (Sec. 3.1)
  kMfc,          ///< TritonPart's plain multilevel FC (Table 5 "MFC")
  kLeiden,       ///< Leiden communities as clusters (Table 5 "Leiden")
  kLouvainBlob,  ///< blob placement [9] (Table 2 comparator)
  kBestChoice,   ///< Best-Choice [1] (extra related-work baseline)
  kCutOverlay,   ///< cut-overlay [6]: FC solutions combined by intersection
};

enum class ShapeMode {
  kUniform,  ///< every cluster at utilization 0.9, AR 1.0 (Table 6 "Uniform")
  kRandom,   ///< random candidate shapes (Table 6 "Random")
  kVpr,      ///< exact virtualized P&R (Fig. 3)
  kVprMl,    ///< ML-accelerated V-P&R (needs ml_predictor)
};

struct FlowOptions {
  Tool tool = Tool::kOpenRoadLike;
  ClusterMethod cluster_method = ClusterMethod::kPpaAware;
  ShapeMode shape_mode = ShapeMode::kVpr;
  /// Predictor for ShapeMode::kVprMl (borrowed; must outlive the call).
  const vpr::ShapeCostPredictor* ml_predictor = nullptr;

  double clock_period_ps = 1000.0;
  double floorplan_utilization = 0.65;
  double io_weight_scale = 4.0;  ///< Alg. 1 line 22 (OpenROAD-like only)
  std::size_t top_paths = 100000;  ///< |P|

  cluster::FcOptions fc;
  vpr::VprOptions vpr;
  place::GlobalPlacerOptions placer;
  route::RouteOptions router;
  cts::CtsOptions cts;
  /// Run window-reordering detailed placement after legalization (applies
  /// to both the default and the clustered flows; off by default so the
  /// reproduced tables isolate the paper's contribution).
  bool detailed_placement = false;
  /// Scatter seeded cells inside their cluster's placed footprint instead
  /// of stacking them at the cluster center (Alg. 1's literal step). On by
  /// default; the ablation bench quantifies the difference.
  bool scatter_seed = true;
  /// Post-placement timing optimization (high-fanout buffering + critical
  /// gate sizing, i.e. repair_design/repair_timing). Mutates the netlist
  /// and re-legalizes. Off by default so the reproduced tables isolate the
  /// paper's contribution.
  bool timing_optimization = false;
  /// Invariant checking between phases (src/check): kOff (default) skips
  /// all validators, kCheap runs the linear cross-reference scans, kFull
  /// adds overlap sweeps and hypergraph reconstruction. Violations are
  /// logged, counted in telemetry (`check.<checker>.violations`), and
  /// serialized into the JSON run report's "checks" section.
  check::CheckLevel check_level = check::CheckLevel::kOff;
  /// Graceful-degradation policies applied when a subsystem reports a
  /// structured error (see fault::DegradePolicy): ML predictor failure
  /// falls back to exact V-P&R, shape-sweep failure to the default shape,
  /// placer failure to early stop, router failure to serial retries then
  /// partial routes, STA failure to HPWL-only cost. Disabling a policy
  /// turns that failure into a propagated FlowError from the try_* entry
  /// points (the legacy entry points then assert).
  fault::DegradePolicy degrade;
  /// Region-sharded seeded placement (run_sharded_flow only): shard count
  /// and per-shard / stitch iteration budgets.
  place::ShardedOptions sharding;
  std::uint64_t seed = 3;
};

/// Placement-stage outcome (Table 2 columns).
struct PlaceOutcome {
  std::vector<geom::Point> positions;  ///< legalized cell centers
  double hpwl_um = 0.0;                ///< post-place netlist HPWL
  double clustering_seconds = 0.0;     ///< PPA extraction + clustering
  double placement_seconds = 0.0;      ///< seed + incremental (or flat GP)
  double shaping_seconds = 0.0;        ///< V-P&R / ML shape selection
  int cluster_count = 0;               ///< 0 for the default flow
  int shaped_clusters = 0;
  int shard_count = 0;                 ///< 0 unless the sharded flow ran
  int shard_fallbacks = 0;             ///< shards that kept their VPR seed
};

/// Post-route PPA (Tables 3-6 columns).
struct PpaOutcome {
  double rwl_um = 0.0;     ///< routed wirelength incl. clock tree
  double wns_ps = 0.0;
  double tns_ns = 0.0;
  double power_w = 0.0;
  double clock_skew_ps = 0.0;
  int route_overflow_edges = 0;
};

struct FlowResult {
  PlaceOutcome place;
  PpaOutcome ppa;  ///< filled by run_*_with_ppa / evaluate_ppa
};

/// Flat placement without clustering (the "Default" flow). Places the
/// netlist's ports on the floorplan boundary as a side effect.
FlowResult run_default_flow(netlist::Netlist& netlist, const FlowOptions& options);

/// The clustering-driven flow of Algorithm 1 (or a baseline variant).
FlowResult run_clustered_flow(netlist::Netlist& netlist, const FlowOptions& options);

/// The clustered flow with region-sharded seeded placement: the top-level
/// clusters are partitioned onto floorplan regions
/// (place::partition_regions), each region's cells are placed as an
/// independent sub-problem with boundary pins fixed at the region crossings
/// (place::try_place_sharded), and a short bounded incremental pass stitches
/// the shards. Bit-identical at any thread count for a fixed shard count; a
/// failed shard falls back to its cluster-induced seed when
/// `options.degrade.shard_fallback_seed`.
FlowResult run_sharded_flow(netlist::Netlist& netlist, const FlowOptions& options);

/// Routes, runs CTS, and measures post-route PPA for a placed design.
PpaOutcome evaluate_ppa(const netlist::Netlist& netlist,
                        const std::vector<geom::Point>& positions,
                        const FlowOptions& options);

/// Fallible forms of the flow entry points. Subsystem failures (injected
/// through the fault sites or genuine) are either absorbed by the
/// degradation policies in `options.degrade` — each absorption recorded via
/// fault::record_degradation and surfaced in the JSON run report — or, when
/// the policy forbids the fallback, returned as a structured FlowError.
/// The legacy entry points above are thin asserting wrappers over these.
[[nodiscard]] fault::Expected<FlowResult, fault::FlowError> try_run_default_flow(
    netlist::Netlist& netlist, const FlowOptions& options);
[[nodiscard]] fault::Expected<FlowResult, fault::FlowError> try_run_clustered_flow(
    netlist::Netlist& netlist, const FlowOptions& options);
[[nodiscard]] fault::Expected<FlowResult, fault::FlowError> try_run_sharded_flow(
    netlist::Netlist& netlist, const FlowOptions& options);
[[nodiscard]] fault::Expected<PpaOutcome, fault::FlowError> try_evaluate_ppa(
    const netlist::Netlist& netlist, const std::vector<geom::Point>& positions,
    const FlowOptions& options);

}  // namespace ppacd::flow
