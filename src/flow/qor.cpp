#include "flow/qor.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <vector>

#include "observe/observe.hpp"

namespace ppacd::flow {

namespace {

using observe::Frame;
using observe::Sample;
using observe::Stream;

/// Samples of `stream` restricted to its highest series (the flow's last
/// run of that solver: for placement that is the incremental/final placer).
std::vector<Sample> last_series(const std::vector<Sample>& samples,
                                Stream stream) {
  const std::int32_t sid = static_cast<std::int32_t>(stream);
  std::int32_t last = -1;
  for (const Sample& s : samples) {
    if (s.stream == sid) last = std::max(last, s.series);
  }
  std::vector<Sample> out;
  for (const Sample& s : samples) {
    if (s.stream == sid && s.series == last) out.push_back(s);
  }
  return out;
}

/// Rounds until the total overflow halves, linearly interpolated between
/// the per-round kRouteRound samples; -1 when it never halves.
double overflow_half_life(const std::vector<Sample>& rounds) {
  std::vector<std::pair<std::int64_t, double>> points;
  for (const Sample& s : rounds) {
    if (s.sub == 0 && s.count >= 3) points.emplace_back(s.index, s.values[2]);
  }
  std::sort(points.begin(), points.end());
  if (points.size() < 2 || points.front().second <= 0.0) return -1.0;
  const double half = points.front().second * 0.5;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].second <= half) {
      const double prev = points[i - 1].second;
      const double cur = points[i].second;
      const double frac = prev > cur ? (prev - half) / (prev - cur) : 1.0;
      return static_cast<double>(points[i - 1].first) +
             frac * static_cast<double>(points[i].first - points[i - 1].first);
    }
  }
  return -1.0;
}

/// q-quantile of a uniform-bin histogram frame ([lo, hi, count_0..n-1]),
/// interpolating within the winning bin. 0.0 when the frame is empty.
double frame_percentile(const Frame& frame, double q) {
  if (frame.values.size() < 3) return 0.0;
  const double lo = frame.values[0];
  const double hi = frame.values[1];
  const std::size_t bins = frame.values.size() - 2;
  double total = 0.0;
  for (std::size_t i = 0; i < bins; ++i) total += frame.values[2 + i];
  if (total <= 0.0 || hi <= lo) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * total;
  const double width = (hi - lo) / static_cast<double>(bins);
  double below = 0.0;
  for (std::size_t i = 0; i < bins; ++i) {
    const double c = frame.values[2 + i];
    if (below + c >= rank && c > 0.0) {
      const double frac = (rank - below) / c;
      return lo + (static_cast<double>(i) + frac) * width;
    }
    below += c;
  }
  return hi;
}

}  // namespace

telemetry::Json qor_json(std::string_view design, std::string_view flow_name,
                         const FlowResult& result) {
  using telemetry::Json;
  Json out = Json::object();
  out.set("schema", "ppacd-qor-v1");
  out.set("design", design);
  out.set("flow", flow_name);

  Json metrics = Json::object();
  metrics.set("hpwl_um", result.place.hpwl_um);
  metrics.set("rwl_um", result.ppa.rwl_um);
  metrics.set("wns_ps", result.ppa.wns_ps);
  metrics.set("tns_ns", result.ppa.tns_ns);
  metrics.set("power_w", result.ppa.power_w);
  metrics.set("clock_skew_ps", result.ppa.clock_skew_ps);
  metrics.set("route_overflow_edges",
              static_cast<double>(result.ppa.route_overflow_edges));
  metrics.set("cluster_count", static_cast<double>(result.place.cluster_count));
  out.set("metrics", std::move(metrics));

  // Convergence summaries from the flight recorder. Entries appear only
  // when the matching stream recorded anything this run.
  Json convergence = Json::object();
  const std::vector<Sample> samples = observe::recorder().merged_samples();

  const std::vector<Sample> place = last_series(samples, Stream::kPlaceIter);
  if (!place.empty()) {
    std::int64_t iters = 0;
    double final_overflow = 0.0;
    double final_hpwl = 0.0;
    for (const Sample& s : place) {
      if (s.sub != 0) continue;
      if (s.index + 1 > iters) {
        iters = s.index + 1;
        final_hpwl = s.values[0];
        final_overflow = s.values[1];
      }
    }
    convergence.set("place_iterations", static_cast<double>(iters));
    convergence.set("place_final_overflow", final_overflow);
    convergence.set("place_final_hpwl_um", final_hpwl);
  }

  // Total CG iterations across every solve (the sub == -1 summaries).
  {
    double cg_total = 0.0;
    bool any = false;
    for (const Sample& s : samples) {
      if (s.stream == static_cast<std::int32_t>(Stream::kPlaceCg) &&
          s.sub == -1) {
        cg_total += s.values[0];
        any = true;
      }
    }
    if (any) convergence.set("cg_iterations_total", cg_total);
  }

  const std::vector<Sample> rounds = last_series(samples, Stream::kRouteRound);
  if (!rounds.empty()) {
    convergence.set("route_rounds", static_cast<double>(rounds.size()));
    convergence.set("route_overflow_half_life_rounds",
                    overflow_half_life(rounds));
  }

  // Slack percentiles from the newest kStaSlack histogram frame.
  const std::vector<Frame> frames = observe::recorder().frames();
  const Frame* slack = nullptr;
  for (const Frame& f : frames) {
    if (f.stream == static_cast<std::int32_t>(Stream::kStaSlack)) slack = &f;
  }
  if (slack != nullptr) {
    convergence.set("slack_p10_ps", frame_percentile(*slack, 0.10));
    convergence.set("slack_p50_ps", frame_percentile(*slack, 0.50));
    convergence.set("slack_p90_ps", frame_percentile(*slack, 0.90));
  }

  out.set("convergence", std::move(convergence));
  return out;
}

bool write_qor(const std::string& path, std::string_view design,
               std::string_view flow_name, const FlowResult& result) {
  std::ofstream file(path);
  if (!file) return false;
  file << qor_json(design, flow_name, result).dump(2) << '\n';
  return static_cast<bool>(file);
}

}  // namespace ppacd::flow
