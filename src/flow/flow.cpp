#include "flow/flow.hpp"

#include <algorithm>
#include <sstream>

#include "flow/report.hpp"

#include "check/cluster_check.hpp"
#include "check/netlist_check.hpp"
#include "check/place_check.hpp"
#include "check/route_check.hpp"
#include "cluster/best_choice.hpp"
#include "cluster/overlay.hpp"
#include "cluster/clustered_netlist.hpp"
#include "cluster/community.hpp"
#include "cluster/graph.hpp"
#include "cluster/ppa_costs.hpp"
#include "hier/dendrogram.hpp"
#include "place/floorplan.hpp"
#include "place/detailed.hpp"
#include "place/legalizer.hpp"
#include "place/model.hpp"
#include "opt/buffering.hpp"
#include "opt/sizing.hpp"
#include "sta/activity.hpp"
#include "sta/power.hpp"
#include "sta/sta.hpp"
#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ppacd::flow {

namespace {

/// Runs one inter-phase validator under a "flow.check" span and funnels the
/// findings into the check log / telemetry. `make_result` is only invoked
/// when checking is enabled, so the validators cost nothing at kOff.
template <typename MakeResult>
void run_check(const FlowOptions& options, MakeResult&& make_result) {
  if (options.check_level == check::CheckLevel::kOff) return;
  PPACD_SPAN(span, "flow.check");
  const check::CheckResult result = make_result(options.check_level);
  PPACD_SPAN_ATTR(span, "checker", result.checker);
  PPACD_SPAN_ATTR(span, "violations", result.total_violations);
  check::report(result);
}

place::Floorplan make_floorplan(netlist::Netlist& nl, const FlowOptions& options) {
  place::FloorplanOptions fpo;
  fpo.utilization = options.floorplan_utilization;
  const place::Floorplan fp = place::Floorplan::create(
      nl.total_cell_area(), nl.library().row_height_um(), fpo);
  place::place_ports_on_boundary(nl, fp);
  return fp;
}

/// Clustering per the selected method; fills cluster assignment + count.
struct ClusteringOutcome {
  std::vector<std::int32_t> assignment;
  std::int32_t count = 0;
};

fault::Expected<ClusteringOutcome, fault::FlowError> run_clustering(
    const netlist::Netlist& nl, const FlowOptions& options) {
  ClusteringOutcome out;
  switch (options.cluster_method) {
    case ClusterMethod::kPpaAware: {
      // Alg. 1 lines 2-9: hierarchy grouping + timing + switching costs.
      std::vector<double> timing_cost;
      std::vector<double> theta;
      hier::HierClusteringResult hier_result;
      {
        PPACD_SPAN(span, "flow.extract");
        sta::StaOptions sta_options;
        sta_options.clock_period_ps = options.clock_period_ps;
        sta::Sta sta(nl, sta_options);
        auto sta_run = sta.try_run();
        if (sta_run.has_value()) {
          timing_cost = cluster::net_timing_costs(
              nl, sta, options.clock_period_ps, options.top_paths);
        } else if (options.degrade.sta_fallback_hpwl) {
          // Cluster without timing costs (connectivity + switching only).
          fault::record_degradation({"sta.arrival", sta_run.error().code,
                                     "hpwl-only",
                                     "clustering timing costs unavailable"});
        } else {
          return fault::Unexpected<fault::FlowError>(std::move(sta_run).error());
        }
        const auto activities =
            sta::propagate_activity(nl, sta::ActivityOptions{});
        theta = cluster::net_switching_activity(nl, activities);

        if (nl.has_hierarchy()) {
          hier_result = hier::hierarchy_clustering(nl);
        }
        PPACD_SPAN_ATTR(span, "hier_clusters", hier_result.cluster_count);
      }
      cluster::FcPpaInputs inputs;
      if (!timing_cost.empty()) inputs.net_timing_cost = &timing_cost;
      inputs.net_switching = &theta;
      if (nl.has_hierarchy() && hier_result.cluster_count > 1) {
        inputs.grouping = &hier_result.cluster_of_cell;
      }
      cluster::FcOptions fc = options.fc;
      fc.seed = options.seed;
      const cluster::FcResult result = cluster::fc_multilevel_cluster(nl, inputs, fc);
      out.assignment = result.cluster_of_cell;
      out.count = result.cluster_count;
      break;
    }
    case ClusterMethod::kMfc: {
      cluster::FcOptions fc = options.fc;
      fc.seed = options.seed;
      fc.use_grouping = false;
      fc.use_timing = false;
      fc.use_switching = false;
      const cluster::FcResult result =
          cluster::fc_multilevel_cluster(nl, cluster::FcPpaInputs{}, fc);
      out.assignment = result.cluster_of_cell;
      out.count = result.cluster_count;
      break;
    }
    case ClusterMethod::kBestChoice: {
      cluster::BestChoiceOptions bc;
      bc.seed = options.seed;
      const cluster::BestChoiceResult result = cluster::best_choice_cluster(nl, bc);
      out.assignment = result.cluster_of_cell;
      out.count = result.cluster_count;
      break;
    }
    case ClusterMethod::kCutOverlay: {
      cluster::CutOverlayOptions overlay;
      overlay.seed = options.seed;
      overlay.target_cluster_count = options.fc.target_cluster_count;
      const cluster::CutOverlayResult result = cluster::cut_overlay_cluster(nl, overlay);
      out.assignment = result.cluster_of_cell;
      out.count = result.cluster_count;
      break;
    }
    case ClusterMethod::kLeiden:
    case ClusterMethod::kLouvainBlob: {
      const cluster::Graph graph = cluster::clique_expand(nl);
      cluster::CommunityOptions community_options;
      community_options.seed = options.seed;
      community_options.min_community_size = 8;  // avoid degenerate blobs
      const cluster::CommunityResult result =
          options.cluster_method == ClusterMethod::kLeiden
              ? cluster::leiden(graph, community_options)
              : cluster::louvain(graph, community_options);
      out.assignment = result.community;
      out.count = result.community_count;
      break;
    }
  }
  return out;
}

fault::Expected<void, fault::FlowError> apply_shapes(
    const netlist::Netlist& nl, cluster::ClusteredNetlist& clustered,
    const FlowOptions& options, PlaceOutcome& outcome) {
  switch (options.shape_mode) {
    case ShapeMode::kUniform:
      return {};  // the build-time default is utilization 0.9, AR 1.0
    case ShapeMode::kRandom: {
      util::Rng rng(options.seed ^ 0x5eedu);
      const auto candidates = vpr::candidate_shapes(options.vpr);
      for (const cluster::ClusterId ci : clustered.cluster_ids()) {
        if (static_cast<int>(clustered.clusters[ci].cells.size()) <=
            options.vpr.min_cluster_instances) {
          continue;
        }
        set_cluster_shape(clustered, ci, candidates[rng.index(candidates.size())]);
        ++outcome.shaped_clusters;
      }
      return {};
    }
    case ShapeMode::kVpr: {
      auto stats = vpr::try_select_cluster_shapes(nl, clustered, options.vpr,
                                                  nullptr, options.degrade);
      if (!stats.has_value()) {
        return fault::Unexpected<fault::FlowError>(std::move(stats).error());
      }
      outcome.shaped_clusters = stats.value().clusters_shaped;
      return {};
    }
    case ShapeMode::kVprMl: {
      const vpr::ShapeCostPredictor* predictor = options.ml_predictor;
      if (predictor == nullptr) {
        // A missing predictor is itself an ML failure: fall back to exact
        // V-P&R under the same policy instead of asserting.
        if (!options.degrade.ml_fallback_to_vpr) {
          return fault::err("ml-predictor-missing", "ml.predict",
                            "ShapeMode::kVprMl requires ml_predictor");
        }
        fault::record_degradation({"ml.predict", "ml-predictor-missing",
                                   "vpr-exact", "predictor not configured"});
      }
      auto stats = vpr::try_select_cluster_shapes(nl, clustered, options.vpr,
                                                  predictor, options.degrade);
      if (!stats.has_value()) {
        return fault::Unexpected<fault::FlowError>(std::move(stats).error());
      }
      outcome.shaped_clusters = stats.value().clusters_shaped;
      return {};
    }
  }
  return {};
}

/// Optional repair stage: buffer high-fanout nets, upsize critical drivers,
/// then re-legalize the enlarged netlist (buffers were dropped at group
/// centroids). Updates positions and HPWL in `result`.
void run_timing_optimization(netlist::Netlist& nl, const place::Floorplan& fp,
                             const FlowOptions& options, FlowResult& result) {
  PPACD_SPAN(span, "flow.timing_opt");
  span.anchor();
  opt::BufferingOptions buffering;
  opt::buffer_high_fanout(nl, result.place.positions, buffering);
  opt::SizingOptions sizing;
  sizing.clock_period_ps = options.clock_period_ps;
  opt::resize_critical_cells(nl, result.place.positions, sizing);

  const place::PlaceModel model = place::make_place_model(nl, fp);
  place::Placement placement(model.objects.size());
  for (std::size_t i = 0; i < nl.cell_count(); ++i) {
    placement[i] = result.place.positions[i];
  }
  for (std::size_t i = nl.cell_count(); i < model.objects.size(); ++i) {
    placement[i] = model.objects[i].fixed_position;
  }
  const place::LegalizeResult legal = place::legalize(model, placement);
  result.place.positions = place::cell_positions(nl, legal.placement);
  result.place.hpwl_um = place::netlist_hpwl(nl, result.place.positions);

  // Buffering/sizing rewired nets and re-legalized: re-validate both.
  run_check(options, [&](check::CheckLevel level) {
    return check::check_netlist(nl, level);
  });
  run_check(options, [&](check::CheckLevel level) {
    return check::check_placement(model, legal.placement, level);
  });
}

}  // namespace

fault::Expected<FlowResult, fault::FlowError> try_run_default_flow(
    netlist::Netlist& nl, const FlowOptions& options) {
  FlowResult result;
  run_check(options, [&](check::CheckLevel level) {
    return check::check_netlist(nl, level);
  });
  const place::Floorplan fp = make_floorplan(nl, options);
  const place::PlaceModel model = place::make_place_model(nl, fp);

  place::LegalizeResult legal;
  {
    PPACD_SPAN(span, "flow.global_place");
    span.anchor();
    util::ScopedTimer timer(result.place.placement_seconds);
    place::GlobalPlacerOptions placer_options = options.placer;
    placer_options.seed = options.seed;
    placer_options.trace_iterations = true;
    place::GlobalPlacer placer(model, placer_options);
    auto placed_or = placer.try_run(options.degrade);
    if (!placed_or.has_value()) {
      return fault::Unexpected<fault::FlowError>(std::move(placed_or).error());
    }
    const place::PlaceResult placed = std::move(placed_or).value();
    if (!placed.degrade_code.empty()) {
      fault::record_degradation({"place.solve", placed.degrade_code,
                                 "early-stop", "flat global placement"});
    }
    legal = place::legalize(model, placed.placement);
    if (options.detailed_placement) {
      legal.placement =
          place::detailed_place(model, legal.placement, place::DetailedOptions{})
              .placement;
    }
    PPACD_SPAN_ATTR(span, "iterations", placed.iterations);
    PPACD_SPAN_ATTR(span, "overflow", placed.overflow);
  }

  run_check(options, [&](check::CheckLevel level) {
    return check::check_placement(model, legal.placement, level);
  });
  result.place.positions = place::cell_positions(nl, legal.placement);
  result.place.hpwl_um = place::netlist_hpwl(nl, result.place.positions);
  if (options.timing_optimization) {
    run_timing_optimization(nl, fp, options, result);
  }
  return result;
}

FlowResult run_default_flow(netlist::Netlist& nl, const FlowOptions& options) {
  auto result = try_run_default_flow(nl, options);
  PPACD_CHECK(result.has_value(),
              "default flow failed: " << result.error().code);
  return std::move(result).value();
}

fault::Expected<FlowResult, fault::FlowError> try_run_clustered_flow(
    netlist::Netlist& nl, const FlowOptions& options) {
  FlowResult result;
  run_check(options, [&](check::CheckLevel level) {
    return check::check_netlist(nl, level);
  });
  const place::Floorplan fp = make_floorplan(nl, options);

  // --- Clustering (Alg. 1 lines 2-10) ----------------------------------------
  ClusteringOutcome clustering;
  cluster::ClusteredNetlist clustered;
  {
    PPACD_SPAN(span, "flow.cluster");
    span.anchor();
    util::ScopedTimer timer(result.place.clustering_seconds);
    auto clustering_or = run_clustering(nl, options);
    if (!clustering_or.has_value()) {
      return fault::Unexpected<fault::FlowError>(
          std::move(clustering_or).error());
    }
    clustering = std::move(clustering_or).value();
    clustered = cluster::build_clustered_netlist(nl, clustering.assignment,
                                                 clustering.count);
    PPACD_SPAN_ATTR(span, "method", to_string(options.cluster_method));
    PPACD_SPAN_ATTR(span, "clusters", clustering.count);
  }
  run_check(options, [&](check::CheckLevel level) {
    return check::check_clustering(nl, clustered, level);
  });
  result.place.cluster_count = clustering.count;

  // --- Cluster shapes (lines 12-13) -------------------------------------------
  {
    PPACD_SPAN(span, "flow.shape");
    span.anchor();
    util::ScopedTimer timer(result.place.shaping_seconds);
    auto shaped = apply_shapes(nl, clustered, options, result.place);
    if (!shaped.has_value()) {
      return fault::Unexpected<fault::FlowError>(std::move(shaped).error());
    }
    PPACD_SPAN_ATTR(span, "mode", to_string(options.shape_mode));
    PPACD_SPAN_ATTR(span, "shaped", result.place.shaped_clusters);
  }

  // --- Seed placement of the clustered netlist (lines 15-25) ------------------
  place::LegalizeResult legal;
  {
  util::ScopedTimer placement_timer(result.place.placement_seconds);
  std::vector<geom::Point> seeded_cells;
  place::PlaceResult seed_placed;
  {
    PPACD_SPAN(span, "flow.seed_place");
    span.anchor();
    const double io_scale =
        options.tool == Tool::kOpenRoadLike ? options.io_weight_scale : 1.0;
    const place::PlaceModel cluster_model =
        cluster::make_cluster_place_model(clustered, nl, fp, io_scale);
    place::GlobalPlacerOptions seed_options = options.placer;
    seed_options.seed = options.seed;
    // Cluster macros cannot be untangled by cell shifting; use bisection.
    seed_options.spread_mode = place::SpreadMode::kBisection;
    seed_options.trace_iterations = true;
    place::GlobalPlacer seed_placer(cluster_model, seed_options);
    auto seed_or = seed_placer.try_run(options.degrade);
    if (!seed_or.has_value()) {
      return fault::Unexpected<fault::FlowError>(std::move(seed_or).error());
    }
    seed_placed = std::move(seed_or).value();
    if (!seed_placed.degrade_code.empty()) {
      fault::record_degradation({"place.solve", seed_placed.degrade_code,
                                 "early-stop", "cluster seed placement"});
    }

    // Place instances within their placed cluster footprints (or exactly at
    // the centers when scatter_seed is off).
    seeded_cells = cluster::induce_cell_positions(
        clustered, nl, seed_placed.placement, options.scatter_seed, options.seed);
    PPACD_SPAN_ATTR(span, "iterations", seed_placed.iterations);
  }

  PPACD_SPAN(incremental_span, "flow.incremental_place");
  incremental_span.anchor();

  // Flat model for the incremental pass; the Innovus-like tool adds region
  // constraints for the V-P&R-shaped clusters (line 18).
  place::PlaceModel flat_model = place::make_place_model(nl, fp);
  if (options.tool == Tool::kInnovusLike) {
    for (const cluster::ClusterId ci : clustered.cluster_ids()) {
      const cluster::Cluster& c = clustered.clusters[ci];
      if (static_cast<int>(c.cells.size()) <= options.vpr.min_cluster_instances) {
        continue;
      }
      geom::Rect region = cluster_region(clustered, ci, seed_placed.placement);
      // Clip the fence to the core.
      region = geom::Rect::make(std::max(region.lx, fp.core.lx),
                                std::max(region.ly, fp.core.ly),
                                std::min(region.ux, fp.core.ux),
                                std::min(region.uy, fp.core.uy));
      if (region.width() <= 0.0 || region.height() <= 0.0) continue;
      for (const netlist::CellId cell : c.cells) {
        flat_model.objects[cell.index()].region = region;
      }
    }
  }

  place::Placement seed_flat(flat_model.objects.size());
  for (std::size_t i = 0; i < nl.cell_count(); ++i) seed_flat[i] = seeded_cells[i];
  for (std::size_t i = nl.cell_count(); i < flat_model.objects.size(); ++i) {
    seed_flat[i] = flat_model.objects[i].fixed_position;
  }
  place::GlobalPlacerOptions inc_options = options.placer;
  inc_options.seed = options.seed;
  inc_options.trace_iterations = true;
  place::GlobalPlacer flat_placer(flat_model, inc_options);
  auto incremental_or = flat_placer.try_run_incremental(seed_flat, options.degrade);
  if (!incremental_or.has_value()) {
    return fault::Unexpected<fault::FlowError>(std::move(incremental_or).error());
  }
  const place::PlaceResult incremental = std::move(incremental_or).value();
  if (!incremental.degrade_code.empty()) {
    fault::record_degradation({"place.solve", incremental.degrade_code,
                               "early-stop", "incremental flat placement"});
  }

  // Remove region constraints (line 20) before legalization so cells can
  // settle into legal sites anywhere.
  place::PlaceModel unfenced = flat_model;
  for (place::PlaceObject& obj : unfenced.objects) obj.region.reset();
  legal = place::legalize(unfenced, incremental.placement);
  if (options.detailed_placement) {
    legal.placement =
        place::detailed_place(unfenced, legal.placement, place::DetailedOptions{})
            .placement;
  }
  run_check(options, [&](check::CheckLevel level) {
    return check::check_placement(unfenced, legal.placement, level);
  });
  PPACD_SPAN_ATTR(incremental_span, "iterations", incremental.iterations);
  PPACD_SPAN_ATTR(incremental_span, "overflow", incremental.overflow);
  }  // placement scope (seed + incremental)

  result.place.positions = place::cell_positions(nl, legal.placement);
  result.place.hpwl_um = place::netlist_hpwl(nl, result.place.positions);
  if (options.timing_optimization) {
    run_timing_optimization(nl, fp, options, result);
  }
  PPACD_LOG_INFO("flow") << nl.name() << ": clustered flow, "
                         << clustering.count << " clusters, HPWL "
                         << result.place.hpwl_um;
  return result;
}

FlowResult run_clustered_flow(netlist::Netlist& nl, const FlowOptions& options) {
  auto result = try_run_clustered_flow(nl, options);
  PPACD_CHECK(result.has_value(),
              "clustered flow failed: " << result.error().code);
  return std::move(result).value();
}

fault::Expected<FlowResult, fault::FlowError> try_run_sharded_flow(
    netlist::Netlist& nl, const FlowOptions& options) {
  FlowResult result;
  run_check(options, [&](check::CheckLevel level) {
    return check::check_netlist(nl, level);
  });
  const place::Floorplan fp = make_floorplan(nl, options);

  // --- Clustering + shapes: identical to the clustered flow ------------------
  ClusteringOutcome clustering;
  cluster::ClusteredNetlist clustered;
  {
    PPACD_SPAN(span, "flow.cluster");
    span.anchor();
    util::ScopedTimer timer(result.place.clustering_seconds);
    auto clustering_or = run_clustering(nl, options);
    if (!clustering_or.has_value()) {
      return fault::Unexpected<fault::FlowError>(
          std::move(clustering_or).error());
    }
    clustering = std::move(clustering_or).value();
    clustered = cluster::build_clustered_netlist(nl, clustering.assignment,
                                                 clustering.count);
    PPACD_SPAN_ATTR(span, "method", to_string(options.cluster_method));
    PPACD_SPAN_ATTR(span, "clusters", clustering.count);
  }
  run_check(options, [&](check::CheckLevel level) {
    return check::check_clustering(nl, clustered, level);
  });
  result.place.cluster_count = clustering.count;

  {
    PPACD_SPAN(span, "flow.shape");
    span.anchor();
    util::ScopedTimer timer(result.place.shaping_seconds);
    auto shaped = apply_shapes(nl, clustered, options, result.place);
    if (!shaped.has_value()) {
      return fault::Unexpected<fault::FlowError>(std::move(shaped).error());
    }
    PPACD_SPAN_ATTR(span, "mode", to_string(options.shape_mode));
    PPACD_SPAN_ATTR(span, "shaped", result.place.shaped_clusters);
  }

  // --- Seed placement + sharded flat placement -------------------------------
  place::PlaceModel flat_model;
  place::LegalizeResult legal;
  {
  util::ScopedTimer placement_timer(result.place.placement_seconds);
  place::PlaceResult seed_placed;
  std::vector<geom::Point> seeded_cells;
  {
    PPACD_SPAN(span, "flow.seed_place");
    span.anchor();
    const double io_scale =
        options.tool == Tool::kOpenRoadLike ? options.io_weight_scale : 1.0;
    const place::PlaceModel cluster_model =
        cluster::make_cluster_place_model(clustered, nl, fp, io_scale);
    place::GlobalPlacerOptions seed_options = options.placer;
    seed_options.seed = options.seed;
    seed_options.spread_mode = place::SpreadMode::kBisection;
    seed_options.trace_iterations = true;
    place::GlobalPlacer seed_placer(cluster_model, seed_options);
    auto seed_or = seed_placer.try_run(options.degrade);
    if (!seed_or.has_value()) {
      return fault::Unexpected<fault::FlowError>(std::move(seed_or).error());
    }
    seed_placed = std::move(seed_or).value();
    if (!seed_placed.degrade_code.empty()) {
      fault::record_degradation({"place.solve", seed_placed.degrade_code,
                                 "early-stop", "cluster seed placement"});
    }
    seeded_cells = cluster::induce_cell_positions(
        clustered, nl, seed_placed.placement, options.scatter_seed, options.seed);
    PPACD_SPAN_ATTR(span, "iterations", seed_placed.iterations);
  }

  PPACD_SPAN(shard_span, "flow.sharded_place");
  shard_span.anchor();

  // Each placed cluster footprint is one partitionable group; the region
  // partitioner maps groups onto `options.sharding.shards` floorplan regions.
  std::vector<place::ShardGroup> groups;
  groups.reserve(clustered.cluster_count());
  for (const cluster::ClusterId ci : clustered.cluster_ids()) {
    place::ShardGroup group;
    group.center = seed_placed.placement[ci.index()];
    group.rect = cluster_region(clustered, ci, seed_placed.placement);
    group.weight =
        static_cast<std::int64_t>(clustered.clusters[ci].cells.size());
    groups.push_back(group);
  }
  const place::RegionPartition partition =
      place::partition_regions(groups, fp.core, options.sharding.shards);
  result.place.shard_count = partition.shard_count();

  // Flat model; shards stand in for fences, so the sharded flow adds no
  // Innovus-style region constraints.
  flat_model = place::make_place_model(nl, fp);
  std::vector<std::int32_t> shard_of_object(flat_model.objects.size(), -1);
  for (std::size_t i = 0; i < nl.cell_count(); ++i) {
    const cluster::ClusterId ci =
        clustered.cluster_of_cell[static_cast<netlist::CellId>(i)];
    shard_of_object[i] = partition.shard_of_group[ci.index()];
  }

  place::Placement seed_flat(flat_model.objects.size());
  for (std::size_t i = 0; i < nl.cell_count(); ++i) seed_flat[i] = seeded_cells[i];
  for (std::size_t i = nl.cell_count(); i < flat_model.objects.size(); ++i) {
    seed_flat[i] = flat_model.objects[i].fixed_position;
  }
  place::GlobalPlacerOptions inc_options = options.placer;
  inc_options.seed = options.seed;
  inc_options.trace_iterations = true;
  auto sharded_or =
      place::try_place_sharded(flat_model, seed_flat, shard_of_object, partition,
                               options.sharding, inc_options, options.degrade);
  if (!sharded_or.has_value()) {
    return fault::Unexpected<fault::FlowError>(std::move(sharded_or).error());
  }
  const place::ShardedPlaceResult sharded = std::move(sharded_or).value();
  for (const place::ShardStat& stat : sharded.shards) {
    result.place.shard_fallbacks += stat.fell_back ? 1 : 0;
  }

  legal = place::legalize(flat_model, sharded.placement);
  if (options.detailed_placement) {
    legal.placement =
        place::detailed_place(flat_model, legal.placement, place::DetailedOptions{})
            .placement;
  }
  run_check(options, [&](check::CheckLevel level) {
    return check::check_placement(flat_model, legal.placement, level);
  });
  PPACD_SPAN_ATTR(shard_span, "shards", result.place.shard_count);
  PPACD_SPAN_ATTR(shard_span, "fallbacks", result.place.shard_fallbacks);
  PPACD_SPAN_ATTR(shard_span, "overflow", sharded.overflow);
  }  // placement scope (seed + sharded + stitch)

  result.place.positions = place::cell_positions(nl, legal.placement);
  result.place.hpwl_um = place::netlist_hpwl(nl, result.place.positions);
  if (options.timing_optimization) {
    run_timing_optimization(nl, fp, options, result);
  }
  PPACD_LOG_INFO("flow") << nl.name() << ": sharded flow, "
                         << result.place.cluster_count << " clusters, "
                         << result.place.shard_count << " shards, HPWL "
                         << result.place.hpwl_um;
  return result;
}

FlowResult run_sharded_flow(netlist::Netlist& nl, const FlowOptions& options) {
  auto result = try_run_sharded_flow(nl, options);
  PPACD_CHECK(result.has_value(),
              "sharded flow failed: " << result.error().code);
  return std::move(result).value();
}

fault::Expected<PpaOutcome, fault::FlowError> try_evaluate_ppa(
    const netlist::Netlist& nl, const std::vector<geom::Point>& positions,
    const FlowOptions& options) {
  PpaOutcome out;

  // Routing grid spans the placement bounding box (the floorplan core).
  geom::BBox box;
  for (const geom::Point& p : positions) box.expand(p);
  for (std::size_t po = 0; po < nl.port_count(); ++po) {
    box.expand(nl.port(static_cast<netlist::PortId>(po)).position);
  }
  route::RouteResult routed;
  {
    PPACD_SPAN(span, "flow.route");
    span.anchor();
    // Top-level evaluation: stream router progress to the flight recorder
    // (nested shape-sweep routers keep the default, silent).
    route::RouteOptions route_options = options.router;
    route_options.observe_stream = true;
    route::GlobalRouter router(nl, positions, box.rect(), route_options);
    auto routed_or = router.try_run(options.degrade);
    if (!routed_or.has_value()) {
      return fault::Unexpected<fault::FlowError>(std::move(routed_or).error());
    }
    routed = std::move(routed_or).value();
    if (routed.failed_nets > 0) {
      std::ostringstream detail;
      detail << routed.failed_nets << " nets skipped after retries";
      fault::record_degradation({"route.maze", "route-maze-failed",
                                 "partial-routes", detail.str()});
    }
    PPACD_SPAN_ATTR(span, "overflow_edges", routed.overflow_edges);
    PPACD_SPAN_ATTR(span, "wirelength_um", routed.wirelength_um);
  }
  run_check(options, [&](check::CheckLevel level) {
    return check::check_routing(nl, positions, box.rect(), routed,
                                options.router, level);
  });
  out.route_overflow_edges = routed.overflow_edges;

  cts::ClockTreeResult tree;
  {
    PPACD_SPAN(span, "flow.cts");
    span.anchor();
    tree = cts::synthesize_clock_tree(nl, positions, options.cts);
    PPACD_SPAN_ATTR(span, "buffers", tree.buffer_count);
    PPACD_SPAN_ATTR(span, "skew_ps", tree.max_skew_ps);
  }
  out.clock_skew_ps = tree.max_skew_ps;
  out.rwl_um = routed.wirelength_um + tree.wirelength_um;

  PPACD_SPAN(sta_span, "flow.sta");
  sta_span.anchor();
  sta::StaOptions sta_options;
  sta_options.clock_period_ps = options.clock_period_ps;
  sta_options.cell_positions = &positions;
  sta_options.clock_arrivals_ps = &tree.insertion_delay_ps;
  sta_options.observe_stream = true;  // top-level evaluation only
  sta::Sta sta(nl, sta_options);
  auto sta_run = sta.try_run();
  if (sta_run.has_value()) {
    out.wns_ps = sta.wns_ps();
    out.tns_ns = sta.tns_ns();
  } else if (options.degrade.sta_fallback_hpwl) {
    // HPWL-only cost: timing metrics report 0 (unavailable); power below
    // still comes from activity propagation, which needs no timing graph.
    fault::record_degradation({"sta.arrival", sta_run.error().code,
                               "hpwl-only", "WNS/TNS unavailable"});
    out.wns_ps = 0.0;
    out.tns_ns = 0.0;
  } else {
    return fault::Unexpected<fault::FlowError>(std::move(sta_run).error());
  }
  PPACD_SPAN_ATTR(sta_span, "wns_ps", out.wns_ps);
  PPACD_SPAN_ATTR(sta_span, "tns_ns", out.tns_ns);

  // Power: data nets from HPWL parasitics; the clock from the synthesized
  // tree (its switched capacitance replaces the flat clock net's HPWL cap).
  const auto activities = sta::propagate_activity(nl, sta::ActivityOptions{});
  const sta::PowerReport base =
      sta::compute_power(nl, activities, options.clock_period_ps, &positions);
  const liberty::Library& lib = nl.library();
  const double clock_toggle = 2.0;
  const double cts_clock_w = 0.5e-3 * lib.vdd() * lib.vdd() * tree.total_cap_ff *
                             clock_toggle / options.clock_period_ps * 1.10;
  double buffer_leakage_w = 0.0;
  if (const auto buf = lib.find(options.cts.buffer_cell)) {
    buffer_leakage_w = tree.buffer_count * lib.cell(*buf).leakage_uw * 1e-6;
  }
  out.power_w = base.total_w - base.clock_w + cts_clock_w + buffer_leakage_w;
  return out;
}

PpaOutcome evaluate_ppa(const netlist::Netlist& nl,
                        const std::vector<geom::Point>& positions,
                        const FlowOptions& options) {
  auto out = try_evaluate_ppa(nl, positions, options);
  PPACD_CHECK(out.has_value(), "PPA evaluation failed: " << out.error().code);
  return std::move(out).value();
}

}  // namespace ppacd::flow
