/// \file qor.hpp
/// \brief QoR ledger: schema-versioned quality-of-results records
/// (`ppacd-qor-v1`) combining a flow's final PPA metrics with convergence
/// summaries distilled from the flight-recorder event stream (src/observe).
///
/// The ledger is the quality twin of the perf records bench_diff.py
/// consumes: `tools/qor_diff.py` compares two ledgers metric-by-metric with
/// per-metric improvement directions and gates regressions in CI
/// (the `qor-gate` job diffs against bench/BENCH_qor_baseline.json).
#pragma once

#include <string>
#include <string_view>

#include "flow/flow.hpp"
#include "telemetry/json.hpp"

namespace ppacd::flow {

/// Builds the `ppacd-qor-v1` document for one flow run:
///   { "schema": "ppacd-qor-v1", "design": ..., "flow": ...,
///     "metrics": { final HPWL / rWL / WNS / TNS / power / overflow ... },
///     "convergence": { iterations-to-tolerance, overflow half-life,
///                      slack percentiles ... } }
/// Convergence entries are distilled from the flight recorder's current
/// streams; when the recorder is off (or compiled out) they are simply
/// absent and qor_diff.py reports them as added/removed, not as errors.
telemetry::Json qor_json(std::string_view design, std::string_view flow_name,
                         const FlowResult& result);

/// Writes qor_json() to `path` (pretty-printed); false on I/O error.
bool write_qor(const std::string& path, std::string_view design,
               std::string_view flow_name, const FlowResult& result);

}  // namespace ppacd::flow
