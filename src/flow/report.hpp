/// \file report.hpp
/// \brief Machine-readable per-run report: serializes the flow configuration,
/// per-phase telemetry spans, metric snapshots, and the placement / PPA
/// outcomes to a single JSON file.
///
/// Schema (see DESIGN.md "Observability" for the field-by-field description):
///   {
///     "schema_version": 1,
///     "design": "...", "flow": "...",
///     "options": { tool, cluster_method, shape_mode, ..., fc: {...},
///                  placer: {...}, vpr: {...}, router: {...}, cts: {...} },
///     "phases":  [ {name, seconds, count, attrs} ... ],  // "flow.*" spans
///     "spans":   [ ... full span tree ... ],
///     "metrics": { counters, gauges, histograms },
///     "checks":  [ {checker, level, checked, violations, messages} ... ],
///     "place":   { hpwl_um, ..._seconds, cluster_count, shaped_clusters },
///     "ppa":     { rwl_um, wns_ps, tns_ns, power_w, ... }   // if provided
///   }
#pragma once

#include <string>

#include "flow/flow.hpp"
#include "telemetry/json.hpp"

namespace ppacd::flow {

struct RunReportInputs {
  std::string design;  ///< design name (free-form)
  std::string flow;    ///< flow label, e.g. "default" or "ours"
  /// All optional; missing pieces are simply omitted from the report.
  const FlowOptions* options = nullptr;
  const PlaceOutcome* place = nullptr;
  const PpaOutcome* ppa = nullptr;
};

/// Human-readable names for the option enums (also used by the report).
const char* to_string(Tool tool);
const char* to_string(ClusterMethod method);
const char* to_string(ShapeMode mode);

/// Builds the run report from the inputs plus the process-wide telemetry
/// state (spans recorded so far, current metric snapshot).
telemetry::Json run_report_json(const RunReportInputs& inputs);

/// Writes run_report_json() to `path` (pretty-printed); false on I/O error.
bool write_run_report(const std::string& path, const RunReportInputs& inputs);

}  // namespace ppacd::flow
