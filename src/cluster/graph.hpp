/// \file graph.hpp
/// \brief Clique-expanded weighted graph over netlist cells.
///
/// Community-detection baselines (Louvain [4], Leiden [19], used by the
/// blob-placement flow [9] and Table 5) and the GNN's cluster graph
/// (Section 3.2) both operate on the standard clique expansion: every
/// hyperedge e becomes a clique over its cells with edge weight
/// w_e / (|e| - 1) [16]. Clock nets and very-high-fanout nets are skipped,
/// as is conventional for placement-relevant clustering.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"

namespace ppacd::cluster {

/// Undirected weighted graph in adjacency-list form. Parallel edges from
/// different nets are merged by weight accumulation.
struct Graph {
  std::int32_t vertex_count = 0;
  /// adj[v] = (neighbor, weight); each undirected edge appears twice.
  std::vector<std::vector<std::pair<std::int32_t, double>>> adjacency;
  double total_edge_weight = 0.0;  ///< sum over undirected edges (each once)

  double weighted_degree(std::int32_t v) const {
    double sum = 0.0;
    for (const auto& [u, w] : adjacency[static_cast<std::size_t>(v)]) sum += w;
    return sum;
  }
};

/// Builds the clique expansion over cells (vertex id == CellId). Nets with
/// more than `max_net_degree` pins and clock nets are skipped.
Graph clique_expand(const netlist::Netlist& netlist, int max_net_degree = 64);

}  // namespace ppacd::cluster
