/// \file graph.hpp
/// \brief Clique-expanded weighted graph over netlist cells.
///
/// Community-detection baselines (Louvain [4], Leiden [19], used by the
/// blob-placement flow [9] and Table 5) and the GNN's cluster graph
/// (Section 3.2) both operate on the standard clique expansion: every
/// hyperedge e becomes a clique over its cells with edge weight
/// w_e / (|e| - 1) [16]. Clock nets and very-high-fanout nets are skipped,
/// as is conventional for placement-relevant clustering.
///
/// Adjacency lives in one flat CSR (offsets + payload) instead of a vector
/// per vertex: the community/coarsening sweeps stream neighbor rows out of a
/// single allocation. Rows are sorted by neighbor id, with parallel edges
/// merged by weight accumulation.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/csr.hpp"

namespace ppacd::cluster {

/// Undirected weighted graph in CSR adjacency form.
struct Graph {
  /// (neighbor id, weight); rows are sorted by neighbor id.
  using Neighbor = std::pair<std::int32_t, double>;

  std::int32_t vertex_count = 0;
  /// Row v = neighbors of v; each undirected edge appears in both rows.
  /// Self-loops appear once, stored with doubled weight (degree convention).
  util::Csr<Neighbor> adjacency;
  double total_edge_weight = 0.0;  ///< sum over undirected edges (each once)

  std::span<const Neighbor> neighbors(std::int32_t v) const {
    return adjacency.row(static_cast<std::size_t>(v));
  }

  double weighted_degree(std::int32_t v) const {
    double sum = 0.0;
    for (const auto& [u, w] : neighbors(v)) sum += w;
    return sum;
  }
};

/// Edge-list construction for tests and non-hot callers: accumulates parallel
/// edges, then emits sorted CSR rows and the total edge weight.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::int32_t vertex_count)
      : rows_(static_cast<std::size_t>(vertex_count)),
        vertex_count_(vertex_count) {}

  /// Undirected edge a-b (a != b) with weight w; parallel calls accumulate.
  void add_edge(std::int32_t a, std::int32_t b, double w) {
    rows_[static_cast<std::size_t>(a)].emplace_back(b, w);
    rows_[static_cast<std::size_t>(b)].emplace_back(a, w);
  }

  Graph build();

 private:
  std::vector<std::vector<Graph::Neighbor>> rows_;
  std::int32_t vertex_count_ = 0;
};

/// Builds the clique expansion over cells (vertex id == CellId). Nets with
/// more than `max_net_degree` pins and clock nets are skipped.
Graph clique_expand(const netlist::Netlist& netlist, int max_net_degree = 64);

}  // namespace ppacd::cluster
