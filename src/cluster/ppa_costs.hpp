/// \file ppa_costs.hpp
/// \brief Per-net timing and switching costs feeding Eq. 2/3.
///
/// Timing: the top |P| critical paths (one per endpoint, sorted by slack,
/// mirroring the paper's findPathEnds configuration) are projected onto the
/// nets they traverse. Each path contributes its criticality
/// 1 - slack/TCP (clamped to [0, 2]) to every net on it, as in [5]; the
/// resulting per-net cost is normalized so that the beta knob of Eq. 3 is
/// unitless.
///
/// Switching: theta_e is the vectorless toggle rate of the net's driver
/// signal; Eq. 2 turns it into the switching cost
/// s_e = (1 + theta_e / sum theta)^mu.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "sta/activity.hpp"
#include "sta/sta.hpp"

namespace ppacd::cluster {

/// Per-net timing cost t_e (normalized; >= 0; 0 for nets off all paths).
/// `max_paths` mirrors |P| in Alg. 1 (default 100000 = effectively all).
std::vector<double> net_timing_costs(const netlist::Netlist& netlist,
                                     const sta::Sta& sta,
                                     double clock_period_ps,
                                     std::size_t max_paths = 100000);

/// Per-net switching activity theta_e (toggle rate of the driver signal).
std::vector<double> net_switching_activity(
    const netlist::Netlist& netlist,
    const std::vector<sta::NetActivity>& activities);

/// Eq. 2: s_e = (1 + theta_e / sum(theta))^mu over the given activities.
std::vector<double> switching_costs(const std::vector<double>& theta,
                                    double mu);

}  // namespace ppacd::cluster
