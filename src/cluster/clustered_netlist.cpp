#include "cluster/clustered_netlist.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <unordered_map>

#include "util/rng.hpp"

namespace ppacd::cluster {

namespace {

void apply_shape(Cluster& cluster) {
  const double footprint = cluster.area_um2 / cluster.shape.utilization;
  // aspect_ratio = height / width  =>  width = sqrt(footprint / ar).
  cluster.width_um = std::sqrt(footprint / cluster.shape.aspect_ratio);
  cluster.height_um = footprint / cluster.width_um;
}

}  // namespace

ClusteredNetlist build_clustered_netlist(const netlist::Netlist& nl,
                                         const std::vector<std::int32_t>& assignment,
                                         std::int32_t cluster_count) {
  assert(assignment.size() == nl.cell_count());
  ClusteredNetlist out;
  // The algorithm's compact labels become typed ClusterIds here.
  out.cluster_of_cell.reserve(assignment.size());
  for (const std::int32_t label : assignment) {
    out.cluster_of_cell.push_back(ClusterId(label));
  }
  out.clusters.resize(static_cast<std::size_t>(cluster_count));

  for (const netlist::CellId cid : nl.cell_ids()) {
    const ClusterId c = out.cluster_of_cell[cid];
    assert(c.valid() && c.value() < cluster_count);
    Cluster& cluster = out.clusters[c];
    cluster.cells.push_back(cid);
    cluster.area_um2 += nl.lib_cell_of(cid).area_um2();
  }
  for (Cluster& cluster : out.clusters) apply_shape(cluster);

  // Cluster-level nets, merged by participant signature.
  std::unordered_map<std::string, std::size_t> net_index;
  std::vector<ClusterId> clusters_touched;
  std::vector<netlist::PortId> ports_touched;
  for (const netlist::NetId nid : nl.net_ids()) {
    const netlist::Net& net = nl.net(nid);
    if (net.is_clock) continue;
    clusters_touched.clear();
    ports_touched.clear();
    for (const netlist::PinId pid : net.pins) {
      const netlist::Pin& pin = nl.pin(pid);
      if (pin.kind == netlist::PinKind::kTopPort) {
        ports_touched.push_back(pin.port);
      } else {
        clusters_touched.push_back(out.cluster_of_cell[pin.cell]);
      }
    }
    std::sort(clusters_touched.begin(), clusters_touched.end());
    clusters_touched.erase(
        std::unique(clusters_touched.begin(), clusters_touched.end()),
        clusters_touched.end());
    std::sort(ports_touched.begin(), ports_touched.end());
    ports_touched.erase(std::unique(ports_touched.begin(), ports_touched.end()),
                        ports_touched.end());
    if (clusters_touched.size() + ports_touched.size() < 2) continue;

    std::string key;
    for (const ClusterId c : clusters_touched) {
      key += 'c' + std::to_string(c.value());
    }
    for (const netlist::PortId p : ports_touched) {
      key += 'p' + std::to_string(p.value());
    }
    const auto [it, inserted] = net_index.emplace(key, out.nets.size());
    if (inserted) {
      ClusterNet cnet;
      cnet.clusters = clusters_touched;
      cnet.ports = ports_touched;
      cnet.io = !ports_touched.empty();
      out.nets.push_back(std::move(cnet));
    }
    out.nets[it->second].weight += net.weight;
  }
  return out;
}

void set_cluster_shape(ClusteredNetlist& clustered, ClusterId id,
                       const ClusterShape& shape) {
  Cluster& cluster = clustered.clusters.at(id);
  cluster.shape = shape;
  apply_shape(cluster);
}

place::PlaceModel make_cluster_place_model(const ClusteredNetlist& clustered,
                                           const netlist::Netlist& nl,
                                           const place::Floorplan& fp,
                                           double io_net_weight_scale) {
  place::PlaceModel model;
  model.core = fp.core;
  model.row_height_um = fp.row_height_um;
  model.objects.reserve(clustered.clusters.size() + nl.port_count());
  for (const Cluster& cluster : clustered.clusters) {
    place::PlaceObject obj;
    obj.width_um = cluster.width_um;
    obj.height_um = cluster.height_um;
    model.objects.push_back(obj);
  }
  for (const netlist::PortId po : nl.port_ids()) {
    place::PlaceObject obj;
    obj.fixed = true;
    obj.fixed_position = nl.port(po).position;
    model.objects.push_back(obj);
  }
  const std::int32_t port_base = static_cast<std::int32_t>(clustered.clusters.size());
  for (const ClusterNet& cnet : clustered.nets) {
    place::PlaceNet pnet;
    pnet.weight = cnet.weight * (cnet.io ? io_net_weight_scale : 1.0);
    for (const ClusterId c : cnet.clusters) pnet.objects.push_back(c.value());
    for (const netlist::PortId p : cnet.ports) {
      pnet.objects.push_back(port_base + p.value());
    }
    model.nets.push_back(std::move(pnet));
  }
  return model;
}

std::vector<geom::Point> induce_cell_positions(
    const ClusteredNetlist& clustered, const netlist::Netlist& nl,
    const place::Placement& cluster_placement, bool scatter_within_cluster,
    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<geom::Point> positions(nl.cell_count());
  for (const netlist::CellId cid : nl.cell_ids()) {
    const ClusterId c = clustered.cluster_of_cell[cid];
    const Cluster& cluster = clustered.clusters[c];
    geom::Point p = cluster_placement.at(c.index());
    if (scatter_within_cluster) {
      p.x += rng.uniform(-0.5, 0.5) * cluster.width_um;
      p.y += rng.uniform(-0.5, 0.5) * cluster.height_um;
    }
    positions[cid.index()] = p;
  }
  return positions;
}

geom::Rect cluster_region(const ClusteredNetlist& clustered, ClusterId id,
                          const place::Placement& cluster_placement) {
  const Cluster& cluster = clustered.clusters.at(id);
  const geom::Point center = cluster_placement.at(id.index());
  return geom::Rect::make(center.x - cluster.width_um * 0.5,
                          center.y - cluster.height_um * 0.5,
                          center.x + cluster.width_um * 0.5,
                          center.y + cluster.height_um * 0.5);
}

}  // namespace ppacd::cluster
