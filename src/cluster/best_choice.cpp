#include "cluster/best_choice.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <unordered_map>

#include "cluster/graph.hpp"
#include "util/logging.hpp"

namespace ppacd::cluster {

namespace {

/// Priority-queue entry: the best pair seen for `u` at push time; `stamp`
/// detects staleness (either endpoint merged since).
struct PqEntry {
  double score = 0.0;
  std::int32_t u = -1;
  std::int32_t v = -1;
  std::int64_t stamp_u = 0;
  std::int64_t stamp_v = 0;

  bool operator<(const PqEntry& other) const { return score < other.score; }
};

}  // namespace

BestChoiceResult best_choice_cluster(const netlist::Netlist& nl,
                                     const BestChoiceOptions& options) {
  BestChoiceResult result;
  const std::int32_t n = static_cast<std::int32_t>(nl.cell_count());
  result.cluster_of_cell.assign(static_cast<std::size_t>(n), 0);
  if (n == 0) return result;
  const std::int32_t target =
      options.target_cluster_count > 0 ? options.target_cluster_count
                                       : std::max<std::int32_t>(8, n / 15);

  // Current clusters: adjacency (merged weights), area, alive flag, and the
  // merge stamp used for lazy invalidation.
  const Graph base = clique_expand(nl, options.max_net_degree);
  std::vector<std::unordered_map<std::int32_t, double>> adj(
      static_cast<std::size_t>(n));
  for (std::int32_t v = 0; v < n; ++v) {
    for (const auto& [u, w] : base.adjacency[static_cast<std::size_t>(v)]) {
      if (u != v) adj[static_cast<std::size_t>(v)][u] += w;
    }
  }
  std::vector<double> area(static_cast<std::size_t>(n));
  double total_area = 0.0;
  for (std::int32_t v = 0; v < n; ++v) {
    area[static_cast<std::size_t>(v)] = nl.lib_cell_of(v).area_um2();
    total_area += area[static_cast<std::size_t>(v)];
  }
  const double max_area =
      options.max_cluster_area_factor * total_area / static_cast<double>(target);
  std::vector<bool> alive(static_cast<std::size_t>(n), true);
  std::vector<std::int64_t> stamp(static_cast<std::size_t>(n), 0);
  // Union-find for the final projection.
  std::vector<std::int32_t> parent(static_cast<std::size_t>(n));
  for (std::int32_t v = 0; v < n; ++v) parent[static_cast<std::size_t>(v)] = v;
  auto find = [&parent](std::int32_t v) {
    while (parent[static_cast<std::size_t>(v)] != v) {
      parent[static_cast<std::size_t>(v)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
      v = parent[static_cast<std::size_t>(v)];
    }
    return v;
  };

  auto score_of = [&](std::int32_t u, std::int32_t v, double w) {
    return w / (area[static_cast<std::size_t>(u)] + area[static_cast<std::size_t>(v)]);
  };

  std::priority_queue<PqEntry> queue;
  auto push_best = [&](std::int32_t u) {
    double best_score = 0.0;
    std::int32_t best_v = -1;
    for (const auto& [v, w] : adj[static_cast<std::size_t>(u)]) {
      if (!alive[static_cast<std::size_t>(v)]) continue;
      if (area[static_cast<std::size_t>(u)] + area[static_cast<std::size_t>(v)] >
          max_area) {
        continue;
      }
      const double s = score_of(u, v, w);
      if (s > best_score) {
        best_score = s;
        best_v = v;
      }
    }
    if (best_v >= 0) {
      queue.push(PqEntry{best_score, u, best_v, stamp[static_cast<std::size_t>(u)],
                         stamp[static_cast<std::size_t>(best_v)]});
    }
  };
  for (std::int32_t v = 0; v < n; ++v) push_best(v);

  std::int32_t live_count = n;
  while (live_count > target && !queue.empty()) {
    const PqEntry top = queue.top();
    queue.pop();
    const std::size_t su = static_cast<std::size_t>(top.u);
    const std::size_t sv = static_cast<std::size_t>(top.v);
    if (!alive[su] || !alive[sv] || stamp[su] != top.stamp_u ||
        stamp[sv] != top.stamp_v) {
      ++result.stale_pops;
      // If u is still alive its best pair must be recomputed.
      if (alive[su] && stamp[su] == top.stamp_u) push_best(top.u);
      continue;
    }

    // Merge v into u.
    alive[sv] = false;
    parent[static_cast<std::size_t>(find(top.v))] = find(top.u);
    area[su] += area[sv];
    ++stamp[su];
    for (const auto& [w_id, w] : adj[sv]) {
      if (w_id == top.u) continue;
      adj[su][w_id] += w;
      auto& back = adj[static_cast<std::size_t>(w_id)];
      back.erase(top.v);
      back[top.u] += w;
    }
    adj[su].erase(top.v);
    ++result.merges;
    --live_count;
    push_best(top.u);
  }

  // Compact cluster ids.
  std::unordered_map<std::int32_t, std::int32_t> remap;
  for (std::int32_t v = 0; v < n; ++v) {
    const std::int32_t root = find(v);
    const auto [it, inserted] =
        remap.emplace(root, static_cast<std::int32_t>(remap.size()));
    result.cluster_of_cell[static_cast<std::size_t>(v)] = it->second;
  }
  result.cluster_count = static_cast<std::int32_t>(remap.size());
  PPACD_LOG_DEBUG("bc") << nl.name() << ": " << result.cluster_count
                        << " clusters, " << result.merges << " merges, "
                        << result.stale_pops << " stale pops";
  return result;
}

}  // namespace ppacd::cluster
