#include "cluster/best_choice.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

#include "cluster/graph.hpp"
#include "util/dense_scratch.hpp"
#include "util/logging.hpp"

namespace ppacd::cluster {

namespace {

/// Priority-queue entry: the best pair seen for `u` at push time; `stamp`
/// detects staleness (either endpoint merged since).
struct PqEntry {
  double score = 0.0;
  std::int32_t u = -1;
  std::int32_t v = -1;
  std::int64_t stamp_u = 0;
  std::int64_t stamp_v = 0;

  bool operator<(const PqEntry& other) const { return score < other.score; }
};

using Neighbor = Graph::Neighbor;

/// First position in the sorted row whose id is >= `id`.
std::vector<Neighbor>::iterator find_in_row(std::vector<Neighbor>& row,
                                            std::int32_t id) {
  return std::lower_bound(
      row.begin(), row.end(), id,
      [](const Neighbor& n, std::int32_t key) { return n.first < key; });
}

}  // namespace

BestChoiceResult best_choice_cluster(const netlist::Netlist& nl,
                                     const BestChoiceOptions& options) {
  BestChoiceResult result;
  const std::int32_t n = static_cast<std::int32_t>(nl.cell_count());
  result.cluster_of_cell.assign(static_cast<std::size_t>(n), 0);
  if (n == 0) return result;
  const std::int32_t target =
      options.target_cluster_count > 0 ? options.target_cluster_count
                                       : std::max<std::int32_t>(8, n / 15);

  // Current clusters: sorted flat neighbor rows (merged weights), area, alive
  // flag, and the merge stamp used for lazy invalidation. Sorted vectors keep
  // the best-pair scan a contiguous sweep and make every tie-break follow
  // ascending neighbor id.
  const Graph base = clique_expand(nl, options.max_net_degree);
  std::vector<std::vector<Neighbor>> adj(static_cast<std::size_t>(n));
  for (std::int32_t v = 0; v < n; ++v) {
    const auto row = base.neighbors(v);
    auto& out = adj[static_cast<std::size_t>(v)];
    out.reserve(row.size());
    for (const auto& [u, w] : row) {
      if (u != v) out.emplace_back(u, w);  // already sorted + merged
    }
  }
  std::vector<double> area(static_cast<std::size_t>(n));
  double total_area = 0.0;
  for (std::int32_t v = 0; v < n; ++v) {
    area[static_cast<std::size_t>(v)] = nl.lib_cell_of(netlist::CellId(v)).area_um2();
    total_area += area[static_cast<std::size_t>(v)];
  }
  const double max_area =
      options.max_cluster_area_factor * total_area / static_cast<double>(target);
  std::vector<bool> alive(static_cast<std::size_t>(n), true);
  std::vector<std::int64_t> stamp(static_cast<std::size_t>(n), 0);
  // Union-find for the final projection.
  std::vector<std::int32_t> parent(static_cast<std::size_t>(n));
  for (std::int32_t v = 0; v < n; ++v) parent[static_cast<std::size_t>(v)] = v;
  auto find = [&parent](std::int32_t v) {
    while (parent[static_cast<std::size_t>(v)] != v) {
      parent[static_cast<std::size_t>(v)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
      v = parent[static_cast<std::size_t>(v)];
    }
    return v;
  };

  auto score_of = [&](std::int32_t u, std::int32_t v, double w) {
    return w / (area[static_cast<std::size_t>(u)] + area[static_cast<std::size_t>(v)]);
  };

  std::priority_queue<PqEntry> queue;
  auto push_best = [&](std::int32_t u) {
    double best_score = 0.0;
    std::int32_t best_v = -1;
    for (const auto& [v, w] : adj[static_cast<std::size_t>(u)]) {
      if (!alive[static_cast<std::size_t>(v)]) continue;
      if (area[static_cast<std::size_t>(u)] + area[static_cast<std::size_t>(v)] >
          max_area) {
        continue;
      }
      const double s = score_of(u, v, w);
      if (s > best_score) {
        best_score = s;
        best_v = v;
      }
    }
    if (best_v >= 0) {
      queue.push(PqEntry{best_score, u, best_v, stamp[static_cast<std::size_t>(u)],
                         stamp[static_cast<std::size_t>(best_v)]});
    }
  };
  for (std::int32_t v = 0; v < n; ++v) push_best(v);

  // Reused merge scratch: union of two sorted rows, accumulated densely then
  // re-emitted sorted. Steady-state merges allocate nothing.
  util::DenseScratch<double> merged(static_cast<std::size_t>(n));
  std::vector<std::int32_t> merged_keys;
  std::vector<Neighbor> merged_row;

  std::int32_t live_count = n;
  while (live_count > target && !queue.empty()) {
    const PqEntry top = queue.top();
    queue.pop();
    const std::size_t su = static_cast<std::size_t>(top.u);
    const std::size_t sv = static_cast<std::size_t>(top.v);
    if (!alive[su] || !alive[sv] || stamp[su] != top.stamp_u ||
        stamp[sv] != top.stamp_v) {
      ++result.stale_pops;
      // If u is still alive its best pair must be recomputed.
      if (alive[su] && stamp[su] == top.stamp_u) push_best(top.u);
      continue;
    }

    // Merge v into u.
    alive[sv] = false;
    parent[static_cast<std::size_t>(find(top.v))] = find(top.u);
    area[su] += area[sv];
    ++stamp[su];
    // Rewire v's neighbors: their rows swap v for u (accumulating).
    for (const auto& [w_id, w] : adj[sv]) {
      if (w_id == top.u) continue;
      auto& back = adj[static_cast<std::size_t>(w_id)];
      const auto at_v = find_in_row(back, top.v);
      assert(at_v != back.end() && at_v->first == top.v);
      back.erase(at_v);
      const auto at_u = find_in_row(back, top.u);
      if (at_u != back.end() && at_u->first == top.u) {
        at_u->second += w;
      } else {
        back.insert(at_u, Neighbor{top.u, w});
      }
    }
    // u's row becomes the sorted union of both rows minus the pair itself.
    merged.clear();
    for (const auto& [x, w] : adj[su]) {
      if (x != top.v) merged.add(x, w);
    }
    for (const auto& [x, w] : adj[sv]) {
      if (x != top.u) merged.add(x, w);
    }
    merged_keys.assign(merged.keys().begin(), merged.keys().end());
    std::sort(merged_keys.begin(), merged_keys.end());
    merged_row.clear();
    for (const std::int32_t x : merged_keys) {
      merged_row.emplace_back(x, merged.get(x));
    }
    adj[su].assign(merged_row.begin(), merged_row.end());
    adj[sv].clear();
    ++result.merges;
    --live_count;
    push_best(top.u);
  }

  // Compact cluster ids in first-occurrence order.
  std::vector<std::int32_t> remap(static_cast<std::size_t>(n), -1);
  std::int32_t next = 0;
  for (std::int32_t v = 0; v < n; ++v) {
    std::int32_t& slot = remap[static_cast<std::size_t>(find(v))];
    if (slot < 0) slot = next++;
    result.cluster_of_cell[static_cast<std::size_t>(v)] = slot;
  }
  result.cluster_count = next;
  PPACD_LOG_DEBUG("bc") << nl.name() << ": " << result.cluster_count
                        << " clusters, " << result.merges << " merges, "
                        << result.stale_pops << " stale pops";
  return result;
}

}  // namespace ppacd::cluster
