/// \file community.hpp
/// \brief Louvain [4] and Leiden [19] modularity community detection.
///
/// These are the clustering baselines of the paper: Louvain powers the
/// blob-placement flow [9] compared in Table 2, and Leiden is the stronger
/// community-detection baseline of Table 5. Both maximize modularity
///   Q = (1/2m) * sum_{ij} (A_ij - gamma * k_i k_j / 2m) * delta(c_i, c_j)
/// via local moving + graph aggregation; Leiden adds the refinement phase
/// that guarantees well-connected communities.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/graph.hpp"

namespace ppacd::cluster {

struct CommunityOptions {
  double resolution = 1.0;   ///< gamma in the modularity definition
  int max_passes = 10;       ///< level-aggregation passes
  std::uint64_t seed = 1;
  /// Communities smaller than this are merged into their best-connected
  /// neighbour at the end (0 disables). Blob placement does this to avoid
  /// degenerate tiny blobs.
  int min_community_size = 0;
};

struct CommunityResult {
  std::vector<std::int32_t> community;  ///< per vertex, compact ids
  std::int32_t community_count = 0;
  double modularity = 0.0;
  int passes = 0;
};

/// Louvain: local moving + aggregation until modularity stops improving.
CommunityResult louvain(const Graph& graph, const CommunityOptions& options);

/// Leiden: Louvain with a refinement phase between local moving and
/// aggregation, yielding well-connected (often finer) communities.
CommunityResult leiden(const Graph& graph, const CommunityOptions& options);

/// Modularity of an arbitrary assignment on `graph`.
double modularity(const Graph& graph, const std::vector<std::int32_t>& community,
                  double resolution = 1.0);

}  // namespace ppacd::cluster
