#include "cluster/overlay.hpp"

#include <cassert>
#include <unordered_map>

#include "cluster/fc_multilevel.hpp"
#include "cluster/graph.hpp"
#include "util/logging.hpp"

namespace ppacd::cluster {

std::vector<std::int32_t> overlay_partitions(
    const std::vector<const std::vector<std::int32_t>*>& assignments,
    std::int32_t* cluster_count) {
  assert(!assignments.empty());
  const std::size_t n = assignments.front()->size();
  for (const auto* a : assignments) {
    assert(a->size() == n);
    (void)a;
  }

  // Key = tuple of cluster ids across solutions; hash incrementally.
  std::unordered_map<std::string, std::int32_t> remap;
  std::vector<std::int32_t> overlay(n);
  std::string key;
  for (std::size_t i = 0; i < n; ++i) {
    key.clear();
    for (const auto* a : assignments) {
      key += std::to_string((*a)[i]);
      key.push_back(':');
    }
    const auto [it, inserted] =
        remap.emplace(key, static_cast<std::int32_t>(remap.size()));
    overlay[i] = it->second;
  }
  if (cluster_count != nullptr) *cluster_count = static_cast<std::int32_t>(remap.size());
  return overlay;
}

CutOverlayResult cut_overlay_cluster(const netlist::Netlist& nl,
                                     const CutOverlayOptions& options) {
  CutOverlayResult result;
  std::vector<std::vector<std::int32_t>> solutions;
  solutions.reserve(static_cast<std::size_t>(options.solutions));
  for (int s = 0; s < options.solutions; ++s) {
    FcOptions fc;
    fc.seed = options.seed + static_cast<std::uint64_t>(s) * 0x9e37u;
    fc.target_cluster_count = options.target_cluster_count;
    solutions.push_back(
        fc_multilevel_cluster(nl, FcPpaInputs{}, fc).cluster_of_cell);
  }
  std::vector<const std::vector<std::int32_t>*> views;
  for (const auto& s : solutions) views.push_back(&s);
  result.cluster_of_cell = overlay_partitions(views, &result.cluster_count);
  result.pre_absorb_count = result.cluster_count;

  if (options.min_fragment_size > 1) {
    // Absorb fragments into the neighbouring overlay cluster with the
    // strongest clique-expanded connection.
    const Graph graph = clique_expand(nl);
    for (int round = 0; round < 4; ++round) {
      std::vector<int> size(static_cast<std::size_t>(result.cluster_count), 0);
      for (const std::int32_t c : result.cluster_of_cell) {
        ++size[static_cast<std::size_t>(c)];
      }
      std::unordered_map<std::int64_t, double> link;
      for (std::int32_t v = 0; v < graph.vertex_count; ++v) {
        const std::int32_t cv = result.cluster_of_cell[static_cast<std::size_t>(v)];
        if (size[static_cast<std::size_t>(cv)] >= options.min_fragment_size) continue;
        for (const auto& [u, w] : graph.neighbors(v)) {
          const std::int32_t cu = result.cluster_of_cell[static_cast<std::size_t>(u)];
          if (cu != cv) link[(static_cast<std::int64_t>(cv) << 32) | cu] += w;
        }
      }
      if (link.empty()) break;
      std::vector<std::int32_t> target(static_cast<std::size_t>(result.cluster_count), -1);
      std::vector<double> best(static_cast<std::size_t>(result.cluster_count), 0.0);
      // Sort by key so equal-weight ties break toward the lowest target id
      // regardless of the map's bucket order.
      std::vector<std::pair<std::int64_t, double>> links(link.begin(),
                                                         link.end());
      std::sort(links.begin(), links.end());
      for (const auto& [k, w] : links) {
        const std::int32_t from = static_cast<std::int32_t>(k >> 32);
        const std::int32_t to = static_cast<std::int32_t>(k & 0xffffffff);
        if (w > best[static_cast<std::size_t>(from)]) {
          best[static_cast<std::size_t>(from)] = w;
          target[static_cast<std::size_t>(from)] = to;
        }
      }
      bool changed = false;
      for (std::int32_t& c : result.cluster_of_cell) {
        if (size[static_cast<std::size_t>(c)] < options.min_fragment_size &&
            target[static_cast<std::size_t>(c)] >= 0) {
          c = target[static_cast<std::size_t>(c)];
          changed = true;
        }
      }
      // Re-compact ids.
      std::unordered_map<std::int32_t, std::int32_t> remap;
      for (std::int32_t& c : result.cluster_of_cell) {
        const auto [it, inserted] =
            remap.emplace(c, static_cast<std::int32_t>(remap.size()));
        c = it->second;
      }
      result.cluster_count = static_cast<std::int32_t>(remap.size());
      if (!changed) break;
    }
  }
  PPACD_LOG_DEBUG("overlay") << nl.name() << ": " << result.pre_absorb_count
                             << " -> " << result.cluster_count
                             << " overlay clusters";
  return result;
}

}  // namespace ppacd::cluster
