#include "cluster/ppa_costs.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace ppacd::cluster {

std::vector<double> net_timing_costs(const netlist::Netlist& nl,
                                     const sta::Sta& sta,
                                     double clock_period_ps,
                                     std::size_t max_paths) {
  std::vector<double> cost(nl.net_count(), 0.0);
  const auto paths = sta.worst_paths(max_paths);
  std::unordered_set<netlist::NetId> nets_on_path;
  for (const sta::TimingPath& path : paths) {
    const double criticality =
        std::clamp(1.0 - path.slack_ps / clock_period_ps, 0.0, 2.0);
    if (criticality <= 0.0) continue;
    nets_on_path.clear();
    for (const netlist::PinId pid : path.pins) {
      const netlist::NetId net = nl.pin(pid).net;
      if (net != netlist::kInvalidId) nets_on_path.insert(net);
    }
    // lint:allow(unordered-iter): one += per distinct net slot, order-free
    for (const netlist::NetId net : nets_on_path) {
      cost[net.index()] += criticality;
    }
  }

  // Normalize so the mean nonzero cost is kTimingCostMean. The value is
  // calibrated on this substrate so that the paper's default beta = 1 sits
  // at the PPA optimum (Section 4.5 / Fig. 5 then reproduces "the default
  // hyperparameters are a reasonable choice").
  constexpr double kTimingCostMean = 3.0;
  double sum = 0.0;
  std::size_t nonzero = 0;
  for (const double c : cost) {
    if (c > 0.0) {
      sum += c;
      ++nonzero;
    }
  }
  if (nonzero > 0) {
    const double scale = kTimingCostMean * static_cast<double>(nonzero) / sum;
    for (double& c : cost) c *= scale;
  }
  return cost;
}

std::vector<double> net_switching_activity(
    const netlist::Netlist& nl,
    const std::vector<sta::NetActivity>& activities) {
  assert(activities.size() == nl.net_count());
  std::vector<double> theta(nl.net_count(), 0.0);
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    if (nl.net(static_cast<netlist::NetId>(ni)).is_clock) continue;
    theta[ni] = activities[ni].toggle;
  }
  return theta;
}

std::vector<double> switching_costs(const std::vector<double>& theta, double mu) {
  double sum = 0.0;
  for (const double t : theta) sum += t;
  std::vector<double> cost(theta.size(), 1.0);
  if (sum <= 0.0) return cost;
  for (std::size_t i = 0; i < theta.size(); ++i) {
    cost[i] = std::pow(1.0 + theta[i] / sum, mu);
  }
  return cost;
}

}  // namespace ppacd::cluster
