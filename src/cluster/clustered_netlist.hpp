/// \file clustered_netlist.hpp
/// \brief The clustered netlist: cluster macros + cluster-level nets
/// (Alg. 1 line 10), their shapes (the "cluster .lef", line 13), and the
/// conversions to/from the placement engine.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/geometry.hpp"
#include "netlist/netlist.hpp"
#include "place/floorplan.hpp"
#include "place/model.hpp"
#include "util/strong_id.hpp"

namespace ppacd::cluster {

/// Identifier of one cluster macro within a ClusteredNetlist. The clustering
/// algorithms themselves (community.hpp, fc_multilevel.hpp, ...) emit raw
/// compact label vectors — relabeling arithmetic is their business; the
/// moment labels become entities (build_clustered_netlist) they get typed.
using ClusterId = util::StrongId<struct ClusterIdTag>;

/// Shape chosen for one cluster macro (what V-P&R optimizes).
struct ClusterShape {
  double aspect_ratio = 1.0;  ///< height / width
  double utilization = 0.90;  ///< cell area / macro area
};

/// One cluster macro.
struct Cluster {
  std::vector<netlist::CellId> cells;
  double area_um2 = 0.0;   ///< sum of member cell areas
  double width_um = 0.0;   ///< derived from `shape`
  double height_um = 0.0;
  ClusterShape shape;

  bool singleton() const { return cells.size() == 1; }
};

/// One cluster-level hyperedge. Parallel flat nets connecting the same
/// cluster/port set are merged with accumulated weight.
struct ClusterNet {
  double weight = 0.0;
  bool io = false;  ///< touches a top-level port
  std::vector<ClusterId> clusters;
  std::vector<netlist::PortId> ports;
};

struct ClusteredNetlist {
  util::IdVector<ClusterId, Cluster> clusters;
  std::vector<ClusterNet> nets;
  util::IdVector<netlist::CellId, ClusterId> cluster_of_cell;

  std::size_t cluster_count() const { return clusters.size(); }
  util::IdRange<ClusterId> cluster_ids() const { return clusters.ids(); }
};

/// Builds the clustered netlist from a flat assignment (cell -> cluster id
/// in [0, cluster_count)). Clock nets are excluded, mirroring the flat
/// placement model. All clusters start with the default shape.
ClusteredNetlist build_clustered_netlist(const netlist::Netlist& netlist,
                                         const std::vector<std::int32_t>& assignment,
                                         std::int32_t cluster_count);

/// Applies `shape` to cluster `id`, recomputing its footprint (this is
/// the ".lef update" of Alg. 1 line 13).
void set_cluster_shape(ClusteredNetlist& clustered, ClusterId id,
                       const ClusterShape& shape);

/// Builds a placement model over cluster macros (movable) and ports (fixed).
/// `io_net_weight_scale` mirrors Alg. 1 line 22 (OpenROAD flow scales IO
/// nets by 4 before the cluster seed placement).
place::PlaceModel make_cluster_place_model(const ClusteredNetlist& clustered,
                                           const netlist::Netlist& netlist,
                                           const place::Floorplan& fp,
                                           double io_net_weight_scale = 1.0);

/// Seeds every cell from its cluster's placed location (Alg. 1 lines 17/24).
/// With `scatter_within_cluster` false, every cell sits exactly at the
/// cluster center (the literal Alg. 1 step). With it true (default), cells
/// are jittered uniformly inside the cluster's placed rectangle, so the seed
/// is already area-spread at cluster granularity and the incremental
/// placement converges in far fewer iterations -- this is what makes the
/// seeded flow *faster* at equal HPWL.
std::vector<geom::Point> induce_cell_positions(
    const ClusteredNetlist& clustered, const netlist::Netlist& netlist,
    const place::Placement& cluster_placement,
    bool scatter_within_cluster = true, std::uint64_t seed = 1);

/// The placed rectangle of cluster `id` under `cluster_placement`
/// (used for Innovus-style region constraints, Alg. 1 line 18).
geom::Rect cluster_region(const ClusteredNetlist& clustered, ClusterId id,
                          const place::Placement& cluster_placement);

}  // namespace ppacd::cluster
