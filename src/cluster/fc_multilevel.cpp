#include "cluster/fc_multilevel.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "cluster/ppa_costs.hpp"
#include "netlist/flat.hpp"
#include "observe/observe.hpp"
#include "telemetry/telemetry.hpp"
#include "util/csr.hpp"
#include "util/dense_scratch.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace ppacd::cluster {

namespace {

/// One coarsening level. Hyperedges live in two flat CSRs (edge -> sorted
/// unique vertices, vertex -> incident edge ids) with parallel per-edge cost
/// arrays; `fixed_cost` carries alpha*w_e + beta*t_e from the flat netlist
/// and `theta` the switching activity, so s_e can be re-evaluated per level
/// (the Eq. 2 normalization depends on the surviving edge set). Two
/// LevelGraphs ping-pong across levels, so contraction reuses buffers
/// instead of reallocating every pass.
struct LevelGraph {
  std::int32_t vertex_count = 0;
  std::vector<double> area;
  std::vector<std::int32_t> community;
  std::vector<double> edge_fixed_cost;
  std::vector<double> edge_theta;
  util::Csr<std::int32_t> edge_vertices;  ///< edge -> sorted unique vertices
  util::Csr<std::int32_t> incident;       ///< vertex -> incident edge ids

  std::size_t edge_count() const { return edge_vertices.rows(); }

  void rebuild_incidence() {
    incident.start_rows(static_cast<std::size_t>(vertex_count));
    for (std::size_t ei = 0; ei < edge_count(); ++ei) {
      for (const std::int32_t v : edge_vertices.row(ei)) {
        incident.add_to_row(static_cast<std::size_t>(v));
      }
    }
    incident.commit_rows();
    for (std::size_t ei = 0; ei < edge_count(); ++ei) {
      for (const std::int32_t v : edge_vertices.row(ei)) {
        incident.push(static_cast<std::size_t>(v), static_cast<std::int32_t>(ei));
      }
    }
  }
};

/// Union-find over one FC pass.
struct UnionFind {
  std::vector<std::int32_t> parent;
  explicit UnionFind(std::int32_t n) : parent(static_cast<std::size_t>(n)) {
    for (std::int32_t i = 0; i < n; ++i) parent[static_cast<std::size_t>(i)] = i;
  }
  std::int32_t find(std::int32_t v) {
    while (parent[static_cast<std::size_t>(v)] != v) {
      parent[static_cast<std::size_t>(v)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
      v = parent[static_cast<std::size_t>(v)];
    }
    return v;
  }
  void unite(std::int32_t child, std::int32_t root) {
    parent[static_cast<std::size_t>(find(child))] = find(root);
  }
};

}  // namespace

FcResult fc_multilevel_cluster(const netlist::Netlist& nl,
                               const FcPpaInputs& ppa, const FcOptions& options) {
  PPACD_SPAN(fc_span, "cluster.fc");
  // Flight recorder: per-level coarsening progress plus the final cluster
  // size distribution and cut quality. Everything here is serial.
  const bool observing = observe::active();
  const std::int32_t obs_level_series =
      observing
          ? observe::recorder().begin_series(observe::Stream::kClusterLevel)
          : -1;
  FcResult result;
  const std::int32_t n_cells = static_cast<std::int32_t>(nl.cell_count());
  result.cluster_of_cell.assign(static_cast<std::size_t>(n_cells), 0);
  if (n_cells == 0) return result;

  const std::int32_t target =
      options.target_cluster_count > 0
          ? options.target_cluster_count
          : std::max<std::int32_t>(8, n_cells / 15);

  // --- Build the level-0 graph from the netlist ------------------------------
  LevelGraph level;
  level.vertex_count = n_cells;
  level.area.resize(static_cast<std::size_t>(n_cells));
  double total_area = 0.0;
  for (std::int32_t ci = 0; ci < n_cells; ++ci) {
    level.area[static_cast<std::size_t>(ci)] = nl.lib_cell_of(netlist::CellId(ci)).area_um2();
    total_area += level.area[static_cast<std::size_t>(ci)];
  }
  const double max_cluster_area =
      options.max_cluster_area_factor * total_area / static_cast<double>(target);

  const bool use_grouping = options.use_grouping && ppa.grouping != nullptr;
  level.community.assign(static_cast<std::size_t>(n_cells), 0);
  if (use_grouping) {
    assert(ppa.grouping->size() == nl.cell_count());
    level.community = *ppa.grouping;
  }

  const bool use_timing = options.use_timing && ppa.net_timing_cost != nullptr;
  const bool use_switching = options.use_switching && ppa.net_switching != nullptr;

  const netlist::FlatConnectivity flat = netlist::FlatConnectivity::build(nl);
  std::vector<std::int32_t> verts;  // reused per-edge vertex scratch
  level.edge_vertices.start_append(nl.net_count(),
                                   flat.net_cells.value_count());
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const netlist::Net& net = nl.net(static_cast<netlist::NetId>(ni));
    if (net.is_clock) continue;
    const auto members = flat.net_cells.row(ni);
    verts.clear();
    // Level-0 vertex ids are cell ids by construction; later levels coarsen.
    for (const netlist::CellId c : members) verts.push_back(c.value());
    std::sort(verts.begin(), verts.end());
    verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
    if (verts.size() < 2 ||
        verts.size() > static_cast<std::size_t>(options.max_net_degree)) {
      continue;
    }
    level.edge_vertices.append_row(verts);
    double fixed_cost = options.alpha * net.weight;
    if (use_timing) {
      fixed_cost += options.beta * (*ppa.net_timing_cost)[ni];
    }
    level.edge_fixed_cost.push_back(fixed_cost);
    level.edge_theta.push_back(use_switching ? (*ppa.net_switching)[ni] : 0.0);
  }

  // Mapping from original cells to current-level vertices.
  std::vector<std::int32_t> projection(static_cast<std::size_t>(n_cells));
  for (std::int32_t i = 0; i < n_cells; ++i) {
    projection[static_cast<std::size_t>(i)] = i;
  }

  util::Rng rng(options.seed);
  bool allow_cross_community = !use_grouping;

  // Scratch reused across every level: neighbour-cluster ratings, the
  // contraction dedupe stamps, and the ping-pong coarse graph.
  util::DenseScratch<double> rating(static_cast<std::size_t>(n_cells));
  util::DenseScratch<char> seen(static_cast<std::size_t>(n_cells));
  LevelGraph coarse;

  for (int pass = 0; pass < options.max_levels; ++pass) {
    if (level.vertex_count <= target) break;
    PPACD_SPAN(level_span, "cluster.fc.level");
    PPACD_SPAN_ATTR(level_span, "level", pass);
    PPACD_SPAN_ATTR(level_span, "vertices", level.vertex_count);
    PPACD_SPAN_ATTR(level_span, "edges", level.edge_count());
    level.rebuild_incidence();

    // Per-level switching costs (Eq. 2 over the surviving edges).
    std::vector<double> s_e;
    if (use_switching) {
      s_e = switching_costs(level.edge_theta, options.mu);
    }
    auto edge_cost = [&](std::size_t ei) {
      return level.edge_fixed_cost[ei] +
             (use_switching ? options.gamma * s_e[ei] : 0.0);
    };

    UnionFind uf(level.vertex_count);
    std::vector<double> cluster_area = level.area;
    std::int32_t merges = 0;
    const std::int32_t merge_budget = level.vertex_count - target;

    for (const std::size_t vi :
         rng.permutation(static_cast<std::size_t>(level.vertex_count))) {
      if (merges >= merge_budget) break;
      const std::int32_t u = static_cast<std::int32_t>(vi);
      const std::int32_t u_root = uf.find(u);

      rating.clear();
      for (const std::int32_t ei : level.incident.row(vi)) {
        const auto edge = level.edge_vertices.row(static_cast<std::size_t>(ei));
        const double contrib = edge_cost(static_cast<std::size_t>(ei)) /
                               static_cast<double>(edge.size() - 1);
        for (const std::int32_t v : edge) {
          const std::int32_t v_root = uf.find(v);
          if (v_root == u_root) continue;
          rating.add(v_root, contrib);
        }
      }

      std::int32_t best = -1;
      double best_rating = 0.0;
      for (const std::int32_t v_root : rating.keys()) {
        const double r = rating.get(v_root);
        if (r <= best_rating) continue;
        if (cluster_area[static_cast<std::size_t>(u_root)] +
                cluster_area[static_cast<std::size_t>(v_root)] >
            max_cluster_area) {
          continue;
        }
        if (!allow_cross_community &&
            level.community[static_cast<std::size_t>(v_root)] !=
                level.community[static_cast<std::size_t>(u_root)]) {
          continue;
        }
        best_rating = r;
        best = v_root;
      }
      if (best < 0) continue;
      // First Choice: u's cluster joins the best-rated neighbour cluster.
      uf.unite(u_root, best);
      cluster_area[static_cast<std::size_t>(best)] +=
          cluster_area[static_cast<std::size_t>(u_root)];
      ++merges;
    }

    PPACD_COUNT("cluster.fc.levels", 1);
    PPACD_COUNT("cluster.fc.merges", merges);
    const double match_rate =
        static_cast<double>(merges) / static_cast<double>(level.vertex_count);
    PPACD_HIST("cluster.fc.match_rate", match_rate);
    PPACD_SPAN_ATTR(level_span, "merges", merges);
    PPACD_SPAN_ATTR(level_span, "match_rate", match_rate);
    if (observing) {
      observe::recorder().record(
          observe::Stream::kClusterLevel, obs_level_series, pass, 0,
          {static_cast<double>(level.vertex_count),
           static_cast<double>(merges), match_rate});
    }

    if (merges == 0 ||
        merges < std::max<std::int32_t>(1, level.vertex_count / 50)) {
      if (!allow_cross_community) {
        // Grouping constraints exhausted: relax them (guides, not fences).
        allow_cross_community = true;
        result.grouping_relaxed = true;
        if (merges == 0) continue;
      } else if (merges == 0) {
        break;  // fully stalled
      }
    }

    // --- Contract ------------------------------------------------------------
    std::vector<std::int32_t> compact(static_cast<std::size_t>(level.vertex_count), -1);
    std::int32_t next = 0;
    for (std::int32_t v = 0; v < level.vertex_count; ++v) {
      const std::int32_t root = uf.find(v);
      if (compact[static_cast<std::size_t>(root)] < 0) {
        compact[static_cast<std::size_t>(root)] = next++;
      }
      compact[static_cast<std::size_t>(v)] = compact[static_cast<std::size_t>(root)];
    }
    coarse.vertex_count = next;
    coarse.area.assign(static_cast<std::size_t>(next), 0.0);
    coarse.community.assign(static_cast<std::size_t>(next), 0);
    for (std::int32_t v = 0; v < level.vertex_count; ++v) {
      const std::int32_t c = compact[static_cast<std::size_t>(v)];
      coarse.area[static_cast<std::size_t>(c)] += level.area[static_cast<std::size_t>(v)];
      coarse.community[static_cast<std::size_t>(c)] =
          level.community[static_cast<std::size_t>(v)];
    }
    // Remap each edge's vertices, dropping duplicates with epoch stamps (the
    // row was unique before merging, so only collapsed clusters repeat); the
    // small surviving set is then sorted to keep rows canonical.
    coarse.edge_fixed_cost.clear();
    coarse.edge_theta.clear();
    coarse.edge_vertices.start_append(level.edge_count(),
                                      level.edge_vertices.value_count());
    for (std::size_t ei = 0; ei < level.edge_count(); ++ei) {
      seen.clear();
      verts.clear();
      for (const std::int32_t v : level.edge_vertices.row(ei)) {
        const std::int32_t c = compact[static_cast<std::size_t>(v)];
        if (!seen.test_and_set(c)) verts.push_back(c);
      }
      if (verts.size() < 2) continue;
      std::sort(verts.begin(), verts.end());
      coarse.edge_vertices.append_row(verts);
      coarse.edge_fixed_cost.push_back(level.edge_fixed_cost[ei]);
      coarse.edge_theta.push_back(level.edge_theta[ei]);
    }
    for (std::int32_t& p : projection) {
      p = compact[static_cast<std::size_t>(p)];
    }
    std::swap(level, coarse);
    ++result.levels;
  }

  // --- Final clusters + singleton accounting ---------------------------------
  result.cluster_of_cell = projection;
  result.cluster_count = level.vertex_count;
  std::vector<std::int32_t> size(static_cast<std::size_t>(level.vertex_count), 0);
  for (const std::int32_t c : projection) ++size[static_cast<std::size_t>(c)];
  for (const std::int32_t s : size) {
    if (s == 1) ++result.singleton_count;
  }

  if (options.merge_singletons && result.singleton_count > 1) {
    // Ablation of footnote 2: collapse all singletons into one cluster.
    std::int32_t sink = -1;
    std::vector<std::int32_t> remap(static_cast<std::size_t>(level.vertex_count));
    std::int32_t next = 0;
    for (std::int32_t c = 0; c < level.vertex_count; ++c) {
      if (size[static_cast<std::size_t>(c)] == 1) {
        if (sink < 0) sink = next++;
        remap[static_cast<std::size_t>(c)] = sink;
      } else {
        remap[static_cast<std::size_t>(c)] = next++;
      }
    }
    for (std::int32_t& c : result.cluster_of_cell) {
      c = remap[static_cast<std::size_t>(c)];
    }
    result.cluster_count = next;
    result.singleton_count = 0;
  }

  if (observing) {
    // Final cluster size distribution (32-bin histogram, layout
    // [lo, hi, count_0..n-1], sizes recomputed after any singleton merge).
    std::vector<std::int32_t> final_size(
        static_cast<std::size_t>(result.cluster_count), 0);
    for (const std::int32_t c : result.cluster_of_cell) {
      ++final_size[static_cast<std::size_t>(c)];
    }
    constexpr int kSizeBins = 32;
    std::vector<double> frame(2 + kSizeBins, 0.0);
    if (!final_size.empty()) {
      double lo = final_size[0];
      double hi = final_size[0];
      for (const std::int32_t s : final_size) {
        lo = std::min(lo, static_cast<double>(s));
        hi = std::max(hi, static_cast<double>(s));
      }
      if (hi <= lo) hi = lo + 1.0;
      frame[0] = lo;
      frame[1] = hi;
      for (const std::int32_t s : final_size) {
        const int bin = std::min(
            kSizeBins - 1, static_cast<int>((s - lo) / (hi - lo) * kSizeBins));
        frame[static_cast<std::size_t>(2 + bin)] += 1.0;
      }
    }
    const std::int32_t size_series =
        observe::recorder().begin_series(observe::Stream::kClusterSize);
    observe::recorder().record_frame(observe::Stream::kClusterSize,
                                     size_series, 0, kSizeBins, 0,
                                     std::move(frame));

    // Cut quality: fraction of multi-cell nets spanning >1 final cluster.
    std::int64_t cut = 0;
    std::int64_t multi = 0;
    for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
      if (nl.net(static_cast<netlist::NetId>(ni)).is_clock) continue;
      const auto members = flat.net_cells.row(ni);
      if (members.empty()) continue;
      const netlist::CellId first_cell = members[0];
      const std::int32_t first_cluster =
          result.cluster_of_cell[first_cell.index()];
      bool is_multi = false;
      bool is_cut = false;
      for (const netlist::CellId cell : members) {
        if (cell == first_cell) continue;
        is_multi = true;
        if (result.cluster_of_cell[cell.index()] !=
            first_cluster) {
          is_cut = true;
          break;
        }
      }
      if (is_multi) {
        ++multi;
        if (is_cut) ++cut;
      }
    }
    const double cut_fraction =
        multi > 0 ? static_cast<double>(cut) / static_cast<double>(multi) : 0.0;
    const std::int32_t cut_series =
        observe::recorder().begin_series(observe::Stream::kClusterCut);
    observe::recorder().record(
        observe::Stream::kClusterCut, cut_series, 0, 0,
        {cut_fraction, static_cast<double>(result.cluster_count),
         static_cast<double>(result.singleton_count),
         static_cast<double>(result.levels)});
  }

  PPACD_COUNT("scratch.epoch.resets",
              static_cast<std::int64_t>(rating.resets() + seen.resets()));
  PPACD_GAUGE_SET("cluster.fc.clusters", result.cluster_count);
  PPACD_GAUGE_SET("cluster.fc.singletons", result.singleton_count);
  PPACD_SPAN_ATTR(fc_span, "clusters", result.cluster_count);
  PPACD_SPAN_ATTR(fc_span, "levels", result.levels);
  PPACD_SPAN_ATTR(fc_span, "singletons", result.singleton_count);
  PPACD_LOG_DEBUG("fc") << nl.name() << ": " << result.cluster_count
                        << " clusters in " << result.levels << " levels, "
                        << result.singleton_count << " singletons";
  return result;
}

}  // namespace ppacd::cluster
