#include "cluster/graph.hpp"

#include <algorithm>
#include <unordered_map>

namespace ppacd::cluster {

Graph clique_expand(const netlist::Netlist& nl, int max_net_degree) {
  Graph graph;
  graph.vertex_count = static_cast<std::int32_t>(nl.cell_count());
  graph.adjacency.resize(nl.cell_count());

  // Accumulate pairwise weights; use a per-vertex map pass at the end to
  // merge parallel edges.
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const netlist::Net& net = nl.net(static_cast<netlist::NetId>(ni));
    if (net.is_clock) continue;
    std::vector<std::int32_t> cells;
    for (const netlist::PinId pid : net.pins) {
      const netlist::Pin& pin = nl.pin(pid);
      if (pin.kind == netlist::PinKind::kCellPin) cells.push_back(pin.cell);
    }
    std::sort(cells.begin(), cells.end());
    cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
    const std::size_t k = cells.size();
    if (k < 2 || k > static_cast<std::size_t>(max_net_degree)) continue;
    const double w = net.weight / static_cast<double>(k - 1);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = i + 1; j < k; ++j) {
        graph.adjacency[static_cast<std::size_t>(cells[i])].emplace_back(cells[j], w);
        graph.adjacency[static_cast<std::size_t>(cells[j])].emplace_back(cells[i], w);
      }
    }
  }

  // Merge parallel edges.
  std::unordered_map<std::int32_t, double> merged;
  for (auto& list : graph.adjacency) {
    if (list.size() < 2) continue;
    merged.clear();
    for (const auto& [u, w] : list) merged[u] += w;
    list.assign(merged.begin(), merged.end());
    std::sort(list.begin(), list.end());
  }
  for (std::int32_t v = 0; v < graph.vertex_count; ++v) {
    graph.total_edge_weight += graph.weighted_degree(v);
  }
  graph.total_edge_weight *= 0.5;
  return graph;
}

}  // namespace ppacd::cluster
