#include "cluster/graph.hpp"

#include <algorithm>

#include "netlist/flat.hpp"
#include "util/dense_scratch.hpp"

namespace ppacd::cluster {

namespace {

/// Merges parallel edges of `raw` row-by-row (accumulation in row order, so
/// sums match the pre-CSR map-based merge bit for bit) and emits rows sorted
/// by neighbor id into `out`.
void merge_rows(const util::Csr<Graph::Neighbor>& raw,
                util::Csr<Graph::Neighbor>& out) {
  const std::size_t n = raw.rows();
  util::DenseScratch<double> merged(n);
  std::vector<std::int32_t> keys;
  out.start_append(n, raw.value_count());
  for (std::size_t v = 0; v < n; ++v) {
    merged.clear();
    for (const auto& [u, w] : raw.row(v)) merged.add(u, w);
    keys.assign(merged.keys().begin(), merged.keys().end());
    std::sort(keys.begin(), keys.end());
    for (const std::int32_t u : keys) out.append({u, merged.get(u)});
    out.end_row();
  }
}

}  // namespace

Graph GraphBuilder::build() {
  Graph graph;
  graph.vertex_count = vertex_count_;
  util::Csr<Graph::Neighbor> raw;
  raw.start_append(rows_.size());
  for (const auto& row : rows_) raw.append_row(row);
  merge_rows(raw, graph.adjacency);
  for (std::int32_t v = 0; v < vertex_count_; ++v) {
    graph.total_edge_weight += graph.weighted_degree(v);
  }
  graph.total_edge_weight *= 0.5;
  return graph;
}

Graph clique_expand(const netlist::Netlist& nl, int max_net_degree) {
  Graph graph;
  graph.vertex_count = static_cast<std::int32_t>(nl.cell_count());

  const netlist::FlatConnectivity flat = netlist::FlatConnectivity::build(nl);

  // Eligible nets -> sorted unique member cells, plus the clique pair weight.
  util::Csr<std::int32_t> net_unique;
  net_unique.start_append(nl.net_count(), flat.net_cells.value_count());
  std::vector<double> net_weight;
  std::vector<std::int32_t> cells;
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const netlist::Net& net = nl.net(static_cast<netlist::NetId>(ni));
    if (net.is_clock) continue;
    const auto members = flat.net_cells.row(ni);
    cells.clear();
    // Graph vertex ids are cell ids by construction (clique expansion).
    for (const netlist::CellId c : members) cells.push_back(c.value());
    std::sort(cells.begin(), cells.end());
    cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
    const std::size_t k = cells.size();
    if (k < 2 || k > static_cast<std::size_t>(max_net_degree)) continue;
    net_unique.append_row(cells);
    net_weight.push_back(net.weight / static_cast<double>(k - 1));
  }

  // Count, then fill, the unmerged pairwise expansion: every member of a
  // k-cell net gains k-1 entries. Emission order matches the old
  // vector-of-vectors push_back order, which fixes the merge sum order below.
  util::Csr<Graph::Neighbor> raw;
  raw.start_rows(nl.cell_count());
  for (std::size_t ei = 0; ei < net_unique.rows(); ++ei) {
    const auto row = net_unique.row(ei);
    for (const std::int32_t c : row) {
      raw.add_to_row(static_cast<std::size_t>(c), row.size() - 1);
    }
  }
  raw.commit_rows();
  for (std::size_t ei = 0; ei < net_unique.rows(); ++ei) {
    const auto row = net_unique.row(ei);
    const double w = net_weight[ei];
    for (std::size_t i = 0; i < row.size(); ++i) {
      for (std::size_t j = i + 1; j < row.size(); ++j) {
        raw.push(static_cast<std::size_t>(row[i]), {row[j], w});
        raw.push(static_cast<std::size_t>(row[j]), {row[i], w});
      }
    }
  }

  merge_rows(raw, graph.adjacency);
  for (std::int32_t v = 0; v < graph.vertex_count; ++v) {
    graph.total_edge_weight += graph.weighted_degree(v);
  }
  graph.total_edge_weight *= 0.5;
  return graph;
}

}  // namespace ppacd::cluster
