/// \file overlay.hpp
/// \brief Cut-overlay clustering [6]: combine several clustering solutions
/// by partition intersection.
///
/// Two cells end up in the same overlay cluster only when *every* input
/// solution put them together, so the overlay keeps exactly the groupings
/// all solutions agree on -- high-confidence clusters from cheap diverse
/// runs (here: FC under different seeds). Tiny fragments produced by the
/// intersection can optionally be re-absorbed into their best-connected
/// neighbour.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace ppacd::cluster {

/// Intersects the given partitions (each: cell -> cluster id). Returns the
/// compact overlay assignment; `cluster_count` receives the cluster count.
/// All assignments must have the same length.
std::vector<std::int32_t> overlay_partitions(
    const std::vector<const std::vector<std::int32_t>*>& assignments,
    std::int32_t* cluster_count);

struct CutOverlayOptions {
  int solutions = 3;                    ///< FC runs to overlay
  std::int32_t target_cluster_count = 0;  ///< per-run target (0 = auto)
  /// Overlay fragments smaller than this are merged into the neighbouring
  /// overlay cluster they connect to most strongly (0 disables).
  int min_fragment_size = 3;
  std::uint64_t seed = 1;
};

struct CutOverlayResult {
  std::vector<std::int32_t> cluster_of_cell;
  std::int32_t cluster_count = 0;
  std::int32_t pre_absorb_count = 0;  ///< clusters before fragment merging
};

/// Runs `solutions` FC clusterings under different seeds and overlays them.
CutOverlayResult cut_overlay_cluster(const netlist::Netlist& netlist,
                                     const CutOverlayOptions& options);

}  // namespace ppacd::cluster
