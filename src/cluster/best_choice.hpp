/// \file best_choice.hpp
/// \brief Best-Choice clustering [Alpert et al., ISPD'05], the classic
/// priority-queue pairwise scheme referenced by the paper's related work.
///
/// Each vertex keeps its best-rated neighbour (clique-expanded score
/// d(u,v) = w(u,v) / (area_u + area_v)); a global priority queue repeatedly
/// merges the globally best pair. Lazy invalidation keeps the queue
/// manageable: entries are checked for staleness on pop, as in the
/// semi-persistent formulation. Provided as an additional baseline beyond
/// the paper's Table 5 set.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace ppacd::cluster {

struct BestChoiceOptions {
  std::int32_t target_cluster_count = 0;  ///< 0 = auto: max(8, cells/15)
  double max_cluster_area_factor = 4.0;
  int max_net_degree = 64;
  std::uint64_t seed = 1;
};

struct BestChoiceResult {
  std::vector<std::int32_t> cluster_of_cell;
  std::int32_t cluster_count = 0;
  std::int64_t merges = 0;
  std::int64_t stale_pops = 0;  ///< lazy-invalidation discards
};

/// Runs Best-Choice clustering over the netlist cells.
BestChoiceResult best_choice_cluster(const netlist::Netlist& netlist,
                                     const BestChoiceOptions& options);

}  // namespace ppacd::cluster
