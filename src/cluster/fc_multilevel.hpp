/// \file fc_multilevel.hpp
/// \brief PPA-aware enhanced multilevel First-Choice clustering
/// (Section 3.1; the open-source FC framework of TritonPart [29] extended
/// per [5] with grouping constraints and timing costs, plus the paper's new
/// hyperedge switching costs).
///
/// Rating function (Eq. 3):
///   r(u, v) = sum over shared hyperedges e of
///             (alpha * w_e + beta * t_e + gamma * s_e) / (|e| - 1)
/// where t_e is the path-timing cost and s_e the Eq. 2 switching cost.
///
/// Grouping constraints: the hierarchy-based clusters of Algorithm 2 act as
/// communities; FC only merges vertices of the same community until a pass
/// stalls, after which cross-community merges are allowed (the constraints
/// are guides, not hard partitions).
///
/// Singletons: vertices that never merge stay singleton clusters; the paper
/// found that merging them into one big cluster degrades post-route PPA
/// (footnote 2), so that behaviour is off by default but available for the
/// ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace ppacd::cluster {

struct FcOptions {
  /// Stop coarsening at this many clusters (0 = auto: max(8, cells/15);
  /// fine-grained clusters give the best seeded placements while the area
  /// cap below still lets large clusters form for V-P&R).
  std::int32_t target_cluster_count = 0;
  /// Max cluster area as a multiple of (total area / target count).
  double max_cluster_area_factor = 4.0;
  // Eq. 2/3 knobs.
  double alpha = 1.0;
  double beta = 1.0;
  double gamma = 1.0;
  double mu = 2.0;
  bool use_grouping = true;
  bool use_timing = true;
  bool use_switching = true;
  /// Hyperedges with more pins are ignored during rating (fanout guard).
  int max_net_degree = 64;
  int max_levels = 16;
  std::uint64_t seed = 1;
  /// Footnote-2 ablation: collapse all final singletons into one cluster.
  bool merge_singletons = false;
};

/// PPA information consumed by the rating function; all optional (null
/// pointers disable the corresponding term regardless of the options).
struct FcPpaInputs {
  const std::vector<double>* net_timing_cost = nullptr;   ///< t_e per net
  const std::vector<double>* net_switching = nullptr;     ///< theta_e per net
  const std::vector<std::int32_t>* grouping = nullptr;    ///< community per cell
};

struct FcResult {
  std::vector<std::int32_t> cluster_of_cell;
  std::int32_t cluster_count = 0;
  int levels = 0;
  std::int32_t singleton_count = 0;
  bool grouping_relaxed = false;  ///< cross-community merges were needed
};

/// Runs enhanced multilevel FC clustering over the netlist's cells.
FcResult fc_multilevel_cluster(const netlist::Netlist& netlist,
                               const FcPpaInputs& ppa, const FcOptions& options);

}  // namespace ppacd::cluster
