#include "cluster/community.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/telemetry.hpp"
#include "util/csr.hpp"
#include "util/dense_scratch.hpp"
#include "util/rng.hpp"

namespace ppacd::cluster {

namespace {

/// Compacts community ids to [0, count) in first-occurrence order; returns
/// count. Ids are bounded by the vertex count everywhere in this file, so a
/// dense remap table replaces the old hash map.
std::int32_t compact(std::vector<std::int32_t>& community) {
  std::int32_t max_id = -1;
  for (const std::int32_t c : community) max_id = std::max(max_id, c);
  std::vector<std::int32_t> remap(static_cast<std::size_t>(max_id + 1), -1);
  std::int32_t next = 0;
  for (std::int32_t& c : community) {
    std::int32_t& slot = remap[static_cast<std::size_t>(c)];
    if (slot < 0) slot = next++;
    c = slot;
  }
  return next;
}

/// Buckets vertices by community id (stable: members stay in ascending
/// vertex order), so per-community sweeps can stream members from one row.
void bucket_by_community(const std::vector<std::int32_t>& community,
                         std::int32_t count, util::Csr<std::int32_t>& members) {
  members.start_rows(static_cast<std::size_t>(count));
  for (const std::int32_t c : community) {
    members.add_to_row(static_cast<std::size_t>(c));
  }
  members.commit_rows();
  for (std::size_t v = 0; v < community.size(); ++v) {
    members.push(static_cast<std::size_t>(community[v]),
                 static_cast<std::int32_t>(v));
  }
}

/// One round of Louvain-style local moving on `graph`, starting from
/// `community` (modified in place). Returns true if anything moved.
bool local_move(const Graph& graph, std::vector<std::int32_t>& community,
                std::vector<double>& tot, double resolution, util::Rng& rng,
                int max_sweeps = 16) {
  const double m2 = 2.0 * graph.total_edge_weight;
  if (m2 <= 0.0) return false;
  bool any_move = false;

  std::vector<double> k(static_cast<std::size_t>(graph.vertex_count));
  for (std::int32_t v = 0; v < graph.vertex_count; ++v) {
    k[static_cast<std::size_t>(v)] = graph.weighted_degree(v);
  }

  // Candidate communities are scanned in first-touch order (== neighbor row
  // order), deterministic across stdlib versions.
  util::DenseScratch<double> weight_to(
      static_cast<std::size_t>(graph.vertex_count));
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool moved = false;
    for (const std::size_t vi : rng.permutation(static_cast<std::size_t>(graph.vertex_count))) {
      const std::int32_t v = static_cast<std::int32_t>(vi);
      const std::int32_t own = community[vi];
      weight_to.clear();
      for (const auto& [u, w] : graph.neighbors(v)) {
        if (u == v) continue;
        weight_to.add(community[static_cast<std::size_t>(u)], w);
      }
      tot[static_cast<std::size_t>(own)] -= k[vi];

      std::int32_t best = own;
      double best_gain =
          weight_to.get(own) -
          resolution * k[vi] * tot[static_cast<std::size_t>(own)] / m2;
      for (const std::int32_t c : weight_to.keys()) {
        if (c == own) continue;
        const double gain =
            weight_to.get(c) -
            resolution * k[vi] * tot[static_cast<std::size_t>(c)] / m2;
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best = c;
        }
      }
      tot[static_cast<std::size_t>(best)] += k[vi];
      if (best != own) {
        community[vi] = best;
        moved = true;
        any_move = true;
      }
    }
    if (!moved) break;
  }
  PPACD_COUNT("scratch.epoch.resets", static_cast<std::int64_t>(weight_to.resets()));
  return any_move;
}

std::vector<double> community_totals(const Graph& graph,
                                     const std::vector<std::int32_t>& community,
                                     std::int32_t count) {
  std::vector<double> tot(static_cast<std::size_t>(count), 0.0);
  for (std::int32_t v = 0; v < graph.vertex_count; ++v) {
    tot[static_cast<std::size_t>(community[static_cast<std::size_t>(v)])] +=
        graph.weighted_degree(v);
  }
  return tot;
}

/// Aggregates `graph` by `partition` (compact ids); coarse vertex = part.
/// Builds the coarse CSR directly: vertices are bucketed by part, then each
/// coarse row is accumulated in one scratch pass and emitted sorted by
/// neighbor id. Summing both directions of every fine edge yields cross
/// weights once per side and intra weights doubled — exactly the storage
/// convention (self-loops carry doubled weight).
Graph aggregate(const Graph& graph, const std::vector<std::int32_t>& partition,
                std::int32_t part_count) {
  Graph coarse;
  coarse.vertex_count = part_count;

  util::Csr<std::int32_t> members;
  bucket_by_community(partition, part_count, members);

  util::DenseScratch<double> weight_to(static_cast<std::size_t>(part_count));
  std::vector<std::int32_t> keys;
  coarse.adjacency.start_append(static_cast<std::size_t>(part_count));
  for (std::int32_t p = 0; p < part_count; ++p) {
    weight_to.clear();
    for (const std::int32_t v : members.row(static_cast<std::size_t>(p))) {
      for (const auto& [u, w] : graph.neighbors(v)) {
        weight_to.add(partition[static_cast<std::size_t>(u)], w);
      }
    }
    keys.assign(weight_to.keys().begin(), weight_to.keys().end());
    std::sort(keys.begin(), keys.end());
    for (const std::int32_t q : keys) {
      coarse.adjacency.append({q, weight_to.get(q)});
    }
    coarse.adjacency.end_row();
  }
  for (std::int32_t v = 0; v < part_count; ++v) {
    coarse.total_edge_weight += coarse.weighted_degree(v);
  }
  coarse.total_edge_weight *= 0.5;
  return coarse;
}

/// Leiden refinement: within each community, re-cluster from singletons by
/// greedy positive-gain merging restricted to the community. Returns the
/// refined partition (compact) and fills `refined_to_community`.
std::vector<std::int32_t> refine(const Graph& graph,
                                 const std::vector<std::int32_t>& community,
                                 double resolution, util::Rng& rng,
                                 std::vector<std::int32_t>& refined_to_community) {
  const double m2 = 2.0 * graph.total_edge_weight;
  std::vector<std::int32_t> refined(static_cast<std::size_t>(graph.vertex_count));
  for (std::size_t i = 0; i < refined.size(); ++i) {
    refined[i] = static_cast<std::int32_t>(i);
  }
  std::vector<double> tot(static_cast<std::size_t>(graph.vertex_count));
  std::vector<bool> is_singleton(static_cast<std::size_t>(graph.vertex_count), true);
  for (std::int32_t v = 0; v < graph.vertex_count; ++v) {
    tot[static_cast<std::size_t>(v)] = graph.weighted_degree(v);
  }

  util::DenseScratch<double> weight_to(
      static_cast<std::size_t>(graph.vertex_count));
  for (const std::size_t vi : rng.permutation(static_cast<std::size_t>(graph.vertex_count))) {
    if (!is_singleton[vi]) continue;  // only singletons move (Leiden rule)
    const std::int32_t v = static_cast<std::int32_t>(vi);
    const double kv = graph.weighted_degree(v);
    weight_to.clear();
    for (const auto& [u, w] : graph.neighbors(v)) {
      if (u == v) continue;
      if (community[static_cast<std::size_t>(u)] != community[vi]) continue;
      weight_to.add(refined[static_cast<std::size_t>(u)], w);
    }
    std::int32_t best = refined[vi];
    double best_gain = 0.0;
    for (const std::int32_t sub : weight_to.keys()) {
      if (sub == refined[vi]) continue;
      const double gain =
          weight_to.get(sub) -
          resolution * kv * tot[static_cast<std::size_t>(sub)] / m2;
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best = sub;
      }
    }
    if (best != refined[vi]) {
      tot[static_cast<std::size_t>(refined[vi])] -= kv;
      tot[static_cast<std::size_t>(best)] += kv;
      refined[vi] = best;
      is_singleton[static_cast<std::size_t>(best)] = false;
      is_singleton[vi] = false;
    }
  }

  std::vector<std::int32_t> compacted = refined;
  const std::int32_t count = compact(compacted);
  refined_to_community.assign(static_cast<std::size_t>(count), 0);
  for (std::size_t i = 0; i < compacted.size(); ++i) {
    refined_to_community[static_cast<std::size_t>(compacted[i])] = community[i];
  }
  return compacted;
}

/// Merges communities smaller than `min_size` into their best neighbour.
void absorb_small_communities(const Graph& graph,
                              std::vector<std::int32_t>& community,
                              int min_size) {
  if (min_size <= 1) return;
  std::int32_t count = compact(community);
  util::Csr<std::int32_t> members;
  util::DenseScratch<double> link(static_cast<std::size_t>(graph.vertex_count));
  for (int round = 0; round < 8; ++round) {
    std::vector<int> size(static_cast<std::size_t>(count), 0);
    for (const std::int32_t c : community) ++size[static_cast<std::size_t>(c)];
    bucket_by_community(community, count, members);
    // Each small community absorbs into the neighbour it connects to most
    // strongly; members stream in ascending vertex order, so accumulation
    // order matches the old single-pass map build.
    bool changed = false;
    std::vector<std::int32_t> target(static_cast<std::size_t>(count), -1);
    for (std::int32_t cv = 0; cv < count; ++cv) {
      if (size[static_cast<std::size_t>(cv)] >= min_size) continue;
      link.clear();
      for (const std::int32_t v : members.row(static_cast<std::size_t>(cv))) {
        for (const auto& [u, w] : graph.neighbors(v)) {
          const std::int32_t cu = community[static_cast<std::size_t>(u)];
          if (cu != cv) link.add(cu, w);
        }
      }
      double best = 0.0;
      for (const std::int32_t cu : link.keys()) {
        if (link.get(cu) > best) {
          best = link.get(cu);
          target[static_cast<std::size_t>(cv)] = cu;
        }
      }
    }
    for (std::int32_t& c : community) {
      if (size[static_cast<std::size_t>(c)] < min_size &&
          target[static_cast<std::size_t>(c)] >= 0) {
        c = target[static_cast<std::size_t>(c)];
        changed = true;
      }
    }
    count = compact(community);
    if (!changed) break;
  }
}

CommunityResult detect(const Graph& graph, const CommunityOptions& options,
                       bool use_refinement) {
  util::Rng rng(options.seed);
  CommunityResult result;
  result.community.resize(static_cast<std::size_t>(graph.vertex_count));
  for (std::size_t i = 0; i < result.community.size(); ++i) {
    result.community[i] = static_cast<std::int32_t>(i);
  }
  if (graph.vertex_count == 0) return result;

  Graph level = graph;
  // Maps original vertices to current-level vertices.
  std::vector<std::int32_t> projection = result.community;

  for (int pass = 0; pass < options.max_passes; ++pass) {
    std::vector<std::int32_t> community(static_cast<std::size_t>(level.vertex_count));
    for (std::size_t i = 0; i < community.size(); ++i) {
      community[i] = static_cast<std::int32_t>(i);
    }
    std::vector<double> tot = community_totals(level, community,
                                               level.vertex_count);
    const bool moved = local_move(level, community, tot, options.resolution, rng);
    ++result.passes;
    if (!moved && pass > 0) break;

    std::vector<std::int32_t> partition;   // aggregation partition
    std::vector<std::int32_t> part_community;  // initial community per part
    if (use_refinement) {
      partition = refine(level, community, options.resolution, rng, part_community);
    } else {
      partition = community;
      const std::int32_t count = compact(partition);
      part_community.resize(static_cast<std::size_t>(count));
      for (std::size_t i = 0; i < partition.size(); ++i) {
        part_community[static_cast<std::size_t>(partition[i])] = community[i];
      }
    }
    const std::int32_t part_count =
        static_cast<std::int32_t>(part_community.size());
    if (part_count == level.vertex_count) break;  // converged

    // Project original vertices onto the aggregation parts.
    for (std::int32_t& p : projection) {
      p = partition[static_cast<std::size_t>(p)];
    }
    level = aggregate(level, partition, part_count);

    // In Leiden, the aggregated vertices start from the communities found by
    // local moving; continue from them by collapsing once more when they
    // already merge parts. For Louvain, part == community, so this is identity.
    if (use_refinement) {
      std::vector<std::int32_t> collapse = part_community;
      const std::int32_t comm_count = compact(collapse);
      if (comm_count < part_count) {
        // One extra aggregation honours the coarse community structure.
        for (std::int32_t& p : projection) {
          p = collapse[static_cast<std::size_t>(p)];
        }
        level = aggregate(level, collapse, comm_count);
      }
    }
    if (level.vertex_count <= 1) break;
  }

  result.community = projection;
  if (options.min_community_size > 1) {
    absorb_small_communities(graph, result.community, options.min_community_size);
  }
  result.community_count = compact(result.community);
  result.modularity = modularity(graph, result.community, options.resolution);
  return result;
}

}  // namespace

double modularity(const Graph& graph, const std::vector<std::int32_t>& community,
                  double resolution) {
  assert(community.size() == static_cast<std::size_t>(graph.vertex_count));
  const double m2 = 2.0 * graph.total_edge_weight;
  if (m2 <= 0.0) return 0.0;
  std::int32_t count = 0;
  for (const std::int32_t c : community) count = std::max(count, c + 1);
  std::vector<double> in(static_cast<std::size_t>(count), 0.0);
  std::vector<double> tot(static_cast<std::size_t>(count), 0.0);
  for (std::int32_t v = 0; v < graph.vertex_count; ++v) {
    const std::int32_t cv = community[static_cast<std::size_t>(v)];
    tot[static_cast<std::size_t>(cv)] += graph.weighted_degree(v);
    for (const auto& [u, w] : graph.neighbors(v)) {
      if (community[static_cast<std::size_t>(u)] == cv) {
        in[static_cast<std::size_t>(cv)] += w;  // counted twice overall
      }
    }
  }
  double q = 0.0;
  for (std::int32_t c = 0; c < count; ++c) {
    q += in[static_cast<std::size_t>(c)] / m2 -
         resolution * (tot[static_cast<std::size_t>(c)] / m2) *
             (tot[static_cast<std::size_t>(c)] / m2);
  }
  return q;
}

CommunityResult louvain(const Graph& graph, const CommunityOptions& options) {
  return detect(graph, options, /*use_refinement=*/false);
}

CommunityResult leiden(const Graph& graph, const CommunityOptions& options) {
  return detect(graph, options, /*use_refinement=*/true);
}

}  // namespace ppacd::cluster
