#include "cluster/community.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "util/rng.hpp"

namespace ppacd::cluster {

namespace {

/// Compacts community ids to [0, count); returns count.
std::int32_t compact(std::vector<std::int32_t>& community) {
  std::unordered_map<std::int32_t, std::int32_t> remap;
  for (std::int32_t& c : community) {
    const auto [it, inserted] =
        remap.emplace(c, static_cast<std::int32_t>(remap.size()));
    c = it->second;
  }
  return static_cast<std::int32_t>(remap.size());
}

/// One round of Louvain-style local moving on `graph`, starting from
/// `community` (modified in place). Returns true if anything moved.
bool local_move(const Graph& graph, std::vector<std::int32_t>& community,
                std::vector<double>& tot, double resolution, util::Rng& rng,
                int max_sweeps = 16) {
  const double m2 = 2.0 * graph.total_edge_weight;
  if (m2 <= 0.0) return false;
  bool any_move = false;

  std::vector<double> k(static_cast<std::size_t>(graph.vertex_count));
  for (std::int32_t v = 0; v < graph.vertex_count; ++v) {
    k[static_cast<std::size_t>(v)] = graph.weighted_degree(v);
  }

  std::unordered_map<std::int32_t, double> weight_to;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool moved = false;
    for (const std::size_t vi : rng.permutation(static_cast<std::size_t>(graph.vertex_count))) {
      const std::int32_t v = static_cast<std::int32_t>(vi);
      const std::int32_t own = community[vi];
      weight_to.clear();
      for (const auto& [u, w] : graph.adjacency[vi]) {
        if (u == v) continue;
        weight_to[community[static_cast<std::size_t>(u)]] += w;
      }
      tot[static_cast<std::size_t>(own)] -= k[vi];

      std::int32_t best = own;
      double best_gain = weight_to.count(own) > 0
                             ? weight_to[own] - resolution * k[vi] *
                                                    tot[static_cast<std::size_t>(own)] / m2
                             : -resolution * k[vi] * tot[static_cast<std::size_t>(own)] / m2;
      for (const auto& [c, w] : weight_to) {
        if (c == own) continue;
        const double gain =
            w - resolution * k[vi] * tot[static_cast<std::size_t>(c)] / m2;
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best = c;
        }
      }
      tot[static_cast<std::size_t>(best)] += k[vi];
      if (best != own) {
        community[vi] = best;
        moved = true;
        any_move = true;
      }
    }
    if (!moved) break;
  }
  return any_move;
}

std::vector<double> community_totals(const Graph& graph,
                                     const std::vector<std::int32_t>& community,
                                     std::int32_t count) {
  std::vector<double> tot(static_cast<std::size_t>(count), 0.0);
  for (std::int32_t v = 0; v < graph.vertex_count; ++v) {
    tot[static_cast<std::size_t>(community[static_cast<std::size_t>(v)])] +=
        graph.weighted_degree(v);
  }
  return tot;
}

/// Aggregates `graph` by `partition` (compact ids); coarse vertex = part.
Graph aggregate(const Graph& graph, const std::vector<std::int32_t>& partition,
                std::int32_t part_count) {
  Graph coarse;
  coarse.vertex_count = part_count;
  coarse.adjacency.resize(static_cast<std::size_t>(part_count));
  std::unordered_map<std::int64_t, double> edges;  // (min,max) -> weight
  for (std::int32_t v = 0; v < graph.vertex_count; ++v) {
    const std::int32_t pv = partition[static_cast<std::size_t>(v)];
    for (const auto& [u, w] : graph.adjacency[static_cast<std::size_t>(v)]) {
      if (u < v) continue;  // visit each undirected edge once
      if (u == v) {
        // Existing self-loop (stored with doubled weight): carry it over so
        // coarse degrees stay consistent and later passes don't over-merge.
        const std::int64_t self_key =
            (static_cast<std::int64_t>(pv) << 32) | pv;
        edges[self_key] += 0.5 * w;
        continue;
      }
      const std::int32_t pu = partition[static_cast<std::size_t>(u)];
      const std::int64_t key =
          (static_cast<std::int64_t>(std::min(pv, pu)) << 32) | std::max(pv, pu);
      edges[key] += w;
    }
  }
  for (const auto& [key, w] : edges) {
    const std::int32_t a = static_cast<std::int32_t>(key >> 32);
    const std::int32_t b = static_cast<std::int32_t>(key & 0xffffffff);
    if (a == b) {
      // Self-loop: keep it so degrees stay consistent across levels.
      coarse.adjacency[static_cast<std::size_t>(a)].emplace_back(a, 2.0 * w);
    } else {
      coarse.adjacency[static_cast<std::size_t>(a)].emplace_back(b, w);
      coarse.adjacency[static_cast<std::size_t>(b)].emplace_back(a, w);
    }
  }
  for (std::int32_t v = 0; v < part_count; ++v) {
    coarse.total_edge_weight += coarse.weighted_degree(v);
  }
  coarse.total_edge_weight *= 0.5;
  return coarse;
}

/// Leiden refinement: within each community, re-cluster from singletons by
/// greedy positive-gain merging restricted to the community. Returns the
/// refined partition (compact) and fills `refined_to_community`.
std::vector<std::int32_t> refine(const Graph& graph,
                                 const std::vector<std::int32_t>& community,
                                 double resolution, util::Rng& rng,
                                 std::vector<std::int32_t>& refined_to_community) {
  const double m2 = 2.0 * graph.total_edge_weight;
  std::vector<std::int32_t> refined(static_cast<std::size_t>(graph.vertex_count));
  for (std::size_t i = 0; i < refined.size(); ++i) {
    refined[i] = static_cast<std::int32_t>(i);
  }
  std::vector<double> tot(static_cast<std::size_t>(graph.vertex_count));
  std::vector<bool> is_singleton(static_cast<std::size_t>(graph.vertex_count), true);
  for (std::int32_t v = 0; v < graph.vertex_count; ++v) {
    tot[static_cast<std::size_t>(v)] = graph.weighted_degree(v);
  }

  std::unordered_map<std::int32_t, double> weight_to;
  for (const std::size_t vi : rng.permutation(static_cast<std::size_t>(graph.vertex_count))) {
    if (!is_singleton[vi]) continue;  // only singletons move (Leiden rule)
    const std::int32_t v = static_cast<std::int32_t>(vi);
    const double kv = graph.weighted_degree(v);
    weight_to.clear();
    for (const auto& [u, w] : graph.adjacency[vi]) {
      if (u == v) continue;
      if (community[static_cast<std::size_t>(u)] != community[vi]) continue;
      weight_to[refined[static_cast<std::size_t>(u)]] += w;
    }
    std::int32_t best = refined[vi];
    double best_gain = 0.0;
    for (const auto& [sub, w] : weight_to) {
      if (sub == refined[vi]) continue;
      const double gain =
          w - resolution * kv * tot[static_cast<std::size_t>(sub)] / m2;
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best = sub;
      }
    }
    if (best != refined[vi]) {
      tot[static_cast<std::size_t>(refined[vi])] -= kv;
      tot[static_cast<std::size_t>(best)] += kv;
      refined[vi] = best;
      is_singleton[static_cast<std::size_t>(best)] = false;
      is_singleton[vi] = false;
    }
  }

  std::vector<std::int32_t> compacted = refined;
  const std::int32_t count = compact(compacted);
  refined_to_community.assign(static_cast<std::size_t>(count), 0);
  for (std::size_t i = 0; i < compacted.size(); ++i) {
    refined_to_community[static_cast<std::size_t>(compacted[i])] = community[i];
  }
  return compacted;
}

/// Merges communities smaller than `min_size` into their best neighbour.
void absorb_small_communities(const Graph& graph,
                              std::vector<std::int32_t>& community,
                              int min_size) {
  if (min_size <= 1) return;
  std::int32_t count = compact(community);
  for (int round = 0; round < 8; ++round) {
    std::vector<int> size(static_cast<std::size_t>(count), 0);
    for (const std::int32_t c : community) ++size[static_cast<std::size_t>(c)];
    bool changed = false;
    // Connection strength from each small community to others.
    std::unordered_map<std::int64_t, double> link;
    for (std::int32_t v = 0; v < graph.vertex_count; ++v) {
      const std::int32_t cv = community[static_cast<std::size_t>(v)];
      if (size[static_cast<std::size_t>(cv)] >= min_size) continue;
      for (const auto& [u, w] : graph.adjacency[static_cast<std::size_t>(v)]) {
        const std::int32_t cu = community[static_cast<std::size_t>(u)];
        if (cu == cv) continue;
        link[(static_cast<std::int64_t>(cv) << 32) | cu] += w;
      }
    }
    std::vector<std::int32_t> target(static_cast<std::size_t>(count), -1);
    std::vector<double> best(static_cast<std::size_t>(count), 0.0);
    for (const auto& [key, w] : link) {
      const std::int32_t from = static_cast<std::int32_t>(key >> 32);
      const std::int32_t to = static_cast<std::int32_t>(key & 0xffffffff);
      if (w > best[static_cast<std::size_t>(from)]) {
        best[static_cast<std::size_t>(from)] = w;
        target[static_cast<std::size_t>(from)] = to;
      }
    }
    for (std::int32_t& c : community) {
      if (size[static_cast<std::size_t>(c)] < min_size &&
          target[static_cast<std::size_t>(c)] >= 0) {
        c = target[static_cast<std::size_t>(c)];
        changed = true;
      }
    }
    count = compact(community);
    if (!changed) break;
  }
}

CommunityResult detect(const Graph& graph, const CommunityOptions& options,
                       bool use_refinement) {
  util::Rng rng(options.seed);
  CommunityResult result;
  result.community.resize(static_cast<std::size_t>(graph.vertex_count));
  for (std::size_t i = 0; i < result.community.size(); ++i) {
    result.community[i] = static_cast<std::int32_t>(i);
  }
  if (graph.vertex_count == 0) return result;

  Graph level = graph;
  // Maps original vertices to current-level vertices.
  std::vector<std::int32_t> projection = result.community;

  for (int pass = 0; pass < options.max_passes; ++pass) {
    std::vector<std::int32_t> community(static_cast<std::size_t>(level.vertex_count));
    for (std::size_t i = 0; i < community.size(); ++i) {
      community[i] = static_cast<std::int32_t>(i);
    }
    std::vector<double> tot = community_totals(level, community,
                                               level.vertex_count);
    const bool moved = local_move(level, community, tot, options.resolution, rng);
    ++result.passes;
    if (!moved && pass > 0) break;

    std::vector<std::int32_t> partition;   // aggregation partition
    std::vector<std::int32_t> part_community;  // initial community per part
    if (use_refinement) {
      partition = refine(level, community, options.resolution, rng, part_community);
    } else {
      partition = community;
      const std::int32_t count = compact(partition);
      part_community.resize(static_cast<std::size_t>(count));
      for (std::size_t i = 0; i < partition.size(); ++i) {
        part_community[static_cast<std::size_t>(partition[i])] = community[i];
      }
    }
    const std::int32_t part_count =
        static_cast<std::int32_t>(part_community.size());
    if (part_count == level.vertex_count) break;  // converged

    // Project original vertices onto the aggregation parts.
    for (std::int32_t& p : projection) {
      p = partition[static_cast<std::size_t>(p)];
    }
    level = aggregate(level, partition, part_count);

    // In Leiden, the aggregated vertices start from the communities found by
    // local moving; continue from them by collapsing once more when they
    // already merge parts. For Louvain, part == community, so this is identity.
    if (use_refinement) {
      std::vector<std::int32_t> collapse = part_community;
      const std::int32_t comm_count = compact(collapse);
      if (comm_count < part_count) {
        // One extra aggregation honours the coarse community structure.
        for (std::int32_t& p : projection) {
          p = collapse[static_cast<std::size_t>(p)];
        }
        level = aggregate(level, collapse, comm_count);
      }
    }
    if (level.vertex_count <= 1) break;
  }

  result.community = projection;
  if (options.min_community_size > 1) {
    absorb_small_communities(graph, result.community, options.min_community_size);
  }
  result.community_count = compact(result.community);
  result.modularity = modularity(graph, result.community, options.resolution);
  return result;
}

}  // namespace

double modularity(const Graph& graph, const std::vector<std::int32_t>& community,
                  double resolution) {
  assert(community.size() == static_cast<std::size_t>(graph.vertex_count));
  const double m2 = 2.0 * graph.total_edge_weight;
  if (m2 <= 0.0) return 0.0;
  std::int32_t count = 0;
  for (const std::int32_t c : community) count = std::max(count, c + 1);
  std::vector<double> in(static_cast<std::size_t>(count), 0.0);
  std::vector<double> tot(static_cast<std::size_t>(count), 0.0);
  for (std::int32_t v = 0; v < graph.vertex_count; ++v) {
    const std::int32_t cv = community[static_cast<std::size_t>(v)];
    tot[static_cast<std::size_t>(cv)] += graph.weighted_degree(v);
    for (const auto& [u, w] : graph.adjacency[static_cast<std::size_t>(v)]) {
      if (community[static_cast<std::size_t>(u)] == cv) {
        in[static_cast<std::size_t>(cv)] += w;  // counted twice overall
      }
    }
  }
  double q = 0.0;
  for (std::int32_t c = 0; c < count; ++c) {
    q += in[static_cast<std::size_t>(c)] / m2 -
         resolution * (tot[static_cast<std::size_t>(c)] / m2) *
             (tot[static_cast<std::size_t>(c)] / m2);
  }
  return q;
}

CommunityResult louvain(const Graph& graph, const CommunityOptions& options) {
  return detect(graph, options, /*use_refinement=*/false);
}

CommunityResult leiden(const Graph& graph, const CommunityOptions& options) {
  return detect(graph, options, /*use_refinement=*/true);
}

}  // namespace ppacd::cluster
