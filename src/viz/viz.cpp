#include "viz/viz.hpp"

#include <algorithm>
#include <cstdio>
#include <cmath>
#include <fstream>
#include <ostream>

namespace ppacd::viz {

namespace {

/// Distinct-ish color per cluster id (golden-angle hue walk).
std::string cluster_color(std::int32_t cluster) {
  const double hue = std::fmod(static_cast<double>(cluster) * 137.508, 360.0);
  // HSL(hue, 65%, 55%) to RGB, coarse.
  const double c = 0.65 * (1.0 - std::fabs(2.0 * 0.55 - 1.0));
  const double hp = hue / 60.0;
  const double x = c * (1.0 - std::fabs(std::fmod(hp, 2.0) - 1.0));
  double r = 0.0;
  double g = 0.0;
  double b = 0.0;
  if (hp < 1) { r = c; g = x; }
  else if (hp < 2) { r = x; g = c; }
  else if (hp < 3) { g = c; b = x; }
  else if (hp < 4) { g = x; b = c; }
  else if (hp < 5) { r = x; b = c; }
  else { r = c; b = x; }
  const double m = 0.55 - c / 2.0;
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "#%02x%02x%02x",
                static_cast<int>((r + m) * 255), static_cast<int>((g + m) * 255),
                static_cast<int>((b + m) * 255));
  return buffer;
}

}  // namespace

void write_placement_svg(const netlist::Netlist& nl,
                         const std::vector<geom::Point>& positions,
                         const geom::Rect& core, const SvgOptions& options,
                         std::ostream& out) {
  const double s = options.pixels_per_um;
  const double width = core.width() * s;
  const double height = core.height() * s;
  // SVG y grows downward; flip so the core's origin is bottom-left.
  auto px = [&](double x) { return (x - core.lx) * s; };
  auto py = [&](double y) { return height - (y - core.ly) * s; };

  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\">\n";
  out << "<rect x=\"0\" y=\"0\" width=\"" << width << "\" height=\"" << height
      << "\" fill=\"#101418\"/>\n";

  const bool colored = options.cluster_of_cell.size() == nl.cell_count();
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const liberty::LibCell& lc = nl.lib_cell_of(static_cast<netlist::CellId>(ci));
    const geom::Point& p = positions.at(ci);
    const double w = lc.width_um * s;
    const double h = lc.height_um * s;
    const std::string fill =
        colored ? cluster_color(options.cluster_of_cell[ci]) : "#5fa8d3";
    out << "<rect x=\"" << px(p.x) - w / 2 << "\" y=\"" << py(p.y) - h / 2
        << "\" width=\"" << w << "\" height=\"" << h << "\" fill=\"" << fill
        << "\" fill-opacity=\"0.85\"/>\n";
  }
  if (options.draw_ports) {
    for (std::size_t po = 0; po < nl.port_count(); ++po) {
      const geom::Point& p = nl.port(static_cast<netlist::PortId>(po)).position;
      out << "<circle cx=\"" << px(p.x) << "\" cy=\"" << py(p.y)
          << "\" r=\"" << 0.8 * s << "\" fill=\"#f2c14e\"/>\n";
    }
  }
  out << "</svg>\n";
}

bool write_placement_svg_file(const netlist::Netlist& nl,
                              const std::vector<geom::Point>& positions,
                              const geom::Rect& core, const SvgOptions& options,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_placement_svg(nl, positions, core, options, out);
  return static_cast<bool>(out);
}

void write_congestion_ppm(const route::RouteResult& result, std::ostream& out) {
  const int nx = std::max(1, result.grid_nx);
  const int ny = std::max(1, result.grid_ny);
  const std::size_t h_edges =
      static_cast<std::size_t>(nx - 1) * static_cast<std::size_t>(ny);

  // Per-GCell congestion: max utilization over incident edges.
  std::vector<double> cell_util(
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny), 0.0);
  auto bump = [&](int x, int y, double u) {
    auto& slot = cell_util[static_cast<std::size_t>(y) *
                                 static_cast<std::size_t>(nx) +
                             static_cast<std::size_t>(x)];
    slot = std::max(slot, u);
  };
  for (std::size_t e = 0; e < result.edge_utilization.size(); ++e) {
    const double u = result.edge_utilization[e];
    if (e < h_edges) {
      const int y = static_cast<int>(e) / (nx - 1);
      const int x = static_cast<int>(e) % (nx - 1);
      bump(x, y, u);
      bump(x + 1, y, u);
    } else {
      const std::size_t v = e - h_edges;
      const int x = static_cast<int>(v) / (ny - 1);
      const int y = static_cast<int>(v) % (ny - 1);
      bump(x, y, u);
      bump(x, y + 1, u);
    }
  }

  out << "P6\n" << nx << " " << ny << "\n255\n";
  for (int y = ny - 1; y >= 0; --y) {  // PPM top-down; flip to math coords
    for (int x = 0; x < nx; ++x) {
      const double u = cell_util[static_cast<std::size_t>(y) *
                                     static_cast<std::size_t>(nx) +
                                 static_cast<std::size_t>(x)];
      // Blue (0) -> green (0.5) -> red (>= 1).
      const double t = std::clamp(u, 0.0, 1.5) / 1.5;
      const unsigned char r = static_cast<unsigned char>(255.0 * std::clamp(2.0 * t - 0.6, 0.0, 1.0));
      const unsigned char g = static_cast<unsigned char>(255.0 * std::clamp(1.6 * (t < 0.5 ? t : 1.0 - t) + 0.1, 0.0, 1.0));
      const unsigned char b = static_cast<unsigned char>(255.0 * std::clamp(1.0 - 2.2 * t, 0.0, 1.0));
      out.put(static_cast<char>(r));
      out.put(static_cast<char>(g));
      out.put(static_cast<char>(b));
    }
  }
}

bool write_congestion_ppm_file(const route::RouteResult& result,
                               const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write_congestion_ppm(result, out);
  return static_cast<bool>(out);
}

}  // namespace ppacd::viz
