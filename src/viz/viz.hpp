/// \file viz.hpp
/// \brief Placement and congestion visualization (SVG / PPM exports).
///
/// Debugging a placer without pictures is miserable; these helpers dump
///   * an SVG of a placement, with cells optionally colored by cluster
///     (great for eyeballing what the seeded placement did), and
///   * a PPM heat map of the global router's edge congestion (the visual
///     counterpart of Eq. 5's Top-X% metric).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "geom/geometry.hpp"
#include "netlist/netlist.hpp"
#include "route/global_router.hpp"

namespace ppacd::viz {

struct SvgOptions {
  double pixels_per_um = 8.0;
  /// Optional cluster id per cell; colors cells by cluster when non-empty.
  std::vector<std::int32_t> cluster_of_cell;
  bool draw_ports = true;
};

/// Writes an SVG of `positions` (cell centers) inside `core`.
void write_placement_svg(const netlist::Netlist& netlist,
                         const std::vector<geom::Point>& positions,
                         const geom::Rect& core, const SvgOptions& options,
                         std::ostream& out);
bool write_placement_svg_file(const netlist::Netlist& netlist,
                              const std::vector<geom::Point>& positions,
                              const geom::Rect& core, const SvgOptions& options,
                              const std::string& path);

/// Writes a PPM (P6) heat map of per-GCell congestion from a route result:
/// blue = idle, green/yellow = busy, red = over capacity.
void write_congestion_ppm(const route::RouteResult& result, std::ostream& out);
bool write_congestion_ppm_file(const route::RouteResult& result,
                               const std::string& path);

}  // namespace ppacd::viz
