/// \file features.hpp
/// \brief Cluster-graph node features for the GNN (Section 3.2, Figure 4).
///
/// The paper's 28 features, computed on the clique expansion of a cluster's
/// sub-netlist ([15] plus the two italicized additions):
///   * design parameters (2): floorplan utilization and aspect ratio of the
///     candidate shape (slots 0 and 1, filled per candidate by the caller),
///   * cluster-level (17, broadcast to every node): #cells, #nets, #pins,
///     #nets w/ fanout 5-10, #nets w/ fanout > 10, #internal nets, #border
///     nets, total cell area, average cell degree, average net degree,
///     average clustering coefficient, density, diameter, radius, edge
///     connectivity, #greedy colors, average global efficiency,
///   * cell-level (8 scalars + type): cell area, degree, average
///     neighbourhood degree, betweenness centrality, closeness centrality,
///     degree centrality, clustering coefficient, eccentricity, and the
///     cell type as an 8-way one-hot.
/// Total node feature width: 2 + 17 + 8 + 8 = 35, matching the paper's
/// convolution input dimension.
///
/// Distance-based metrics (betweenness, closeness, eccentricity, diameter,
/// radius, global efficiency) use BFS/Brandes from a bounded sample of
/// sources on large graphs; edge connectivity uses the min-degree bound.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"

namespace ppacd::features {

inline constexpr int kFeatureDim = 35;
inline constexpr int kShapeUtilSlot = 0;
inline constexpr int kShapeAspectSlot = 1;

/// Node features plus the normalized adjacency the GNN convolves over.
struct ClusterGraph {
  std::int32_t node_count = 0;
  /// Row-major node_count x kFeatureDim; slots 0/1 left zero for the shape.
  std::vector<double> node_features;
  /// Symmetric-normalized adjacency with self-loops:
  /// A_hat = D^-1/2 (A + I) D^-1/2, stored per-row as (col, weight).
  std::vector<std::vector<std::pair<std::int32_t, double>>> adjacency;

  double& feature(std::int32_t node, int slot) {
    return node_features[static_cast<std::size_t>(node) * kFeatureDim +
                         static_cast<std::size_t>(slot)];
  }
  double feature(std::int32_t node, int slot) const {
    return node_features[static_cast<std::size_t>(node) * kFeatureDim +
                         static_cast<std::size_t>(slot)];
  }
};

struct FeatureOptions {
  int bfs_samples = 24;        ///< sources for distance-based metrics
  int max_net_degree = 64;     ///< clique-expansion fanout guard
  std::uint64_t seed = 1;
};

/// Extracts the cluster graph and its node features from a sub-netlist.
ClusterGraph extract_cluster_graph(const netlist::Netlist& subnetlist,
                                   const FeatureOptions& options);

/// Writes the candidate shape into feature slots 0/1 of every node.
void apply_shape_features(ClusterGraph& graph, double utilization,
                          double aspect_ratio);

}  // namespace ppacd::features
