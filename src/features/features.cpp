#include "features/features.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "cluster/graph.hpp"
#include "util/rng.hpp"

namespace ppacd::features {

namespace {

/// Cell-type one-hot classes (8-way).
int type_class(liberty::Function function) {
  using liberty::Function;
  switch (function) {
    case Function::kInv: return 0;
    case Function::kBuf: return 1;
    case Function::kNand2:
    case Function::kNand3:
    case Function::kNor2: return 2;
    case Function::kAoi21:
    case Function::kOai21: return 3;
    case Function::kAnd2:
    case Function::kOr2: return 4;
    case Function::kXor2:
    case Function::kHalfAdder:
    case Function::kFullAdder: return 5;
    case Function::kMux2: return 6;
    case Function::kDff:
    case Function::kTieHi:
    case Function::kTieLo: return 7;
  }
  return 7;
}

/// Unweighted adjacency (neighbor lists) derived from the clique expansion.
struct SimpleGraph {
  std::int32_t n = 0;
  std::vector<std::vector<std::int32_t>> neighbors;
};

SimpleGraph to_simple(const cluster::Graph& graph) {
  SimpleGraph simple;
  simple.n = graph.vertex_count;
  simple.neighbors.resize(static_cast<std::size_t>(graph.vertex_count));
  for (std::int32_t v = 0; v < graph.vertex_count; ++v) {
    for (const auto& [u, w] : graph.neighbors(v)) {
      (void)w;
      if (u != v) simple.neighbors[static_cast<std::size_t>(v)].push_back(u);
    }
  }
  return simple;
}

/// BFS distances from `source` (-1 = unreachable).
std::vector<int> bfs(const SimpleGraph& g, std::int32_t source) {
  std::vector<int> dist(static_cast<std::size_t>(g.n), -1);
  std::queue<std::int32_t> queue;
  dist[static_cast<std::size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const std::int32_t v = queue.front();
    queue.pop();
    for (const std::int32_t u : g.neighbors[static_cast<std::size_t>(v)]) {
      if (dist[static_cast<std::size_t>(u)] < 0) {
        dist[static_cast<std::size_t>(u)] = dist[static_cast<std::size_t>(v)] + 1;
        queue.push(u);
      }
    }
  }
  return dist;
}

/// Brandes betweenness accumulation from one source.
void brandes_from(const SimpleGraph& g, std::int32_t source,
                  std::vector<double>& betweenness) {
  const std::size_t n = static_cast<std::size_t>(g.n);
  std::vector<std::vector<std::int32_t>> pred(n);
  std::vector<double> sigma(n, 0.0);
  std::vector<int> dist(n, -1);
  std::vector<std::int32_t> order;
  order.reserve(n);

  sigma[static_cast<std::size_t>(source)] = 1.0;
  dist[static_cast<std::size_t>(source)] = 0;
  std::queue<std::int32_t> queue;
  queue.push(source);
  while (!queue.empty()) {
    const std::int32_t v = queue.front();
    queue.pop();
    order.push_back(v);
    for (const std::int32_t u : g.neighbors[static_cast<std::size_t>(v)]) {
      if (dist[static_cast<std::size_t>(u)] < 0) {
        dist[static_cast<std::size_t>(u)] = dist[static_cast<std::size_t>(v)] + 1;
        queue.push(u);
      }
      if (dist[static_cast<std::size_t>(u)] ==
          dist[static_cast<std::size_t>(v)] + 1) {
        sigma[static_cast<std::size_t>(u)] += sigma[static_cast<std::size_t>(v)];
        pred[static_cast<std::size_t>(u)].push_back(v);
      }
    }
  }
  std::vector<double> delta(n, 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::int32_t w = *it;
    for (const std::int32_t v : pred[static_cast<std::size_t>(w)]) {
      delta[static_cast<std::size_t>(v)] +=
          sigma[static_cast<std::size_t>(v)] / sigma[static_cast<std::size_t>(w)] *
          (1.0 + delta[static_cast<std::size_t>(w)]);
    }
    if (w != source) betweenness[static_cast<std::size_t>(w)] += delta[static_cast<std::size_t>(w)];
  }
}

}  // namespace

void apply_shape_features(ClusterGraph& graph, double utilization,
                          double aspect_ratio) {
  for (std::int32_t v = 0; v < graph.node_count; ++v) {
    graph.feature(v, kShapeUtilSlot) = utilization;
    graph.feature(v, kShapeAspectSlot) = aspect_ratio;
  }
}

ClusterGraph extract_cluster_graph(const netlist::Netlist& nl,
                                   const FeatureOptions& options) {
  ClusterGraph out;
  out.node_count = static_cast<std::int32_t>(nl.cell_count());
  out.node_features.assign(
      static_cast<std::size_t>(out.node_count) * kFeatureDim, 0.0);
  if (out.node_count == 0) return out;

  const cluster::Graph graph = cluster::clique_expand(nl, options.max_net_degree);
  const SimpleGraph simple = to_simple(graph);
  const std::size_t n = static_cast<std::size_t>(out.node_count);

  // --- Normalized adjacency for the conv: D^-1/2 (A + I) D^-1/2 -------------
  std::vector<double> degree_w(n, 1.0);  // +1 self-loop
  for (std::size_t v = 0; v < n; ++v) {
    for (const auto& [u, w] : graph.neighbors(static_cast<std::int32_t>(v))) {
      if (u != static_cast<std::int32_t>(v)) degree_w[v] += w;
    }
  }
  out.adjacency.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    out.adjacency[v].emplace_back(static_cast<std::int32_t>(v),
                                  1.0 / degree_w[v]);
    for (const auto& [u, w] : graph.neighbors(static_cast<std::int32_t>(v))) {
      if (u == static_cast<std::int32_t>(v)) continue;
      out.adjacency[v].emplace_back(
          u, w / std::sqrt(degree_w[v] * degree_w[static_cast<std::size_t>(u)]));
    }
  }

  // --- Net statistics ---------------------------------------------------------
  std::size_t net_count = 0;
  std::size_t pin_count = nl.pin_count();
  std::size_t fan5_10 = 0;
  std::size_t fan_gt10 = 0;
  std::size_t internal_nets = 0;
  std::size_t border_nets = 0;
  double net_degree_sum = 0.0;
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const netlist::Net& net = nl.net(static_cast<netlist::NetId>(ni));
    if (net.is_clock) continue;
    ++net_count;
    const std::size_t fanout = net.pins.size() > 0 ? net.pins.size() - 1 : 0;
    if (fanout >= 5 && fanout <= 10) ++fan5_10;
    if (fanout > 10) ++fan_gt10;
    net_degree_sum += static_cast<double>(net.pins.size());
    bool border = false;
    for (const netlist::PinId pid : net.pins) {
      if (nl.pin(pid).kind == netlist::PinKind::kTopPort) border = true;
    }
    if (border) ++border_nets;
    else ++internal_nets;
  }

  // --- Per-node structural metrics --------------------------------------------
  std::vector<double> degree(n, 0.0);
  double degree_sum = 0.0;
  std::size_t edge_count = 0;
  for (std::size_t v = 0; v < n; ++v) {
    degree[v] = static_cast<double>(simple.neighbors[v].size());
    degree_sum += degree[v];
    edge_count += simple.neighbors[v].size();
  }
  edge_count /= 2;

  // Clustering coefficient (exact, with degree cap for cost).
  std::vector<double> clustering(n, 0.0);
  {
    std::unordered_set<std::int64_t> edges;
    for (std::size_t v = 0; v < n; ++v) {
      for (const std::int32_t u : simple.neighbors[v]) {
        edges.insert((static_cast<std::int64_t>(std::min<std::int32_t>(
                          static_cast<std::int32_t>(v), u))
                      << 32) |
                     std::max<std::int32_t>(static_cast<std::int32_t>(v), u));
      }
    }
    constexpr std::size_t kDegreeCap = 40;
    for (std::size_t v = 0; v < n; ++v) {
      const auto& nb = simple.neighbors[v];
      if (nb.size() < 2 || nb.size() > kDegreeCap) continue;
      int links = 0;
      for (std::size_t i = 0; i < nb.size(); ++i) {
        for (std::size_t j = i + 1; j < nb.size(); ++j) {
          const std::int64_t key =
              (static_cast<std::int64_t>(std::min(nb[i], nb[j])) << 32) |
              std::max(nb[i], nb[j]);
          if (edges.count(key) > 0) ++links;
        }
      }
      clustering[v] =
          2.0 * links /
          (static_cast<double>(nb.size()) * static_cast<double>(nb.size() - 1));
    }
  }

  // Average neighbourhood degree.
  std::vector<double> avg_nb_degree(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    if (simple.neighbors[v].empty()) continue;
    double sum = 0.0;
    for (const std::int32_t u : simple.neighbors[v]) {
      sum += degree[static_cast<std::size_t>(u)];
    }
    avg_nb_degree[v] = sum / static_cast<double>(simple.neighbors[v].size());
  }

  // Distance-based metrics from sampled BFS sources.
  util::Rng rng(options.seed);
  const int sample_count =
      std::min<int>(options.bfs_samples, static_cast<int>(n));
  std::vector<std::size_t> sources = rng.permutation(n);
  sources.resize(static_cast<std::size_t>(sample_count));

  std::vector<double> closeness_sum(n, 0.0);
  std::vector<int> closeness_cnt(n, 0);
  std::vector<int> eccentricity(n, 0);
  std::vector<double> betweenness(n, 0.0);
  double efficiency_sum = 0.0;
  std::size_t efficiency_pairs = 0;
  for (const std::size_t s : sources) {
    const auto dist = bfs(simple, static_cast<std::int32_t>(s));
    for (std::size_t v = 0; v < n; ++v) {
      if (dist[v] <= 0) continue;
      closeness_sum[v] += dist[v];
      ++closeness_cnt[v];
      eccentricity[v] = std::max(eccentricity[v], dist[v]);
      efficiency_sum += 1.0 / dist[v];
      ++efficiency_pairs;
    }
    brandes_from(simple, static_cast<std::int32_t>(s), betweenness);
  }
  int diameter = 0;
  int radius = 0;
  {
    int min_ecc = std::numeric_limits<int>::max();
    for (std::size_t v = 0; v < n; ++v) {
      diameter = std::max(diameter, eccentricity[v]);
      if (eccentricity[v] > 0) min_ecc = std::min(min_ecc, eccentricity[v]);
    }
    radius = min_ecc == std::numeric_limits<int>::max() ? 0 : min_ecc;
  }
  const double global_efficiency =
      efficiency_pairs > 0 ? efficiency_sum / static_cast<double>(efficiency_pairs) : 0.0;
  // Betweenness scaled by the sampling fraction (Brandes approximation).
  const double scale =
      sample_count > 0 ? static_cast<double>(n) / static_cast<double>(sample_count)
                       : 1.0;
  for (double& b : betweenness) b *= scale;
  const double bc_norm =
      n > 2 ? (static_cast<double>(n) - 1) * static_cast<double>(n - 2) : 1.0;

  // Greedy coloring (largest-degree-first).
  int colors_used = 0;
  {
    std::vector<std::int32_t> order_by_degree(n);
    for (std::size_t i = 0; i < n; ++i) order_by_degree[i] = static_cast<std::int32_t>(i);
    std::sort(order_by_degree.begin(), order_by_degree.end(),
              [&](std::int32_t a, std::int32_t b) {
                return degree[static_cast<std::size_t>(a)] >
                       degree[static_cast<std::size_t>(b)];
              });
    std::vector<int> color(n, -1);
    std::vector<bool> used;
    for (const std::int32_t v : order_by_degree) {
      used.assign(static_cast<std::size_t>(colors_used) + 1, false);
      for (const std::int32_t u : simple.neighbors[static_cast<std::size_t>(v)]) {
        const int cu = color[static_cast<std::size_t>(u)];
        if (cu >= 0 && cu < static_cast<int>(used.size())) used[static_cast<std::size_t>(cu)] = true;
      }
      int c = 0;
      while (c < static_cast<int>(used.size()) && used[static_cast<std::size_t>(c)]) ++c;
      color[static_cast<std::size_t>(v)] = c;
      colors_used = std::max(colors_used, c + 1);
    }
  }

  // Cluster-level aggregates.
  double cluster_avg_clustering = 0.0;
  for (const double c : clustering) cluster_avg_clustering += c;
  cluster_avg_clustering /= static_cast<double>(n);
  const double density =
      n > 1 ? 2.0 * static_cast<double>(edge_count) /
                  (static_cast<double>(n) * (static_cast<double>(n) - 1.0))
            : 0.0;
  // Edge connectivity: min-degree bound (exact max-flow is O(n*m^2), far too
  // costly for a per-cluster feature; min degree is the standard surrogate).
  double edge_connectivity = n > 0 ? degree[0] : 0.0;
  for (const double d : degree) edge_connectivity = std::min(edge_connectivity, d);

  // --- Assemble ---------------------------------------------------------------
  // Slot map: 0 util, 1 AR | 2..18 cluster-level | 19..26 cell scalars |
  // 27..34 type one-hot.
  const double cluster_level[17] = {
      static_cast<double>(n),
      static_cast<double>(net_count),
      static_cast<double>(pin_count),
      static_cast<double>(fan5_10),
      static_cast<double>(fan_gt10),
      static_cast<double>(internal_nets),
      static_cast<double>(border_nets),
      nl.total_cell_area(),
      n > 0 ? degree_sum / static_cast<double>(n) : 0.0,
      net_count > 0 ? net_degree_sum / static_cast<double>(net_count) : 0.0,
      cluster_avg_clustering,
      density,
      static_cast<double>(diameter),
      static_cast<double>(radius),
      edge_connectivity,
      static_cast<double>(colors_used),
      global_efficiency,
  };

  for (std::size_t v = 0; v < n; ++v) {
    const std::int32_t node = static_cast<std::int32_t>(v);
    for (int k = 0; k < 17; ++k) out.feature(node, 2 + k) = cluster_level[k];
    const liberty::LibCell& lc = nl.lib_cell_of(static_cast<netlist::CellId>(v));
    out.feature(node, 19) = lc.area_um2();
    out.feature(node, 20) = degree[v];
    out.feature(node, 21) = avg_nb_degree[v];
    out.feature(node, 22) = betweenness[v] / bc_norm;
    out.feature(node, 23) =
        closeness_cnt[v] > 0 ? static_cast<double>(closeness_cnt[v]) / closeness_sum[v]
                             : 0.0;
    out.feature(node, 24) = n > 1 ? degree[v] / (static_cast<double>(n) - 1.0) : 0.0;
    out.feature(node, 25) = clustering[v];
    out.feature(node, 26) = static_cast<double>(eccentricity[v]);
    out.feature(node, 27 + type_class(lc.function)) = 1.0;
  }
  return out;
}

}  // namespace ppacd::features
