#include "hier/rent.hpp"

#include <cassert>
#include <cmath>
#include <unordered_map>

namespace ppacd::hier {

std::vector<RentTerms> rent_terms(const netlist::Netlist& nl,
                                  const std::vector<std::int32_t>& assignment,
                                  std::int32_t cluster_count) {
  assert(assignment.size() == nl.cell_count());
  std::vector<RentTerms> terms(static_cast<std::size_t>(cluster_count));
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const std::int32_t c = assignment[ci];
    assert(c >= 0 && c < cluster_count);
    ++terms[static_cast<std::size_t>(c)].size;
  }

  // Per net: pins per touched cluster; external if >1 cluster or any port.
  std::unordered_map<std::int32_t, std::int64_t> pins_in_cluster;
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const netlist::Net& net = nl.net(static_cast<netlist::NetId>(ni));
    if (net.is_clock) continue;
    pins_in_cluster.clear();
    bool touches_port = false;
    for (const netlist::PinId pid : net.pins) {
      const netlist::Pin& pin = nl.pin(pid);
      if (pin.kind == netlist::PinKind::kTopPort) {
        touches_port = true;
        continue;
      }
      ++pins_in_cluster[assignment[pin.cell.index()]];
    }
    const bool external = touches_port || pins_in_cluster.size() > 1;
    // lint:allow(unordered-iter): integer counters per cluster, order-free
    for (const auto& [cluster, pins] : pins_in_cluster) {
      RentTerms& t = terms[static_cast<std::size_t>(cluster)];
      if (external) {
        ++t.external_edges;
        t.external_pins += pins;
      } else {
        t.internal_pins += pins;
      }
    }
  }

  for (RentTerms& t : terms) {
    const std::int64_t denom = t.internal_pins + t.external_pins;
    if (t.size <= 1 || denom == 0 || t.external_edges == 0) {
      // Degenerate: single-vertex clusters have ln|c|=0; clusters with no
      // external edges would give R = -inf. Both get the neutral value 1.
      t.rent = 1.0;
      continue;
    }
    t.rent = std::log(static_cast<double>(t.external_edges) /
                      static_cast<double>(denom)) /
                 std::log(static_cast<double>(t.size)) +
             1.0;
  }
  return terms;
}

double average_rent(const netlist::Netlist& nl,
                    const std::vector<std::int32_t>& assignment,
                    std::int32_t cluster_count) {
  const auto terms = rent_terms(nl, assignment, cluster_count);
  double weighted = 0.0;
  std::int64_t total = 0;
  for (const RentTerms& t : terms) {
    weighted += t.rent * static_cast<double>(t.size);
    total += t.size;
  }
  return total > 0 ? weighted / static_cast<double>(total) : 1.0;
}

}  // namespace ppacd::hier
