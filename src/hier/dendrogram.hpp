/// \file dendrogram.hpp
/// \brief Hierarchy-based clustering (Algorithm 2, Figure 2).
///
/// The logical hierarchy tree T is re-interpreted as the output of a
/// hierarchical clustering and turned into a dendrogram T_den:
///   * every module becomes a node; modules that directly contain cells and
///     also have child modules get an implicit leaf child holding those
///     cells (so every cell lives under exactly one leaf),
///   * leaves shallower than level_max are replicated downward until every
///     leaf sits at level_max (Alg. 2 lines 7-12),
///   * each level k then induces a clustering (the subtrees rooted at
///     level-k nodes); the clustering with the lowest weighted-average Rent
///     exponent (Eq. 1) wins.
///
/// Deviation from the pseudo-code: level 0 (the root) is skipped because a
/// single all-inclusive cluster trivially minimizes Eq. 1; candidate levels
/// are k in [1, level_max - 1], each required to have at least two clusters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace ppacd::hier {

/// One dendrogram node.
struct DendroNode {
  std::int32_t id = -1;
  std::int32_t parent = -1;
  std::vector<std::int32_t> children;
  netlist::ModuleId module = netlist::kInvalidId;  ///< source module; kInvalidId for replicas
  int level = 0;
  bool replica = false;  ///< created by levelization
  /// Cells directly attached to this node (leaves only).
  std::vector<netlist::CellId> cells;
};

/// The levelized dendrogram.
class Dendrogram {
 public:
  /// Builds (and levelizes) the dendrogram of `netlist`'s module tree.
  explicit Dendrogram(const netlist::Netlist& netlist);

  const std::vector<DendroNode>& nodes() const { return nodes_; }
  int level_max() const { return level_max_; }
  std::size_t replicated_count() const { return replicated_count_; }

  /// Clustering induced by level `k`: returns cell -> cluster id and the
  /// cluster count. Every cell's cluster is the ancestor of its leaf at
  /// level min(k, leaf level) -- after levelization all leaves are at
  /// level_max, so this is simply the level-k ancestor.
  std::vector<std::int32_t> clustering_at(int k, std::int32_t* cluster_count) const;

 private:
  std::int32_t add_node(netlist::ModuleId module, std::int32_t parent);

  const netlist::Netlist* nl_;
  std::vector<DendroNode> nodes_;
  int level_max_ = 0;
  std::size_t replicated_count_ = 0;
  /// Leaf node of every cell.
  std::vector<std::int32_t> leaf_of_cell_;
};

/// Result of hierarchy-based clustering (Algorithm 2).
struct HierClusteringResult {
  std::vector<std::int32_t> cluster_of_cell;  ///< cluster id per cell
  std::int32_t cluster_count = 0;
  int chosen_level = -1;
  /// R_avg of every candidate level (index = level), NaN where skipped;
  /// kept for diagnostics and the hierarchy example.
  std::vector<double> level_rent;
};

/// Runs Algorithm 2 on the netlist. Designs without hierarchy (a bare root)
/// return a single cluster.
HierClusteringResult hierarchy_clustering(const netlist::Netlist& netlist);

}  // namespace ppacd::hier
