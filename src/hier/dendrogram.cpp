#include "hier/dendrogram.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "hier/rent.hpp"
#include "util/logging.hpp"

namespace ppacd::hier {

std::int32_t Dendrogram::add_node(netlist::ModuleId module, std::int32_t parent) {
  DendroNode node;
  node.id = static_cast<std::int32_t>(nodes_.size());
  node.parent = parent;
  node.module = module;
  node.level = parent < 0 ? 0 : nodes_[static_cast<std::size_t>(parent)].level + 1;
  if (parent >= 0) nodes_[static_cast<std::size_t>(parent)].children.push_back(node.id);
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

Dendrogram::Dendrogram(const netlist::Netlist& netlist) : nl_(&netlist) {
  const netlist::Netlist& nl = netlist;

  // 1. Mirror the module tree; give every cell-holding internal module an
  //    implicit leaf child so cells live only at leaves.
  std::vector<std::int32_t> node_of_module(nl.module_count(), -1);
  // Module tree ids are topologically ordered (parents created first).
  for (std::size_t mi = 0; mi < nl.module_count(); ++mi) {
    const netlist::Module& mod = nl.module(static_cast<netlist::ModuleId>(mi));
    const std::int32_t parent =
        mod.parent == netlist::kInvalidId ? -1 : node_of_module[mod.parent.index()];
    node_of_module[mi] = add_node(mod.id, parent);
  }
  leaf_of_cell_.assign(nl.cell_count(), -1);
  for (std::size_t mi = 0; mi < nl.module_count(); ++mi) {
    const netlist::Module& mod = nl.module(static_cast<netlist::ModuleId>(mi));
    if (mod.cells.empty()) continue;
    std::int32_t holder = node_of_module[mi];
    if (!mod.children.empty()) {
      // Implicit leaf child for directly-instantiated cells.
      holder = add_node(netlist::kInvalidId, node_of_module[mi]);
    }
    nodes_[static_cast<std::size_t>(holder)].cells = mod.cells;
    for (const netlist::CellId cid : mod.cells) {
      leaf_of_cell_[cid.index()] = holder;
    }
  }

  // 2. level_max = deepest leaf.
  level_max_ = 0;
  for (const DendroNode& node : nodes_) {
    if (node.children.empty()) level_max_ = std::max(level_max_, node.level);
  }

  // 3. Levelize: replicate shallow leaves downward (Alg. 2 lines 7-12).
  const std::size_t original_count = nodes_.size();
  for (std::size_t i = 0; i < original_count; ++i) {
    if (!nodes_[i].children.empty() || nodes_[i].level >= level_max_) continue;
    std::int32_t cursor = static_cast<std::int32_t>(i);
    const std::vector<netlist::CellId> cells = std::move(nodes_[i].cells);
    nodes_[i].cells.clear();
    for (int k = nodes_[i].level; k < level_max_; ++k) {
      const std::int32_t copy = add_node(nodes_[i].module, cursor);
      nodes_[static_cast<std::size_t>(copy)].replica = true;
      ++replicated_count_;
      cursor = copy;
    }
    nodes_[static_cast<std::size_t>(cursor)].cells = cells;
    for (const netlist::CellId cid : cells) {
      leaf_of_cell_[cid.index()] = cursor;
    }
  }
}

std::vector<std::int32_t> Dendrogram::clustering_at(
    int k, std::int32_t* cluster_count) const {
  assert(k >= 0 && k <= level_max_);
  // Map every node to its level-k ancestor, then compact the used ids.
  std::vector<std::int32_t> anchor(nodes_.size(), -1);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::int32_t cursor = static_cast<std::int32_t>(i);
    while (cursor >= 0 && nodes_[static_cast<std::size_t>(cursor)].level > k) {
      cursor = nodes_[static_cast<std::size_t>(cursor)].parent;
    }
    anchor[i] = cursor;
  }
  std::vector<std::int32_t> compact(nodes_.size(), -1);
  std::int32_t next = 0;
  std::vector<std::int32_t> result(leaf_of_cell_.size(), -1);
  for (std::size_t ci = 0; ci < leaf_of_cell_.size(); ++ci) {
    const std::int32_t leaf = leaf_of_cell_[ci];
    assert(leaf >= 0);
    const std::int32_t a = anchor[static_cast<std::size_t>(leaf)];
    assert(a >= 0);
    if (compact[static_cast<std::size_t>(a)] < 0) {
      compact[static_cast<std::size_t>(a)] = next++;
    }
    result[ci] = compact[static_cast<std::size_t>(a)];
  }
  if (cluster_count != nullptr) *cluster_count = next;
  return result;
}

HierClusteringResult hierarchy_clustering(const netlist::Netlist& nl) {
  HierClusteringResult result;
  if (!nl.has_hierarchy() || nl.cell_count() == 0) {
    result.cluster_of_cell.assign(nl.cell_count(), 0);
    result.cluster_count = nl.cell_count() > 0 ? 1 : 0;
    result.chosen_level = 0;
    return result;
  }

  const Dendrogram dendro(nl);
  const int level_max = dendro.level_max();
  result.level_rent.assign(static_cast<std::size_t>(level_max) + 1,
                           std::numeric_limits<double>::quiet_NaN());

  double best = std::numeric_limits<double>::infinity();
  // Candidate levels k in [1, level_max - 1]; see header for why the root
  // level is skipped. A two-level tree (leaves directly under root) has no
  // interior level, so fall back to the leaf level itself.
  const int lo = 1;
  const int hi = std::max(1, level_max - 1);
  for (int k = lo; k <= hi; ++k) {
    std::int32_t count = 0;
    const auto assignment = dendro.clustering_at(k, &count);
    if (count < 2) continue;
    const double r = average_rent(nl, assignment, count);
    result.level_rent[static_cast<std::size_t>(k)] = r;
    if (r < best) {
      best = r;
      result.cluster_of_cell = assignment;
      result.cluster_count = count;
      result.chosen_level = k;
    }
  }
  if (result.chosen_level < 0) {
    // Degenerate tree: everything in one cluster.
    result.cluster_of_cell.assign(nl.cell_count(), 0);
    result.cluster_count = 1;
    result.chosen_level = 0;
  }
  PPACD_LOG_DEBUG("hier") << nl.name() << ": chose level " << result.chosen_level
                          << " with " << result.cluster_count
                          << " clusters (R_avg " << best << ")";
  return result;
}

}  // namespace ppacd::hier
