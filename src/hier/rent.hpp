/// \file rent.hpp
/// \brief Weighted-average Rent exponent of a clustering (Equation 1).
///
/// For cluster c_i:  R_i = ln(E_i / (Int_i + Ext_i)) / ln(|c_i|) + 1, where
/// E_i counts hyperedges leaving the cluster, Ext_i counts the cluster's
/// pins on those leaving hyperedges, and Int_i counts its pins on fully
/// internal hyperedges. Top-level port pins are always external. Lower is
/// better (more pins stay inside relative to the cut).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace ppacd::hier {

/// Per-cluster breakdown used by Eq. 1.
struct RentTerms {
  std::int64_t external_edges = 0;  ///< E(c_i)
  std::int64_t external_pins = 0;   ///< Ext(c_i)
  std::int64_t internal_pins = 0;   ///< Int(c_i)
  std::int64_t size = 0;            ///< |c_i|
  double rent = 1.0;                ///< R_{c_i}; 1.0 for degenerate clusters
};

/// Computes the per-cluster Rent terms for `assignment` (cell -> cluster id
/// in [0, cluster_count)). Clock nets are ignored, as in clustering.
std::vector<RentTerms> rent_terms(const netlist::Netlist& netlist,
                                  const std::vector<std::int32_t>& assignment,
                                  std::int32_t cluster_count);

/// Weighted-average Rent exponent R_avg of Eq. 1.
double average_rent(const netlist::Netlist& netlist,
                    const std::vector<std::int32_t>& assignment,
                    std::int32_t cluster_count);

}  // namespace ppacd::hier
