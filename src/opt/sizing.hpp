/// \file sizing.hpp
/// \brief Critical-path gate sizing (repair_timing substitute).
///
/// Walks the worst timing paths and upsizes undersized drivers: a cell on a
/// violating path whose delay is dominated by drive resistance x load is
/// swapped for the next drive strength in its family (INV_X1 -> X2 -> X4,
/// BUF likewise). Iterates STA + sizing until no upgrade helps or the
/// round budget is exhausted. Only footprint-compatible swaps are made, so
/// the netlist stays structurally identical (area grows slightly;
/// re-legalize afterwards if exact legality matters).
#pragma once

#include <vector>

#include "geom/geometry.hpp"
#include "netlist/netlist.hpp"

namespace ppacd::opt {

struct SizingOptions {
  int max_rounds = 3;
  int paths_per_round = 50;      ///< worst paths examined each round
  double min_gain_ps = 1.0;      ///< predicted delay gain to accept a swap
  double clock_period_ps = 1000.0;
};

struct SizingResult {
  int upsized_cells = 0;
  int rounds = 0;
  double wns_before_ps = 0.0;
  double wns_after_ps = 0.0;
  double tns_before_ns = 0.0;
  double tns_after_ns = 0.0;
};

/// Upsizes drivers on violating paths. `positions` is used for the wire
/// load model (may be empty for ideal wires... pass the placed positions
/// for meaningful results).
SizingResult resize_critical_cells(netlist::Netlist& netlist,
                                   const std::vector<geom::Point>& positions,
                                   const SizingOptions& options);

}  // namespace ppacd::opt
