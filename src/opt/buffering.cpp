#include "opt/buffering.hpp"

#include <algorithm>
#include <cassert>

#include "util/logging.hpp"

namespace ppacd::opt {

namespace {

using netlist::CellId;
using netlist::NetId;
using netlist::Netlist;
using netlist::PinId;

geom::Point pin_position(const Netlist& nl,
                         const std::vector<geom::Point>& positions, PinId pid) {
  const netlist::Pin& pin = nl.pin(pid);
  if (pin.kind == netlist::PinKind::kTopPort) return nl.port(pin.port).position;
  return positions.at(pin.cell.index());
}

}  // namespace

BufferingResult buffer_high_fanout(Netlist& nl,
                                   std::vector<geom::Point>& positions,
                                   const BufferingOptions& options) {
  BufferingResult result;
  const auto buffer_id = nl.library().find(options.buffer_cell);
  assert(buffer_id.has_value());

  // Snapshot the net count: nets created by this pass must not be revisited.
  const std::size_t original_nets = nl.net_count();
  int serial = 0;
  for (std::size_t ni = 0; ni < original_nets; ++ni) {
    const NetId net_id = static_cast<NetId>(ni);
    if (nl.net(net_id).is_clock) continue;

    // Collect sink pins (everything but the driver).
    std::vector<PinId> sinks;
    for (const PinId pid : nl.net(net_id).pins) {
      if (pid != nl.net(net_id).driver) sinks.push_back(pid);
    }
    if (static_cast<int>(sinks.size()) <= options.max_fanout) continue;
    ++result.buffered_nets;

    // Geometric median split into groups of ~sinks_per_buffer.
    struct Group {
      std::vector<PinId> pins;
    };
    std::vector<Group> done;
    std::vector<Group> work;
    work.push_back(Group{std::move(sinks)});
    while (!work.empty()) {
      Group group = std::move(work.back());
      work.pop_back();
      if (static_cast<int>(group.pins.size()) <= options.sinks_per_buffer) {
        done.push_back(std::move(group));
        continue;
      }
      geom::BBox box;
      for (const PinId pid : group.pins) {
        box.expand(pin_position(nl, positions, pid));
      }
      const bool split_x = box.rect().width() >= box.rect().height();
      std::sort(group.pins.begin(), group.pins.end(), [&](PinId a, PinId b) {
        const geom::Point pa = pin_position(nl, positions, a);
        const geom::Point pb = pin_position(nl, positions, b);
        return split_x ? pa.x < pb.x : pa.y < pb.y;
      });
      const std::size_t mid = group.pins.size() / 2;
      Group lo;
      Group hi;
      lo.pins.assign(group.pins.begin(), group.pins.begin() + static_cast<std::ptrdiff_t>(mid));
      hi.pins.assign(group.pins.begin() + static_cast<std::ptrdiff_t>(mid), group.pins.end());
      work.push_back(std::move(lo));
      work.push_back(std::move(hi));
    }

    // One buffer per group: detach the group's sinks from the original net,
    // connect them to a new net driven by the buffer; the buffer's input
    // joins the original net.
    for (Group& group : done) {
      geom::Point centroid;
      for (const PinId pid : group.pins) {
        const geom::Point p = pin_position(nl, positions, pid);
        centroid.x += p.x;
        centroid.y += p.y;
      }
      centroid.x /= static_cast<double>(group.pins.size());
      centroid.y /= static_cast<double>(group.pins.size());

      const CellId buffer = nl.add_cell(
          "hfbuf_" + std::to_string(ni) + "_" + std::to_string(serial++),
          *buffer_id, nl.root_module());
      positions.push_back(centroid);
      ++result.inserted_buffers;

      const NetId leaf_net =
          nl.add_net(nl.net(net_id).name + "_buf" + std::to_string(serial));
      nl.connect(leaf_net, nl.cell_output_pin(buffer));
      for (const PinId pid : group.pins) {
        nl.disconnect(pid);
        nl.connect(leaf_net, pid);
      }
      nl.connect(net_id, nl.cell_pin(buffer, 0));  // buffer input joins trunk
    }
  }
  PPACD_LOG_DEBUG("opt") << nl.name() << ": buffered " << result.buffered_nets
                         << " nets with " << result.inserted_buffers
                         << " buffers";
  return result;
}

}  // namespace ppacd::opt
