/// \file buffering.hpp
/// \brief High-fanout net buffering (repair_design substitute).
///
/// Huge-fanout data nets (control broadcasts, resets) dominate delay when a
/// single driver sees the whole net's capacitance. This pass splits every
/// such net: sinks are grouped geometrically (median split, like the clock
/// tree), each group gets a buffer placed at its centroid, and the original
/// net keeps only the driver plus the buffer inputs. The netlist is mutated
/// in place; `positions` grows with the inserted buffers.
#pragma once

#include <string>
#include <vector>

#include "geom/geometry.hpp"
#include "netlist/netlist.hpp"

namespace ppacd::opt {

struct BufferingOptions {
  int max_fanout = 24;          ///< nets above this fanout get buffered
  int sinks_per_buffer = 12;    ///< target group size
  std::string buffer_cell = "BUF_X4";
};

struct BufferingResult {
  int buffered_nets = 0;
  int inserted_buffers = 0;
};

/// Buffers all qualifying non-clock nets. Positions must be indexed by
/// CellId and are extended for the new buffer cells (placed at their sink
/// group centroids; re-legalize afterwards if exact legality matters).
BufferingResult buffer_high_fanout(netlist::Netlist& netlist,
                                   std::vector<geom::Point>& positions,
                                   const BufferingOptions& options);

}  // namespace ppacd::opt
