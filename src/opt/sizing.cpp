#include "opt/sizing.hpp"

#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "sta/sta.hpp"
#include "util/logging.hpp"

namespace ppacd::opt {

namespace {

using netlist::CellId;
using netlist::Netlist;
using netlist::PinId;

/// Upgrade chain by library-cell name: X1 -> X2 -> X4 within a family.
std::unordered_map<liberty::LibCellId, liberty::LibCellId> upgrade_map(
    const liberty::Library& lib) {
  std::unordered_map<liberty::LibCellId, liberty::LibCellId> upgrades;
  const char* chains[][3] = {
      {"INV_X1", "INV_X2", "INV_X4"},
      {"BUF_X1", "BUF_X2", "BUF_X4"},
  };
  for (const auto& chain : chains) {
    for (int i = 0; i + 1 < 3; ++i) {
      const auto from = lib.find(chain[i]);
      const auto to = lib.find(chain[i + 1]);
      if (from.has_value() && to.has_value()) upgrades.emplace(*from, *to);
    }
  }
  return upgrades;
}

}  // namespace

SizingResult resize_critical_cells(Netlist& nl,
                                   const std::vector<geom::Point>& positions,
                                   const SizingOptions& options) {
  SizingResult result;
  const liberty::Library& lib = nl.library();
  const auto upgrades = upgrade_map(lib);

  for (int round = 0; round < options.max_rounds; ++round) {
    sta::StaOptions sta_options;
    sta_options.clock_period_ps = options.clock_period_ps;
    if (!positions.empty()) sta_options.cell_positions = &positions;
    sta::Sta sta(nl, sta_options);
    sta.run();
    if (round == 0) {
      result.wns_before_ps = sta.wns_ps();
      result.tns_before_ns = sta.tns_ns();
    }
    result.wns_after_ps = sta.wns_ps();
    result.tns_after_ns = sta.tns_ns();
    if (sta.wns_ps() >= 0.0) break;
    ++result.rounds;

    std::unordered_set<CellId> touched;
    int swaps_this_round = 0;
    for (const sta::TimingPath& path : sta.worst_paths(
             static_cast<std::size_t>(options.paths_per_round))) {
      if (path.slack_ps >= 0.0) break;
      for (const PinId pid : path.pins) {
        const netlist::Pin& pin = nl.pin(pid);
        if (pin.kind != netlist::PinKind::kCellPin) continue;
        if (pin.dir != liberty::PinDir::kOutput) continue;
        const CellId cell = pin.cell;
        if (touched.count(cell) > 0) continue;
        const auto upgrade = upgrades.find(nl.cell(cell).lib_cell);
        if (upgrade == upgrades.end()) continue;

        // Predicted gain: (R_old - R_new) * C_load on the driven net.
        const liberty::LibCell& old_lc = lib.cell(nl.cell(cell).lib_cell);
        const liberty::LibCell& new_lc = lib.cell(upgrade->second);
        const netlist::NetId net = pin.net;
        if (net == netlist::kInvalidId) continue;
        double load_ff = 0.0;
        for (const PinId npid : nl.net(net).pins) {
          const netlist::Pin& np = nl.pin(npid);
          if (npid == pid || np.kind != netlist::PinKind::kCellPin) continue;
          load_ff += lib.cell(nl.cell(np.cell).lib_cell)
                         .pins[static_cast<std::size_t>(np.lib_pin)]
                         .cap_ff;
        }
        if (!positions.empty()) {
          load_ff += lib.wire_cap_ff_per_um() * sta.net_wirelength_um(net);
        }
        const double gain =
            (old_lc.drive_res_kohm - new_lc.drive_res_kohm) * load_ff +
            (old_lc.intrinsic_ps - new_lc.intrinsic_ps);
        if (gain < options.min_gain_ps) continue;

        nl.swap_lib_cell(cell, upgrade->second);
        touched.insert(cell);
        ++swaps_this_round;
        ++result.upsized_cells;
      }
    }
    if (swaps_this_round == 0) break;
  }

  // Final measurement if any swap happened after the last STA.
  if (result.upsized_cells > 0) {
    sta::StaOptions sta_options;
    sta_options.clock_period_ps = options.clock_period_ps;
    if (!positions.empty()) sta_options.cell_positions = &positions;
    sta::Sta sta(nl, sta_options);
    sta.run();
    result.wns_after_ps = sta.wns_ps();
    result.tns_after_ns = sta.tns_ns();
  }
  PPACD_LOG_DEBUG("opt") << nl.name() << ": upsized " << result.upsized_cells
                         << " cells, WNS " << result.wns_before_ps << " -> "
                         << result.wns_after_ps << " ps";
  return result;
}

}  // namespace ppacd::opt
