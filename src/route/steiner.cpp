#include "route/steiner.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

namespace ppacd::route {

namespace {

double median3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

/// Manhattan distance over the SoA coordinate columns; same expression as
/// geom::manhattan, so results are bit-identical to the AoS version.
double manhattan_at(const double* px, const double* py, std::int32_t a,
                    std::int32_t b) {
  return std::fabs(px[a] - px[b]) + std::fabs(py[a] - py[b]);
}

/// Prim's algorithm with O(n^2) nearest tracking over the first n rows of
/// scratch.pts; emits edges into scratch.ea/scratch.eb in attachment order
/// (identical to the order the AoS version emitted Segments).
void prim_into(std::size_t n, TopoScratch& s) {
  s.ea.clear();
  s.eb.clear();
  if (n < 2) return;
  const double* px = s.pts.col(0);
  const double* py = s.pts.col(1);
  s.in_tree.assign(n, 0);
  s.best_dist.assign(n, std::numeric_limits<double>::infinity());
  s.best_parent.assign(n, 0);
  s.in_tree[0] = 1;
  for (std::size_t i = 1; i < n; ++i) {
    s.best_dist[i] = manhattan_at(px, py, 0, static_cast<std::int32_t>(i));
  }
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t pick = 0;
    double pick_dist = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (!s.in_tree[i] && s.best_dist[i] < pick_dist) {
        pick = i;
        pick_dist = s.best_dist[i];
      }
    }
    s.in_tree[pick] = 1;
    s.ea.push_back(s.best_parent[pick]);
    s.eb.push_back(static_cast<std::int32_t>(pick));
    const std::int32_t pick32 = static_cast<std::int32_t>(pick);
    for (std::size_t i = 0; i < n; ++i) {
      if (s.in_tree[i]) continue;
      const double d = manhattan_at(px, py, pick32, static_cast<std::int32_t>(i));
      if (d < s.best_dist[i]) {
        s.best_dist[i] = d;
        s.best_parent[i] = pick32;
      }
    }
  }
}

void load_pins(const std::vector<geom::Point>& pins, std::size_t capacity,
               TopoScratch& s) {
  s.pts.resize(capacity);
  double* px = s.pts.col(0);
  double* py = s.pts.col(1);
  for (std::size_t i = 0; i < pins.size(); ++i) {
    px[i] = pins[i].x;
    py[i] = pins[i].y;
  }
}

}  // namespace

void spanning_segments_into(const std::vector<geom::Point>& pins,
                            TopoScratch& scratch, std::vector<Segment>& out) {
  out.clear();
  const std::size_t n = pins.size();
  if (n < 2) return;
  load_pins(pins, n, scratch);
  prim_into(n, scratch);
  const double* px = scratch.pts.col(0);
  const double* py = scratch.pts.col(1);
  out.reserve(scratch.ea.size());
  for (std::size_t e = 0; e < scratch.ea.size(); ++e) {
    const std::int32_t a = scratch.ea[e];
    const std::int32_t b = scratch.eb[e];
    out.push_back(Segment{geom::Point{px[a], py[a]}, geom::Point{px[b], py[b]}});
  }
}

void steiner_segments_into(const std::vector<geom::Point>& pins,
                           TopoScratch& scratch, std::vector<Segment>& out) {
  out.clear();
  const std::size_t n = pins.size();
  if (n < 2) return;

  // Vertices = pins + inserted Steiner points; the point budget bounds the
  // refinement loop (each acceptance inserts one point), so the coordinate
  // columns are sized once and never reallocate mid-run.
  const std::size_t max_points = n * 3;
  load_pins(pins, max_points, scratch);
  prim_into(n, scratch);
  double* px = scratch.pts.col(0);
  double* py = scratch.pts.col(1);
  std::size_t npts = n;

  // Greedy refinement: for each vertex, find the best pair of incident
  // edges to reroute through a median Steiner point; repeat while gains
  // exist.
  bool improved = true;
  while (improved && npts < max_points) {
    improved = false;
    // CSR incidence rebuilt per pass (edges mutate). Scanning edges in id
    // order gives each vertex its incident edges in ascending id order —
    // the same per-vertex order the vector-of-vectors build produced.
    const std::size_t ne = scratch.ea.size();
    scratch.inc_start.assign(npts + 1, 0);
    for (std::size_t e = 0; e < ne; ++e) {
      ++scratch.inc_start[scratch.ea[e] + 1];
      ++scratch.inc_start[scratch.eb[e] + 1];
    }
    for (std::size_t v = 0; v < npts; ++v) {
      scratch.inc_start[v + 1] += scratch.inc_start[v];
    }
    scratch.inc_fill.assign(scratch.inc_start.begin(),
                            scratch.inc_start.end() - 1);
    scratch.inc_list.resize(2 * ne);
    for (std::size_t e = 0; e < ne; ++e) {
      scratch.inc_list[scratch.inc_fill[scratch.ea[e]]++] =
          static_cast<std::int32_t>(e);
      scratch.inc_list[scratch.inc_fill[scratch.eb[e]]++] =
          static_cast<std::int32_t>(e);
    }
    for (std::size_t v = 0; v < npts; ++v) {
      const std::int32_t inc_lo = scratch.inc_start[v];
      const std::int32_t inc_hi = scratch.inc_start[v + 1];
      if (inc_hi - inc_lo < 2) continue;
      const std::int32_t v32 = static_cast<std::int32_t>(v);
      double best_gain = 1e-9;
      std::size_t best_e1 = 0;
      std::size_t best_e2 = 0;
      double best_sx = 0.0;
      double best_sy = 0.0;
      for (std::int32_t i = inc_lo; i < inc_hi; ++i) {
        for (std::int32_t j = i + 1; j < inc_hi; ++j) {
          const std::int32_t e1 = scratch.inc_list[i];
          const std::int32_t e2 = scratch.inc_list[j];
          const std::int32_t a =
              scratch.ea[e1] == v32 ? scratch.eb[e1] : scratch.ea[e1];
          const std::int32_t b =
              scratch.ea[e2] == v32 ? scratch.eb[e2] : scratch.ea[e2];
          const double sx = median3(px[v], px[a], px[b]);
          const double sy = median3(py[v], py[a], py[b]);
          const double before = manhattan_at(px, py, v32, a) +
                                manhattan_at(px, py, v32, b);
          const double after = std::fabs(px[v] - sx) + std::fabs(py[v] - sy) +
                               std::fabs(sx - px[a]) + std::fabs(sy - py[a]) +
                               std::fabs(sx - px[b]) + std::fabs(sy - py[b]);
          const double gain = before - after;
          if (gain > best_gain) {
            best_gain = gain;
            best_e1 = static_cast<std::size_t>(e1);
            best_e2 = static_cast<std::size_t>(e2);
            best_sx = sx;
            best_sy = sy;
          }
        }
      }
      if (best_gain > 1e-9) {
        const std::int32_t a = scratch.ea[best_e1] == v32 ? scratch.eb[best_e1]
                                                          : scratch.ea[best_e1];
        const std::int32_t b = scratch.ea[best_e2] == v32 ? scratch.eb[best_e2]
                                                          : scratch.ea[best_e2];
        const std::int32_t s_idx = static_cast<std::int32_t>(npts);
        px[npts] = best_sx;
        py[npts] = best_sy;
        ++npts;
        scratch.ea[best_e1] = v32;
        scratch.eb[best_e1] = s_idx;
        scratch.ea[best_e2] = s_idx;
        scratch.eb[best_e2] = a;
        scratch.ea.push_back(s_idx);
        scratch.eb.push_back(b);
        improved = true;
        break;  // incidence is stale; rescan with fresh lists
      }
    }
  }

  out.reserve(scratch.ea.size());
  for (std::size_t e = 0; e < scratch.ea.size(); ++e) {
    const std::int32_t a = scratch.ea[e];
    const std::int32_t b = scratch.eb[e];
    if (px[a] == px[b] && py[a] == py[b]) continue;  // degenerate
    out.push_back(Segment{geom::Point{px[a], py[a]}, geom::Point{px[b], py[b]}});
  }
}

std::vector<Segment> spanning_segments(const std::vector<geom::Point>& pins) {
  TopoScratch scratch;
  std::vector<Segment> out;
  spanning_segments_into(pins, scratch, out);
  return out;
}

std::vector<Segment> steiner_segments(const std::vector<geom::Point>& pins) {
  TopoScratch scratch;
  std::vector<Segment> out;
  steiner_segments_into(pins, scratch, out);
  return out;
}

double total_length(const std::vector<Segment>& segments) {
  double length = 0.0;
  for (const Segment& s : segments) length += geom::manhattan(s.a, s.b);
  return length;
}

}  // namespace ppacd::route
