#include "route/steiner.hpp"

#include <algorithm>
#include <limits>

namespace ppacd::route {

std::vector<Segment> spanning_segments(const std::vector<geom::Point>& pins) {
  std::vector<Segment> segments;
  const std::size_t n = pins.size();
  if (n < 2) return segments;
  segments.reserve(n - 1);

  // Prim's algorithm with O(n^2) nearest tracking.
  std::vector<bool> in_tree(n, false);
  std::vector<double> best_dist(n, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> best_parent(n, 0);
  in_tree[0] = true;
  for (std::size_t i = 1; i < n; ++i) {
    best_dist[i] = geom::manhattan(pins[0], pins[i]);
  }
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t pick = 0;
    double pick_dist = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_tree[i] && best_dist[i] < pick_dist) {
        pick = i;
        pick_dist = best_dist[i];
      }
    }
    in_tree[pick] = true;
    segments.push_back(Segment{pins[best_parent[pick]], pins[pick]});
    for (std::size_t i = 0; i < n; ++i) {
      if (in_tree[i]) continue;
      const double d = geom::manhattan(pins[pick], pins[i]);
      if (d < best_dist[i]) {
        best_dist[i] = d;
        best_parent[i] = pick;
      }
    }
  }
  return segments;
}

double total_length(const std::vector<Segment>& segments) {
  double length = 0.0;
  for (const Segment& s : segments) length += geom::manhattan(s.a, s.b);
  return length;
}

namespace {

double median3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

}  // namespace

std::vector<Segment> steiner_segments(const std::vector<geom::Point>& pins) {
  // Work on an editable tree: vertices = pins + inserted Steiner points;
  // edges as index pairs.
  std::vector<geom::Point> points = pins;
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  {
    // Rebuild the RMST in index space (spanning_segments loses indices).
    const std::size_t n = pins.size();
    if (n < 2) return {};
    std::vector<bool> in_tree(n, false);
    std::vector<double> best_dist(n, std::numeric_limits<double>::infinity());
    std::vector<std::size_t> best_parent(n, 0);
    in_tree[0] = true;
    for (std::size_t i = 1; i < n; ++i) {
      best_dist[i] = geom::manhattan(pins[0], pins[i]);
    }
    for (std::size_t added = 1; added < n; ++added) {
      std::size_t pick = 0;
      double pick_dist = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n; ++i) {
        if (!in_tree[i] && best_dist[i] < pick_dist) {
          pick = i;
          pick_dist = best_dist[i];
        }
      }
      in_tree[pick] = true;
      edges.emplace_back(best_parent[pick], pick);
      for (std::size_t i = 0; i < n; ++i) {
        if (in_tree[i]) continue;
        const double d = geom::manhattan(pins[pick], pins[i]);
        if (d < best_dist[i]) {
          best_dist[i] = d;
          best_parent[i] = pick;
        }
      }
    }
  }

  // Greedy refinement: for each vertex, find the best pair of incident
  // edges to reroute through a median Steiner point; repeat while gains
  // exist. Each acceptance inserts one Steiner point, so the budget below
  // bounds the loop.
  const std::size_t max_points = pins.size() * 3;
  bool improved = true;
  while (improved && points.size() < max_points) {
    improved = false;
    // Incidence rebuilt per pass (edges mutate).
    std::vector<std::vector<std::size_t>> incident(points.size());
    for (std::size_t e = 0; e < edges.size(); ++e) {
      incident[edges[e].first].push_back(e);
      incident[edges[e].second].push_back(e);
    }
    for (std::size_t v = 0; v < points.size(); ++v) {
      if (incident[v].size() < 2) continue;
      double best_gain = 1e-9;
      std::size_t best_e1 = 0;
      std::size_t best_e2 = 0;
      geom::Point best_s;
      for (std::size_t i = 0; i < incident[v].size(); ++i) {
        for (std::size_t j = i + 1; j < incident[v].size(); ++j) {
          const std::size_t e1 = incident[v][i];
          const std::size_t e2 = incident[v][j];
          const std::size_t a =
              edges[e1].first == v ? edges[e1].second : edges[e1].first;
          const std::size_t b =
              edges[e2].first == v ? edges[e2].second : edges[e2].first;
          const geom::Point s{median3(points[v].x, points[a].x, points[b].x),
                              median3(points[v].y, points[a].y, points[b].y)};
          const double before = geom::manhattan(points[v], points[a]) +
                                geom::manhattan(points[v], points[b]);
          const double after = geom::manhattan(points[v], s) +
                               geom::manhattan(s, points[a]) +
                               geom::manhattan(s, points[b]);
          const double gain = before - after;
          if (gain > best_gain) {
            best_gain = gain;
            best_e1 = e1;
            best_e2 = e2;
            best_s = s;
          }
        }
      }
      if (best_gain > 1e-9) {
        const std::size_t a =
            edges[best_e1].first == v ? edges[best_e1].second : edges[best_e1].first;
        const std::size_t b =
            edges[best_e2].first == v ? edges[best_e2].second : edges[best_e2].first;
        const std::size_t s_idx = points.size();
        points.push_back(best_s);
        edges[best_e1] = {v, s_idx};
        edges[best_e2] = {s_idx, a};
        edges.emplace_back(s_idx, b);
        improved = true;
        break;  // incidence is stale; rescan with fresh lists
      }
    }
  }

  std::vector<Segment> segments;
  segments.reserve(edges.size());
  for (const auto& [a, b] : edges) {
    if (points[a] == points[b]) continue;  // degenerate after refinement
    segments.push_back(Segment{points[a], points[b]});
  }
  return segments;
}

}  // namespace ppacd::route
