/// \file global_router.hpp
/// \brief GCell-grid global routing with pattern routes and negotiated
/// rip-up-and-reroute (FastRoute substitute).
///
/// Supplies the two signals the paper's evaluation needs:
///   * routed wirelength (rWL, Tables 3-6) from committed paths, and
///   * the GCell congestion map behind Cost_Congestion (Eq. 5): the router
///     exposes all edge utilizations so callers can average the top X%.
///
/// Each two-pin segment (from the net's spanning topology) is routed with
/// the cheapest of the two L-shapes and a family of Z-shapes under a
/// congestion-aware edge cost. A few negotiation rounds then rip up nets
/// crossing overflowed edges and re-route them with accumulated history
/// costs, the standard PathFinder-style scheme.
///
/// Data layout (DESIGN.md §15): grid edges are dense int32 ids (all
/// horizontal edges in h_index order, then all vertical edges in v_index
/// order), paths are flat id arrays, and usage/history live together in one
/// EdgeState array so the cost evaluation touches a single cache line per
/// edge. The maze search uses a monotone bucket queue (bucket_queue.hpp)
/// with a pop order bit-identical to the binary heap it replaced.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "fault/expected.hpp"
#include "fault/fault.hpp"
#include "geom/geometry.hpp"
#include "netlist/netlist.hpp"
#include "route/bucket_queue.hpp"
#include "route/steiner.hpp"
#include "util/dense_scratch.hpp"

namespace ppacd::route {

struct RouteOptions {
  double gcell_um = 4.2;        ///< GCell edge length (~3 NanGate45 rows)
  int h_capacity = 12;          ///< horizontal tracks per GCell edge
  int v_capacity = 10;          ///< vertical tracks per GCell edge
  int rrr_rounds = 3;           ///< rip-up-and-reroute rounds
  double overflow_penalty = 4.0;///< extra cost per unit over capacity
  double history_increment = 1.0;
  int z_samples = 6;            ///< intermediate Z-shape positions tried
  bool route_clock_nets = false;///< clock handled by CTS, off by default
  /// Decompose nets with the Steiner-refined topology instead of the plain
  /// RMST (shorter routed wirelength at negligible cost).
  bool use_steiner_topology = true;
  /// Re-route congested segments with a bounded-box maze (Dijkstra) search
  /// during negotiation rounds instead of the pattern candidates.
  bool maze_fallback = true;
  /// Maze search window: GCells added around the segment bounding box.
  int maze_margin = 12;
  /// Stream per-batch/per-round progress and congestion heatmaps to the
  /// flight recorder (src/observe). Off by default so nested evaluations
  /// (VPR shape sweeps) stay silent; the flow enables it for the top-level
  /// PPA evaluation only.
  bool observe_stream = false;
};

struct RouteResult {
  double wirelength_um = 0.0;   ///< total committed routed wirelength
  int overflow_edges = 0;       ///< edges above capacity after the last round
  double total_overflow = 0.0;  ///< sum of (usage - capacity) over overfull edges
  double max_utilization = 0.0; ///< worst edge usage/capacity
  /// Usage/capacity of every grid edge (both directions), for Eq. 5.
  std::vector<double> edge_utilization;
  int grid_nx = 0;
  int grid_ny = 0;
  /// Nets left unrouted (or dropped for poisoned results) after the serial
  /// retry budget was exhausted; >0 means the result covers partial routes.
  int failed_nets = 0;

  /// Mean utilization over the top `percent`% most congested edges
  /// (Eq. 5's Congestion Cost with X = percent).
  double top_congestion(double percent) const;
};

class GlobalRouter {
 public:
  /// `positions` are cell centers indexed by CellId; ports use their fixed
  /// boundary locations. `core` bounds the routing grid.
  GlobalRouter(const netlist::Netlist& netlist,
               const std::vector<geom::Point>& positions,
               const geom::Rect& core, const RouteOptions& options);

  /// Routes everything; asserts on allocation failure. Nets whose route
  /// fails (injected `route.maze` fault) are retried serially and, if still
  /// failing, skipped — see RouteResult::failed_nets.
  RouteResult run();

  /// Fallible form of run(): per-net failures at the `route.maze` site are
  /// retried `policy.route_retries` times (with `policy.route_backoff_ms`
  /// backoff scaled by attempt) and then dropped into a partial result;
  /// allocation failure returns a structured `alloc-failure` error.
  [[nodiscard]] fault::Expected<RouteResult, fault::FlowError> try_run(
      const fault::DegradePolicy& policy);

 private:
  fault::Expected<RouteResult, fault::FlowError> run_impl(
      const fault::DegradePolicy& policy);

  struct GridPoint {
    int x = 0;
    int y = 0;
  };

  /// Usage and negotiation history of one grid edge, adjacent in memory so
  /// edge_cost touches one cache line per edge instead of two arrays.
  struct EdgeState {
    double usage = 0.0;
    double history = 0.0;
  };

  /// Usage subtracted from the committed state while costing a reroute: the
  /// rerouting net's own committed edges, keyed by edge id. Lets whole
  /// batches reroute concurrently against a frozen usage snapshot without
  /// mutating it (a virtual per-net rip-up). Epoch-stamped dense table: one
  /// clear() per net is O(touched), lookups are a plain array probe.
  using ExcludedUsage = util::DenseScratch<double>;

  /// Per-worker-lane reusable buffers (indexed by exec::this_worker_slot()),
  /// so routing a segment allocates nothing in steady state even when nets
  /// route concurrently.
  struct SlotScratch {
    /// Maze state spans the full grid and is epoch-stamped: a search only
    /// trusts entries whose stamp matches maze_epoch, so starting a search
    /// is O(1) instead of an O(window) reinitialization. dist/stamp/parent
    /// share one record so relaxing a node touches one cache line, not
    /// three parallel arrays.
    /// 16 bytes, two nodes per cache line. The 32-bit epoch would need 4.3
    /// billion searches through one router to wrap; a router routes a few
    /// tens of thousands of maze segments in its lifetime.
    struct MazeNode {
      double dist = 0.0;
      std::int32_t parent = -1;
      std::uint32_t stamp = 0;
    };
    std::vector<MazeNode> maze_nodes;
    std::uint32_t maze_epoch = 0;
    BucketQueue maze_queue;
    ExcludedUsage own;                        ///< virtual rip-up usage
    std::vector<geom::Point> pins;            ///< topology build buffer
    TopoScratch topo;                         ///< Steiner/RMST construction
    std::vector<Segment> topo_segs;           ///< topology staging
    std::vector<std::int32_t> path_edges;     ///< flat path staging
  };

  GridPoint gcell_of(const geom::Point& p) const;
  std::size_t h_index(int x, int y) const;  ///< edge (x,y)->(x+1,y)
  std::size_t v_index(int x, int y) const;  ///< edge (x,y)->(x,y+1)
  /// Dense edge ids: h edges in h_index order, then v edges offset by the
  /// h count (same key space the virtual rip-up tables use).
  std::int32_t h_edge(int x, int y) const;
  std::int32_t v_edge(int x, int y) const;
  double edge_cost(std::int32_t e, const ExcludedUsage* excluded) const;
  /// Folds the edge costs of a straight run onto `acc` in ascending
  /// coordinate order — the same order path_cost used to scan a built path,
  /// so pattern costs are bit-identical without materializing candidates.
  double acc_cost_h(double acc, int x0, int x1, int y,
                    const ExcludedUsage* excluded) const;
  double acc_cost_v(double acc, int x, int y0, int y1,
                    const ExcludedUsage* excluded) const;
  void commit(const std::vector<std::int32_t>& path, int delta);
  /// Appends the edges of a straight run from (x0,y) to (x1,y) (horizontal)
  /// or (x,y0)-(x,y1) (vertical) to `path`.
  void append_h(std::vector<std::int32_t>& path, int x0, int x1, int y) const;
  void append_v(std::vector<std::int32_t>& path, int x, int y0, int y1) const;
  /// Routes one segment, appending its edges to `out`: costs every pattern
  /// candidate with the acc_cost_* folds and materializes only the winner.
  void route_segment(GridPoint a, GridPoint b, const ExcludedUsage* excluded,
                     std::vector<std::int32_t>& out) const;
  /// Dijkstra within an inflated bounding box (monotone bucket queue, pop
  /// order identical to the old binary heap); appends to `out`. Falls back
  /// to the pattern route when the search fails (cannot happen inside a
  /// connected window).
  void route_maze(GridPoint a, GridPoint b, const ExcludedUsage* excluded,
                  std::vector<std::int32_t>& out) const;

  const netlist::Netlist* nl_;
  const std::vector<geom::Point>* positions_;
  geom::Rect core_;
  RouteOptions options_;
  int nx_ = 0;
  int ny_ = 0;
  std::int32_t h_size_ = 0;  ///< horizontal edge count (v ids start here)
  std::vector<EdgeState> edges_;
  mutable std::vector<SlotScratch> slots_;
};

}  // namespace ppacd::route
