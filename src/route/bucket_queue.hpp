/// \file bucket_queue.hpp
/// \brief Monotone bucket priority queue for the maze Dijkstra.
///
/// Replaces the binary heap (std::push_heap/std::pop_heap over
/// pair<double, node>) in route_maze with Dial-style buckets of width 1.0 —
/// valid because every maze edge cost is >= 1.0 by construction
/// (cost = 1.0 + history [+ overflow penalty], all terms non-negative).
///
/// Pop-order equivalence with the heap (DESIGN.md §15): the heap pops
/// entries in globally ascending (distance, node) order — Dijkstra's
/// monotonicity makes the pop sequence sorted, and the pair comparator
/// breaks distance ties by the smaller node id. Here, an entry with
/// distance d lands in bucket floor(d). While bucket k drains, every pop
/// has d in [k, k+1), so a relaxation pushes nd = d + cost >= d + 1.0,
/// which lands in bucket floor(nd) >= k+1: a draining bucket never
/// receives entries. Each bucket is therefore complete when its first
/// entry pops, and sorting it ascending by (distance, node) at that moment
/// reproduces the heap's pop order exactly — including stale entries,
/// which pop in the same position and are skipped by the same
/// distance-check the heap version used. Results are bit-identical.
///
/// Buckets live in a power-of-two ring indexed by absolute bucket number;
/// all storage is reused across searches (begin() clears only the buckets
/// the previous search touched), so steady-state maze routing does not
/// allocate.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace ppacd::route {

class BucketQueue {
 public:
  /// (distance, node); ordered exactly like the old heap entries.
  using Entry = std::pair<double, std::int32_t>;

  /// Minimum edge cost the monotonicity argument relies on (== bucket
  /// width). Callers must not push d2 < d1 + kMinEdgeCost from a popped d1.
  static constexpr double kMinEdgeCost = 1.0;

  /// Start a new search (distances from 0). O(buckets touched last time).
  void begin() {
    for (const std::uint64_t b : touched_) ring_[b & mask_].clear();
    touched_.clear();
    if (ring_.empty()) grow(64);
    cur_ = 0;
    drain_pos_ = 0;
    drain_size_ = 0;
    live_ = 0;
  }

  void push(double d, std::int32_t node) {
    const std::uint64_t b = static_cast<std::uint64_t>(d);
    PPACD_DCHECK(b > cur_ || drain_size_ == 0,
                 "push into draining bucket " << b << " at " << cur_);
    PPACD_DCHECK(b >= cur_, "non-monotone push: bucket " << b << " while draining "
                                                         << cur_);
    if (b - cur_ >= ring_.size()) grow(b - cur_ + 1);
    std::vector<Entry>& bucket = ring_[b & mask_];
    if (bucket.empty()) touched_.push_back(b);
    bucket.emplace_back(d, node);
    ++live_;
  }

  /// Pops the globally smallest (distance, node) entry; false when empty.
  /// The fast path reads a cached pointer into the draining bucket: valid
  /// because pushes never land in the draining bucket (see above) and
  /// grow() moves the inner vectors, which keeps their heap buffers.
  bool pop(Entry& out) {
    if (drain_pos_ < drain_size_) {
      out = drain_data_[drain_pos_++];
      --live_;
      return true;
    }
    return pop_slow(out);
  }

 private:
  bool pop_slow(Entry& out) {
    if (drain_size_ != 0) {  // retire the exhausted bucket
      ring_[cur_ & mask_].clear();
      drain_size_ = 0;
      drain_pos_ = 0;
      ++cur_;
    }
    while (live_ > 0) {
      std::vector<Entry>& bucket = ring_[cur_ & mask_];
      if (!bucket.empty()) {
        if (bucket.size() > 1) std::sort(bucket.begin(), bucket.end());
        drain_data_ = bucket.data();
        drain_size_ = bucket.size();
        drain_pos_ = 1;
        out = drain_data_[0];
        --live_;
        return true;
      }
      ++cur_;
    }
    return false;
  }

  void grow(std::uint64_t span) {
    std::size_t size = ring_.empty() ? 64 : ring_.size();
    while (size < span) size <<= 1;
    if (size == ring_.size()) return;
    std::vector<std::vector<Entry>> next(size);
    const std::size_t next_mask = size - 1;
    if (!ring_.empty()) {
      for (const std::uint64_t b : touched_) {
        std::vector<Entry>& old = ring_[b & mask_];
        if (!old.empty()) next[b & next_mask] = std::move(old);
      }
    }
    ring_ = std::move(next);
    mask_ = next_mask;
  }

  std::vector<std::vector<Entry>> ring_;  ///< bucket b lives at ring_[b & mask_]
  std::vector<std::uint64_t> touched_;    ///< buckets used since begin()
  std::size_t mask_ = 0;
  std::uint64_t cur_ = 0;        ///< absolute index of the draining bucket
  const Entry* drain_data_ = nullptr;  ///< cached storage of that bucket
  std::size_t drain_pos_ = 0;    ///< next entry within the draining bucket
  std::size_t drain_size_ = 0;   ///< entry count of the draining bucket
  std::size_t live_ = 0;         ///< undrained entries across all buckets
};

}  // namespace ppacd::route
